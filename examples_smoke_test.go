package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesSmoke builds every example and runs it to completion,
// asserting a zero exit. The examples are sized to finish in well under a
// second each, so this doubles as a cheap end-to-end exercise of the
// public-facing API surface (quickstart, transfers, metrics, multicast,
// probing, spatial reuse).
func TestExamplesSmoke(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	binDir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			done := make(chan struct{})
			cmd := exec.Command(bin)
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s hung", name)
			}
			if runErr != nil {
				t.Fatalf("run failed: %v\n%s", runErr, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
