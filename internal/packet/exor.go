package packet

import (
	"encoding/binary"

	"repro/internal/graph"
)

// ExORHeader is the header ExOR attaches to batch fragments (§2.2.1). Each
// data packet carries the batch map: for every packet in the batch, the
// highest-priority node known to have received it, as an index into the
// forwarder list. Listeners merge overheard batch maps so a node forwards
// only packets no higher-priority node holds.
type ExORHeader struct {
	FlowID  uint32
	BatchID uint32
	// PktIdx is this packet's index within the batch.
	PktIdx uint8
	// BatchSize is K.
	BatchSize uint8
	// FragRemaining counts how many more packets the sender will transmit
	// in its current fragment; 0 marks the fragment end, the handoff
	// signal to the next scheduled forwarder.
	FragRemaining uint8
	// SenderPrio is the transmitting node's position in the priority list
	// (0 = destination = highest priority).
	SenderPrio uint8
	// BatchMap[i] is the priority index of the highest-priority node known
	// to have packet i (0xFF = nobody known).
	BatchMap []uint8
	// Forwarders is the prioritized forwarder list (compressed to hashes,
	// like MORE's).
	Forwarders []uint8
}

// BatchMapUnknown marks a packet with no known holder.
const BatchMapUnknown = 0xFF

// EncodedSize returns the on-air header size.
func (h *ExORHeader) EncodedSize() int {
	return 4 + 4 + 1 + 1 + 1 + 1 + 1 + len(h.BatchMap) + 1 + len(h.Forwarders)
}

// Encode appends the wire form of h to dst.
func (h *ExORHeader) Encode(dst []byte) ([]byte, error) {
	if len(h.BatchMap) > 255 || len(h.Forwarders) > 255 {
		return nil, ErrTooMany
	}
	dst = binary.BigEndian.AppendUint32(dst, h.FlowID)
	dst = binary.BigEndian.AppendUint32(dst, h.BatchID)
	dst = append(dst, h.PktIdx, h.BatchSize, h.FragRemaining, h.SenderPrio)
	dst = append(dst, byte(len(h.BatchMap)))
	dst = append(dst, h.BatchMap...)
	dst = append(dst, byte(len(h.Forwarders)))
	dst = append(dst, h.Forwarders...)
	return dst, nil
}

// DecodeExORHeader parses an ExOR header.
func DecodeExORHeader(b []byte) (*ExORHeader, int, error) {
	if len(b) < 13 {
		return nil, 0, ErrTruncated
	}
	h := &ExORHeader{
		FlowID:        binary.BigEndian.Uint32(b),
		BatchID:       binary.BigEndian.Uint32(b[4:]),
		PktIdx:        b[8],
		BatchSize:     b[9],
		FragRemaining: b[10],
		SenderPrio:    b[11],
	}
	off := 12
	bm := int(b[off])
	off++
	if off+bm > len(b) {
		return nil, 0, ErrTruncated
	}
	if bm > 0 {
		h.BatchMap = append([]uint8(nil), b[off:off+bm]...)
	}
	off += bm
	if off >= len(b) {
		return nil, 0, ErrTruncated
	}
	nf := int(b[off])
	off++
	if off+nf > len(b) {
		return nil, 0, ErrTruncated
	}
	if nf > 0 {
		h.Forwarders = append([]uint8(nil), b[off:off+nf]...)
	}
	off += nf
	return h, off, nil
}

// SrcrHeader is the source-route header Srcr prepends: the full hop list
// the packet must traverse, plus a cursor.
type SrcrHeader struct {
	FlowID uint32
	Seq    uint32 // end-to-end packet sequence number
	Hop    uint8  // index of the current hop in Route
	Route  []graph.NodeID
}

// EncodedSize returns the on-air header size (2 bytes per recorded hop).
func (h *SrcrHeader) EncodedSize() int { return 4 + 4 + 1 + 1 + 2*len(h.Route) }

// Encode appends the wire form of h to dst.
func (h *SrcrHeader) Encode(dst []byte) ([]byte, error) {
	if len(h.Route) > 255 {
		return nil, ErrTooMany
	}
	dst = binary.BigEndian.AppendUint32(dst, h.FlowID)
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	dst = append(dst, h.Hop, byte(len(h.Route)))
	for _, n := range h.Route {
		dst = binary.BigEndian.AppendUint16(dst, uint16(n))
	}
	return dst, nil
}

// DecodeSrcrHeader parses a Srcr header.
func DecodeSrcrHeader(b []byte) (*SrcrHeader, int, error) {
	if len(b) < 10 {
		return nil, 0, ErrTruncated
	}
	h := &SrcrHeader{
		FlowID: binary.BigEndian.Uint32(b),
		Seq:    binary.BigEndian.Uint32(b[4:]),
		Hop:    b[8],
	}
	n := int(b[9])
	off := 10
	if off+2*n > len(b) {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < n; i++ {
		h.Route = append(h.Route, graph.NodeID(binary.BigEndian.Uint16(b[off:])))
		off += 2
	}
	return h, off, nil
}

// Probe is an ETX link probe (§3.2.1(b)): nodes broadcast periodic probes;
// receivers count them to estimate delivery ratios.
type Probe struct {
	Origin graph.NodeID
	Seq    uint32
	// Window is the probe period count the estimator divides by.
	Window uint16
}

// EncodedSize returns the probe body size.
func (p *Probe) EncodedSize() int { return 2 + 4 + 2 }

// Encode appends the wire form of p to dst.
func (p *Probe) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Origin))
	dst = binary.BigEndian.AppendUint32(dst, p.Seq)
	return binary.BigEndian.AppendUint16(dst, p.Window)
}

// DecodeProbe parses a probe body.
func DecodeProbe(b []byte) (*Probe, int, error) {
	if len(b) < 8 {
		return nil, 0, ErrTruncated
	}
	return &Probe{
		Origin: graph.NodeID(binary.BigEndian.Uint16(b)),
		Seq:    binary.BigEndian.Uint32(b[2:]),
		Window: binary.BigEndian.Uint16(b[6:]),
	}, 8, nil
}

// LSA is a link-state advertisement (§3.2.1(b)): a node's measured inbound
// delivery ratios, flooded so every node can build the loss-annotated
// network graph locally. Probabilities are quantized to 1/255.
type LSA struct {
	Origin graph.NodeID
	Seq    uint32
	// Neighbors and Probs are parallel: Probs[i] is the delivery
	// probability of link Neighbors[i] -> Origin, quantized.
	Neighbors []graph.NodeID
	Probs     []uint8
	// Load is the origin's quantized congestion score (0 = unloaded,
	// 255 = saturated; see congest.Layer.LoadByte), piggybacked so
	// learned views carry load for the cost plane. A zero load is not
	// encoded at all — the count byte's high bit flags its presence — so
	// load-unaware runs produce byte-identical LSAs.
	Load uint8
	// TTL is the flood scope in hops (fisheye rings): a forwarder drops the
	// LSA once the TTL it received is 1, so an origin can address a ring of
	// near neighbors without paying a network-wide flood. Zero means
	// unscoped — flood everywhere, the classic link-state behavior — and is
	// not encoded at all (count-byte flag, like Load), so unscoped runs
	// produce byte-identical LSAs.
	TTL uint8
}

// lsaLoadFlag marks an LSA that carries a trailing load byte. It rides the
// high bit of the neighbor-count byte, capping LSA neighbors at 127.
const lsaLoadFlag = 0x80

// lsaTTLFlag marks an LSA that carries a trailing scope-TTL byte (after the
// load byte, when both are present). It rides bit 6 of the neighbor-count
// byte, lowering the neighbor cap to 63 — still ~6× any simulated
// neighborhood.
const lsaTTLFlag = 0x40

// QuantizeProb maps [0,1] to a byte.
func QuantizeProb(p float64) uint8 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 255
	}
	return uint8(p*255 + 0.5)
}

// UnquantizeProb inverts QuantizeProb.
func UnquantizeProb(q uint8) float64 { return float64(q) / 255 }

// EncodedSize returns the LSA's on-air size. A nonzero load or TTL costs
// one extra byte each; the zero-load, zero-TTL size matches the original
// wire format exactly.
func (l *LSA) EncodedSize() int {
	n := 2 + 4 + 1 + 3*len(l.Neighbors)
	if l.Load != 0 {
		n++
	}
	if l.TTL != 0 {
		n++
	}
	return n
}

// Encode appends the wire form of l to dst.
func (l *LSA) Encode(dst []byte) ([]byte, error) {
	if len(l.Neighbors) != len(l.Probs) {
		return nil, ErrTooMany
	}
	// The count byte's high bit is the load flag and bit 6 the TTL flag, so
	// 63 neighbors is the cap whether or not either is present (an order of
	// magnitude above any simulated neighborhood).
	if len(l.Neighbors) > 63 {
		return nil, ErrTooMany
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(l.Origin))
	dst = binary.BigEndian.AppendUint32(dst, l.Seq)
	count := byte(len(l.Neighbors))
	if l.Load != 0 {
		count |= lsaLoadFlag
	}
	if l.TTL != 0 {
		count |= lsaTTLFlag
	}
	dst = append(dst, count)
	for i, nb := range l.Neighbors {
		dst = binary.BigEndian.AppendUint16(dst, uint16(nb))
		dst = append(dst, l.Probs[i])
	}
	if l.Load != 0 {
		dst = append(dst, l.Load)
	}
	if l.TTL != 0 {
		dst = append(dst, l.TTL)
	}
	return dst, nil
}

// DecodeLSA parses an LSA.
func DecodeLSA(b []byte) (*LSA, int, error) {
	if len(b) < 7 {
		return nil, 0, ErrTruncated
	}
	l := &LSA{
		Origin: graph.NodeID(binary.BigEndian.Uint16(b)),
		Seq:    binary.BigEndian.Uint32(b[2:]),
	}
	count := b[6]
	hasLoad := count&lsaLoadFlag != 0
	hasTTL := count&lsaTTLFlag != 0
	n := int(count &^ byte(lsaLoadFlag|lsaTTLFlag))
	off := 7
	if off+3*n > len(b) {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < n; i++ {
		l.Neighbors = append(l.Neighbors, graph.NodeID(binary.BigEndian.Uint16(b[off:])))
		l.Probs = append(l.Probs, b[off+2])
		off += 3
	}
	if hasLoad {
		if off >= len(b) {
			return nil, 0, ErrTruncated
		}
		l.Load = b[off]
		off++
	}
	if hasTTL {
		if off >= len(b) {
			return nil, 0, ErrTruncated
		}
		l.TTL = b[off]
		off++
	}
	return l, off, nil
}
