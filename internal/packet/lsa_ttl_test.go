package packet

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestLSATTLRoundTrip: the scope-TTL byte must survive the wire, alone and
// combined with the load byte, and every truncation must error.
func TestLSATTLRoundTrip(t *testing.T) {
	for _, l := range []*LSA{
		{Origin: 7, Seq: 42, Neighbors: []graph.NodeID{1, 3}, Probs: []uint8{200, 25}, TTL: 2},
		{Origin: 7, Seq: 42, Neighbors: []graph.NodeID{1, 3}, Probs: []uint8{200, 25}, Load: 90, TTL: 255},
	} {
		buf, err := l.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != l.EncodedSize() {
			t.Fatalf("size %d != %d", len(buf), l.EncodedSize())
		}
		got, n, err := DecodeLSA(buf)
		if err != nil || n != len(buf) {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, l) {
			t.Fatalf("%+v != %+v", got, l)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeLSA(buf[:cut]); err == nil {
				t.Fatalf("short decode at %d succeeded", cut)
			}
		}
	}
}

// TestLSAZeroTTLBytesIdentical is the wire-compatibility contract: a TTL of
// zero (unscoped) encodes to exactly the bytes the pre-TTL format produced,
// so unscoped runs keep their golden digests.
func TestLSAZeroTTLBytesIdentical(t *testing.T) {
	a := &LSA{Origin: 3, Seq: 9, Neighbors: []graph.NodeID{2, 5}, Probs: []uint8{10, 250}}
	b := &LSA{Origin: 3, Seq: 9, Neighbors: []graph.NodeID{2, 5}, Probs: []uint8{10, 250}, TTL: 0}
	ab, err := a.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, bb) {
		t.Fatalf("zero TTL changed the encoding: %v vs %v", ab, bb)
	}
	if got, _, err := DecodeLSA(ab); err != nil || got.TTL != 0 {
		t.Fatalf("legacy bytes decoded with TTL %d, err %v", got.TTL, err)
	}
}
