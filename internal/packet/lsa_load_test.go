package packet

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestLSALoadRoundTrip: the piggybacked load byte must survive the wire,
// and its flag bit must not disturb the neighbor count.
func TestLSALoadRoundTrip(t *testing.T) {
	l := &LSA{
		Origin:    7,
		Seq:       42,
		Neighbors: []graph.NodeID{1, 3, 9},
		Probs:     []uint8{200, 128, 25},
		Load:      137,
	}
	buf, err := l.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != l.EncodedSize() {
		t.Fatalf("size %d != %d", len(buf), l.EncodedSize())
	}
	got, n, err := DecodeLSA(buf)
	if err != nil || n != len(buf) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("%+v != %+v", got, l)
	}
	// Every truncation must error, including one that cuts only the
	// trailing load byte.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeLSA(buf[:cut]); err == nil {
			t.Fatalf("short decode at %d succeeded", cut)
		}
	}
}

// TestLSAZeroLoadBytesIdentical is the wire-compatibility contract: an LSA
// with Load == 0 encodes to exactly the bytes the pre-load format
// produced — same length, flag bit clear — so load-unaware runs keep
// their golden digests.
func TestLSAZeroLoadBytesIdentical(t *testing.T) {
	a := &LSA{Origin: 3, Seq: 9, Neighbors: []graph.NodeID{2, 5}, Probs: []uint8{10, 250}}
	b := &LSA{Origin: 3, Seq: 9, Neighbors: []graph.NodeID{2, 5}, Probs: []uint8{10, 250}, Load: 0}
	ab, err := a.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab, bb) {
		t.Fatalf("zero load changed the encoding: %v vs %v", ab, bb)
	}
	if got, _, err := DecodeLSA(ab); err != nil || got.Load != 0 {
		t.Fatalf("legacy bytes decoded with load %d, err %v", got.Load, err)
	}
}

// TestLSANeighborCap: the load and TTL flags ride the count byte's top two
// bits, so 63 neighbors is the hard cap regardless of either.
func TestLSANeighborCap(t *testing.T) {
	mk := func(n int, load uint8) *LSA {
		l := &LSA{Origin: 1, Seq: 1, Load: load}
		for i := 0; i < n; i++ {
			l.Neighbors = append(l.Neighbors, graph.NodeID(i+2))
			l.Probs = append(l.Probs, 100)
		}
		return l
	}
	if _, err := mk(63, 0).Encode(nil); err != nil {
		t.Fatalf("63 neighbors rejected: %v", err)
	}
	if _, err := mk(64, 0).Encode(nil); err == nil {
		t.Fatal("64 neighbors accepted: count byte would collide with the TTL flag")
	}
	l := mk(63, 255)
	l.TTL = 9
	buf, err := l.Encode(nil)
	if err != nil {
		t.Fatalf("63 neighbors with load+TTL rejected: %v", err)
	}
	got, _, err := DecodeLSA(buf)
	if err != nil || got.Load != 255 || got.TTL != 9 || len(got.Neighbors) != 63 {
		t.Fatalf("full LSA round trip: load %d, ttl %d, %d neighbors, err %v",
			got.Load, got.TTL, len(got.Neighbors), err)
	}
}
