// Package packet defines the wire formats of the thesis' protocols: the
// MORE header (Fig 3-1) with its compressed forwarder list (§4.6(c)), MORE
// batch ACKs, ExOR headers with batch maps, Srcr source-route headers, and
// ETX probe frames. Each format has a binary encoding with round-trip
// encode/decode; the simulator charges frames for their encoded size, so
// header overhead (§4.6) is paid on the air exactly as in the real system.
//
// All multi-byte integers are big-endian.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Type identifies the MORE packet type (the header's first field
// distinguishes batch ACKs from data packets, Fig 3-1).
type Type uint8

// MORE packet types.
const (
	TypeData Type = 1
	TypeACK  Type = 2
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadType   = errors.New("packet: unknown type")
	ErrTooMany   = errors.New("packet: field count out of range")
)

// CreditScale converts a floating TX credit to the 16-bit fixed-point wire
// representation (1/256 granularity).
const CreditScale = 256

// MaxForwarders bounds the forwarder list; the implementation bounds it to
// 10 (§4.6(c)).
const MaxForwarders = 10

// NodeHash compresses a node ID to one byte, as §4.6(c) compresses node IDs
// in the forwarder list to a hash of the IP. Within a single mesh the IDs
// are small, so the byte is collision-free in practice; the decoder resolves
// it against the plan like the real system resolves hashes against ETX
// state.
func NodeHash(id graph.NodeID) uint8 {
	// A tiny multiplicative hash so distinct small IDs stay distinct and
	// spread across the byte space.
	return uint8((uint32(id)*167 + 13) % 251)
}

// Forwarder is one entry of the MORE forwarder list: the compressed node ID
// and the node's TX credit in fixed point.
type Forwarder struct {
	Node   graph.NodeID // kept for convenience; encoded as NodeHash(Node)
	Hash   uint8
	Credit uint16 // TX credit × CreditScale
}

// MOREHeader is the header MORE prepends to every packet (Fig 3-1), in the
// compressed on-air form of §4.6(c): node addresses are 1-byte hashes of
// the IP (only nodes closer to the destination than the source may forward,
// so the hash resolves unambiguously), and the batch ID is a few bits
// because routers only keep the current batch — we spend one byte and
// compare modulo 256 with BatchNewer. Grey (required) fields are always
// present; the code vector and forwarder list appear only in data packets.
//
// With K = 32 and the 10-forwarder bound the header is exactly 70 bytes,
// matching the thesis' bound, under 5% of a 1500 B packet.
type MOREHeader struct {
	Type    Type
	FlowID  uint16
	SrcHash uint8 // NodeHash of the source
	DstHash uint8 // NodeHash of the destination
	BatchID uint8 // batch sequence modulo 256

	// CodeVector is present in data packets only: the coefficients that
	// generate the coded packet from the batch's natives (length K).
	CodeVector []byte

	// Forwarders is the ordered candidate forwarder list with TX credits.
	Forwarders []Forwarder
}

// BatchNewer reports whether batch a is newer than b under the modulo-256
// wire encoding, using a half-window comparison.
func BatchNewer(a, b uint8) bool {
	return a != b && uint8(a-b) < 128
}

// dataHeaderFixed is the encoded size of the required fields plus the two
// optional-field length bytes.
const dataHeaderFixed = 1 + 2 + 1 + 1 + 1 + 1 + 1

// EncodedSize returns the on-air size of the header in bytes.
func (h *MOREHeader) EncodedSize() int {
	return dataHeaderFixed + len(h.CodeVector) + 3*len(h.Forwarders)
}

// Encode appends the wire form of h to dst and returns the result.
func (h *MOREHeader) Encode(dst []byte) ([]byte, error) {
	if len(h.CodeVector) > 255 {
		return nil, fmt.Errorf("%w: code vector %d", ErrTooMany, len(h.CodeVector))
	}
	if len(h.Forwarders) > 255 {
		return nil, fmt.Errorf("%w: forwarders %d", ErrTooMany, len(h.Forwarders))
	}
	dst = append(dst, byte(h.Type))
	dst = binary.BigEndian.AppendUint16(dst, h.FlowID)
	dst = append(dst, h.SrcHash, h.DstHash, h.BatchID)
	dst = append(dst, byte(len(h.CodeVector)))
	dst = append(dst, h.CodeVector...)
	dst = append(dst, byte(len(h.Forwarders)))
	for _, f := range h.Forwarders {
		hash := f.Hash
		if hash == 0 {
			hash = NodeHash(f.Node)
		}
		dst = append(dst, hash)
		dst = binary.BigEndian.AppendUint16(dst, f.Credit)
	}
	return dst, nil
}

// DecodeMOREHeader parses a MORE header from b, returning the header and
// the number of bytes consumed. Node IDs in the forwarder list come back as
// hashes only (Node == -1); resolve them with ResolveForwarders.
func DecodeMOREHeader(b []byte) (*MOREHeader, int, error) {
	if len(b) < dataHeaderFixed-1 {
		return nil, 0, ErrTruncated
	}
	h := &MOREHeader{Type: Type(b[0])}
	if h.Type != TypeData && h.Type != TypeACK {
		return nil, 0, ErrBadType
	}
	h.FlowID = binary.BigEndian.Uint16(b[1:])
	h.SrcHash = b[3]
	h.DstHash = b[4]
	h.BatchID = b[5]
	off := 6
	if off >= len(b) {
		return nil, 0, ErrTruncated
	}
	k := int(b[off])
	off++
	if off+k > len(b) {
		return nil, 0, ErrTruncated
	}
	if k > 0 {
		h.CodeVector = append([]byte(nil), b[off:off+k]...)
	}
	off += k
	if off >= len(b) {
		return nil, 0, ErrTruncated
	}
	nf := int(b[off])
	off++
	if off+3*nf > len(b) {
		return nil, 0, ErrTruncated
	}
	for i := 0; i < nf; i++ {
		h.Forwarders = append(h.Forwarders, Forwarder{
			Node:   -1,
			Hash:   b[off],
			Credit: binary.BigEndian.Uint16(b[off+1:]),
		})
		off += 3
	}
	return h, off, nil
}

// ResolveForwarders maps hashed forwarder entries back to node IDs given
// the candidate set (as the real system resolves IP hashes against the
// nodes whose ETX allows them to participate, §4.6(c)). Entries whose hash
// matches no candidate keep Node == -1.
func ResolveForwarders(fw []Forwarder, candidates []graph.NodeID) {
	byHash := make(map[uint8]graph.NodeID, len(candidates))
	for _, id := range candidates {
		byHash[NodeHash(id)] = id
	}
	for i := range fw {
		if id, ok := byHash[fw[i].Hash]; ok {
			fw[i].Node = id
		}
	}
}

// CreditToWire converts a float credit to wire fixed point, saturating.
func CreditToWire(c float64) uint16 {
	v := c * CreditScale
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v + 0.5)
}

// CreditFromWire converts wire fixed point back to float.
func CreditFromWire(w uint16) float64 { return float64(w) / CreditScale }

// ACK is a MORE batch acknowledgment. It is carried in a packet whose MORE
// header has Type == TypeACK; the body identifies the acked batch.
type ACK struct {
	FlowID  uint32
	BatchID uint32
	// Final marks the ACK of the flow's last batch, letting the source
	// release flow state.
	Final bool
}

// EncodedSize returns the encoded ACK body size.
func (a *ACK) EncodedSize() int { return 9 }

// Encode appends the wire form of a to dst.
func (a *ACK) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a.FlowID)
	dst = binary.BigEndian.AppendUint32(dst, a.BatchID)
	final := byte(0)
	if a.Final {
		final = 1
	}
	return append(dst, final)
}

// DecodeACK parses an ACK body.
func DecodeACK(b []byte) (*ACK, int, error) {
	if len(b) < 9 {
		return nil, 0, ErrTruncated
	}
	return &ACK{
		FlowID:  binary.BigEndian.Uint32(b),
		BatchID: binary.BigEndian.Uint32(b[4:]),
		Final:   b[8] != 0,
	}, 9, nil
}
