package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMOREHeaderRoundTrip(t *testing.T) {
	h := &MOREHeader{
		Type:       TypeData,
		FlowID:     42,
		SrcHash:    NodeHash(0),
		DstHash:    NodeHash(19),
		BatchID:    7,
		CodeVector: []byte{1, 2, 3, 0, 255},
		Forwarders: []Forwarder{
			{Node: 3, Credit: CreditToWire(1.5)},
			{Node: 9, Credit: CreditToWire(0.25)},
		},
	}
	buf, err := h.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != h.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), h.EncodedSize())
	}
	got, n, err := DecodeMOREHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if got.Type != h.Type || got.FlowID != h.FlowID || got.SrcHash != h.SrcHash ||
		got.DstHash != h.DstHash || got.BatchID != h.BatchID {
		t.Fatalf("fixed fields mismatch: %+v", got)
	}
	if !bytes.Equal(got.CodeVector, h.CodeVector) {
		t.Fatalf("code vector %v != %v", got.CodeVector, h.CodeVector)
	}
	ResolveForwarders(got.Forwarders, []graph.NodeID{1, 3, 9, 12})
	if got.Forwarders[0].Node != 3 || got.Forwarders[1].Node != 9 {
		t.Fatalf("forwarder resolution failed: %+v", got.Forwarders)
	}
	if CreditFromWire(got.Forwarders[0].Credit) != 1.5 {
		t.Fatalf("credit round trip: %v", CreditFromWire(got.Forwarders[0].Credit))
	}
}

func TestMOREHeaderOverheadBound(t *testing.T) {
	// §4.6(c): with K=32 and the 10-forwarder bound the header is bounded
	// by 70 bytes, under 5% of a 1500 B packet.
	h := &MOREHeader{
		Type:       TypeData,
		CodeVector: make([]byte, 32),
		Forwarders: make([]Forwarder, MaxForwarders),
	}
	size := h.EncodedSize()
	if size > 70 {
		t.Fatalf("MORE header %d bytes with K=32 and 10 forwarders, want ≤ 70", size)
	}
	if float64(size)/1500 > 0.05 {
		t.Fatalf("header overhead %.2f%% exceeds 5%%", 100*float64(size)/1500)
	}
}

func TestMOREHeaderTruncation(t *testing.T) {
	h := &MOREHeader{Type: TypeData, CodeVector: []byte{1, 2, 3}, Forwarders: []Forwarder{{Node: 1}}}
	buf, _ := h.Encode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeMOREHeader(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestMOREHeaderBadType(t *testing.T) {
	buf := make([]byte, 64)
	buf[0] = 99
	if _, _, err := DecodeMOREHeader(buf); err != ErrBadType {
		t.Fatalf("err = %v", err)
	}
}

func TestACKRoundTrip(t *testing.T) {
	a := &ACK{FlowID: 5, BatchID: 17, Final: true}
	buf := a.Encode(nil)
	if len(buf) != a.EncodedSize() {
		t.Fatalf("size %d != %d", len(buf), a.EncodedSize())
	}
	got, n, err := DecodeACK(buf)
	if err != nil || n != len(buf) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("%+v != %+v", got, a)
	}
	if _, _, err := DecodeACK(buf[:5]); err == nil {
		t.Fatal("short ACK decoded")
	}
}

func TestExORHeaderRoundTrip(t *testing.T) {
	h := &ExORHeader{
		FlowID:        9,
		BatchID:       3,
		PktIdx:        12,
		BatchSize:     32,
		FragRemaining: 4,
		SenderPrio:    2,
		BatchMap:      bytes.Repeat([]byte{BatchMapUnknown}, 32),
		Forwarders:    []uint8{NodeHash(1), NodeHash(2)},
	}
	h.BatchMap[3] = 1
	buf, err := h.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != h.EncodedSize() {
		t.Fatalf("size mismatch %d != %d", len(buf), h.EncodedSize())
	}
	got, n, err := DecodeExORHeader(buf)
	if err != nil || n != len(buf) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("%+v != %+v", got, h)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeExORHeader(buf[:cut]); err == nil {
			t.Fatalf("short decode at %d succeeded", cut)
		}
	}
}

func TestSrcrHeaderRoundTrip(t *testing.T) {
	h := &SrcrHeader{FlowID: 1, Seq: 999, Hop: 1, Route: []graph.NodeID{4, 7, 2}}
	buf, err := h.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != h.EncodedSize() {
		t.Fatalf("size mismatch")
	}
	got, n, err := DecodeSrcrHeader(buf)
	if err != nil || n != len(buf) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("%+v != %+v", got, h)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := &Probe{Origin: 13, Seq: 77, Window: 100}
	buf := p.Encode(nil)
	got, n, err := DecodeProbe(buf)
	if err != nil || n != len(buf) || !reflect.DeepEqual(got, p) {
		t.Fatalf("probe round trip failed: %+v %v", got, err)
	}
	if _, _, err := DecodeProbe(buf[:3]); err == nil {
		t.Fatal("short probe decoded")
	}
}

func TestNodeHashDistinctForSmallIDs(t *testing.T) {
	seen := map[uint8]graph.NodeID{}
	for id := graph.NodeID(0); id < 40; id++ {
		h := NodeHash(id)
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision: nodes %d and %d -> %d", prev, id, h)
		}
		seen[h] = id
	}
}

func TestCreditWireSaturation(t *testing.T) {
	if CreditToWire(-1) != 0 {
		t.Fatal("negative credit should clamp to 0")
	}
	if CreditToWire(1e9) != 65535 {
		t.Fatal("huge credit should saturate")
	}
	if got := CreditFromWire(CreditToWire(0.5)); got != 0.5 {
		t.Fatalf("0.5 round trip = %v", got)
	}
}

func TestQuickMOREHeaderRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(flow uint16, src, dst, batch uint8, kRaw, nfRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw) % 129
		nf := int(nfRaw) % 11
		h := &MOREHeader{
			Type: TypeData, FlowID: flow, SrcHash: src, DstHash: dst, BatchID: batch,
		}
		if k > 0 {
			h.CodeVector = make([]byte, k)
			rng.Read(h.CodeVector)
		}
		for i := 0; i < nf; i++ {
			h.Forwarders = append(h.Forwarders, Forwarder{
				Hash:   uint8(rng.Intn(255) + 1),
				Credit: uint16(rng.Intn(65536)),
			})
		}
		buf, err := h.Encode(nil)
		if err != nil {
			return false
		}
		got, n, err := DecodeMOREHeader(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if got.FlowID != flow || got.BatchID != batch || !bytes.Equal(got.CodeVector, h.CodeVector) {
			return false
		}
		if len(got.Forwarders) != nf {
			return false
		}
		for i := range got.Forwarders {
			if got.Forwarders[i].Hash != h.Forwarders[i].Hash ||
				got.Forwarders[i].Credit != h.Forwarders[i].Credit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(100))
		rng.Read(b)
		DecodeMOREHeader(b)
		DecodeACK(b)
		DecodeExORHeader(b)
		DecodeSrcrHeader(b)
		DecodeProbe(b)
	}
}

func TestBatchNewer(t *testing.T) {
	cases := []struct {
		a, b uint8
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{5, 5, false},
		{0, 255, true}, // wraparound
		{255, 0, false},
		{130, 5, true},
		{5, 130, false},
	}
	for _, c := range cases {
		if got := BatchNewer(c.a, c.b); got != c.want {
			t.Errorf("BatchNewer(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLSARoundTrip(t *testing.T) {
	l := &LSA{
		Origin:    7,
		Seq:       42,
		Neighbors: []graph.NodeID{1, 3, 9},
		Probs:     []uint8{QuantizeProb(0.9), QuantizeProb(0.5), QuantizeProb(0.1)},
	}
	buf, err := l.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != l.EncodedSize() {
		t.Fatalf("size %d != %d", len(buf), l.EncodedSize())
	}
	got, n, err := DecodeLSA(buf)
	if err != nil || n != len(buf) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("%+v != %+v", got, l)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeLSA(buf[:cut]); err == nil {
			t.Fatalf("short decode at %d succeeded", cut)
		}
	}
	if _, err := (&LSA{Neighbors: make([]graph.NodeID, 1)}).Encode(nil); err == nil {
		t.Fatal("mismatched neighbor/prob lengths accepted")
	}
}

func TestQuantizeProb(t *testing.T) {
	if QuantizeProb(-1) != 0 || QuantizeProb(2) != 255 {
		t.Fatal("clamping broken")
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := UnquantizeProb(QuantizeProb(p))
		if got < p-0.01 || got > p+0.01 {
			t.Fatalf("quantize round trip %v -> %v", p, got)
		}
	}
}
