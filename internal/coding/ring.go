package coding

import "sync/atomic"

// Ring is a bounded single-producer/single-consumer queue (a Lamport ring):
// exactly one goroutine may push and exactly one may pop. Under that
// contract it is lock-free and wait-free — each side publishes with one
// atomic store and observes the other with one atomic load — which is what
// the pipeline wants for its decode→recode hand-off: the decode worker
// streams recovered batches to the recode stage without either side taking
// a lock on the hot path.
//
// Invariants (head and tail are free-running uint64 counters, never
// wrapped; the slot index is counter&mask):
//
//   - head <= tail <= head+cap at every instant.
//   - Slots [head, tail) are owned by the consumer (full), slots
//     [tail, head+cap) by the producer (empty). Ownership transfers only at
//     the single atomic store in TryPush/TryPop, so the two sides never
//     touch a slot concurrently.
//   - The producer writes buf[tail&mask] before storing tail+1; Go atomics
//     are release/acquire, so a consumer that observes the new tail also
//     observes the slot contents.
//
// The counters live on separate cache lines so the producer's tail stores
// do not false-share with the consumer's head stores.
type Ring[T any] struct {
	_    [64]byte
	head atomic.Uint64 // next slot to pop; advanced only by the consumer
	_    [56]byte
	tail atomic.Uint64 // next slot to push; advanced only by the producer
	_    [56]byte
	mask uint64
	buf  []T
}

// NewRing creates a ring holding at least capacity elements (rounded up to
// a power of two, minimum 2, so the index math is a mask).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{mask: uint64(n - 1), buf: make([]T, n)}
}

// TryPush appends v and reports success; it fails (without blocking) when
// the ring is full. Producer side only.
func (r *Ring[T]) TryPush(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// TryPop removes the oldest element and reports success; it fails (without
// blocking) when the ring is empty. The slot is zeroed so the ring does not
// retain popped pointers. Consumer side only.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero
	r.head.Store(head + 1)
	return v, true
}

// Len returns a snapshot of the number of queued elements. With both sides
// running it is advisory only.
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap returns the ring's fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }
