package coding

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pipeline shards batch work across worker goroutines. Every component in
// this package (Source, Buffer, Decoder, Pool) is single-goroutine by
// design; the pipeline scales them to multiple cores without adding a
// single lock to their hot paths by partitioning *batches*, not packets:
//
//   - Affinity: Submit(batch, fn) always routes a given batch ID to the
//     worker batch % N. All coding state for one batch (buffers, decoders,
//     pools, RNG) is therefore touched by exactly one goroutine for the
//     lifetime of the batch. No sharing, no locks, and — because each
//     batch's work is serialized in submission order on its worker — output
//     is byte-identical for every worker count (TestPipelineDeterminism
//     pins N workers against 1).
//
//   - Per-worker arenas: each worker owns a set of slab-backed Pools keyed
//     by packet shape (Worker.Pool). Packets never migrate between workers,
//     so the pools keep the single-owner contract from pool.go.
//
//   - Hand-off: jobs reach workers through bounded SPSC rings (ring.go) —
//     Submit is the producer, the worker loop the consumer. A full ring
//     back-pressures the producer (Submit spins with Gosched rather than
//     growing a queue). Stages inside a job that want to stream results to
//     another stage use their own Ring the same way (decode→recode in the
//     experiments driver).
//
// Contract: Submit, Flush, and Close must all be called from one goroutine
// (the coordinator). That single-producer discipline is what lets the rings
// and the flush accounting run on plain atomics.
type Pipeline struct {
	workers []*Worker
	pending atomic.Int64  // submitted minus completed jobs
	idle    chan struct{} // cap 1; signaled when pending drains to zero
	closed  bool
	wg      sync.WaitGroup
}

// Worker is one pipeline shard. The *Worker passed to a job must only be
// used inside that job (it is the job's license to touch worker-owned
// state).
type Worker struct {
	id    int
	p     *Pipeline
	in    *Ring[func(*Worker)]
	wake  chan struct{} // cap 1: producer rings the bell after a push
	pools map[poolKey]*Pool
}

type poolKey struct{ k, size int }

// workerRingCap bounds the per-worker job queue; a full ring back-pressures
// Submit instead of queueing unboundedly.
const workerRingCap = 256

// NewPipeline starts n workers (n < 1 selects GOMAXPROCS).
func NewPipeline(n int) *Pipeline {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{
		workers: make([]*Worker, n),
		idle:    make(chan struct{}, 1),
	}
	for i := range p.workers {
		w := &Worker{
			id:    i,
			p:     p,
			in:    NewRing[func(*Worker)](workerRingCap),
			wake:  make(chan struct{}, 1),
			pools: make(map[poolKey]*Pool),
		}
		p.workers[i] = w
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Workers returns the worker count.
func (p *Pipeline) Workers() int { return len(p.workers) }

// Submit routes fn to the worker owning batch (batch % Workers()) and
// returns once it is enqueued. Jobs for the same batch run in submission
// order on the same goroutine; jobs for different batches run concurrently.
// Submit blocks (spinning with Gosched) while the target worker's ring is
// full. Panics if the pipeline is closed.
func (p *Pipeline) Submit(batch uint64, fn func(w *Worker)) {
	if p.closed {
		panic("coding: Submit on closed Pipeline")
	}
	w := p.workers[batch%uint64(len(p.workers))]
	p.pending.Add(1)
	for !w.in.TryPush(fn) {
		runtime.Gosched()
	}
	// Ring the bell; a full cap-1 channel means the worker already has a
	// pending wake and will see this push when it drains.
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// Flush blocks until every submitted job has finished. Because the caller
// is the only producer, no new work can race in, so on return the pipeline
// is quiescent.
func (p *Pipeline) Flush() {
	for p.pending.Load() != 0 {
		<-p.idle
	}
	// Drain a stale idle signal (a worker may have signaled between our
	// load and a previous drain) so the next Flush doesn't wake spuriously.
	select {
	case <-p.idle:
	default:
	}
}

// Close flushes outstanding work and stops the workers. The pipeline cannot
// be reused afterwards; Close is idempotent.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.Flush()
	p.closed = true
	for _, w := range p.workers {
		// Unbuffered-style guaranteed delivery: the bell channel has cap 1,
		// so either this send lands or a wake is already pending; either
		// way the worker re-checks closed.
		select {
		case w.wake <- struct{}{}:
		default:
		}
		close(w.wake)
	}
	p.wg.Wait()
}

func (w *Worker) loop() {
	defer w.p.wg.Done()
	for {
		fn, ok := w.in.TryPop()
		if !ok {
			// Park until the producer rings the bell. A closed bell means
			// Close ran, and Close only runs after Flush, so an empty ring
			// here is final.
			if _, open := <-w.wake; !open {
				return
			}
			continue
		}
		fn(w)
		if w.p.pending.Add(-1) == 0 {
			select {
			case w.p.idle <- struct{}{}:
			default:
			}
		}
	}
}

// ID returns the worker's index in [0, Workers()).
func (w *Worker) ID() int { return w.id }

// Pool returns this worker's slab-backed packet pool for the given shape,
// creating it on first use. The pool — like everything reached through w —
// must only be used by jobs running on this worker, which the batch
// affinity guarantees as long as each batch sticks to one shape's pool.
func (w *Worker) Pool(k, size int) *Pool {
	key := poolKey{k, size}
	if pl, ok := w.pools[key]; ok {
		return pl
	}
	// Size slabs so one slab holds a full batch plus recode slack.
	pl := NewArenaPool(k, size, 2*k+8)
	w.pools[key] = pl
	return pl
}

// String identifies the worker in test failures.
func (w *Worker) String() string { return fmt.Sprintf("worker%d", w.id) }
