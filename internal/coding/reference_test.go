package coding

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReferenceDecodeMatchesProgressive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%16 + 1
		size := 64
		rng := rand.New(rand.NewSource(seed))
		natives := randomNatives(rng, k, size)
		src, _ := NewSource(natives, rng)

		var pkts []*Packet
		dec := NewDecoder(k, size)
		for !dec.Complete() {
			p := src.Next()
			pkts = append(pkts, p.Clone())
			dec.Add(p)
			if len(pkts) > 5*k+10 {
				return false
			}
		}
		progressive, err := dec.Decode()
		if err != nil {
			return false
		}
		reference, err := ReferenceDecode(k, pkts)
		if err != nil {
			return false
		}
		for i := range natives {
			if !bytes.Equal(progressive[i], natives[i]) {
				return false
			}
			if !bytes.Equal(reference[i], natives[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReferenceDecodeRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	natives := randomNatives(rng, 4, 8)
	src, _ := NewSource(natives, rng)
	p := src.Next()
	// Two dependent packets only.
	dup := p.Clone()
	if _, err := ReferenceDecode(4, []*Packet{p, dup}); err == nil {
		t.Fatal("rank-deficient decode succeeded")
	}
	if _, err := ReferenceDecode(4, nil); err == nil {
		t.Fatal("empty decode succeeded")
	}
	bad := src.Next()
	bad.Vector = bad.Vector[:2]
	if _, err := ReferenceDecode(4, []*Packet{bad}); err == nil {
		t.Fatal("malformed packet accepted")
	}
}

func TestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	natives := randomNatives(rng, 6, 10)
	src, _ := NewSource(natives, rng)
	var vectors [][]byte
	for i := 0; i < 3; i++ {
		vectors = append(vectors, src.Next().Vector)
	}
	// Random vectors over GF(256) are independent w.h.p.
	if got := Rank(6, vectors); got != 3 {
		t.Fatalf("rank = %d, want 3", got)
	}
	// Adding a linear combination of existing ones must not raise rank...
	sum := make([]byte, 6)
	copy(sum, vectors[0])
	for i := range sum {
		sum[i] ^= vectors[1][i]
	}
	vectors = append(vectors, sum)
	if got := Rank(6, vectors); got != 3 {
		t.Fatalf("rank after dependent vector = %d, want 3", got)
	}
	// ...and malformed vectors are skipped.
	vectors = append(vectors, []byte{1})
	if got := Rank(6, vectors); got != 3 {
		t.Fatalf("rank after malformed vector = %d", got)
	}
}

func BenchmarkProgressiveDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	k, size := 32, 1500
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	pkts := make([]*Packet, 40)
	for i := range pkts {
		pkts[i] = src.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(k, size)
		for j := 0; !dec.Complete(); j++ {
			dec.Add(pkts[j].Clone())
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	k, size := 32, 1500
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	pkts := make([]*Packet, k+4)
	for i := range pkts {
		pkts[i] = src.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceDecode(k, pkts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	k, size := 32, 1500
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	buf := NewBuffer(k, size)
	for !buf.Full() {
		buf.Add(src.Next())
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Recode(rng)
	}
}

func BenchmarkPreCoderUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	k, size := 32, 1500
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	buf := NewBuffer(k, size)
	pc := NewPreCoder(buf, rng)
	for !buf.Full() {
		buf.Add(src.Next())
	}
	pc.Refresh()
	row := buf.Rows()[0]
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Update(row)
	}
}
