package coding

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRingBounds(t *testing.T) {
	r := NewRing[int](5) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring succeeded")
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush %d failed before capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on full ring")
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = %d,%v, want %d,true (FIFO order)", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop succeeded after drain")
	}
}

// TestRingSPSCStress hammers one ring from one producer and one consumer
// goroutine; under -race this proves the release/acquire hand-off publishes
// slot contents, and the FIFO check proves no slot is lost or reordered.
func TestRingSPSCStress(t *testing.T) {
	const total = 100000
	r := NewRing[*Packet](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			p := &Packet{Vector: []byte{byte(i)}, Payload: []byte{byte(i >> 8), byte(i >> 16), byte(i >> 24)}}
			if r.TryPush(p) {
				i++
			} else {
				runtime.Gosched() // full: let the consumer run (matters on 1 CPU)
			}
		}
	}()
	for i := 0; i < total; {
		p, ok := r.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		got := int(p.Vector[0]) | int(p.Payload[0])<<8 | int(p.Payload[1])<<16 | int(p.Payload[2])<<24
		if got != i {
			t.Fatalf("popped %d, want %d", got, i)
		}
		i++
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty after stress: %d", r.Len())
	}
}

func TestArenaPool(t *testing.T) {
	p := NewArenaPool(4, 100, 8)
	if p.Slabs() != 0 {
		t.Fatalf("fresh arena pool has %d slabs", p.Slabs())
	}
	// Draw two slabs' worth and verify shape and non-aliasing.
	pkts := make([]*Packet, 9)
	for i := range pkts {
		pkts[i] = p.Get()
		if len(pkts[i].Vector) != 4 || len(pkts[i].Payload) != 100 {
			t.Fatalf("packet %d has shape %d/%d", i, len(pkts[i].Vector), len(pkts[i].Payload))
		}
		for j := range pkts[i].Payload {
			pkts[i].Payload[j] = byte(i)
		}
		pkts[i].Vector[0] = byte(i)
	}
	if p.Slabs() != 2 {
		t.Fatalf("after 9 gets from slab-of-8: %d slabs, want 2", p.Slabs())
	}
	for i, q := range pkts {
		if q.Payload[0] != byte(i) || q.Payload[99] != byte(i) || q.Vector[0] != byte(i) {
			t.Fatalf("packet %d aliases another packet's storage", i)
		}
	}
	// Append to a packet's slices must not bleed into the neighbor carved
	// from the same slab (the three-index carve pins capacity).
	pkts[0].Payload = append(pkts[0].Payload, 0xEE)
	if pkts[1].Payload[0] != 1 {
		t.Fatal("append to packet 0 payload overwrote packet 1")
	}
	pkts[0].Payload = pkts[0].Payload[:100]
	// Put/Get reuses without growing.
	for _, q := range pkts {
		p.Put(q)
	}
	for range pkts {
		p.Get()
	}
	if p.Slabs() != 2 {
		t.Fatalf("reuse grew the pool to %d slabs", p.Slabs())
	}
}

func TestPipelineAffinity(t *testing.T) {
	p := NewPipeline(4)
	defer p.Close()
	const batches, perBatch = 64, 16
	owner := make([][]int, batches) // worker IDs seen per batch
	for i := range owner {
		owner[i] = make([]int, 0, perBatch)
	}
	for round := 0; round < perBatch; round++ {
		for b := 0; b < batches; b++ {
			b := b
			p.Submit(uint64(b), func(w *Worker) {
				owner[b] = append(owner[b], w.ID()) // single writer per batch: no lock
			})
		}
	}
	p.Flush()
	for b, ids := range owner {
		if len(ids) != perBatch {
			t.Fatalf("batch %d ran %d jobs, want %d", b, len(ids), perBatch)
		}
		want := b % p.Workers()
		for _, id := range ids {
			if id != want {
				t.Fatalf("batch %d ran on worker %d, want %d (affinity broken)", b, id, want)
			}
		}
	}
}

// TestPipelineStress runs a full coding workload — source-code, buffer,
// recode, decode — per batch across 4 workers with per-worker arena pools,
// under load. Run with -race this is the pipeline's data-race proof.
func TestPipelineStress(t *testing.T) {
	const nWorkers, batches = 4, 32
	k, size := 8, 256
	p := NewPipeline(nWorkers)
	defer p.Close()

	type batchState struct {
		src  *Source
		buf  *Buffer
		dec  *Decoder
		rng  *rand.Rand
		want [][]byte
		done bool
	}
	states := make([]*batchState, batches)

	// Stage 1: per-batch setup, on the owning worker.
	for b := 0; b < batches; b++ {
		b := b
		p.Submit(uint64(b), func(w *Worker) {
			rng := rand.New(rand.NewSource(int64(1000 + b)))
			native := make([][]byte, k)
			for i := range native {
				native[i] = make([]byte, size)
				rng.Read(native[i])
			}
			src, err := NewSource(native, rng)
			if err != nil {
				panic(err)
			}
			pool := w.Pool(k, size)
			src.UsePool(pool)
			buf := NewBuffer(k, size)
			buf.UsePool(pool)
			dec := NewDecoder(k, size)
			dec.UsePool(pool)
			states[b] = &batchState{src: src, buf: buf, dec: dec, rng: rng, want: native}
		})
	}
	p.Flush()

	// Stage 2: many interleaved rounds of transmit → buffer(recode) → decode.
	for round := 0; round < 3*k; round++ {
		for b := 0; b < batches; b++ {
			b := b
			p.Submit(uint64(b), func(w *Worker) {
				st := states[b]
				if st.done {
					return
				}
				st.buf.Add(st.src.Next())
				if rc := st.buf.Recode(st.rng); rc != nil {
					st.dec.Add(rc)
				}
				if st.dec.Complete() {
					natives, err := st.dec.Decode()
					if err != nil {
						panic(err)
					}
					for i, got := range natives {
						if !bytes.Equal(got, st.want[i]) {
							panic(fmt.Sprintf("batch %d native %d corrupt", b, i))
						}
					}
					st.done = true
				}
			})
		}
	}
	p.Flush()
	for b, st := range states {
		if !st.done {
			t.Fatalf("batch %d failed to decode after %d rounds", b, 3*k)
		}
	}
}

// runShardedWorkload codes, ships, and decodes `batches` batches on a
// pipeline with n workers, handing decoded batches from the decode stage to
// a recode stage through an SPSC ring, and returns one digest payload per
// batch (a recode drawn from the decoded batch with a fixed-seed RNG). All
// per-batch randomness is seeded by batch ID only, so the result must be
// byte-identical for every n.
func runShardedWorkload(t *testing.T, n, batches, k, size int) [][]byte {
	t.Helper()
	p := NewPipeline(n)
	defer p.Close()

	out := make([][]byte, batches)
	natives := make([][][]byte, batches)

	// Decode stage -> recode stage hand-off rings. SPSC needs one producer
	// per ring, so each worker gets its own: the worker is the producer, the
	// coordinator goroutine the consumer.
	rings := make([]*Ring[int], p.Workers())
	for i := range rings {
		rings[i] = NewRing[int](batches)
	}

	for b := 0; b < batches; b++ {
		b := b
		p.Submit(uint64(b), func(w *Worker) {
			rng := rand.New(rand.NewSource(int64(7000 + b)))
			native := make([][]byte, k)
			for i := range native {
				native[i] = make([]byte, size)
				rng.Read(native[i])
			}
			src, err := NewSource(native, rng)
			if err != nil {
				panic(err)
			}
			pool := w.Pool(k, size)
			src.UsePool(pool)
			dec := NewDecoder(k, size)
			dec.UsePool(pool)
			for !dec.Complete() {
				dec.Add(src.Next())
			}
			pays, err := dec.Decode()
			if err != nil {
				panic(err)
			}
			natives[b] = pays
			if !rings[w.ID()].TryPush(b) {
				panic("hand-off ring overflow")
			}
		})
	}
	p.Flush()

	// Recode stage: consume the hand-off rings (the coordinator is the sole
	// consumer of each) and route each decoded batch back to its owning
	// worker to draw the digest recode from a batch-seeded RNG.
	for _, r := range rings {
		for {
			b, ok := r.TryPop()
			if !ok {
				break
			}
			p.Submit(uint64(b), func(w *Worker) {
				rng := rand.New(rand.NewSource(int64(9000 + b)))
				buf := NewBuffer(k, size)
				buf.UsePool(w.Pool(k, size))
				for i, pay := range natives[b] {
					q := w.Pool(k, size).Get()
					clear(q.Vector)
					q.Vector[i] = 1
					copy(q.Payload, pay)
					buf.Add(q)
				}
				rc := buf.Recode(rng)
				out[b] = append([]byte(nil), rc.Payload...)
			})
		}
	}
	p.Flush()

	for b := range out {
		if out[b] == nil {
			t.Fatalf("batch %d produced no digest", b)
		}
	}
	return out
}

// TestPipelineDeterminism pins the core scaling guarantee: the sharded
// pipeline's output is byte-identical regardless of worker count, because
// batch affinity serializes each batch's work and all randomness is
// batch-seeded.
func TestPipelineDeterminism(t *testing.T) {
	const batches, k, size = 24, 8, 128
	want := runShardedWorkload(t, 1, batches, k, size)
	for _, n := range []int{2, 3, 4, 8} {
		got := runShardedWorkload(t, n, batches, k, size)
		for b := range want {
			if !bytes.Equal(got[b], want[b]) {
				t.Fatalf("cores=%d batch %d differs from cores=1", n, b)
			}
		}
	}
}

func TestPipelineFlushIdle(t *testing.T) {
	p := NewPipeline(2)
	defer p.Close()
	p.Flush() // flush with nothing submitted must not hang
	ran := false
	p.Submit(0, func(w *Worker) { ran = true })
	p.Flush()
	if !ran {
		t.Fatal("job did not run before Flush returned")
	}
	p.Flush() // repeated flush must not hang on a stale idle signal
}

func TestPipelineCloseAndSubmitPanics(t *testing.T) {
	p := NewPipeline(2)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(uint64(i), func(w *Worker) { n.Add(1) })
	}
	p.Close()
	if n.Load() != 100 {
		t.Fatalf("Close lost jobs: %d of 100 ran", n.Load())
	}
	p.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	p.Submit(0, func(w *Worker) {})
}

func TestWorkerPoolPerShape(t *testing.T) {
	p := NewPipeline(1)
	defer p.Close()
	p.Submit(0, func(w *Worker) {
		a := w.Pool(8, 256)
		b := w.Pool(8, 256)
		c := w.Pool(16, 256)
		if a != b {
			panic("same shape returned distinct pools")
		}
		if a == c {
			panic("different shapes share a pool")
		}
		q := a.Get()
		if len(q.Vector) != 8 || len(q.Payload) != 256 {
			panic("worker pool packet has wrong shape")
		}
	})
	p.Flush()
}
