// Package coding implements MORE's intra-flow random linear network coding
// (Chapter 3 of the thesis).
//
// A batch consists of K native packets p_1 … p_K of equal size. Every data
// transmission carries a coded packet p' = Σ c_i p_i together with its code
// vector c = (c_1, …, c_K) over GF(2^8). The package provides:
//
//   - Packet: a coded packet (code vector + payload).
//   - Source: codes random combinations of the K native packets (§3.1.1).
//   - Buffer: a forwarder/destination batch buffer that keeps the code
//     vectors of stored packets in row-echelon form and admits only
//     innovative packets using Algorithm 2 (§3.2.3(a),(b)).
//   - PreCoder: the pre-computed next transmission, updated incrementally as
//     innovative packets arrive (§3.2.3(c)).
//   - Decoder: progressive Gaussian elimination at the destination; once K
//     innovative packets arrive the natives are recovered (§3.1.3).
//
// All randomness is drawn from a caller-supplied *rand.Rand so simulations
// are deterministic under a fixed seed.
package coding

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gf256"
)

// Packet is a coded packet: the code vector describing how it was derived
// from the batch's native packets, plus the coded payload bytes.
type Packet struct {
	// Vector has length K (the batch size). Vector[i] is the coefficient
	// of native packet i.
	Vector []byte
	// Payload is the coded data, the same length for every packet of a
	// batch.
	Payload []byte
}

// Clone returns a deep copy of p.
func (p *Packet) Clone() *Packet {
	q := &Packet{
		Vector:  make([]byte, len(p.Vector)),
		Payload: make([]byte, len(p.Payload)),
	}
	copy(q.Vector, p.Vector)
	copy(q.Payload, p.Payload)
	return q
}

// IsZero reports whether the packet's code vector is all-zero (it then
// carries no information).
func (p *Packet) IsZero() bool {
	for _, c := range p.Vector {
		if c != 0 {
			return false
		}
	}
	return true
}

// String summarizes the packet for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("coded{K=%d,S=%d}", len(p.Vector), len(p.Payload))
}

// randNonZero returns a uniformly random nonzero field element.
func randNonZero(rng *rand.Rand) byte {
	return byte(1 + rng.Intn(255))
}

// Source codes transmissions at the flow's origin: a random linear
// combination of all K native packets of the current batch (§3.1.1). In
// MORE, data packets are always coded, even at the source.
type Source struct {
	native  [][]byte // the K native payloads
	k       int
	size    int
	rng     *rand.Rand
	scratch []byte
}

// NewSource builds a Source for one batch of native payloads. All payloads
// must have equal nonzero length. The slice is retained, not copied.
func NewSource(native [][]byte, rng *rand.Rand) (*Source, error) {
	if len(native) == 0 {
		return nil, errors.New("coding: empty batch")
	}
	size := len(native[0])
	if size == 0 {
		return nil, errors.New("coding: zero-size payloads")
	}
	for i, p := range native {
		if len(p) != size {
			return nil, fmt.Errorf("coding: payload %d has size %d, want %d", i, len(p), size)
		}
	}
	return &Source{native: native, k: len(native), size: size, rng: rng}, nil
}

// K returns the batch size.
func (s *Source) K() int { return s.k }

// PayloadSize returns the common payload length.
func (s *Source) PayloadSize() int { return s.size }

// Next produces a freshly coded packet: random coefficients over all K
// natives. The coefficient of at least one native is forced nonzero so the
// packet is never the useless all-zero combination.
func (s *Source) Next() *Packet {
	p := &Packet{
		Vector:  make([]byte, s.k),
		Payload: make([]byte, s.size),
	}
	zero := true
	for i := range p.Vector {
		c := byte(s.rng.Intn(256))
		p.Vector[i] = c
		if c != 0 {
			zero = false
			gf256.MulAddSlice(p.Payload, s.native[i], c)
		}
	}
	if zero {
		// Exponentially unlikely for realistic K, but fix it up: pick a
		// random native to include with a nonzero coefficient.
		i := s.rng.Intn(s.k)
		c := randNonZero(s.rng)
		p.Vector[i] = c
		gf256.MulAddSlice(p.Payload, s.native[i], c)
	}
	return p
}

// Buffer is the per-batch store of innovative packets kept by forwarders and
// destinations. Code vectors are maintained in row-echelon form: row i, if
// present, has its first nonzero element at index i and that element is
// normalized to 1 (Algorithm 2). Payloads receive the same row operations so
// each stored row remains a valid coded packet.
type Buffer struct {
	k    int
	size int
	rows []*Packet // rows[i] == nil if the slot is empty
	rank int
}

// NewBuffer creates an empty buffer for batch size k and payload size.
func NewBuffer(k, size int) *Buffer {
	return &Buffer{k: k, size: size, rows: make([]*Packet, k)}
}

// K returns the batch size.
func (b *Buffer) K() int { return b.k }

// PayloadSize returns the payload size.
func (b *Buffer) PayloadSize() int { return b.size }

// Rank returns the number of innovative packets stored (the dimension of
// the span of everything received so far).
func (b *Buffer) Rank() int { return b.rank }

// Full reports whether the buffer holds K innovative packets, i.e. the
// whole batch can be decoded.
func (b *Buffer) Full() bool { return b.rank == b.k }

// Innovative reports whether a packet with the given code vector would be
// innovative (linearly independent of the stored packets) without modifying
// the buffer. It runs the elimination on a scratch copy of the vector only —
// checking for innovativeness never touches payload bytes (§3.2.3(b)).
func (b *Buffer) Innovative(vector []byte) bool {
	if len(vector) != b.k {
		return false
	}
	u := make([]byte, b.k)
	copy(u, vector)
	for i := 0; i < b.k; i++ {
		if u[i] == 0 {
			continue
		}
		if b.rows[i] == nil {
			return true
		}
		gf256.MulAddSlice(u, b.rows[i].Vector, u[i]) // u -= rows[i]*u[i]
	}
	return false
}

// Add runs Algorithm 2: it reduces the packet against the stored rows and,
// if the result is nonzero, admits it into the empty slot it lands in and
// returns true (rank increased). Non-innovative packets are discarded and
// Add returns false. The packet is consumed: Add may modify it in place.
func (b *Buffer) Add(p *Packet) bool {
	if len(p.Vector) != b.k || len(p.Payload) != b.size {
		return false
	}
	for i := 0; i < b.k; i++ {
		c := p.Vector[i]
		if c == 0 {
			continue
		}
		row := b.rows[i]
		if row == nil {
			// Admit: normalize the leading coefficient to 1.
			inv := gf256.Inv(c)
			gf256.ScaleSlice(p.Vector, inv)
			gf256.ScaleSlice(p.Payload, inv)
			b.rows[i] = p
			b.rank++
			return true
		}
		// p -= row * c  (row's leading element is 1 at index i).
		gf256.MulAddSlice(p.Vector, row.Vector, c)
		gf256.MulAddSlice(p.Payload, row.Payload, c)
	}
	return false
}

// Rows returns the stored innovative packets in echelon order. The returned
// slice is freshly allocated but the packets are the buffer's own; callers
// must not mutate them.
func (b *Buffer) Rows() []*Packet {
	out := make([]*Packet, 0, b.rank)
	for _, r := range b.rows {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Recode produces a fresh random linear combination of the stored innovative
// packets (what a forwarder transmits, §3.1.2). It returns nil if the buffer
// is empty. A linear combination of coded packets is itself a coded packet
// whose vector is expressed in terms of the natives.
func (b *Buffer) Recode(rng *rand.Rand) *Packet {
	if b.rank == 0 {
		return nil
	}
	p := &Packet{Vector: make([]byte, b.k), Payload: make([]byte, b.size)}
	any := false
	var last *Packet
	for _, row := range b.rows {
		if row == nil {
			continue
		}
		last = row
		r := byte(rng.Intn(256))
		if r == 0 {
			continue
		}
		any = true
		gf256.MulAddSlice(p.Vector, row.Vector, r)
		gf256.MulAddSlice(p.Payload, row.Payload, r)
	}
	if !any {
		// All coefficients drew zero; include the last row with a nonzero
		// coefficient so the transmission is never vacuous.
		r := randNonZero(rng)
		gf256.MulAddSlice(p.Vector, last.Vector, r)
		gf256.MulAddSlice(p.Payload, last.Payload, r)
	}
	return p
}

// Reset drops all stored packets (batch flush: overheard ACK or newer batch,
// §3.2.2).
func (b *Buffer) Reset() {
	for i := range b.rows {
		b.rows[i] = nil
	}
	b.rank = 0
}

// PreCoder maintains one pre-computed coded packet so that a transmission is
// ready the instant the MAC offers an opportunity (§3.2.3(c)). After handing
// a packet out, call Refresh to precompute the next one; when an innovative
// packet arrives in between, call Update to fold it in with a fresh random
// coefficient, so the prepared packet reflects everything the node knows.
type PreCoder struct {
	buf  *Buffer
	rng  *rand.Rand
	next *Packet
}

// NewPreCoder creates a PreCoder over the given buffer.
func NewPreCoder(buf *Buffer, rng *rand.Rand) *PreCoder {
	return &PreCoder{buf: buf, rng: rng}
}

// Ready reports whether a pre-coded packet is prepared.
func (pc *PreCoder) Ready() bool { return pc.next != nil }

// Refresh precomputes the next transmission from the current buffer
// contents. It is a no-op if the buffer is empty.
func (pc *PreCoder) Refresh() {
	pc.next = pc.buf.Recode(pc.rng)
}

// Update folds a newly arrived innovative packet into the prepared
// transmission: next += r * p for a random nonzero r. If nothing is
// prepared yet it performs a Refresh instead. p must already have been
// admitted to the buffer (so sizes agree).
func (pc *PreCoder) Update(p *Packet) {
	if pc.next == nil {
		pc.Refresh()
		return
	}
	r := randNonZero(pc.rng)
	gf256.MulAddSlice(pc.next.Vector, p.Vector, r)
	gf256.MulAddSlice(pc.next.Payload, p.Payload, r)
}

// Take hands out the prepared packet (or codes one on the spot if none is
// prepared — the "naive" path pre-coding exists to avoid) and immediately
// prepares the next. Returns nil if the buffer is empty.
func (pc *PreCoder) Take() *Packet {
	p := pc.next
	if p == nil {
		p = pc.buf.Recode(pc.rng)
		if p == nil {
			return nil
		}
	}
	pc.Refresh()
	return p
}

// Reset discards any prepared packet (used when the batch is flushed).
func (pc *PreCoder) Reset() { pc.next = nil }

// Decoder recovers the K native packets at the destination. It reuses
// Buffer's progressive elimination and, when the buffer is full,
// back-substitutes to reduced row-echelon form so row i is exactly native
// packet i (§3.1.3). Decoding costs ~2NS multiplications per packet as the
// thesis notes; the forward phase happens as packets arrive, spreading the
// work.
type Decoder struct {
	buf *Buffer
}

// NewDecoder creates a decoder for batch size k and payload size.
func NewDecoder(k, size int) *Decoder {
	return &Decoder{buf: NewBuffer(k, size)}
}

// Buffer exposes the underlying batch buffer (shared with the forwarder
// logic when the destination also forwards).
func (d *Decoder) Buffer() *Buffer { return d.buf }

// Rank returns the number of innovative packets received.
func (d *Decoder) Rank() int { return d.buf.Rank() }

// Add feeds a received packet into the decoder, returning true if it was
// innovative.
func (d *Decoder) Add(p *Packet) bool { return d.buf.Add(p) }

// Complete reports whether enough innovative packets have arrived to decode
// the whole batch.
func (d *Decoder) Complete() bool { return d.buf.Full() }

// Decode returns the K native payloads in order. It errors if the batch is
// not yet complete. Decode back-substitutes in place; it is idempotent.
func (d *Decoder) Decode() ([][]byte, error) {
	if !d.buf.Full() {
		return nil, fmt.Errorf("coding: batch incomplete, rank %d of %d", d.buf.Rank(), d.buf.k)
	}
	rows := d.buf.rows
	k := d.buf.k
	// Back-substitution: clear everything above each pivot, bottom-up.
	for i := k - 1; i >= 0; i-- {
		for j := 0; j < i; j++ {
			c := rows[j].Vector[i]
			if c == 0 {
				continue
			}
			gf256.MulAddSlice(rows[j].Vector, rows[i].Vector, c)
			gf256.MulAddSlice(rows[j].Payload, rows[i].Payload, c)
		}
	}
	out := make([][]byte, k)
	for i := range out {
		out[i] = rows[i].Payload
	}
	return out, nil
}
