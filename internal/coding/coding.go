// Package coding implements MORE's intra-flow random linear network coding
// (Chapter 3 of the thesis).
//
// A batch consists of K native packets p_1 … p_K of equal size. Every data
// transmission carries a coded packet p' = Σ c_i p_i together with its code
// vector c = (c_1, …, c_K) over GF(2^8). The package provides:
//
//   - Packet: a coded packet (code vector + payload).
//   - Source: codes random combinations of the K native packets (§3.1.1).
//   - Buffer: a forwarder/destination batch buffer that keeps the code
//     vectors of stored packets in row-echelon form and admits only
//     innovative packets using Algorithm 2 (§3.2.3(a),(b)).
//   - PreCoder: the pre-computed next transmission, updated incrementally as
//     innovative packets arrive (§3.2.3(c)).
//   - Decoder: innovativeness tracking over code vectors as packets arrive;
//     once K innovative packets are stored the natives are recovered by
//     inverting the K×K coefficient matrix and running K word-wise
//     multi-row combines over the stored payloads (§3.1.3).
//   - Pool: a per-batch packet freelist; with pools attached the whole
//     pipeline is allocation-free in steady state (see pool.go for the
//     ownership rules).
//
// The byte crunching — coding at the source, recoding at forwarders,
// decoding at the destination — runs on gf256.Kernel, the word-wise
// bit-plane/nibble-table combine engine.
//
// All randomness is drawn from a caller-supplied *rand.Rand so simulations
// are deterministic under a fixed seed.
package coding

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gf256"
)

// Packet is a coded packet: the code vector describing how it was derived
// from the batch's native packets, plus the coded payload bytes.
type Packet struct {
	// Vector has length K (the batch size). Vector[i] is the coefficient
	// of native packet i.
	Vector []byte
	// Payload is the coded data, the same length for every packet of a
	// batch.
	Payload []byte
}

// Clone returns a deep copy of p.
func (p *Packet) Clone() *Packet {
	q := &Packet{
		Vector:  make([]byte, len(p.Vector)),
		Payload: make([]byte, len(p.Payload)),
	}
	copy(q.Vector, p.Vector)
	copy(q.Payload, p.Payload)
	return q
}

// CopyFrom overwrites p with q's contents. The shapes must match; it is the
// pool-friendly alternative to Clone.
func (p *Packet) CopyFrom(q *Packet) {
	if len(p.Vector) != len(q.Vector) || len(p.Payload) != len(q.Payload) {
		panic("coding: CopyFrom shape mismatch")
	}
	copy(p.Vector, q.Vector)
	copy(p.Payload, q.Payload)
}

// IsZero reports whether the packet's code vector is all-zero (it then
// carries no information).
func (p *Packet) IsZero() bool {
	for _, c := range p.Vector {
		if c != 0 {
			return false
		}
	}
	return true
}

// String summarizes the packet for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("coded{K=%d,S=%d}", len(p.Vector), len(p.Payload))
}

// randNonZero returns a uniformly random nonzero field element.
func randNonZero(rng *rand.Rand) byte {
	return byte(1 + rng.Intn(255))
}

// Source codes transmissions at the flow's origin: a random linear
// combination of all K native packets of the current batch (§3.1.1). In
// MORE, data packets are always coded, even at the source. The natives are
// captured into a gf256.Kernel at construction, so each Next is one
// rng.Read plus one word-wise multi-row combine.
type Source struct {
	k    int
	size int
	rng  *rand.Rand
	kern *gf256.Kernel
	pool *Pool
}

// NewSource builds a Source for one batch of native payloads. All payloads
// must have equal nonzero length. The payload bytes are copied into the
// coding kernel's tables; later mutation of the natives does not affect
// coded output.
func NewSource(native [][]byte, rng *rand.Rand) (*Source, error) {
	if len(native) == 0 {
		return nil, errors.New("coding: empty batch")
	}
	size := len(native[0])
	if size == 0 {
		return nil, errors.New("coding: zero-size payloads")
	}
	for i, p := range native {
		if len(p) != size {
			return nil, fmt.Errorf("coding: payload %d has size %d, want %d", i, len(p), size)
		}
	}
	s := &Source{k: len(native), size: size, rng: rng, kern: gf256.NewKernel()}
	s.kern.SetRows(native)
	return s, nil
}

// K returns the batch size.
func (s *Source) K() int { return s.k }

// PayloadSize returns the common payload length.
func (s *Source) PayloadSize() int { return s.size }

// UsePool makes Next draw packets from p instead of allocating. The pool's
// shape must match the source's.
func (s *Source) UsePool(p *Pool) {
	if p.K() != s.k || p.PayloadSize() != s.size {
		panic("coding: Source.UsePool shape mismatch")
	}
	s.pool = p
}

// Next produces a freshly coded packet: random coefficients over all K
// natives, drawn with a single rng.Read. The coefficient of at least one
// native is forced nonzero so the packet is never the useless all-zero
// combination.
func (s *Source) Next() *Packet {
	var p *Packet
	if s.pool != nil {
		p = s.pool.Get()
	} else {
		p = &Packet{Vector: make([]byte, s.k), Payload: make([]byte, s.size)}
	}
	s.rng.Read(p.Vector)
	if p.IsZero() {
		// Exponentially unlikely for realistic K, but fix it up: pick a
		// random native to include with a nonzero coefficient.
		p.Vector[s.rng.Intn(s.k)] = randNonZero(s.rng)
	}
	s.kern.Combine(p.Payload, p.Vector)
	return p
}

// Buffer is the per-batch store of innovative packets kept by forwarders and
// destinations. Code vectors are maintained in row-echelon form: row i, if
// present, has its first nonzero element at index i and that element is
// normalized to 1 (Algorithm 2). Payloads receive the same row operations so
// each stored row remains a valid coded packet.
type Buffer struct {
	k    int
	size int
	rows []*Packet // rows[i] == nil if the slot is empty
	rank int
	last *Packet // most recently admitted row
	pool *Pool   // optional; recycles rejected and flushed packets

	// Reusable scratch so the steady state allocates nothing.
	innovScratch []byte
	coefScratch  []byte
	payScratch   [][]byte
	kern         *gf256.Kernel
}

// NewBuffer creates an empty buffer for batch size k and payload size.
func NewBuffer(k, size int) *Buffer {
	return &Buffer{
		k:            k,
		size:         size,
		rows:         make([]*Packet, k),
		innovScratch: make([]byte, k),
		coefScratch:  make([]byte, k),
		payScratch:   make([][]byte, 0, k),
		kern:         gf256.NewKernel(),
	}
}

// UsePool attaches a packet pool: Recode draws from it, and Add and Reset
// recycle rejected or flushed packets into it. The pool's shape must match
// the buffer's.
func (b *Buffer) UsePool(p *Pool) {
	if p.K() != b.k || p.PayloadSize() != b.size {
		panic("coding: Buffer.UsePool shape mismatch")
	}
	b.pool = p
}

// K returns the batch size.
func (b *Buffer) K() int { return b.k }

// PayloadSize returns the payload size.
func (b *Buffer) PayloadSize() int { return b.size }

// Rank returns the number of innovative packets stored (the dimension of
// the span of everything received so far).
func (b *Buffer) Rank() int { return b.rank }

// Full reports whether the buffer holds K innovative packets, i.e. the
// whole batch can be decoded.
func (b *Buffer) Full() bool { return b.rank == b.k }

// Innovative reports whether a packet with the given code vector would be
// innovative (linearly independent of the stored packets) without modifying
// the buffer. It runs the elimination on a scratch copy of the vector only —
// checking for innovativeness never touches payload bytes (§3.2.3(b)).
func (b *Buffer) Innovative(vector []byte) bool {
	if len(vector) != b.k {
		return false
	}
	u := b.innovScratch
	copy(u, vector)
	for i := 0; i < b.k; i++ {
		if u[i] == 0 {
			continue
		}
		if b.rows[i] == nil {
			return true
		}
		// u -= rows[i]*u[i]; both have zeros before i, so the suffix
		// suffices.
		gf256.MulAddSlice(u[i:], b.rows[i].Vector[i:], u[i])
	}
	return false
}

// Add runs Algorithm 2: it reduces the packet against the stored rows and,
// if the result is nonzero, admits it into the empty slot it lands in and
// returns true (rank increased). Non-innovative packets are discarded and
// Add returns false. The packet is consumed either way: Add may modify it
// in place, and with a pool attached a rejected packet is recycled.
func (b *Buffer) Add(p *Packet) bool {
	if len(p.Vector) != b.k || len(p.Payload) != b.size {
		return false
	}
	for i := 0; i < b.k; i++ {
		c := p.Vector[i]
		if c == 0 {
			continue
		}
		row := b.rows[i]
		if row == nil {
			// Admit: normalize the leading coefficient to 1.
			inv := gf256.Inv(c)
			gf256.ScaleSlice(p.Vector, inv)
			gf256.ScaleSlice(p.Payload, inv)
			b.rows[i] = p
			b.last = p
			b.rank++
			return true
		}
		// p -= row * c (row's leading element is 1 at index i; vector
		// prefixes before i are zero on both sides).
		gf256.MulAddSlice(p.Vector[i:], row.Vector[i:], c)
		gf256.MulAddSlice(p.Payload, row.Payload, c)
	}
	if b.pool != nil {
		b.pool.Put(p)
	}
	return false
}

// LastAdded returns the most recently admitted row (nil if none since the
// last Reset). Pre-coding folds exactly this row into the prepared packet,
// so exposing it avoids materializing Rows() per reception.
func (b *Buffer) LastAdded() *Packet { return b.last }

// Rows returns the stored innovative packets in echelon order. The returned
// slice is freshly allocated but the packets are the buffer's own; callers
// must not mutate them.
func (b *Buffer) Rows() []*Packet {
	out := make([]*Packet, 0, b.rank)
	for _, r := range b.rows {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Recode produces a fresh random linear combination of the stored innovative
// packets (what a forwarder transmits, §3.1.2). It returns nil if the buffer
// is empty. A linear combination of coded packets is itself a coded packet
// whose vector is expressed in terms of the natives. The payload combine
// runs on the word-wise kernel in table-free mode (the stored rows change
// with every reception, so there is nothing to precompute).
func (b *Buffer) Recode(rng *rand.Rand) *Packet {
	if b.rank == 0 {
		return nil
	}
	var p *Packet
	if b.pool != nil {
		p = b.pool.Get()
	} else {
		p = &Packet{Vector: make([]byte, b.k), Payload: make([]byte, b.size)}
	}
	pays := b.payScratch[:0]
	rows := b.rows
	for _, row := range rows {
		if row != nil {
			pays = append(pays, row.Payload)
		}
	}
	coefs := b.coefScratch[:len(pays)]
	rng.Read(coefs)
	allZero := true
	for _, c := range coefs {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// All coefficients drew zero; include the last row with a nonzero
		// coefficient so the transmission is never vacuous.
		coefs[len(coefs)-1] = randNonZero(rng)
	}
	clear(p.Vector)
	j := 0
	for _, row := range rows {
		if row == nil {
			continue
		}
		gf256.MulAddSlice(p.Vector, row.Vector, coefs[j])
		j++
	}
	b.kern.CombineInto(p.Payload, pays, coefs)
	b.payScratch = pays[:0]
	return p
}

// Reset drops all stored packets (batch flush: overheard ACK or newer batch,
// §3.2.2), recycling them when a pool is attached.
func (b *Buffer) Reset() {
	for i, row := range b.rows {
		if row != nil && b.pool != nil {
			b.pool.Put(row)
		}
		b.rows[i] = nil
	}
	b.rank = 0
	b.last = nil
}

// PreCoder maintains one pre-computed coded packet so that a transmission is
// ready the instant the MAC offers an opportunity (§3.2.3(c)). After handing
// a packet out, call Refresh to precompute the next one; when an innovative
// packet arrives in between, call Update to fold it in with a fresh random
// coefficient, so the prepared packet reflects everything the node knows.
type PreCoder struct {
	buf  *Buffer
	rng  *rand.Rand
	next *Packet
}

// NewPreCoder creates a PreCoder over the given buffer.
func NewPreCoder(buf *Buffer, rng *rand.Rand) *PreCoder {
	return &PreCoder{buf: buf, rng: rng}
}

// Ready reports whether a pre-coded packet is prepared.
func (pc *PreCoder) Ready() bool { return pc.next != nil }

// Refresh precomputes the next transmission from the current buffer
// contents, recycling any packet already prepared. It is a no-op if the
// buffer is empty.
func (pc *PreCoder) Refresh() {
	if pc.next != nil && pc.buf.pool != nil {
		pc.buf.pool.Put(pc.next)
	}
	pc.next = pc.buf.Recode(pc.rng)
}

// Update folds a newly arrived innovative packet into the prepared
// transmission: next += r * p for a random nonzero r. If nothing is
// prepared yet it performs a Refresh instead. p must already have been
// admitted to the buffer (so sizes agree).
func (pc *PreCoder) Update(p *Packet) {
	if pc.next == nil {
		pc.Refresh()
		return
	}
	r := randNonZero(pc.rng)
	gf256.MulAddSlice(pc.next.Vector, p.Vector, r)
	gf256.MulAddSlice(pc.next.Payload, p.Payload, r)
}

// Take hands out the prepared packet (or codes one on the spot if none is
// prepared — the "naive" path pre-coding exists to avoid) and immediately
// prepares the next. Returns nil if the buffer is empty.
func (pc *PreCoder) Take() *Packet {
	p := pc.next
	pc.next = nil // ownership passes to the caller before Refresh recycles
	if p == nil {
		p = pc.buf.Recode(pc.rng)
		if p == nil {
			return nil
		}
	}
	pc.Refresh()
	return p
}

// Reset discards any prepared packet (used when the batch is flushed),
// recycling it when the buffer has a pool.
func (pc *PreCoder) Reset() {
	if pc.next != nil && pc.buf.pool != nil {
		pc.buf.pool.Put(pc.next)
	}
	pc.next = nil
}

// Decoder recovers the K native packets at the destination. As packets
// arrive it runs the innovativeness elimination over code vectors only —
// K-byte rows, a few hundred byte operations — and stores innovative
// packets untouched. Once K innovative packets are in, Decode inverts the
// K×K matrix of their code vectors (cheap: vectors, not payloads) and
// recovers each native as one word-wise multi-row combine of the stored
// payloads. Deferring all payload arithmetic to the batched combine is what
// lets decoding ride the same kernel as source coding (§3.1.3 budgets ~2NS
// multiplications per packet; the kernel does the equivalent work
// word-wide).
type Decoder struct {
	k, size int
	rank    int
	rows    []*Packet // innovative originals, arrival order
	ech     [][]byte  // ech[i]: reduced vector with leading 1 at i, or nil
	echBuf  []byte
	scratch []byte
	pool    *Pool
	kern    *gf256.Kernel

	decoded    bool
	natives    [][]byte // decode output, reused across Reset
	inv        []byte   // k×2k Gauss–Jordan scratch
	payScratch [][]byte
	coefRows   [][]byte
}

// NewDecoder creates a decoder for batch size k and payload size.
func NewDecoder(k, size int) *Decoder {
	return &Decoder{
		k:          k,
		size:       size,
		rows:       make([]*Packet, 0, k),
		ech:        make([][]byte, k),
		echBuf:     make([]byte, k*k),
		scratch:    make([]byte, k),
		kern:       gf256.NewKernel(),
		payScratch: make([][]byte, 0, k),
	}
}

// UsePool attaches a packet pool: Add recycles non-innovative packets and
// Reset recycles the stored batch. The pool's shape must match.
func (d *Decoder) UsePool(p *Pool) {
	if p.K() != d.k || p.PayloadSize() != d.size {
		panic("coding: Decoder.UsePool shape mismatch")
	}
	d.pool = p
}

// Rank returns the number of innovative packets received.
func (d *Decoder) Rank() int { return d.rank }

// Add feeds a received packet into the decoder, returning true if it was
// innovative. The decoder takes ownership of the packet either way; with a
// pool attached, rejected packets are recycled.
func (d *Decoder) Add(p *Packet) bool {
	if len(p.Vector) != d.k || len(p.Payload) != d.size {
		return false
	}
	u := d.scratch
	copy(u, p.Vector)
	for i := 0; i < d.k; i++ {
		c := u[i]
		if c == 0 {
			continue
		}
		if d.ech[i] == nil {
			// Admit: normalize the reduced vector and keep the original.
			gf256.ScaleSlice(u[i:], gf256.Inv(c))
			row := d.echBuf[i*d.k : (i+1)*d.k]
			copy(row, u)
			d.ech[i] = row
			d.rows = append(d.rows, p)
			d.rank++
			return true
		}
		// Zeros before i on both sides: eliminate the suffix only.
		gf256.MulAddSlice(u[i:], d.ech[i][i:], c)
	}
	if d.pool != nil {
		d.pool.Put(p)
	}
	return false
}

// Complete reports whether enough innovative packets have arrived to decode
// the whole batch.
func (d *Decoder) Complete() bool { return d.rank == d.k }

// Reset flushes the decoder for a new batch, recycling stored packets into
// the pool. The decode output buffers are retained for reuse.
func (d *Decoder) Reset() {
	for i, p := range d.rows {
		if d.pool != nil {
			d.pool.Put(p)
		}
		d.rows[i] = nil
	}
	d.rows = d.rows[:0]
	for i := range d.ech {
		d.ech[i] = nil
	}
	d.rank = 0
	d.decoded = false
}

// Decode returns the K native payloads in order. It errors if the batch is
// not yet complete. It is idempotent; the returned slices are owned by the
// decoder and remain valid until the next Reset.
func (d *Decoder) Decode() ([][]byte, error) {
	if d.rank != d.k {
		return nil, fmt.Errorf("coding: batch incomplete, rank %d of %d", d.rank, d.k)
	}
	if d.decoded {
		return d.natives, nil
	}
	k := d.k
	// Invert the coefficient matrix C (rows = stored code vectors) by
	// Gauss–Jordan on [C | I]. The batch has full rank by construction, so
	// a pivot always exists.
	if d.inv == nil {
		d.inv = make([]byte, k*2*k)
	}
	m := d.inv
	w := 2 * k
	for r := 0; r < k; r++ {
		row := m[r*w : (r+1)*w]
		clear(row)
		copy(row, d.rows[r].Vector)
		row[k+r] = 1
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if m[r*w+col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("coding: internal rank error")
		}
		if pivot != col {
			pr := m[pivot*w : (pivot+1)*w]
			cr := m[col*w : (col+1)*w]
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// Columns before col are already eliminated in every row, so all
		// row operations can start at col.
		cr := m[col*w : (col+1)*w]
		gf256.ScaleSlice(cr[col:], gf256.Inv(cr[col]))
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			if c := m[r*w+col]; c != 0 {
				gf256.MulAddSlice(m[r*w+col:(r+1)*w], cr[col:], c)
			}
		}
	}
	// native_i = Σ_j inv[i][j] · payload_j: K multi-row combines over the
	// stored payloads, sharing one set of kernel tables.
	if d.natives == nil {
		backing := make([]byte, k*d.size)
		d.natives = make([][]byte, k)
		for i := range d.natives {
			d.natives[i] = backing[i*d.size : (i+1)*d.size]
		}
	}
	pays := d.payScratch[:0]
	for _, p := range d.rows {
		pays = append(pays, p.Payload)
	}
	d.kern.SetRows(pays)
	d.payScratch = pays[:0]
	if d.coefRows == nil {
		d.coefRows = make([][]byte, k)
	}
	for i := 0; i < k; i++ {
		d.coefRows[i] = m[i*w+k : (i+1)*w]
	}
	// All K natives in one strip-interleaved pass: the kernel reuses each
	// table strip across products while it is hot in L1.
	d.kern.CombineMany(d.natives, d.coefRows)
	d.decoded = true
	return d.natives, nil
}
