package coding

// Pool is a freelist of Packets for one batch shape (K, payload size): the
// steady-state packet pipeline — source coding, buffering, recoding,
// decoding — allocates nothing once the pool is warm. Pools are deliberately
// simple LIFO freelists, not sync.Pools: a flow's coding pipeline runs on a
// single goroutine (each simulation, and each experiment worker, owns its
// flows outright), so no locking is needed and reuse stays deterministic.
//
// Ownership rules: Get transfers ownership to the caller; Put transfers it
// back. A component holding a pool (Buffer, Source, Decoder) recycles the
// packets it consumes — in particular Buffer.Add and Decoder.Add recycle
// rejected (non-innovative) packets, and Reset recycles stored ones — so a
// caller that hands a packet to Add must not touch it afterwards.
type Pool struct {
	k, size int
	free    []*Packet
	// Arena mode (NewArenaPool): when the freelist runs dry, carve slabPkts
	// packets at once out of three contiguous slabs (headers, vectors,
	// payloads) instead of allocating each packet individually. slabPkts==0
	// means per-packet allocation.
	slabPkts int
	slabs    int
}

// NewPool creates a pool for packets with K-length vectors and the given
// payload size.
func NewPool(k, size int) *Pool {
	return &Pool{k: k, size: size}
}

// NewArenaPool creates a slab-backed pool: when empty it allocates
// slabPackets packets in one go, with all vectors carved from one backing
// array and all payloads from another. Packet payloads end up contiguous in
// memory, which is what the coding kernels want (combines stream adjacent
// rows), and a steady-state refill costs three allocations instead of
// 2*slabPackets+slabPackets. The ownership rules are identical to NewPool.
func NewArenaPool(k, size, slabPackets int) *Pool {
	if slabPackets < 1 {
		slabPackets = 1
	}
	return &Pool{k: k, size: size, slabPkts: slabPackets}
}

// grow carves one slab into the freelist.
func (p *Pool) grow() {
	n := p.slabPkts
	hdrs := make([]Packet, n)
	vecs := make([]byte, n*p.k)
	pays := make([]byte, n*p.size)
	for i := range hdrs {
		hdrs[i].Vector = vecs[i*p.k : (i+1)*p.k : (i+1)*p.k]
		hdrs[i].Payload = pays[i*p.size : (i+1)*p.size : (i+1)*p.size]
		p.free = append(p.free, &hdrs[i])
	}
	p.slabs++
}

// Slabs returns the number of slabs allocated so far (0 for plain pools).
func (p *Pool) Slabs() int { return p.slabs }

// K returns the pool's batch size.
func (p *Pool) K() int { return p.k }

// PayloadSize returns the pool's payload size.
func (p *Pool) PayloadSize() int { return p.size }

// Get returns a packet with the pool's shape. Its contents are undefined;
// callers overwrite both vector and payload.
func (p *Pool) Get() *Packet {
	if len(p.free) == 0 && p.slabPkts > 0 {
		p.grow()
	}
	if n := len(p.free); n > 0 {
		q := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return q
	}
	return &Packet{
		Vector:  make([]byte, p.k),
		Payload: make([]byte, p.size),
	}
}

// Put returns a packet to the freelist. Packets of the wrong shape are
// dropped (they would corrupt later Gets); nil is ignored.
func (p *Pool) Put(q *Packet) {
	if q == nil || len(q.Vector) != p.k || len(q.Payload) != p.size {
		return
	}
	p.free = append(p.free, q)
}

// Fits reports whether a packet has this pool's shape.
func (p *Pool) Fits(q *Packet) bool {
	return q != nil && len(q.Vector) == p.k && len(q.Payload) == p.size
}
