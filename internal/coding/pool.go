package coding

// Pool is a freelist of Packets for one batch shape (K, payload size): the
// steady-state packet pipeline — source coding, buffering, recoding,
// decoding — allocates nothing once the pool is warm. Pools are deliberately
// simple LIFO freelists, not sync.Pools: a flow's coding pipeline runs on a
// single goroutine (each simulation, and each experiment worker, owns its
// flows outright), so no locking is needed and reuse stays deterministic.
//
// Ownership rules: Get transfers ownership to the caller; Put transfers it
// back. A component holding a pool (Buffer, Source, Decoder) recycles the
// packets it consumes — in particular Buffer.Add and Decoder.Add recycle
// rejected (non-innovative) packets, and Reset recycles stored ones — so a
// caller that hands a packet to Add must not touch it afterwards.
type Pool struct {
	k, size int
	free    []*Packet
}

// NewPool creates a pool for packets with K-length vectors and the given
// payload size.
func NewPool(k, size int) *Pool {
	return &Pool{k: k, size: size}
}

// K returns the pool's batch size.
func (p *Pool) K() int { return p.k }

// PayloadSize returns the pool's payload size.
func (p *Pool) PayloadSize() int { return p.size }

// Get returns a packet with the pool's shape. Its contents are undefined;
// callers overwrite both vector and payload.
func (p *Pool) Get() *Packet {
	if n := len(p.free); n > 0 {
		q := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return q
	}
	return &Packet{
		Vector:  make([]byte, p.k),
		Payload: make([]byte, p.size),
	}
}

// Put returns a packet to the freelist. Packets of the wrong shape are
// dropped (they would corrupt later Gets); nil is ignored.
func (p *Pool) Put(q *Packet) {
	if q == nil || len(q.Vector) != p.k || len(q.Payload) != p.size {
		return
	}
	p.free = append(p.free, q)
}

// Fits reports whether a packet has this pool's shape.
func (p *Pool) Fits(q *Packet) bool {
	return q != nil && len(q.Vector) == p.k && len(q.Payload) == p.size
}
