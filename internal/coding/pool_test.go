package coding

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestPoolShapes(t *testing.T) {
	p := NewPool(4, 16)
	q := p.Get()
	if len(q.Vector) != 4 || len(q.Payload) != 16 {
		t.Fatalf("pool packet shape %d/%d", len(q.Vector), len(q.Payload))
	}
	if !p.Fits(q) {
		t.Fatal("pool rejects its own packet")
	}
	p.Put(q)
	if got := p.Get(); got != q {
		t.Fatal("freelist did not reuse the returned packet")
	}
	// Wrong shapes are dropped, nil ignored.
	p.Put(nil)
	p.Put(&Packet{Vector: make([]byte, 3), Payload: make([]byte, 16)})
	if len(p.free) != 0 {
		t.Fatal("pool accepted a mis-shaped packet")
	}
}

func TestPooledPipelineMatchesUnpooled(t *testing.T) {
	// The pooled pipeline must be byte-identical to the allocating one:
	// same rng, same packets, same decode output.
	const k, size = 8, 100
	build := func(pool bool) [][]byte {
		rng := rand.New(rand.NewSource(42))
		natives := randomNatives(rng, k, size)
		src, err := NewSource(natives, rng)
		if err != nil {
			t.Fatal(err)
		}
		fwd := NewBuffer(k, size)
		dec := NewDecoder(k, size)
		if pool {
			pl := NewPool(k, size)
			src.UsePool(pl)
			fwd.UsePool(pl)
			dec.UsePool(pl)
		}
		for !dec.Complete() {
			p := src.Next()
			if rng.Intn(2) == 0 {
				fwd.Add(p.Clone())
			}
			if r := fwd.Recode(rng); r != nil && rng.Intn(10) < 7 {
				dec.Add(r)
			}
		}
		out, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		cp := make([][]byte, len(out))
		for i := range out {
			cp[i] = append([]byte(nil), out[i]...)
		}
		return cp
	}
	a := build(false)
	b := build(true)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("pooled and unpooled pipelines diverged at native %d", i)
		}
	}
}

func TestBufferRecyclesOnResetAndReject(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k, size = 4, 32
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	pool := NewPool(k, size)
	src.UsePool(pool)
	buf := NewBuffer(k, size)
	buf.UsePool(pool)
	for !buf.Full() {
		buf.Add(src.Next())
	}
	// Non-innovative add: packet must land back in the pool.
	before := len(pool.free)
	buf.Add(src.Next())
	if len(pool.free) != before+1 {
		t.Fatal("rejected packet not recycled")
	}
	// Reset returns all k rows.
	buf.Reset()
	if len(pool.free) != before+1+k {
		t.Fatalf("Reset recycled %d packets, want %d", len(pool.free)-before-1, k)
	}
	if buf.Rank() != 0 || buf.LastAdded() != nil {
		t.Fatal("Reset left state behind")
	}
}

func TestDecoderResetReuse(t *testing.T) {
	// One decoder serving several batches through a pool must keep
	// decoding correctly (the Table 4.1 benchmark pattern).
	rng := rand.New(rand.NewSource(9))
	const k, size = 8, 64
	pool := NewPool(k, size)
	dec := NewDecoder(k, size)
	dec.UsePool(pool)
	for batch := 0; batch < 5; batch++ {
		natives := randomNatives(rng, k, size)
		src, _ := NewSource(natives, rng)
		src.UsePool(pool)
		dec.Reset()
		for !dec.Complete() {
			dec.Add(src.Next())
		}
		out, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		for i := range natives {
			if !bytes.Equal(out[i], natives[i]) {
				t.Fatalf("batch %d: native %d corrupted", batch, i)
			}
		}
	}
}

func TestPreCoderResetRecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k, size = 4, 24
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	pool := NewPool(k, size)
	src.UsePool(pool)
	buf := NewBuffer(k, size)
	buf.UsePool(pool)
	pc := NewPreCoder(buf, rng)
	buf.Add(src.Next())
	pc.Refresh()
	if !pc.Ready() {
		t.Fatal("not ready after Refresh")
	}
	before := len(pool.free)
	pc.Reset()
	if len(pool.free) != before+1 {
		t.Fatal("PreCoder.Reset did not recycle the prepared packet")
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	// The tentpole contract: once pools are warm, Next / Innovative /
	// Add+Decode allocate nothing.
	rng := rand.New(rand.NewSource(13))
	const k, size = 16, 512
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	pool := NewPool(k, size)
	src.UsePool(pool)

	if n := testing.AllocsPerRun(200, func() { pool.Put(src.Next()) }); n > 0 {
		t.Errorf("Source.Next allocates %.1f/op in steady state", n)
	}

	buf := NewBuffer(k, size)
	buf.UsePool(pool)
	for !buf.Full() {
		buf.Add(src.Next())
	}
	vec := make([]byte, k)
	p := src.Next()
	copy(vec, p.Vector)
	pool.Put(p)
	if n := testing.AllocsPerRun(200, func() { buf.Innovative(vec) }); n > 0 {
		t.Errorf("Buffer.Innovative allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { pool.Put(buf.Recode(rng)) }); n > 0 {
		t.Errorf("Buffer.Recode allocates %.1f/op in steady state", n)
	}

	pkts := make([]*Packet, k+4)
	for i := range pkts {
		pkts[i] = src.Next()
	}
	dec := NewDecoder(k, size)
	dec.UsePool(pool)
	decodeBatch := func() {
		dec.Reset()
		for i := 0; !dec.Complete() && i < len(pkts); i++ {
			q := pool.Get()
			q.CopyFrom(pkts[i])
			dec.Add(q)
		}
		if _, err := dec.Decode(); err != nil {
			t.Fatal(err)
		}
	}
	decodeBatch() // warm the decoder's lazily allocated buffers
	if n := testing.AllocsPerRun(50, decodeBatch); n > 0 {
		t.Errorf("decode batch allocates %.1f/op in steady state", n)
	}
}

func TestUsePoolShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	src, _ := NewSource(randomNatives(rng, 4, 8), rng)
	buf := NewBuffer(4, 8)
	dec := NewDecoder(4, 8)
	bad := NewPool(5, 8)
	for name, f := range map[string]func(){
		"source":  func() { src.UsePool(bad) },
		"buffer":  func() { buf.UsePool(bad) },
		"decoder": func() { dec.UsePool(bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.UsePool mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}
