package coding

import (
	"errors"

	"repro/internal/gf256"
)

// ReferenceDecode is a one-shot Gauss–Jordan decoder over a full matrix of
// received coded packets. It exists as an independent oracle for the
// progressive Decoder: tests feed both the same packets and require
// identical output. It is also how a naive implementation without §3.2.3's
// optimizations would decode, so the benchmarks compare against it.
//
// pkts must contain at least k linearly independent packets with K-length
// vectors and equal payload sizes. The input packets are not modified.
func ReferenceDecode(k int, pkts []*Packet) ([][]byte, error) {
	if len(pkts) == 0 {
		return nil, errors.New("coding: no packets")
	}
	size := len(pkts[0].Payload)
	// Build working copies.
	rows := make([]*Packet, 0, len(pkts))
	for _, p := range pkts {
		if len(p.Vector) != k || len(p.Payload) != size {
			return nil, errors.New("coding: inconsistent packet shapes")
		}
		rows = append(rows, p.Clone())
	}
	// Forward elimination with partial pivoting (any nonzero pivot works
	// in a field).
	rank := 0
	for col := 0; col < k && rank < len(rows); col++ {
		// Find a pivot row.
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r].Vector[col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		// Normalize.
		inv := gf256.Inv(rows[rank].Vector[col])
		gf256.ScaleSlice(rows[rank].Vector, inv)
		gf256.ScaleSlice(rows[rank].Payload, inv)
		// Eliminate the column everywhere else (Gauss–Jordan).
		for r := 0; r < len(rows); r++ {
			if r == rank {
				continue
			}
			c := rows[r].Vector[col]
			if c == 0 {
				continue
			}
			gf256.MulAddSlice(rows[r].Vector, rows[rank].Vector, c)
			gf256.MulAddSlice(rows[r].Payload, rows[rank].Payload, c)
		}
		rank++
	}
	if rank < k {
		return nil, errors.New("coding: rank deficient")
	}
	// Rows 0..k-1 now hold the identity in column order; row i's pivot
	// column is the i-th pivot found, which (having reached full rank)
	// must be column i.
	out := make([][]byte, k)
	for i := 0; i < k; i++ {
		if rows[i].Vector[i] != 1 {
			return nil, errors.New("coding: internal pivot error")
		}
		out[i] = rows[i].Payload
	}
	return out, nil
}

// Rank computes the rank of a set of code vectors without touching
// payloads — the pure-algebra form of the Buffer's incremental tracking.
func Rank(k int, vectors [][]byte) int {
	buf := NewBuffer(k, 1)
	for _, v := range vectors {
		if len(v) != k {
			continue
		}
		p := &Packet{Vector: append([]byte(nil), v...), Payload: []byte{0}}
		buf.Add(p)
	}
	return buf.Rank()
}
