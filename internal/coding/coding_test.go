package coding

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomNatives(rng *rand.Rand, k, size int) [][]byte {
	natives := make([][]byte, k)
	for i := range natives {
		natives[i] = make([]byte, size)
		rng.Read(natives[i])
	}
	return natives
}

func TestSourceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSource(nil, rng); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := NewSource([][]byte{{}}, rng); err == nil {
		t.Error("zero-size payload accepted")
	}
	if _, err := NewSource([][]byte{{1, 2}, {3}}, rng); err == nil {
		t.Error("ragged payloads accepted")
	}
}

func TestSourceNextNeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src, err := NewSource(randomNatives(rng, 4, 16), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if src.Next().IsZero() {
			t.Fatal("source produced all-zero code vector")
		}
	}
}

func TestSourcePacketConsistent(t *testing.T) {
	// The coded payload must equal the code vector applied to the natives.
	rng := rand.New(rand.NewSource(3))
	k, size := 8, 64
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	for iter := 0; iter < 50; iter++ {
		p := src.Next()
		for off := 0; off < size; off++ {
			col := make([]byte, k)
			for i := 0; i < k; i++ {
				col[i] = natives[i][off]
			}
			var want byte
			for i := 0; i < k; i++ {
				want ^= mulRef(p.Vector[i], col[i])
			}
			if p.Payload[off] != want {
				t.Fatalf("payload byte %d inconsistent with code vector", off)
			}
		}
	}
}

// mulRef is an independent GF(2^8) multiply for cross-checking.
func mulRef(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a&0x80 != 0
		a <<= 1
		if hi {
			a ^= 0x1D
		}
		b >>= 1
	}
	return p
}

func TestBufferRankGrowsToK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k, size := 16, 32
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	buf := NewBuffer(k, size)
	adds := 0
	for !buf.Full() {
		p := src.Next()
		innovative := buf.Innovative(p.Vector)
		got := buf.Add(p)
		if got != innovative {
			t.Fatal("Innovative() disagreed with Add()")
		}
		adds++
		if adds > 10*k {
			t.Fatal("buffer never filled; coding broken")
		}
	}
	if buf.Rank() != k {
		t.Fatalf("rank %d != k %d", buf.Rank(), k)
	}
	// Random coded packets are overwhelmingly innovative: over GF(256) the
	// chance a random packet is non-innovative while rank < K is ≈ 1/256 per
	// missing dimension, so K packets should very nearly suffice.
	if adds > k+6 {
		t.Fatalf("needed %d packets to fill rank %d; expected nearly exactly k", adds, k)
	}
}

func TestBufferRejectsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k, size := 4, 8
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	buf := NewBuffer(k, size)
	p := src.Next()
	dup := p.Clone()
	if !buf.Add(p) {
		t.Fatal("first packet not innovative")
	}
	if buf.Add(dup) {
		t.Fatal("identical packet admitted twice")
	}
	// A scaled copy is also dependent.
	row := buf.Rows()[0]
	scaled := row.Clone()
	for i := range scaled.Vector {
		scaled.Vector[i] = mulRef(scaled.Vector[i], 7)
	}
	for i := range scaled.Payload {
		scaled.Payload[i] = mulRef(scaled.Payload[i], 7)
	}
	if buf.Add(scaled) {
		t.Fatal("scaled duplicate admitted")
	}
}

func TestBufferRejectsWrongSizes(t *testing.T) {
	buf := NewBuffer(4, 8)
	if buf.Add(&Packet{Vector: make([]byte, 3), Payload: make([]byte, 8)}) {
		t.Error("wrong vector length admitted")
	}
	if buf.Add(&Packet{Vector: []byte{1, 0, 0, 0}, Payload: make([]byte, 9)}) {
		t.Error("wrong payload length admitted")
	}
	if buf.Innovative(make([]byte, 3)) {
		t.Error("wrong-length vector reported innovative")
	}
}

func TestBufferReset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k, size := 4, 8
	src, _ := NewSource(randomNatives(rng, k, size), rng)
	buf := NewBuffer(k, size)
	for i := 0; i < k; i++ {
		buf.Add(src.Next())
	}
	buf.Reset()
	if buf.Rank() != 0 || len(buf.Rows()) != 0 {
		t.Fatal("Reset did not clear buffer")
	}
	if buf.Recode(rng) != nil {
		t.Fatal("Recode on empty buffer returned a packet")
	}
}

func TestRecodeStaysInSpan(t *testing.T) {
	// A recoded packet must never be innovative with respect to the buffer
	// it came from, and must decode correctly downstream.
	rng := rand.New(rand.NewSource(7))
	k, size := 8, 24
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	buf := NewBuffer(k, size)
	for i := 0; i < 5; i++ { // partial rank
		buf.Add(src.Next())
	}
	for i := 0; i < 100; i++ {
		p := buf.Recode(rng)
		if p == nil {
			t.Fatal("Recode returned nil on non-empty buffer")
		}
		if buf.Innovative(p.Vector) {
			t.Fatal("recoded packet escaped the span of its buffer")
		}
		if p.IsZero() {
			t.Fatal("recoded packet is all-zero")
		}
	}
}

func TestEndToEndDecode(t *testing.T) {
	// src -> forwarder -> destination, all over recoded packets.
	rng := rand.New(rand.NewSource(8))
	for _, k := range []int{1, 2, 8, 32} {
		size := 100
		natives := randomNatives(rng, k, size)
		src, _ := NewSource(natives, rng)
		fwd := NewBuffer(k, size)
		dec := NewDecoder(k, size)
		guard := 0
		for !dec.Complete() {
			guard++
			if guard > 50*k+50 {
				t.Fatalf("k=%d: decode never completed", k)
			}
			// Source transmits; forwarder hears it with 50% probability.
			p := src.Next()
			if rng.Intn(2) == 0 {
				fwd.Add(p.Clone())
			}
			// Forwarder transmits a recoded packet; destination hears it
			// with 70% probability.
			if q := fwd.Recode(rng); q != nil && rng.Intn(10) < 7 {
				dec.Add(q)
			}
		}
		out, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		for i := range natives {
			if !bytes.Equal(out[i], natives[i]) {
				t.Fatalf("k=%d: native %d corrupted by coding pipeline", k, i)
			}
		}
		// Idempotent.
		out2, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		for i := range natives {
			if !bytes.Equal(out2[i], natives[i]) {
				t.Fatalf("k=%d: second Decode disagreed", k)
			}
		}
	}
}

func TestDecodeIncompleteErrors(t *testing.T) {
	dec := NewDecoder(4, 8)
	if _, err := dec.Decode(); err == nil {
		t.Fatal("Decode on empty decoder did not error")
	}
}

func TestPreCoder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k, size := 8, 32
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)
	buf := NewBuffer(k, size)
	pc := NewPreCoder(buf, rng)

	if pc.Take() != nil {
		t.Fatal("Take on empty buffer returned a packet")
	}
	if pc.Ready() {
		t.Fatal("Ready on empty precoder")
	}

	p := src.Next()
	buf.Add(p.Clone())
	pc.Update(p) // first Update acts as Refresh
	if !pc.Ready() {
		t.Fatal("not ready after Update")
	}
	out := pc.Take()
	if out == nil || buf.Innovative(out.Vector) {
		t.Fatal("precoded packet invalid")
	}
	// After Take, the next packet is already prepared.
	if !pc.Ready() {
		t.Fatal("Take did not refresh")
	}

	// Updates fold new arrivals in: the precoded packet must stay within the
	// buffer's span and must (almost surely) involve the new packet.
	q := src.Next()
	buf.Add(q.Clone())
	pc.Update(q)
	out = pc.Take()
	if buf.Innovative(out.Vector) {
		t.Fatal("updated precoded packet escaped span")
	}

	pc.Reset()
	if pc.Ready() {
		t.Fatal("Reset did not clear prepared packet")
	}
}

func TestPreCoderIncludesLatestArrival(t *testing.T) {
	// §3.2.3(c): the transmitted packet contains information from all
	// packets known to the node, including the most recent arrival. With
	// rank 2, a packet that ignores the latest arrival lies in a 1-dim
	// subspace; folding in the update must (w.h.p.) leave it outside.
	rng := rand.New(rand.NewSource(10))
	k, size := 4, 8
	natives := randomNatives(rng, k, size)
	src, _ := NewSource(natives, rng)

	buf := NewBuffer(k, size)
	pc := NewPreCoder(buf, rng)
	p1 := src.Next()
	buf.Add(p1.Clone())
	pc.Refresh()

	// Old span: just p1.
	oldSpan := NewBuffer(k, size)
	oldSpan.Add(p1.Clone())

	p2 := src.Next()
	buf.Add(p2.Clone())
	pc.Update(p2)

	involved := 0
	for i := 0; i < 20; i++ {
		out := pc.Take()
		if oldSpan.Innovative(out.Vector) {
			involved++
		}
		pc.Update(p2) // keep folding so each Take still reflects p2
	}
	if involved == 0 {
		t.Fatal("precoded packets never reflected the latest arrival")
	}
}

func TestQuickDecodeRoundTrip(t *testing.T) {
	// Property: for random batches, feeding enough random coded packets
	// through a random chain of recoders always reproduces the natives.
	cfg := &quick.Config{MaxCount: 30}
	f := func(seed int64, kRaw, sizeRaw uint8) bool {
		k := int(kRaw)%12 + 1
		size := int(sizeRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		natives := randomNatives(rng, k, size)
		src, err := NewSource(natives, rng)
		if err != nil {
			return false
		}
		dec := NewDecoder(k, size)
		for i := 0; i < 4*k+16 && !dec.Complete(); i++ {
			dec.Add(src.Next())
		}
		if !dec.Complete() {
			return false
		}
		out, err := dec.Decode()
		if err != nil {
			return false
		}
		for i := range natives {
			if !bytes.Equal(out[i], natives[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRankNeverExceedsK(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k, size := 6, 10
		src, _ := NewSource(randomNatives(rng, k, size), rng)
		buf := NewBuffer(k, size)
		for i := 0; i < 4*k; i++ {
			buf.Add(src.Next())
			if buf.Rank() > k {
				return false
			}
		}
		return buf.Rank() == k
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRowsEchelonInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k, size := 10, 20
	src, _ := NewSource(randomNatives(rng, k, size), rng)
	buf := NewBuffer(k, size)
	for i := 0; i < 2*k; i++ {
		buf.Add(src.Next())
		// Invariant: row i (if present) has leading 1 at index i and zeros
		// before it.
		for slot := 0; slot < k; slot++ {
			row := buf.rows[slot]
			if row == nil {
				continue
			}
			for j := 0; j < slot; j++ {
				if row.Vector[j] != 0 {
					t.Fatalf("row %d has nonzero at %d", slot, j)
				}
			}
			if row.Vector[slot] != 1 {
				t.Fatalf("row %d pivot not normalized: %d", slot, row.Vector[slot])
			}
		}
	}
}

func TestPacketCloneIndependent(t *testing.T) {
	p := &Packet{Vector: []byte{1, 2}, Payload: []byte{3, 4}}
	q := p.Clone()
	q.Vector[0] = 9
	q.Payload[0] = 9
	if p.Vector[0] != 1 || p.Payload[0] != 3 {
		t.Fatal("Clone aliases original")
	}
}
