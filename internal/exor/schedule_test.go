package exor

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func TestCyclicDist(t *testing.T) {
	cases := []struct {
		a, b, l, want int
	}{
		{0, 1, 5, 1}, // dst to first forwarder
		{1, 2, 5, 1}, // next in schedule
		{4, 0, 5, 1}, // source wraps to destination
		{2, 1, 5, 4}, // going "backwards" costs a full cycle minus one
		{3, 3, 5, 5}, // own slot comes a full round later
		{0, 4, 5, 4}, // dst to source
	}
	for _, c := range cases {
		if got := cyclicDist(c.a, c.b, c.l); got != c.want {
			t.Errorf("cyclicDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.l, got, c.want)
		}
	}
}

func TestBatchMapMerge(t *testing.T) {
	// Receiving a packet must merge batch maps element-wise toward lower
	// (better) priorities and record the sender and self as holders.
	topo := graph.New(3)
	topo.SetLink(0, 1, 1)
	topo.SetLink(1, 2, 1)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	n := NewNode(smallCfg(4), oracle)
	s.Attach(1, n)

	prio := []graph.NodeID{2, 1, 0} // dst=2, fwd=1, src=0
	bmap := []uint8{2, 0, 2, 2}     // src claims pkt 1 already at dst
	m := &DataMsg{
		Flow: 1, Src: 0, Dst: 2,
		Batch: 0, K: 4, TotalBatches: 1,
		PktIdx: 0, FragRemaining: 0, SenderPrio: 2,
		BMap: bmap, Prio: prio,
		Payload: make([]byte, 10),
	}
	n.receiveData(m)
	f := n.flows[1]
	if f.myPrio != 1 {
		t.Fatalf("myPrio = %d", f.myPrio)
	}
	if !f.have[0] || f.payload[0] == nil {
		t.Fatal("payload not stored")
	}
	// Packet 0: we hold it now, so our own priority (1) beats the
	// sender's (2).
	if f.bmap[0] != 1 {
		t.Fatalf("bmap[0] = %d, want 1 (self)", f.bmap[0])
	}
	// Packet 1: the sender's map says the destination (0 == highest
	// priority index) already has it.
	if f.bmap[1] != 0 {
		t.Fatalf("bmap[1] = %d, want 0 (dst)", f.bmap[1])
	}
	// A later packet with a worse map must not regress ours.
	worse := *m
	worse.PktIdx = 2
	worse.BMap = []uint8{2, 2, 2, 2}
	n.receiveData(&worse)
	if f.bmap[1] != 0 {
		t.Fatal("merge regressed bmap[1]")
	}
	if f.bmap[2] != 1 {
		t.Fatalf("bmap[2] = %d after receiving pkt 2", f.bmap[2])
	}
}

func TestEligibilityRespectsPriority(t *testing.T) {
	// A forwarder only schedules packets for which it is the best known
	// holder.
	topo := graph.New(3)
	topo.SetLink(0, 1, 1)
	topo.SetLink(1, 2, 1)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	n := NewNode(smallCfg(3), oracle)
	s.Attach(1, n)
	prio := []graph.NodeID{2, 1, 0}
	for idx := 0; idx < 3; idx++ {
		n.receiveData(&DataMsg{
			Flow: 1, Src: 0, Dst: 2, Batch: 0, K: 3, TotalBatches: 1,
			PktIdx: idx, FragRemaining: 2 - idx, SenderPrio: 2,
			BMap: []uint8{packet3(), packet3(), packet3()}, Prio: prio,
			Payload: make([]byte, 10),
		})
	}
	f := n.flows[1]
	// Mark packet 1 as already held by the destination.
	f.bmap[1] = 0
	n.takeTurn(f)
	if !f.inTurn {
		t.Fatal("turn not taken")
	}
	if len(f.fragQueue) != 2 {
		t.Fatalf("fragment has %d packets, want 2 (pkt 1 excluded)", len(f.fragQueue))
	}
	for _, idx := range f.fragQueue {
		if idx == 1 {
			t.Fatal("fragment includes a packet the destination already holds")
		}
	}
}

func packet3() uint8 { return 2 } // src prio in a 3-node list

func TestDataFrameChargesBatchMap(t *testing.T) {
	// Every ExOR data frame pays for its batch map and forwarder list on
	// the air: bigger K means bigger frames.
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	small := NewNode(smallCfg(8), oracle)
	s.Attach(0, small)
	file := flow.NewFile(8*1500, 1500, 1)
	if err := small.StartFlow(1, 1, file, nil); err != nil {
		t.Fatal(err)
	}
	fr := small.Pull()
	if fr == nil {
		t.Fatal("no frame")
	}
	m := fr.Payload.(*DataMsg)
	if len(m.BMap) != 8 {
		t.Fatalf("batch map has %d entries", len(m.BMap))
	}
	if fr.Bytes <= 1500+8 {
		t.Fatalf("frame %d bytes does not include header overhead", fr.Bytes)
	}
}

func TestWatchdogRecoversFromTotalSilence(t *testing.T) {
	// If every handoff packet is lost, the watchdog must still push the
	// transfer forward.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.35)
	topo.SetLink(1, 2, 0.35)
	file := flow.NewFile(8*1500, 1500, 2)
	res, _, _ := runExOR(t, topo, smallCfg(8), sim.DefaultConfig(), 0, 2, file, 900*sim.Second)
	if !res.Completed {
		t.Fatalf("transfer over terrible links never completed: %v", res)
	}
}
