// Package exor implements the ExOR baseline (Biswas & Morris, §2.2.1): the
// prior opportunistic routing protocol MORE is evaluated against.
//
// ExOR gathers packets into batches and defers the forwarding decision to
// after reception: of all nodes that decode a transmission, the one closest
// to the destination (by ETX) should forward it. Coordination is achieved
// with structure instead of randomness — a strict schedule walks the
// prioritized forwarder list, one transmitter at a time. Each data packet
// piggybacks the sender's batch map (for every packet, the highest-priority
// node known to hold it); listeners merge maps so a node forwards only
// packets no higher-priority node holds. Turn handoff keys off overheard
// fragment-end markers, with staggered timeouts standing in for ExOR's
// fragile timing estimates. Because exactly one forwarder may transmit at a
// time, a flow cannot exploit spatial reuse — the property §4.2.3 measures.
//
// When the batch map shows the destination holding at least 90% of the
// batch, the remaining packets travel by traditional unicast along the ETX
// path (ExOR's cleanup rule), and the destination confirms batch completion
// to the source with a hop-by-hop acknowledgment.
package exor

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes ExOR.
type Config struct {
	// BatchSize is K.
	BatchSize int
	// PayloadSize is the per-packet payload (1500 B in the paper).
	PayloadSize int
	// Plan configures forwarder selection (shared with MORE for a fair
	// comparison).
	Plan routing.PlanOptions
	// CleanupFraction: once the destination holds this fraction of the
	// batch, the tail moves via traditional routing (ExOR uses 0.9).
	CleanupFraction float64
	// TurnGap staggers successive priorities' turn starts. Zero derives
	// one data-packet time from the simulator config at Init.
	TurnGap sim.Time
	// DstGossipRepeat is how many times the destination transmits its
	// batch map during its turn. ExOR's ultimate destination sends its
	// map ten times per round to make the highest-priority reception
	// state survive losses.
	DstGossipRepeat int
	// RepairInterval arms route repair: a source whose batch makes no
	// progress for a full interval rebuilds its priority list from the
	// current routing state and restarts the batch (the turn schedule is
	// priority-list-relative, so a mid-batch list swap would corrupt every
	// node's batch map); failed cleanup/done unicasts re-resolve their next
	// hop instead of retrying the stale one; and a destination that keeps
	// hearing data for a batch it already completed re-announces the
	// completion (its DoneMsg died on a stale route). Zero disables repair
	// (the default).
	RepairInterval sim.Time
}

// DefaultConfig matches the paper's ExOR setup.
func DefaultConfig() Config {
	return Config{
		BatchSize:       32,
		PayloadSize:     1500,
		Plan:            routing.DefaultPlanOptions(),
		CleanupFraction: 0.9,
		DstGossipRepeat: 10,
	}
}

// DataMsg is an ExOR batch fragment packet (or a map-only gossip packet).
type DataMsg struct {
	Flow     flow.ID
	Src, Dst graph.NodeID
	Batch    int
	K        int
	// BatchBase is the index of the batch's first packet within the file.
	BatchBase     int
	TotalBatches  int
	PktIdx        int // -1 for map-only gossip
	FragRemaining int
	SenderPrio    int
	BMap          []uint8
	Prio          []graph.NodeID // priority list: [dst, forwarders..., src]
	Payload       []byte
}

func (m *DataMsg) wireBytes() int {
	h := packet.ExORHeader{
		BatchMap:   m.BMap,
		Forwarders: make([]uint8, len(m.Prio)),
	}
	return h.EncodedSize() + len(m.Payload)
}

// CleanupMsg carries one tail packet via traditional unicast routing.
type CleanupMsg struct {
	Flow    flow.ID
	Batch   int
	PktIdx  int
	Target  graph.NodeID // the flow destination
	Payload []byte
}

func (m *CleanupMsg) wireBytes() int {
	h := packet.SrcrHeader{Route: make([]graph.NodeID, 4)}
	return h.EncodedSize() + len(m.Payload)
}

// DoneMsg tells the source (hop-by-hop unicast) that the destination holds
// the whole batch.
type DoneMsg struct {
	Flow   flow.ID
	Batch  int
	Final  bool
	Target graph.NodeID // the flow source
}

func (m *DoneMsg) wireBytes() int {
	h := packet.MOREHeader{Type: packet.TypeACK}
	return h.EncodedSize() + 9
}

// Node is the ExOR instance on one router.
type Node struct {
	cfg   Config
	node  *sim.Node
	state flow.RoutingState

	flows     map[flow.ID]*exorFlow
	flowOrder []flow.ID    // deterministic iteration order
	unicast   []*sim.Frame // cleanup/done frames awaiting transmission

	// Counters.
	DataSent   int64
	MapOnly    int64
	CleanupTx  int64
	TurnsTaken int64
}

// exorFlow is per-flow state (§2.2.1's batch buffer + batch map + schedule).
type exorFlow struct {
	id           flow.ID
	src, dst     graph.NodeID
	prio         []graph.NodeID
	myPrio       int // index in prio, -1 if not a participant
	batch        int
	k            int
	totalBatches int

	have    []bool
	payload [][]byte
	bmap    []uint8
	base    int // file index of the batch's first packet

	// Source-only.
	isSource bool
	batches  [][][]byte
	result   flow.Result
	done     bool
	onDone   func(flow.Result)
	// planVersion is the routing-state generation prio was computed from;
	// learned views tick it, and the source rebuilds the priority list at
	// the next batch boundary.
	planVersion uint64
	// repairBatch is batch as of the last repair-watchdog check; an
	// unchanged value over a full RepairInterval marks the flow stalled.
	repairBatch int
	// reDoneAt rate-limits destination completion re-announcements.
	reDoneAt sim.Time

	// Sink-only.
	verify    [][]byte
	delivered int
	sinkRes   flow.Result
	sinkDone  func(flow.Result)
	doneSent  bool

	// Scheduling.
	turnTimer  *sim.Event
	watchdog   *sim.Event
	inTurn     bool
	fragQueue  []int
	gossipLeft int // map-only packets still to send this turn
	mapDirty   bool
	cleanup    bool
	cleanedIdx map[int]bool
}

// NewNode creates an ExOR node; attach with sim.Attach.
func NewNode(cfg Config, state flow.RoutingState) *Node {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.CleanupFraction <= 0 {
		cfg.CleanupFraction = 0.9
	}
	if cfg.DstGossipRepeat <= 0 {
		cfg.DstGossipRepeat = 10
	}
	return &Node{
		cfg:   cfg,
		state: state,
		flows: make(map[flow.ID]*exorFlow),
	}
}

// Init implements sim.Protocol.
func (n *Node) Init(sn *sim.Node) {
	n.node = sn
	if n.cfg.TurnGap == 0 {
		c := sn.Sim().Config()
		h := packet.ExORHeader{BatchMap: make([]uint8, n.cfg.BatchSize), Forwarders: make([]uint8, 8)}
		n.cfg.TurnGap = sim.AirTime(h.EncodedSize()+n.cfg.PayloadSize, c.DataRate) +
			c.DIFS + sim.Time(c.CWMin/2)*c.SlotTime
	}
}

// pktTime estimates one data transmission's wall time.
func (n *Node) pktTime() sim.Time { return n.cfg.TurnGap }

// StartFlow begins a batched ExOR transfer to dst.
func (n *Node) StartFlow(id flow.ID, dst graph.NodeID, file flow.File, onDone func(flow.Result)) error {
	if _, dup := n.flows[id]; dup {
		return fmt.Errorf("exor: duplicate flow %d", id)
	}
	plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), dst, n.cfg.Plan)
	if err != nil {
		return fmt.Errorf("exor: flow %d: %w", id, err)
	}
	prio := append([]graph.NodeID{dst}, plan.Forwarders()...)
	prio = append(prio, n.node.ID())
	payloads := file.Payloads()
	k := n.cfg.BatchSize
	var batches [][][]byte
	for i := 0; i < len(payloads); i += k {
		end := i + k
		if end > len(payloads) {
			end = len(payloads)
		}
		batches = append(batches, payloads[i:end])
	}
	if len(batches) == 0 {
		return fmt.Errorf("exor: flow %d: empty file", id)
	}
	f := &exorFlow{
		id: id, src: n.node.ID(), dst: dst,
		prio: prio, myPrio: len(prio) - 1,
		totalBatches: len(batches),
		isSource:     true,
		batches:      batches,
		onDone:       onDone,
		cleanedIdx:   make(map[int]bool),
		planVersion:  n.state.Version(),
	}
	f.result = flow.Result{Src: n.node.ID(), Dst: dst, PacketsTotal: len(payloads), Start: n.node.Now()}
	n.flows[id] = f
	n.flowOrder = append(n.flowOrder, id)
	n.loadSourceBatch(f, 0)
	if n.cfg.RepairInterval > 0 {
		f.repairBatch = -1
		n.scheduleRepair(f)
	}
	n.startTurn(f)
	return nil
}

// scheduleRepair runs the stall watchdog for one source flow: a batch that
// completes nothing for a full RepairInterval is restarted over a priority
// list rebuilt from the current routing state. Restarting (rather than
// swapping the list mid-batch) is deliberate: batch-map entries are indices
// into the priority list, so every participant must see the new list from a
// clean slate. Receivers keep their payloads — a restarted batch re-merges
// their maps and skips straight to what is still missing.
func (n *Node) scheduleRepair(f *exorFlow) {
	n.node.After(n.cfg.RepairInterval, func() {
		if f.done {
			return
		}
		if !n.node.Failed() && f.batch == f.repairBatch {
			n.node.Emit(telemetry.Event{
				Flow: uint32(f.id), Batch: uint32(f.batch),
				Aux: telemetry.StallBatch, Kind: telemetry.KindStall,
			})
			if plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), f.dst, n.cfg.Plan); err == nil {
				prio := append([]graph.NodeID{f.dst}, plan.Forwarders()...)
				f.prio = append(prio, n.node.ID())
				f.myPrio = len(f.prio) - 1
				n.node.Emit(telemetry.Event{
					Flow: uint32(f.id), Batch: uint32(f.batch),
					Aux: telemetry.ReplanStall, Kind: telemetry.KindReplan,
				})
			}
			f.planVersion = n.state.Version()
			n.loadSourceBatch(f, f.batch)
			n.startTurn(f)
		}
		f.repairBatch = f.batch
		n.scheduleRepair(f)
	})
}

// loadSourceBatch resets the source's per-batch state. When the routing
// state has re-converged since the priority list was built (learned link
// state only; the oracle's version is constant), the list is rebuilt so the
// new batch runs over the freshest forwarder ordering.
func (n *Node) loadSourceBatch(f *exorFlow, b int) {
	if v := n.state.Version(); v != f.planVersion {
		f.planVersion = v
		if plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), f.dst, n.cfg.Plan); err == nil {
			prio := append([]graph.NodeID{f.dst}, plan.Forwarders()...)
			f.prio = append(prio, n.node.ID())
			f.myPrio = len(f.prio) - 1
		}
	}
	f.batch = b
	f.base = b * n.cfg.BatchSize
	nat := f.batches[b]
	f.k = len(nat)
	f.have = make([]bool, f.k)
	f.payload = make([][]byte, f.k)
	f.bmap = make([]uint8, f.k)
	for i := range nat {
		f.have[i] = true
		f.payload[i] = nat[i]
		f.bmap[i] = uint8(f.myPrio)
	}
	f.cleanup = false
	f.cleanedIdx = make(map[int]bool)
	f.inTurn = false
	f.fragQueue = nil
	n.node.Emit(telemetry.Event{
		Flow: uint32(f.id), Batch: uint32(b), Kind: telemetry.KindBatchStart,
	})
}

// ExpectFlow wires destination-side reporting and verification.
func (n *Node) ExpectFlow(id flow.ID, file flow.File, onDone func(flow.Result)) {
	f := n.flowFor(id)
	f.verify = file.Payloads()
	f.sinkDone = onDone
	f.sinkRes.PacketsTotal = file.NumPackets()
	f.sinkRes.Dst = n.node.ID()
	f.sinkRes.Verified = true
}

func (n *Node) flowFor(id flow.ID) *exorFlow {
	f, ok := n.flows[id]
	if !ok {
		f = &exorFlow{id: id, myPrio: -1, batch: -1, cleanedIdx: make(map[int]bool)}
		n.flows[id] = f
		n.flowOrder = append(n.flowOrder, id)
	}
	return f
}

// Result returns this node's view of the flow.
func (n *Node) Result(id flow.ID) flow.Result {
	f, ok := n.flows[id]
	if !ok {
		return flow.Result{}
	}
	if f.isSource {
		return f.result
	}
	return f.sinkRes
}

// --- Scheduling ---------------------------------------------------------------

// cyclicDist is the number of turn slots from priority a to priority b.
func cyclicDist(a, b, l int) int {
	d := (b - a) % l
	if d <= 0 {
		d += l
	}
	return d
}

// armTurn schedules this node's turn based on the latest overheard packet.
// As in ExOR, nodes estimate when their turn comes from transmission
// timings: the sender's remaining fragment plus, for every priority
// scheduled between the sender and us, an estimated fragment length derived
// from our batch map (the packets that node is the best known holder of).
func (n *Node) armTurn(f *exorFlow, senderPrio, fragRemaining int) {
	if f.myPrio < 0 {
		return
	}
	wait := sim.Time(fragRemaining+1) * n.pktTime()
	l := len(f.prio)
	for p := (senderPrio + 1) % l; p != f.myPrio; p = (p + 1) % l {
		if p == 0 {
			// The destination only gossips its map.
			wait += n.pktTime()
			continue
		}
		held := 0
		for i := 0; i < f.k; i++ {
			if int(f.bmap[i]) == p {
				held++
			}
		}
		wait += sim.Time(held+1) * n.pktTime()
	}
	if f.turnTimer != nil {
		f.turnTimer.Cancel()
	}
	f.turnTimer = n.node.After(wait, func() { n.takeTurn(f) })
	n.armWatchdog(f)
}

// armWatchdog guarantees liveness: if the flow goes silent with the batch
// incomplete, the node re-enters the schedule (staggered by priority).
func (n *Node) armWatchdog(f *exorFlow) {
	if f.watchdog != nil {
		f.watchdog.Cancel()
	}
	quiet := sim.Time(f.k+2*len(f.prio)+2)*n.pktTime() + sim.Time(f.myPrio+1)*n.pktTime()
	f.watchdog = n.node.After(quiet, func() {
		if !n.batchDone(f) {
			n.takeTurn(f)
		}
	})
}

// batchDone reports whether this node's map shows the destination holding
// the whole batch.
func (n *Node) batchDone(f *exorFlow) bool {
	if f.k == 0 {
		return false
	}
	for _, b := range f.bmap {
		if b != 0 {
			return false
		}
	}
	return true
}

// dstHolds counts packets the destination is known to hold.
func dstHolds(f *exorFlow) int {
	c := 0
	for _, b := range f.bmap {
		if b == 0 {
			c++
		}
	}
	return c
}

// takeTurn computes the fragment and starts transmitting it.
func (n *Node) takeTurn(f *exorFlow) {
	if f.myPrio < 0 || f.done || n.batchDone(f) && f.isSource {
		return
	}
	var eligible []int
	for i := 0; i < f.k; i++ {
		if f.have[i] && int(f.bmap[i]) >= f.myPrio && f.bmap[i] != 0 {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 && !f.mapDirty {
		n.armWatchdog(f)
		return
	}
	f.fragQueue = eligible
	if len(eligible) == 0 {
		// Map-only turn: the destination repeats its batch map to make it
		// survive losses; other nodes gossip once.
		if f.myPrio == 0 {
			f.gossipLeft = n.cfg.DstGossipRepeat
		} else {
			f.gossipLeft = 1
		}
	}
	f.inTurn = true
	n.TurnsTaken++
	n.node.Wake()
}

// startTurn is the source's initial entry into the schedule.
func (n *Node) startTurn(f *exorFlow) {
	f.mapDirty = true
	n.takeTurn(f)
}

// --- sim.Protocol ---------------------------------------------------------------

// Receive implements sim.Protocol.
func (n *Node) Receive(fr *sim.Frame) {
	switch m := fr.Payload.(type) {
	case *DataMsg:
		n.receiveData(m)
	case *CleanupMsg:
		n.receiveCleanup(fr, m)
	case *DoneMsg:
		n.receiveDone(fr, m)
	}
}

// maybeReannounce handles a repair-mode destination that keeps hearing
// data for a batch it already completed: the sender still advertising
// missing packets means the DoneMsg never made it back (it died on a route
// through a node that has since failed). Re-queue the completion and gossip
// the all-zero map again, at most once per RepairInterval.
func (n *Node) maybeReannounce(f *exorFlow, m *DataMsg) {
	if n.cfg.RepairInterval <= 0 || f.myPrio != 0 || !f.doneSent || m.Batch != f.batch || m.PktIdx < 0 {
		return
	}
	if n.node.Now()-f.reDoneAt < n.cfg.RepairInterval {
		return
	}
	behind := false
	for _, b := range m.BMap {
		if b != 0 {
			behind = true
			break
		}
	}
	if !behind {
		return
	}
	f.reDoneAt = n.node.Now()
	final := f.totalBatches > 0 && f.batch == f.totalBatches-1
	n.queueUnicast(&DoneMsg{Flow: f.id, Batch: f.batch, Final: final, Target: f.src}, f.src)
	f.mapDirty = true
	n.takeTurn(f)
}

func (n *Node) receiveData(m *DataMsg) {
	f := n.flowFor(m.Flow)
	n.maybeReannounce(f, m)
	if f.done {
		return
	}
	me := n.node.ID()
	if f.prio == nil || f.batch != m.Batch {
		// (Re)initialize from the packet (state born from first reception,
		// like MORE §3.3.2). The source manages its own batches.
		if f.isSource {
			if m.Batch != f.batch {
				return
			}
		} else {
			if f.batch > m.Batch {
				return // stale batch
			}
			f.src, f.dst = m.Src, m.Dst
			f.prio = m.Prio
			f.myPrio = -1
			for i, id := range m.Prio {
				if id == me {
					f.myPrio = i
				}
			}
			f.batch = m.Batch
			f.base = m.BatchBase
			f.k = m.K
			f.totalBatches = m.TotalBatches
			f.have = make([]bool, m.K)
			f.payload = make([][]byte, m.K)
			f.bmap = make([]uint8, m.K)
			for i := range f.bmap {
				f.bmap[i] = packet.BatchMapUnknown
			}
			f.cleanup = false
			f.cleanedIdx = make(map[int]bool)
			f.inTurn = false
			f.fragQueue = nil
			f.doneSent = false
		}
	}
	if m.Batch != f.batch {
		return
	}
	// Merge the sender's batch map.
	for i := 0; i < f.k && i < len(m.BMap); i++ {
		if m.BMap[i] < f.bmap[i] {
			f.bmap[i] = m.BMap[i]
			f.mapDirty = true
		}
	}
	if m.PktIdx >= 0 && m.PktIdx < f.k {
		if uint8(m.SenderPrio) < f.bmap[m.PktIdx] {
			f.bmap[m.PktIdx] = uint8(m.SenderPrio)
			f.mapDirty = true
		}
		if !f.have[m.PktIdx] && m.Payload != nil {
			f.have[m.PktIdx] = true
			f.payload[m.PktIdx] = m.Payload
			if f.myPrio >= 0 && uint8(f.myPrio) < f.bmap[m.PktIdx] {
				f.bmap[m.PktIdx] = uint8(f.myPrio)
				f.mapDirty = true
			}
		}
	}
	// A higher-priority transmission preempts our fragment.
	if f.inTurn && m.SenderPrio < f.myPrio {
		f.inTurn = false
		f.fragQueue = nil
	}
	n.sinkProgress(f)
	n.maybeCleanup(f)
	if n.batchDone(f) {
		n.onBatchDone(f)
		return
	}
	n.armTurn(f, m.SenderPrio, m.FragRemaining)
}

// sinkProgress handles destination-side delivery accounting.
func (n *Node) sinkProgress(f *exorFlow) {
	if n.node.ID() != f.dst || f.k == 0 {
		return
	}
	if f.sinkRes.Start == 0 && f.sinkRes.PacketsDelivered == 0 {
		f.sinkRes.Start = n.node.Now()
		f.sinkRes.Src = f.src
	}
	count := 0
	for i := 0; i < f.k; i++ {
		if f.have[i] {
			count++
			if f.verify != nil {
				idx := f.base + i
				if idx >= len(f.verify) || !bytesEqual(f.payload[i], f.verify[idx]) {
					f.sinkRes.Verified = false
				}
			}
		}
	}
	total := f.base + count
	if total > f.sinkRes.PacketsDelivered {
		f.sinkRes.PacketsDelivered = total
		f.sinkRes.End = n.node.Now()
	}
	// Destination holds everything: announce completion.
	if count == f.k && !f.doneSent {
		f.doneSent = true
		n.node.Emit(telemetry.Event{
			Flow: uint32(f.id), Batch: uint32(f.batch), Aux: int64(count),
			Kind: telemetry.KindBatchDecode,
		})
		for i := range f.bmap {
			f.bmap[i] = 0
		}
		f.mapDirty = true
		final := f.totalBatches > 0 && f.batch == f.totalBatches-1
		n.queueUnicast(&DoneMsg{Flow: f.id, Batch: f.batch, Final: final, Target: f.src}, f.src)
		// Gossip the completed map so forwarders stop.
		n.takeTurn(f)
		if final && !f.done {
			f.done = true
			f.sinkRes.Completed = true
			if f.sinkDone != nil {
				f.sinkDone(f.sinkRes)
			}
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maybeCleanup enters the 90% cleanup phase: best-known holders unicast the
// packets the destination still misses along the ETX path.
func (n *Node) maybeCleanup(f *exorFlow) {
	if f.myPrio <= 0 || f.k == 0 {
		return // destination doesn't clean up to itself; non-participants idle
	}
	if float64(dstHolds(f)) < n.cfg.CleanupFraction*float64(f.k) {
		return
	}
	f.cleanup = true
	for i := 0; i < f.k; i++ {
		if f.bmap[i] == 0 || !f.have[i] || f.cleanedIdx[i] {
			continue
		}
		if int(f.bmap[i]) != f.myPrio {
			continue // someone closer holds it; they clean it up
		}
		f.cleanedIdx[i] = true
		n.queueUnicast(&CleanupMsg{
			Flow: f.id, Batch: f.batch, PktIdx: i, Target: f.dst, Payload: f.payload[i],
		}, f.dst)
	}
}

// queueUnicast enqueues a hop-by-hop unicast frame toward target.
func (n *Node) queueUnicast(payload interface{}, target graph.NodeID) {
	next := n.state.NextHop(n.node.ID(), target)
	if next < 0 {
		return
	}
	var bytes int
	var fid flow.ID
	switch m := payload.(type) {
	case *CleanupMsg:
		bytes = m.wireBytes()
		fid = m.Flow
	case *DoneMsg:
		bytes = m.wireBytes()
		fid = m.Flow
	}
	n.unicast = append(n.unicast, &sim.Frame{
		From: n.node.ID(), To: next, Bytes: bytes, Payload: payload, FlowID: uint32(fid),
	})
	n.node.Wake()
}

func (n *Node) receiveCleanup(fr *sim.Frame, m *CleanupMsg) {
	if fr.To != n.node.ID() {
		return
	}
	f := n.flowFor(m.Flow)
	if n.node.ID() == m.Target {
		if f.k > 0 && m.Batch == f.batch && m.PktIdx < f.k && !f.have[m.PktIdx] {
			f.have[m.PktIdx] = true
			f.payload[m.PktIdx] = m.Payload
			f.bmap[m.PktIdx] = 0
			f.mapDirty = true
			n.sinkProgress(f)
		}
		return
	}
	n.queueUnicast(m, m.Target)
}

func (n *Node) receiveDone(fr *sim.Frame, m *DoneMsg) {
	f := n.flowFor(m.Flow)
	// Anyone hearing the done message can mark the batch complete.
	if f.k > 0 && m.Batch == f.batch {
		for i := range f.bmap {
			f.bmap[i] = 0
		}
	}
	if fr.To != n.node.ID() {
		return
	}
	if n.node.ID() == m.Target {
		if f.isSource {
			n.sourceBatchComplete(f, m)
		}
		return
	}
	n.queueUnicast(m, m.Target)
}

func (n *Node) sourceBatchComplete(f *exorFlow, m *DoneMsg) {
	if f.done || m.Batch != f.batch {
		return
	}
	if f.batch+1 >= f.totalBatches {
		f.done = true
		f.result.Completed = true
		f.result.PacketsDelivered = f.result.PacketsTotal
		f.result.End = n.node.Now()
		if f.onDone != nil {
			f.onDone(f.result)
		}
		return
	}
	n.loadSourceBatch(f, f.batch+1)
	n.startTurn(f)
}

func (n *Node) onBatchDone(f *exorFlow) {
	// Stop transmitting this batch; state resets when the next batch (or a
	// DoneMsg round trip) arrives.
	f.inTurn = false
	f.fragQueue = nil
	if f.turnTimer != nil {
		f.turnTimer.Cancel()
	}
	if f.watchdog != nil {
		f.watchdog.Cancel()
	}
}

// HasControl reports whether hop-by-hop control traffic (cleanup, done
// messages) is queued — the congestion layer's full-queue pull hint (it
// implements congest.ControlReporter).
func (n *Node) HasControl() bool { return len(n.unicast) > 0 }

// Pull implements sim.Protocol: unicast control first, then fragment data.
func (n *Node) Pull() *sim.Frame {
	for len(n.unicast) > 0 {
		fr := n.unicast[0]
		n.unicast = n.unicast[1:]
		// Drop stale cleanup for completed/advanced batches.
		if c, ok := fr.Payload.(*CleanupMsg); ok {
			f := n.flowFor(c.Flow)
			if f.k > 0 && (c.Batch != f.batch || f.bmap[c.PktIdx] == 0) {
				continue
			}
			n.CleanupTx++
		}
		return fr
	}
	for _, fid := range n.flowOrder {
		f := n.flows[fid]
		if !f.inTurn {
			continue
		}
		if len(f.fragQueue) == 0 {
			// Map-only gossip turn.
			f.gossipLeft--
			if f.gossipLeft <= 0 {
				f.inTurn = false
				f.mapDirty = false
			}
			n.MapOnly++
			return n.dataFrame(f, -1, f.gossipLeft)
		}
		idx := f.fragQueue[0]
		f.fragQueue = f.fragQueue[1:]
		remaining := len(f.fragQueue)
		if remaining == 0 {
			f.inTurn = false
			f.mapDirty = false
			n.armWatchdog(f)
		}
		n.DataSent++
		return n.dataFrame(f, idx, remaining)
	}
	return nil
}

func (n *Node) dataFrame(f *exorFlow, idx, remaining int) *sim.Frame {
	m := &DataMsg{
		Flow: f.id, Src: f.src, Dst: f.dst,
		Batch: f.batch, K: f.k, BatchBase: f.base, TotalBatches: f.totalBatches,
		PktIdx: idx, FragRemaining: remaining, SenderPrio: f.myPrio,
		BMap: append([]uint8(nil), f.bmap...),
		Prio: f.prio,
	}
	if idx >= 0 {
		m.Payload = f.payload[idx]
	}
	return &sim.Frame{From: n.node.ID(), To: graph.Broadcast, Bytes: m.wireBytes(), Payload: m, FlowID: uint32(f.id)}
}

// Sent implements sim.Protocol.
func (n *Node) Sent(fr *sim.Frame, ok bool) {
	switch m := fr.Payload.(type) {
	case *CleanupMsg:
		if !ok {
			// Retry until the batch moves on. With repair on, re-resolve the
			// next hop instead of re-queuing the frame's original one: the
			// frame was addressed when first queued, and retrying a next hop
			// that has since died would spin until the deadline.
			f := n.flowFor(m.Flow)
			if f.k > 0 && m.Batch == f.batch && f.bmap[m.PktIdx] != 0 {
				if n.cfg.RepairInterval > 0 {
					n.queueUnicast(m, m.Target)
				} else {
					n.unicast = append(n.unicast, fr)
				}
			}
		}
	case *DoneMsg:
		if !ok {
			if n.cfg.RepairInterval > 0 {
				n.queueUnicast(m, m.Target)
			} else {
				n.unicast = append(n.unicast, fr)
			}
		}
	}
	if len(n.unicast) > 0 {
		n.node.Wake()
		return
	}
	for _, fid := range n.flowOrder {
		if n.flows[fid].inTurn {
			n.node.Wake()
			return
		}
	}
}
