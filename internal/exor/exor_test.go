package exor

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func runExOR(t *testing.T, topo *graph.Topology, cfg Config, simCfg sim.Config,
	src, dst graph.NodeID, file flow.File, deadline sim.Time) (flow.Result, *sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(topo, simCfg)
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	nodes := make([]*Node, topo.N())
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	done := false
	nodes[dst].ExpectFlow(1, file, nil)
	if err := nodes[src].StartFlow(1, dst, file, func(flow.Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	s.RunWhile(deadline, func() bool { return !done })
	return nodes[dst].Result(1), s, nodes
}

func smallCfg(k int) Config {
	cfg := DefaultConfig()
	cfg.BatchSize = k
	cfg.Plan.ETX = routing.ETXOptions{Threshold: 0.15, AckAware: true}
	return cfg
}

func TestSingleHopBatch(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.8)
	file := flow.NewFile(16*1500, 1500, 1)
	res, _, _ := runExOR(t, topo, smallCfg(16), sim.DefaultConfig(), 0, 1, file, 120*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("single hop failed: %v", res)
	}
	if res.PacketsDelivered != 16 {
		t.Fatalf("delivered %d/16", res.PacketsDelivered)
	}
}

func TestTwoHopRelay(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	file := flow.NewFile(32*1500, 1500, 2)
	res, s, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 2, file, 300*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("two hop failed: %v", res)
	}
	if s.Counters.TxByNode[1] < 16 {
		t.Fatalf("relay transmitted only %d frames", s.Counters.TxByNode[1])
	}
}

func TestOpportunisticSkipReducesRelayLoad(t *testing.T) {
	// Fig 1-1 shape: the destination overhears half the source packets
	// directly, so the relay should forward notably fewer than all K.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95)
	topo.SetLink(1, 2, 0.95)
	topo.SetLink(0, 2, 0.5)
	file := flow.NewFile(4*32*1500, 1500, 3)
	res, s, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 2, file, 600*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("diamond failed: %v", res)
	}
	relayTx := float64(s.Counters.TxByNode[1])
	srcTx := float64(s.Counters.TxByNode[0])
	if relayTx > 0.85*srcTx {
		t.Fatalf("relay %v vs src %v: batch maps not exploiting overhearing", relayTx, srcTx)
	}
}

func TestMultiBatchProgression(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	file := flow.NewFile(40*1500, 1500, 4) // 2 full batches of 16 + short 8
	res, _, _ := runExOR(t, topo, smallCfg(16), sim.DefaultConfig(), 0, 2, file, 600*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("multi batch failed: %v", res)
	}
	if res.PacketsDelivered != 40 {
		t.Fatalf("delivered %d/40", res.PacketsDelivered)
	}
}

func TestLossyChain(t *testing.T) {
	topo := graph.LossyChain(5, 15, 30)
	file := flow.NewFile(32*1500, 1500, 5)
	res, _, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 4, file, 900*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("lossy chain failed: %v", res)
	}
}

func TestOneTransmitterAtATime(t *testing.T) {
	// The defining ExOR property: a single flow keeps at most one data
	// transmitter active. Count medium-overlap among ExOR data frames via
	// the collision counter on a topology with a hidden pair: with the
	// strict schedule, concurrent data transmissions should be rare.
	topo := graph.New(5)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	topo.SetLink(2, 3, 0.9)
	topo.SetLink(3, 4, 0.9)
	// Ends are hidden from each other (no 0-3, 0-4, 1-4 links): CSMA alone
	// would allow overlap, only the schedule prevents it.
	file := flow.NewFile(2*32*1500, 1500, 6)
	res, s, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 4, file, 900*sim.Second)
	if !res.Completed {
		t.Fatalf("chain failed: %v", res)
	}
	// Collisions can still happen (gossip, control), but must be a tiny
	// fraction of transmissions.
	frac := float64(s.Counters.Collisions) / float64(s.Counters.Transmissions)
	if frac > 0.12 {
		t.Fatalf("collision fraction %.3f too high for a scheduled protocol", frac)
	}
}

func TestDeterministic(t *testing.T) {
	topo := graph.LossyChain(4, 15, 30)
	file := flow.NewFile(32*1500, 1500, 7)
	r1, s1, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 3, file, 600*sim.Second)
	r2, s2, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 3, file, 600*sim.Second)
	if r1.End != r2.End || s1.Counters.Transmissions != s2.Counters.Transmissions {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			r1.End, s1.Counters.Transmissions, r2.End, s2.Counters.Transmissions)
	}
}

func TestCleanupPhaseUsed(t *testing.T) {
	// On a lossy last hop the tail of the batch should move via unicast
	// cleanup rather than opportunistic retransmission.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95)
	topo.SetLink(1, 2, 0.55)
	file := flow.NewFile(2*32*1500, 1500, 8)
	res, _, nodes := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 2, file, 900*sim.Second)
	if !res.Completed {
		t.Fatalf("cleanup run failed: %v", res)
	}
	var cleanups int64
	for _, n := range nodes {
		cleanups += n.CleanupTx
	}
	if cleanups == 0 {
		t.Fatal("cleanup phase never engaged on a lossy last hop")
	}
}

func TestUnreachableDestination(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.DefaultETXOptions())
	n := NewNode(DefaultConfig(), oracle)
	s.Attach(0, n)
	if err := n.StartFlow(1, 2, flow.NewFile(1500, 1500, 1), nil); err == nil {
		t.Fatal("unreachable destination accepted")
	}
}

func TestTestbedPair(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	file := flow.NewFile(32*1500, 1500, 9)
	res, _, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 3, 17, file, 900*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("testbed pair failed: %v", res)
	}
}

func TestSmallBatchOverheadVisible(t *testing.T) {
	// §4.5: ExOR's per-batch scheduling overhead hurts small batches. The
	// per-delivered-packet transmission cost at K=8 should exceed K=32 on
	// the same path.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.85)
	topo.SetLink(1, 2, 0.85)
	file := flow.NewFile(64*1500, 1500, 10)
	res8, s8, _ := runExOR(t, topo, smallCfg(8), sim.DefaultConfig(), 0, 2, file, 900*sim.Second)
	res32, s32, _ := runExOR(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 2, file, 900*sim.Second)
	if !res8.Completed || !res32.Completed {
		t.Fatalf("batch runs failed: %v / %v", res8, res32)
	}
	if res8.Throughput() >= res32.Throughput() {
		t.Fatalf("K=8 (%.1f pkt/s) should underperform K=32 (%.1f pkt/s)",
			res8.Throughput(), res32.Throughput())
	}
	_ = s8
	_ = s32
}
