package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// combineRef is the byte-wise oracle for the kernel: a plain reference loop
// over the seed mulTable path.
func combineRef(dst []byte, srcs [][]byte, coeffs []byte) {
	clear(dst)
	for i, c := range coeffs {
		mulAddSliceGeneric(dst, srcs[i], c)
	}
}

// kernelLengths are the payload lengths the issue calls out plus strip-edge
// cases for the 64-byte strip and 8-byte word tail.
var kernelLengths = []int{1, 7, 8, 9, 63, 64, 65, 100, 128, 777, 1499, 1500}

func randomRows(rng *rand.Rand, k, size int) ([][]byte, []byte) {
	rows := make([][]byte, k)
	for i := range rows {
		rows[i] = make([]byte, size)
		rng.Read(rows[i])
	}
	coeffs := make([]byte, k)
	rng.Read(coeffs)
	return rows, coeffs
}

func TestKernelCombineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kn := NewKernel()
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 15, 32, 33, 128} {
		for _, size := range kernelLengths {
			rows, coeffs := randomRows(rng, k, size)
			kn.SetRows(rows)
			want := make([]byte, size)
			combineRef(want, rows, coeffs)
			got := make([]byte, size)
			kn.Combine(got, coeffs)
			if !bytes.Equal(got, want) {
				t.Fatalf("k=%d size=%d: Combine diverged from reference", k, size)
			}
			got2 := make([]byte, size)
			kn.CombineInto(got2, rows, coeffs)
			if !bytes.Equal(got2, want) {
				t.Fatalf("k=%d size=%d: CombineInto diverged from reference", k, size)
			}
		}
	}
}

func TestKernelCombineSpecialCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kn := NewKernel()
	rows, _ := randomRows(rng, 8, 200)
	kn.SetRows(rows)
	cases := [][]byte{
		make([]byte, 8),                        // all zero -> zero output
		{1, 0, 0, 0, 0, 0, 0, 0},               // single identity
		{0, 0, 0, 0, 0, 0, 0, 255},             // single max coefficient
		{1, 1, 1, 1, 1, 1, 1, 1},               // pure XOR of all rows
		{2, 4, 8, 16, 32, 64, 128, 0x1D},       // powers of the generator
		{255, 255, 255, 255, 255, 255, 255, 1}, // dense high bits
	}
	for _, coeffs := range cases {
		want := make([]byte, 200)
		combineRef(want, rows, coeffs)
		got := make([]byte, 200)
		kn.Combine(got, coeffs)
		if !bytes.Equal(got, want) {
			t.Fatalf("coeffs %v: Combine diverged", coeffs)
		}
		got2 := make([]byte, 200)
		kn.CombineInto(got2, rows, coeffs)
		if !bytes.Equal(got2, want) {
			t.Fatalf("coeffs %v: CombineInto diverged", coeffs)
		}
	}
}

func TestKernelCombineManyMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	kn := NewKernel()
	for _, k := range []int{1, 3, 8, 32} {
		for _, size := range []int{1, 9, 64, 100, 1500} {
			rows, _ := randomRows(rng, k, size)
			kn.SetRows(rows)
			np := 1 + rng.Intn(40)
			coeffs := make([][]byte, np)
			dsts := make([][]byte, np)
			wants := make([][]byte, np)
			for p := range coeffs {
				coeffs[p] = make([]byte, k)
				rng.Read(coeffs[p])
				dsts[p] = make([]byte, size)
				wants[p] = make([]byte, size)
				combineRef(wants[p], rows, coeffs[p])
			}
			kn.CombineMany(dsts, coeffs)
			for p := range dsts {
				if !bytes.Equal(dsts[p], wants[p]) {
					t.Fatalf("k=%d size=%d np=%d: CombineMany product %d diverged", k, size, np, p)
				}
			}
		}
	}
}

func BenchmarkKernelCombineMany32x32x1500(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	rows, _ := randomRows(rng, 32, 1500)
	kn := NewKernel()
	kn.SetRows(rows)
	coeffs := make([][]byte, 32)
	dsts := make([][]byte, 32)
	for p := range coeffs {
		coeffs[p] = make([]byte, 32)
		rng.Read(coeffs[p])
		dsts[p] = make([]byte, 1500)
	}
	b.SetBytes(32 * 32 * 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.CombineMany(dsts, coeffs)
	}
}

func TestKernelReuseAcrossBatches(t *testing.T) {
	// Reusing one kernel across SetRows calls of different shapes must not
	// leak state between batches.
	rng := rand.New(rand.NewSource(3))
	kn := NewKernel()
	for iter := 0; iter < 20; iter++ {
		k := 1 + rng.Intn(40)
		size := 1 + rng.Intn(300)
		rows, coeffs := randomRows(rng, k, size)
		kn.SetRows(rows)
		want := make([]byte, size)
		combineRef(want, rows, coeffs)
		got := make([]byte, size)
		kn.Combine(got, coeffs)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d (k=%d size=%d): kernel leaked state across batches", iter, k, size)
		}
	}
}

func TestKernelCopiesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, coeffs := randomRows(rng, 4, 96)
	kn := NewKernel()
	kn.SetRows(rows)
	want := make([]byte, 96)
	combineRef(want, rows, coeffs)
	for i := range rows {
		rng.Read(rows[i]) // mutate originals after capture
	}
	got := make([]byte, 96)
	kn.Combine(got, coeffs)
	if !bytes.Equal(got, want) {
		t.Fatal("SetRows did not copy the rows")
	}
}

func TestKernelPanics(t *testing.T) {
	kn := NewKernel()
	for name, f := range map[string]func(){
		"empty rows":     func() { kn.SetRows(nil) },
		"zero-size rows": func() { kn.SetRows([][]byte{{}}) },
		"ragged rows":    func() { kn.SetRows([][]byte{{1, 2}, {3}}) },
		"coeff count": func() {
			kn2 := NewKernel()
			kn2.SetRows([][]byte{{1, 2}})
			kn2.Combine(make([]byte, 2), []byte{1, 2})
		},
		"dst length": func() {
			kn2 := NewKernel()
			kn2.SetRows([][]byte{{1, 2}})
			kn2.Combine(make([]byte, 3), []byte{1})
		},
		"into ragged": func() { kn.CombineInto(make([]byte, 2), [][]byte{{1}}, []byte{1}) },
		"into counts": func() { kn.CombineInto(make([]byte, 1), [][]byte{{1}}, []byte{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestXtimesMatchesScalarDouble(t *testing.T) {
	for x := 0; x < 256; x++ {
		var w uint64
		for lane := 0; lane < 8; lane++ {
			w |= uint64(byte(x+lane*37)) << (8 * lane)
		}
		got := xtimes(w)
		for lane := 0; lane < 8; lane++ {
			in := byte(w >> (8 * lane))
			if want := Mul(in, 2); byte(got>>(8*lane)) != want {
				t.Fatalf("xtimes lane %d of %#x: got %d want %d", lane, w, byte(got>>(8*lane)), want)
			}
		}
	}
}

// FuzzKernelCombine cross-checks both kernel modes against the byte-wise
// reference for arbitrary shapes and contents.
func FuzzKernelCombine(f *testing.F) {
	f.Add(int64(1), uint8(32), uint16(1500))
	f.Add(int64(2), uint8(1), uint16(1))
	f.Add(int64(3), uint8(5), uint16(65))
	f.Add(int64(4), uint8(128), uint16(9))
	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, sizeRaw uint16) {
		k := int(kRaw)%130 + 1
		size := int(sizeRaw)%2000 + 1
		rng := rand.New(rand.NewSource(seed))
		rows, coeffs := randomRows(rng, k, size)
		want := make([]byte, size)
		combineRef(want, rows, coeffs)
		kn := NewKernel()
		kn.SetRows(rows)
		got := make([]byte, size)
		kn.Combine(got, coeffs)
		if !bytes.Equal(got, want) {
			t.Fatalf("Combine diverged (k=%d size=%d)", k, size)
		}
		got2 := make([]byte, size)
		kn.CombineInto(got2, rows, coeffs)
		if !bytes.Equal(got2, want) {
			t.Fatalf("CombineInto diverged (k=%d size=%d)", k, size)
		}
	})
}

func BenchmarkKernelCombine32x1500(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	rows, coeffs := randomRows(rng, 32, 1500)
	kn := NewKernel()
	kn.SetRows(rows)
	dst := make([]byte, 1500)
	b.SetBytes(32 * 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.Combine(dst, coeffs)
	}
}

func BenchmarkKernelCombineInto32x1500(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	rows, coeffs := randomRows(rng, 32, 1500)
	kn := NewKernel()
	dst := make([]byte, 1500)
	b.SetBytes(32 * 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.CombineInto(dst, rows, coeffs)
	}
}

// BenchmarkCombineReference is the seed-equivalent loop (one MulAddSlice per
// row) against which the kernel's speedup is reported in PERFORMANCE.md.
func BenchmarkCombineReference32x1500(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rows, coeffs := randomRows(rng, 32, 1500)
	dst := make([]byte, 1500)
	b.SetBytes(32 * 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combineRef(dst, rows, coeffs)
	}
}

func BenchmarkKernelSetRows32x1500(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	rows, _ := randomRows(rng, 32, 1500)
	kn := NewKernel()
	kn.SetRows(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.SetRows(rows)
	}
}
