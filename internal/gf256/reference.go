package gf256

// refKernel is the byte-wise reference implementation ("reference"): one
// mulTable lookup and one XOR per payload byte per row, no word-wise or
// vector decomposition of any kind. It is deliberately the dumbest correct
// form — the oracle the portable SWAR kernel and the amd64 SIMD kernels are
// differentially fuzzed against (FuzzKernelEquivalence) — and is never
// selected by automatic dispatch. It is also the honest seed-era baseline
// the speedups in PERFORMANCE.md are quoted over.
type refKernel struct {
	rows [][]byte // private copies, per the SetRows contract
	flat []byte   // backing store for rows
}

func (kn *refKernel) setRows(rows [][]byte) {
	size := len(rows[0])
	need := len(rows) * size
	if cap(kn.flat) < need {
		kn.flat = make([]byte, need)
	}
	kn.flat = kn.flat[:need]
	if cap(kn.rows) < len(rows) {
		kn.rows = make([][]byte, len(rows))
	}
	kn.rows = kn.rows[:len(rows)]
	for i, r := range rows {
		kn.rows[i] = kn.flat[i*size : (i+1)*size]
		copy(kn.rows[i], r)
	}
}

func (kn *refKernel) combine(dst, coeffs []byte) {
	kn.combineInto(dst, kn.rows, coeffs)
}

func (kn *refKernel) combineMany(dsts [][]byte, coeffs [][]byte) {
	for p := range dsts {
		kn.combine(dsts[p], coeffs[p])
	}
}

func (kn *refKernel) combineInto(dst []byte, srcs [][]byte, coeffs []byte) {
	clear(dst)
	for r, c := range coeffs {
		if c == 0 {
			continue
		}
		row := &mulTable[c]
		src := srcs[r]
		for i := range src {
			dst[i] ^= row[src[i]]
		}
	}
}
