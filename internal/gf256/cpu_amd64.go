package gf256

// CPUID-based feature detection for the amd64 kernel arms. The standard
// library's internal/cpu is not importable and this repo takes no external
// dependencies, so the two instructions needed (CPUID, XGETBV) live in
// cpu_amd64.s.

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (only valid when CPUID reports OSXSAVE).
func xgetbv() (eax, edx uint32)

type cpuFeatures struct {
	ssse3 bool // PSHUFB
	avx2  bool // 256-bit integer ops, OS-enabled
	gfni  bool // GF2P8AFFINEQB (VEX form; we pair it with AVX2)
}

// cpuFeat is computed during package variable initialization, before any
// init function runs, so dispatch.go's env handling can rely on it.
var cpuFeat = detectCPU()

func detectCPU() cpuFeatures {
	var f cpuFeatures
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	f.ssse3 = ecx1&(1<<9) != 0
	// AVX requires the OS to have enabled XMM+YMM state saving (OSXSAVE,
	// then XCR0 bits 1 and 2).
	osxsave := ecx1&(1<<27) != 0
	avxHW := ecx1&(1<<28) != 0
	ymmOS := false
	if osxsave {
		xlo, _ := xgetbv()
		ymmOS = xlo&0x6 == 0x6
	}
	if maxLeaf >= 7 {
		_, ebx7, ecx7, _ := cpuid(7, 0)
		f.avx2 = avxHW && ymmOS && ebx7&(1<<5) != 0
		f.gfni = f.avx2 && ecx7&(1<<8) != 0
	}
	return f
}
