//go:build !amd64

package gf256

// Non-amd64 builds carry no accelerated kernels: dispatch offers only the
// portable SWAR form and the byte-wise reference.

func archKernels() []string { return nil }

func newArchImpl(name string) kernelImpl {
	panic("gf256: no accelerated kernel " + name + " on this architecture")
}
