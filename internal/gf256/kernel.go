package gf256

// This file is the kernel façade: the multi-row combine API
//
//	dst = Σ coeffs[i] · rows[i]
//
// that the packet pipeline codes, recodes and decodes through. The façade
// owns every argument check (so all implementations share identical panic
// behavior, pinned by kernel_panic_test.go) and dispatches the byte
// crunching to one of several interchangeable implementations:
//
//   - portable: the word-wise SWAR form in kernel_generic.go — bit-plane
//     decomposition, 4-bit-nibble subset tables, 64-byte register strips.
//     Runs everywhere; the fallback the SIMD forms are proven against.
//   - pshufb (amd64): 16-byte-nibble-shuffle multiply in kernel_amd64.s —
//     two PSHUFB table lookups per 16 input bytes, widened to 32-byte AVX2
//     lanes when the CPU has them.
//   - gfni (amd64): one VGF2P8AFFINEQB per 32 input bytes, multiplying by a
//     constant via its 8×8 bit matrix over GF(2) (the affine form works for
//     our 0x11D polynomial where GF2P8MULB's hardwired 0x11B would not).
//   - reference: the byte-wise mulTable loop in reference.go — the oracle
//     all word/vector forms are differentially fuzzed against, never
//     selected by auto dispatch.
//
// Selection is automatic at startup (best kernel the CPU supports), forced
// by the GF256_KERNEL environment variable, or switched programmatically
// with SetKernel — see dispatch.go. Every implementation must produce
// byte-identical output for identical inputs; FuzzKernelEquivalence crosses
// all of them on random shapes, tails and alignments.

// Kernel is a reusable multi-row combine engine. A zero-value Kernel is not
// usable; obtain one with NewKernel (the active implementation) or
// NewKernelNamed. Kernels hold scratch state and are not safe for
// concurrent use — the packet pipeline owns one per flow, and the sharded
// pipeline in internal/coding owns one per worker.
type Kernel struct {
	k    int // rows captured by SetRows
	size int // row length
	name string
	impl kernelImpl
}

// kernelImpl is the contract a combine implementation fulfills. The façade
// validates every argument before dispatching, so implementations may
// assume: setRows receives a non-empty set of equal-length nonzero rows;
// combine/combineMany receive k-length coefficient vectors and size-length
// destinations; combineInto receives sources matching the coefficient
// count, all exactly len(dst) (it is independent of setRows state).
type kernelImpl interface {
	setRows(rows [][]byte)
	combine(dst, coeffs []byte)
	combineMany(dsts, coeffs [][]byte)
	combineInto(dst []byte, srcs [][]byte, coeffs []byte)
}

// NewKernel returns an empty kernel backed by the active implementation
// (ActiveKernel; portable SWAR unless the CPU offers better or GF256_KERNEL
// overrides).
func NewKernel() *Kernel {
	name := ActiveKernel()
	return &Kernel{name: name, impl: newImpl(name)}
}

// NewKernelNamed returns an empty kernel backed by the named implementation
// regardless of the active selection. It errors if the implementation is
// unknown or not supported on this CPU.
func NewKernelNamed(name string) (*Kernel, error) {
	if err := kernelSupported(name); err != nil {
		return nil, err
	}
	return &Kernel{name: name, impl: newImpl(name)}, nil
}

// Name returns the name of the implementation backing this kernel.
func (kn *Kernel) Name() string { return kn.name }

// K returns the number of rows captured by SetRows (0 before the first
// SetRows).
func (kn *Kernel) K() int { return kn.k }

// SetRows captures rows for repeated Combine calls, building whatever
// per-batch acceleration state the implementation uses (subset tables for
// the portable form, a flat row copy for the SIMD forms). All rows must
// have equal nonzero length. The rows are copied; later mutation of the
// originals does not affect the kernel.
func (kn *Kernel) SetRows(rows [][]byte) {
	if len(rows) == 0 {
		panic("gf256: Kernel.SetRows with no rows")
	}
	size := len(rows[0])
	if size == 0 {
		panic("gf256: Kernel.SetRows with empty rows")
	}
	for _, r := range rows {
		if len(r) != size {
			panic("gf256: Kernel.SetRows with ragged rows")
		}
	}
	kn.k = len(rows)
	kn.size = size
	kn.impl.setRows(rows)
}

// Combine sets dst = Σ coeffs[i]·rows[i] over the rows captured by SetRows.
// len(coeffs) must equal K() and len(dst) must equal the row length; dst
// must not alias the captured rows' storage (it never does — SetRows
// copies).
func (kn *Kernel) Combine(dst, coeffs []byte) {
	if len(coeffs) != kn.k {
		panic("gf256: Kernel.Combine coefficient count mismatch")
	}
	if len(dst) != kn.size {
		panic("gf256: Kernel.Combine length mismatch")
	}
	kn.impl.combine(dst, coeffs)
}

// CombineMany computes dsts[p] = Σ coeffs[p][i]·rows[i] for every product p
// over the rows captured by SetRows. This is the decoder's shape — K
// natives recovered from one stored batch — and implementations batch it so
// per-batch state stays hot across products.
func (kn *Kernel) CombineMany(dsts [][]byte, coeffs [][]byte) {
	if len(dsts) != len(coeffs) {
		panic("gf256: CombineMany product count mismatch")
	}
	if len(dsts) == 0 {
		return
	}
	for p := range dsts {
		if len(coeffs[p]) != kn.k {
			panic("gf256: CombineMany coefficient count mismatch")
		}
		if len(dsts[p]) != kn.size {
			panic("gf256: CombineMany length mismatch")
		}
	}
	kn.impl.combineMany(dsts, coeffs)
}

// CombineInto sets dst = Σ coeffs[i]·srcs[i] without any precomputation —
// the table-free path for recoding, where the combined rows change with
// every received packet. All srcs must share len(dst); dst must not alias
// any src. Rows with coefficient zero are never read. CombineInto is
// independent of SetRows state.
func (kn *Kernel) CombineInto(dst []byte, srcs [][]byte, coeffs []byte) {
	if len(srcs) != len(coeffs) {
		panic("gf256: CombineInto row/coefficient count mismatch")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf256: CombineInto length mismatch")
		}
	}
	kn.impl.combineInto(dst, srcs, coeffs)
}
