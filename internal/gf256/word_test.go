package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// The word-wise MulSlice/MulAddSlice/AddSlice paths must match the byte-wise
// reference loops exactly for all 256 coefficients, the issue's length set
// (0, 1, 7, 8, 9, 1500), and aliased dst==src.

var wordLengths = []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1500}

func TestMulSliceWordAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range wordLengths {
		src := make([]byte, n)
		rng.Read(src)
		for c := 0; c < 256; c++ {
			want := make([]byte, n)
			mulSliceGeneric(want, src, byte(c))
			got := make([]byte, n)
			MulSlice(got, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice c=%d n=%d diverged from byte-wise reference", c, n)
			}
			// Aliased dst == src.
			aliased := append([]byte(nil), src...)
			MulSlice(aliased, aliased, byte(c))
			if !bytes.Equal(aliased, want) {
				t.Fatalf("MulSlice aliased c=%d n=%d diverged", c, n)
			}
		}
	}
}

func TestMulAddSliceWordAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range wordLengths {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)
		for c := 0; c < 256; c++ {
			want := append([]byte(nil), base...)
			mulAddSliceGeneric(want, src, byte(c))
			got := append([]byte(nil), base...)
			MulAddSlice(got, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAddSlice c=%d n=%d diverged from byte-wise reference", c, n)
			}
		}
	}
}

func TestMulAddSliceAliased(t *testing.T) {
	// dst == src: dst[i] ^= c*dst[i], i.e. dst scaled by (c+1).
	rng := rand.New(rand.NewSource(22))
	for _, n := range wordLengths {
		for _, c := range []byte{0, 1, 2, 77, 255} {
			v := make([]byte, n)
			rng.Read(v)
			want := make([]byte, n)
			for i := range v {
				want[i] = v[i] ^ Mul(v[i], c)
			}
			MulAddSlice(v, v, c)
			if !bytes.Equal(v, want) {
				t.Fatalf("MulAddSlice aliased c=%d n=%d diverged", c, n)
			}
		}
	}
}

func TestAddSliceWord(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range wordLengths {
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		want := make([]byte, n)
		for i := range a {
			want[i] = a[i] ^ b[i]
		}
		AddSlice(a, b)
		if !bytes.Equal(a, want) {
			t.Fatalf("AddSlice n=%d diverged", n)
		}
	}
}

func FuzzMulSliceWord(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(37))
	f.Add([]byte{}, byte(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 1500), byte(255))
	f.Fuzz(func(t *testing.T, src []byte, c byte) {
		want := make([]byte, len(src))
		mulSliceGeneric(want, src, c)
		got := make([]byte, len(src))
		MulSlice(got, src, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSlice diverged for c=%d len=%d", c, len(src))
		}
	})
}

func FuzzMulAddSliceWord(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(211), int64(1))
	f.Add([]byte{7}, byte(1), int64(2))
	f.Fuzz(func(t *testing.T, src []byte, c byte, seed int64) {
		dst := make([]byte, len(src))
		rand.New(rand.NewSource(seed)).Read(dst)
		want := append([]byte(nil), dst...)
		mulAddSliceGeneric(want, src, c)
		MulAddSlice(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice diverged for c=%d len=%d", c, len(src))
		}
	})
}
