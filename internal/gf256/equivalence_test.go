package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Differential fuzzing across kernel arms. Every arm the host CPU supports
// (asm SIMD forms included) plus the portable SWAR kernel is crossed against
// the byte-wise reference kernel on the same inputs for all three combine
// entry points. Any divergence is a correctness bug in exactly one place:
// the faster arm.
//
// The fuzzer derives everything from five scalars so the corpus stays small
// and minimizable. The derivation deliberately exercises the regions where
// SIMD kernels break in practice:
//
//   - sizes straddling the vector block (sub-16-byte payloads, 16/32/64-byte
//     boundaries, and +-1 off them) so aligned-prefix/scalar-tail splits and
//     their hand-off are covered;
//   - rows placed at an odd offset inside a larger backing array so no input
//     pointer is 16-byte aligned (the asm uses unaligned loads; this proves
//     it);
//   - coefficient vectors biased towards 0 and 1 so the zero-skip and
//     identity-copy short-circuits cross the same inputs as the general
//     multiply, including all-zero vectors (output must be all zero bytes).

// fuzzArms returns the kernels under test (everything but the reference
// oracle itself) honoring any GF256_KERNEL pin only for ordering, never for
// exclusion: differential coverage should not silently narrow.
func fuzzArms(t testing.TB) []string {
	var arms []string
	for _, name := range AvailableKernels() {
		if name != KernelReference {
			arms = append(arms, name)
		}
	}
	if len(arms) == 0 {
		t.Fatal("no kernel arms to test")
	}
	return arms
}

// buildFuzzCase derives rows, coefficient vectors, and unaligned backing
// storage from the fuzz scalars.
type fuzzCase struct {
	k      int
	size   int
	np     int      // products for CombineMany
	rows   [][]byte // k rows of size bytes, unaligned within their backing
	coeffs [][]byte // np coefficient vectors of length k
}

func buildFuzzCase(seed int64, kRaw, sizeRaw, offRaw, npRaw uint8) fuzzCase {
	rng := rand.New(rand.NewSource(seed))
	k := int(kRaw)%48 + 1
	// Map sizeRaw onto a mix of block boundaries and arbitrary lengths:
	// even inputs pick len in [1,96] directly (dense sub-vector coverage),
	// odd inputs pick a boundary multiple with a -1/0/+1 nudge.
	size := int(sizeRaw)%96 + 1
	if sizeRaw%2 == 1 {
		size = (int(sizeRaw/2)%40 + 1) * 16
		switch sizeRaw % 3 {
		case 0:
			size--
		case 2:
			size++
		}
	}
	off := int(offRaw) % 31
	np := int(npRaw)%4 + 1

	fc := fuzzCase{k: k, size: size, np: np}
	fc.rows = make([][]byte, k)
	for i := range fc.rows {
		backing := make([]byte, off+size+7)
		rng.Read(backing)
		fc.rows[i] = backing[off : off+size]
	}
	fc.coeffs = make([][]byte, np)
	for p := range fc.coeffs {
		cv := make([]byte, k)
		mode := rng.Intn(6)
		for i := range cv {
			switch mode {
			case 0: // all zero
			case 1: // all one
				cv[i] = 1
			case 2: // sparse: mostly zeros
				if rng.Intn(4) == 0 {
					cv[i] = byte(rng.Intn(256))
				}
			case 3: // zero/one mix
				cv[i] = byte(rng.Intn(2))
			default: // dense random
				cv[i] = byte(rng.Intn(256))
			}
		}
		fc.coeffs[p] = cv
	}
	return fc
}

// checkKernelEquivalence runs one derived case through every arm and fails
// on the first byte diverging from the reference.
func checkKernelEquivalence(t *testing.T, fc fuzzCase) {
	t.Helper()
	ref, err := NewKernelNamed(KernelReference)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetRows(fc.rows)

	// Oracle outputs.
	wantCombine := make([][]byte, fc.np)
	for p := range wantCombine {
		wantCombine[p] = make([]byte, fc.size)
		ref.Combine(wantCombine[p], fc.coeffs[p])
	}
	wantMany := make([][]byte, fc.np)
	for p := range wantMany {
		wantMany[p] = make([]byte, fc.size)
	}
	ref.CombineMany(wantMany, fc.coeffs)
	wantInto := make([]byte, fc.size)
	ref.CombineInto(wantInto, fc.rows, fc.coeffs[0])

	for _, name := range fuzzArms(t) {
		kn, err := NewKernelNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		kn.SetRows(fc.rows)

		// Combine: dst starts dirty to catch arms that accumulate instead
		// of overwrite. Dst is also placed unaligned.
		for p := 0; p < fc.np; p++ {
			backing := bytes.Repeat([]byte{0xa5}, fc.size+13)
			got := backing[13:]
			kn.Combine(got, fc.coeffs[p])
			if !bytes.Equal(got, wantCombine[p]) {
				t.Fatalf("%s Combine diverges from reference (k=%d size=%d p=%d coeffs=%x)\n got %x\nwant %x",
					name, fc.k, fc.size, p, fc.coeffs[p], got, wantCombine[p])
			}
		}

		gotMany := make([][]byte, fc.np)
		for p := range gotMany {
			gotMany[p] = bytes.Repeat([]byte{0x3c}, fc.size)
		}
		kn.CombineMany(gotMany, fc.coeffs)
		for p := range gotMany {
			if !bytes.Equal(gotMany[p], wantMany[p]) {
				t.Fatalf("%s CombineMany diverges from reference (k=%d size=%d p=%d)",
					name, fc.k, fc.size, p)
			}
		}

		gotInto := bytes.Repeat([]byte{0x5a}, fc.size)
		kn.CombineInto(gotInto, fc.rows, fc.coeffs[0])
		if !bytes.Equal(gotInto, wantInto) {
			t.Fatalf("%s CombineInto diverges from reference (k=%d size=%d coeffs=%x)\n got %x\nwant %x",
				name, fc.k, fc.size, fc.coeffs[0], gotInto, wantInto)
		}
	}
}

func FuzzKernelEquivalence(f *testing.F) {
	// Seeds cover: tiny payloads, exact block multiples, off-by-one around
	// 16/32/64, unaligned offsets, single-row, and many-row cases.
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint8(0))    // k=1 size=1 aligned
	f.Add(int64(2), uint8(31), uint8(14), uint8(0), uint8(1))  // size=15 sub-block
	f.Add(int64(3), uint8(31), uint8(15), uint8(0), uint8(1))  // size=16 exact
	f.Add(int64(4), uint8(31), uint8(16), uint8(0), uint8(1))  // size=17
	f.Add(int64(5), uint8(31), uint8(3), uint8(5), uint8(2))   // 32-block, unaligned
	f.Add(int64(6), uint8(31), uint8(7), uint8(1), uint8(2))   // 64-boundary region
	f.Add(int64(7), uint8(15), uint8(62), uint8(3), uint8(3))  // size=63 (asm prefix + 31B tail)
	f.Add(int64(8), uint8(15), uint8(9), uint8(30), uint8(0))  // 79, worst unalignment
	f.Add(int64(9), uint8(47), uint8(95), uint8(17), uint8(3)) // k=48 wide
	f.Add(int64(10), uint8(0), uint8(77), uint8(11), uint8(1)) // k=1 odd size
	f.Fuzz(func(t *testing.T, seed int64, kRaw, sizeRaw, offRaw, npRaw uint8) {
		checkKernelEquivalence(t, buildFuzzCase(seed, kRaw, sizeRaw, offRaw, npRaw))
	})
}

// TestKernelEquivalenceSweep is the deterministic companion to the fuzzer:
// a fixed sweep over every size 1..200 crossed with several row counts, so
// plain `go test` (and the portable-only CI leg) still covers every
// prefix/tail split without fuzzing infrastructure.
func TestKernelEquivalenceSweep(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 32} {
		for size := 1; size <= 200; size++ {
			fc := buildFuzzCase(int64(k*1000+size), uint8(k-1), 0, uint8(size%31), 2)
			fc.size = size
			rng := rand.New(rand.NewSource(int64(size)))
			for i := range fc.rows {
				backing := make([]byte, (size%31)+size)
				rng.Read(backing)
				fc.rows[i] = backing[size%31:]
			}
			checkKernelEquivalence(t, fc)
		}
	}
}

// TestKernelEquivalenceSeedCorpus replays the checked-in fuzz seeds under
// plain `go test` so the corpus cannot rot.
func TestKernelEquivalenceSeedCorpus(t *testing.T) {
	seeds := [][5]uint64{
		{1, 0, 0, 0, 0}, {2, 31, 14, 0, 1}, {3, 31, 15, 0, 1},
		{4, 31, 16, 0, 1}, {5, 31, 3, 5, 2}, {6, 31, 7, 1, 2},
		{7, 15, 62, 3, 3}, {8, 15, 9, 30, 0}, {9, 47, 95, 17, 3},
		{10, 0, 77, 11, 1},
	}
	for _, s := range seeds {
		t.Run(fmt.Sprintf("seed%d", s[0]), func(t *testing.T) {
			checkKernelEquivalence(t, buildFuzzCase(int64(s[0]), uint8(s[1]), uint8(s[2]), uint8(s[3]), uint8(s[4])))
		})
	}
}
