// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// MORE codes packets over GF(2^8) (§4.6(a) of the thesis): every payload
// byte is an element of the field, addition is XOR, and multiplication is
// carried out modulo the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1
// (0x11D). Scalar products use the full 64 KiB multiplication table indexed
// by pairs of bytes, exactly as the paper's implementation does.
//
// The slice operations that dominate packet coding are word-wise: MulSlice,
// MulAddSlice and AddSlice process payloads eight bytes per uint64 load/XOR
// (with a byte-wise fallback for short slices and tails), and the multi-row
// Kernel in kernel.go combines whole batches via bit-plane decomposition
// and 4-bit-nibble subset tables — see the design note at the top of
// kernel.go. Every word-wise path is fuzz-tested for byte-exact equivalence
// against the table-based reference loops kept in this file.
//
// The zero value of the field element type (byte 0) is the additive
// identity; byte 1 is the multiplicative identity.
package gf256

import "encoding/binary"

// Poly is the primitive polynomial used to construct the field,
// x^8 + x^4 + x^3 + x^2 + 1, written with the implicit x^8 term as 0x11D.
const Poly = 0x11D

var (
	// expTable[i] = g^i where g = 2 is a generator of the multiplicative
	// group. It is doubled in length so that Mul can index it without a
	// modular reduction of the exponent sum.
	expTable [510]byte

	// logTable[x] = log_g(x) for x != 0. logTable[0] is unused.
	logTable [256]byte

	// mulTable is the 64 KiB lookup table of all products, indexed as
	// mulTable[a][b] == a*b. This is the table §4.6(a) describes.
	mulTable [256][256]byte

	// invTable[x] = x^-1 for x != 0. invTable[0] is unused.
	invTable [256]byte
)

func init() { initBaseTables() }

// baseTablesBuilt guards initBaseTables: the amd64 SIMD arm derives its
// nibble tables and affine matrices from mulTable inside its own init, so
// it calls initBaseTables first rather than relying on init file order.
var baseTablesBuilt bool

func initBaseTables() {
	if baseTablesBuilt {
		return
	}
	baseTablesBuilt = true
	// Build exp/log tables by repeated multiplication by the generator.
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 510; i++ {
		expTable[i] = expTable[i-255]
	}
	// Dense product and inverse tables.
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
		invTable[a] = expTable[255-la]
	}
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8); identical to Add because the field has
// characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8) via the precomputed 64 KiB table.
func Mul(a, b byte) byte { return mulTable[a][b] }

// Inv returns the multiplicative inverse of a. It panics if a == 0, which
// has no inverse; callers in the coding layer guarantee nonzero pivots.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Div returns a / b. It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Exp returns g^e for the generator g = 2, with e taken modulo 255.
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// Log returns log_g(a). It panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; dst may alias src exactly (but not partially). This is the
// inner loop of packet coding; the word path assembles eight product bytes
// into a uint64 per iteration.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	n := len(src) &^ 7
	// The 8-lane product gather below is duplicated in MulAddSlice: at cost
	// 90 it exceeds the inliner's budget as a helper, and a call per 8
	// bytes is measurable on this loop. Keep the two copies in sync.
	for i := 0; i < n; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		p := uint64(row[w&0xff]) |
			uint64(row[w>>8&0xff])<<8 |
			uint64(row[w>>16&0xff])<<16 |
			uint64(row[w>>24&0xff])<<24 |
			uint64(row[w>>32&0xff])<<32 |
			uint64(row[w>>40&0xff])<<40 |
			uint64(row[w>>48&0xff])<<48 |
			uint64(row[w>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], p)
	}
	mulSliceGeneric(dst[n:], src[n:], c)
}

// mulSliceGeneric is the byte-wise reference for MulSlice (tails, and the
// oracle the word path is fuzzed against).
func mulSliceGeneric(dst, src []byte, c byte) {
	row := &mulTable[c]
	for i := range src {
		dst[i] = row[src[i]]
	}
}

// MulAddSlice sets dst[i] += c * src[i] for all i, the fused
// multiply-accumulate used when folding one coded packet into another.
// dst and src must have the same length and must not alias unless equal.
func MulAddSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	row := &mulTable[c]
	n := len(src) &^ 7
	// Product gather duplicated from MulSlice — see the note there.
	for i := 0; i < n; i += 8 {
		w := binary.LittleEndian.Uint64(src[i:])
		p := uint64(row[w&0xff]) |
			uint64(row[w>>8&0xff])<<8 |
			uint64(row[w>>16&0xff])<<16 |
			uint64(row[w>>24&0xff])<<24 |
			uint64(row[w>>32&0xff])<<32 |
			uint64(row[w>>40&0xff])<<40 |
			uint64(row[w>>48&0xff])<<48 |
			uint64(row[w>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	mulAddSliceGeneric(dst[n:], src[n:], c)
}

// mulAddSliceGeneric is the byte-wise reference for MulAddSlice.
func mulAddSliceGeneric(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	row := &mulTable[c]
	for i := range src {
		dst[i] ^= row[src[i]]
	}
}

// AddSlice sets dst[i] += src[i] (XOR) for all i, eight bytes at a time.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// ScaleSlice multiplies every byte of v by c in place.
func ScaleSlice(v []byte, c byte) { MulSlice(v, v, c) }

// DotProduct returns the GF(2^8) inner product of a and b, which must have
// equal lengths. A coded payload byte is the dot product of the code vector
// with the column of native payload bytes at that offset. Unlike the slice
// products, both operands vary per position, so there is no word-wise
// decomposition: this stays one table lookup per byte. Column-major callers
// should use Kernel instead.
func DotProduct(a, b []byte) byte {
	if len(a) != len(b) {
		panic("gf256: DotProduct length mismatch")
	}
	var s byte
	for i := range a {
		s ^= mulTable[a[i]][b[i]]
	}
	return s
}
