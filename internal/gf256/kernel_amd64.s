// amd64 constant-multiply primitives for the SIMD kernel arms
// (kernel_simd_amd64.go). Each function applies one GF(2^8)
// multiply-by-constant to a whole slice:
//
//	gfMul*   : dst[i]  = c * src[i]
//	gfMulAdd*: dst[i] ^= c * src[i]
//
// The constant is passed pre-expanded: the PSHUFB forms take a 32-byte
// nibble table (lo[16] = c*x, hi[16] = c*(x<<4); the product of a byte is
// the XOR of its two nibble products, multiplication being linear over
// GF(2)), and the GFNI forms take the 8x8 bit matrix of the linear map
// x -> c*x packed in a qword, applied by VGF2P8AFFINEQB (which, unlike
// GF2P8MULB's hardwired 0x11B polynomial, works for our 0x11D field).
//
// Callers guarantee: n > 0, n is a multiple of the form's block size
// (16 for SSSE3, 32 for AVX2/GFNI), and dst/src do not overlap. Tails are
// handled byte-wise in Go.

#include "textflag.h"

// func gfMulSSSE3(dst, src *byte, n int, tab *byte)
TEXT ·gfMulSSSE3(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), DX
	MOVOU (DX), X0            // lo-nibble product table
	MOVOU 16(DX), X1          // hi-nibble product table
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	PSHUFD $0x44, X2, X2      // broadcast nibble mask to both qwords

loop:
	MOVOU (SI), X3
	MOVO  X3, X4
	PSRLQ $4, X4
	PAND  X2, X3              // low nibbles
	PAND  X2, X4              // high nibbles
	MOVO  X0, X5
	MOVO  X1, X6
	PSHUFB X3, X5             // c * low nibble
	PSHUFB X4, X6             // c * (high nibble << 4)
	PXOR  X6, X5
	MOVOU X5, (DI)
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JNE  loop
	RET

// func gfMulAddSSSE3(dst, src *byte, n int, tab *byte)
TEXT ·gfMulAddSSSE3(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), DX
	MOVOU (DX), X0
	MOVOU 16(DX), X1
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	PSHUFD $0x44, X2, X2

loop:
	MOVOU (SI), X3
	MOVO  X3, X4
	PSRLQ $4, X4
	PAND  X2, X3
	PAND  X2, X4
	MOVO  X0, X5
	MOVO  X1, X6
	PSHUFB X3, X5
	PSHUFB X4, X6
	PXOR  X6, X5
	MOVOU (DI), X7
	PXOR  X7, X5
	MOVOU X5, (DI)
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JNE  loop
	RET

// func gfMulAVX2(dst, src *byte, n int, tab *byte)
TEXT ·gfMulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), DX
	VBROADCASTI128 (DX), Y0   // lo table in both 128-bit lanes
	VBROADCASTI128 16(DX), Y1 // hi table (VPSHUFB shuffles per lane)
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2
	CMPQ CX, $64
	JB   tail32

loop64:
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y8
	VPSRLQ $4, Y3, Y4
	VPSRLQ $4, Y8, Y9
	VPAND Y2, Y3, Y3
	VPAND Y2, Y4, Y4
	VPAND Y2, Y8, Y8
	VPAND Y2, Y9, Y9
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y9, Y1, Y11
	VPXOR Y6, Y5, Y5
	VPXOR Y11, Y10, Y10
	VMOVDQU Y5, (DI)
	VMOVDQU Y10, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, CX
	CMPQ CX, $64
	JAE  loop64

tail32:
	TESTQ CX, CX
	JZ   done
	VMOVDQU (SI), Y3
	VPSRLQ $4, Y3, Y4
	VPAND Y2, Y3, Y3
	VPAND Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR Y6, Y5, Y5
	VMOVDQU Y5, (DI)

done:
	VZEROUPPER
	RET

// func gfMulAddAVX2(dst, src *byte, n int, tab *byte)
TEXT ·gfMulAddAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), DX
	VBROADCASTI128 (DX), Y0
	VBROADCASTI128 16(DX), Y1
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2
	CMPQ CX, $64
	JB   tail32

loop64:
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y8
	VPSRLQ $4, Y3, Y4
	VPSRLQ $4, Y8, Y9
	VPAND Y2, Y3, Y3
	VPAND Y2, Y4, Y4
	VPAND Y2, Y8, Y8
	VPAND Y2, Y9, Y9
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y9, Y1, Y11
	VPXOR Y6, Y5, Y5
	VPXOR Y11, Y10, Y10
	VPXOR (DI), Y5, Y5
	VPXOR 32(DI), Y10, Y10
	VMOVDQU Y5, (DI)
	VMOVDQU Y10, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, CX
	CMPQ CX, $64
	JAE  loop64

tail32:
	TESTQ CX, CX
	JZ   done
	VMOVDQU (SI), Y3
	VPSRLQ $4, Y3, Y4
	VPAND Y2, Y3, Y3
	VPAND Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR Y6, Y5, Y5
	VPXOR (DI), Y5, Y5
	VMOVDQU Y5, (DI)

done:
	VZEROUPPER
	RET

// func gfMulGFNI(dst, src *byte, n int, mat uint64)
TEXT ·gfMulGFNI(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ mat+24(FP), AX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0       // multiply-by-c bit matrix in every qword
	CMPQ CX, $64
	JB   tail32

loop64:
	VMOVDQU (SI), Y1
	VMOVDQU 32(SI), Y2
	VGF2P8AFFINEQB $0, Y0, Y1, Y1
	VGF2P8AFFINEQB $0, Y0, Y2, Y2
	VMOVDQU Y1, (DI)
	VMOVDQU Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, CX
	CMPQ CX, $64
	JAE  loop64

tail32:
	TESTQ CX, CX
	JZ   done
	VMOVDQU (SI), Y1
	VGF2P8AFFINEQB $0, Y0, Y1, Y1
	VMOVDQU Y1, (DI)

done:
	VZEROUPPER
	RET

// func gfMulAddGFNI(dst, src *byte, n int, mat uint64)
TEXT ·gfMulAddGFNI(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ mat+24(FP), AX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0
	CMPQ CX, $64
	JB   tail32

loop64:
	VMOVDQU (SI), Y1
	VMOVDQU 32(SI), Y2
	VGF2P8AFFINEQB $0, Y0, Y1, Y1
	VGF2P8AFFINEQB $0, Y0, Y2, Y2
	VPXOR (DI), Y1, Y1
	VPXOR 32(DI), Y2, Y2
	VMOVDQU Y1, (DI)
	VMOVDQU Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, CX
	CMPQ CX, $64
	JAE  loop64

tail32:
	TESTQ CX, CX
	JZ   done
	VMOVDQU (SI), Y1
	VGF2P8AFFINEQB $0, Y0, Y1, Y1
	VPXOR (DI), Y1, Y1
	VMOVDQU Y1, (DI)

done:
	VZEROUPPER
	RET

// func gfMulAdd2AVX2(dst, a, b *byte, n int, tabA, tabB *byte)
// dst[i] ^= cA*a[i] ^ cB*b[i]: two fused multiply-accumulate streams per
// pass, halving the dst load/store traffic of two gfMulAddAVX2 calls.
TEXT ·gfMulAdd2AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), CX
	MOVQ tabA+32(FP), DX
	MOVQ tabB+40(FP), R8
	VBROADCASTI128 (DX), Y0
	VBROADCASTI128 16(DX), Y1
	VBROADCASTI128 (R8), Y12
	VBROADCASTI128 16(R8), Y13
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X2
	VPBROADCASTQ X2, Y2

loop:
	VMOVDQU (SI), Y3
	VMOVDQU (BX), Y8
	VPSRLQ $4, Y3, Y4
	VPSRLQ $4, Y8, Y9
	VPAND Y2, Y3, Y3
	VPAND Y2, Y4, Y4
	VPAND Y2, Y8, Y8
	VPAND Y2, Y9, Y9
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y8, Y12, Y10
	VPSHUFB Y9, Y13, Y11
	VPXOR Y6, Y5, Y5
	VPXOR Y11, Y10, Y10
	VPXOR Y10, Y5, Y5
	VPXOR (DI), Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, DI
	SUBQ $32, CX
	JNE  loop
	VZEROUPPER
	RET

// func gfMulAdd2GFNI(dst, a, b *byte, n int, matA, matB uint64)
// dst[i] ^= cA*a[i] ^ cB*b[i], GFNI form.
TEXT ·gfMulAdd2GFNI(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), CX
	MOVQ matA+32(FP), AX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0
	MOVQ matB+40(FP), AX
	MOVQ AX, X3
	VPBROADCASTQ X3, Y3
	CMPQ CX, $64
	JB   tail32

loop64:
	VMOVDQU (SI), Y1
	VMOVDQU 32(SI), Y2
	VMOVDQU (BX), Y4
	VMOVDQU 32(BX), Y5
	VGF2P8AFFINEQB $0, Y0, Y1, Y1
	VGF2P8AFFINEQB $0, Y0, Y2, Y2
	VGF2P8AFFINEQB $0, Y3, Y4, Y4
	VGF2P8AFFINEQB $0, Y3, Y5, Y5
	VPXOR Y4, Y1, Y1
	VPXOR Y5, Y2, Y2
	VPXOR (DI), Y1, Y1
	VPXOR 32(DI), Y2, Y2
	VMOVDQU Y1, (DI)
	VMOVDQU Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	SUBQ $64, CX
	CMPQ CX, $64
	JAE  loop64

tail32:
	TESTQ CX, CX
	JZ   done
	VMOVDQU (SI), Y1
	VMOVDQU (BX), Y4
	VGF2P8AFFINEQB $0, Y0, Y1, Y1
	VGF2P8AFFINEQB $0, Y3, Y4, Y4
	VPXOR Y4, Y1, Y1
	VPXOR (DI), Y1, Y1
	VMOVDQU Y1, (DI)

done:
	VZEROUPPER
	RET
