package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The façade in kernel.go owns every argument check, so all kernel arms must
// exhibit identical panic behavior. These tests iterate the full table of
// panic paths over every available arm (SIMD included) and pin the message
// prefix so refactors cannot silently drop or reword a check.

func allKernels(t testing.TB) []*Kernel {
	t.Helper()
	var kns []*Kernel
	for _, name := range AvailableKernels() {
		kn, err := NewKernelNamed(name)
		if err != nil {
			t.Fatalf("NewKernelNamed(%q): %v", name, err)
		}
		kns = append(kns, kn)
	}
	return kns
}

func TestKernelPanicPathsAllArms(t *testing.T) {
	// ready returns a kernel with two 4-byte rows installed.
	ready := func(kn *Kernel) *Kernel {
		kn.SetRows([][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}})
		return kn
	}
	cases := []struct {
		name string
		want string // required panic message prefix
		call func(kn *Kernel)
	}{
		{"SetRows nil", "gf256: Kernel.SetRows with no rows",
			func(kn *Kernel) { kn.SetRows(nil) }},
		{"SetRows empty slice", "gf256: Kernel.SetRows with no rows",
			func(kn *Kernel) { kn.SetRows([][]byte{}) }},
		{"SetRows zero-size rows", "gf256: Kernel.SetRows with empty rows",
			func(kn *Kernel) { kn.SetRows([][]byte{{}, {}}) }},
		{"SetRows ragged", "gf256: Kernel.SetRows with ragged rows",
			func(kn *Kernel) { kn.SetRows([][]byte{{1, 2}, {3}}) }},
		{"Combine coeff count short", "gf256: Kernel.Combine coefficient count mismatch",
			func(kn *Kernel) { ready(kn).Combine(make([]byte, 4), []byte{1}) }},
		{"Combine coeff count long", "gf256: Kernel.Combine coefficient count mismatch",
			func(kn *Kernel) { ready(kn).Combine(make([]byte, 4), []byte{1, 2, 3}) }},
		{"Combine dst short", "gf256: Kernel.Combine length mismatch",
			func(kn *Kernel) { ready(kn).Combine(make([]byte, 3), []byte{1, 2}) }},
		{"Combine dst long", "gf256: Kernel.Combine length mismatch",
			func(kn *Kernel) { ready(kn).Combine(make([]byte, 5), []byte{1, 2}) }},
		{"CombineMany product count", "gf256: CombineMany product count mismatch",
			func(kn *Kernel) {
				ready(kn).CombineMany([][]byte{make([]byte, 4)}, [][]byte{{1, 2}, {3, 4}})
			}},
		{"CombineMany coeff count", "gf256: CombineMany coefficient count mismatch",
			func(kn *Kernel) {
				ready(kn).CombineMany([][]byte{make([]byte, 4)}, [][]byte{{1}})
			}},
		{"CombineMany dst length", "gf256: CombineMany length mismatch",
			func(kn *Kernel) {
				ready(kn).CombineMany([][]byte{make([]byte, 3)}, [][]byte{{1, 2}})
			}},
		{"CombineInto count mismatch", "gf256: CombineInto row/coefficient count mismatch",
			func(kn *Kernel) {
				kn.CombineInto(make([]byte, 2), [][]byte{{1, 2}}, []byte{1, 2})
			}},
		{"CombineInto src length", "gf256: CombineInto length mismatch",
			func(kn *Kernel) {
				kn.CombineInto(make([]byte, 2), [][]byte{{1, 2}, {3}}, []byte{1, 2})
			}},
	}
	for _, kn := range allKernels(t) {
		for _, tc := range cases {
			t.Run(kn.Name()+"/"+tc.name, func(t *testing.T) {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s did not panic", tc.name)
					}
					msg, ok := r.(string)
					if !ok || !strings.HasPrefix(msg, tc.want) {
						t.Fatalf("%s panicked with %v, want prefix %q", tc.name, r, tc.want)
					}
				}()
				kn2, err := NewKernelNamed(kn.Name())
				if err != nil {
					t.Fatal(err)
				}
				tc.call(kn2)
			})
		}
	}
}

// TestKernelNonPanicEdges pins the boundary calls that must NOT panic.
func TestKernelNonPanicEdges(t *testing.T) {
	for _, kn := range allKernels(t) {
		t.Run(kn.Name(), func(t *testing.T) {
			// CombineMany with zero products is a no-op, not an error.
			kn.SetRows([][]byte{{1, 2}})
			kn.CombineMany(nil, nil)
			kn.CombineMany([][]byte{}, [][]byte{})
			// CombineInto with zero rows zero-fills dst.
			dst := []byte{0xff, 0xff}
			kn.CombineInto(dst, nil, nil)
			if dst[0] != 0 || dst[1] != 0 {
				t.Fatalf("CombineInto with no rows left dst %x, want zeros", dst)
			}
		})
	}
}

// TestKernelSetRowsReuse drives one kernel instance through batches of
// differing row counts and sizes (grow, shrink, grow again) and checks
// correctness against the reference after every transition. This pins the
// backing-store reuse logic in each arm (flat snapshot in the SIMD arms,
// subset tables in the portable arm).
func TestKernelSetRowsReuse(t *testing.T) {
	shapes := []struct{ k, size int }{
		{4, 64}, {16, 1500}, {1, 1}, {32, 1500}, {8, 17}, {32, 96}, {2, 1024},
	}
	rng := rand.New(rand.NewSource(42))
	for _, kn := range allKernels(t) {
		ref, err := NewKernelNamed(KernelReference)
		if err != nil {
			t.Fatal(err)
		}
		for si, sh := range shapes {
			t.Run(fmt.Sprintf("%s/batch%d_k%d_size%d", kn.Name(), si, sh.k, sh.size), func(t *testing.T) {
				rows := make([][]byte, sh.k)
				for i := range rows {
					rows[i] = make([]byte, sh.size)
					rng.Read(rows[i])
				}
				kn.SetRows(rows)
				ref.SetRows(rows)
				if kn.K() != sh.k {
					t.Fatalf("K() = %d, want %d", kn.K(), sh.k)
				}
				coeffs := make([]byte, sh.k)
				for trial := 0; trial < 4; trial++ {
					rng.Read(coeffs)
					got := make([]byte, sh.size)
					want := make([]byte, sh.size)
					kn.Combine(got, coeffs)
					ref.Combine(want, coeffs)
					if !bytes.Equal(got, want) {
						t.Fatalf("%s diverges after reuse at shape k=%d size=%d", kn.Name(), sh.k, sh.size)
					}
				}
			})
		}
	}
}
