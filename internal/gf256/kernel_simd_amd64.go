package gf256

// The amd64 SIMD kernel arms. Where the portable kernel decomposes a
// multi-row combination into bit planes (kernel_generic.go), the SIMD arms
// take the direct route: one constant-multiply-accumulate pass over the
// payload per nonzero coefficient, each pass running 16 bytes (SSSE3
// PSHUFB), 32 bytes (AVX2 VPSHUFB) or 32 bytes at one instruction per lane
// (GFNI VGF2P8AFFINEQB) at a time. The per-coefficient acceleration state —
// the 32-byte nibble product tables and the 8x8 affine bit matrices — is
// precomputed for all 256 coefficients at package init (10 KiB total), so a
// combine touches no scalar multiplication tables at all.
//
// Both arms must produce byte-identical output to the portable kernel and
// the byte-wise reference; FuzzKernelEquivalence crosses all of them.

// Per-coefficient acceleration tables, filled at init from mulTable.
var (
	// nibTab[c] is the PSHUFB table pair for multiply-by-c:
	// nibTab[c][x] = c*x and nibTab[c][16+x] = c*(x<<4) for x in 0..15.
	nibTab [256][32]byte
	// gfniMat[c] is the bit matrix of the GF(2)-linear map x -> c*x,
	// packed for VGF2P8AFFINEQB: result bit j is the parity of
	// (matrix byte 7-j) AND x, so byte 7-j holds bit j of c*2^i at bit i.
	gfniMat [256]uint64
)

func init() {
	initBaseTables()
	for c := 0; c < 256; c++ {
		row := &mulTable[c]
		t := &nibTab[c]
		for x := 0; x < 16; x++ {
			t[x] = row[x]
			t[16+x] = row[x<<4]
		}
		var q uint64
		for j := 0; j < 8; j++ {
			var bits byte
			for i := 0; i < 8; i++ {
				if row[1<<i]>>uint(j)&1 != 0 {
					bits |= 1 << uint(i)
				}
			}
			q |= uint64(bits) << uint(8*(7-j))
		}
		gfniMat[c] = q
	}
}

// archKernels returns the accelerated arms this CPU supports, best-first.
func archKernels() []string {
	var names []string
	if cpuFeat.gfni {
		names = append(names, KernelGFNI)
	}
	if cpuFeat.ssse3 {
		names = append(names, KernelPSHUFB)
	}
	return names
}

func newArchImpl(name string) kernelImpl {
	switch name {
	case KernelGFNI:
		return &simdKernel{mul: gfniMulSlice, mulAdd: gfniMulAddSlice, mulAdd2: gfniMulAdd2Slice}
	case KernelPSHUFB:
		if cpuFeat.avx2 {
			return &simdKernel{mul: pshufbMulSliceWide, mulAdd: pshufbMulAddSliceWide, mulAdd2: pshufbMulAdd2SliceWide}
		}
		return &simdKernel{mul: pshufbMulSlice, mulAdd: pshufbMulAddSlice}
	}
	panic("gf256: unknown arch kernel " + name)
}

// simdKernel implements kernelImpl as one constant-multiply pass per
// nonzero coefficient. setRows only snapshots the rows (the per-coefficient
// tables are global), so SetRows is far cheaper than the portable kernel's
// subset-table build.
type simdKernel struct {
	mul    func(dst, src []byte, c byte) // dst = c*src
	mulAdd func(dst, src []byte, c byte) // dst ^= c*src
	// mulAdd2 fuses two accumulate streams (dst ^= c1*a ^ c2*b) in one pass
	// over dst, halving the dst traffic of back-to-back mulAdd calls. Nil on
	// arms without a fused form (bare SSSE3).
	mulAdd2 func(dst, a, b []byte, c1, c2 byte)
	size    int
	flat    []byte   // row snapshot backing store
	rows    [][]byte // views into flat
	sel     []int32  // scratch: indices of nonzero coefficients
}

func (kn *simdKernel) setRows(rows [][]byte) {
	size := len(rows[0])
	kn.size = size
	need := len(rows) * size
	if cap(kn.flat) < need {
		kn.flat = make([]byte, need)
	}
	kn.flat = kn.flat[:need]
	if cap(kn.rows) < len(rows) {
		kn.rows = make([][]byte, len(rows))
	}
	kn.rows = kn.rows[:len(rows)]
	for i, r := range rows {
		kn.rows[i] = kn.flat[i*size : (i+1)*size]
		copy(kn.rows[i], r)
	}
}

func (kn *simdKernel) combine(dst, coeffs []byte) {
	kn.combineInto(dst, kn.rows, coeffs)
}

func (kn *simdKernel) combineMany(dsts [][]byte, coeffs [][]byte) {
	for p := range dsts {
		kn.combineInto(dsts[p], kn.rows, coeffs[p])
	}
}

func (kn *simdKernel) combineInto(dst []byte, srcs [][]byte, coeffs []byte) {
	sel := kn.sel[:0]
	for i, c := range coeffs {
		if c != 0 {
			sel = append(sel, int32(i))
		}
	}
	kn.sel = sel
	if len(sel) == 0 {
		clear(dst)
		return
	}
	kn.mul(dst, srcs[sel[0]], coeffs[sel[0]])
	i := 1
	if kn.mulAdd2 != nil {
		for ; i+1 < len(sel); i += 2 {
			a, b := sel[i], sel[i+1]
			kn.mulAdd2(dst, srcs[a], srcs[b], coeffs[a], coeffs[b])
		}
	}
	for ; i < len(sel); i++ {
		kn.mulAdd(dst, srcs[sel[i]], coeffs[sel[i]])
	}
}

// Assembly primitives (kernel_amd64.s). n must be a positive multiple of
// the form's block size; dst and src must not overlap.

//go:noescape
func gfMulSSSE3(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulAddSSSE3(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulAVX2(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulAddAVX2(dst, src *byte, n int, tab *byte)

//go:noescape
func gfMulAdd2AVX2(dst, a, b *byte, n int, tabA, tabB *byte)

//go:noescape
func gfMulGFNI(dst, src *byte, n int, mat uint64)

//go:noescape
func gfMulAddGFNI(dst, src *byte, n int, mat uint64)

//go:noescape
func gfMulAdd2GFNI(dst, a, b *byte, n int, matA, matB uint64)

// The Go-side wrappers run the vector body over the aligned prefix and the
// byte-wise reference loop over the tail, with the same c==0 / c==1
// short-circuits as MulSlice/MulAddSlice.

func pshufbMulSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	n := len(dst) &^ 15
	if n > 0 {
		gfMulSSSE3(&dst[0], &src[0], n, &nibTab[c][0])
	}
	mulSliceGeneric(dst[n:], src[n:], c)
}

func pshufbMulAddSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	n := len(dst) &^ 15
	if n > 0 {
		gfMulAddSSSE3(&dst[0], &src[0], n, &nibTab[c][0])
	}
	mulAddSliceGeneric(dst[n:], src[n:], c)
}

func pshufbMulSliceWide(dst, src []byte, c byte) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	n := len(dst) &^ 31
	if n > 0 {
		gfMulAVX2(&dst[0], &src[0], n, &nibTab[c][0])
	}
	mulSliceGeneric(dst[n:], src[n:], c)
}

func pshufbMulAddSliceWide(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	n := len(dst) &^ 31
	if n > 0 {
		gfMulAddAVX2(&dst[0], &src[0], n, &nibTab[c][0])
	}
	mulAddSliceGeneric(dst[n:], src[n:], c)
}

// The fused two-stream forms take only nonzero coefficients (combineInto
// filters zeros); c==1 needs no special case because the identity table and
// identity matrix are exact.

func pshufbMulAdd2SliceWide(dst, a, b []byte, c1, c2 byte) {
	n := len(dst) &^ 31
	if n > 0 {
		gfMulAdd2AVX2(&dst[0], &a[0], &b[0], n, &nibTab[c1][0], &nibTab[c2][0])
	}
	mulAddSliceGeneric(dst[n:], a[n:], c1)
	mulAddSliceGeneric(dst[n:], b[n:], c2)
}

func gfniMulAdd2Slice(dst, a, b []byte, c1, c2 byte) {
	n := len(dst) &^ 31
	if n > 0 {
		gfMulAdd2GFNI(&dst[0], &a[0], &b[0], n, gfniMat[c1], gfniMat[c2])
	}
	mulAddSliceGeneric(dst[n:], a[n:], c1)
	mulAddSliceGeneric(dst[n:], b[n:], c2)
}

func gfniMulSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	n := len(dst) &^ 31
	if n > 0 {
		gfMulGFNI(&dst[0], &src[0], n, gfniMat[c])
	}
	mulSliceGeneric(dst[n:], src[n:], c)
}

func gfniMulAddSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	n := len(dst) &^ 31
	if n > 0 {
		gfMulAddGFNI(&dst[0], &src[0], n, gfniMat[c])
	}
	mulAddSliceGeneric(dst[n:], src[n:], c)
}
