package gf256

// Kernel implementation dispatch. The package selects the best combine
// implementation the CPU supports at startup; the GF256_KERNEL environment
// variable forces a specific one (the CI matrix runs the whole test suite
// with GF256_KERNEL=portable so the fallback arm can never rot), and
// SetKernel switches at runtime (cmd flags: `-gf256 portable`). Selection
// affects kernels created afterwards — existing Kernel values keep the
// implementation they were built with.

import (
	"fmt"
	"os"
	"sync"
)

// Names of the kernel implementations accepted by SetKernel, NewKernelNamed
// and the GF256_KERNEL environment variable.
const (
	// KernelAuto re-runs the hardware detection and selects the best
	// supported implementation.
	KernelAuto = "auto"
	// KernelPortable is the word-wise SWAR form (kernel_generic.go). Always
	// available; the escape hatch when an accelerated arm misbehaves.
	KernelPortable = "portable"
	// KernelReference is the byte-wise mulTable loop (reference.go). Always
	// available but never auto-selected; it exists as the fuzzing oracle.
	KernelReference = "reference"
	// KernelPSHUFB is the amd64 16-byte-nibble-shuffle form (SSSE3, widened
	// to AVX2 when available).
	KernelPSHUFB = "pshufb"
	// KernelGFNI is the amd64 Galois-field-affine form (GFNI + AVX2).
	KernelGFNI = "gfni"
)

var kernelMu sync.Mutex
var activeKernel string

func init() {
	name := os.Getenv("GF256_KERNEL")
	if name == "" {
		name = KernelAuto
	}
	if err := SetKernel(name); err != nil {
		// A bad GF256_KERNEL must be loud, not silently fall back: the CI
		// portable leg depends on the variable actually forcing the arm.
		panic(fmt.Sprintf("gf256: GF256_KERNEL=%q: %v", os.Getenv("GF256_KERNEL"), err))
	}
}

// AvailableKernels returns the implementation names supported on this
// machine, best-first (the first entry is what auto selects; "reference"
// is always last).
func AvailableKernels() []string {
	names := append([]string{}, archKernels()...)
	return append(names, KernelPortable, KernelReference)
}

// ActiveKernel returns the name of the implementation NewKernel currently
// builds.
func ActiveKernel() string {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return activeKernel
}

// SetKernel selects the implementation NewKernel builds from now on.
// "auto" (or "") re-runs hardware detection and picks the best supported
// arm. It errors, leaving the selection unchanged, if the name is unknown
// or the CPU lacks the required features.
func SetKernel(name string) error {
	if name == "" || name == KernelAuto {
		name = AvailableKernels()[0]
	}
	if err := kernelSupported(name); err != nil {
		return err
	}
	kernelMu.Lock()
	defer kernelMu.Unlock()
	activeKernel = name
	return nil
}

// kernelSupported reports whether name identifies an implementation this
// machine can run.
func kernelSupported(name string) error {
	avail := AvailableKernels()
	for _, a := range avail {
		if a == name {
			return nil
		}
	}
	return fmt.Errorf("unknown or unsupported gf256 kernel %q (available: %v)", name, avail)
}

// newImpl builds the named implementation. The name must have passed
// kernelSupported.
func newImpl(name string) kernelImpl {
	switch name {
	case KernelPortable:
		return &swarKernel{}
	case KernelReference:
		return &refKernel{}
	}
	return newArchImpl(name)
}
