package gf256

// This file implements the portable ("portable") word-wise multi-row
// coding kernel: computing
//
//	dst = Σ coeffs[i] · rows[i]
//
// eight bytes per uint64 load/XOR instead of one table lookup per byte.
// It is the fallback arm of the kernel dispatch (kernel.go) and the form
// the SIMD arms are differentially fuzzed against.
//
// The design has three parts:
//
//  1. Bit-plane decomposition. By linearity over GF(2), c·p for c = Σ_j b_j 2^j
//     is Σ_j b_j·(2^j·p), so a multi-row combination splits into eight XOR
//     accumulations — plane j XORs together the rows whose coefficient has
//     bit j set — followed by a Horner combine Σ_j 2^j·A_j. XOR and the
//     doubling map both vectorize over a uint64 of eight byte lanes:
//     doubling is the SWAR "xtimes" below, so no multiplication tables are
//     touched per payload byte at all.
//
//  2. Nibble subset tables (four-Russians). When the same rows are combined
//     repeatedly — the source codes dozens of packets per batch, the decoder
//     recovers K natives from one stored batch — rows are grouped four at a
//     time and all 16 subset XORs of each group are precomputed. A plane
//     then XORs one precomputed row per group, selected by the 4-bit nibble
//     formed by that plane's bit across the group's four coefficients,
//     halving the XOR passes per combination. Table rows are padded to an
//     odd multiple of 64 bytes so concurrent strips never collide in the
//     same L1 cache sets.
//
//  3. Strip mining with an inline Horner. Payloads are processed in 64-byte
//     strips held in eight uint64 registers; planes run from bit 7 down to
//     bit 0 with an xtimes of the live registers between planes, so the
//     Horner combine costs no extra accumulator traffic.
//
// combine (table mode) and combineInto (table-free mode, for recoding over a
// buffer whose rows change every packet) must produce byte-identical output
// to the byte-wise reference loop; kernel_test.go and the differential fuzz
// harness pin that equivalence.

import "encoding/binary"

const (
	// kernelStrip is the bytes processed per register-resident strip.
	kernelStrip = 64

	swarOnes    = 0x0101010101010101
	swarLoSeven = 0x7f7f7f7f7f7f7f7f
	swarHiBit   = 0x8080808080808080
	// swarRed is the low byte of Poly, folded into lanes whose high bit
	// overflowed during doubling.
	swarRed = Poly & 0xFF
)

// xtimes doubles each of the eight byte lanes of w in GF(2^8): the lane is
// shifted left and lanes that carried out of bit 7 are reduced by the
// primitive polynomial.
func xtimes(w uint64) uint64 {
	return ((w & swarLoSeven) << 1) ^ (((w & swarHiBit) >> 7) * swarRed)
}

// swarKernel is the portable kernelImpl. See the file comment for the
// design; the façade in kernel.go has already validated every argument by
// the time these methods run.
type swarKernel struct {
	// Table mode (setRows/combine).
	k      int    // rows captured by setRows
	size   int    // row length
	stride int    // padded row stride in flat
	groups int    // ceil(k/4)
	flat   []byte // groups*16 subset rows, each stride bytes
	sel    []int32
	cnt    [8]int32
	gw     []uint32 // per-group packed coefficient words (plan scratch)
	msel   []int32  // combineMany packed plans
	mstart []int32

	// Direct mode (combineInto) scratch: plane-major row selections.
	dsel [][]byte
	dcnt [8]int
}

func (kn *swarKernel) setRows(rows [][]byte) {
	size := len(rows[0])
	kn.k = len(rows)
	kn.size = size
	kn.groups = (kn.k + 3) / 4
	// Round the stride up to a whole number of cache lines, then force an
	// odd line count: with gcd(stride/64, 64) == 1 the table rows touched by
	// one strip spread across all L1 sets instead of thrashing a few.
	kn.stride = (size + 63) &^ 63
	if (kn.stride/64)%2 == 0 {
		kn.stride += 64
	}
	need := kn.groups * 16 * kn.stride
	if cap(kn.flat) < need {
		kn.flat = make([]byte, need)
	}
	kn.flat = kn.flat[:need]
	if cap(kn.sel) < 8*kn.groups {
		kn.sel = make([]int32, 8*kn.groups)
	}
	for g := 0; g < kn.groups; g++ {
		// Singletons: subset {b} is row 4g+b itself (zeroed when the last
		// group is short, so composite entries stay well defined).
		for b := 0; b < 4; b++ {
			d := kn.row(g, 1<<b)
			if i := g*4 + b; i < kn.k {
				copy(d, rows[i])
			} else {
				clear(d)
			}
		}
		// Composites: peel the lowest set bit, one XOR pass each.
		for m := 3; m < 16; m++ {
			if m&(m-1) == 0 {
				continue
			}
			lb := m & -m
			xorAssign2(kn.row(g, m), kn.row(g, lb), kn.row(g, m&^lb))
		}
	}
}

func (kn *swarKernel) row(g, mask int) []byte {
	off := (g*16 + mask) * kn.stride
	return kn.flat[off : off+kn.size]
}

func (kn *swarKernel) combine(dst, coeffs []byte) {
	// Plan: for each bit plane, the subset-table row of each group, indexed
	// by the plane's bit across the group's four coefficients. The 4×8 bit
	// transpose per group is a SWAR multiply-gather: lane b of
	// (w>>j)&0x01010101 carries bit j of coefficient b, and the 0x01020408
	// multiply packs the four lanes into the top byte as the 4-bit index.
	kn.planInto(coeffs)
	var start [9]int32
	for j := 0; j < 8; j++ {
		start[j+1] = start[j] + kn.cnt[j]
	}
	n := len(dst)
	i := 0
	for ; i+kernelStrip <= n; i += kernelStrip {
		kn.combineStrip(dst, kn.sel, start[:], i)
	}
	// Word tail: the padded table rows make 8-byte reads past size safe.
	for ; i < n; i += 8 {
		kn.combineWordTail(dst, kn.sel, start[:], i)
	}
}

// combineMany is combine batched strip-major: all products consume one
// 64-byte strip of the subset tables before moving to the next, so the
// strip's table lines stay in L1 across products.
func (kn *swarKernel) combineMany(dsts [][]byte, coeffs [][]byte) {
	np := len(dsts)
	// Packed plans: product p's plane-j selections live at
	// msel[mstart[p*9+j]:mstart[p*9+j+1]].
	if cap(kn.msel) < np*8*kn.groups {
		kn.msel = make([]int32, np*8*kn.groups)
	}
	if cap(kn.mstart) < np*9 {
		kn.mstart = make([]int32, np*9)
	}
	msel := kn.msel[:0]
	mstart := kn.mstart[:np*9]
	for p := 0; p < np; p++ {
		kn.planInto(coeffs[p])
		base := int32(len(msel))
		msel = append(msel, kn.sel...)
		mstart[p*9] = base
		for j := 0; j < 8; j++ {
			mstart[p*9+j+1] = mstart[p*9+j] + kn.cnt[j]
		}
	}
	n := kn.size
	i := 0
	for ; i+kernelStrip <= n; i += kernelStrip {
		for p := 0; p < np; p++ {
			kn.combineStrip(dsts[p], msel, mstart[p*9:p*9+9], i)
		}
	}
	for ; i < n; i += 8 {
		for p := 0; p < np; p++ {
			kn.combineWordTail(dsts[p], msel, mstart[p*9:p*9+9], i)
		}
	}
}

// planInto fills kn.sel/kn.cnt with the plane-major subset-table offsets
// for one coefficient vector.
func (kn *swarKernel) planInto(coeffs []byte) {
	if cap(kn.gw) < kn.groups {
		kn.gw = make([]uint32, kn.groups)
	}
	gw := kn.gw[:kn.groups]
	for g := range gw {
		base := g * 4
		var w uint32
		if base+4 <= len(coeffs) {
			w = uint32(coeffs[base]) | uint32(coeffs[base+1])<<8 |
				uint32(coeffs[base+2])<<16 | uint32(coeffs[base+3])<<24
		} else {
			for b := 0; base+b < len(coeffs); b++ {
				w |= uint32(coeffs[base+b]) << (8 * b)
			}
		}
		gw[g] = w
	}
	sel := kn.sel[:0]
	for j := 0; j < 8; j++ {
		n := 0
		for g, w := range gw {
			idx := int((((w >> uint(j)) & 0x01010101) * 0x01020408) >> 24 & 0xF)
			if idx != 0 {
				sel = append(sel, int32((g*16+idx)*kn.stride))
				n++
			}
		}
		kn.cnt[j] = int32(n)
	}
	kn.sel = sel
}

// combineStrip runs the inline-Horner bit-plane accumulation for one
// 64-byte strip at offset i, selecting table rows via sel/start.
func (kn *swarKernel) combineStrip(dst []byte, sel []int32, start []int32, i int) {
	flat := kn.flat
	var a0, a1, a2, a3, a4, a5, a6, a7 uint64
	for j := 7; j >= 0; j-- {
		if j != 7 {
			a0 = xtimes(a0)
			a1 = xtimes(a1)
			a2 = xtimes(a2)
			a3 = xtimes(a3)
			a4 = xtimes(a4)
			a5 = xtimes(a5)
			a6 = xtimes(a6)
			a7 = xtimes(a7)
		}
		row := sel[start[j]:start[j+1]]
		// Two selections per iteration: the independent load streams
		// overlap and the loop overhead halves.
		for ; len(row) >= 2; row = row[2:] {
			off := int(row[0]) + i
			s := flat[off : off+kernelStrip : off+kernelStrip]
			off2 := int(row[1]) + i
			t := flat[off2 : off2+kernelStrip : off2+kernelStrip]
			a0 ^= binary.LittleEndian.Uint64(s[0:]) ^ binary.LittleEndian.Uint64(t[0:])
			a1 ^= binary.LittleEndian.Uint64(s[8:]) ^ binary.LittleEndian.Uint64(t[8:])
			a2 ^= binary.LittleEndian.Uint64(s[16:]) ^ binary.LittleEndian.Uint64(t[16:])
			a3 ^= binary.LittleEndian.Uint64(s[24:]) ^ binary.LittleEndian.Uint64(t[24:])
			a4 ^= binary.LittleEndian.Uint64(s[32:]) ^ binary.LittleEndian.Uint64(t[32:])
			a5 ^= binary.LittleEndian.Uint64(s[40:]) ^ binary.LittleEndian.Uint64(t[40:])
			a6 ^= binary.LittleEndian.Uint64(s[48:]) ^ binary.LittleEndian.Uint64(t[48:])
			a7 ^= binary.LittleEndian.Uint64(s[56:]) ^ binary.LittleEndian.Uint64(t[56:])
		}
		if len(row) == 1 {
			off := int(row[0]) + i
			s := flat[off : off+kernelStrip : off+kernelStrip]
			a0 ^= binary.LittleEndian.Uint64(s[0:])
			a1 ^= binary.LittleEndian.Uint64(s[8:])
			a2 ^= binary.LittleEndian.Uint64(s[16:])
			a3 ^= binary.LittleEndian.Uint64(s[24:])
			a4 ^= binary.LittleEndian.Uint64(s[32:])
			a5 ^= binary.LittleEndian.Uint64(s[40:])
			a6 ^= binary.LittleEndian.Uint64(s[48:])
			a7 ^= binary.LittleEndian.Uint64(s[56:])
		}
	}
	d := dst[i : i+kernelStrip : i+kernelStrip]
	binary.LittleEndian.PutUint64(d[0:], a0)
	binary.LittleEndian.PutUint64(d[8:], a1)
	binary.LittleEndian.PutUint64(d[16:], a2)
	binary.LittleEndian.PutUint64(d[24:], a3)
	binary.LittleEndian.PutUint64(d[32:], a4)
	binary.LittleEndian.PutUint64(d[40:], a5)
	binary.LittleEndian.PutUint64(d[48:], a6)
	binary.LittleEndian.PutUint64(d[56:], a7)
}

// combineWordTail handles one 8-byte word at offset i (padded table rows
// make the full word read safe; the final partial word is written byte by
// byte).
func (kn *swarKernel) combineWordTail(dst []byte, sel []int32, start []int32, i int) {
	flat := kn.flat
	var a uint64
	for j := 7; j >= 0; j-- {
		if j != 7 {
			a = xtimes(a)
		}
		for _, off32 := range sel[start[j]:start[j+1]] {
			off := int(off32) + i
			a ^= binary.LittleEndian.Uint64(flat[off : off+8 : off+8])
		}
	}
	if i+8 <= len(dst) {
		binary.LittleEndian.PutUint64(dst[i:], a)
	} else {
		for b := i; b < len(dst); b++ {
			dst[b] = byte(a >> (uint(b-i) * 8))
		}
	}
}

// combineInto is the table-free direct path: plane-major over the source
// rows themselves, no precomputation.
func (kn *swarKernel) combineInto(dst []byte, srcs [][]byte, coeffs []byte) {
	if cap(kn.dsel) < 8*len(srcs) {
		kn.dsel = make([][]byte, 8*len(srcs))
	}
	dsel := kn.dsel[:0]
	for j := 0; j < 8; j++ {
		n := 0
		for i, c := range coeffs {
			if c>>uint(j)&1 != 0 {
				dsel = append(dsel, srcs[i])
				n++
			}
		}
		kn.dcnt[j] = n
	}
	var start [9]int
	for j := 0; j < 8; j++ {
		start[j+1] = start[j] + kn.dcnt[j]
	}
	n := len(dst)
	i := 0
	for ; i+kernelStrip <= n; i += kernelStrip {
		var a0, a1, a2, a3, a4, a5, a6, a7 uint64
		for j := 7; j >= 0; j-- {
			if j != 7 {
				a0 = xtimes(a0)
				a1 = xtimes(a1)
				a2 = xtimes(a2)
				a3 = xtimes(a3)
				a4 = xtimes(a4)
				a5 = xtimes(a5)
				a6 = xtimes(a6)
				a7 = xtimes(a7)
			}
			for _, src := range dsel[start[j]:start[j+1]] {
				s := src[i : i+kernelStrip : i+kernelStrip]
				a0 ^= binary.LittleEndian.Uint64(s[0:])
				a1 ^= binary.LittleEndian.Uint64(s[8:])
				a2 ^= binary.LittleEndian.Uint64(s[16:])
				a3 ^= binary.LittleEndian.Uint64(s[24:])
				a4 ^= binary.LittleEndian.Uint64(s[32:])
				a5 ^= binary.LittleEndian.Uint64(s[40:])
				a6 ^= binary.LittleEndian.Uint64(s[48:])
				a7 ^= binary.LittleEndian.Uint64(s[56:])
			}
		}
		d := dst[i : i+kernelStrip : i+kernelStrip]
		binary.LittleEndian.PutUint64(d[0:], a0)
		binary.LittleEndian.PutUint64(d[8:], a1)
		binary.LittleEndian.PutUint64(d[16:], a2)
		binary.LittleEndian.PutUint64(d[24:], a3)
		binary.LittleEndian.PutUint64(d[32:], a4)
		binary.LittleEndian.PutUint64(d[40:], a5)
		binary.LittleEndian.PutUint64(d[48:], a6)
		binary.LittleEndian.PutUint64(d[56:], a7)
	}
	// Byte tail: source rows are exactly size bytes, so fall back to table
	// lookups over the original rows.
	for ; i < n; i++ {
		var b byte
		for r, c := range coeffs {
			if c != 0 {
				b ^= mulTable[c][srcs[r][i]]
			}
		}
		dst[i] = b
	}
}

// xorAssign2 sets dst[i] = a[i]^b[i]; all three must share a length. The
// slice-advance shape keeps one bounds check per 8 bytes.
func xorAssign2(dst, a, b []byte) {
	for len(dst) >= 8 && len(a) >= 8 && len(b) >= 8 {
		binary.LittleEndian.PutUint64(dst,
			binary.LittleEndian.Uint64(a)^binary.LittleEndian.Uint64(b))
		dst, a, b = dst[8:], a[8:], b[8:]
	}
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}
