package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Add(byte(a), byte(b)), byte(a)^byte(b); got != want {
				t.Fatalf("Add(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if Mul(1, byte(a)) != byte(a) {
			t.Fatalf("1*a != a for a=%d", a)
		}
		if Mul(byte(a), 0) != 0 || Mul(0, byte(a)) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

// mulSlow is an independent bitwise (Russian peasant) multiplication used to
// validate the table-based implementation.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a&0x80 != 0
		a <<= 1
		if hi {
			a ^= byte(Poly & 0xFF)
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesBitwise(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x,0) did not panic")
		}
	}()
	Div(5, 0)
}

func TestDiv(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("(%d/%d)*%d != %d", a, b, b, a)
			}
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(255) != Exp(0) {
		t.Fatal("Exp not periodic with period 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("Exp of negative exponent not normalized")
	}
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

// Field axioms via testing/quick.

func TestQuickCommutativity(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAssociativity(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistributivity(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAdditiveInverse(t *testing.T) {
	f := func(a byte) bool { return Add(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1500)
	rng.Read(src)
	dst := make([]byte, 1500)
	for _, c := range []byte{0, 1, 2, 37, 255} {
		MulSlice(dst, src, c)
		for i := range src {
			if dst[i] != Mul(src[i], c) {
				t.Fatalf("MulSlice c=%d index %d: got %d want %d", c, i, dst[i], Mul(src[i], c))
			}
		}
	}
}

func TestMulSliceAliasing(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5, 6, 7}
	want := make([]byte, len(src))
	MulSlice(want, src, 9)
	ScaleSlice(src, 9)
	if !bytes.Equal(src, want) {
		t.Fatalf("in-place scale mismatch: got %v want %v", src, want)
	}
}

func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 777) // odd length exercises the unroll tail
	dst := make([]byte, 777)
	rng.Read(src)
	rng.Read(dst)
	orig := append([]byte(nil), dst...)
	MulAddSlice(dst, src, 77)
	for i := range dst {
		if dst[i] != Add(orig[i], Mul(src[i], 77)) {
			t.Fatalf("MulAddSlice index %d mismatch", i)
		}
	}
	// c == 0 must be a no-op.
	before := append([]byte(nil), dst...)
	MulAddSlice(dst, src, 0)
	if !bytes.Equal(dst, before) {
		t.Fatal("MulAddSlice with c=0 modified dst")
	}
	// c == 1 must be plain XOR.
	MulAddSlice(dst, src, 1)
	for i := range dst {
		if dst[i] != before[i]^src[i] {
			t.Fatalf("MulAddSlice c=1 index %d mismatch", i)
		}
	}
}

func TestAddSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	AddSlice(a, b)
	if a[0] != 5 || a[1] != 7 || a[2] != 5 {
		t.Fatalf("AddSlice result %v", a)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MulSlice":    func() { MulSlice(make([]byte, 2), make([]byte, 3), 1) },
		"MulAddSlice": func() { MulAddSlice(make([]byte, 2), make([]byte, 3), 1) },
		"AddSlice":    func() { AddSlice(make([]byte, 2), make([]byte, 3)) },
		"DotProduct":  func() { DotProduct(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDotProduct(t *testing.T) {
	a := []byte{1, 0, 3}
	b := []byte{5, 9, 1}
	want := Add(Mul(1, 5), Mul(3, 1))
	if got := DotProduct(a, b); got != want {
		t.Fatalf("DotProduct = %d, want %d", got, want)
	}
}

func TestSub(t *testing.T) {
	f := func(a, b byte) bool { return Add(Sub(a, b), b) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulAddSlice1500(b *testing.B) {
	src := make([]byte, 1500)
	dst := make([]byte, 1500)
	rand.New(rand.NewSource(3)).Read(src)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(dst, src, byte(i)|1)
	}
}

func BenchmarkMul(b *testing.B) {
	var s byte
	for i := 0; i < b.N; i++ {
		s ^= Mul(byte(i), byte(i>>8))
	}
	_ = s
}
