package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/congest"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// FlowOutcome is one flow's end of run.
type FlowOutcome struct {
	Name     string
	Protocol string
	Traffic  flow.TrafficModel
	// Result is the destination-side transfer outcome (delivery counts,
	// timing, verification, per-flow transmissions).
	Result flow.Result
	// Generated and SourceDrops report the push source's side: packets its
	// clock produced, and packets dropped at the bare local queue (always 0
	// under a congestion layer, whose CCStats hold the drops). Zero for
	// pull flows.
	Generated   int
	SourceDrops int64
	// Done is the flow's scheduling verdict: a pull transfer completed, or
	// a push source that ran its full generation schedule.
	Done bool
}

// Result is a scenario run's complete outcome. Everything in it derives
// from the deterministic simulation — no wall-clock, no map ordering — so
// Encode produces byte-identical output for identical specs, which is what
// the golden regression suite pins.
type Result struct {
	// Scenario echoes the spec name; Nodes and Seed the run's shape.
	Scenario string
	Nodes    int
	Seed     int64
	State    experiments.StateMode
	CC       congest.Policy

	// Epoch is when traffic started (after any learned-state warmup) and
	// End when the run stopped, both on the simulated clock.
	Epoch, End sim.Time
	// Convergence is when every node's LSA database first covered every
	// origin (learned runs; -1 if never, 0 for oracle runs).
	Convergence sim.Time
	// ProbeTx and FloodTx count the measurement plane's transmissions.
	ProbeTx, FloodTx int64

	Flows    []FlowOutcome
	Counters sim.Counters
	CCStats  congest.Stats
	Fairness experiments.FairnessReport

	// Telemetry is the metrics snapshot when the run was executed via
	// RunWith and a hub; nil (and omitted from the encoding, keeping every
	// pre-telemetry digest byte-identical) otherwise.
	Telemetry *telemetry.Report `json:",omitempty"`

	// Digest is the SHA-256 of the canonical encoding with this field
	// empty — one line a regression diff can compare scenarios by.
	Digest string
}

// Done reports whether every flow met its scheduling verdict.
func (r *Result) Done() bool {
	for _, f := range r.Flows {
		if !f.Done {
			return false
		}
	}
	return true
}

// ComputeDigest returns the SHA-256 hex digest of the result's canonical
// encoding, taken with the Digest field empty.
func (r *Result) ComputeDigest() (string, error) {
	stripped := *r
	stripped.Digest = ""
	body, err := json.Marshal(&stripped)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}

// seal fills the digest field.
func (r *Result) seal() error {
	d, err := r.ComputeDigest()
	if err != nil {
		return err
	}
	r.Digest = d
	return nil
}

// Encode renders the canonical result document: indented JSON, stable
// field order, digest included. Byte-identical across runs of the same
// spec — the reproducibility contract the golden suite and CI smoke rely
// on.
func (r *Result) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ValidateResult checks an encoded result document against the schema: it
// must decode strictly into Result (unknown or mistyped fields fail), carry
// the required identity fields, satisfy basic accounting invariants, and
// embed the digest of its own canonical body. cmd/scenariocheck wraps this
// for CI.
func ValidateResult(data []byte) (*Result, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Result
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("scenario result: %v", err)
	}
	if r.Scenario == "" {
		return nil, fmt.Errorf("scenario result: missing scenario name")
	}
	if r.Nodes < 2 {
		return nil, fmt.Errorf("scenario result: implausible node count %d", r.Nodes)
	}
	if len(r.Flows) == 0 {
		return nil, fmt.Errorf("scenario result: no flows")
	}
	if len(r.Fairness.Flows) != len(r.Flows) {
		return nil, fmt.Errorf("scenario result: fairness covers %d of %d flows",
			len(r.Fairness.Flows), len(r.Flows))
	}
	var byFlow int64
	for _, v := range r.Counters.TxByFlow {
		byFlow += v
	}
	if byFlow != r.Counters.Transmissions {
		return nil, fmt.Errorf("scenario result: per-flow attribution sums to %d of %d transmissions",
			byFlow, r.Counters.Transmissions)
	}
	if r.End < r.Epoch {
		return nil, fmt.Errorf("scenario result: end %v before epoch %v", r.End, r.Epoch)
	}
	want, err := r.ComputeDigest()
	if err != nil {
		return nil, err
	}
	if r.Digest != want {
		return nil, fmt.Errorf("scenario result: digest %s does not match body (want %s)", r.Digest, want)
	}
	return &r, nil
}
