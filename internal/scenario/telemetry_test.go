package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestRunWithTelemetryByteIdentity pins the observability contract at the
// scenario level: a run with a full telemetry hub must agree with the
// plain run on everything except the Telemetry block — strip that block,
// recompute the digest, and the two results are identical.
func TestRunWithTelemetryByteIdentity(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(specDir, "paper-testbed.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewHub(telemetry.Config{ChromeTrace: true})
	instr, err := RunWith(spec, hub)
	if err != nil {
		t.Fatal(err)
	}

	if instr.Telemetry == nil {
		t.Fatal("instrumented run carries no telemetry block")
	}
	if plain.Telemetry != nil {
		t.Fatal("plain run carries a telemetry block")
	}
	if instr.Telemetry.Events != hub.Events() || hub.Events() == 0 {
		t.Fatalf("report events %d, hub %d", instr.Telemetry.Events, hub.Events())
	}
	fm := instr.Telemetry.FlowMetrics(1)
	if fm.Delivery.Count == 0 || fm.Delivery.P50Ms <= 0 {
		t.Fatalf("scenario metrics missing delivery latency: %+v", fm)
	}

	// Strip the extra block and re-seal: must equal the plain result,
	// digest included.
	stripped := *instr
	stripped.Telemetry = nil
	if err := stripped.seal(); err != nil {
		t.Fatal(err)
	}
	if stripped.Digest != plain.Digest {
		t.Fatalf("digest diverged under telemetry: %s vs %s", stripped.Digest, plain.Digest)
	}
	if !reflect.DeepEqual(&stripped, plain) {
		t.Fatal("stripped instrumented result differs from plain run")
	}

	// The instrumented result must still validate against the strict
	// schema (the Telemetry block is part of it now).
	enc, err := instr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateResult(enc); err != nil {
		t.Fatalf("instrumented result fails validation: %v", err)
	}
}
