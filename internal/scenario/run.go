package scenario

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/exor"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/srcr"
	"repro/internal/telemetry"
)

// Run executes a validated spec and returns the sealed result. The
// executor compiles the spec onto the same machinery the figure drivers
// use — experiments.ControlPlane for routing state and congestion wiring,
// sim.Stack (via congest.Combine) where a scenario mixes protocols on one
// medium — then runs the schedule: flows start at their offsets, push
// sources stop at theirs, and degrade/fail_node events mutate the live
// topology (invalidating the oracle, so even perfect-knowledge runs must
// react).
func Run(spec *Spec) (*Result, error) {
	return RunWith(spec, nil)
}

// RunWith executes a spec with an optional telemetry hub installed on the
// simulator. With hub nil it is exactly Run. With a hub, typed events flow
// through it for metrics, Chrome trace capture, and stall dumps, and the
// sealed result carries the metrics Report — telemetry never perturbs the
// simulation, so everything except that extra block (and hence the digest)
// is byte-identical to the uninstrumented run.
func RunWith(spec *Spec, hub *telemetry.Hub) (*Result, error) {
	topo, err := spec.Topology.Build(spec.Seed)
	if err != nil {
		return nil, err
	}
	opts := spec.Options()
	s := sim.New(topo, opts.SimConfig())
	if hub != nil {
		s.Telem = hub
	}
	cp := experiments.NewControlPlane(topo, opts)
	n := topo.N()

	// One instance of every protocol in play on every node: any node can
	// forward any flow.
	var (
		coreNodes []*core.Node
		exorNodes []*exor.Node
		srcrNodes []*srcr.Node
	)
	needs := map[string]bool{}
	for _, f := range spec.Flows {
		needs[f.Protocol] = true
	}
	if needs["more"] {
		cfg := opts.CoreConfig()
		coreNodes = make([]*core.Node, n)
		for i := range coreNodes {
			ncfg := cfg
			ncfg.Plan = cp.WithNodeCost(graph.NodeID(i), cfg.Plan)
			coreNodes[i] = core.NewNode(ncfg, cp.Provider(graph.NodeID(i)))
		}
	}
	if needs["exor"] {
		cfg := opts.ExorConfig()
		exorNodes = make([]*exor.Node, n)
		for i := range exorNodes {
			ncfg := cfg
			ncfg.Plan = cp.WithNodeCost(graph.NodeID(i), cfg.Plan)
			exorNodes[i] = exor.NewNode(ncfg, cp.Provider(graph.NodeID(i)))
		}
	}
	if needs["srcr"] || needs[ProtoPush] {
		cfg := opts.SrcrConfig(false)
		srcrNodes = make([]*srcr.Node, n)
		for i := range srcrNodes {
			srcrNodes[i] = srcr.NewNode(cfg, cp.Provider(graph.NodeID(i)))
		}
	}
	for i := 0; i < n; i++ {
		// Priority order: timer-driven srcr/push traffic first (it only
		// offers what its clocks generated), batch protocols last (they are
		// backlogged and would starve everything behind them).
		var members []sim.Protocol
		if srcrNodes != nil {
			members = append(members, srcrNodes[i])
		}
		if exorNodes != nil {
			members = append(members, exorNodes[i])
		}
		if coreNodes != nil {
			members = append(members, coreNodes[i])
		}
		cp.Attach(s, graph.NodeID(i), congest.Combine(members...))
	}

	// Resolve auto-drawn pairs on the built (possibly pre-degraded)
	// topology, in flow order, from the scenario seed.
	nAuto := 0
	for _, f := range spec.Flows {
		if f.AutoPair {
			nAuto++
		}
	}
	autoPairs := experiments.RandomPairs(topo, nAuto, spec.Seed)
	if len(autoPairs) < nAuto {
		return nil, fmt.Errorf("scenario %s: only %d of %d auto pairs reachable on this topology",
			spec.Name, len(autoPairs), nAuto)
	}

	// Measurement-plane warmup (learned state), then the traffic epoch.
	conv := cp.Warmup(s, topo, opts)
	epoch := s.Now()
	deadline := epoch + opts.Deadline
	at := func(offsetS float64) sim.Time {
		d := secs(offsetS) + epoch - s.Now()
		if d < 0 {
			d = 0
		}
		return d
	}

	remaining := len(spec.Flows)
	type flowRun struct {
		spec *FlowSpec
		id   flow.ID
		src  graph.NodeID
		dst  graph.NodeID
		file flow.File
	}
	runs := make([]flowRun, len(spec.Flows))
	byName := make(map[string]flowRun, len(spec.Flows))
	auto := 0
	for i := range spec.Flows {
		f := &spec.Flows[i]
		fr := flowRun{spec: f, id: flow.ID(i + 1), src: graph.NodeID(f.Src), dst: graph.NodeID(f.Dst)}
		if f.AutoPair {
			fr.src, fr.dst = autoPairs[auto].Src, autoPairs[auto].Dst
			auto++
		}
		bytes := f.Traffic.Bytes
		if f.Protocol == ProtoPush {
			bytes = f.Traffic.Packets * spec.PktSize
		}
		fr.file = flow.NewFile(bytes, spec.PktSize, spec.Seed+int64(i))
		runs[i] = fr
		byName[f.Name] = fr

		// Destination-side expectation wiring (protocol-specific callback
		// placement mirrors experiments.RunDetailed).
		markDone := func(flow.Result) { remaining-- }
		var try func() error
		switch f.Protocol {
		case "more":
			coreNodes[fr.dst].ExpectFlow(fr.id, fr.file, nil)
			try = func() error { return coreNodes[fr.src].StartFlow(fr.id, fr.dst, fr.file, markDone) }
		case "exor":
			exorNodes[fr.dst].ExpectFlow(fr.id, fr.file, markDone)
			try = func() error { return exorNodes[fr.src].StartFlow(fr.id, fr.dst, fr.file, nil) }
		case "srcr":
			srcrNodes[fr.dst].ExpectFlow(fr.id, fr.file, nil)
			try = func() error { return srcrNodes[fr.src].StartFlow(fr.id, fr.dst, fr.file, markDone) }
		case ProtoPush:
			tr, err := f.traffic()
			if err != nil {
				return nil, err
			}
			srcrNodes[fr.dst].ExpectFlow(fr.id, fr.file, nil)
			// The stop must hold even when a learned-state start retry
			// succeeds after the stop time has passed (cold starts can wait
			// many seconds for a route): a successful late start is stopped
			// on the spot, so the declared schedule wins either way.
			fr2 := fr
			stopped := false
			try = func() error {
				err := srcrNodes[fr2.src].StartPushFlow(fr2.id, fr2.dst, tr, fr2.file, markDone)
				if err == nil && stopped {
					srcrNodes[fr2.src].StopPushFlow(fr2.id)
				}
				return err
			}
			if f.StopS > 0 {
				s.After(at(f.StopS), func() {
					stopped = true
					srcrNodes[fr2.src].StopPushFlow(fr2.id)
				})
			}
		}
		s.After(at(f.StartS), func() {
			cp.StartFlow(s, deadline, try, func() { remaining-- })
		})
	}

	// The event schedule (declared events plus any expanded churn block)
	// mutates the live topology. The simulator reads delivery probabilities
	// live, so the channel changes instantly; carrier-sense sets keep their
	// pre-event reach (energy detection outlives decodability). The oracle,
	// whose contract is "everyone instantly knows the truth", is invalidated
	// after every topology mutation so plans rebuild; learned state finds
	// out the hard way, through probes and LSAs. set_rate mutates traffic,
	// not topology, so it leaves the oracle alone.
	for _, e := range spec.allEvents() {
		e := e
		s.After(at(e.AtS), func() {
			switch e.Action {
			case ActionDegrade:
				topo.Degrade(e.Drop)
			case ActionFailNode:
				topo.Isolate(graph.NodeID(e.Node))
				s.FailNode(graph.NodeID(e.Node))
			case ActionRecoverNode:
				topo.Restore(graph.NodeID(e.Node))
				s.RecoverNode(graph.NodeID(e.Node))
			case ActionFailLink:
				topo.FailLink(graph.NodeID(e.A), graph.NodeID(e.B))
			case ActionRestoreLink:
				topo.RestoreLink(graph.NodeID(e.A), graph.NodeID(e.B))
			case ActionSetRate:
				fr := byName[e.Flow]
				srcrNodes[fr.src].SetPushRate(fr.id, e.RatePPS)
				return
			}
			if o := cp.Oracle(); o != nil {
				o.Invalidate()
			}
		})
	}

	s.RunWhile(deadline, cp.TransferCond(s, n, &conv, func() bool { return remaining > 0 }))

	// Drain: every flow has met its schedule, but a push source's last
	// packets may still sit in congestion-layer queues, srcr backlogs, or
	// the MACs — datagrams are delivered (or lost) on their own time, and
	// cutting the run here would bill the steady-state queue depth as loss.
	// Keep running while committed traffic exists, still bounded by the
	// deadline. Failed nodes are excluded: their frozen backlogs will never
	// drain.
	inFlight := func() bool {
		for i := 0; i < n; i++ {
			node := s.Node(graph.NodeID(i))
			if node.Failed() {
				continue
			}
			if node.TxQueueActive() {
				return true
			}
			if srcrNodes != nil && srcrNodes[i].Backlog() > 0 {
				return true
			}
		}
		return cp.QueuedData() > 0
	}
	if s.Now() < deadline && inFlight() {
		s.RunWhile(deadline, cp.TransferCond(s, n, &conv, inFlight))
	}

	// Collect per-flow outcomes.
	s.Counters.QueueHWM = cp.QueueHighWater()
	res := &Result{
		Scenario:    spec.Name,
		Nodes:       n,
		Seed:        spec.Seed,
		State:       opts.State,
		CC:          opts.CC.Policy,
		Epoch:       epoch,
		End:         s.Now(),
		Convergence: conv,
		Counters:    s.Counters,
		CCStats:     cp.CCStats(),
	}
	res.ProbeTx, res.FloodTx = cp.ControlTx()
	results := make([]flow.Result, len(runs))
	for i, fr := range runs {
		var r flow.Result
		out := FlowOutcome{Name: fr.spec.Name, Protocol: fr.spec.Protocol}
		switch fr.spec.Protocol {
		case "more":
			r = coreNodes[fr.dst].Result(fr.id)
		case "exor":
			r = exorNodes[fr.dst].Result(fr.id)
		case "srcr":
			r = srcrNodes[fr.dst].Result(fr.id)
		case ProtoPush:
			r = srcrNodes[fr.dst].Result(fr.id)
			tr, _ := fr.spec.traffic()
			out.Traffic = tr.Model
			out.Generated, out.SourceDrops, out.Done = srcrNodes[fr.src].PushStats(fr.id)
		}
		if r.End == 0 || (!r.Completed && r.End < s.Now()) {
			// An unfinished flow occupies its slot to the end of the run.
			r.End = s.Now()
		}
		r.Src, r.Dst = fr.src, fr.dst
		r.Transmissions = s.Counters.TxByFlow[uint32(fr.id)]
		if fr.spec.Protocol != ProtoPush {
			out.Done = r.Completed
		}
		out.Result = r
		results[i] = r
		res.Flows = append(res.Flows, out)
	}
	res.Fairness = experiments.BuildFairness(results, s.Counters)
	if hub != nil {
		res.Telemetry = hub.Report()
	}
	if err := res.seal(); err != nil {
		return nil, err
	}
	return res, nil
}
