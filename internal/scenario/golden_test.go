package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate scenarios/golden and canonicalize scenario specs")

const (
	specDir   = "../../scenarios"
	goldenDir = "../../scenarios/golden"
)

// specPaths lists the curated scenario corpus.
func specPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(specDir, "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario specs under %s: %v", specDir, err)
	}
	return paths
}

// TestGoldenScenarios is the scenario regression suite: every spec in
// scenarios/ runs deterministically and its canonical result must match
// the pinned golden byte for byte — counters, per-flow throughput,
// fairness, digests, everything. A future PR that changes any scenario's
// behavior regenerates with -update and the diff shows exactly which
// scenarios moved and how.
func TestGoldenScenarios(t *testing.T) {
	paths := specPaths(t)
	if len(paths) < 6 {
		t.Fatalf("golden corpus shrank to %d specs; keep at least 6", len(paths))
	}
	sawPushChoke := false
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(raw)
			if err != nil {
				t.Fatal(err)
			}
			// The corpus is kept in canonical (normalized) form so the spec
			// a reader sees is exactly the spec that runs.
			canon, err := spec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.WriteFile(path, canon, 0o644); err != nil {
					t.Fatal(err)
				}
			} else if string(canon) != string(raw) {
				t.Errorf("spec file is not canonical; run go test ./internal/scenario -update")
			}

			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Done() {
				t.Errorf("scenario did not finish its schedule: %+v", res.Flows)
			}
			enc, err := res.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ValidateResult(enc); err != nil {
				t.Errorf("result fails the schema: %v", err)
			}
			goldenPath := filepath.Join(goldenDir, name+".json")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/scenario -update): %v", err)
			}
			if string(enc) != string(want) {
				t.Errorf("result diverged from golden %s;\nif the change is intended, regenerate with -update", goldenPath)
			}
		})
		if name == "push-choke" {
			sawPushChoke = true
		}
	}
	if !sawPushChoke {
		t.Error("corpus lost the push-choke scenario that pins AQM drops firing")
	}
}

// TestGoldenPushChokeDrops asserts the acceptance property directly: the
// pinned push-traffic golden records CHOKe same-flow drops actually
// happening (the gap this PR closes).
func TestGoldenPushChokeDrops(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(goldenDir, "push-choke.json"))
	if err != nil {
		t.Skipf("golden not generated yet: %v", err)
	}
	res, err := ValidateResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.CCStats.ChokeDrops == 0 {
		t.Error("push-choke golden pins zero CHOKe drops — the AQM gap is back")
	}
	if res.CCStats.Pushed == 0 {
		t.Error("push-choke golden shows no pushed frames")
	}
}
