package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Parse decodes and validates a scenario spec. Decoding is strict — unknown
// fields are rejected, so a typo'd knob fails loudly instead of silently
// running the default — and the returned spec is normalized: defaulted
// fields are filled in, so encoding it back yields an explicit, stable
// document (Encode ∘ Parse is idempotent).
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	// A second document in the same file is a mistake, not extra input.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the spec document")
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// Encode renders the spec as indented JSON, the round-trippable canonical
// form scenario files are written in.
func (s *Spec) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
