package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestRunChurnDeterministic: the churn generator draws its schedule from the
// spec's seed, so two executions — schedule generation included — must be
// byte-identical.
func TestRunChurnDeterministic(t *testing.T) {
	doc := `{
  "name": "churn-det",
  "seed": 11,
  "deadline_s": 60,
  "topology": {"kind": "chain", "nodes": 6},
  "repair_s": 2,
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 5,
     "traffic": {"model": "file", "bytes": 16384}}
  ],
  "churn": {"node_lo": 1, "node_hi": 4, "events": 2, "down_s": 3,
            "start_s": 1, "end_s": 10}
}`
	a, b := parseRun(t, doc), parseRun(t, doc)
	encA, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	encB, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(encA) != string(encB) {
		t.Error("same seed produced different churn runs")
	}
	if !a.Done() {
		t.Errorf("chain transfer did not survive churn: %+v", a.Flows)
	}
}

// TestRunRecoverNodeCarriesTrafficAgain compares the diamond crash with and
// without a recovery: when relay 1 comes back two seconds after dying, the
// replanner must put it back on the forwarder set, so it ends the run with
// more transmissions than in the never-recovered variant.
func TestRunRecoverNodeCarriesTrafficAgain(t *testing.T) {
	base := `{
  "name": "recover",
  "seed": 4,
  "deadline_s": 240,
  "topology": {"kind": "diamond"},
  "repair_s": 2,
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 2,
     "traffic": {"model": "file", "bytes": 4194304}}
  ],
  "events": [
    {"at_s": 1, "action": "fail_node", "node": 1}%s
  ]
}`
	dead := parseRun(t, fmt.Sprintf(base, ""))
	revived := parseRun(t, fmt.Sprintf(base, `,
    {"at_s": 3, "action": "recover_node", "node": 1}`))
	if !dead.Done() || !revived.Done() {
		t.Fatalf("a diamond transfer stalled: dead=%v revived=%v", dead.Done(), revived.Done())
	}
	if revived.Counters.TxByNode[1] <= dead.Counters.TxByNode[1] {
		t.Errorf("recovered relay carried no extra traffic: %d (revived) vs %d (dead)",
			revived.Counters.TxByNode[1], dead.Counters.TxByNode[1])
	}
	if revived.End >= dead.End {
		t.Errorf("recovering the good relay did not speed the transfer: %v vs %v",
			revived.End, dead.End)
	}
}

// TestRunLinkFlapSlowsThenHeals severs a lossy chain's strongest mid-chain
// link for nine seconds. The weak skip links keep the transfer alive (no
// partition), but losing the good hop must cost time versus an unflapped
// control — which also proves fail_link/restore_link reach the simulated
// channel at all.
func TestRunLinkFlapSlowsThenHeals(t *testing.T) {
	base := `{
  "name": "flap",
  "seed": 8,
  "deadline_s": 240,
  "topology": {"kind": "chain", "nodes": 4},
  "repair_s": 2,
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 3,
     "traffic": {"model": "file", "bytes": 2097152}}
  ]%s
}`
	control := parseRun(t, fmt.Sprintf(base, ""))
	flapped := parseRun(t, fmt.Sprintf(base, `,
  "events": [
    {"at_s": 1, "action": "fail_link", "a": 1, "b": 2},
    {"at_s": 10, "action": "restore_link", "a": 1, "b": 2}
  ]`))
	if !control.Done() || !flapped.Done() {
		t.Fatalf("a chain transfer stalled: control=%v flapped=%v", control.Done(), flapped.Done())
	}
	if flapped.End <= control.End {
		t.Errorf("link flap cost no time: flapped ended at %v, control at %v",
			flapped.End, control.End)
	}
}

// TestRunSetRateTakesEffect doubles a push source's rate mid-run and checks
// the run finishes sooner than the constant-rate control.
func TestRunSetRateTakesEffect(t *testing.T) {
	base := `{
  "name": "rate",
  "seed": 9,
  "deadline_s": 120,
  "topology": {"kind": "chain", "nodes": 3},
  "flows": [
    {"name": "stream", "protocol": "push", "src": 0, "dst": 2,
     "traffic": {"model": "cbr", "rate_pps": 10, "packets": 300}}
  ]%s
}`
	slow := parseRun(t, fmt.Sprintf(base, ""))
	fast := parseRun(t, fmt.Sprintf(base, `,
  "events": [{"at_s": 5, "action": "set_rate", "flow": "stream", "rate_pps": 100}]`))
	if !slow.Done() || !fast.Done() {
		t.Fatalf("a push schedule did not finish: slow=%v fast=%v", slow.Done(), fast.Done())
	}
	if fast.End >= slow.End {
		t.Errorf("set_rate had no effect: fast run ended at %v, control at %v", fast.End, slow.End)
	}
}

// TestRunRepairBeatsNoRepair is the counterfactual behind the
// node-failure-reroute-learned golden: the same learned-state diamond crash
// with liveness, aging, and the repair watchdog all off. MORE's broadcasts
// still reach the destination over the poor direct link, so the transfer
// limps to completion — but the repaired run, which purges the dead relay
// and replans its credits, must finish measurably sooner (21 s vs 36 s
// after the traffic epoch at the time of writing).
func TestRunRepairBeatsNoRepair(t *testing.T) {
	base := `{
  "name": "stall",
  "seed": 1,
  "deadline_s": 600,
  "topology": {"kind": "diamond"},
  "state": {"mode": "learned", "warmup_s": 30%s},
  %s"flows": [
    {"name": "bulk", "protocol": "more", "dst": 2,
     "traffic": {"model": "file", "bytes": 4194304}}
  ],
  "events": [
    {"at_s": 1, "action": "fail_node", "node": 1}
  ]
}`
	bare := parseRun(t, fmt.Sprintf(base, "", ""))
	repaired := parseRun(t, fmt.Sprintf(base,
		`, "dead_interval_s": 5, "max_age_s": 30`, "\"repair_s\": 5,\n  "))
	if !bare.Done() || !repaired.Done() {
		t.Fatalf("a diamond transfer stalled: bare=%v repaired=%v", bare.Done(), repaired.Done())
	}
	bareT, repairedT := bare.End-bare.Epoch, repaired.End-repaired.Epoch
	if repairedT >= bareT {
		t.Errorf("repair machinery did not speed the crash recovery: %v (repaired) vs %v (bare)",
			repairedT, bareT)
	}
}

// TestRunSoakMemoryBounded runs the full soak-churn scenario and checks the
// live heap afterward stays bounded — eight crash/recover cycles plus LSA
// aging must not leak database entries, timers, or per-batch state.
func TestRunSoakMemoryBounded(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(specDir, "soak-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatalf("soak run incomplete: %+v", r.Flows)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// The run itself needs a few tens of MB transiently; 256 MiB of live
	// heap after GC means something held on to per-event state.
	if ms.HeapAlloc > 256<<20 {
		t.Errorf("heap after soak run: %d MiB (leak?)", ms.HeapAlloc>>20)
	}
	runtime.KeepAlive(r)
}
