// Package scenario is the declarative scenario engine: one JSON file
// describes a complete experiment — topology and seed, per-flow traffic
// models (pull file transfers and push CBR/on-off sources), protocol,
// routing-state and congestion-control knobs, and a time-phased schedule of
// link-degradation and node-failure events — and the executor compiles it
// onto the existing experiments.ControlPlane / sim.Stack machinery. What
// used to live in moresim flag combinations and ad-hoc Go drivers becomes a
// versionable corpus (see the repository's scenarios/ directory) whose
// results are byte-identical across runs and pinned by the golden
// regression suite, so every future change diffs its behavior per scenario.
//
// The mixed-workload scenarios are the point: CHOKe-style AQM (Pan,
// Prabhakar & Psounis, INFOCOM'00) is motivated by unresponsive flows
// pressing on responsive ones, and a pull-only repertoire can never apply
// that pressure — the bounded queues backpressure through the MAC instead
// of overflowing. Push sources close the gap, and the schedule closes a
// second one: convergence behavior under mid-run topology change, which
// static flag-driven runs cannot express.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/congest"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/linkstate"
	"repro/internal/sim"
)

// Spec is a complete declarative scenario.
type Spec struct {
	// Name identifies the scenario (golden results are filed under it).
	Name string `json:"name"`
	// Description says what the scenario exercises.
	Description string `json:"description,omitempty"`
	// Seed drives the simulator, workload contents, and auto-drawn pairs.
	Seed int64 `json:"seed"`
	// DeadlineS bounds simulated traffic time (seconds, measured from the
	// end of any learned-state warmup).
	DeadlineS float64 `json:"deadline_s"`
	// Topology describes the mesh the scenario runs over.
	Topology TopologySpec `json:"topology"`
	// State selects the routing control plane (default oracle).
	State StateSpec `json:"state,omitempty"`
	// CC selects the congestion-control layer (default none).
	CC CCSpec `json:"cc,omitempty"`
	// Batch is K for MORE/ExOR (default 32).
	Batch int `json:"batch,omitempty"`
	// PktSize is the packet payload size in bytes (default 1500).
	PktSize int `json:"pkt_size,omitempty"`
	// RepairS arms the protocols' route-repair watchdogs: a source stalled
	// this long (seconds) replans from current routing state instead of
	// spinning on a dead route. 0 (the default) disables repair.
	RepairS float64 `json:"repair_s,omitempty"`
	// Flows is the traffic matrix; at least one flow is required.
	Flows []FlowSpec `json:"flows"`
	// Events is the scenario schedule: topology mutations at fixed times.
	Events []EventSpec `json:"events,omitempty"`
	// Churn generates a deterministic crash/recover schedule on top of
	// Events — the declarative form of "N random fail/recover cycles".
	Churn *ChurnSpec `json:"churn,omitempty"`
}

// TopologySpec selects and parameterizes a topology generator.
type TopologySpec struct {
	// Kind is one of testbed, chain, diamond, corridor, grid, geometric.
	Kind string `json:"kind"`
	// Nodes is the node count for chain/corridor/geometric.
	Nodes int `json:"nodes,omitempty"`
	// Degree is the target mean neighbor degree for geometric (default 10).
	Degree float64 `json:"degree,omitempty"`
	// Floors is the building floor count for geometric (default 1).
	Floors int `json:"floors,omitempty"`
	// Drop layers a uniform extra drop rate over every link at build time.
	Drop float64 `json:"drop,omitempty"`
	// Seed overrides the spec seed for topology generation when nonzero.
	Seed int64 `json:"seed,omitempty"`
}

// StateSpec configures the routing-state provider.
type StateSpec struct {
	// Mode is oracle (default) or learned.
	Mode string `json:"mode,omitempty"`
	// WarmupS runs the measurement plane this long before flows start
	// (learned only; 0 means the 30 s default, negative starts flows cold).
	WarmupS float64 `json:"warmup_s,omitempty"`
	// Window is the probe window (probes per estimate; learned only).
	Window int `json:"window,omitempty"`
	// AdvertiseS is the LSA advertise interval in seconds (learned only).
	AdvertiseS float64 `json:"advertise_s,omitempty"`
	// Damp is the triggered-update delta (0 disables damping).
	Damp float64 `json:"damp,omitempty"`
	// DeadIntervalS declares a neighbor dead after this much probe silence
	// (seconds; learned only, 0 keeps the purely window-based estimator).
	DeadIntervalS float64 `json:"dead_interval_s,omitempty"`
	// MaxAgeS expires LSAs not refreshed within this long (seconds; learned
	// only, 0 keeps databases immortal).
	MaxAgeS float64 `json:"max_age_s,omitempty"`
	// ScopeRings enables fisheye-scoped flooding: ascending hop radii.
	// Near rings get every update; the network-wide refresh drops to the
	// summary cadence (learned only; empty floods everything everywhere).
	ScopeRings []int `json:"scope_rings,omitempty"`
	// SummaryIntervalS is the network-wide summary flood period with
	// scope_rings, seconds (0: 8x the advertise interval).
	SummaryIntervalS float64 `json:"summary_interval_s,omitempty"`
	// Piggyback rides pending LSAs on outgoing broadcast data frames
	// instead of dedicated floods (learned only).
	Piggyback bool `json:"piggyback,omitempty"`
}

// CCSpec configures the congestion layer.
type CCSpec struct {
	// Policy is none (default), tail, choke, credit, aimd, or cubic.
	Policy string `json:"policy,omitempty"`
	// Queue overrides the transmit-queue bound (0: policy default).
	Queue int `json:"queue,omitempty"`
	// CreditMinK overrides the credit/cubic policies' batch-rank floor
	// (0: default 16; negative disables the floor).
	CreditMinK int `json:"credit_min_k,omitempty"`
	// LoadPenalty arms the load-aware cost plane: the ETX penalty of
	// routing through a fully saturated forwarder (0 disables; see
	// experiments.Options.LoadPenalty). Implies load_export.
	LoadPenalty float64 `json:"load_penalty,omitempty"`
	// LoadExport exports the layer's load signals without pricing them:
	// queue high-water marks appear in the result counters and learned
	// runs carry load bytes on LSAs, but routing stays loss-only.
	LoadExport bool `json:"load_export,omitempty"`
}

// FlowSpec describes one flow.
type FlowSpec struct {
	// Name identifies the flow in results.
	Name string `json:"name"`
	// Protocol carries the flow: more, exor, or srcr for pull file
	// transfers; push for UDP-like datagrams over Srcr forwarding.
	Protocol string `json:"protocol"`
	// Src and Dst are node IDs. With AutoPair they must be omitted; the
	// executor draws a reachable pair from the seeded RNG instead.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// AutoPair draws src/dst as the next seeded reachable random pair.
	AutoPair bool `json:"auto_pair,omitempty"`
	// StartS is when the flow starts, seconds after the traffic epoch.
	StartS float64 `json:"start_s,omitempty"`
	// StopS, for push flows only, halts generation early (0: run until the
	// packet budget is spent).
	StopS float64 `json:"stop_s,omitempty"`
	// Traffic is the flow's workload model.
	Traffic TrafficSpec `json:"traffic"`
}

// TrafficSpec describes a flow's workload.
type TrafficSpec struct {
	// Model is file (pull transfer), cbr, or onoff (push).
	Model string `json:"model"`
	// Bytes is the file size for the file model.
	Bytes int `json:"bytes,omitempty"`
	// RatePPS is the push generation rate in packets per second.
	RatePPS float64 `json:"rate_pps,omitempty"`
	// Packets is the push packet budget.
	Packets int `json:"packets,omitempty"`
	// OnS and OffS are the onoff burst/silence durations in seconds.
	OnS  float64 `json:"on_s,omitempty"`
	OffS float64 `json:"off_s,omitempty"`
}

// EventSpec is one scheduled topology mutation (or, for set_rate, a
// traffic mutation).
type EventSpec struct {
	// AtS is the event time, seconds after the traffic epoch.
	AtS float64 `json:"at_s"`
	// Action is degrade, fail_node, recover_node, fail_link, restore_link,
	// or set_rate.
	Action string `json:"action"`
	// Drop is the uniform extra drop rate a degrade event layers on.
	Drop float64 `json:"drop,omitempty"`
	// Node is the node a fail_node event kills or a recover_node event
	// revives.
	Node int `json:"node,omitempty"`
	// A and B are the endpoints a fail_link/restore_link event flaps.
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// Flow names the push cbr flow a set_rate event retargets.
	Flow string `json:"flow,omitempty"`
	// RatePPS is the new generation rate a set_rate event installs.
	RatePPS float64 `json:"rate_pps,omitempty"`
}

// ChurnSpec generates a deterministic crash/recover schedule over a node
// range: Events cycles, each failing a distinct node for DownS seconds at a
// time drawn uniformly from [StartS, EndS). Distinct nodes keep cycles
// non-overlapping by construction; nodes that source or sink a flow are
// excluded from the draw (so churn cannot silently kill a workload), which
// is also why churn and auto_pair flows are mutually exclusive — the draw
// must know every endpoint at validation time.
type ChurnSpec struct {
	// NodeLo and NodeHi bound the candidate node range (inclusive).
	NodeLo int `json:"node_lo"`
	NodeHi int `json:"node_hi"`
	// Events is the number of crash/recover cycles to generate.
	Events int `json:"events"`
	// DownS is how long each churned node stays down (seconds).
	DownS float64 `json:"down_s"`
	// StartS and EndS bound the window crash times are drawn from; every
	// recovery (crash + DownS) must land before the deadline.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Seed drives the draw (0: the spec seed).
	Seed int64 `json:"seed,omitempty"`
}

// Known spec vocabulary.
const (
	ActionDegrade     = "degrade"
	ActionFailNode    = "fail_node"
	ActionRecoverNode = "recover_node"
	ActionFailLink    = "fail_link"
	ActionRestoreLink = "restore_link"
	ActionSetRate     = "set_rate"
	ProtoPush         = "push"
)

// normalize fills defaulted fields in place so an encoded spec is explicit
// about what it runs.
func (s *Spec) normalize() {
	if s.Batch == 0 {
		s.Batch = 32
	}
	if s.PktSize == 0 {
		s.PktSize = 1500
	}
	if s.Topology.Kind == "geometric" {
		if s.Topology.Degree == 0 {
			s.Topology.Degree = 10
		}
		if s.Topology.Floors == 0 {
			s.Topology.Floors = 1
		}
	}
	if s.State.Mode == "" {
		s.State.Mode = "oracle"
	}
	if s.CC.Policy == "" {
		s.CC.Policy = "none"
	}
}

// NodeCount returns the node count the topology will have, or -1 when the
// kind is unknown.
func (t TopologySpec) NodeCount() int {
	switch t.Kind {
	case "testbed":
		return 20
	case "chain", "corridor", "geometric":
		return t.Nodes
	case "diamond":
		return 3 // src, relay, dst (with the lossy direct link)
	case "grid":
		return 20 // the fixed 4x5 grid moresim exposes
	}
	return -1
}

// sized reports whether the kind takes a node count (vs a fixed size).
func (t TopologySpec) sized() bool {
	switch t.Kind {
	case "chain", "corridor", "geometric":
		return true
	}
	return false
}

// Build constructs the topology (applying build-time degradation).
// defaultSeed is used when the topology declares no seed of its own.
func (t TopologySpec) Build(defaultSeed int64) (*graph.Topology, error) {
	seed := t.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	var topo *graph.Topology
	switch t.Kind {
	case "testbed":
		topo = experiments.TestbedTopology()
	case "chain":
		topo = graph.LossyChain(t.Nodes, 15, 30)
	case "diamond":
		topo = graph.Diamond()
	case "corridor":
		topo = graph.Corridor(t.Nodes, float64(t.Nodes)*26, 15, 28, seed)
	case "grid":
		topo = graph.Grid(4, 5, 14, 30)
	case "geometric":
		gcfg := graph.DefaultGeometric(t.Nodes)
		gcfg.TargetDegree = t.Degree
		gcfg.Floors = t.Floors
		topo, _ = graph.ConnectedGeometric(gcfg, seed)
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
	if t.Drop > 0 {
		topo.Degrade(t.Drop)
	}
	return topo, nil
}

// Validate checks the spec is well formed and rejects the degenerate
// configurations the executor cannot run sensibly. Error messages name the
// offending flow or event.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.DeadlineS <= 0 {
		return fmt.Errorf("scenario %s: deadline_s must be > 0 (got %v)", s.Name, s.DeadlineS)
	}
	n := s.Topology.NodeCount()
	if n < 0 {
		return fmt.Errorf("scenario %s: unknown topology kind %q (want testbed, chain, diamond, corridor, grid, or geometric)",
			s.Name, s.Topology.Kind)
	}
	if s.Topology.sized() {
		if n < 2 {
			return fmt.Errorf("scenario %s: topology %s needs nodes >= 2 (got %d)", s.Name, s.Topology.Kind, n)
		}
	} else if s.Topology.Nodes != 0 {
		// Silently running the fixed size would betray a spec author who
		// believes they scaled the scenario.
		return fmt.Errorf("scenario %s: topology %s has a fixed size of %d nodes; nodes does not apply",
			s.Name, s.Topology.Kind, n)
	}
	if s.Topology.Kind != "geometric" && (s.Topology.Degree != 0 || s.Topology.Floors != 0) {
		return fmt.Errorf("scenario %s: degree/floors apply to geometric topologies only", s.Name)
	}
	if s.Topology.Drop < 0 || s.Topology.Drop >= 1 {
		return fmt.Errorf("scenario %s: topology drop %v outside [0,1)", s.Name, s.Topology.Drop)
	}
	switch s.State.Mode {
	case "oracle", "learned":
	default:
		return fmt.Errorf("scenario %s: unknown state mode %q (want oracle or learned)", s.Name, s.State.Mode)
	}
	if s.State.Window < 0 || s.State.AdvertiseS < 0 || s.State.Damp < 0 ||
		s.State.DeadIntervalS < 0 || s.State.MaxAgeS < 0 || s.State.SummaryIntervalS < 0 {
		return fmt.Errorf("scenario %s: state knobs must be non-negative", s.Name)
	}
	for i, r := range s.State.ScopeRings {
		if r < 1 || r > 255 || (i > 0 && r <= s.State.ScopeRings[i-1]) {
			return fmt.Errorf("scenario %s: scope_rings must be ascending hop radii in 1..255 (got %v)",
				s.Name, s.State.ScopeRings)
		}
	}
	if s.RepairS < 0 {
		return fmt.Errorf("scenario %s: repair_s must be >= 0 (got %v)", s.Name, s.RepairS)
	}
	if _, err := congest.ParsePolicy(s.CC.Policy); err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if s.CC.Queue < 0 {
		return fmt.Errorf("scenario %s: cc queue must be >= 0 (got %d)", s.Name, s.CC.Queue)
	}
	if s.CC.LoadPenalty < 0 {
		return fmt.Errorf("scenario %s: cc load_penalty must be >= 0 (got %v)", s.Name, s.CC.LoadPenalty)
	}
	if s.Batch < 2 {
		return fmt.Errorf("scenario %s: batch must be >= 2 (got %d)", s.Name, s.Batch)
	}
	if s.PktSize < 64 {
		return fmt.Errorf("scenario %s: pkt_size must be >= 64 (got %d)", s.Name, s.PktSize)
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("scenario %s: no flows", s.Name)
	}
	names := map[string]bool{}
	for i := range s.Flows {
		if err := s.validateFlow(&s.Flows[i], n, names); err != nil {
			return err
		}
	}
	if err := s.validateChurn(n); err != nil {
		return err
	}
	return s.validateEvents(n)
}

// validateChurn checks the churn block's parameters; the expanded schedule
// itself is re-checked by validateEvents, which sees declared and generated
// events merged in firing order.
func (s *Spec) validateChurn(n int) error {
	c := s.Churn
	if c == nil {
		return nil
	}
	if c.NodeLo < 0 || c.NodeHi >= n || c.NodeLo > c.NodeHi {
		return fmt.Errorf("scenario %s: churn node range [%d, %d] outside topology of %d nodes",
			s.Name, c.NodeLo, c.NodeHi, n)
	}
	if c.Events < 1 {
		return fmt.Errorf("scenario %s: churn needs events >= 1 (got %d)", s.Name, c.Events)
	}
	if c.DownS <= 0 {
		return fmt.Errorf("scenario %s: churn needs down_s > 0 (got %v)", s.Name, c.DownS)
	}
	if c.StartS < 0 || c.EndS <= c.StartS {
		return fmt.Errorf("scenario %s: churn window [%v, %v) is empty or negative", s.Name, c.StartS, c.EndS)
	}
	if c.EndS+c.DownS >= s.DeadlineS {
		return fmt.Errorf("scenario %s: churn recoveries (end_s %v + down_s %v) must land before the deadline %v",
			s.Name, c.EndS, c.DownS, s.DeadlineS)
	}
	used := map[int]bool{}
	for _, f := range s.Flows {
		if f.AutoPair {
			return fmt.Errorf("scenario %s: churn and auto_pair flows are mutually exclusive (the churn draw must know every flow endpoint)", s.Name)
		}
		used[f.Src] = true
		used[f.Dst] = true
	}
	candidates := 0
	for id := c.NodeLo; id <= c.NodeHi; id++ {
		if !used[id] {
			candidates++
		}
	}
	if c.Events > candidates {
		return fmt.Errorf("scenario %s: churn wants %d events but only %d candidate nodes are free of flow endpoints",
			s.Name, c.Events, candidates)
	}
	return nil
}

// churnEvents deterministically expands the churn block into fail/recover
// event pairs. Each cycle hits a distinct node, so cycles never overlap and
// the fail->recover alternation holds by construction.
func (s *Spec) churnEvents() []EventSpec {
	c := s.Churn
	if c == nil {
		return nil
	}
	seed := c.Seed
	if seed == 0 {
		seed = s.Seed
	}
	rng := rand.New(rand.NewSource(seed))
	used := map[int]bool{}
	for _, f := range s.Flows {
		used[f.Src] = true
		used[f.Dst] = true
	}
	var candidates []int
	for id := c.NodeLo; id <= c.NodeHi; id++ {
		if !used[id] {
			candidates = append(candidates, id)
		}
	}
	perm := rng.Perm(len(candidates))
	evs := make([]EventSpec, 0, 2*c.Events)
	for i := 0; i < c.Events && i < len(candidates); i++ {
		node := candidates[perm[i]]
		at := c.StartS + rng.Float64()*(c.EndS-c.StartS)
		evs = append(evs,
			EventSpec{AtS: at, Action: ActionFailNode, Node: node},
			EventSpec{AtS: at + c.DownS, Action: ActionRecoverNode, Node: node})
	}
	return evs
}

func (s *Spec) validateFlow(f *FlowSpec, n int, names map[string]bool) error {
	where := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario %s: flow %q: %s", s.Name, f.Name, fmt.Sprintf(format, args...))
	}
	if f.Name == "" {
		return fmt.Errorf("scenario %s: flow with no name", s.Name)
	}
	if names[f.Name] {
		return where("duplicate flow name")
	}
	names[f.Name] = true
	switch f.Protocol {
	case "more", "exor", "srcr", ProtoPush:
	default:
		return where("unknown protocol %q (want more, exor, srcr, or push)", f.Protocol)
	}
	if f.AutoPair {
		if f.Src != 0 || f.Dst != 0 {
			return where("auto_pair and explicit src/dst are mutually exclusive")
		}
	} else {
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return where("src/dst %d->%d outside topology of %d nodes", f.Src, f.Dst, n)
		}
		if f.Src == f.Dst {
			return where("src == dst (%d)", f.Src)
		}
	}
	if f.StartS < 0 {
		return where("start_s must be >= 0 (got %v)", f.StartS)
	}
	if f.StartS >= s.DeadlineS {
		return where("start_s %v at or past the deadline %v", f.StartS, s.DeadlineS)
	}
	isPush := f.Protocol == ProtoPush
	switch f.Traffic.Model {
	case "file":
		if isPush {
			return where("push flows need a cbr or onoff traffic model, not file")
		}
		if f.Traffic.Bytes <= 0 {
			return where("file traffic needs bytes > 0 (got %d)", f.Traffic.Bytes)
		}
		if f.Traffic.RatePPS != 0 || f.Traffic.Packets != 0 || f.Traffic.OnS != 0 || f.Traffic.OffS != 0 {
			return where("file traffic takes only bytes")
		}
	case "cbr", "onoff":
		if !isPush {
			return where("%s traffic needs protocol push, not %s", f.Traffic.Model, f.Protocol)
		}
		if tr, err := f.traffic(); err != nil {
			return where("%v", err)
		} else if tr.Validate() != nil {
			return where("%v", tr.Validate())
		}
		if f.Traffic.Bytes != 0 {
			return where("push traffic sizes packets with pkt_size, not bytes")
		}
		if f.Traffic.Model == "cbr" && (f.Traffic.OnS != 0 || f.Traffic.OffS != 0) {
			return where("cbr traffic takes no on_s/off_s (did you mean model onoff?)")
		}
	default:
		return where("unknown traffic model %q (want file, cbr, or onoff)", f.Traffic.Model)
	}
	if f.StopS != 0 {
		if !isPush {
			return where("stop_s applies to push flows only")
		}
		if f.StopS <= f.StartS {
			return where("stop_s %v does not follow start_s %v (overlapping schedule)", f.StopS, f.StartS)
		}
		if f.StopS > s.DeadlineS {
			return where("stop_s %v past the deadline %v", f.StopS, s.DeadlineS)
		}
	}
	return nil
}

// validateEvents walks the full schedule — declared events plus the
// expanded churn block — in firing order, so fail/recover and
// fail/restore alternation is checked against the state each event
// actually finds, not the order events were written in.
func (s *Spec) validateEvents(n int) error {
	pushCBR := map[string]bool{}
	for _, f := range s.Flows {
		if f.Protocol == ProtoPush && f.Traffic.Model == "cbr" {
			pushCBR[f.Name] = true
		}
	}
	failed := map[int]bool{}
	linkDown := map[[2]int]bool{}
	type evKey struct {
		at     float64
		action string
		node   int
		a, b   int
		flow   string
	}
	seen := map[evKey]bool{}
	for i, e := range s.allEvents() {
		where := func(format string, args ...interface{}) error {
			return fmt.Errorf("scenario %s: event %d (%s at %vs): %s", s.Name, i, e.Action, e.AtS, fmt.Sprintf(format, args...))
		}
		if e.AtS < 0 || e.AtS >= s.DeadlineS {
			return where("at_s outside [0, deadline)")
		}
		nodeOnly := func(verb string) error {
			if e.Node < 0 || e.Node >= n {
				return where("node %d outside topology of %d nodes", e.Node, n)
			}
			if e.Drop != 0 || e.A != 0 || e.B != 0 || e.Flow != "" || e.RatePPS != 0 {
				return where("%s takes only a node", verb)
			}
			return nil
		}
		linkOnly := func(verb string) error {
			if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
				return where("link %d-%d outside topology of %d nodes", e.A, e.B, n)
			}
			if e.A == e.B {
				return where("link endpoints must differ (got %d)", e.A)
			}
			if e.Drop != 0 || e.Node != 0 || e.Flow != "" || e.RatePPS != 0 {
				return where("%s takes only link endpoints a and b", verb)
			}
			return nil
		}
		linkKey := func() [2]int {
			if e.A < e.B {
				return [2]int{e.A, e.B}
			}
			return [2]int{e.B, e.A}
		}
		switch e.Action {
		case ActionDegrade:
			if e.Drop <= 0 || e.Drop >= 1 {
				return where("degrade needs drop in (0,1), got %v", e.Drop)
			}
			if e.Node != 0 || e.A != 0 || e.B != 0 || e.Flow != "" || e.RatePPS != 0 {
				return where("degrade takes only drop")
			}
		case ActionFailNode:
			if err := nodeOnly("fail_node"); err != nil {
				return err
			}
			if failed[e.Node] {
				return where("node %d already failed by an earlier event (overlapping schedule)", e.Node)
			}
			failed[e.Node] = true
		case ActionRecoverNode:
			if err := nodeOnly("recover_node"); err != nil {
				return err
			}
			if !failed[e.Node] {
				return where("node %d is not down at %vs (recover must follow a fail)", e.Node, e.AtS)
			}
			delete(failed, e.Node)
		case ActionFailLink:
			if err := linkOnly("fail_link"); err != nil {
				return err
			}
			if linkDown[linkKey()] {
				return where("link %d-%d already failed by an earlier event (overlapping schedule)", e.A, e.B)
			}
			linkDown[linkKey()] = true
		case ActionRestoreLink:
			if err := linkOnly("restore_link"); err != nil {
				return err
			}
			if !linkDown[linkKey()] {
				return where("link %d-%d is not down at %vs (restore must follow a fail)", e.A, e.B, e.AtS)
			}
			delete(linkDown, linkKey())
		case ActionSetRate:
			if !pushCBR[e.Flow] {
				return where("set_rate targets flow %q, which is not a push cbr flow", e.Flow)
			}
			if e.RatePPS <= 0 {
				return where("set_rate needs rate_pps > 0, got %v", e.RatePPS)
			}
			if e.Drop != 0 || e.Node != 0 || e.A != 0 || e.B != 0 {
				return where("set_rate takes only flow and rate_pps")
			}
		default:
			return where("unknown action (want %s, %s, %s, %s, %s, or %s)",
				ActionDegrade, ActionFailNode, ActionRecoverNode, ActionFailLink, ActionRestoreLink, ActionSetRate)
		}
		key := evKey{e.AtS, e.Action, e.Node, e.A, e.B, e.Flow}
		if seen[key] {
			return where("duplicate event (overlapping schedule)")
		}
		seen[key] = true
	}
	return nil
}

// traffic converts the flow's traffic spec to the flow-package model.
func (f *FlowSpec) traffic() (flow.Traffic, error) {
	var model flow.TrafficModel
	switch f.Traffic.Model {
	case "cbr":
		model = flow.PushCBR
	case "onoff":
		model = flow.PushOnOff
	default:
		return flow.Traffic{}, fmt.Errorf("traffic model %q is not a push model", f.Traffic.Model)
	}
	return flow.Traffic{
		Model:   model,
		RatePPS: f.Traffic.RatePPS,
		Packets: f.Traffic.Packets,
		On:      secs(f.Traffic.OnS),
		Off:     secs(f.Traffic.OffS),
	}, nil
}

// Options compiles the spec's run-wide knobs into experiments.Options, the
// same parameter block every figure driver uses.
func (s *Spec) Options() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Seed = s.Seed
	opts.BatchSize = s.Batch
	opts.PktSize = s.PktSize
	opts.Deadline = secs(s.DeadlineS)
	if s.State.Mode == "learned" {
		opts.State = experiments.StateLearned
		lcfg := linkstate.DefaultConfig()
		if s.State.Window > 0 {
			lcfg.Probe.Window = s.State.Window
		}
		if s.State.AdvertiseS > 0 {
			lcfg.AdvertiseInterval = secs(s.State.AdvertiseS)
		}
		lcfg.TriggerDelta = s.State.Damp
		if s.State.DeadIntervalS > 0 {
			lcfg.Probe.DeadInterval = secs(s.State.DeadIntervalS)
		}
		if s.State.MaxAgeS > 0 {
			lcfg.MaxAge = secs(s.State.MaxAgeS)
		}
		lcfg.ScopeRings = s.State.ScopeRings
		lcfg.SummaryInterval = secs(s.State.SummaryIntervalS)
		lcfg.Piggyback = s.State.Piggyback
		opts.LinkState = lcfg
		switch {
		case s.State.WarmupS > 0:
			opts.Warmup = secs(s.State.WarmupS)
		case s.State.WarmupS < 0:
			opts.Warmup = -1
		}
	}
	policy, _ := congest.ParsePolicy(s.CC.Policy) // validated on load
	opts.CC = congest.DefaultConfig(policy)
	opts.CC.QueueLen = s.CC.Queue
	opts.CC.CreditMinK = s.CC.CreditMinK
	opts.CC.LoadExport = s.CC.LoadExport
	opts.LoadPenalty = s.CC.LoadPenalty
	opts.Repair = secs(s.RepairS)
	return opts
}

// secs converts float seconds to simulated time.
func secs(v float64) sim.Time { return sim.Time(v * float64(sim.Second)) }

// allEvents returns the full schedule — declared events plus the expanded
// churn block — in firing order (stable over the written order for ties, so
// equal-time declared events run in the order they were written, ahead of
// any generated ones).
func (s *Spec) allEvents() []EventSpec {
	evs := append(append([]EventSpec(nil), s.Events...), s.churnEvents()...)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].AtS < evs[b].AtS })
	return evs
}
