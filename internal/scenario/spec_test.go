package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// validSpec returns a small well-formed spec document.
func validSpec() string {
	return `{
  "name": "unit",
  "seed": 3,
  "deadline_s": 20,
  "topology": {"kind": "chain", "nodes": 4},
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 3,
     "traffic": {"model": "file", "bytes": 32768}}
  ]
}`
}

func TestParseNormalizesDefaults(t *testing.T) {
	s, err := Parse([]byte(validSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Batch != 32 || s.PktSize != 1500 {
		t.Errorf("defaults not filled: batch=%d pkt=%d", s.Batch, s.PktSize)
	}
	if s.State.Mode != "oracle" || s.CC.Policy != "none" {
		t.Errorf("mode defaults not filled: %+v %+v", s.State, s.CC)
	}
}

// TestEncodeParseRoundTrip is the loader's round-trip property: a parsed
// spec encodes to a document that parses back to the identical spec, and
// encoding is a fixed point from the first normalization on.
func TestEncodeParseRoundTrip(t *testing.T) {
	s, err := Parse([]byte(validSpec()))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(enc)
	if err != nil {
		t.Fatalf("re-parse of encoded spec failed: %v\n%s", err, enc)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("round trip changed the spec:\nbefore %+v\nafter  %+v", s, s2)
	}
	enc2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Error("Encode is not a fixed point after normalization")
	}
}

// mutate applies a JSON-level edit to the valid spec.
func mutate(t *testing.T, edit func(m map[string]interface{})) []byte {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(validSpec()), &m); err != nil {
		t.Fatal(err)
	}
	edit(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func flow0(m map[string]interface{}) map[string]interface{} {
	return m["flows"].([]interface{})[0].(map[string]interface{})
}

// TestRejectsInvalidSpecs drives the validator through every rejection
// class the satellite work names — unknown protocol, overlapping schedule
// events, zero-rate flows — plus the rest of the vocabulary, checking each
// error message names the problem.
func TestRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name    string
		edit    func(m map[string]interface{})
		wantErr string
	}{
		{"unknown protocol", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "ospf"
		}, "unknown protocol"},
		{"unknown topology", func(m map[string]interface{}) {
			m["topology"].(map[string]interface{})["kind"] = "torus"
		}, "unknown topology kind"},
		{"unknown traffic model", func(m map[string]interface{}) {
			flow0(m)["traffic"] = map[string]interface{}{"model": "poisson"}
		}, "unknown traffic model"},
		{"zero-rate push flow", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{"model": "cbr", "rate_pps": 0, "packets": 10}
		}, "rate_pps > 0"},
		{"push without packet budget", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{"model": "cbr", "rate_pps": 100}
		}, "packets > 0"},
		{"push model on pull protocol", func(m map[string]interface{}) {
			flow0(m)["traffic"] = map[string]interface{}{"model": "cbr", "rate_pps": 100, "packets": 10}
		}, "needs protocol push"},
		{"file model on push protocol", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
		}, "cbr or onoff"},
		{"onoff without durations", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{"model": "onoff", "rate_pps": 100, "packets": 10}
		}, "on_s > 0"},
		{"zero-byte file", func(m map[string]interface{}) {
			flow0(m)["traffic"] = map[string]interface{}{"model": "file", "bytes": 0}
		}, "bytes > 0"},
		{"src out of range", func(m map[string]interface{}) {
			flow0(m)["src"] = 99
		}, "outside topology"},
		{"src equals dst", func(m map[string]interface{}) {
			flow0(m)["src"] = 3
		}, "src == dst"},
		{"auto_pair with explicit endpoints", func(m map[string]interface{}) {
			flow0(m)["auto_pair"] = true
		}, "mutually exclusive"},
		{"duplicate flow names", func(m map[string]interface{}) {
			f := flow0(m)
			m["flows"] = []interface{}{f, f}
		}, "duplicate flow name"},
		{"missing deadline", func(m map[string]interface{}) {
			delete(m, "deadline_s")
		}, "deadline_s"},
		{"start past deadline", func(m map[string]interface{}) {
			flow0(m)["start_s"] = 30.0
		}, "past the deadline"},
		{"stop before start", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{"model": "cbr", "rate_pps": 50, "packets": 10}
			flow0(m)["start_s"] = 5.0
			flow0(m)["stop_s"] = 5.0
		}, "overlapping schedule"},
		{"stop on pull flow", func(m map[string]interface{}) {
			flow0(m)["stop_s"] = 5.0
		}, "push flows only"},
		{"no flows", func(m map[string]interface{}) {
			m["flows"] = []interface{}{}
		}, "no flows"},
		{"unknown state mode", func(m map[string]interface{}) {
			m["state"] = map[string]interface{}{"mode": "psychic"}
		}, "unknown state mode"},
		{"unknown cc policy", func(m map[string]interface{}) {
			m["cc"] = map[string]interface{}{"policy": "red"}
		}, "unknown policy"},
		{"unknown event action", func(m map[string]interface{}) {
			m["events"] = []interface{}{map[string]interface{}{"at_s": 1, "action": "reboot"}}
		}, "unknown action"},
		{"degrade without drop", func(m map[string]interface{}) {
			m["events"] = []interface{}{map[string]interface{}{"at_s": 1, "action": "degrade"}}
		}, "drop in (0,1)"},
		{"event past deadline", func(m map[string]interface{}) {
			m["events"] = []interface{}{map[string]interface{}{"at_s": 50, "action": "degrade", "drop": 0.1}}
		}, "outside [0, deadline)"},
		{"duplicate events", func(m map[string]interface{}) {
			e := map[string]interface{}{"at_s": 1, "action": "degrade", "drop": 0.1}
			m["events"] = []interface{}{e, e}
		}, "overlapping schedule"},
		{"repeated node failure", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_node", "node": 1},
				map[string]interface{}{"at_s": 2, "action": "fail_node", "node": 1},
			}
		}, "already failed"},
		{"fail_node out of range", func(m map[string]interface{}) {
			m["events"] = []interface{}{map[string]interface{}{"at_s": 1, "action": "fail_node", "node": 9}}
		}, "outside topology"},
		{"unknown field", func(m map[string]interface{}) {
			m["dead_line_s"] = 10
		}, "unknown field"},
		{"sized topology without nodes", func(m map[string]interface{}) {
			m["topology"] = map[string]interface{}{"kind": "chain"}
			flow0(m)["dst"] = 1
		}, "needs nodes >= 2"},
		{"nodes on a fixed-size topology", func(m map[string]interface{}) {
			m["topology"] = map[string]interface{}{"kind": "testbed", "nodes": 50}
		}, "fixed size"},
		{"geometric knobs on a chain", func(m map[string]interface{}) {
			m["topology"] = map[string]interface{}{"kind": "chain", "nodes": 4, "degree": 8}
		}, "geometric topologies only"},
		{"onoff durations on cbr", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{
				"model": "cbr", "rate_pps": 100, "packets": 10, "on_s": 5,
			}
		}, "cbr traffic takes no on_s/off_s"},
		{"recover without a fail", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "recover_node", "node": 1},
			}
		}, "recover must follow a fail"},
		{"recover of a different node", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_node", "node": 1},
				map[string]interface{}{"at_s": 2, "action": "recover_node", "node": 2},
			}
		}, "recover must follow a fail"},
		{"restore without a fail", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "restore_link", "a": 0, "b": 1},
			}
		}, "restore must follow a fail"},
		{"link self-loop", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_link", "a": 1, "b": 1},
			}
		}, "link endpoints must differ"},
		{"fail_link out of range", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_link", "a": 0, "b": 9},
			}
		}, "outside topology"},
		{"repeated link failure", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_link", "a": 0, "b": 1},
				map[string]interface{}{"at_s": 2, "action": "fail_link", "b": 0, "a": 1},
			}
		}, "already failed"},
		{"fail_node with stray link fields", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_node", "node": 1, "a": 0, "b": 1},
			}
		}, "takes only a node"},
		{"fail_link with stray node field", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "fail_link", "a": 0, "b": 1, "node": 2},
			}
		}, "takes only link endpoints"},
		{"set_rate on a pull flow", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "set_rate", "flow": "bulk", "rate_pps": 50},
			}
		}, "not a push cbr flow"},
		{"set_rate on an unknown flow", func(m map[string]interface{}) {
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "set_rate", "flow": "ghost", "rate_pps": 50},
			}
		}, "not a push cbr flow"},
		{"set_rate with zero rate", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{"model": "cbr", "rate_pps": 20, "packets": 10}
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "set_rate", "flow": "bulk", "rate_pps": 0},
			}
		}, "rate_pps > 0"},
		{"set_rate with stray node field", func(m map[string]interface{}) {
			flow0(m)["protocol"] = "push"
			flow0(m)["traffic"] = map[string]interface{}{"model": "cbr", "rate_pps": 20, "packets": 10}
			m["events"] = []interface{}{
				map[string]interface{}{"at_s": 1, "action": "set_rate", "flow": "bulk", "rate_pps": 50, "node": 1},
			}
		}, "takes only flow and rate_pps"},
		{"negative repair interval", func(m map[string]interface{}) {
			m["repair_s"] = -1.0
		}, "repair_s must be >= 0"},
		{"churn range outside topology", func(m map[string]interface{}) {
			m["churn"] = map[string]interface{}{
				"node_lo": 0, "node_hi": 9, "events": 1, "down_s": 1, "start_s": 1, "end_s": 5,
			}
		}, "outside topology"},
		{"churn without events", func(m map[string]interface{}) {
			m["churn"] = map[string]interface{}{
				"node_lo": 1, "node_hi": 2, "down_s": 1, "start_s": 1, "end_s": 5,
			}
		}, "events >= 1"},
		{"churn without outage duration", func(m map[string]interface{}) {
			m["churn"] = map[string]interface{}{
				"node_lo": 1, "node_hi": 2, "events": 1, "start_s": 1, "end_s": 5,
			}
		}, "down_s > 0"},
		{"churn with empty window", func(m map[string]interface{}) {
			m["churn"] = map[string]interface{}{
				"node_lo": 1, "node_hi": 2, "events": 1, "down_s": 1, "start_s": 5, "end_s": 5,
			}
		}, "empty or negative"},
		{"churn recoveries past deadline", func(m map[string]interface{}) {
			m["churn"] = map[string]interface{}{
				"node_lo": 1, "node_hi": 2, "events": 1, "down_s": 10, "start_s": 1, "end_s": 15,
			}
		}, "before the deadline"},
		{"churn with auto_pair flow", func(m map[string]interface{}) {
			f := flow0(m)
			delete(f, "src")
			delete(f, "dst")
			f["auto_pair"] = true
			m["churn"] = map[string]interface{}{
				"node_lo": 1, "node_hi": 2, "events": 1, "down_s": 1, "start_s": 1, "end_s": 5,
			}
		}, "mutually exclusive"},
		{"churn wants more nodes than exist", func(m map[string]interface{}) {
			// Flow endpoints 0 and 3 are excluded: only nodes 1 and 2 are
			// candidates, so three events cannot draw distinct victims.
			m["churn"] = map[string]interface{}{
				"node_lo": 0, "node_hi": 3, "events": 3, "down_s": 1, "start_s": 1, "end_s": 5,
			}
		}, "candidate nodes are free of flow endpoints"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(mutate(t, c.edit))
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// FuzzParse feeds arbitrary bytes to the loader: it must never panic, and
// anything it accepts must survive an encode/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validSpec()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","deadline_s":1e300,"topology":{"kind":"chain","nodes":2},"flows":[]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"name":"x","deadline_s":20,"topology":{"kind":"chain","nodes":4},
	  "flows":[{"name":"f","protocol":"more","src":0,"dst":3,"traffic":{"model":"file","bytes":1}}],
	  "events":[{"at_s":1,"action":"fail_node","node":1},{"at_s":2,"action":"recover_node","node":1},
	    {"at_s":3,"action":"fail_link","a":0,"b":1},{"at_s":4,"action":"restore_link","a":1,"b":0}]}`))
	f.Add([]byte(`{"name":"x","deadline_s":20,"topology":{"kind":"chain","nodes":4},
	  "flows":[{"name":"f","protocol":"push","src":0,"dst":3,"traffic":{"model":"cbr","rate_pps":10,"packets":5}}],
	  "events":[{"at_s":1,"action":"set_rate","flow":"f","rate_pps":20}]}`))
	f.Add([]byte(`{"name":"x","deadline_s":20,"topology":{"kind":"chain","nodes":6},"repair_s":2,
	  "flows":[{"name":"f","protocol":"more","src":0,"dst":5,"traffic":{"model":"file","bytes":1}}],
	  "churn":{"node_lo":1,"node_hi":4,"events":2,"down_s":1,"start_s":1,"end_s":5,"seed":9}}`))
	f.Add([]byte(`{"name":"x","deadline_s":20,"topology":{"kind":"chain","nodes":4},
	  "flows":[{"name":"f","protocol":"more","src":0,"dst":3,"traffic":{"model":"file","bytes":1}}],
	  "churn":{"node_hi":-1,"events":-3,"down_s":-1e9,"start_s":9e18,"end_s":-9e18}}`))
	f.Add([]byte(`{"name":"x","deadline_s":20,"topology":{"kind":"chain","nodes":4},
	  "flows":[{"name":"f","protocol":"more","src":0,"dst":3,"traffic":{"model":"file","bytes":1}}],
	  "events":[{"at_s":1,"action":"restore_link","a":0,"b":0},{"at_s":0,"action":"recover_node","node":99}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted spec failed to encode: %v", err)
		}
		s2, err := Parse(enc)
		if err != nil {
			t.Fatalf("accepted spec failed to re-parse: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed accepted spec:\nbefore %+v\nafter  %+v", s, s2)
		}
	})
}
