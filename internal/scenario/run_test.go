package scenario

import (
	"fmt"
	"testing"
)

func parseRun(t *testing.T, doc string) *Result {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRunDeterministic is the reproducibility contract: two executions of
// the same spec produce byte-identical canonical results.
func TestRunDeterministic(t *testing.T) {
	doc := `{
  "name": "det",
  "seed": 5,
  "deadline_s": 30,
  "topology": {"kind": "chain", "nodes": 5},
  "cc": {"policy": "choke"},
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 4,
     "traffic": {"model": "file", "bytes": 32768}},
    {"name": "blast", "protocol": "push", "src": 1, "dst": 4, "start_s": 1,
     "traffic": {"model": "cbr", "rate_pps": 300, "packets": 600}}
  ]
}`
	a, b := parseRun(t, doc), parseRun(t, doc)
	encA, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	encB, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(encA) != string(encB) {
		t.Error("identical specs produced different results")
	}
	if _, err := ValidateResult(encA); err != nil {
		t.Errorf("result fails its own schema: %v", err)
	}
}

// TestRunMixedPushPullWithChoke is the tentpole behavior end to end: a MORE
// bulk transfer and an unresponsive push flow share a chain under CHOKe.
// The push pressure must overflow the bounded queues (CHOKe drops fire) and
// both flows must finish their schedules.
func TestRunMixedPushPullWithChoke(t *testing.T) {
	r := parseRun(t, `{
  "name": "mixed",
  "seed": 2,
  "deadline_s": 60,
  "topology": {"kind": "chain", "nodes": 5},
  "cc": {"policy": "choke"},
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 4,
     "traffic": {"model": "file", "bytes": 65536}},
    {"name": "blast", "protocol": "push", "src": 1, "dst": 4,
     "traffic": {"model": "cbr", "rate_pps": 800, "packets": 4000}}
  ]
}`)
	if !r.Done() {
		t.Fatalf("flows incomplete: %+v", r.Flows)
	}
	if r.CCStats.ChokeDrops == 0 {
		t.Error("push pressure produced no CHOKe drops")
	}
	if r.CCStats.Pushed == 0 {
		t.Error("push source bypassed the congestion layer")
	}
	if r.Flows[0].Protocol != "more" || !r.Flows[0].Result.Verified {
		t.Errorf("bulk flow corrupt: %+v", r.Flows[0])
	}
	if r.Flows[1].Generated != 4000 {
		t.Errorf("push generated %d of 4000", r.Flows[1].Generated)
	}
	if r.Fairness.JainThroughput <= 0 || r.Fairness.JainThroughput > 1 {
		t.Errorf("fairness index out of range: %v", r.Fairness.JainThroughput)
	}
}

// TestRunFailNodeReroutes kills the best-path relay of a diamond mid-run:
// the oracle is invalidated, the source replans around the dead node, and
// the transfer still completes.
func TestRunFailNodeReroutes(t *testing.T) {
	// Diamond: the good path 0->1->2 vs the lossy direct link 0->2.
	// Killing relay 1 forces the transfer onto the direct link.
	r := parseRun(t, `{
  "name": "fail",
  "seed": 4,
  "deadline_s": 120,
  "topology": {"kind": "diamond"},
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 2,
     "traffic": {"model": "file", "bytes": 131072}}
  ],
  "events": [
    {"at_s": 2, "action": "fail_node", "node": 1}
  ]
}`)
	if !r.Done() {
		t.Fatalf("transfer did not survive the relay failure: %+v", r.Flows[0].Result)
	}
	if !r.Flows[0].Result.Verified {
		t.Error("delivered bytes corrupt after reroute")
	}
	if r.Counters.TxByNode[1] == 0 {
		t.Error("relay 1 never transmitted before failing (event fired too early?)")
	}
}

// TestRunDegradeEvent layers mid-run loss on a chain and checks the run
// still completes, slower than an undegraded control run.
func TestRunDegradeEvent(t *testing.T) {
	base := `{
  "name": "degrade",
  "seed": 6,
  "deadline_s": 120,
  "topology": {"kind": "chain", "nodes": 4},
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 3,
     "traffic": {"model": "file", "bytes": 131072}}
  ]%s
}`
	control := parseRun(t, sprintf(base, ""))
	degraded := parseRun(t, sprintf(base, `,
  "events": [{"at_s": 0.2, "action": "degrade", "drop": 0.4}]`))
	if !control.Done() || !degraded.Done() {
		t.Fatalf("runs incomplete: control=%v degraded=%v", control.Done(), degraded.Done())
	}
	if degraded.End <= control.End {
		t.Errorf("mid-run degradation did not slow the transfer: control %v, degraded %v",
			control.End, degraded.End)
	}
}

// TestRunLearnedState exercises the measurement plane under the scenario
// engine: warmup, convergence accounting, probe/LSA overhead.
func TestRunLearnedState(t *testing.T) {
	r := parseRun(t, `{
  "name": "learned",
  "seed": 1,
  "deadline_s": 120,
  "topology": {"kind": "chain", "nodes": 4},
  "state": {"mode": "learned", "warmup_s": 20},
  "flows": [
    {"name": "bulk", "protocol": "more", "src": 0, "dst": 3,
     "traffic": {"model": "file", "bytes": 32768}}
  ]
}`)
	if !r.Done() {
		t.Fatalf("learned-state transfer incomplete: %+v", r.Flows[0].Result)
	}
	if r.Convergence <= 0 {
		t.Errorf("measurement plane never converged: %v", r.Convergence)
	}
	if r.ProbeTx == 0 || r.FloodTx == 0 {
		t.Errorf("no measurement traffic: probes=%d floods=%d", r.ProbeTx, r.FloodTx)
	}
	if r.Epoch == 0 {
		t.Error("traffic epoch not offset by warmup")
	}
}

// TestRunAutoPairAndStop exercises auto-drawn endpoints and the scheduled
// push stop: the source must halt at the stop time, well short of its
// packet budget.
func TestRunAutoPairAndStop(t *testing.T) {
	r := parseRun(t, `{
  "name": "stop",
  "seed": 9,
  "deadline_s": 30,
  "topology": {"kind": "testbed"},
  "flows": [
    {"name": "burst", "protocol": "push", "auto_pair": true, "start_s": 1, "stop_s": 3,
     "traffic": {"model": "cbr", "rate_pps": 100, "packets": 100000}}
  ]
}`)
	if !r.Done() {
		t.Fatal("stopped push flow not marked done")
	}
	f := r.Flows[0]
	// ~2 s at 100 pps: about 200 packets, nowhere near the 100000 budget.
	if f.Generated == 0 || f.Generated > 400 {
		t.Errorf("stop_s did not bound generation: %d packets", f.Generated)
	}
	if f.Result.Src == f.Result.Dst {
		t.Errorf("auto pair degenerate: %v", f.Result)
	}
	if f.Result.Completed {
		t.Error("cut-short push flow claims a completed schedule")
	}
}

// TestRunMixedPullProtocolsUnderCC pins Sent routing through the
// mixed-protocol stack: with a congestion layer between the stack and the
// MAC, frames are queued and resolved out of pull order, so outcomes must
// be routed to the member that supplied each frame (congest.Multi's owner
// map), not to the most recent puller. A misroute strands srcr's
// inFlight flag and the srcr flow stalls forever.
func TestRunMixedPullProtocolsUnderCC(t *testing.T) {
	r := parseRun(t, `{
  "name": "mixed-pull",
  "seed": 3,
  "deadline_s": 120,
  "topology": {"kind": "chain", "nodes": 4},
  "cc": {"policy": "tail"},
  "flows": [
    {"name": "coded", "protocol": "more", "src": 0, "dst": 3,
     "traffic": {"model": "file", "bytes": 32768}},
    {"name": "plain", "protocol": "srcr", "src": 0, "dst": 3,
     "traffic": {"model": "file", "bytes": 32768}}
  ]
}`)
	for _, f := range r.Flows {
		if !f.Done || !f.Result.Verified {
			t.Errorf("flow %s under mixed stack + cc: done=%v verified=%v (%+v)",
				f.Name, f.Done, f.Result.Verified, f.Result)
		}
	}
}

// TestRunDrainsQueuedPushTraffic checks the run does not stop the instant
// the last push packet is generated: datagrams committed to queues and the
// MAC still get their airtime, so the run end lies past the final
// generation instant and deliveries on a clean link reach the full budget.
func TestRunDrainsQueuedPushTraffic(t *testing.T) {
	r := parseRun(t, `{
  "name": "drain",
  "seed": 8,
  "deadline_s": 60,
  "topology": {"kind": "chain", "nodes": 2},
  "cc": {"policy": "tail", "queue": 8},
  "flows": [
    {"name": "burst", "protocol": "push", "src": 0, "dst": 1,
     "traffic": {"model": "cbr", "rate_pps": 400, "packets": 120}}
  ]
}`)
	if !r.Done() {
		t.Fatal("push schedule incomplete")
	}
	// Packet 119 is generated at 119/400 s after the epoch; the drain
	// phase must extend the run past that instant.
	lastGen := r.Epoch + secs(119.0/400)
	if r.End <= lastGen {
		t.Errorf("run ended at %v, at/before the last generation instant %v — queued tail never drained",
			r.End, lastGen)
	}
	f := r.Flows[0]
	if f.Result.PacketsDelivered < f.Generated*9/10 {
		t.Errorf("single good hop delivered only %d of %d — tail cut off", f.Result.PacketsDelivered, f.Generated)
	}
}

// TestRunFailNodeHaltsPushSource kills a push flow's source mid-schedule:
// generation must stop (a dead radio's clock injects nothing) and the flow
// must not claim to have run its schedule.
func TestRunFailNodeHaltsPushSource(t *testing.T) {
	r := parseRun(t, `{
  "name": "dead-source",
  "seed": 2,
  "deadline_s": 30,
  "topology": {"kind": "chain", "nodes": 3},
  "cc": {"policy": "tail"},
  "flows": [
    {"name": "burst", "protocol": "push", "src": 0, "dst": 2,
     "traffic": {"model": "cbr", "rate_pps": 100, "packets": 2000}}
  ],
  "events": [
    {"at_s": 2, "action": "fail_node", "node": 0}
  ]
}`)
	f := r.Flows[0]
	if f.Done {
		t.Error("flow on a dead source claims it ran its schedule")
	}
	// ~2 s at 100 pps: generation must halt at the failure, one tick slack.
	if f.Generated == 0 || f.Generated > 220 {
		t.Errorf("dead source generated %d packets (expected ~200)", f.Generated)
	}
	if r.End >= r.Epoch+secs(30) {
		t.Error("run never terminated after the source died (drain waited on a dead backlog?)")
	}
}

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
