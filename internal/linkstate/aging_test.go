package linkstate

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/sim"
)

// agingConfig is a fast-reacting liveness + aging configuration for the
// tests: 2 s advertisements keep live origins refreshed well inside the
// 10 s MaxAge, and 3 s of probe silence declares a neighbor dead.
func agingConfig() Config {
	cfg := DefaultConfig()
	cfg.AdvertiseInterval = 2 * sim.Second
	cfg.MaxAge = 10 * sim.Second
	cfg.Probe.DeadInterval = 3 * sim.Second
	return cfg
}

func agingSim(t *testing.T, n int) (*sim.Simulator, *graph.Topology, []*Agent) {
	t.Helper()
	topo := graph.Line(n, 0.95, 10)
	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, n)
	for i := range agents {
		agents[i] = NewAgent(agingConfig(), n)
		s.Attach(graph.NodeID(i), agents[i])
	}
	return s, topo, agents
}

// TestMaxAgeExpiresDeadOriginAndRelearnsRebirth is the crash/recover story
// end to end: a converged chain loses its far end, the survivors age the
// stale LSA out of their databases, and when the node is reborn its
// re-flood (whose sequence numbers kept advancing while it was dead) is
// accepted and the origin re-learned everywhere.
func TestMaxAgeExpiresDeadOriginAndRelearnsRebirth(t *testing.T) {
	s, topo, agents := agingSim(t, 3)
	s.Run(20 * sim.Second)
	for i, a := range agents {
		if a.KnownOrigins() != 3 {
			t.Fatalf("node %d knows %d/3 origins before the crash", i, a.KnownOrigins())
		}
	}

	topo.Isolate(2)
	s.FailNode(2)
	s.Run(50 * sim.Second) // 30 s of silence: well past the 10 s MaxAge
	if agents[0].Knows(2) || agents[1].Knows(2) {
		t.Errorf("stale LSA outlived MaxAge: node0=%v node1=%v", agents[0].Knows(2), agents[1].Knows(2))
	}
	if !agents[2].Knows(2) {
		t.Error("a node's own database entry must never expire")
	}
	if agents[0].ExpiredLSAs == 0 && agents[1].ExpiredLSAs == 0 {
		t.Error("no expiry was counted on either survivor")
	}
	// Live origins must not be collateral damage: 0 and 1 still refresh
	// each other inside MaxAge.
	if !agents[0].Knows(1) || !agents[1].Knows(0) {
		t.Error("aging purged a live origin")
	}

	topo.Restore(2)
	s.RecoverNode(2)
	s.Run(80 * sim.Second)
	if !agents[0].Knows(2) || !agents[1].Knows(2) {
		t.Error("reborn origin was not re-learned after recovery")
	}
}

// TestFlapShorterThanMaxAgeKeepsOrigin: an outage shorter than MaxAge must
// not purge the flapping neighbor — its refresh resumes before the age
// horizon passes, so the database rides through the blip.
func TestFlapShorterThanMaxAgeKeepsOrigin(t *testing.T) {
	s, topo, agents := agingSim(t, 3)
	s.Run(20 * sim.Second)

	topo.Isolate(2)
	s.FailNode(2)
	s.Run(24 * sim.Second) // a 4 s blip: well inside the 10 s MaxAge
	if !agents[0].Knows(2) || !agents[1].Knows(2) {
		t.Fatal("origin purged before MaxAge elapsed")
	}
	topo.Restore(2)
	s.RecoverNode(2)
	s.Run(44 * sim.Second)
	if !agents[0].Knows(2) || !agents[1].Knows(2) {
		t.Error("flapping origin lost after it came back")
	}
}

// TestExpiryKeepsAntiReplayState: after a purge, a replayed stale LSA
// (sequence at or below the last accepted one) must still be rejected —
// expiry drops the database entry, not the replay horizon — while a newer
// sequence is accepted.
func TestExpiryKeepsAntiReplayState(t *testing.T) {
	s, topo, agents := agingSim(t, 3)
	s.Run(20 * sim.Second)
	topo.Isolate(2)
	s.FailNode(2)
	s.Run(50 * sim.Second)
	if agents[0].Knows(2) {
		t.Fatal("stale LSA not expired")
	}
	last := agents[0].latestSeq[2]
	if agents[0].accept(&packet.LSA{Origin: 2, Seq: last}) {
		t.Error("replayed stale LSA accepted after expiry")
	}
	if !agents[0].accept(&packet.LSA{Origin: 2, Seq: last + 1}) {
		t.Error("fresh re-flood rejected after expiry")
	}
}

// TestDeadIntervalZeroKeepsLegacyBehavior: with liveness and aging off
// (the default config), a dead neighbor's LSA lives forever — the original
// behavior every pre-churn golden pins.
func TestDeadIntervalZeroKeepsLegacyBehavior(t *testing.T) {
	topo := graph.Line(3, 0.95, 10)
	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, 3)
	for i := range agents {
		agents[i] = NewAgent(DefaultConfig(), 3)
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(20 * sim.Second)
	topo.Isolate(2)
	s.FailNode(2)
	s.Run(80 * sim.Second)
	if !agents[0].Knows(2) {
		t.Error("default config expired an LSA; aging must be opt-in")
	}
}
