package linkstate

import (
	"repro/internal/graph"
	"repro/internal/routing"
)

// LoadCost is the learned-state routing.CostModel: it prices each node by
// the load byte carried on the latest LSA this agent has heard from it,
// scaled by Weight (the penalty, in ETX-transmission units, of routing
// through a fully saturated node). Nodes the agent has not heard from —
// or whose LSAs carry no load — cost nothing, so the model degrades to
// loss-only routing exactly where knowledge runs out.
type LoadCost struct {
	Agent  *Agent
	Weight float64
}

// NodePenalty implements routing.CostModel.
func (c *LoadCost) NodePenalty(id graph.NodeID) float64 {
	if c == nil || c.Agent == nil || c.Weight == 0 {
		return 0
	}
	return c.Weight * float64(c.Agent.LoadOf(id)) / 255
}

var _ routing.CostModel = (*LoadCost)(nil)
