package linkstate

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// floodStats runs a standalone measurement plane for the duration and
// returns total LSA transmissions, suppressed advertise ticks, and the
// total origins known across all agents (coverage).
func floodStats(t *testing.T, cfg Config, duration sim.Time) (flood, suppressed int64, known int) {
	t.Helper()
	topo := graph.Testbed(graph.DefaultTestbed(), 1)
	agents := Run(topo, cfg, sim.DefaultConfig(), duration)
	for _, a := range agents {
		flood += a.FloodTx
		suppressed += a.SuppressedAdv
		known += a.KnownOrigins()
	}
	return flood, suppressed, known
}

// TestDampingSavesFloodsAtEqualCoverage quantifies the point of the
// feature: with triggered updates + hold-down on, the network floods
// dramatically less than the undamped baseline while every node learns at
// least as many origins.
func TestDampingSavesFloodsAtEqualCoverage(t *testing.T) {
	const duration = 60 * sim.Second

	base, baseSupp, baseKnown := floodStats(t, DefaultConfig(), duration)
	if baseSupp != 0 {
		t.Fatalf("undamped plane suppressed %d advertisements", baseSupp)
	}

	// The trigger must exceed the probe estimator's granularity (a
	// 10-probe window moves in 0.1 steps, so 0.1 would re-trigger on every
	// single-probe jitter); 0.2 requires a two-step move.
	damped := DefaultConfig()
	damped.TriggerDelta = 0.2
	flood, suppressed, known := floodStats(t, damped, duration)
	// Coverage may dip slightly: a node whose LSA a distant listener lost
	// now waits for a trigger or the MaxQuiet refresh instead of the next
	// periodic flood. Bound the dip at 5%.
	if known*100 < baseKnown*95 {
		t.Errorf("damping lost coverage: %d origins known vs %d undamped", known, baseKnown)
	}
	if suppressed == 0 {
		t.Fatal("damping never suppressed an advertisement")
	}
	// The run starts cold (estimates move a lot), so the saving shows up
	// after convergence; over 60 s it must still be substantial.
	if flood >= base*3/4 {
		t.Errorf("damping saved too little: %d floods vs %d undamped", flood, base)
	}
}

// TestDampingMaxQuietRefreshes checks the hold-down bound: even a fully
// quiet node re-floods once MaxQuiet elapses, so late joiners are not
// stranded with stale state forever.
func TestDampingMaxQuietRefreshes(t *testing.T) {
	topo := graph.Testbed(graph.DefaultTestbed(), 1)
	cfg := DefaultConfig()
	cfg.TriggerDelta = 0.1
	cfg.MaxQuiet = 20 * sim.Second

	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(cfg, topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	// Let it converge and go quiet, then measure refreshes over a window
	// longer than MaxQuiet.
	s.Run(60 * sim.Second)
	seqAt60 := agents[0].Version()
	var floodAt60 int64
	for _, a := range agents {
		floodAt60 += a.FloodTx
	}
	s.Run(90 * sim.Second)
	var floodAt90 int64
	for _, a := range agents {
		floodAt90 += a.FloodTx
	}
	if floodAt90 == floodAt60 {
		t.Error("no refresh flood within MaxQuiet window")
	}
	if agents[0].Version() == seqAt60 {
		t.Error("database never changed after quiet period refresh")
	}
}

// TestDampingTriggersOnChange checks the trigger half: a quiet converged
// network that suddenly degrades floods fresh LSAs without waiting for
// MaxQuiet.
func TestDampingTriggersOnChange(t *testing.T) {
	topo := graph.Testbed(graph.DefaultTestbed(), 1)
	cfg := DefaultConfig()
	cfg.TriggerDelta = 0.1
	cfg.MaxQuiet = 10 * 60 * sim.Second // effectively never refresh

	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(cfg, topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(60 * sim.Second)
	var floodBefore int64
	for _, a := range agents {
		floodBefore += a.FloodTx
	}
	// Degrade every link: delivery ratios crash, estimates move past the
	// trigger, and the plane must re-flood.
	topo.Degrade(0.5)
	s.Run(90 * sim.Second)
	var floodAfter int64
	for _, a := range agents {
		floodAfter += a.FloodTx
	}
	if floodAfter <= floodBefore {
		t.Errorf("no triggered flood after topology change: %d -> %d", floodBefore, floodAfter)
	}
}
