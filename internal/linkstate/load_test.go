package linkstate

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// TestLoadRidesLSAs: a node whose sampler reports load must have that byte
// heard across the network, and a node with no sampler (or zero load) must
// read back as unloaded everywhere.
func TestLoadRidesLSAs(t *testing.T) {
	topo := graph.Line(4, 0.9, 10)
	cfg := DefaultConfig()
	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(cfg, topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	agents[1].SetLoadFunc(func() uint8 { return 200 })
	s.Run(60 * sim.Second)
	for i, a := range agents {
		if got := a.LoadOf(1); got != 200 {
			t.Errorf("node %d heard load %d from node 1, want 200", i, got)
		}
		if got := a.LoadOf(2); got != 0 {
			t.Errorf("node %d heard load %d from samplerless node 2", i, got)
		}
	}

	// The learned cost model prices exactly what was heard.
	lc := &LoadCost{Agent: agents[0], Weight: 2}
	if got, want := lc.NodePenalty(1), 2*200.0/255; got != want {
		t.Errorf("NodePenalty(loaded) = %v, want %v", got, want)
	}
	if got := lc.NodePenalty(2); got != 0 {
		t.Errorf("NodePenalty(unloaded) = %v", got)
	}
	if got := (&LoadCost{Agent: agents[0], Weight: 0}).NodePenalty(1); got != 0 {
		t.Errorf("zero-weight model charged %v", got)
	}
}

// TestLoadSwingDefeatsDamping: a converged, quiet network whose link
// estimates never move must still re-flood when a node's load byte swings
// by the trigger delta — otherwise stale load would steer routing long
// after the hotspot cooled.
func TestLoadSwingDefeatsDamping(t *testing.T) {
	topo := graph.Testbed(graph.DefaultTestbed(), 1)
	cfg := DefaultConfig()
	cfg.TriggerDelta = 0.1
	cfg.MaxQuiet = 10 * 60 * sim.Second // periodic refresh effectively off

	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, topo.N())
	load := uint8(0)
	for i := range agents {
		agents[i] = NewAgent(cfg, topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	agents[0].SetLoadFunc(func() uint8 { return load })
	s.Run(60 * sim.Second)
	heardBefore := agents[5].LoadOf(0)
	// Swing well past loadTriggerDelta: the next advertise tick must flood
	// despite unchanged link estimates.
	load = 220
	s.Run(90 * sim.Second)
	if got := agents[5].LoadOf(0); got == heardBefore {
		t.Errorf("load swing suppressed by damping: remote still reads %d", got)
	}

	// A sub-delta wobble stays damped: loadMoved is the only new trigger.
	if loadMoved(100, 100+loadTriggerDelta-1) {
		t.Error("sub-delta load wobble counted as news")
	}
	if !loadMoved(100, 100+loadTriggerDelta) {
		t.Error("full-delta load swing not counted as news")
	}
	if !loadMoved(200, 50) {
		t.Error("downward swing not counted as news")
	}
}
