package linkstate_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/linkstate"
	"repro/internal/routing"
	"repro/internal/sim"
)

// ExampleRun floods a 4-node lossy chain for 30 simulated seconds and shows
// that node 0 learned the whole topology over the air: its LSA database
// covers every origin, and the ETX route it computes from its own learned
// graph skips the marginal single hops just as the oracle's would (nodes
// sit 15 m apart with usable links out to 30 m, so the best path takes the
// reliable two-node stride where it can).
func ExampleRun() {
	topo := graph.LossyChain(4, 15, 30)
	agents := linkstate.Run(topo, linkstate.DefaultConfig(), sim.DefaultConfig(), 30*sim.Second)

	fmt.Printf("node 0 knows %d/%d origins\n", agents[0].KnownOrigins(), topo.N())
	view := linkstate.NewView(agents[0], routing.DefaultETXOptions(), 0)
	fmt.Printf("learned route 0->3: %v\n", view.Path(0, 3))
	// Output:
	// node 0 knows 4/4 origins
	// learned route 0->3: [0 2 3]
}
