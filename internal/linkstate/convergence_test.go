package linkstate

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Convergence tests: after a warmup window of probing + flooding, every
// node's *learned* ETX table must agree with the table an oracle computes
// over the ground-truth topology — within the tolerance set by the probe
// window's quantization (a 10-probe window can only estimate delivery in
// steps of 0.1, so per-link ETX error of ~15% compounds along a path).

// checkConverged asserts every agent knows every origin and its learned
// ETX distances toward dst sit within tolerance of the oracle's.
func checkConverged(t *testing.T, topo *graph.Topology, agents []*Agent, dst graph.NodeID,
	meanTol, maxTol float64) {
	t.Helper()
	opt := routing.DefaultETXOptions()
	for i, a := range agents {
		if a.KnownOrigins() != topo.N() {
			t.Fatalf("node %d knows %d/%d origins", i, a.KnownOrigins(), topo.N())
		}
		v := NewView(a, opt, 0)
		mean, max, disagree := v.ETXError(topo, dst)
		if disagree != 0 {
			t.Errorf("node %d: learned reachability toward %d disagrees with oracle at %d nodes",
				i, dst, disagree)
		}
		if mean > meanTol || max > maxTol {
			t.Errorf("node %d: learned ETX error toward %d too large: mean=%.3f (tol %.3f) max=%.3f (tol %.3f)",
				i, dst, mean, meanTol, max, maxTol)
		}
	}
}

// TestConvergenceAsymmetricLinks floods a chain whose links are markedly
// asymmetric (forward 0.9, reverse 0.6): the learned ACK-aware ETX must
// reflect both directions, which only works if each node's inbound
// estimates make it into everyone else's database via the LSA floods.
func TestConvergenceAsymmetricLinks(t *testing.T) {
	n := 6
	topo := graph.New(n)
	for i := 0; i < n-1; i++ {
		topo.SetDirected(graph.NodeID(i), graph.NodeID(i+1), 0.9)
		topo.SetDirected(graph.NodeID(i+1), graph.NodeID(i), 0.6)
	}
	agents := Run(topo, DefaultConfig(), sim.DefaultConfig(), 60*sim.Second)
	checkConverged(t, topo, agents, graph.NodeID(n-1), 0.20, 0.45)
	checkConverged(t, topo, agents, 0, 0.20, 0.45)
}

// TestConvergenceDegradedTopology floods a lossy-chain topology degraded by
// an extra 25% uniform drop — the Degrade(drop) scenario the scaling
// experiments layer on — and checks the learned tables still track the
// (now harsher) ground truth.
func TestConvergenceDegradedTopology(t *testing.T) {
	topo := graph.LossyChain(6, 15, 30)
	topo.Degrade(0.25)
	cfg := DefaultConfig()
	cfg.Probe.Window = 20 // lossier links need more samples per estimate
	agents := Run(topo, cfg, sim.DefaultConfig(), 120*sim.Second)
	checkConverged(t, topo, agents, graph.NodeID(topo.N()-1), 0.25, 0.60)
}

// TestViewRecomputeHoldoff checks the view's rate limiting: with a large
// MinRecompute the first build is served for subsequent queries even as the
// agent's database keeps changing, and Version stays put.
func TestViewRecomputeHoldoff(t *testing.T) {
	topo := graph.LossyChain(4, 15, 30)
	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(DefaultConfig(), topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	v := NewView(agents[0], routing.DefaultETXOptions(), 1000*sim.Second)
	s.Run(10 * sim.Second)
	_ = v.Graph()
	ver := v.Version()
	builds := v.Builds()
	s.Run(40 * sim.Second)
	_ = v.Graph()
	if v.Builds() != builds || v.Version() != ver {
		t.Fatalf("holdoff ignored: builds %d -> %d, version %d -> %d",
			builds, v.Builds(), ver, v.Version())
	}
	// A zero-holdoff view rebuilt over the same agent does advance.
	v2 := NewView(agents[0], routing.DefaultETXOptions(), 0)
	if v2.Version() == 0 && agents[0].Version() != 0 {
		t.Fatal("zero-holdoff view did not build")
	}
}

// TestViewETXErrorPerfectInput sanity-checks the error metric itself: a
// view over a fully-informed database must report (near-)zero error against
// the same topology it was told about. Build the database by hand so no
// channel noise is involved.
func TestViewETXErrorPerfectInput(t *testing.T) {
	topo := graph.LossyChain(5, 15, 30)
	s := sim.New(topo, sim.DefaultConfig())
	// Run long enough that the probe window saturates: estimates then sit
	// within one quantization step of the truth on these clean links.
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(DefaultConfig(), topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(90 * sim.Second)
	v := NewView(agents[0], routing.DefaultETXOptions(), 0)
	mean, max, disagree := v.ETXError(topo, graph.NodeID(topo.N()-1))
	if disagree != 0 || math.IsNaN(mean) {
		t.Fatalf("unexpected disagreement: %d (mean %.3f)", disagree, mean)
	}
	if mean > 0.2 || max > 0.5 {
		t.Fatalf("clean-channel learned ETX error too large: mean=%.3f max=%.3f", mean, max)
	}
}
