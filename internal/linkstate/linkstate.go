// Package linkstate implements the dissemination half of the measurement
// pipeline (§3.2.1(b)): "Each node j can periodically measure the loss
// probabilities ε_ij for each of its neighbors via ping probes. These
// probabilities are distributed to other nodes in the network in a manner
// similar to link state protocols. Each node can then build the network
// graph annotated with the link loss probabilities."
//
// The Agent combines the probe estimator with sequence-numbered link-state
// advertisements flooded over the broadcast medium: each node periodically
// advertises its measured inbound delivery ratios; receivers rebroadcast
// LSAs they have not seen (with jitter, so floods do not synchronize), and
// every node converges to a shared loss-annotated topology from which it
// computes ETX/EOTX routes locally.
package linkstate

import (
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes the agent.
type Config struct {
	// Probe configures the underlying delivery-ratio measurement.
	Probe probe.Config
	// AdvertiseInterval is how often a node floods a fresh LSA of its
	// inbound link estimates.
	AdvertiseInterval sim.Time
	// FloodJitter delays each rebroadcast by a uniform random amount, so
	// one advertisement does not trigger a synchronized burst.
	FloodJitter sim.Time
	// MinProb drops estimated links below this delivery ratio from the
	// advertisement (noise suppression).
	MinProb float64

	// TriggerDelta enables flood damping: a fresh LSA is flooded only when
	// some link estimate moved by at least this much since the last
	// advertisement (or a link appeared/disappeared). Zero floods every
	// AdvertiseInterval, the undamped original behavior. Each advertise
	// tick that finds nothing moved is suppressed — no sequence bump, no
	// flood, no database churn at any node — so a converged network goes
	// quiet instead of refreshing n² frames per interval.
	TriggerDelta float64
	// MaxQuiet bounds the damping: an LSA is flooded regardless of change
	// once this long has passed since the node's last flood, so newly
	// joined listeners and lost floods eventually heal. Zero defaults to
	// 6×AdvertiseInterval when damping is on.
	MaxQuiet sim.Time

	// MaxAge enables LSA aging: a database entry not refreshed for MaxAge
	// is purged (except the node's own), so a crashed origin's links drop
	// out of every learned view instead of persisting forever. The purged
	// origin's sequence state is kept, so a stale replayed flood cannot
	// resurrect the entry — only the origin itself, whose sequence keeps
	// advancing, re-installs it when it comes back. MaxAge must exceed
	// both AdvertiseInterval and MaxQuiet or live-but-quiet nodes expire;
	// NewAgent caps MaxQuiet at MaxAge/2 when both are set. Zero disables
	// aging (the pre-churn behavior, and the default).
	MaxAge sim.Time

	// ScopeRings enables fisheye-scoped flooding: ascending hop radii, one
	// per ring. Ring 0 (radius ScopeRings[0]) is refreshed on every other
	// advertise tick, ring 1 every fourth, and so on — a geometric cadence,
	// so near neighbors see every estimate move at full rate while distant
	// regions are refreshed by the slower rings and, network-wide, by the
	// periodic unscoped summary (SummaryInterval). Each scoped LSA carries
	// its radius as a TTL (packet.LSA.TTL) that forwarders decrement; the
	// flood dies at the ring boundary instead of costing n² frames. Empty
	// disables scoping: every flood is network-wide, the classic behavior
	// and the default.
	ScopeRings []int
	// SummaryInterval is the period of unscoped network-wide floods when
	// scoping is on — the "aggregated summary" distant regions converge
	// on. Zero defaults to 8×AdvertiseInterval; when aging is on it is
	// capped at MaxAge/2 so remote entries refresh before they expire.
	SummaryInterval sim.Time

	// Piggyback opportunistically attaches pending LSAs to outgoing
	// broadcast data frames (the sim.Piggybacker hand-off): an LSA waits up
	// to PiggybackDelay for a data frame to ride before falling back to a
	// dedicated flood, so a converged network moving traffic spends almost
	// zero dedicated control frames. Off by default.
	Piggyback bool
	// PiggybackDelay bounds how long an LSA waits for a ride. Zero
	// defaults to AdvertiseInterval/2.
	PiggybackDelay sim.Time
}

// DefaultConfig returns a Roofnet-like setup.
func DefaultConfig() Config {
	return Config{
		Probe:             probe.DefaultConfig(),
		AdvertiseInterval: 5 * sim.Second,
		FloodJitter:       200 * sim.Millisecond,
		MinProb:           0.05,
	}
}

// Agent runs probing plus link-state flooding on one node.
type Agent struct {
	cfg    Config
	node   *sim.Node
	n      int // network size
	prober *probe.Prober

	seq        uint32
	pendingAdv []pendingLSA // own advertisement awaiting transmission
	pendingFwd []pendingLSA // LSAs to rebroadcast
	latestSeq  map[graph.NodeID]uint32
	db         map[graph.NodeID]*packet.LSA
	// receivedAt[origin] is when origin's current database entry was
	// installed (aging input for MaxAge).
	receivedAt map[graph.NodeID]sim.Time

	// Damping state: the estimates as last flooded, and when.
	lastAdv    map[graph.NodeID]float64
	lastAdvAt  sim.Time
	advertised bool

	// loadFunc, when set, samples this node's congestion score at each
	// advertise tick; the byte rides the LSA (packet.LSA.Load) so learned
	// views carry load for the cost plane. lastAdvLoad is the damping
	// reference: a load swing of loadTriggerDelta or more defeats
	// suppression like a link estimate moving past TriggerDelta does.
	loadFunc    func() uint8
	lastAdvLoad uint8

	// Fisheye cadence state: advTick counts advertise ticks (the ring
	// selector), lastSummaryAt/summarized track the periodic unscoped
	// summary flood.
	advTick       uint64
	lastSummaryAt sim.Time
	summarized    bool

	// SuppressedAdv counts advertise ticks damped away (estimates within
	// TriggerDelta of the last flood).
	SuppressedAdv int64

	// PiggyTx counts LSAs that rode outgoing data frames instead of costing
	// a dedicated flood transmission.
	PiggyTx int64

	// ExpiredLSAs counts database entries purged by MaxAge aging.
	ExpiredLSAs int64

	// version counts LSA database changes; View uses it to decide when a
	// cached topology and its route tables are stale.
	version uint64

	// FloodTx counts LSA transmissions (own + rebroadcasts).
	FloodTx int64
}

// pendingLSA is an LSA queued for transmission. due is when a dedicated
// flood becomes allowed: zero (the non-piggyback default) means immediately;
// with piggybacking on, the LSA waits for a data-frame ride until due.
type pendingLSA struct {
	lsa *packet.LSA
	due sim.Time
}

// NewAgent creates an agent for a network of n nodes.
func NewAgent(cfg Config, n int) *Agent {
	if cfg.AdvertiseInterval == 0 {
		cfg = DefaultConfig()
	}
	if cfg.TriggerDelta > 0 && cfg.MaxQuiet == 0 {
		cfg.MaxQuiet = 6 * cfg.AdvertiseInterval
	}
	if cfg.MaxAge > 0 && cfg.MaxQuiet >= cfg.MaxAge {
		cfg.MaxQuiet = cfg.MaxAge / 2 // a damped-quiet live node must not expire
	}
	if len(cfg.ScopeRings) > 0 && cfg.SummaryInterval == 0 {
		cfg.SummaryInterval = 8 * cfg.AdvertiseInterval
	}
	if cfg.MaxAge > 0 && cfg.SummaryInterval >= cfg.MaxAge {
		cfg.SummaryInterval = cfg.MaxAge / 2 // remote entries must refresh before expiring
	}
	if cfg.Piggyback && cfg.PiggybackDelay == 0 {
		cfg.PiggybackDelay = cfg.AdvertiseInterval / 2
	}
	return &Agent{
		cfg:        cfg,
		n:          n,
		prober:     probe.NewProber(cfg.Probe),
		latestSeq:  make(map[graph.NodeID]uint32),
		db:         make(map[graph.NodeID]*packet.LSA),
		receivedAt: make(map[graph.NodeID]sim.Time),
		lastAdv:    make(map[graph.NodeID]float64),
	}
}

// Init implements sim.Protocol.
func (a *Agent) Init(node *sim.Node) {
	a.node = node
	a.prober.Init(node)
	a.scheduleAdvertise()
	if a.cfg.MaxAge > 0 {
		a.scheduleExpiry()
	}
}

// scheduleExpiry runs the aging sweep at a quarter of MaxAge, bounding how
// long past its horizon a dead entry can linger. The timer exists only when
// aging is enabled, so the default configuration's event stream (and every
// pinned golden) is untouched.
func (a *Agent) scheduleExpiry() {
	period := a.cfg.MaxAge / 4
	if period <= 0 {
		period = sim.Time(1)
	}
	a.node.After(period, func() {
		a.expire()
		a.scheduleExpiry()
	})
}

// expire purges database entries older than MaxAge. The node's own entry
// never expires (its refresh may be damped for up to MaxQuiet); sequence
// state survives the purge so only a genuinely fresher flood — the reborn
// origin's own, whose sequence kept advancing — re-installs an origin.
func (a *Agent) expire() {
	for origin, at := range a.receivedAt {
		if origin == a.node.ID() || a.node.Now()-at < a.cfg.MaxAge {
			continue
		}
		delete(a.db, origin)
		delete(a.receivedAt, origin)
		a.ExpiredLSAs++
		a.version++
	}
}

func (a *Agent) scheduleAdvertise() {
	d := a.cfg.AdvertiseInterval
	if a.cfg.FloodJitter > 0 {
		d += sim.Time(a.node.Rand().Int63n(int64(a.cfg.FloodJitter)))
	}
	a.node.After(d, func() {
		a.advertise()
		a.scheduleAdvertise()
	})
}

// advertise queues a fresh LSA of this node's inbound link estimates —
// unless damping is on and nothing moved past the trigger threshold since
// the last flood (triggered updates; the periodic tick doubles as the
// hold-down, and MaxQuiet bounds how long an unchanged node stays quiet).
func (a *Agent) advertise() {
	a.seq++
	lsa := &packet.LSA{Origin: a.node.ID(), Seq: a.seq}
	// The damping comparison wants the raw estimates; collect them in the
	// same ascending pass that builds the LSA, and only when damping is on
	// (the undamped default pays neither the map nor a second scan).
	var estimates map[graph.NodeID]float64
	if a.cfg.TriggerDelta > 0 {
		estimates = make(map[graph.NodeID]float64)
	}
	for i := 0; i < a.n; i++ {
		id := graph.NodeID(i)
		if id == a.node.ID() {
			continue
		}
		p := a.prober.DeliveryFrom(id)
		if p < a.cfg.MinProb {
			continue
		}
		if estimates != nil {
			estimates[id] = p
		}
		lsa.Neighbors = append(lsa.Neighbors, id)
		lsa.Probs = append(lsa.Probs, packet.QuantizeProb(p))
	}
	if a.loadFunc != nil {
		lsa.Load = a.loadFunc()
	}
	a.advTick++
	if a.cfg.TriggerDelta > 0 {
		// A due network-wide summary bypasses damping: under scoped flooding
		// the periodic summary is the only refresh distant regions ever see,
		// and a quiet period must not starve them onto bootstrap-era state.
		if !a.summaryDue(a.node.Now()) && a.damped(estimates) && !loadMoved(a.lastAdvLoad, lsa.Load) {
			a.seq--
			a.SuppressedAdv++
			return
		}
		a.lastAdv = estimates
		a.lastAdvAt = a.node.Now()
		a.lastAdvLoad = lsa.Load
		a.advertised = true
	}
	lsa.TTL = a.scopeTTL(a.node.Now())
	a.accept(lsa)
	if a.node.Failed() {
		// A dead radio cannot drain its queue; keep only the newest own LSA
		// so arbitrarily long outages do not grow the backlog. On recovery
		// the single queued advertisement re-announces the node.
		a.pendingAdv = a.pendingAdv[:0]
	}
	a.pendingAdv = append(a.pendingAdv, pendingLSA{lsa: lsa, due: a.holdUntil()})
	a.node.Wake()
}

// scopeTTL picks the flood radius for this advertise tick. With scoping off
// it always returns 0 (unscoped). With scoping on, a network-wide summary
// (TTL 0) goes out on the first flood and then every SummaryInterval; the
// ticks between are scoped on the fisheye cadence — ring 0 on every odd
// tick, ring 1 on every second even tick, and so on geometrically, so the
// smallest radius refreshes most often.
// summaryDue reports whether the next advertisement must be a network-wide
// summary: scoping is on and either no summary has ever gone out (bootstrap)
// or the last one is a full SummaryInterval old. Pure predicate — scopeTTL
// does the bookkeeping when the summary actually goes out.
func (a *Agent) summaryDue(now sim.Time) bool {
	if len(a.cfg.ScopeRings) == 0 {
		return false
	}
	return !a.summarized || now-a.lastSummaryAt >= a.cfg.SummaryInterval
}

func (a *Agent) scopeTTL(now sim.Time) uint8 {
	if len(a.cfg.ScopeRings) == 0 {
		return 0
	}
	if a.summaryDue(now) {
		a.summarized = true
		a.lastSummaryAt = now
		return 0
	}
	level := 0
	for t := a.advTick; t&1 == 0 && level < len(a.cfg.ScopeRings)-1; t >>= 1 {
		level++
	}
	r := a.cfg.ScopeRings[level]
	if r < 1 {
		r = 1
	}
	if r > 255 {
		r = 255
	}
	return uint8(r)
}

// holdUntil is the dedicated-flood deadline for a newly queued LSA: now when
// piggybacking is off, now+PiggybackDelay when it may catch a data ride.
func (a *Agent) holdUntil() sim.Time {
	if !a.cfg.Piggyback {
		return 0
	}
	due := a.node.Now() + a.cfg.PiggybackDelay
	// The node may go idle before the deadline; make sure the MAC pulls
	// again once the fallback flood becomes eligible.
	a.node.After(a.cfg.PiggybackDelay+1, func() { a.node.Wake() })
	return due
}

// damped reports whether this advertise tick should be suppressed: damping
// enabled, a previous flood exists and is younger than MaxQuiet, and every
// estimate is within TriggerDelta of what that flood said.
func (a *Agent) damped(estimates map[graph.NodeID]float64) bool {
	if a.cfg.TriggerDelta <= 0 || !a.advertised {
		return false
	}
	if a.node.Now()-a.lastAdvAt >= a.cfg.MaxQuiet {
		return false
	}
	if len(estimates) != len(a.lastAdv) {
		return false
	}
	for id, p := range estimates {
		last, ok := a.lastAdv[id]
		if !ok || p-last >= a.cfg.TriggerDelta || last-p >= a.cfg.TriggerDelta {
			return false
		}
	}
	return true
}

// serialNewer reports whether sequence a is newer than b under RFC 1982
// serial-number arithmetic: the comparison stays correct when a uint32
// sequence wraps (a crash-looping origin, or a soak run long enough to pass
// 2³²), where a plain <= would reject every genuine LSA forever.
func serialNewer(a, b uint32) bool {
	return a != b && int32(a-b) > 0
}

// accept installs an LSA in the local database if it is new.
func (a *Agent) accept(l *packet.LSA) bool {
	if last, ok := a.latestSeq[l.Origin]; ok && !serialNewer(l.Seq, last) {
		return false
	}
	a.latestSeq[l.Origin] = l.Seq
	a.db[l.Origin] = l
	if a.node != nil { // tests drive accept without a simulated node
		a.receivedAt[l.Origin] = a.node.Now()
	}
	a.version++
	return true
}

// loadTriggerDelta is the quantized-load swing that defeats flood damping:
// 16/255 ≈ 6%, coarse enough that EWMA jitter does not turn every
// advertise tick into a flood.
const loadTriggerDelta = 16

// loadMoved reports whether the load byte moved far enough to be news.
func loadMoved(last, cur uint8) bool {
	d := int(cur) - int(last)
	if d < 0 {
		d = -d
	}
	return d >= loadTriggerDelta
}

// SetLoadFunc installs the congestion-score sampler whose byte rides this
// node's LSAs (zero means unloaded and costs no wire bytes). The control
// plane wires it to the node's congest.Layer when load export is on; nil
// (the default) advertises no load and keeps LSAs byte-identical to the
// load-unaware format.
func (a *Agent) SetLoadFunc(f func() uint8) { a.loadFunc = f }

// LoadOf returns the quantized load this agent has heard for origin (its
// latest LSA's load byte), or 0 if unknown.
func (a *Agent) LoadOf(origin graph.NodeID) uint8 {
	if lsa, ok := a.db[origin]; ok {
		return lsa.Load
	}
	return 0
}

// Version counts LSA database changes (see View).
func (a *Agent) Version() uint64 { return a.version }

// Node returns the simulated node this agent runs on (nil before Init).
func (a *Agent) Node() *sim.Node { return a.node }

// ProbeTx returns how many probe broadcasts the underlying prober has sent.
func (a *Agent) ProbeTx() int64 { return a.prober.ProbeTx }

// Receive implements sim.Protocol.
func (a *Agent) Receive(f *sim.Frame) {
	for _, p := range f.Piggyback {
		if m, ok := p.(*packet.LSA); ok {
			a.handleLSA(m)
		}
	}
	switch m := f.Payload.(type) {
	case *packet.LSA:
		a.handleLSA(m)
	default:
		a.prober.Receive(f)
	}
}

// handleLSA installs a received LSA (dedicated flood or piggybacked ride)
// and schedules its rebroadcast. A scoped LSA is forwarded with the TTL
// decremented on a copy — the broadcast frame's payload pointer is shared
// with every other receiver and with this node's own database — and dies at
// the ring boundary (TTL 1) instead of flooding the whole network.
func (a *Agent) handleLSA(m *packet.LSA) {
	if !a.accept(m) {
		return
	}
	if m.TTL == 1 {
		return // scope boundary: install locally, do not re-flood
	}
	fwd := m
	if m.TTL > 1 {
		c := *m
		c.TTL = m.TTL - 1
		fwd = &c
	}
	// Rebroadcast after jitter.
	delay := sim.Time(1)
	if a.cfg.FloodJitter > 0 {
		delay = sim.Time(a.node.Rand().Int63n(int64(a.cfg.FloodJitter)))
	}
	a.node.After(delay, func() {
		// Only flood if still the freshest we know.
		if a.latestSeq[fwd.Origin] == fwd.Seq {
			a.pendingFwd = append(a.pendingFwd, pendingLSA{lsa: fwd, due: a.holdUntil()})
			a.node.Wake()
		}
	})
}

// Pull implements sim.Protocol: own advertisements, then rebroadcasts,
// then probes. With piggybacking on, queued LSAs whose ride deadline has
// not passed are skipped — they wait for a data frame — but never block the
// prober behind them.
func (a *Agent) Pull() *sim.Frame {
	if l, ok := a.popDue(&a.pendingAdv); ok {
		return a.floodFrame(l)
	}
	if l, ok := a.popDue(&a.pendingFwd); ok {
		return a.floodFrame(l)
	}
	return a.prober.Pull()
}

// popDue pops the queue head if its dedicated-flood deadline has passed.
// Queues are appended in time order, so the head always has the earliest
// deadline.
func (a *Agent) popDue(q *[]pendingLSA) (*packet.LSA, bool) {
	if len(*q) == 0 {
		return nil, false
	}
	head := (*q)[0]
	if head.due > a.node.Now() {
		return nil, false
	}
	*q = (*q)[1:]
	return head.lsa, true
}

func (a *Agent) floodFrame(l *packet.LSA) *sim.Frame {
	a.FloodTx++
	a.node.Emit(telemetry.Event{Aux: int64(l.Origin), Kind: telemetry.KindLSAFlood})
	return &sim.Frame{From: a.node.ID(), To: graph.Broadcast, Bytes: l.EncodedSize(), Payload: l}
}

// piggybackMax bounds how many pending LSAs ride one data frame, so a
// backlog cannot balloon a single frame's airtime.
const piggybackMax = 4

// Piggyback implements sim.Piggybacker: pending LSAs hitch a ride on a
// broadcast data frame another layer is about to transmit. Every decoding
// neighbor sees the ride exactly like a dedicated flood — same payloads,
// zero extra frames — so a converged network moving data pays almost no
// dedicated control transmissions.
func (a *Agent) Piggyback(f *sim.Frame) {
	if !a.cfg.Piggyback || f.To != graph.Broadcast {
		return
	}
	for n := 0; n < piggybackMax; n++ {
		var l *packet.LSA
		if len(a.pendingAdv) > 0 {
			l = a.pendingAdv[0].lsa
			a.pendingAdv = a.pendingAdv[1:]
		} else if len(a.pendingFwd) > 0 {
			l = a.pendingFwd[0].lsa
			a.pendingFwd = a.pendingFwd[1:]
		} else {
			return
		}
		f.Piggyback = append(f.Piggyback, l)
		f.Bytes += l.EncodedSize()
		a.PiggyTx++
	}
}

// Sent implements sim.Protocol.
func (a *Agent) Sent(f *sim.Frame, ok bool) {
	if len(a.pendingAdv) > 0 || len(a.pendingFwd) > 0 {
		a.node.Wake()
	}
}

// KnownOrigins returns how many nodes' LSAs this agent holds (including
// its own).
func (a *Agent) KnownOrigins() int { return len(a.db) }

// Knows reports whether this agent currently holds an LSA from origin —
// false once aging has purged a dead origin, true again after its reborn
// flood lands. Reconvergence measurements poll it.
func (a *Agent) Knows(origin graph.NodeID) bool {
	_, ok := a.db[origin]
	return ok
}

// Topology reconstructs this node's local view of the loss-annotated
// network graph from its LSA database. Unknown links are 0.
func (a *Agent) Topology() *graph.Topology {
	t := graph.New(a.n)
	for origin, lsa := range a.db {
		for i, nb := range lsa.Neighbors {
			// LSA reports delivery of nb -> origin.
			t.SetDirected(nb, origin, packet.UnquantizeProb(lsa.Probs[i]))
		}
	}
	return t
}

// Run floods a whole network for duration and returns the agents, one per
// node — the simulated analogue of letting Roofnet's link-state layer
// converge before starting an experiment.
func Run(topo *graph.Topology, cfg Config, simCfg sim.Config, duration sim.Time) []*Agent {
	s := sim.New(topo, simCfg)
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(cfg, topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(duration)
	return agents
}
