// Package linkstate implements the dissemination half of the measurement
// pipeline (§3.2.1(b)): "Each node j can periodically measure the loss
// probabilities ε_ij for each of its neighbors via ping probes. These
// probabilities are distributed to other nodes in the network in a manner
// similar to link state protocols. Each node can then build the network
// graph annotated with the link loss probabilities."
//
// The Agent combines the probe estimator with sequence-numbered link-state
// advertisements flooded over the broadcast medium: each node periodically
// advertises its measured inbound delivery ratios; receivers rebroadcast
// LSAs they have not seen (with jitter, so floods do not synchronize), and
// every node converges to a shared loss-annotated topology from which it
// computes ETX/EOTX routes locally.
package linkstate

import (
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Config parameterizes the agent.
type Config struct {
	// Probe configures the underlying delivery-ratio measurement.
	Probe probe.Config
	// AdvertiseInterval is how often a node floods a fresh LSA of its
	// inbound link estimates.
	AdvertiseInterval sim.Time
	// FloodJitter delays each rebroadcast by a uniform random amount, so
	// one advertisement does not trigger a synchronized burst.
	FloodJitter sim.Time
	// MinProb drops estimated links below this delivery ratio from the
	// advertisement (noise suppression).
	MinProb float64
}

// DefaultConfig returns a Roofnet-like setup.
func DefaultConfig() Config {
	return Config{
		Probe:             probe.DefaultConfig(),
		AdvertiseInterval: 5 * sim.Second,
		FloodJitter:       200 * sim.Millisecond,
		MinProb:           0.05,
	}
}

// Agent runs probing plus link-state flooding on one node.
type Agent struct {
	cfg    Config
	node   *sim.Node
	n      int // network size
	prober *probe.Prober

	seq        uint32
	pendingAdv []*packet.LSA // own advertisement awaiting transmission
	pendingFwd []*packet.LSA // LSAs to rebroadcast
	latestSeq  map[graph.NodeID]uint32
	db         map[graph.NodeID]*packet.LSA

	// version counts LSA database changes; View uses it to decide when a
	// cached topology and its route tables are stale.
	version uint64

	// FloodTx counts LSA transmissions (own + rebroadcasts).
	FloodTx int64
}

// NewAgent creates an agent for a network of n nodes.
func NewAgent(cfg Config, n int) *Agent {
	if cfg.AdvertiseInterval == 0 {
		cfg = DefaultConfig()
	}
	return &Agent{
		cfg:       cfg,
		n:         n,
		prober:    probe.NewProber(cfg.Probe),
		latestSeq: make(map[graph.NodeID]uint32),
		db:        make(map[graph.NodeID]*packet.LSA),
	}
}

// Init implements sim.Protocol.
func (a *Agent) Init(node *sim.Node) {
	a.node = node
	a.prober.Init(node)
	a.scheduleAdvertise()
}

func (a *Agent) scheduleAdvertise() {
	d := a.cfg.AdvertiseInterval
	if a.cfg.FloodJitter > 0 {
		d += sim.Time(a.node.Rand().Int63n(int64(a.cfg.FloodJitter)))
	}
	a.node.After(d, func() {
		a.advertise()
		a.scheduleAdvertise()
	})
}

// advertise queues a fresh LSA of this node's inbound link estimates.
func (a *Agent) advertise() {
	a.seq++
	lsa := &packet.LSA{Origin: a.node.ID(), Seq: a.seq}
	for i := 0; i < a.n; i++ {
		id := graph.NodeID(i)
		if id == a.node.ID() {
			continue
		}
		p := a.prober.DeliveryFrom(id)
		if p < a.cfg.MinProb {
			continue
		}
		lsa.Neighbors = append(lsa.Neighbors, id)
		lsa.Probs = append(lsa.Probs, packet.QuantizeProb(p))
	}
	a.accept(lsa)
	a.pendingAdv = append(a.pendingAdv, lsa)
	a.node.Wake()
}

// accept installs an LSA in the local database if it is new.
func (a *Agent) accept(l *packet.LSA) bool {
	if last, ok := a.latestSeq[l.Origin]; ok && l.Seq <= last {
		return false
	}
	a.latestSeq[l.Origin] = l.Seq
	a.db[l.Origin] = l
	a.version++
	return true
}

// Version counts LSA database changes (see View).
func (a *Agent) Version() uint64 { return a.version }

// Node returns the simulated node this agent runs on (nil before Init).
func (a *Agent) Node() *sim.Node { return a.node }

// ProbeTx returns how many probe broadcasts the underlying prober has sent.
func (a *Agent) ProbeTx() int64 { return a.prober.ProbeTx }

// Receive implements sim.Protocol.
func (a *Agent) Receive(f *sim.Frame) {
	switch m := f.Payload.(type) {
	case *packet.LSA:
		if a.accept(m) {
			// Rebroadcast after jitter.
			delay := sim.Time(1)
			if a.cfg.FloodJitter > 0 {
				delay = sim.Time(a.node.Rand().Int63n(int64(a.cfg.FloodJitter)))
			}
			a.node.After(delay, func() {
				// Only flood if still the freshest we know.
				if a.latestSeq[m.Origin] == m.Seq {
					a.pendingFwd = append(a.pendingFwd, m)
					a.node.Wake()
				}
			})
		}
	default:
		a.prober.Receive(f)
	}
}

// Pull implements sim.Protocol: own advertisements, then rebroadcasts,
// then probes.
func (a *Agent) Pull() *sim.Frame {
	if len(a.pendingAdv) > 0 {
		l := a.pendingAdv[0]
		a.pendingAdv = a.pendingAdv[1:]
		a.FloodTx++
		return &sim.Frame{From: a.node.ID(), To: graph.Broadcast, Bytes: l.EncodedSize(), Payload: l}
	}
	if len(a.pendingFwd) > 0 {
		l := a.pendingFwd[0]
		a.pendingFwd = a.pendingFwd[1:]
		a.FloodTx++
		return &sim.Frame{From: a.node.ID(), To: graph.Broadcast, Bytes: l.EncodedSize(), Payload: l}
	}
	return a.prober.Pull()
}

// Sent implements sim.Protocol.
func (a *Agent) Sent(f *sim.Frame, ok bool) {
	if len(a.pendingAdv) > 0 || len(a.pendingFwd) > 0 {
		a.node.Wake()
	}
}

// KnownOrigins returns how many nodes' LSAs this agent holds (including
// its own).
func (a *Agent) KnownOrigins() int { return len(a.db) }

// Topology reconstructs this node's local view of the loss-annotated
// network graph from its LSA database. Unknown links are 0.
func (a *Agent) Topology() *graph.Topology {
	t := graph.New(a.n)
	for origin, lsa := range a.db {
		for i, nb := range lsa.Neighbors {
			// LSA reports delivery of nb -> origin.
			t.SetDirected(nb, origin, packet.UnquantizeProb(lsa.Probs[i]))
		}
	}
	return t
}

// Run floods a whole network for duration and returns the agents, one per
// node — the simulated analogue of letting Roofnet's link-state layer
// converge before starting an experiment.
func Run(topo *graph.Topology, cfg Config, simCfg sim.Config, duration sim.Time) []*Agent {
	s := sim.New(topo, simCfg)
	agents := make([]*Agent, topo.N())
	for i := range agents {
		agents[i] = NewAgent(cfg, topo.N())
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(duration)
	return agents
}
