package linkstate

import (
	"math"
	"testing"

	"repro/internal/packet"
)

func TestSerialNewer(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{5, 5, false},
		{math.MaxUint32, math.MaxUint32 - 1, true},
		{0, math.MaxUint32, true},          // the wrap boundary
		{math.MaxUint32, 0, false},         // and its mirror
		{100, math.MaxUint32 - 100, true},  // shortly after wrap
		{math.MaxUint32 - 100, 100, false}, // stale pre-wrap replay
		{1 << 31, 0, false},                // exactly half the space: ambiguous, reject
		{(1 << 31) - 1, 0, true},           // just under half: newer
	}
	for _, c := range cases {
		if got := serialNewer(c.a, c.b); got != c.want {
			t.Errorf("serialNewer(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAcceptSurvivesSequenceWraparound(t *testing.T) {
	// An origin whose uint32 sequence wraps (crash loop, or a soak long
	// enough to pass 2³²) must keep getting its LSAs installed; the old
	// plain <= comparison wedged the origin forever.
	a := NewAgent(DefaultConfig(), 4)
	pre := &packet.LSA{Origin: 1, Seq: math.MaxUint32}
	if !a.accept(pre) {
		t.Fatal("first LSA at MaxUint32 rejected")
	}
	wrapped := &packet.LSA{Origin: 1, Seq: 0}
	if !a.accept(wrapped) {
		t.Fatal("post-wrap LSA (seq 0 after MaxUint32) rejected: origin wedged")
	}
	next := &packet.LSA{Origin: 1, Seq: 1}
	if !a.accept(next) {
		t.Fatal("LSA after the wrap rejected")
	}
	if a.accept(pre) {
		t.Fatal("stale pre-wrap replay accepted")
	}
	if a.accept(&packet.LSA{Origin: 1, Seq: 1}) {
		t.Fatal("duplicate sequence accepted")
	}
	if got := a.latestSeq[1]; got != 1 {
		t.Fatalf("latestSeq = %d, want 1", got)
	}
}
