package linkstate

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/probe"
	"repro/internal/routing"
	"repro/internal/sim"
)

func TestFloodConvergesOnChain(t *testing.T) {
	// A 4-hop chain: LSAs must reach every node even though no node hears
	// everyone directly.
	topo := graph.Line(5, 0.9, 10)
	cfg := DefaultConfig()
	cfg.Probe.Window = 20
	agents := Run(topo, cfg, sim.DefaultConfig(), 60*sim.Second)
	for i, a := range agents {
		if a.KnownOrigins() != 5 {
			t.Fatalf("node %d knows %d/5 origins", i, a.KnownOrigins())
		}
	}
}

func TestLocalTopologyUsableForRouting(t *testing.T) {
	// The pipeline end to end: probe + flood, then every node computes an
	// ETX route locally from its own database; the routes must agree with
	// the ground-truth route and with each other.
	truth := graph.Line(5, 0.85, 10)
	cfg := DefaultConfig()
	cfg.Probe.Window = 30
	simCfg := sim.DefaultConfig()
	agents := Run(truth, cfg, simCfg, 90*sim.Second)

	want := routing.ETXToDestination(truth, 4, routing.ETXOptions{Threshold: 0.2, AckAware: true}).Path(0)
	for i, a := range agents {
		local := a.Topology()
		tab := routing.ETXToDestination(local, 4, routing.ETXOptions{Threshold: 0.2, AckAware: true})
		got := tab.Path(0)
		if len(got) != len(want) {
			t.Fatalf("node %d computed route %v, ground truth %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("node %d computed route %v, ground truth %v", i, got, want)
			}
		}
	}
}

func TestLocalEstimatesCloseToTruth(t *testing.T) {
	truth := graph.Line(4, 0.7, 10)
	cfg := DefaultConfig()
	cfg.Probe.Window = 40
	agents := Run(truth, cfg, sim.DefaultConfig(), 120*sim.Second)
	est := agents[0].Topology()
	meanErr, _ := probe.MatrixError(truth, est, 0.2)
	if meanErr > 0.15 {
		t.Fatalf("node 0's database strays %.3f from ground truth", meanErr)
	}
	// Symmetric check from the other end of the chain.
	est3 := agents[3].Topology()
	if math.Abs(est.Prob(0, 1)-est3.Prob(0, 1)) > 0.25 {
		t.Fatalf("databases diverge: %.2f vs %.2f for link 0->1",
			est.Prob(0, 1), est3.Prob(0, 1))
	}
}

func TestSequenceNumbersSuppressStaleLSAs(t *testing.T) {
	a := NewAgent(DefaultConfig(), 4)
	lsaOf := func(origin graph.NodeID, seq uint32) *packet.LSA {
		return &packet.LSA{Origin: origin, Seq: seq}
	}
	if !a.accept(lsaOf(3, 5)) {
		t.Fatal("first LSA rejected")
	}
	if a.accept(lsaOf(3, 4)) {
		t.Fatal("stale LSA accepted")
	}
	if a.accept(lsaOf(3, 5)) {
		t.Fatal("duplicate LSA accepted")
	}
	if !a.accept(lsaOf(3, 6)) {
		t.Fatal("newer LSA rejected")
	}
}
