package linkstate

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/sim"
)

// mkAgent returns an agent attached to a 1-node simulation (so it has a
// clock at t=0) with aging enabled.
func mkAgent(n int) *Agent {
	cfg := DefaultConfig()
	cfg.MaxAge = 10 * sim.Second
	a := NewAgent(cfg, n)
	s := sim.New(graph.New(1), sim.DefaultConfig())
	s.Attach(0, a)
	return a
}

// install populates the database in the given origin order, marking odd
// origins stale (past MaxAge at now=0).
func install(a *Agent, order []graph.NodeID) {
	for _, origin := range order {
		lsa := &packet.LSA{Origin: origin, Seq: uint32(origin) + 1}
		for nb := graph.NodeID(0); nb < 3; nb++ {
			if nb == origin {
				continue
			}
			lsa.Neighbors = append(lsa.Neighbors, nb)
			lsa.Probs = append(lsa.Probs, uint8(37*int(origin)+int(nb)))
		}
		a.accept(lsa)
		if origin%2 == 1 {
			a.receivedAt[origin] = -11 * sim.Second // stale: expired at now=0
		}
	}
}

// TestExpireAndTopologyAreOrderIndependent: expire() deletes during map
// iteration and Topology() rebuilds from map iteration — Go randomizes both
// orders, so every observable (database contents, counters, version, the
// rebuilt graph) must come out identical regardless of insertion order and
// across repeated runs. The srcr map-iteration bug of PR 5 has siblings;
// this pins the two in linkstate.
func TestExpireAndTopologyAreOrderIndependent(t *testing.T) {
	const n = 24
	forward := make([]graph.NodeID, n)
	reverse := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		forward[i] = graph.NodeID(i)
		reverse[i] = graph.NodeID(n - 1 - i)
	}
	// Repeat to stress map-iteration randomization.
	for trial := 0; trial < 8; trial++ {
		a := mkAgent(n)
		b := mkAgent(n)
		install(a, forward)
		install(b, reverse)
		va, vb := a.version, b.version
		a.expire()
		b.expire()
		if a.ExpiredLSAs != b.ExpiredLSAs {
			t.Fatalf("expiry count diverged: %d vs %d", a.ExpiredLSAs, b.ExpiredLSAs)
		}
		if a.version-va != b.version-vb {
			t.Fatalf("version delta diverged: %d vs %d", a.version-va, b.version-vb)
		}
		if len(a.db) != len(b.db) {
			t.Fatalf("database size diverged: %d vs %d", len(a.db), len(b.db))
		}
		for origin := range a.db {
			if _, ok := b.db[origin]; !ok {
				t.Fatalf("origin %d survived in one database only", origin)
			}
		}
		// The rebuilt topologies must be identical link for link.
		ta, tb := a.Topology(), b.Topology()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pa := ta.Prob(graph.NodeID(i), graph.NodeID(j))
				pb := tb.Prob(graph.NodeID(i), graph.NodeID(j))
				if pa != pb {
					t.Fatalf("rebuilt topology diverged at %d->%d: %v vs %v", i, j, pa, pb)
				}
			}
		}
	}
}
