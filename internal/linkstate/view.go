package linkstate

import (
	"math"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

// View is one node's learned routing state: the flow.RoutingState built
// from that node's LSA database instead of the global oracle. It is the
// "each node can then build the network graph annotated with the link loss
// probabilities" step of §3.2.1(b), made consumable by MORE's plan
// construction, ExOR's priority lists, and Srcr's path selection.
//
// Rebuilding the graph and its route tables on every received LSA would be
// wasteful (floods arrive in bursts) and would churn routes mid-batch, so
// the view recomputes lazily and at most once per MinRecompute of simulated
// time: a query first checks whether the agent's database moved since the
// last build and whether the recompute holdoff has elapsed, and only then
// pays for a rebuild. Version exposes the build generation — protocol
// sources compare it between batches to decide whether to refresh their
// forwarder plans (periodic recomputation as estimates drift).
type View struct {
	agent *Agent
	opt   routing.ETXOptions

	// MinRecompute rate-limits topology/table rebuilds (simulated time).
	minRecompute sim.Time

	topo    *graph.Topology
	tables  map[graph.NodeID]*routing.ETXTable
	version uint64 // agent version the cache was built from
	builtAt sim.Time
	builds  int64
}

// NewView wraps an agent in a RoutingState. opt configures ETX path
// selection over the learned graph; minRecompute rate-limits rebuilds (zero
// recomputes on every database change).
func NewView(a *Agent, opt routing.ETXOptions, minRecompute sim.Time) *View {
	return &View{agent: a, opt: opt, minRecompute: minRecompute}
}

// refresh rebuilds the cached topology and drops stale route tables when
// the agent's LSA database has changed and the holdoff has elapsed.
func (v *View) refresh() {
	if v.topo != nil && v.agent.version == v.version {
		return
	}
	now := sim.Time(0)
	if n := v.agent.Node(); n != nil {
		now = n.Now()
	}
	if v.topo != nil && now-v.builtAt < v.minRecompute {
		return // holdoff: serve the previous build
	}
	v.topo = v.agent.Topology()
	v.tables = make(map[graph.NodeID]*routing.ETXTable)
	v.version = v.agent.version
	v.builtAt = now
	v.builds++
}

// Graph implements flow.RoutingState.
func (v *View) Graph() *graph.Topology {
	v.refresh()
	return v.topo
}

// Version implements flow.RoutingState: the build generation, which only
// advances when a query actually recomputed the view.
func (v *View) Version() uint64 {
	v.refresh()
	return v.version
}

// Builds returns how many times the view recomputed its topology.
func (v *View) Builds() int64 { return v.builds }

func (v *View) table(dst graph.NodeID) *routing.ETXTable {
	v.refresh()
	tab, ok := v.tables[dst]
	if !ok {
		tab = routing.ETXToDestination(v.topo, dst, v.opt)
		v.tables[dst] = tab
	}
	return tab
}

// NextHop implements flow.RoutingState over the learned graph.
func (v *View) NextHop(cur, dst graph.NodeID) graph.NodeID {
	if cur == dst {
		return -1
	}
	return v.table(dst).Next[cur]
}

// Path implements flow.RoutingState over the learned graph.
func (v *View) Path(src, dst graph.NodeID) []graph.NodeID {
	return v.table(dst).Path(src)
}

// ETXError compares this view's learned ETX distances toward dst against
// the distances an oracle computes over the ground-truth topology: the mean
// and max absolute relative error over nodes the oracle can reach. Nodes
// the learned view believes unreachable while the oracle does not (or vice
// versa) count as disagreements.
func (v *View) ETXError(truth *graph.Topology, dst graph.NodeID) (meanRel, maxRel float64, disagree int) {
	want := routing.ETXToDestination(truth, dst, v.opt)
	got := v.table(dst)
	count := 0
	for i := range want.Dist {
		if graph.NodeID(i) == dst {
			continue
		}
		wInf, gInf := math.IsInf(want.Dist[i], 1), math.IsInf(got.Dist[i], 1)
		if wInf || gInf {
			if wInf != gInf {
				disagree++
			}
			continue
		}
		rel := math.Abs(got.Dist[i]-want.Dist[i]) / want.Dist[i]
		meanRel += rel
		if rel > maxRel {
			maxRel = rel
		}
		count++
	}
	if count > 0 {
		meanRel /= float64(count)
	}
	return meanRel, maxRel, disagree
}
