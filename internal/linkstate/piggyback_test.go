package linkstate

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// chatter is a minimal data layer: it broadcasts a 1500-byte frame every
// 100 ms, the traffic pending LSAs hitch rides on.
type chatter struct {
	node    *sim.Node
	pending int
	TxCount int
}

func (c *chatter) Init(n *sim.Node) {
	c.node = n
	c.tick()
}

func (c *chatter) tick() {
	// Jittered like any real traffic source, or the three nodes transmit in
	// lockstep and collide at the middle of the chain forever.
	d := 100*sim.Millisecond + sim.Time(c.node.Rand().Int63n(int64(50*sim.Millisecond)))
	c.node.After(d, func() {
		c.pending++
		c.node.Wake()
		c.tick()
	})
}

func (c *chatter) Receive(f *sim.Frame) {}

func (c *chatter) Pull() *sim.Frame {
	if c.pending == 0 {
		return nil
	}
	c.pending--
	c.TxCount++
	return &sim.Frame{From: c.node.ID(), To: graph.Broadcast, Bytes: 1500, FlowID: 1}
}

func (c *chatter) Sent(f *sim.Frame, ok bool) {}

// TestPiggybackRidesDataFrames: with steady broadcast data traffic and a
// long ride deadline, the whole link-state exchange rides data frames — the
// network converges with almost no dedicated flood transmissions.
func TestPiggybackRidesDataFrames(t *testing.T) {
	topo := graph.Line(3, 0.95, 10)
	s := sim.New(topo, sim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.AdvertiseInterval = 2 * sim.Second
	cfg.Piggyback = true
	cfg.PiggybackDelay = 10 * sim.Second
	agents := make([]*Agent, 3)
	for i := range agents {
		agents[i] = NewAgent(cfg, 3)
		s.Attach(graph.NodeID(i), sim.NewStack(agents[i], &chatter{}))
	}
	s.Run(30 * sim.Second)

	var piggy, flood int64
	for i, a := range agents {
		if a.KnownOrigins() != 3 {
			t.Fatalf("node %d knows %d/3 origins: piggybacked LSAs not delivered", i, a.KnownOrigins())
		}
		piggy += a.PiggyTx
		flood += a.FloodTx
	}
	if piggy == 0 {
		t.Fatal("no LSA ever rode a data frame")
	}
	if flood >= piggy {
		t.Errorf("dedicated floods (%d) should be rare next to rides (%d)", flood, piggy)
	}
}

// TestPiggybackFallsBackToDedicatedFlood: with no data traffic at all, the
// ride deadline expires and the agent floods anyway — piggybacking is an
// optimization, never a liveness hazard.
func TestPiggybackFallsBackToDedicatedFlood(t *testing.T) {
	topo := graph.Line(3, 0.95, 10)
	s := sim.New(topo, sim.DefaultConfig())
	cfg := DefaultConfig()
	cfg.AdvertiseInterval = 2 * sim.Second
	cfg.Piggyback = true
	cfg.PiggybackDelay = 1 * sim.Second
	agents := make([]*Agent, 3)
	for i := range agents {
		agents[i] = NewAgent(cfg, 3)
		s.Attach(graph.NodeID(i), agents[i]) // no data layer: nothing to ride
	}
	s.Run(30 * sim.Second)
	var flood int64
	for i, a := range agents {
		if a.KnownOrigins() != 3 {
			t.Fatalf("node %d knows %d/3 origins without data traffic", i, a.KnownOrigins())
		}
		flood += a.FloodTx
	}
	if flood == 0 {
		t.Fatal("deadline fallback never flooded")
	}
}
