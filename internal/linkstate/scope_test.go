package linkstate

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// scopeConfig is a fast fisheye setup: 2 s advertisements, a 1-hop inner
// ring, and a network-wide summary every 16 s.
func scopeConfig() Config {
	cfg := DefaultConfig()
	cfg.AdvertiseInterval = 2 * sim.Second
	cfg.ScopeRings = []int{1}
	cfg.SummaryInterval = 16 * sim.Second
	return cfg
}

// TestScopeTTLCadence pins the fisheye schedule: the first flood and every
// SummaryInterval thereafter go out unscoped (TTL 0), the ticks between
// follow the geometric ring cadence — the innermost ring on every odd tick,
// each outer ring half as often as the one inside it.
func TestScopeTTLCadence(t *testing.T) {
	a := NewAgent(Config{
		AdvertiseInterval: 2 * sim.Second,
		ScopeRings:        []int{2, 8},
		SummaryInterval:   100 * sim.Second,
	}, 4)
	if got := a.scopeTTL(0); got != 0 {
		t.Fatalf("first flood TTL = %d, want 0 (bootstrap summary)", got)
	}
	var seq []uint8
	for now := sim.Time(2 * sim.Second); now < 30*sim.Second; now += 2 * sim.Second {
		a.advTick++
		seq = append(seq, a.scopeTTL(now))
	}
	// advTick runs 1,2,3,...: odd ticks pick ring 0 (radius 2), even ticks
	// ring 1 (radius 8) — two rings, so every even tick saturates at the
	// outermost.
	want := []uint8{2, 8, 2, 8, 2, 8, 2, 8, 2, 8, 2, 8, 2, 8}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("cadence %v, want %v", seq, want)
		}
	}
	// Past SummaryInterval the next tick must be another unscoped summary.
	if got := a.scopeTTL(101 * sim.Second); got != 0 {
		t.Fatalf("TTL after SummaryInterval = %d, want 0", got)
	}
}

func TestScopeTTLDisabledIsAlwaysUnscoped(t *testing.T) {
	a := NewAgent(DefaultConfig(), 4)
	for tick := 0; tick < 10; tick++ {
		a.advTick++
		if got := a.scopeTTL(sim.Time(tick) * sim.Second); got != 0 {
			t.Fatalf("scoping disabled but TTL = %d at tick %d", got, tick)
		}
	}
}

// TestScopedFloodDiesAtRingBoundary runs the fisheye end to end on a chain:
// with a 1-hop inner ring, a node's triggered updates reach its direct
// neighbor at full rate while a node 3 hops away advances only on the slow
// network-wide summaries — and the TTL decrement happens on a copy, so the
// shared broadcast payload is never mutated.
func TestScopedFloodDiesAtRingBoundary(t *testing.T) {
	topo := graph.Line(4, 0.95, 10)
	s := sim.New(topo, sim.DefaultConfig())
	agents := make([]*Agent, 4)
	for i := range agents {
		agents[i] = NewAgent(scopeConfig(), 4)
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(60 * sim.Second)

	// The bootstrap summary floods everywhere: every node must know every
	// origin despite scoping.
	for i, a := range agents {
		if a.KnownOrigins() != 4 {
			t.Fatalf("node %d knows %d/4 origins", i, a.KnownOrigins())
		}
	}
	// latestSeq holds sequence values, so the lag behind the origin's own
	// sequence measures staleness in advertise ticks: the 1-hop neighbor
	// tracks every update while the 3-hop node last heard a summary — up
	// to 8 ticks (16 s) ago.
	near := agents[1].latestSeq[0] // 1 hop from origin 0: full rate
	far := agents[3].latestSeq[0]  // 3 hops: summaries only (~every 16 s)
	own := agents[0].latestSeq[0]  // the origin's own sequence
	if own-near > 2 {
		t.Errorf("inner ring lags the origin: near=%d own=%d", near, own)
	}
	if far >= near {
		t.Errorf("scoping had no effect: far=%d near=%d", far, near)
	}
	if far < 2 {
		t.Errorf("far node frozen: summaries never refreshed it (far=%d)", far)
	}

	// The cost side of the trade: the same chain without scoping must spend
	// substantially more flood transmissions (every LSA forwarded by every
	// node instead of dying at the 1-hop ring).
	var scoped int64
	for _, a := range agents {
		scoped += a.FloodTx
	}
	topo2 := graph.Line(4, 0.95, 10)
	s2 := sim.New(topo2, sim.DefaultConfig())
	flat := make([]*Agent, 4)
	cfg := scopeConfig()
	cfg.ScopeRings = nil
	for i := range flat {
		flat[i] = NewAgent(cfg, 4)
		s2.Attach(graph.NodeID(i), flat[i])
	}
	s2.Run(60 * sim.Second)
	var unscoped int64
	for _, a := range flat {
		unscoped += a.FloodTx
	}
	if scoped*3 >= unscoped*2 {
		t.Errorf("scoped floods cost %d tx vs %d unscoped: expected ≥33%% savings", scoped, unscoped)
	}
}

// TestSummaryBypassesDamping: on a link whose estimates have settled,
// damping suppresses every ring tick — but the periodic network-wide
// summary must still go out, because under scoping it is the only refresh
// distant regions ever see. MaxQuiet is set far past the horizon so the
// summary cadence is the only escape from the damper.
func TestSummaryBypassesDamping(t *testing.T) {
	topo := graph.Line(2, 1.0, 10)
	s := sim.New(topo, sim.DefaultConfig())
	cfg := scopeConfig()
	cfg.SummaryInterval = 6 * sim.Second
	cfg.TriggerDelta = 0.2
	cfg.MaxQuiet = 1000 * sim.Second
	agents := []*Agent{NewAgent(cfg, 2), NewAgent(cfg, 2)}
	for i := range agents {
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(62 * sim.Second)

	// Perfect links settle fast, so the damper engages on ring ticks...
	if agents[0].SuppressedAdv == 0 {
		t.Fatal("damping never engaged: the test exercises nothing")
	}
	// ...yet the peer keeps hearing fresh sequence numbers at roughly the
	// summary cadence. 62 s / 6 s ≥ 9 summaries (bootstrap included); without
	// the bypass the origin's sequence freezes once estimates settle (~5).
	if got := agents[1].latestSeq[0]; got < 8 {
		t.Errorf("peer saw seq %d from origin 0: summaries starved by damping", got)
	}
}

// TestScopedForwardDecrementsCopy drives one scoped LSA through a 3-chain
// and checks the hop-by-hop TTLs: the first hop holds the radius as sent,
// the second holds radius-1, and the boundary node does not re-flood.
func TestScopedForwardDecrementsCopy(t *testing.T) {
	topo := graph.Line(3, 1.0, 10)
	s := sim.New(topo, sim.DefaultConfig())
	cfg := scopeConfig()
	cfg.SummaryInterval = 1000 * sim.Second // bootstrap summary only
	cfg.ScopeRings = []int{2}               // every scoped flood covers the whole chain
	agents := make([]*Agent, 3)
	for i := range agents {
		agents[i] = NewAgent(cfg, 3)
		s.Attach(graph.NodeID(i), agents[i])
	}
	s.Run(30 * sim.Second)
	a1, a2 := agents[1].db[0], agents[2].db[0]
	if a1 == nil || a2 == nil {
		t.Fatal("scoped floods did not cover the chain")
	}
	if a1.TTL != 2 {
		t.Errorf("hop-1 TTL = %d, want 2 (as sent)", a1.TTL)
	}
	if a2.TTL != 1 {
		t.Errorf("hop-2 TTL = %d, want 1 (decremented on a copy)", a2.TTL)
	}
	// The origin's own database entry must still hold the TTL it sent:
	// forwarding mutated a copy, not the shared payload.
	if own := agents[0].db[0]; own.TTL != 2 {
		t.Errorf("origin's own entry TTL = %d, want 2 (shared payload mutated?)", own.TTL)
	}
}
