// Package flow holds the pieces shared by all three protocols under test:
// deterministic file workloads, transfer results, and the link-state oracle
// that stands in for the ETX measurement + dissemination machinery the paper
// runs before each experiment (§4.1.2).
package flow

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

// ID identifies a flow end to end.
type ID uint32

// File is a deterministic pseudorandom workload split into packets.
type File struct {
	Seed    int64
	Bytes   int
	PktSize int
}

// NewFile describes a file of the given size carried in pktSize-byte
// packets (the paper transfers 5 MB files in 1500 B packets).
func NewFile(bytes, pktSize int, seed int64) File {
	return File{Seed: seed, Bytes: bytes, PktSize: pktSize}
}

// NumPackets returns the number of packets the file splits into.
func (f File) NumPackets() int {
	return (f.Bytes + f.PktSize - 1) / f.PktSize
}

// TailSize returns the size of the final packet's payload: PktSize for an
// aligned file, the remainder otherwise.
func (f File) TailSize() int {
	if rem := f.Bytes % f.PktSize; rem != 0 {
		return rem
	}
	return f.PktSize
}

// Payloads materializes the packet payloads. Every call returns identical
// contents, so receivers can verify byte-exact delivery. The payloads carry
// exactly Bytes bytes in total: when Bytes is not a multiple of PktSize the
// final payload is truncated to the remainder, never padded — so byte-based
// delivery accounting and content verification see the real file, not a
// rounded-up one. (Protocols that need fixed-size symbols — MORE's network
// coding — pad internally on the wire and strip the padding at delivery.)
func (f File) Payloads() [][]byte {
	rng := rand.New(rand.NewSource(f.Seed))
	n := f.NumPackets()
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, f.PktSize)
		rng.Read(out[i])
	}
	if n > 0 {
		out[n-1] = out[n-1][:f.TailSize()]
	}
	return out
}

// VerifyPayload checks a delivered payload against the expected one. got
// may carry trailing wire padding (fixed-size coded symbols); it matches
// when it is at least as long as want and starts with want's bytes.
func VerifyPayload(got, want []byte) bool {
	return len(got) >= len(want) && bytes.Equal(got[:len(want)], want)
}

// Result reports a transfer's outcome, common to MORE, ExOR, and Srcr runs.
type Result struct {
	Src, Dst graph.NodeID
	// PacketsDelivered counts native packets handed to the destination's
	// upper layer.
	PacketsDelivered int
	// PacketsTotal is the number of packets in the workload.
	PacketsTotal int
	// Completed reports whether the whole file arrived.
	Completed bool
	// Start and End bound the transfer (End is delivery of the last
	// packet, or the run deadline for incomplete transfers).
	Start, End sim.Time
	// Transmissions counts data-frame transmissions attributable to the
	// run (including MAC retries).
	Transmissions int64
	// Verified reports whether delivered payload bytes matched the file.
	Verified bool
}

// Duration returns the transfer's elapsed time.
func (r Result) Duration() sim.Time {
	if r.End <= r.Start {
		return 0
	}
	return r.End - r.Start
}

// Throughput returns delivered packets per second, the paper's throughput
// unit (Figures 4-2 … 4-7).
func (r Result) Throughput() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.PacketsDelivered) / d
}

// TxPerPacket returns data transmissions per delivered packet, the cost
// measure of Chapter 5.
func (r Result) TxPerPacket() float64 {
	if r.PacketsDelivered == 0 {
		return 0
	}
	return float64(r.Transmissions) / float64(r.PacketsDelivered)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("flow %d->%d: %d/%d pkts in %v (%.1f pkt/s, %.2f tx/pkt, completed=%v)",
		r.Src, r.Dst, r.PacketsDelivered, r.PacketsTotal, r.Duration(),
		r.Throughput(), r.TxPerPacket(), r.Completed)
}

// RoutingState is the link-state view a protocol instance routes from: the
// loss-annotated topology it builds forwarder plans over, plus the cached
// shortest-path queries used for ACK routing and source routes. Two
// implementations exist. Oracle (below) is the global ground-truth table the
// paper's §4.1.2 pre-measurement step stands in for: one shared instance,
// perfect knowledge, Version forever 0. linkstate.View is the deployable
// alternative of §3.2.1(b): one instance per node, built solely from probes
// and LSA floods received over the air, re-converging as estimates drift —
// Version ticks on every recomputation so protocols know to refresh plans.
type RoutingState interface {
	// Graph returns the loss-annotated topology this view currently
	// believes in. Callers must treat it as read-only; implementations may
	// return a shared or cached instance.
	Graph() *graph.Topology
	// NextHop returns the best ETX next hop from cur toward dst, or -1
	// when dst is unreachable in this view (or cur == dst).
	NextHop(cur, dst graph.NodeID) graph.NodeID
	// Path returns the best ETX path from src to dst (inclusive), or nil.
	Path(src, dst graph.NodeID) []graph.NodeID
	// Version identifies the state generation. It increases whenever the
	// view's topology changes; a constant 0 marks a static view. Sources
	// compare it between batches to decide whether to rebuild their
	// forwarding plans.
	Version() uint64
}

// Oracle is the shared link-state view every node routes from. The paper
// measures pairwise delivery probabilities once and feeds the same values
// to Srcr, MORE, and ExOR; Oracle plays that role and caches the
// shortest-path tables protocols use for ACK routing and path selection.
// It implements RoutingState with perfect global knowledge and Version 0.
type Oracle struct {
	Topo *graph.Topology
	Opt  routing.ETXOptions

	tables  map[graph.NodeID]*routing.ETXTable
	version uint64
}

// NewOracle builds an oracle over the topology with the given ETX options.
func NewOracle(t *graph.Topology, opt routing.ETXOptions) *Oracle {
	return &Oracle{Topo: t, Opt: opt, tables: make(map[graph.NodeID]*routing.ETXTable)}
}

// Graph implements RoutingState: the ground-truth topology.
func (o *Oracle) Graph() *graph.Topology { return o.Topo }

// Version implements RoutingState. It stays 0 — the static perfect-oracle
// case — until Invalidate is called after a topology mutation.
func (o *Oracle) Version() uint64 { return o.version }

// Invalidate discards the cached shortest-path tables and bumps the state
// version, so protocols rebuild plans and routes at their next boundary.
// Scenario schedules call it after mutating the ground-truth topology
// mid-run (link degradation, node failure): the oracle abstraction is
// "everyone instantly knows the truth", so the truth changing must reach
// every consumer.
func (o *Oracle) Invalidate() {
	o.tables = make(map[graph.NodeID]*routing.ETXTable)
	o.version++
}

// Table returns (computing on first use) the ETX table toward dst.
func (o *Oracle) Table(dst graph.NodeID) *routing.ETXTable {
	tab, ok := o.tables[dst]
	if !ok {
		tab = routing.ETXToDestination(o.Topo, dst, o.Opt)
		o.tables[dst] = tab
	}
	return tab
}

// NextHop returns the best next hop from cur toward dst, or -1 if
// unreachable (or cur == dst).
func (o *Oracle) NextHop(cur, dst graph.NodeID) graph.NodeID {
	if cur == dst {
		return -1
	}
	return o.Table(dst).Next[cur]
}

// Path returns the best ETX path from src to dst.
func (o *Oracle) Path(src, dst graph.NodeID) []graph.NodeID {
	return o.Table(dst).Path(src)
}
