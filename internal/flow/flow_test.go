package flow

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func TestFilePayloadsDeterministic(t *testing.T) {
	f := NewFile(10*100, 100, 7)
	a := f.Payloads()
	b := f.Payloads()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("packet counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("payload %d differs between calls", i)
		}
		if len(a[i]) != 100 {
			t.Fatalf("payload %d has size %d", i, len(a[i]))
		}
	}
	other := NewFile(10*100, 100, 8).Payloads()
	if bytes.Equal(a[0], other[0]) {
		t.Fatal("different seeds produced identical payloads")
	}
}

func TestFileNumPacketsRoundsUp(t *testing.T) {
	if got := NewFile(1501, 1500, 1).NumPackets(); got != 2 {
		t.Fatalf("1501 bytes = %d packets, want 2", got)
	}
	if got := NewFile(1500, 1500, 1).NumPackets(); got != 1 {
		t.Fatalf("1500 bytes = %d packets, want 1", got)
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{
		Src: 1, Dst: 2,
		PacketsDelivered: 100,
		PacketsTotal:     100,
		Completed:        true,
		Start:            sim.Second,
		End:              3 * sim.Second,
		Transmissions:    250,
		Verified:         true,
	}
	if got := r.Throughput(); got != 50 {
		t.Fatalf("throughput = %v, want 50", got)
	}
	if got := r.TxPerPacket(); got != 2.5 {
		t.Fatalf("tx/pkt = %v", got)
	}
	if r.Duration() != 2*sim.Second {
		t.Fatalf("duration = %v", r.Duration())
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
	var zero Result
	if zero.Throughput() != 0 || zero.TxPerPacket() != 0 || zero.Duration() != 0 {
		t.Fatal("zero result should report zero metrics")
	}
}

func TestOracle(t *testing.T) {
	topo := graph.New(4)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	topo.SetLink(2, 3, 0.9)
	o := NewOracle(topo, routing.ETXOptions{Threshold: 0.1, AckAware: false})
	if got := o.NextHop(0, 3); got != 1 {
		t.Fatalf("NextHop(0,3) = %v", got)
	}
	if got := o.NextHop(3, 3); got != -1 {
		t.Fatalf("NextHop to self = %v", got)
	}
	path := o.Path(0, 3)
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Fatalf("path = %v", path)
	}
	// Table caching: same pointer on second call.
	if o.Table(3) != o.Table(3) {
		t.Fatal("tables not cached")
	}
}

func TestFileUnalignedTailTruncated(t *testing.T) {
	// 1000 B in 300 B packets: 4 packets, final one carries 100 B. The old
	// behaviour padded it to 300 B, so byte accounting overcounted and
	// delivered-content verification compared against padding.
	f := NewFile(1000, 300, 7)
	if got := f.NumPackets(); got != 4 {
		t.Fatalf("NumPackets = %d, want 4", got)
	}
	if got := f.TailSize(); got != 100 {
		t.Fatalf("TailSize = %d, want 100", got)
	}
	ps := f.Payloads()
	total := 0
	for _, p := range ps {
		total += len(p)
	}
	if total != 1000 {
		t.Fatalf("payloads carry %d bytes, want exactly 1000", total)
	}
	if len(ps[3]) != 100 {
		t.Fatalf("tail payload has %d bytes, want 100", len(ps[3]))
	}
	// Aligned files still produce full-size tails.
	if a := NewFile(900, 300, 7); len(a.Payloads()[2]) != 300 || a.TailSize() != 300 {
		t.Fatal("aligned file must not be truncated")
	}
	// Truncation is a prefix, not a different draw: first packets unchanged.
	long := NewFile(1200, 300, 7).Payloads()
	for i := 0; i < 3; i++ {
		if !VerifyPayload(long[i], ps[i]) {
			t.Fatalf("packet %d differs between aligned and unaligned draws", i)
		}
	}
}

func TestVerifyPayload(t *testing.T) {
	want := []byte{1, 2, 3}
	if !VerifyPayload([]byte{1, 2, 3}, want) {
		t.Fatal("exact match rejected")
	}
	if !VerifyPayload([]byte{1, 2, 3, 0, 0}, want) {
		t.Fatal("padded match rejected")
	}
	if VerifyPayload([]byte{1, 2}, want) {
		t.Fatal("short payload accepted")
	}
	if VerifyPayload([]byte{1, 2, 9}, want) {
		t.Fatal("corrupt payload accepted")
	}
}
