package flow

import (
	"fmt"

	"repro/internal/sim"
)

// Traffic models. The paper's workload is pull-based file transfer: the
// source is backlogged and the MAC's transmission opportunities pace it, so
// queues below backpressure instead of overflowing. Push models generate
// packets on a clock with no backpressure — the UDP-like constant-rate and
// on/off sources that exercise bounded queues and AQM drop policies as
// designed (and that congestion-control comparisons need as the
// unresponsive side of a mixed workload).

// TrafficModel selects how a flow's source generates packets.
type TrafficModel int

const (
	// PullFile is the paper's workload: a backlogged file transfer paced by
	// the MAC (and the protocol's own batching/ARQ).
	PullFile TrafficModel = iota
	// PushCBR generates packets at a constant rate, timer-driven, with no
	// backpressure.
	PushCBR
	// PushOnOff alternates fixed on/off periods; during on periods it
	// generates at the configured rate, during off periods it is silent.
	PushOnOff
)

func (m TrafficModel) String() string {
	switch m {
	case PullFile:
		return "file"
	case PushCBR:
		return "cbr"
	case PushOnOff:
		return "onoff"
	default:
		return fmt.Sprintf("TrafficModel(%d)", int(m))
	}
}

// MarshalText renders the model name for -json output.
func (m TrafficModel) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses the MarshalText form back (JSON round trips).
func (m *TrafficModel) UnmarshalText(text []byte) error {
	v, err := ParseTrafficModel(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseTrafficModel parses a traffic-model name.
func ParseTrafficModel(s string) (TrafficModel, error) {
	switch s {
	case "", "file":
		return PullFile, nil
	case "cbr":
		return PushCBR, nil
	case "onoff":
		return PushOnOff, nil
	default:
		return 0, fmt.Errorf("flow: unknown traffic model %q (want file, cbr, or onoff)", s)
	}
}

// Traffic describes a push source's generation pattern.
type Traffic struct {
	// Model selects the generation pattern. PullFile is not a push model;
	// Validate rejects it here.
	Model TrafficModel
	// RatePPS is the generation rate in packets per second while the source
	// is on.
	RatePPS float64
	// Packets is the total number of packets the source generates before
	// stopping. It must be positive: every push flow has a definite
	// workload, so runs terminate and results are exactly reproducible.
	Packets int
	// On and Off are the burst and silence durations for PushOnOff.
	On, Off sim.Time
}

// Interval returns the inter-packet generation interval.
func (t Traffic) Interval() sim.Time {
	return sim.Time(float64(sim.Second) / t.RatePPS)
}

// Push reports whether the model is a push (timer-driven) one.
func (t Traffic) Push() bool { return t.Model == PushCBR || t.Model == PushOnOff }

// Validate checks the push parameters are usable.
func (t Traffic) Validate() error {
	if !t.Push() {
		return fmt.Errorf("flow: traffic model %v is not a push model", t.Model)
	}
	if t.RatePPS <= 0 {
		return fmt.Errorf("flow: push traffic needs rate_pps > 0 (got %v)", t.RatePPS)
	}
	if t.Packets <= 0 {
		return fmt.Errorf("flow: push traffic needs packets > 0 (got %d)", t.Packets)
	}
	if t.Model == PushOnOff {
		if t.On <= 0 || t.Off <= 0 {
			return fmt.Errorf("flow: onoff traffic needs on_s > 0 and off_s > 0 (got %v/%v)", t.On, t.Off)
		}
	}
	return nil
}
