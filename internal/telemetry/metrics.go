package telemetry

import (
	"math/bits"
	"sort"

	"repro/internal/stats"
)

// Hist is a latency histogram over int64 nanosecond samples: power-of-two
// log buckets always, plus the exact sample values while the population is
// small (histExactCap). Quantiles are exact from the retained samples —
// via stats.Percentile, which shares the NaN/Inf hardening of the rest of
// the stats plane — and bucket-interpolated beyond the cap.
type Hist struct {
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
	exact   []float64
}

// histExactCap bounds the retained exact samples per histogram (64 KiB).
const histExactCap = 8192

// Observe records one sample. Negative samples clamp to zero (a latency
// cannot be negative; a clock regression would be a simulator bug).
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	h.buckets[bits.Len64(uint64(ns))]++
	if h.count <= histExactCap {
		h.exact = append(h.exact, float64(ns))
	} else {
		h.exact = nil // beyond the cap quantiles come from the buckets
	}
}

// Count returns how many samples were observed.
func (h *Hist) Count() int64 { return h.count }

// Quantile returns the p-th percentile (0..100) in nanoseconds, 0 for an
// empty histogram.
func (h *Hist) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if h.exact != nil {
		sorted := append([]float64(nil), h.exact...)
		sort.Float64s(sorted)
		return stats.Percentile(sorted, p)
	}
	// Bucket interpolation: find the bucket holding the target rank and
	// interpolate linearly inside its value range [2^(b-1), 2^b).
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(h.count-1)
	var cum int64
	for b, c := range h.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			lo, hi := bucketRange(b)
			if hi > h.max {
				hi = h.max
			}
			frac := (rank - float64(cum)) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return float64(h.max)
}

// bucketRange returns the value range [lo, hi] covered by bucket b.
func bucketRange(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	lo = int64(1) << (b - 1)
	if b >= 63 {
		return lo, int64(1)<<62 + (int64(1)<<62 - 1)
	}
	return lo, int64(1)<<b - 1
}

// LatencySummary is a histogram's exported shape: sample count and the
// headline percentiles, in milliseconds.
type LatencySummary struct {
	Count  int64
	P50Ms  float64
	P95Ms  float64
	P99Ms  float64
	MeanMs float64
	MaxMs  float64
}

const msPerNs = 1e-6

// Summary exports the histogram.
func (h *Hist) Summary() LatencySummary {
	if h.count == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:  h.count,
		P50Ms:  h.Quantile(50) * msPerNs,
		P95Ms:  h.Quantile(95) * msPerNs,
		P99Ms:  h.Quantile(99) * msPerNs,
		MeanMs: float64(h.sum) / float64(h.count) * msPerNs,
		MaxMs:  float64(h.max) * msPerNs,
	}
}

// nodeMetrics aggregates per-node counters and the queue-wait histogram.
type nodeMetrics struct {
	tx, macAcks, rx        int64
	collisions, chanLosses int64
	enqueued, queueDrops   int64
	queueMax               int64
	grants, floods         int64
	replans, stalls        int64
	queueWait              Hist
}

// flowMetrics aggregates per-flow delivery accounting and latency.
type flowMetrics struct {
	delivered      int64
	batches        int64
	deadlineMisses int64
	delivery       Hist // per-packet source-to-sink latency
	decode         Hist // per-batch start-to-decode latency
}

// metricsState is the Hub's registry.
type metricsState struct {
	deadlineNS int64
	nodes      map[int32]*nodeMetrics
	flows      map[uint32]*flowMetrics
	// batchStart and pktSend correlate start events with their matching
	// decode/delivery: key flow<<32|batch (or |seq), value the first-seen
	// timestamp. Entries are deleted on the matching completion, so the
	// maps stay bounded by in-flight work.
	batchStart map[uint64]int64
	pktSend    map[uint64]int64
}

func (m *metricsState) init(deadlineNS int64) {
	m.deadlineNS = deadlineNS
	m.nodes = make(map[int32]*nodeMetrics)
	m.flows = make(map[uint32]*flowMetrics)
	m.batchStart = make(map[uint64]int64)
	m.pktSend = make(map[uint64]int64)
}

func (m *metricsState) node(id int32) *nodeMetrics {
	n := m.nodes[id]
	if n == nil {
		n = &nodeMetrics{}
		m.nodes[id] = n
	}
	return n
}

func (m *metricsState) flow(id uint32) *flowMetrics {
	f := m.flows[id]
	if f == nil {
		f = &flowMetrics{}
		m.flows[id] = f
	}
	return f
}

func flowKey(flow uint32, sub uint32) uint64 {
	return uint64(flow)<<32 | uint64(sub)
}

func (m *metricsState) observe(ev Event) {
	switch ev.Kind {
	case KindTx:
		n := m.node(ev.Node)
		if ev.Aux != 0 {
			n.macAcks++
		} else {
			n.tx++
		}
	case KindRx:
		m.node(ev.Node).rx++
	case KindDrop:
		n := m.node(ev.Node)
		if ev.Aux == DropCollision {
			n.collisions++
		} else {
			n.chanLosses++
		}
	case KindEnqueue:
		n := m.node(ev.Node)
		n.enqueued++
		if ev.Aux > n.queueMax {
			n.queueMax = ev.Aux
		}
	case KindDequeue:
		m.node(ev.Node).queueWait.Observe(ev.Dur)
	case KindQueueDrop:
		m.node(ev.Node).queueDrops++
	case KindGrant:
		m.node(ev.Node).grants++
	case KindLSAFlood:
		m.node(ev.Node).floods++
	case KindBatchStart:
		key := flowKey(ev.Flow, ev.Batch)
		if _, seen := m.batchStart[key]; !seen {
			// A stall-repair restart re-announces the batch; latency is
			// measured from the first start, when the data became due.
			m.batchStart[key] = ev.At
		}
	case KindBatchDecode:
		f := m.flow(ev.Flow)
		f.batches++
		f.delivered += ev.Aux
		key := flowKey(ev.Flow, ev.Batch)
		if start, ok := m.batchStart[key]; ok {
			delete(m.batchStart, key)
			lat := ev.At - start
			f.decode.Observe(lat)
			// Every packet in the batch becomes usable at decode time:
			// that is its delivery latency (batched coding trades exactly
			// this latency for throughput, the trade the metrics exist to
			// price).
			for i := int64(0); i < ev.Aux; i++ {
				f.delivery.Observe(lat)
			}
			if m.deadlineNS > 0 && lat > m.deadlineNS {
				f.deadlineMisses += ev.Aux
			}
		}
	case KindPktSend:
		key := flowKey(ev.Flow, uint32(ev.Aux))
		if _, seen := m.pktSend[key]; !seen {
			m.pktSend[key] = ev.At
		}
	case KindPktDeliver:
		f := m.flow(ev.Flow)
		f.delivered++
		key := flowKey(ev.Flow, uint32(ev.Aux))
		if start, ok := m.pktSend[key]; ok {
			delete(m.pktSend, key)
			lat := ev.At - start
			f.delivery.Observe(lat)
			if m.deadlineNS > 0 && lat > m.deadlineNS {
				f.deadlineMisses++
			}
		}
	case KindReplan:
		m.node(ev.Node).replans++
	case KindStall:
		m.node(ev.Node).stalls++
	}
}

// FlowReport is one flow's exported metrics.
type FlowReport struct {
	Flow uint32
	// Delivered counts packets delivered end to end.
	Delivered int64
	// Batches counts decoded batches (0 for batch-less flows).
	Batches int64
	// Delivery is the per-packet source-to-sink latency distribution.
	Delivery LatencySummary
	// Decode is the per-batch start-to-decode latency distribution.
	Decode LatencySummary
	// DeadlineMisses counts delivered packets that arrived after the
	// configured deadline; DeadlineMissRate is the missed fraction of
	// latency-sampled deliveries (0 when no deadline is set).
	DeadlineMisses   int64
	DeadlineMissRate float64
}

// NodeReport is one node's exported metrics.
type NodeReport struct {
	Node                   int32
	Tx, MACAcks, Rx        int64
	Collisions, ChanLosses int64
	Enqueued, QueueDrops   int64
	QueueMax               int64
	// QueueWait is the congestion-layer queue-wait distribution.
	QueueWait               Hist `json:"-"`
	QueueWaitSummary        LatencySummary
	Grants, Floods, Replans int64
	Stalls                  int64
}

// Report is the Hub's exported snapshot: deterministic (sorted) and
// JSON-stable, the block moresim -metrics writes and scenario results
// embed when telemetry is on.
type Report struct {
	// Events is the total event count the Hub received.
	Events int64
	// DeadlineNS echoes the configured per-packet deadline (0 = none).
	DeadlineNS int64 `json:",omitempty"`
	// Stalls counts watchdog stall declarations (full post-mortems via
	// Hub.Stalls).
	Stalls int64 `json:",omitempty"`
	Flows  []FlowReport
	Nodes  []NodeReport
}

// Report builds the exported snapshot.
func (h *Hub) Report() *Report {
	m := &h.metrics
	r := &Report{Events: h.events.Load(), DeadlineNS: m.deadlineNS}
	flowIDs := make([]uint32, 0, len(m.flows))
	for id := range m.flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		f := m.flows[id]
		fr := FlowReport{
			Flow:           id,
			Delivered:      f.delivered,
			Batches:        f.batches,
			Delivery:       f.delivery.Summary(),
			Decode:         f.decode.Summary(),
			DeadlineMisses: f.deadlineMisses,
		}
		if m.deadlineNS > 0 && f.delivery.count > 0 {
			fr.DeadlineMissRate = float64(f.deadlineMisses) / float64(f.delivery.count)
		}
		r.Flows = append(r.Flows, fr)
	}
	nodeIDs := make([]int32, 0, len(m.nodes))
	for id := range m.nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, id := range nodeIDs {
		n := m.nodes[id]
		r.Nodes = append(r.Nodes, NodeReport{
			Node: id, Tx: n.tx, MACAcks: n.macAcks, Rx: n.rx,
			Collisions: n.collisions, ChanLosses: n.chanLosses,
			Enqueued: n.enqueued, QueueDrops: n.queueDrops, QueueMax: n.queueMax,
			QueueWaitSummary: n.queueWait.Summary(),
			Grants:           n.grants, Floods: n.floods, Replans: n.replans,
			Stalls: n.stalls,
		})
		r.Stalls += n.stalls
	}
	return r
}

// FlowMetrics returns the report entry for one flow (zero value if the
// flow emitted nothing) — a test and tooling convenience.
func (r *Report) FlowMetrics(flow uint32) FlowReport {
	for _, f := range r.Flows {
		if f.Flow == flow {
			return f
		}
	}
	return FlowReport{}
}
