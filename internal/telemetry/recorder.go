package telemetry

// recorderState is the flight recorder: one bounded ring of recent events
// per node, retained so a stall watchdog can dump the lead-up.
type recorderState struct {
	ringCap int
	rings   map[int32]*eventRing
	stalls  []StallDump
}

// maxStallDumps bounds the retained post-mortems; later stalls still fire
// OnStall but are only counted.
const maxStallDumps = 16

type eventRing struct {
	buf   []Event
	next  int
	total int64
}

func (m *recorderState) init(ringCap int) {
	m.ringCap = ringCap
	m.rings = make(map[int32]*eventRing)
}

func (m *recorderState) observe(ev Event) {
	r := m.rings[ev.Node]
	if r == nil {
		r = &eventRing{buf: make([]Event, 0, m.ringCap)}
		m.rings[ev.Node] = r
	}
	if len(r.buf) < m.ringCap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % m.ringCap
	}
	r.total++
}

// recent returns the node's retained events, oldest first.
func (m *recorderState) recent(node int32) []Event {
	r := m.rings[node]
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// StallDump is the structured post-mortem a repair watchdog's KindStall
// event triggers: the stall identity plus the emitting node's recent
// event window, oldest first.
type StallDump struct {
	// At is the simulated time (ns) the watchdog fired.
	At int64
	// Node is the node that declared the stall (the flow's source).
	Node int32
	// Flow and Batch identify the stalled work (Batch 0 for batch-less).
	Flow  uint32
	Batch uint32
	// Reason is the Stall* code from the event.
	Reason string
	// Seen is how many events the node emitted in total; Recent holds the
	// last min(Seen, ring capacity) of them.
	Seen   int64
	Recent []Event
}

func stallReason(aux int64) string {
	switch aux {
	case StallBatch:
		return "batch-stall"
	case StallFin:
		return "fin-stall"
	default:
		return "stall"
	}
}

// dump captures the post-mortem for a KindStall event and retains it
// (bounded by maxStallDumps).
func (m *recorderState) dump(ev Event) StallDump {
	d := StallDump{
		At:     ev.At,
		Node:   ev.Node,
		Flow:   ev.Flow,
		Batch:  ev.Batch,
		Reason: stallReason(ev.Aux),
		Recent: m.recent(ev.Node),
	}
	if r := m.rings[ev.Node]; r != nil {
		d.Seen = r.total
	}
	if len(m.stalls) < maxStallDumps {
		m.stalls = append(m.stalls, d)
	}
	return d
}
