// Package telemetry is the structured observability plane: a typed,
// non-allocating event bus the simulator and every protocol layer emit
// into, a metrics registry that turns those events into per-node and
// per-flow counters and latency histograms (the per-packet percentiles and
// deadline-miss rates a streaming operator runs on — the numbers the
// paper's Click element logs could not produce), and a bounded per-node
// flight recorder whose recent-event rings the repair watchdogs dump as a
// structured post-mortem when a flow stalls.
//
// The overhead contract: with no sink installed (sim.Simulator.Telem nil)
// every emission site is a single nil check — runs are byte-identical to
// the pre-telemetry code and within measurement noise of its speed
// (cmd/morebench -telemetry-baseline gates this in CI). With a Hub
// installed the cost is one fixed-size struct per event, no allocation on
// the emit path beyond amortized ring/histogram storage; telemetry is
// observation-only and never changes simulation behavior (the golden suite
// pins this).
package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Kind enumerates the typed events the simulation emits.
type Kind uint8

// The event taxonomy. Field use per kind is documented on Event.
const (
	// KindTx: a frame went on the air. Node is the transmitter, Peer the
	// MAC destination (-1 broadcast), Bytes the on-air size, Dur the air
	// time, Flow the attributed flow, Aux 1 for MAC-level ACK frames.
	KindTx Kind = iota
	// KindRx: a frame was successfully decoded. Node is the receiver,
	// Peer the transmitter.
	KindRx
	// KindDrop: a reception was lost at Node; Aux is a Drop* reason.
	KindDrop
	// KindEnqueue: the congestion layer admitted a data frame; Aux is the
	// queue depth after the admit.
	KindEnqueue
	// KindDequeue: the congestion layer released a queued frame to the
	// MAC; Dur is the time the frame waited in the queue.
	KindDequeue
	// KindQueueDrop: the congestion layer dropped a never-transmitted
	// frame; Aux is a QDrop* reason.
	KindQueueDrop
	// KindGrant: a credit grant went out; Aux is the advertised need.
	KindGrant
	// KindLSAFlood: a link-state advertisement (own or rebroadcast) went
	// out; Aux is the LSA origin.
	KindLSAFlood
	// KindBatchStart: a source started coding a batch (Flow, Batch).
	KindBatchStart
	// KindBatchDecode: a sink decoded a complete batch; Aux is the packet
	// count delivered by the decode.
	KindBatchDecode
	// KindReplan: a source rebuilt its forwarder plan or route; Aux is a
	// Replan* reason.
	KindReplan
	// KindPktSend: a batch-less source (Srcr) first offered sequence
	// number Aux for flow Flow.
	KindPktSend
	// KindPktDeliver: a batch-less destination delivered sequence number
	// Aux end-to-end.
	KindPktDeliver
	// KindNodeFail / KindNodeRecover: mid-run crash and reboot.
	KindNodeFail
	KindNodeRecover
	// KindStall: a repair watchdog declared the flow stalled at Node; Aux
	// is a Stall* reason. A Hub answers by dumping the node's flight
	// recorder (see StallDump).
	KindStall

	kindCount // sentinel
)

// Drop reasons (KindDrop.Aux).
const (
	DropCollision int64 = iota + 1
	DropChannel
)

// Queue-drop reasons (KindQueueDrop.Aux).
const (
	QDropTail int64 = iota + 1
	QDropChoke
	QDropStale
)

// Replan reasons (KindReplan.Aux).
const (
	// ReplanDrift: routing state moved on and the plan was rebuilt at a
	// batch/pass boundary.
	ReplanDrift int64 = iota + 1
	// ReplanStall: a repair watchdog rebuilt the plan on a stalled flow.
	ReplanStall
)

// Stall reasons (KindStall.Aux).
const (
	// StallBatch: a MORE/ExOR source saw no batch complete over a full
	// repair interval.
	StallBatch int64 = iota + 1
	// StallFin: a Srcr source's FIN passes went unanswered for a full
	// repair interval.
	StallFin
)

// String names the kind for rendered traces and dumps.
func (k Kind) String() string {
	switch k {
	case KindTx:
		return "tx"
	case KindRx:
		return "rx"
	case KindDrop:
		return "drop"
	case KindEnqueue:
		return "enqueue"
	case KindDequeue:
		return "dequeue"
	case KindQueueDrop:
		return "queue-drop"
	case KindGrant:
		return "grant"
	case KindLSAFlood:
		return "lsa-flood"
	case KindBatchStart:
		return "batch-start"
	case KindBatchDecode:
		return "batch-decode"
	case KindReplan:
		return "replan"
	case KindPktSend:
		return "pkt-send"
	case KindPktDeliver:
		return "pkt-deliver"
	case KindNodeFail:
		return "node-fail"
	case KindNodeRecover:
		return "node-recover"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MarshalText renders the kind name in JSON dumps.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one typed simulation event. It is a fixed-size value type:
// emitting one never allocates, and the emitting layer fills only the
// fields its kind defines (the rest stay zero). Timestamps are int64
// nanoseconds of simulated time (sim.Time's underlying representation —
// this package must not import sim, which imports it).
type Event struct {
	// At is the simulated time in nanoseconds. Emission helpers
	// (sim.Node.Emit, sim.Simulator) stamp it; hand-built events should
	// too.
	At int64
	// Dur is the kind-specific duration payload in nanoseconds: air time
	// for KindTx, queue wait for KindDequeue.
	Dur int64
	// Aux is the kind-specific scalar: reason codes, queue depth,
	// sequence numbers, packet counts (see the Kind docs).
	Aux int64
	// Flow attributes the event to an end-to-end flow (0 = control).
	Flow uint32
	// Batch is the coded batch index for batch-keyed kinds.
	Batch uint32
	// Node is the node the event happened at.
	Node int32
	// Peer is the other party where one exists (-1 broadcast/none).
	Peer int32
	// Bytes is the frame size for frame-shaped events.
	Bytes int32
	// Kind tags the event.
	Kind Kind
}

// Sink receives every emitted event. Implementations must be cheap: the
// simulator calls Emit inline from the event loop.
type Sink interface {
	Emit(Event)
}

// Config parameterizes a Hub. The zero value enables the metrics registry
// and flight recorder with default bounds and no Chrome trace capture.
type Config struct {
	// DeadlineNS, when positive, is the per-packet delivery deadline:
	// every delivered packet whose source-to-sink latency exceeds it
	// counts as a deadline miss in its flow's metrics.
	DeadlineNS int64
	// RingCap bounds each node's flight-recorder ring (default 256
	// events; negative disables the recorder).
	RingCap int
	// ChromeTrace turns on capture of events for WriteChromeTrace
	// (Perfetto-loadable trace-event JSON). Off by default: a long run
	// emits millions of events.
	ChromeTrace bool
	// ChromeCap bounds the captured Chrome trace events (default 1<<20);
	// events beyond it are counted but not stored.
	ChromeCap int
	// OnStall, when set, is called synchronously with each stall
	// post-mortem as the watchdog emits KindStall.
	OnStall func(StallDump)
}

// Hub is the standard Sink: it dispatches every event to the metrics
// registry, the per-node flight recorder, the optional Chrome trace
// buffer, and any extra sinks. A Hub is single-simulation state and is not
// safe for concurrent emission; the events and lastAt counters are atomic
// so a progress reporter on another goroutine may read them live.
type Hub struct {
	cfg Config

	events atomic.Int64
	lastAt atomic.Int64

	metrics metricsState
	rec     recorderState
	chrome  chromeState

	extra []Sink
}

// NewHub builds a Hub with the given configuration.
func NewHub(cfg Config) *Hub {
	if cfg.RingCap == 0 {
		cfg.RingCap = 256
	}
	if cfg.ChromeCap <= 0 {
		cfg.ChromeCap = 1 << 20
	}
	h := &Hub{cfg: cfg}
	h.metrics.init(cfg.DeadlineNS)
	h.rec.init(cfg.RingCap)
	return h
}

// AddSink fans emitted events out to an additional sink (e.g. a
// trace.Recorder) after the Hub's own processing.
func (h *Hub) AddSink(s Sink) { h.extra = append(h.extra, s) }

// Events returns how many events the Hub has received. Safe to call from
// another goroutine (progress heartbeats).
func (h *Hub) Events() int64 { return h.events.Load() }

// LastAt returns the simulated timestamp (ns) of the most recent event.
// Safe to call from another goroutine.
func (h *Hub) LastAt() int64 { return h.lastAt.Load() }

// Emit implements Sink.
func (h *Hub) Emit(ev Event) {
	h.events.Add(1)
	h.lastAt.Store(ev.At)
	h.metrics.observe(ev)
	if h.cfg.RingCap > 0 {
		h.rec.observe(ev)
		if ev.Kind == KindStall {
			dump := h.rec.dump(ev)
			if h.cfg.OnStall != nil {
				h.cfg.OnStall(dump)
			}
		}
	}
	if h.cfg.ChromeTrace {
		h.chrome.observe(ev, h.cfg.ChromeCap)
	}
	for _, s := range h.extra {
		s.Emit(ev)
	}
}

// Stalls returns the stall post-mortems captured so far (bounded; see
// recorderState.dump).
func (h *Hub) Stalls() []StallDump { return h.rec.stalls }
