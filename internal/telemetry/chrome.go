package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// chromeState buffers events for Chrome trace-event export. Events are
// kept in the compact Event form and serialized lazily by
// WriteChromeTrace; past the cap they are counted, not stored.
type chromeState struct {
	events    []Event
	truncated int64
}

func (c *chromeState) observe(ev Event, cap int) {
	if len(c.events) >= cap {
		c.truncated++
		return
	}
	c.events = append(c.events, ev)
}

// Truncated returns how many events arrived after the Chrome trace buffer
// filled.
func (h *Hub) Truncated() int64 { return h.chrome.truncated }

// WriteChromeTrace writes the captured events as Chrome trace-event JSON
// (the JSON-array format; chrome://tracing and Perfetto both load it).
// Each node renders as a process row: transmissions are complete ("X")
// slices with their air time as the duration, everything else an instant
// ("i") event. Timestamps are simulated microseconds.
func (h *Hub) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range h.chrome.events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := writeChromeEvent(bw, ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeChromeEvent(w *bufio.Writer, ev Event) error {
	// Trace-event timestamps are microseconds; keep sub-µs precision as a
	// fraction so adjacent events don't collapse.
	ts := float64(ev.At) / 1e3
	var err error
	if ev.Kind == KindTx {
		dur := float64(ev.Dur) / 1e3
		_, err = fmt.Fprintf(w,
			`{"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"peer":%d,"bytes":%d,"flow":%d,"ack":%d}}`,
			ev.Kind.String(), ts, dur, ev.Node, ev.Flow, ev.Peer, ev.Bytes, ev.Flow, ev.Aux)
	} else {
		_, err = fmt.Fprintf(w,
			`{"name":%q,"ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"peer":%d,"flow":%d,"batch":%d,"aux":%d,"dur":%d}}`,
			ev.Kind.String(), ts, ev.Node, ev.Flow, ev.Peer, ev.Flow, ev.Batch, ev.Aux, ev.Dur)
	}
	return err
}
