package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		txt, err := k.MarshalText()
		if err != nil || string(txt) != s {
			t.Fatalf("MarshalText(%v) = %q, %v", k, txt, err)
		}
	}
	if got := kindCount.String(); !strings.HasPrefix(got, "Kind(") {
		t.Fatalf("sentinel kind renders as %q", got)
	}
}

func TestHistExactQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(50) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	// Exact percentiles over 1000..100000 with linear interpolation.
	if p := h.Quantile(50); math.Abs(p-50500) > 1 {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Quantile(0); p != 1000 {
		t.Fatalf("p0 = %v", p)
	}
	if p := h.Quantile(100); p != 100000 {
		t.Fatalf("p100 = %v", p)
	}
	s := h.Summary()
	if s.Count != 100 || math.Abs(s.MaxMs-0.1) > 1e-9 || s.MeanMs <= 0 {
		t.Fatalf("summary %+v", s)
	}
}

func TestHistNegativeClamp(t *testing.T) {
	var h Hist
	h.Observe(-5)
	if h.Count() != 1 || h.Quantile(50) != 0 {
		t.Fatalf("negative sample not clamped: count %d p50 %v", h.Count(), h.Quantile(50))
	}
}

// TestHistBucketFallback pushes the population past the exact-sample cap
// and checks the bucket-interpolated quantiles stay ordered and inside the
// observed value range.
func TestHistBucketFallback(t *testing.T) {
	var h Hist
	n := int64(3 * histExactCap)
	for i := int64(1); i <= n; i++ {
		h.Observe(i)
	}
	if h.exact != nil {
		t.Fatal("exact samples retained past the cap")
	}
	p50, p95, p99 := h.Quantile(50), h.Quantile(95), h.Quantile(99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= float64(n)) {
		t.Fatalf("bucket quantiles disordered: %v %v %v", p50, p95, p99)
	}
	// Uniform samples over [1, n]: the interpolated median must land
	// within its power-of-two bucket of the true value.
	if p50 < float64(n)/4 || p50 > float64(n) {
		t.Fatalf("p50 %v far from true median %v", p50, n/2)
	}
	// Out-of-range p clamps instead of panicking.
	if h.Quantile(-1) < 0 || h.Quantile(200) > float64(n) {
		t.Fatal("quantile clamp failed")
	}
}

func TestHubCountersAndSinks(t *testing.T) {
	h := NewHub(Config{})
	var got []Event
	h.AddSink(sinkFunc(func(ev Event) { got = append(got, ev) }))
	h.Emit(Event{At: 10, Node: 1, Kind: KindTx})
	h.Emit(Event{At: 20, Node: 2, Kind: KindRx})
	if h.Events() != 2 || h.LastAt() != 20 {
		t.Fatalf("events %d lastAt %d", h.Events(), h.LastAt())
	}
	if len(got) != 2 || got[1].Kind != KindRx {
		t.Fatalf("fan-out missed events: %+v", got)
	}
}

type sinkFunc func(Event)

func (f sinkFunc) Emit(ev Event) { f(ev) }

// TestFlightRecorderBounds fills one node's ring past its capacity and
// checks the stall dump window holds exactly the last RingCap events.
func TestFlightRecorderBounds(t *testing.T) {
	h := NewHub(Config{RingCap: 4})
	for i := int64(0); i < 10; i++ {
		h.Emit(Event{At: i, Node: 7, Kind: KindTx})
	}
	h.Emit(Event{At: 99, Node: 7, Flow: 3, Batch: 2, Aux: StallBatch, Kind: KindStall})
	dumps := h.Stalls()
	if len(dumps) != 1 {
		t.Fatalf("%d dumps", len(dumps))
	}
	d := dumps[0]
	if d.Node != 7 || d.Flow != 3 || d.Batch != 2 || d.Reason != "batch-stall" {
		t.Fatalf("dump identity %+v", d)
	}
	if d.Seen != 11 || len(d.Recent) != 4 {
		t.Fatalf("window wrong: seen %d, recent %d", d.Seen, len(d.Recent))
	}
	// Oldest first, ending with the stall itself.
	want := []int64{7, 8, 9, 99}
	for i, ev := range d.Recent {
		if ev.At != want[i] {
			t.Fatalf("recent[%d].At = %d, want %d", i, ev.At, want[i])
		}
	}
	if d.Recent[3].Kind != KindStall {
		t.Fatal("dump does not end with the stall event")
	}
}

func TestStallDumpRetentionBound(t *testing.T) {
	var fired int
	h := NewHub(Config{OnStall: func(StallDump) { fired++ }})
	for i := 0; i < maxStallDumps+5; i++ {
		h.Emit(Event{At: int64(i), Node: 0, Aux: StallFin, Kind: KindStall})
	}
	if fired != maxStallDumps+5 {
		t.Fatalf("OnStall fired %d times", fired)
	}
	if len(h.Stalls()) != maxStallDumps {
		t.Fatalf("retained %d dumps", len(h.Stalls()))
	}
	if h.Stalls()[0].Reason != "fin-stall" {
		t.Fatalf("reason %q", h.Stalls()[0].Reason)
	}
}

func TestRecorderDisabled(t *testing.T) {
	var fired int
	h := NewHub(Config{RingCap: -1, OnStall: func(StallDump) { fired++ }})
	h.Emit(Event{Node: 0, Aux: StallBatch, Kind: KindStall})
	if fired != 0 || len(h.Stalls()) != 0 {
		t.Fatal("disabled recorder still dumped")
	}
	// The metrics side keeps counting.
	if h.Report().Stalls != 1 {
		t.Fatal("stall not counted")
	}
}

// TestChromeTraceOutput checks the exported file is valid trace-event
// JSON: an array where transmissions are complete slices and everything
// else instants, and that the cap counts instead of storing.
func TestChromeTraceOutput(t *testing.T) {
	h := NewHub(Config{ChromeTrace: true, ChromeCap: 3})
	h.Emit(Event{At: 1500, Dur: 300, Node: 2, Peer: -1, Bytes: 1500, Flow: 1, Kind: KindTx})
	h.Emit(Event{At: 1800, Node: 3, Peer: 2, Flow: 1, Kind: KindRx})
	h.Emit(Event{At: 2000, Node: 3, Flow: 1, Batch: 4, Aux: 32, Kind: KindBatchDecode})
	h.Emit(Event{At: 2100, Node: 3, Kind: KindRx}) // past the cap
	if h.Truncated() != 1 {
		t.Fatalf("truncated %d", h.Truncated())
	}

	var buf bytes.Buffer
	if err := h.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 3 {
		t.Fatalf("%d trace events", len(evs))
	}
	tx := evs[0]
	if tx["name"] != "tx" || tx["ph"] != "X" || tx["ts"].(float64) != 1.5 || tx["dur"].(float64) != 0.3 {
		t.Fatalf("tx slice wrong: %v", tx)
	}
	if tx["pid"].(float64) != 2 || tx["tid"].(float64) != 1 {
		t.Fatalf("tx row wrong: %v", tx)
	}
	if evs[1]["ph"] != "i" || evs[2]["name"] != "batch-decode" {
		t.Fatalf("instant events wrong: %v %v", evs[1], evs[2])
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	h := NewHub(Config{ChromeTrace: true})
	var buf bytes.Buffer
	if err := h.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil || len(evs) != 0 {
		t.Fatalf("empty trace invalid: %v %v", err, evs)
	}
}

// TestMetricsCorrelation drives the registry with hand-built events and
// checks the latency correlation rules: first-seen batch start wins,
// decode fans the latency out per packet, batch-less sends pair with
// their delivery, and the deadline bills every late packet.
func TestMetricsCorrelation(t *testing.T) {
	h := NewHub(Config{DeadlineNS: 1000})
	h.Emit(Event{At: 100, Flow: 1, Batch: 0, Kind: KindBatchStart})
	h.Emit(Event{At: 500, Flow: 1, Batch: 0, Kind: KindBatchStart}) // repair restart: ignored
	h.Emit(Event{At: 600, Flow: 1, Batch: 0, Aux: 3, Node: 9, Kind: KindBatchDecode})

	h.Emit(Event{At: 0, Flow: 2, Aux: 7, Kind: KindPktSend})
	h.Emit(Event{At: 5000, Flow: 2, Aux: 7, Kind: KindPktDeliver}) // late: miss
	h.Emit(Event{At: 6000, Flow: 2, Aux: 8, Kind: KindPktDeliver}) // no matching send: counted, unsampled

	r := h.Report()
	f1 := r.FlowMetrics(1)
	if f1.Delivered != 3 || f1.Batches != 1 {
		t.Fatalf("flow 1 accounting %+v", f1)
	}
	// Latency from the FIRST start: 600-100 = 500 ns, sampled 3x.
	if f1.Delivery.Count != 3 || f1.Decode.Count != 1 || f1.Delivery.MaxMs != 500*msPerNs {
		t.Fatalf("flow 1 latency %+v", f1)
	}
	if f1.DeadlineMisses != 0 || f1.DeadlineMissRate != 0 {
		t.Fatalf("flow 1 within deadline but %+v", f1)
	}
	f2 := r.FlowMetrics(2)
	if f2.Delivered != 2 || f2.Delivery.Count != 1 {
		t.Fatalf("flow 2 accounting %+v", f2)
	}
	if f2.DeadlineMisses != 1 || f2.DeadlineMissRate != 1 {
		t.Fatalf("flow 2 misses %+v", f2)
	}
	// Correlation maps drained: re-deliver of the same key is not resampled.
	h.Emit(Event{At: 7000, Flow: 2, Aux: 7, Kind: KindPktDeliver})
	if got := h.Report().FlowMetrics(2); got.Delivery.Count != 1 || got.Delivered != 3 {
		t.Fatalf("duplicate delivery resampled: %+v", got)
	}
}

// TestNodeMetrics checks the per-node counter classification.
func TestNodeMetrics(t *testing.T) {
	h := NewHub(Config{})
	h.Emit(Event{Node: 4, Kind: KindTx})
	h.Emit(Event{Node: 4, Aux: 1, Kind: KindTx}) // MAC ack
	h.Emit(Event{Node: 4, Kind: KindRx})
	h.Emit(Event{Node: 4, Aux: DropCollision, Kind: KindDrop})
	h.Emit(Event{Node: 4, Aux: DropChannel, Kind: KindDrop})
	h.Emit(Event{Node: 4, Aux: 6, Kind: KindEnqueue})
	h.Emit(Event{Node: 4, Dur: 2500, Kind: KindDequeue})
	h.Emit(Event{Node: 4, Aux: QDropChoke, Kind: KindQueueDrop})
	h.Emit(Event{Node: 4, Kind: KindGrant})
	h.Emit(Event{Node: 4, Kind: KindLSAFlood})
	h.Emit(Event{Node: 4, Aux: ReplanDrift, Kind: KindReplan})

	r := h.Report()
	if len(r.Nodes) != 1 {
		t.Fatalf("%d nodes", len(r.Nodes))
	}
	n := r.Nodes[0]
	if n.Node != 4 || n.Tx != 1 || n.MACAcks != 1 || n.Rx != 1 ||
		n.Collisions != 1 || n.ChanLosses != 1 ||
		n.Enqueued != 1 || n.QueueMax != 6 || n.QueueDrops != 1 ||
		n.Grants != 1 || n.Floods != 1 || n.Replans != 1 {
		t.Fatalf("node counters %+v", n)
	}
	if n.QueueWaitSummary.Count != 1 || n.QueueWaitSummary.MaxMs != 2500*msPerNs {
		t.Fatalf("queue wait %+v", n.QueueWaitSummary)
	}
}
