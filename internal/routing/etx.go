// Package routing implements the routing metrics and transmission-count
// algorithms of the thesis: the ETX path metric (De Couto et al.) used by
// Srcr and for MORE/ExOR forwarder ordering, the EOTX opportunistic metric
// of Chapter 5 with all three computation algorithms, the per-node expected
// transmission counts z_i (Algorithm 1), the TX-credit rule (Eq. 3.3), the
// forwarder pruning rule (§3.2.1), and the ETX-vs-EOTX cost gap analysis
// (§5.7).
//
// Conventions: all functions take the topology's delivery-probability
// matrix; loss ε_ij = 1 - p_ij. Links with delivery at or below the usable
// threshold are ignored for path selection but still carry opportunistic
// receptions in the simulator.
package routing

import (
	"container/heap"
	"math"

	"repro/internal/graph"
)

// Inf is the metric value for unreachable nodes.
var Inf = math.Inf(1)

// ETXOptions configures link ETX computation.
type ETXOptions struct {
	// Threshold is the minimum delivery probability of a usable link.
	Threshold float64
	// AckAware, when true, uses the bidirectional ETX of De Couto et al.:
	// 1/(p_fwd * p_rev), accounting for lost 802.11 ACKs (§2.1.1). When
	// false the link cost is 1/p_fwd, the form used in the broadcast-based
	// credit calculations of Chapter 3 and 5.
	AckAware bool
	// Cost, when non-nil, adds a per-node penalty to every hop through an
	// intermediate node (never the destination), demoting loaded
	// forwarders in path selection. Nil or all-zero leaves the metric
	// bit-identical to loss-only ETX.
	Cost CostModel
}

// DefaultETXOptions matches how the experiments configure routing: usable
// links above graph.RouteThreshold, ACK-aware costs for Srcr path selection.
func DefaultETXOptions() ETXOptions {
	return ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
}

// LinkETX returns the expected number of transmissions to get a packet
// across link i->j (with MAC retransmissions), or Inf if the link is not
// usable.
func LinkETX(t *graph.Topology, i, j graph.NodeID, opt ETXOptions) float64 {
	return linkETXFwd(t, i, j, t.Prob(i, j), opt)
}

// ETXTable holds, for a fixed destination, each node's ETX distance to it
// and the next hop along the best path. It is the "closer to destination"
// order that MORE and ExOR use (Table 3.1).
type ETXTable struct {
	Dst graph.NodeID
	// Dist[i] is node i's ETX distance to Dst (0 for Dst itself, Inf if
	// unreachable).
	Dist []float64
	// Next[i] is the next hop from i towards Dst along the best path, or
	// -1 when i == Dst or i is unreachable.
	Next []graph.NodeID
}

// ETXToDestination runs Dijkstra over link ETX costs toward dst, returning
// every node's distance and next hop. Costs are additive per §2.1.1: the
// ETX of a path is the sum of the ETX of each hop. Relaxation iterates the
// settled node's in-edges, so the cost is O(E log N) on sparse topologies
// rather than O(N²).
func ETXToDestination(t *graph.Topology, dst graph.NodeID, opt ETXOptions) *ETXTable {
	n := t.N()
	tab := &ETXTable{
		Dst:  dst,
		Dist: make([]float64, n),
		Next: make([]graph.NodeID, n),
	}
	for i := range tab.Dist {
		tab.Dist[i] = Inf
		tab.Next[i] = -1
	}
	tab.Dist[dst] = 0
	pq := &distHeap{}
	heap.Push(pq, distEntry{node: dst, dist: 0})
	done := make([]bool, n)
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		u := e.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, in := range t.InEdges(u) {
			vid := in.Node
			if done[vid] {
				continue
			}
			// Relax the v -> u link: cost of sending from v toward dst via u.
			c := linkETXFwd(t, vid, u, in.P, opt)
			if math.IsInf(c, 1) {
				continue
			}
			// Routing through u pays u's load penalty on top of the link.
			c += nodePenalty(opt.Cost, u, dst)
			if d := tab.Dist[u] + c; d < tab.Dist[vid] {
				tab.Dist[vid] = d
				tab.Next[vid] = u
				heap.Push(pq, distEntry{node: vid, dist: d})
			}
		}
	}
	return tab
}

// linkETXFwd is LinkETX with the forward delivery probability already in
// hand (the in-edge iteration of ETXToDestination supplies it).
func linkETXFwd(t *graph.Topology, i, j graph.NodeID, pf float64, opt ETXOptions) float64 {
	if pf <= opt.Threshold {
		return Inf
	}
	if !opt.AckAware {
		return 1 / pf
	}
	pr := t.Prob(j, i)
	if pr <= opt.Threshold {
		return Inf
	}
	return 1 / (pf * pr)
}

// Path returns the best path from src to dst (inclusive of both ends), or
// nil if unreachable.
func (tab *ETXTable) Path(src graph.NodeID) []graph.NodeID {
	if math.IsInf(tab.Dist[src], 1) {
		return nil
	}
	path := []graph.NodeID{src}
	for at := src; at != tab.Dst; {
		at = tab.Next[at]
		if at < 0 {
			return nil
		}
		path = append(path, at)
		if len(path) > len(tab.Dist)+1 {
			return nil // defensive: broken table
		}
	}
	return path
}

// Closer reports whether node a is strictly closer to the destination than
// node b in the ETX metric (Table 3.1's "closer to destination").
func (tab *ETXTable) Closer(a, b graph.NodeID) bool {
	return tab.Dist[a] < tab.Dist[b]
}

type distEntry struct {
	node graph.NodeID
	dist float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
