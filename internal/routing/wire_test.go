package routing

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
)

// TestPlanSurvivesWireFormat walks a forwarding plan through the on-air
// header format the real system uses: the source encodes the forwarder list
// with hashed node IDs and fixed-point credits; a forwarder decodes the
// header and resolves the hashes against the candidate set (§4.6(c)). The
// plan a forwarder reconstructs must match what the source computed, up to
// the fixed-point credit quantization.
func TestPlanSurvivesWireFormat(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	for src := 1; src < 8; src++ {
		plan, err := BuildPlan(topo, graph.NodeID(src), 0, DefaultPlanOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Encode as the source would.
		h := &packet.MOREHeader{
			Type:       packet.TypeData,
			SrcHash:    packet.NodeHash(plan.Src),
			DstHash:    packet.NodeHash(plan.Dst),
			CodeVector: make([]byte, 32),
		}
		for _, f := range plan.Forwarders() {
			h.Forwarders = append(h.Forwarders, packet.Forwarder{
				Node:   f,
				Credit: packet.CreditToWire(plan.Credit[f]),
			})
		}
		buf, err := h.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Decode and resolve as a forwarder would: candidates are every
		// node in the mesh (the real system resolves against nodes whose
		// ETX allows participation; the full set is a superset).
		got, _, err := packet.DecodeMOREHeader(buf)
		if err != nil {
			t.Fatal(err)
		}
		var candidates []graph.NodeID
		for i := 0; i < topo.N(); i++ {
			candidates = append(candidates, graph.NodeID(i))
		}
		packet.ResolveForwarders(got.Forwarders, candidates)
		if len(got.Forwarders) != len(plan.Forwarders()) {
			t.Fatalf("src %d: forwarder count %d != %d", src, len(got.Forwarders), len(plan.Forwarders()))
		}
		for i, f := range plan.Forwarders() {
			if got.Forwarders[i].Node != f {
				t.Fatalf("src %d: forwarder %d resolved to %d, want %d",
					src, i, got.Forwarders[i].Node, f)
			}
			credit := packet.CreditFromWire(got.Forwarders[i].Credit)
			if math.Abs(credit-plan.Credit[f]) > 1.0/packet.CreditScale {
				t.Fatalf("src %d: credit for %d = %v, want %v (±1/%d)",
					src, f, credit, plan.Credit[f], packet.CreditScale)
			}
		}
	}
}

// TestLoadDistributionHandExample checks Algorithm 6 against a fully
// hand-computed diamond: src(2) -> {relay(1), dst(0)} with p(2,1)=1,
// p(1,0)=1, p(2,0)=q.
func TestLoadDistributionHandExample(t *testing.T) {
	q := 0.25
	topo := graph.New(3)
	topo.SetLink(2, 1, 1)
	topo.SetLink(1, 0, 1)
	topo.SetDirected(2, 0, q)
	topo.SetDirected(0, 2, q)
	// EOTX order: dst(0), relay(1, d=1), src(2).
	order := []graph.NodeID{0, 1, 2}
	z, x := LoadDistribution(topo, order)
	// Source: q_2(dst,relay) = 1 - (1-q)(1-1) = 1, so z_src = 1;
	// x(src->dst) = q, x(src->relay) = 1-q.
	if !almost(z[2], 1, 1e-12) {
		t.Fatalf("z(src) = %v", z[2])
	}
	if !almost(x[2][0], q, 1e-12) || !almost(x[2][1], 1-q, 1e-12) {
		t.Fatalf("source flow split %v / %v", x[2][0], x[2][1])
	}
	// Relay: load 1-q, perfect link to dst: z = 1-q, all flow to dst.
	if !almost(z[1], 1-q, 1e-12) {
		t.Fatalf("z(relay) = %v", z[1])
	}
	if !almost(x[1][0], 1-q, 1e-12) {
		t.Fatalf("relay->dst flow %v", x[1][0])
	}
	// Destination transmits nothing.
	if z[0] != 0 {
		t.Fatalf("z(dst) = %v", z[0])
	}
	// Total cost = 2-q, matching Algorithm 1 and the Fig 1-1 arithmetic.
	if !almost(TotalCost(z), 2-q, 1e-12) {
		t.Fatalf("total cost %v, want %v", TotalCost(z), 2-q)
	}
}

// TestCreditsHandExample verifies Eq. (3.3) on the same diamond: the
// relay's expected receptions per source packet are p(src->relay)·z_src = 1,
// so its TX credit equals its z of 1-q.
func TestCreditsHandExample(t *testing.T) {
	q := 0.25
	topo := graph.New(3)
	topo.SetLink(2, 1, 1)
	topo.SetLink(1, 0, 1)
	topo.SetDirected(2, 0, q)
	topo.SetDirected(0, 2, q)
	plan, err := BuildPlan(topo, 2, 0, planOptsNoPrune(OrderETX))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(plan.Credit[1], 1-q, 1e-12) {
		t.Fatalf("relay credit %v, want %v", plan.Credit[1], 1-q)
	}
}
