package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSimulateOpportunisticMatchesEOTX(t *testing.T) {
	// Proposition 4 made empirical: the forwarding rule under the EOTX
	// order costs EOTX(src) transmissions in expectation.
	for seed := int64(0); seed < 5; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 7, 0.6)
		d := EOTX(topo, 0, DefaultEOTXOptions())
		src := graph.NodeID(topo.N() - 1)
		if math.IsInf(d[src], 1) {
			continue
		}
		got, err := SimulateOpportunistic(topo, src, 0, d, 20000, 99)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-d[src])/d[src] > 0.05 {
			t.Fatalf("seed %d: simulated %.3f vs EOTX %.3f", seed, got, d[src])
		}
	}
}

func TestSimulateOpportunisticETXOrderCostsMore(t *testing.T) {
	// On the gap topology the ETX priority order must cost measurably more
	// than the EOTX order — the simulated counterpart of Prop. 6.
	k, p := 6, 0.08
	topo := graph.GapTopology(k, p)
	src, dst := graph.NodeID(0), graph.NodeID(3+k)
	etx := ETXToDestination(topo, dst, ETXOptions{Threshold: 0, AckAware: false}).Dist
	eotx := EOTX(topo, dst, DefaultEOTXOptions())
	cETX, err := SimulateOpportunistic(topo, src, dst, etx, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	cEOTX, err := SimulateOpportunistic(topo, src, dst, eotx, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cETX < 1.5*cEOTX {
		t.Fatalf("ETX order %.2f should cost much more than EOTX order %.2f", cETX, cEOTX)
	}
	if math.Abs(cEOTX-eotx[src])/eotx[src] > 0.05 {
		t.Fatalf("EOTX-order simulation %.3f vs metric %.3f", cEOTX, eotx[src])
	}
}

func TestSimulateOpportunisticUnreachable(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	d := EOTX(topo, 2, DefaultEOTXOptions())
	if _, err := SimulateOpportunistic(topo, 0, 2, d, 10, 1); err == nil {
		t.Fatal("unreachable simulation succeeded")
	}
}

func TestFig21Fortunate(t *testing.T) {
	// §2.2's example: 100 forwarders at p=0.1 cut the expected
	// transmissions from 10 to ~1.
	designated, anyFw := Fig21Fortunate(0.1, 100)
	if designated != 10 {
		t.Fatalf("designated cost %v", designated)
	}
	if anyFw > 1.01 {
		t.Fatalf("any-forwarder cost %v, want ≈1", anyFw)
	}
	// Success probability 1-0.9^100 > 0.9999 as the thesis states.
	if pAny := 1 - math.Pow(0.9, 100); pAny <= 0.9999 {
		t.Fatalf("pAny = %v", pAny)
	}
	if d, a := Fig21Fortunate(0, 5); !math.IsInf(d, 1) || !math.IsInf(a, 1) {
		t.Fatal("degenerate inputs should return Inf")
	}
	// One forwarder: both costs coincide.
	d, a := Fig21Fortunate(0.3, 1)
	if math.Abs(d-a) > 1e-12 {
		t.Fatalf("single-forwarder costs differ: %v vs %v", d, a)
	}
}
