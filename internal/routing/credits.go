package routing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// OrderMetric selects which distance metric orders the forwarder list.
type OrderMetric int

const (
	// OrderETX orders forwarders by ETX distance to the destination, as
	// deployed MORE and ExOR do (§3.2.1, §5.7).
	OrderETX OrderMetric = iota
	// OrderEOTX orders forwarders by the optimal EOTX metric of Chapter 5.
	OrderEOTX
)

func (m OrderMetric) String() string {
	switch m {
	case OrderETX:
		return "ETX"
	case OrderEOTX:
		return "EOTX"
	default:
		return fmt.Sprintf("OrderMetric(%d)", int(m))
	}
}

// PlanOptions configures forwarding-plan construction.
type PlanOptions struct {
	Metric OrderMetric
	// ETX options used both for the ordering metric (when Metric ==
	// OrderETX) and for deciding link usability.
	ETX ETXOptions
	// EOTX options used when Metric == OrderEOTX.
	EOTX EOTXOptions
	// PruneFraction prunes forwarders expected to perform less than this
	// fraction of all transmissions (§3.2.1 uses 0.1). Zero disables
	// pruning.
	PruneFraction float64
	// MaxForwarders bounds the forwarder list (the implementation bounds
	// it to 10, §4.6(c)). Zero means unbounded. Lowest-contribution
	// forwarders are dropped first.
	MaxForwarders int
}

// DefaultPlanOptions matches the deployed MORE configuration.
func DefaultPlanOptions() PlanOptions {
	return PlanOptions{
		Metric:        OrderETX,
		ETX:           DefaultETXOptions(),
		EOTX:          DefaultEOTXOptions(),
		PruneFraction: 0.1,
		MaxForwarders: 10,
	}
}

// Plan is the per-flow forwarding plan the source computes and stamps into
// every packet header: the ordered forwarder list with per-node TX credits,
// plus the expected transmission counts behind them.
type Plan struct {
	Src, Dst graph.NodeID

	// Order lists the participating nodes in ascending distance to the
	// destination: Order[0] == Dst, Order[len-1] == Src. Forwarders are
	// Order[1:len-1].
	Order []graph.NodeID

	// Dist[i] is the ordering metric's distance of node i (indexed by
	// NodeID over the whole topology).
	Dist []float64

	// Z maps each participating node to z_i, the expected number of
	// transmissions it makes per packet delivered end to end (Eq. 3.2).
	Z map[graph.NodeID]float64

	// Credit maps each forwarder to its TX credit (Eq. 3.3): transmissions
	// per reception from upstream. The source is absent (it is backlogged
	// by construction); the destination's credit is 0.
	Credit map[graph.NodeID]float64

	// TotalCost is Σ z_i, the expected network-wide transmissions per
	// packet. Under EOTX ordering it equals the source's EOTX (§5.6.2).
	TotalCost float64
}

// Forwarders returns the forwarder list ordered by proximity to the
// destination (closest first), excluding source and destination.
func (p *Plan) Forwarders() []graph.NodeID {
	if len(p.Order) <= 2 {
		return nil
	}
	fw := make([]graph.NodeID, len(p.Order)-2)
	copy(fw, p.Order[1:len(p.Order)-1])
	return fw
}

// Participants returns every node in the plan, destination first.
func (p *Plan) Participants() []graph.NodeID {
	out := make([]graph.NodeID, len(p.Order))
	copy(out, p.Order)
	return out
}

// Contains reports whether node id participates in the plan.
func (p *Plan) Contains(id graph.NodeID) bool {
	_, ok := p.Z[id]
	return ok
}

// BuildPlan constructs the forwarding plan for a flow: it computes the
// ordering metric to dst, selects candidate forwarders strictly closer to
// the destination than the source, computes z_i with Algorithm 1, prunes
// low-contribution forwarders, recomputes z on the final set, and derives
// TX credits with Eq. (3.3). Returns an error if dst is unreachable.
func BuildPlan(t *graph.Topology, src, dst graph.NodeID, opt PlanOptions) (*Plan, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: src == dst (%d)", src)
	}
	var dist []float64
	switch opt.Metric {
	case OrderETX:
		dist = ETXToDestination(t, dst, opt.ETX).Dist
	case OrderEOTX:
		dist = EOTX(t, dst, opt.EOTX)
	default:
		return nil, fmt.Errorf("routing: unknown metric %v", opt.Metric)
	}
	if math.IsInf(dist[src], 1) {
		return nil, fmt.Errorf("routing: destination %d unreachable from %d", dst, src)
	}

	// Candidate set: nodes strictly closer than the source, plus src.
	order := []graph.NodeID{dst}
	for i := 0; i < t.N(); i++ {
		id := graph.NodeID(i)
		if id == src || id == dst {
			continue
		}
		if dist[i] < dist[src] && !math.IsInf(dist[i], 1) {
			order = append(order, id)
		}
	}
	order = append(order, src)
	sortByDist(order, dist)

	// Drop forwarders that cannot usefully contribute (no delivery to any
	// closer node, or zero load); removing one node can render another
	// useless, so iterate to a fixed point. The same filtering must re-run
	// after pruning and capping, which can themselves strand a forwarder
	// whose only onward connectivity was pruned away.
	settle := func(ord []graph.NodeID) ([]graph.NodeID, []float64) {
		zs := transmissionCounts(t, ord)
		for {
			filtered := filterUseless(ord, zs, src, dst)
			if len(filtered) == len(ord) {
				return ord, zs
			}
			ord = filtered
			zs = transmissionCounts(t, ord)
		}
	}
	order, z := settle(order)
	baseOrder, baseZ := order, z

	if opt.PruneFraction > 0 {
		order = pruneLowContribution(order, z, src, dst, opt.PruneFraction)
		order, z = settle(order)
	}
	if opt.MaxForwarders > 0 && len(order) > opt.MaxForwarders+2 {
		order = capForwarders(order, z, src, dst, opt.MaxForwarders)
		order, z = settle(order)
	}
	// Pruning must never disconnect the source from the destination; if it
	// did (the source's z went non-finite), fall back to the unpruned set.
	if srcZ := z[len(z)-1]; math.IsInf(srcZ, 1) || math.IsNaN(srcZ) || srcZ <= 0 {
		order, z = baseOrder, baseZ
	}
	for _, v := range z {
		if math.IsInf(v, 1) || math.IsNaN(v) {
			return nil, fmt.Errorf("routing: non-finite transmission count for %d->%d", src, dst)
		}
	}

	plan := &Plan{
		Src:    src,
		Dst:    dst,
		Order:  order,
		Dist:   dist,
		Z:      make(map[graph.NodeID]float64, len(order)),
		Credit: make(map[graph.NodeID]float64, len(order)),
	}
	for idx, id := range order {
		plan.Z[id] = z[idx]
		plan.TotalCost += z[idx]
	}
	// Eq. (3.3): TX_credit_i = z_i / Σ_{j>i} z_j (1 − ε_ji).
	for idx, id := range order {
		if id == src {
			continue
		}
		var expectedRx float64
		for jdx := idx + 1; jdx < len(order); jdx++ {
			j := order[jdx]
			expectedRx += z[jdx] * t.Prob(j, id)
		}
		if expectedRx > 0 {
			plan.Credit[id] = z[idx] / expectedRx
		} else {
			plan.Credit[id] = 0
		}
	}
	return plan, nil
}

// sortByDist sorts ids ascending by dist, breaking ties by id for
// determinism (the thesis assumes a strict order w.l.o.g., §5.3.3).
func sortByDist(ids []graph.NodeID, dist []float64) {
	sort.Slice(ids, func(a, b int) bool {
		da, db := dist[ids[a]], dist[ids[b]]
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
}

// transmissionCounts is Algorithm 1: given nodes ordered ascending by
// distance (order[0] = dst, order[n-1] = src), it returns z aligned with
// order. z[0] = 0 (the destination never forwards); the source's entry is
// its own expected transmissions with L_src = 1.
func transmissionCounts(t *graph.Topology, order []graph.NodeID) []float64 {
	n := len(order)
	L := make([]float64, n)
	z := make([]float64, n)
	if n < 2 {
		return z
	}
	L[n-1] = 1 // the source generates the packet
	for i := n - 1; i >= 1; i-- {
		// Probability that at least one node closer than order[i] hears
		// one of its transmissions.
		pAny := 1.0
		for k := 0; k < i; k++ {
			pAny *= t.Loss(order[i], order[k])
		}
		pAny = 1 - pAny
		if pAny <= 0 {
			// No path onward from this node; it would transmit forever.
			// Mark infinite so the caller filters it out.
			if L[i] > 0 {
				z[i] = Inf
			}
			continue
		}
		z[i] = L[i] / pAny
		if math.IsInf(z[i], 1) {
			continue
		}
		// Accumulate order[i]'s contribution to the load of each closer
		// node j: z_i · Π_{k<j} ε_ik · (1 − ε_ij), incrementally.
		P := 1.0
		for j := 1; j < i; j++ {
			P *= t.Loss(order[i], order[j-1]) // P = Π_{k<j} ε_ik
			L[j] += z[i] * P * (1 - t.Loss(order[i], order[j]))
		}
	}
	return z
}

// filterUseless removes forwarders whose z is infinite (no onward
// connectivity) or zero (no load reaches them), keeping src and dst.
func filterUseless(order []graph.NodeID, z []float64, src, dst graph.NodeID) []graph.NodeID {
	out := order[:0:0]
	for idx, id := range order {
		if id == src || id == dst {
			out = append(out, id)
			continue
		}
		if math.IsInf(z[idx], 1) || math.IsNaN(z[idx]) || z[idx] <= 0 {
			continue
		}
		out = append(out, id)
	}
	return out
}

// pruneLowContribution drops forwarders with z_i < frac · Σ_j z_j (§3.2.1).
func pruneLowContribution(order []graph.NodeID, z []float64, src, dst graph.NodeID, frac float64) []graph.NodeID {
	var total float64
	for _, v := range z {
		if !math.IsInf(v, 1) {
			total += v
		}
	}
	cut := frac * total
	out := order[:0:0]
	for idx, id := range order {
		if id == src || id == dst || z[idx] >= cut {
			out = append(out, id)
		}
	}
	return out
}

// capForwarders keeps the maxF highest-contribution forwarders.
func capForwarders(order []graph.NodeID, z []float64, src, dst graph.NodeID, maxF int) []graph.NodeID {
	type entry struct {
		id  graph.NodeID
		idx int
		z   float64
	}
	var fw []entry
	for idx, id := range order {
		if id != src && id != dst {
			fw = append(fw, entry{id, idx, z[idx]})
		}
	}
	sort.Slice(fw, func(a, b int) bool {
		if fw[a].z != fw[b].z {
			return fw[a].z > fw[b].z
		}
		return fw[a].id < fw[b].id
	})
	if len(fw) > maxF {
		fw = fw[:maxF]
	}
	keep := make(map[graph.NodeID]bool, len(fw)+2)
	keep[src], keep[dst] = true, true
	for _, e := range fw {
		keep[e.id] = true
	}
	out := order[:0:0]
	for _, id := range order {
		if keep[id] {
			out = append(out, id)
		}
	}
	return out
}

// LoadDistribution is Algorithm 6: given the EOTX cost order, it retrieves
// the optimal per-node transmission counts z and the per-edge information
// flow x by distributing unit load from the source downhill. It returns z
// indexed by position in order and the flow matrix x[i][j] (positions in
// order), where x[i][j] > 0 only for j < i.
func LoadDistribution(t *graph.Topology, order []graph.NodeID) (z []float64, x [][]float64) {
	n := len(order)
	z = make([]float64, n)
	x = make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, n)
	}
	if n < 2 {
		return z, x
	}
	L := make([]float64, n)
	L[n-1] = 1
	for i := n - 1; i >= 1; i-- {
		if L[i] == 0 {
			continue
		}
		// q_{i,j} = 1 − Π_{m≤j} (1 − p_{i,order[m]}) over the j+1 cheapest.
		Pnone := 1.0
		for m := 0; m < i; m++ {
			Pnone *= t.Loss(order[i], order[m])
		}
		q := 1 - Pnone
		if q <= 0 {
			z[i] = Inf
			continue
		}
		z[i] = L[i] / q
		P := 1.0
		prevQ := 0.0
		for j := 0; j < i; j++ {
			P *= t.Loss(order[i], order[j])
			qj := 1 - P
			x[i][j] = (qj - prevQ) * z[i]
			L[j] += x[i][j]
			prevQ = qj
		}
	}
	return z, x
}

// TotalCost sums finite z values.
func TotalCost(z []float64) float64 {
	var s float64
	for _, v := range z {
		if !math.IsInf(v, 1) && !math.IsNaN(v) {
			s += v
		}
	}
	return s
}

// CostGap computes §5.7's gap for one source-destination pair: the ratio of
// the total expected transmissions Σ z_i when Algorithm 1 runs under the
// ETX order to the total under the EOTX order. A gap of 1 means the orders
// agree in cost; larger means EOTX ordering would save transmissions.
// Pruning is disabled for the comparison, as in the thesis' analysis.
func CostGap(t *graph.Topology, src, dst graph.NodeID, etxOpt ETXOptions, eotxOpt EOTXOptions) (gap float64, err error) {
	opt := PlanOptions{Metric: OrderETX, ETX: etxOpt, EOTX: eotxOpt}
	etxPlan, err := BuildPlan(t, src, dst, opt)
	if err != nil {
		return 0, err
	}
	opt.Metric = OrderEOTX
	eotxPlan, err := BuildPlan(t, src, dst, opt)
	if err != nil {
		return 0, err
	}
	if eotxPlan.TotalCost <= 0 {
		return 0, fmt.Errorf("routing: degenerate EOTX cost for %d->%d", src, dst)
	}
	return etxPlan.TotalCost / eotxPlan.TotalCost, nil
}
