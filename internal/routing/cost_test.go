package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestZeroPenaltyIsByteIdentical is the digest-safety contract of the
// CostModel refactor: a nil model, an empty StaticCost, and a StaticCost
// of explicit zeros must all produce bit-identical ETX and EOTX results —
// not merely approximately equal. Every golden in the corpus rides on
// this (x + 0.0 preserves the float64 bit pattern for the non-negative
// costs these metrics produce).
func TestZeroPenaltyIsByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 9, 0.5)
		zeros := StaticCost{}
		for i := 0; i < topo.N(); i++ {
			zeros[graph.NodeID(i)] = 0
		}
		for dst := 0; dst < topo.N(); dst++ {
			dd := graph.NodeID(dst)
			base := EOTX(topo, dd, DefaultEOTXOptions())
			for _, m := range []CostModel{StaticCost{}, zeros} {
				opt := DefaultEOTXOptions()
				opt.Cost = m
				got := EOTX(topo, dd, opt)
				for i := range base {
					if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
						t.Fatalf("seed %d dst %d node %d: EOTX with zero model %v != %v (bits differ)",
							seed, dst, i, got[i], base[i])
					}
				}
			}
			ebase := ETXToDestination(topo, dd, ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
			eopt := ETXOptions{Threshold: graph.RouteThreshold, AckAware: true, Cost: zeros}
			egot := ETXToDestination(topo, dd, eopt)
			for i := range ebase.Dist {
				if math.Float64bits(egot.Dist[i]) != math.Float64bits(ebase.Dist[i]) {
					t.Fatalf("seed %d dst %d node %d: ETX dist with zero model %v != %v",
						seed, dst, i, egot.Dist[i], ebase.Dist[i])
				}
				if egot.Next[i] != ebase.Next[i] {
					t.Fatalf("seed %d dst %d node %d: ETX next hop moved under zero model",
						seed, dst, i)
				}
			}
		}
	}
}

// TestPenaltyDemotesLoadedRelay: two otherwise-identical relays between
// source and destination; pricing one as saturated must steer both metrics
// through the other.
func TestPenaltyDemotesLoadedRelay(t *testing.T) {
	// 0 -> {1,2} -> 3, all links 0.8, symmetric.
	topo := graph.New(4)
	topo.SetLink(0, 1, 0.8)
	topo.SetLink(0, 2, 0.8)
	topo.SetLink(1, 3, 0.8)
	topo.SetLink(2, 3, 0.8)
	dst := graph.NodeID(3)

	cost := StaticCost{1: 5}
	et := ETXToDestination(topo, dst, ETXOptions{Threshold: graph.RouteThreshold, Cost: cost})
	if et.Next[0] != 2 {
		t.Errorf("ETX still routes through the penalized relay: next hop %d", et.Next[0])
	}
	// The relays are symmetric, so dodging the loaded one costs nothing:
	// the source's distance must match the unpenalized run exactly.
	ebase := ETXToDestination(topo, dst, ETXOptions{Threshold: graph.RouteThreshold})
	if et.Dist[0] != ebase.Dist[0] {
		t.Errorf("detour around the loaded relay changed the source cost: %v vs %v",
			et.Dist[0], ebase.Dist[0])
	}

	opt := DefaultEOTXOptions()
	opt.Cost = cost
	d := EOTX(topo, dst, opt)
	base := EOTX(topo, dst, DefaultEOTXOptions())
	// The source's distance rises (its cheap path through 1 got pricier)
	// but stays below the penalized path: opportunistic receptions at 2
	// still carry the traffic.
	if d[0] <= base[0] {
		t.Errorf("EOTX source distance did not price in the loaded relay: %v <= %v", d[0], base[0])
	}
	if d[0] >= base[0]+5 {
		t.Errorf("EOTX charged the full penalty despite an unloaded relay: %v vs base %v", d[0], base[0])
	}
}

// TestPenaltyNeverChargesDestination: the destination is where traffic
// wants to go; load pricing must not make delivery itself look expensive.
func TestPenaltyNeverChargesDestination(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	dst := graph.NodeID(2)
	cost := StaticCost{2: 100}

	base := EOTX(topo, dst, DefaultEOTXOptions())
	opt := DefaultEOTXOptions()
	opt.Cost = cost
	got := EOTX(topo, dst, opt)
	for i := range base {
		if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
			t.Fatalf("node %d: destination penalty leaked into EOTX: %v != %v", i, got[i], base[i])
		}
	}
	ebase := ETXToDestination(topo, dst, ETXOptions{Threshold: graph.RouteThreshold})
	egot := ETXToDestination(topo, dst, ETXOptions{Threshold: graph.RouteThreshold, Cost: cost})
	for i := range ebase.Dist {
		if math.Float64bits(egot.Dist[i]) != math.Float64bits(ebase.Dist[i]) {
			t.Fatalf("node %d: destination penalty leaked into ETX", i)
		}
	}
}
