package routing

import "repro/internal/graph"

// CostModel prices a node as a forwarder beyond what the loss matrix
// already says. The routing metrics add NodePenalty(i), in expected-
// transmission units, to every path/metric contribution that routes a
// packet *through* node i — destinations are never penalized (they are
// where the packet must land, loaded or not). A nil CostModel, or one
// returning 0 for every node, leaves ETX/EOTX bit-identical to the
// loss-only computation: the penalty is applied additively, so a zero
// term cannot perturb float results.
//
// The congestion layer feeds implementations of this interface: queue
// depth EWMAs, drop rates, and credit-grant starvation become a scalar
// load score per node (see congest.Load), scaled by a configured weight.
// Under oracle state the score is sampled globally; under learned state
// it rides on LSAs (packet.LSA.Load) so each node's view prices what it
// has heard.
type CostModel interface {
	// NodePenalty returns the additive cost of forwarding through node
	// id. Must be deterministic between topology-version bumps: callers
	// cache tables keyed on a version counter and only recompute when
	// told the inputs moved.
	NodePenalty(id graph.NodeID) float64
}

// StaticCost is a map-backed CostModel for tests and offline analysis.
type StaticCost map[graph.NodeID]float64

// NodePenalty returns the mapped penalty, or 0 for absent nodes.
func (s StaticCost) NodePenalty(id graph.NodeID) float64 { return s[id] }

// nodePenalty folds a possibly-nil model into a plain lookup.
func nodePenalty(m CostModel, id, dst graph.NodeID) float64 {
	if m == nil || id == dst {
		return 0
	}
	return m.NodePenalty(id)
}
