package routing

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// SimulateOpportunistic estimates, by Monte Carlo, the expected number of
// transmissions to deliver one packet from src to dst under the idealized
// opportunistic forwarding rule of §5.4: after each broadcast, of all nodes
// that received it (including the transmitter itself), the one with the
// lowest metric forwards. With the EOTX metric this expectation converges
// to EOTX(src) — the equivalence Proposition 4 proves — so the function
// doubles as an empirical validator for the metric algorithms. Any metric
// vector (e.g. ETX distances) can be supplied to measure the cost of a
// different priority order.
//
// Reception draws are independent per receiver, matching the §5.3.1 model.
func SimulateOpportunistic(t *graph.Topology, src, dst graph.NodeID, metric []float64, trials int, seed int64) (float64, error) {
	if math.IsInf(metric[src], 1) {
		return 0, errors.New("routing: source unreachable under the supplied metric")
	}
	rng := rand.New(rand.NewSource(seed))
	var total float64
	maxSteps := trials * 10000
	steps := 0
	for trial := 0; trial < trials; trial++ {
		at := src
		for at != dst {
			steps++
			if steps > maxSteps {
				return 0, errors.New("routing: simulation diverged (metric has no descent?)")
			}
			total++
			best := at
			// Reception draws in ascending neighbor order — the same RNG
			// stream as a whole-population scan over nodes with p > 0.
			for _, e := range t.OutEdges(at) {
				if rng.Float64() < e.P && metric[e.Node] < metric[best] {
					best = e.Node
				}
			}
			at = best
		}
	}
	return total / float64(trials), nil
}

// Fig21Fortunate computes the two "benefits of fortunate receptions"
// quantities of Figure 2-1:
//
//   - ManyForwarders: with n independent forwarders each receiving with
//     probability p, the chance at least one receives is 1-(1-p)^n, and the
//     expected transmissions until someone receives drops from 1/p to
//     1/(1-(1-p)^n) — §2.2's hundredfold example.
//   - The function returns both the designated-nexthop cost and the
//     any-forwarder cost.
func Fig21Fortunate(p float64, n int) (designated, anyForwarder float64) {
	if p <= 0 || p > 1 || n < 1 {
		return math.Inf(1), math.Inf(1)
	}
	designated = 1 / p
	anyForwarder = 1 / (1 - math.Pow(1-p, float64(n)))
	return designated, anyForwarder
}
