package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func planOptsNoPrune(metric OrderMetric) PlanOptions {
	return PlanOptions{
		Metric: metric,
		ETX:    ETXOptions{Threshold: 0, AckAware: false},
		EOTX:   DefaultEOTXOptions(),
	}
}

func TestAlg1SingleHop(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.5)
	plan, err := BuildPlan(topo, 1, 0, planOptsNoPrune(OrderETX))
	if err != nil {
		t.Fatal(err)
	}
	// Source must transmit 1/p = 2 times per packet; no forwarders.
	if !almost(plan.Z[1], 2, 1e-12) {
		t.Fatalf("z(src) = %v, want 2", plan.Z[1])
	}
	if len(plan.Forwarders()) != 0 {
		t.Fatalf("forwarders = %v", plan.Forwarders())
	}
	if !almost(plan.TotalCost, 2, 1e-12) {
		t.Fatalf("total cost = %v", plan.TotalCost)
	}
}

func TestAlg1Chain(t *testing.T) {
	// Perfect relay chain src(2) -> R(1) -> dst(0), no direct link: each
	// node transmits exactly once.
	topo := graph.New(3)
	topo.SetLink(2, 1, 1)
	topo.SetLink(1, 0, 1)
	plan, err := BuildPlan(topo, 2, 0, planOptsNoPrune(OrderETX))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(plan.Z[2], 1, 1e-12) || !almost(plan.Z[1], 1, 1e-12) || plan.Z[0] != 0 {
		t.Fatalf("z = %v", plan.Z)
	}
	// R's TX credit: one transmission per packet heard from upstream, and
	// it hears every source transmission: credit = 1.
	if !almost(plan.Credit[1], 1, 1e-12) {
		t.Fatalf("credit(R) = %v", plan.Credit[1])
	}
}

func TestAlg1DiamondOverhearing(t *testing.T) {
	// Fig 1-1 with perfect relay links and direct overhear probability q:
	// src transmits once; R receives it, but must forward only the
	// packets dst missed: L_R = 1-q, z_R = 1-q.
	q := 0.49
	topo := graph.New(3)
	topo.SetLink(2, 1, 1)
	topo.SetLink(1, 0, 1)
	topo.SetDirected(2, 0, q)
	topo.SetDirected(0, 2, q)
	plan, err := BuildPlan(topo, 2, 0, planOptsNoPrune(OrderETX))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(plan.Z[2], 1, 1e-12) {
		t.Fatalf("z(src) = %v, want 1", plan.Z[2])
	}
	if !almost(plan.Z[1], 1-q, 1e-12) {
		t.Fatalf("z(R) = %v, want %v", plan.Z[1], 1-q)
	}
	if !almost(plan.TotalCost, 2-q, 1e-12) {
		t.Fatalf("total = %v, want %v", plan.TotalCost, 2-q)
	}
}

func TestCreditsMatchDefinition(t *testing.T) {
	// Eq (3.3): credit_i = z_i / Σ_{j>i} z_j p_ji on a random topology.
	rng := rand.New(rand.NewSource(5))
	topo := randomTopology(rng, 8, 0.7)
	plan, err := BuildPlan(topo, 7, 0, planOptsNoPrune(OrderETX))
	if err != nil {
		t.Skip("unreachable draw")
	}
	for idx, id := range plan.Order {
		if id == plan.Src {
			continue
		}
		var rx float64
		for j := idx + 1; j < len(plan.Order); j++ {
			rx += plan.Z[plan.Order[j]] * topo.Prob(plan.Order[j], id)
		}
		want := 0.0
		if rx > 0 {
			want = plan.Z[id] / rx
		}
		if !almost(plan.Credit[id], want, 1e-9) {
			t.Fatalf("credit(%d) = %v, want %v", id, plan.Credit[id], want)
		}
	}
}

func TestEOTXOrderTotalCostEqualsEOTX(t *testing.T) {
	// §5.6.2: when the EOTX order is used, Σ z_i = d(src).
	for seed := int64(0); seed < 15; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 8, 0.6)
		d := EOTX(topo, 0, DefaultEOTXOptions())
		src := graph.NodeID(topo.N() - 1)
		if math.IsInf(d[src], 1) {
			continue
		}
		plan, err := BuildPlan(topo, src, 0, planOptsNoPrune(OrderEOTX))
		if err != nil {
			t.Fatal(err)
		}
		if !almost(plan.TotalCost, d[src], 1e-6) {
			t.Fatalf("seed %d: Σz = %v, EOTX(src) = %v", seed, plan.TotalCost, d[src])
		}
	}
}

func TestETXOrderCostAtLeastEOTX(t *testing.T) {
	// The EOTX order is optimal; any other order costs at least as much.
	for seed := int64(20); seed < 35; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 8, 0.6)
		src, dst := graph.NodeID(topo.N()-1), graph.NodeID(0)
		gap, err := CostGap(topo, src, dst,
			ETXOptions{Threshold: 0, AckAware: false}, DefaultEOTXOptions())
		if err != nil {
			continue
		}
		if gap < 1-1e-6 {
			t.Fatalf("seed %d: ETX-order cost below EOTX-order optimum (gap %v)", seed, gap)
		}
	}
}

func TestCostGapUnbounded(t *testing.T) {
	// Prop 6: on the Fig 5-1 topology the gap approaches k as p -> 0.
	k := 8
	prev := 0.0
	for _, p := range []float64{0.2, 0.1, 0.05, 0.01} {
		topo := graph.GapTopology(k, p)
		gap, err := CostGap(topo, 0, graph.NodeID(3+k),
			ETXOptions{Threshold: 0, AckAware: false}, DefaultEOTXOptions())
		if err != nil {
			t.Fatal(err)
		}
		if gap < prev {
			t.Fatalf("gap should grow as p shrinks: p=%v gap=%v prev=%v", p, gap, prev)
		}
		prev = gap
	}
	// At p = 0.01 the ratio (1/p + 1)/(1/(1-(1-p)^k) + 2) is already
	// within ~30% of k.
	if prev < float64(k)*0.5 {
		t.Fatalf("gap %v too small for k=%d at p=0.01", prev, k)
	}
}

func TestLoadDistributionConservation(t *testing.T) {
	// Flow conservation (5.1): for every forwarder, inflow == outflow;
	// the source emits 1 unit; the destination absorbs 1 unit.
	for seed := int64(0); seed < 10; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 8, 0.7)
		src, dst := graph.NodeID(topo.N()-1), graph.NodeID(0)
		d := EOTX(topo, dst, DefaultEOTXOptions())
		if math.IsInf(d[src], 1) {
			continue
		}
		var order []graph.NodeID
		order = append(order, dst)
		for i := 0; i < topo.N(); i++ {
			id := graph.NodeID(i)
			if id != src && id != dst && d[i] < d[src] && !math.IsInf(d[i], 1) {
				order = append(order, id)
			}
		}
		order = append(order, src)
		sortByDist(order, d)
		z, x := LoadDistribution(topo, order)
		n := len(order)
		for i := 0; i < n; i++ {
			var in, out float64
			for j := 0; j < n; j++ {
				in += x[j][i]
				out += x[i][j]
			}
			switch order[i] {
			case src:
				if !almost(out-in, 1, 1e-9) {
					t.Fatalf("seed %d: source net outflow %v", seed, out-in)
				}
			case dst:
				if !almost(in-out, 1, 1e-9) {
					t.Fatalf("seed %d: dest net inflow %v", seed, in-out)
				}
			default:
				if !almost(in, out, 1e-9) {
					t.Fatalf("seed %d: node %d inflow %v != outflow %v", seed, order[i], in, out)
				}
			}
		}
		// §5.6.2: Σz via Alg 6 equals EOTX(src) and matches Algorithm 1
		// under the same (EOTX) order.
		if !almost(TotalCost(z), d[src], 1e-6) {
			t.Fatalf("seed %d: Alg6 total %v != EOTX %v", seed, TotalCost(z), d[src])
		}
		z1 := transmissionCounts(topo, order)
		for i := range z {
			if !almost(z[i], z1[i], 1e-9) {
				t.Fatalf("seed %d: Alg6 z[%d]=%v != Alg1 %v", seed, i, z[i], z1[i])
			}
		}
	}
}

func TestPruningDropsMinorForwarders(t *testing.T) {
	// A forwarder with a tiny expected contribution must be pruned at the
	// 10% threshold.
	topo := graph.New(4)
	// src=3 -> R=1 -> dst=0 is the main artery; node 2 is a marginal
	// helper barely connected.
	topo.SetLink(3, 1, 0.9)
	topo.SetLink(1, 0, 0.9)
	topo.SetDirected(3, 2, 0.05)
	topo.SetDirected(2, 3, 0.9)
	topo.SetDirected(2, 0, 0.05)
	topo.SetDirected(0, 2, 0.05)
	opt := planOptsNoPrune(OrderETX)
	noPrune, err := BuildPlan(topo, 3, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.PruneFraction = 0.1
	pruned, err := BuildPlan(topo, 3, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Forwarders()) >= len(noPrune.Forwarders()) && noPrune.Contains(2) && pruned.Contains(2) {
		t.Fatalf("marginal forwarder not pruned: before=%v after=%v",
			noPrune.Forwarders(), pruned.Forwarders())
	}
	if !pruned.Contains(1) {
		t.Fatal("main forwarder wrongly pruned")
	}
}

func TestMaxForwardersCap(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	opt := DefaultPlanOptions()
	opt.PruneFraction = 0 // force the cap to do the work
	opt.MaxForwarders = 3
	for src := 1; src < 6; src++ {
		plan, err := BuildPlan(topo, graph.NodeID(src), 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Forwarders()) > 3 {
			t.Fatalf("forwarder list %v exceeds cap", plan.Forwarders())
		}
	}
}

func TestBuildPlanErrors(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	if _, err := BuildPlan(topo, 0, 0, DefaultPlanOptions()); err == nil {
		t.Error("src == dst accepted")
	}
	if _, err := BuildPlan(topo, 0, 2, DefaultPlanOptions()); err == nil {
		t.Error("unreachable destination accepted")
	}
}

func TestPlanOrderInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 9, 0.6)
		plan, err := BuildPlan(topo, 8, 0, DefaultPlanOptions())
		if err != nil {
			return true // disconnected draws are fine
		}
		if plan.Order[0] != 0 || plan.Order[len(plan.Order)-1] != 8 {
			return false
		}
		// Ascending metric order.
		for i := 1; i < len(plan.Order); i++ {
			if plan.Dist[plan.Order[i]] < plan.Dist[plan.Order[i-1]] {
				return false
			}
		}
		// All credits finite and non-negative; z non-negative.
		for _, id := range plan.Order {
			if plan.Z[id] < 0 || math.IsInf(plan.Z[id], 1) || math.IsNaN(plan.Z[id]) {
				return false
			}
			if id != plan.Src {
				c := plan.Credit[id]
				if c < 0 || math.IsInf(c, 1) || math.IsNaN(c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOrderMetricString(t *testing.T) {
	if OrderETX.String() != "ETX" || OrderEOTX.String() != "EOTX" {
		t.Fatal("metric names wrong")
	}
	if OrderMetric(9).String() == "" {
		t.Fatal("unknown metric should still render")
	}
}

func TestTestbedGapStatistics(t *testing.T) {
	// §5.7 on our testbed stand-in: a large share of pairs should be
	// unaffected by the order choice, and the median gap among affected
	// pairs should be small.
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	etxOpt := ETXOptions{Threshold: 0, AckAware: false}
	unaffected, affected := 0, 0
	var gaps []float64
	for src := 0; src < topo.N(); src++ {
		for dst := 0; dst < topo.N(); dst++ {
			if src == dst {
				continue
			}
			gap, err := CostGap(topo, graph.NodeID(src), graph.NodeID(dst), etxOpt, DefaultEOTXOptions())
			if err != nil {
				t.Fatalf("gap %d->%d: %v", src, dst, err)
			}
			if gap <= 1+1e-9 {
				unaffected++
			} else {
				affected++
				gaps = append(gaps, gap)
			}
		}
	}
	total := unaffected + affected
	if unaffected*100 < total*20 {
		t.Fatalf("only %d/%d pairs unaffected by EOTX order; expected a large share", unaffected, total)
	}
	for _, g := range gaps {
		if g > 2.0 {
			t.Fatalf("implausibly large gap %v on a dense testbed", g)
		}
	}
}
