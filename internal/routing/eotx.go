package routing

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/graph"
)

// EOTXOptions configures the EOTX computation.
type EOTXOptions struct {
	// Threshold is the minimum delivery probability for a link to
	// contribute opportunistic receptions in the metric. The thesis notes
	// (§5.1) that bounding the neighborhood discards some opportunistic
	// receptions; a small threshold mirrors how marginal links are below
	// the noise floor of probe-based estimation.
	Threshold float64
	// Cost, when non-nil, adds a per-node penalty each time the metric
	// routes a packet through an intermediate forwarder (never the
	// destination): the relaxation uses d(k) + penalty(k) as the cost of
	// handing the packet to k. Nil or all-zero leaves EOTX bit-identical
	// to the loss-only metric. The validation oracles (EOTXBellmanFord,
	// EOTXFixedPoint) ignore Cost — they exist to cross-check the
	// loss-only algorithm.
	Cost CostModel
}

// DefaultEOTXOptions uses every link the channel can deliver on.
func DefaultEOTXOptions() EOTXOptions { return EOTXOptions{Threshold: 0.0} }

// EOTX computes, for every node, the minimum expected number of
// opportunistic transmissions network-wide to deliver one packet from that
// node to dst, assuming independent losses — Algorithm 5 (Dijkstra fashion).
// dist[dst] == 0; unreachable nodes get Inf.
//
// The update follows the thesis exactly: T(i) accumulates
// 1 + Σ (q_ik − q_i(k−1))·d(k) over closed nodes k in ascending cost order,
// P(i) tracks Π(1−p_ik), and d(i) = T(i)/(1−P(i)).
func EOTX(t *graph.Topology, dst graph.NodeID, opt EOTXOptions) []float64 {
	n := t.N()
	d := make([]float64, n)
	T := make([]float64, n)
	P := make([]float64, n)
	closed := make([]bool, n)
	for i := range d {
		d[i] = Inf
		T[i] = 1
		P[i] = 1
	}
	d[dst] = 0

	pq := &distHeap{}
	heap.Push(pq, distEntry{node: dst, dist: 0})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		k := e.node
		if closed[k] || e.dist > d[k] {
			continue
		}
		closed[k] = true
		if math.IsInf(d[k], 1) {
			break // everything remaining is unreachable
		}
		// Only nodes with a link into k gain from k closing: iterate k's
		// in-edges instead of the whole population.
		for _, in := range t.InEdges(k) {
			i := in.Node
			if closed[i] {
				continue
			}
			p := in.P
			if p <= opt.Threshold {
				continue
			}
			// Handing the packet to forwarder k pays k's load penalty on
			// top of k's own remaining cost.
			T[i] += p * P[i] * (d[k] + nodePenalty(opt.Cost, k, dst))
			P[i] *= 1 - p
			nd := T[i] / (1 - P[i])
			if nd < d[i] {
				d[i] = nd
				heap.Push(pq, distEntry{node: i, dist: nd})
			}
		}
	}
	return d
}

// EOTXBellmanFord computes the same metric with the Bellman–Ford-style
// Algorithm 4, calling the Recompute procedure (Algorithm 3) for every node
// each round. It exists to validate Algorithm 5 and because the thesis
// argues the BF framework suits distributed computation.
func EOTXBellmanFord(t *graph.Topology, dst graph.NodeID, opt EOTXOptions) []float64 {
	n := t.N()
	d := make([]float64, n)
	for i := range d {
		d[i] = Inf
	}
	d[dst] = 0
	for round := 0; round < n; round++ {
		next := make([]float64, n)
		next[dst] = 0
		for i := 0; i < n; i++ {
			if graph.NodeID(i) == dst {
				continue
			}
			next[i] = recompute(t, graph.NodeID(i), d, opt)
		}
		changed := false
		for i := range d {
			if math.Abs(next[i]-d[i]) > 1e-12 && !(math.IsInf(next[i], 1) && math.IsInf(d[i], 1)) {
				changed = true
			}
			d[i] = next[i]
		}
		if !changed {
			break
		}
	}
	return d
}

// recompute is Algorithm 3: given tentative costs d for all other nodes, it
// returns node i's cost using the closed form (5.15), admitting candidate
// forwarders in ascending cost order while they improve the estimate.
func recompute(t *graph.Topology, i graph.NodeID, d []float64, opt EOTXOptions) float64 {
	// Candidates in ascending d order.
	out := t.OutEdges(i)
	cand := make([]graph.NodeID, 0, len(out))
	for _, e := range out {
		if math.IsInf(d[e.Node], 1) {
			continue
		}
		if e.P > opt.Threshold {
			cand = append(cand, e.Node)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if d[cand[a]] != d[cand[b]] {
			return d[cand[a]] < d[cand[b]]
		}
		return cand[a] < cand[b]
	})
	T := 1.0 // numerator: 1 + Σ (q_k − q_{k−1}) d(k)
	P := 1.0 // Π (1 − p_ik) over admitted forwarders; q = 1 − P
	x := Inf // current estimate T/(1−P)
	for _, k := range cand {
		if d[k] >= x {
			break // admitting k cannot improve and k is not a valid forwarder
		}
		p := t.Prob(i, k)
		T += p * P * d[k]
		P *= 1 - p
		x = T / (1 - P)
	}
	return x
}

// EOTXFixedPoint solves definition (5.14) directly by value iteration with
// subset enumeration of the neighbor reception events, assuming independent
// losses. It is exponential in the neighborhood size (≤ maxNbrs neighbors
// per node) and exists purely as an oracle for cross-validating the two
// fast algorithms. It panics if a node's neighborhood exceeds maxNbrs.
func EOTXFixedPoint(t *graph.Topology, dst graph.NodeID, opt EOTXOptions, maxNbrs int) []float64 {
	n := t.N()
	d := make([]float64, n)
	for i := range d {
		d[i] = Inf
	}
	d[dst] = 0
	type nbr struct {
		id graph.NodeID
		p  float64
	}
	nbrs := make([][]nbr, n)
	for i := 0; i < n; i++ {
		for _, e := range t.OutEdges(graph.NodeID(i)) {
			if e.P > opt.Threshold {
				nbrs[i] = append(nbrs[i], nbr{e.Node, e.P})
			}
		}
		if len(nbrs[i]) > maxNbrs {
			panic("routing: EOTXFixedPoint neighborhood too large")
		}
	}
	// Value-iterate: each sweep recomputes d(s) = 1 + Σ_K p_K min_{k∈K} d(k)
	// solved for d(s) (s is always in K). Enumerate subsets of neighbors.
	for sweep := 0; sweep < 4*n+8; sweep++ {
		maxDelta := 0.0
		for s := 0; s < n; s++ {
			if graph.NodeID(s) == dst {
				continue
			}
			ns := nbrs[s]
			m := len(ns)
			// Σ over reception subsets K' (of neighbors) of
			// Pr[K'] · min d over K' — but only when that min is cheaper
			// than s; otherwise s keeps the packet, contributing d(s).
			// Solve x = 1 + Σ_{K'} Pr[K'] · min(mind(K'), x):
			// x·(1 − pKeep) = 1 + contrib, where pKeep sums Pr[K'] with
			// mind(K') ≥ x. Because the candidate minima are the d values
			// themselves, water-fill over distinct thresholds: admit
			// receivers cheaper than x. Here we do it exactly: iterate x.
			x := d[s]
			if math.IsInf(x, 1) {
				x = 1e18 // finite stand-in so comparisons work
			}
			for it := 0; it < 64; it++ {
				contrib := 0.0
				pKeep := 0.0
				for mask := 0; mask < 1<<m; mask++ {
					pr := 1.0
					minD := math.Inf(1)
					for b := 0; b < m; b++ {
						if mask&(1<<b) != 0 {
							pr *= ns[b].p
							if d[ns[b].id] < minD {
								minD = d[ns[b].id]
							}
						} else {
							pr *= 1 - ns[b].p
						}
					}
					if minD < x {
						contrib += pr * minD
					} else {
						pKeep += pr
					}
				}
				if pKeep >= 1-1e-15 {
					x = 1e18
					break
				}
				nx := (1 + contrib) / (1 - pKeep)
				if math.Abs(nx-x) < 1e-12 {
					x = nx
					break
				}
				x = nx
			}
			old := d[s]
			if x >= 1e17 {
				d[s] = Inf
			} else {
				d[s] = x
			}
			delta := math.Abs(d[s] - old)
			if !math.IsInf(delta, 1) && delta > maxDelta {
				maxDelta = delta
			} else if math.IsInf(old, 1) != math.IsInf(d[s], 1) {
				maxDelta = 1
			}
		}
		if maxDelta < 1e-12 {
			break
		}
	}
	return d
}
