package routing

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func almost(a, b, eps float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestLinkETX(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.5)
	opt := ETXOptions{Threshold: 0.1, AckAware: false}
	if got := LinkETX(topo, 0, 1, opt); !almost(got, 2, 1e-12) {
		t.Fatalf("forward-only ETX = %v, want 2", got)
	}
	opt.AckAware = true
	if got := LinkETX(topo, 0, 1, opt); !almost(got, 4, 1e-12) {
		t.Fatalf("ack-aware ETX = %v, want 4", got)
	}
	topo.SetDirected(1, 0, 0.05)
	if got := LinkETX(topo, 0, 1, opt); !math.IsInf(got, 1) {
		t.Fatalf("link with dead reverse should be unusable, got %v", got)
	}
}

func TestETXDiamondPrefersRelay(t *testing.T) {
	// Paper's Fig 1-1 numbers: with perfect relay links the 2-hop ETX is 2,
	// beating the direct 1/0.49 ≈ 2.04.
	topo := graph.New(3)
	topo.SetLink(0, 1, 1)
	topo.SetLink(1, 2, 1)
	topo.SetLink(0, 2, 0.49)
	tab := ETXToDestination(topo, 2, ETXOptions{Threshold: 0.1, AckAware: false})
	if !almost(tab.Dist[0], 2, 1e-12) {
		t.Fatalf("src ETX = %v, want 2", tab.Dist[0])
	}
	path := tab.Path(0)
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v, want through relay", path)
	}
}

func TestETXLine(t *testing.T) {
	topo := graph.Line(4, 0.5, 10)
	tab := ETXToDestination(topo, 3, ETXOptions{Threshold: 0.1, AckAware: false})
	for i := 0; i < 4; i++ {
		want := float64(3-i) * 2
		if !almost(tab.Dist[i], want, 1e-9) {
			t.Fatalf("node %d ETX = %v, want %v", i, tab.Dist[i], want)
		}
	}
	if got := tab.Path(0); len(got) != 4 {
		t.Fatalf("path = %v", got)
	}
	if !tab.Closer(2, 1) || tab.Closer(1, 2) {
		t.Fatal("Closer ordering wrong")
	}
}

func TestETXUnreachable(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	tab := ETXToDestination(topo, 2, DefaultETXOptions())
	if !math.IsInf(tab.Dist[0], 1) {
		t.Fatal("unreachable node should have Inf ETX")
	}
	if tab.Path(0) != nil {
		t.Fatal("unreachable path should be nil")
	}
	if tab.Dist[2] != 0 || tab.Path(2) == nil || len(tab.Path(2)) != 1 {
		t.Fatal("destination self-path wrong")
	}
}

func TestETXAsymmetricUsesDirectional(t *testing.T) {
	// Forward-only metric must use p(i->j) for i's cost toward j.
	topo := graph.New(2)
	topo.SetDirected(0, 1, 0.9)
	topo.SetDirected(1, 0, 0.3)
	opt := ETXOptions{Threshold: 0.1, AckAware: false}
	tabTo1 := ETXToDestination(topo, 1, opt)
	if !almost(tabTo1.Dist[0], 1/0.9, 1e-12) {
		t.Fatalf("dist 0->1 = %v", tabTo1.Dist[0])
	}
	tabTo0 := ETXToDestination(topo, 0, opt)
	if !almost(tabTo0.Dist[1], 1/0.3, 1e-12) {
		t.Fatalf("dist 1->0 = %v", tabTo0.Dist[1])
	}
}

func TestETXOnTestbedAllReachable(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	for dst := 0; dst < topo.N(); dst++ {
		tab := ETXToDestination(topo, graph.NodeID(dst), DefaultETXOptions())
		for i := 0; i < topo.N(); i++ {
			if math.IsInf(tab.Dist[i], 1) {
				t.Fatalf("node %d cannot reach %d", i, dst)
			}
			if p := tab.Path(graph.NodeID(i)); p == nil {
				t.Fatalf("no path %d -> %d", i, dst)
			}
		}
	}
}
