package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestEOTXSingleLink(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.25)
	d := EOTX(topo, 1, DefaultEOTXOptions())
	if !almost(d[0], 4, 1e-9) {
		t.Fatalf("EOTX over single 0.25 link = %v, want 4", d[0])
	}
	if d[1] != 0 {
		t.Fatalf("EOTX of destination = %v", d[1])
	}
}

func TestEOTXTwoIndependentRelays(t *testing.T) {
	// src (0) -> relays (1,2) with p each; relays -> dst (3) perfect.
	// EOTX(src) = 1/(1-(1-p)^2) + 1: transmissions until some relay
	// receives, plus one relay transmission.
	p := 0.3
	topo := graph.New(4)
	topo.SetDirected(0, 1, p)
	topo.SetDirected(0, 2, p)
	topo.SetDirected(1, 3, 1)
	topo.SetDirected(2, 3, 1)
	d := EOTX(topo, 3, DefaultEOTXOptions())
	want := 1/(1-(1-p)*(1-p)) + 1
	if !almost(d[0], want, 1e-9) {
		t.Fatalf("EOTX = %v, want %v", d[0], want)
	}
}

func TestEOTXNeverExceedsETX(t *testing.T) {
	// EOTX uses every path ETX uses and more; it is a lower bound
	// (§5.4: EOTX generalizes ETX to all-path routing).
	for seed := int64(0); seed < 10; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 8, 0.5)
		for dst := 0; dst < topo.N(); dst++ {
			dd := graph.NodeID(dst)
			eotx := EOTX(topo, dd, DefaultEOTXOptions())
			etx := ETXToDestination(topo, dd, ETXOptions{Threshold: 0, AckAware: false})
			for i := range eotx {
				if eotx[i] > etx.Dist[i]+1e-9 {
					t.Fatalf("seed %d dst %d node %d: EOTX %v > ETX %v",
						seed, dst, i, eotx[i], etx.Dist[i])
				}
			}
		}
	}
}

func randomTopology(rng *rand.Rand, n int, density float64) *graph.Topology {
	topo := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				topo.SetLink(graph.NodeID(i), graph.NodeID(j), 0.05+0.95*rng.Float64())
			}
		}
	}
	return topo
}

func TestEOTXAlgorithmsAgree(t *testing.T) {
	// Dijkstra (Alg 5), Bellman-Ford (Alg 3+4) and the exponential
	// fixed-point oracle must agree on random small networks.
	for seed := int64(0); seed < 20; seed++ {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 7, 0.55)
		for dst := 0; dst < topo.N(); dst++ {
			dd := graph.NodeID(dst)
			a := EOTX(topo, dd, DefaultEOTXOptions())
			b := EOTXBellmanFord(topo, dd, DefaultEOTXOptions())
			c := EOTXFixedPoint(topo, dd, DefaultEOTXOptions(), 8)
			for i := range a {
				if !almost(a[i], b[i], 1e-6) {
					t.Fatalf("seed %d dst %d node %d: Dijkstra %v != BF %v", seed, dst, i, a[i], b[i])
				}
				if !almost(a[i], c[i], 1e-6) {
					t.Fatalf("seed %d dst %d node %d: Dijkstra %v != oracle %v", seed, dst, i, a[i], c[i])
				}
			}
		}
	}
}

func TestEOTXMatchesMonteCarlo(t *testing.T) {
	// Simulate the opportunistic forwarding rule (the best receiver
	// forwards, §5.4) and compare the empirical expected transmissions to
	// the metric.
	topo := randomTopology(rand.New(rand.NewSource(3)), 6, 0.7)
	dst := graph.NodeID(0)
	d := EOTX(topo, dst, DefaultEOTXOptions())
	src := graph.NodeID(-1)
	for i := topo.N() - 1; i > 0; i-- {
		if !math.IsInf(d[i], 1) {
			src = graph.NodeID(i)
			break
		}
	}
	if src < 0 {
		t.Skip("disconnected draw")
	}
	rng := rand.New(rand.NewSource(99))
	const trials = 30000
	var total float64
	for trial := 0; trial < trials; trial++ {
		at := src
		for at != dst {
			total++
			best := at
			for j := 0; j < topo.N(); j++ {
				jid := graph.NodeID(j)
				if jid == at {
					continue
				}
				if rng.Float64() < topo.Prob(at, jid) && d[jid] < d[best] {
					best = jid
				}
			}
			at = best
			if total > trials*1000 {
				t.Fatal("simulation diverged")
			}
		}
	}
	emp := total / trials
	if math.Abs(emp-d[src])/d[src] > 0.03 {
		t.Fatalf("Monte Carlo expected transmissions %.3f vs EOTX %.3f", emp, d[src])
	}
}

func TestEOTXGapTopology(t *testing.T) {
	// Fig 5-1: check the closed-form EOTX values.
	k, p := 5, 0.1
	topo := graph.GapTopology(k, p)
	src, a, b := graph.NodeID(0), graph.NodeID(1), graph.NodeID(2)
	dst := graph.NodeID(3 + k)
	d := EOTX(topo, dst, DefaultEOTXOptions())
	wantB := 1/(1-math.Pow(1-p, float64(k))) + 1
	if !almost(d[b], wantB, 1e-9) {
		t.Fatalf("EOTX(B) = %v, want %v", d[b], wantB)
	}
	// With p = 0.1 < 0.3 and k > 1, B beats A (§5.7), so src routes via B:
	// EOTX(src) = wantB + 1.
	if !almost(d[src], wantB+1, 1e-6) {
		t.Fatalf("EOTX(src) = %v, want %v", d[src], wantB+1)
	}
	// A's optimal strategy is subtle: if dst (p) misses, hand the packet
	// back to src (perfect link), which routes via B — so
	// EOTX(A) = 1 + (1-p)·EOTX(src), well below the naive 1/p.
	wantA := 1 + (1-p)*(wantB+1)
	if !almost(d[a], wantA, 1e-6) {
		t.Fatalf("EOTX(A) = %v, want %v", d[a], wantA)
	}
	if d[a] >= 1/p {
		t.Fatalf("EOTX(A) = %v should beat the naive direct cost %v", d[a], 1/p)
	}
}

func TestEOTXUnreachable(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.8)
	d := EOTX(topo, 2, DefaultEOTXOptions())
	if !math.IsInf(d[0], 1) || !math.IsInf(d[1], 1) {
		t.Fatalf("EOTX of disconnected nodes = %v", d)
	}
	b := EOTXBellmanFord(topo, 2, DefaultEOTXOptions())
	if !math.IsInf(b[0], 1) {
		t.Fatal("BF should agree on unreachability")
	}
}

func TestEOTXQuickAgreement(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		topo := randomTopology(rand.New(rand.NewSource(seed)), 6, 0.5)
		a := EOTX(topo, 0, DefaultEOTXOptions())
		b := EOTXBellmanFord(topo, 0, DefaultEOTXOptions())
		for i := range a {
			if !almost(a[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEOTXThresholdDiscardsWeakLinks(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.1)
	d := EOTX(topo, 1, EOTXOptions{Threshold: 0.2})
	if !math.IsInf(d[0], 1) {
		t.Fatalf("weak link should be discarded, got %v", d[0])
	}
}
