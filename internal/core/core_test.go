package core

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

// runMORE wires a MORE node onto every router, starts one flow, and runs
// until completion or the deadline.
func runMORE(t *testing.T, topo *graph.Topology, cfg Config, simCfg sim.Config,
	src, dst graph.NodeID, file flow.File, deadline sim.Time) (flow.Result, *sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(topo, simCfg)
	oracle := flow.NewOracle(topo, cfg.Plan.ETX)
	nodes := make([]*Node, topo.N())
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	done := false
	nodes[dst].ExpectFlow(1, file, func(r flow.Result) {})
	if err := nodes[src].StartFlow(1, dst, file, func(r flow.Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	s.RunWhile(deadline, func() bool { return !done })
	res := nodes[dst].Result(1)
	return res, s, nodes
}

func smallCfg(k int) Config {
	cfg := DefaultConfig()
	cfg.BatchSize = k
	cfg.PayloadSize = 1500
	cfg.Plan.ETX = routing.ETXOptions{Threshold: 0.15, AckAware: true}
	return cfg
}

func TestSingleHopTransfer(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.8)
	file := flow.NewFile(16*1500, 1500, 42) // 16 packets, one K=16 batch
	res, _, _ := runMORE(t, topo, smallCfg(16), sim.DefaultConfig(), 0, 1, file, 60*sim.Second)
	if !res.Completed {
		t.Fatalf("transfer incomplete: %v", res)
	}
	if !res.Verified {
		t.Fatal("delivered bytes mismatch")
	}
	if res.PacketsDelivered != 16 {
		t.Fatalf("delivered %d packets", res.PacketsDelivered)
	}
}

func TestTwoHopRelay(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	file := flow.NewFile(32*1500, 1500, 7)
	res, s, _ := runMORE(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 2, file, 120*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("relay transfer failed: %v", res)
	}
	// The relay must have transmitted: ≥ K data frames from node 1.
	if s.Counters.TxByNode[1] < 16 {
		t.Fatalf("relay transmitted only %d frames", s.Counters.TxByNode[1])
	}
}

func TestMotivatingExampleDiamond(t *testing.T) {
	// Fig 1-1: dst overhears some source packets directly; R forwards
	// roughly the complement, so R's transmissions per batch stay well
	// below K.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95) // src -> R
	topo.SetLink(1, 2, 0.95) // R -> dst
	topo.SetLink(0, 2, 0.49) // src -> dst overhear
	file := flow.NewFile(64*1500, 1500, 3)
	res, s, _ := runMORE(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 2, file, 120*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("diamond transfer failed: %v", res)
	}
	srcTx := float64(s.Counters.TxByNode[0])
	relayTx := float64(s.Counters.TxByNode[1])
	// Expected per Algorithm 1: z_R ≈ (1-0.49)·z_src. Allow slack for
	// batch boundaries and ACK-lost retransmissions.
	if relayTx > 0.8*srcTx {
		t.Fatalf("relay sent %.0f vs src %.0f; overhearing not exploited", relayTx, srcTx)
	}
	if relayTx < 0.2*srcTx {
		t.Fatalf("relay sent %.0f vs src %.0f; relay underused", relayTx, srcTx)
	}
}

func TestLossyChainTransfer(t *testing.T) {
	topo := graph.LossyChain(5, 15, 30)
	file := flow.NewFile(2*32*1500, 1500, 11)
	res, _, _ := runMORE(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 4, file, 600*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("chain transfer failed: %v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestMultiBatchProgression(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.9)
	// 5 batches of K=8 plus a short final batch of 4.
	file := flow.NewFile(44*100, 100, 5)
	cfg := smallCfg(8)
	cfg.PayloadSize = 100
	res, _, _ := runMORE(t, topo, cfg, sim.DefaultConfig(), 0, 1, file, 120*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("multi-batch failed: %v", res)
	}
	if res.PacketsDelivered != 44 {
		t.Fatalf("delivered %d of 44", res.PacketsDelivered)
	}
}

func TestStoppingRuleQuiesces(t *testing.T) {
	// After the destination acks the last batch, the network must go
	// quiet: no unbounded spurious transmissions.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	file := flow.NewFile(16*1500, 1500, 9)
	res, s, _ := runMORE(t, topo, smallCfg(16), sim.DefaultConfig(), 0, 2, file, 120*sim.Second)
	if !res.Completed {
		t.Fatalf("incomplete: %v", res)
	}
	txAtDone := s.Counters.Transmissions
	s.Run(s.Now() + 5*sim.Second)
	extra := s.Counters.Transmissions - txAtDone
	// A handful of in-flight data frames and ACK retries may still drain
	// after the destination finishes; the bound only needs to rule out an
	// unbounded tail. (8 rather than 5: the exact count shifts with the
	// coded-coefficient rng realization.)
	if extra > 8 {
		t.Fatalf("%d spurious transmissions after completion", extra)
	}
}

func TestDeterministicRuns(t *testing.T) {
	topo := graph.LossyChain(4, 15, 30)
	file := flow.NewFile(32*1500, 1500, 2)
	r1, s1, _ := runMORE(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 3, file, 300*sim.Second)
	r2, s2, _ := runMORE(t, topo, smallCfg(32), sim.DefaultConfig(), 0, 3, file, 300*sim.Second)
	if r1.End != r2.End || s1.Counters.Transmissions != s2.Counters.Transmissions {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d",
			r1.End, s1.Counters.Transmissions, r2.End, s2.Counters.Transmissions)
	}
}

func TestPreCodingOffStillWorks(t *testing.T) {
	topo := graph.LossyChain(4, 15, 30)
	cfg := smallCfg(16)
	cfg.PreCoding = false
	file := flow.NewFile(32*1500, 1500, 13)
	res, _, _ := runMORE(t, topo, cfg, sim.DefaultConfig(), 0, 3, file, 300*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("no-precoding transfer failed: %v", res)
	}
}

func TestInnovativeOnlyOffStillWorks(t *testing.T) {
	topo := graph.LossyChain(4, 15, 30)
	cfg := smallCfg(16)
	cfg.InnovativeOnly = false
	file := flow.NewFile(32*1500, 1500, 14)
	res, _, _ := runMORE(t, topo, cfg, sim.DefaultConfig(), 0, 3, file, 300*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("code-everything transfer failed: %v", res)
	}
}

func TestEOTXOrderingWorks(t *testing.T) {
	topo := graph.LossyChain(4, 15, 30)
	cfg := smallCfg(16)
	cfg.Plan.Metric = routing.OrderEOTX
	file := flow.NewFile(32*1500, 1500, 15)
	res, _, _ := runMORE(t, topo, cfg, sim.DefaultConfig(), 0, 3, file, 300*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("EOTX-ordered transfer failed: %v", res)
	}
}

func TestTestbedRandomPair(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	file := flow.NewFile(2*32*1500, 1500, 21)
	res, _, _ := runMORE(t, topo, smallCfg(32), sim.DefaultConfig(), 3, 17, file, 600*sim.Second)
	if !res.Completed || !res.Verified {
		t.Fatalf("testbed transfer failed: %v", res)
	}
}

func TestUnreachableDestinationErrors(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.DefaultETXOptions())
	n := NewNode(DefaultConfig(), oracle)
	s.Attach(0, n)
	err := n.StartFlow(1, 2, flow.NewFile(1500, 1500, 1), nil)
	if err == nil {
		t.Fatal("StartFlow to unreachable destination succeeded")
	}
}

func TestDeadForwarderDoesNotStall(t *testing.T) {
	// Failure injection: the best forwarder exists in the plan but its
	// radio never delivers (loss spikes to 100% after planning). The
	// source's own weak direct link must still complete the transfer.
	planTopo := graph.New(3)
	planTopo.SetLink(0, 1, 0.9)
	planTopo.SetLink(1, 2, 0.9)
	planTopo.SetLink(0, 2, 0.3)
	runTopo := planTopo.Clone()
	runTopo.SetLink(0, 1, 0)
	runTopo.SetLink(1, 2, 0)

	s := sim.New(runTopo, sim.DefaultConfig())
	oracle := flow.NewOracle(planTopo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	cfg := smallCfg(8)
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	file := flow.NewFile(8*1500, 1500, 8)
	done := false
	nodes[2].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 2, file, func(flow.Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	s.RunWhile(600*sim.Second, func() bool { return !done })
	res := nodes[2].Result(1)
	if !res.Completed || !res.Verified {
		t.Fatalf("transfer with dead forwarder failed: %v", res)
	}
}

func TestFlowStateTimeout(t *testing.T) {
	// A forwarder that stops hearing a flow must expire its state.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	cfg := smallCfg(8)
	cfg.FlowTimeout = 2 * sim.Second
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	file := flow.NewFile(8*1500, 1500, 8)
	done := false
	nodes[2].ExpectFlow(1, file, nil)
	nodes[0].StartFlow(1, 2, dummyFileOnce(file), func(flow.Result) { done = true })
	s.RunWhile(60*sim.Second, func() bool { return !done })
	if !done {
		t.Fatal("transfer did not complete")
	}
	s.Run(s.Now() + 10*sim.Second)
	if len(nodes[1].relays) != 0 {
		t.Fatalf("relay state survived timeout: %d flows", len(nodes[1].relays))
	}
}

func dummyFileOnce(f flow.File) flow.File { return f }

func TestDuplicateFlowRejected(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.9)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.DefaultETXOptions())
	n := NewNode(DefaultConfig(), oracle)
	s.Attach(0, n)
	s.Attach(1, NewNode(DefaultConfig(), oracle))
	file := flow.NewFile(1500, 1500, 1)
	if err := n.StartFlow(1, 1, file, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.StartFlow(1, 1, file, nil); err == nil {
		t.Fatal("duplicate flow accepted")
	}
}

func TestInnovativeCountersAdvance(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	file := flow.NewFile(16*1500, 1500, 99)
	_, _, nodes := runMORE(t, topo, smallCfg(16), sim.DefaultConfig(), 0, 2, file, 120*sim.Second)
	if nodes[1].Innovative == 0 {
		t.Fatal("relay admitted no innovative packets")
	}
	if nodes[1].DataSent == 0 {
		t.Fatal("relay sent no data")
	}
}

func TestUnalignedFileVerifies(t *testing.T) {
	// A file that is not a multiple of the packet size: the tail payload is
	// truncated by flow.File, padded back to symbol size for coding on the
	// wire, and verified against the real bytes at the sink. Before the
	// truncation fix, byte accounting silently rounded the file up.
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.8)
	file := flow.NewFile(15*1500+137, 1500, 42) // 16 packets, 137 B tail
	res, _, _ := runMORE(t, topo, smallCfg(16), sim.DefaultConfig(), 0, 1, file, 60*sim.Second)
	if !res.Completed {
		t.Fatalf("transfer incomplete: %v", res)
	}
	if !res.Verified {
		t.Fatal("unaligned file failed byte verification")
	}
	if res.PacketsDelivered != 16 {
		t.Fatalf("delivered %d packets, want 16", res.PacketsDelivered)
	}
}
