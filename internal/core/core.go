// Package core implements MORE — MAC-independent Opportunistic Routing &
// Encoding — the primary contribution of the thesis (Chapter 3).
//
// Every node runs one *Node attached to the simulator. A source breaks the
// file into batches of K native packets and, whenever the MAC offers a
// transmission opportunity, broadcasts a fresh random linear combination of
// the current batch (§3.1.1). Forwarders listen promiscuously: packets that
// list them in the forwarder list add TX credit (Eq. 3.3); innovative
// packets enter the batch buffer; when the MAC polls a forwarder with
// positive credit it broadcasts a pre-coded random recombination and
// decrements the counter (§3.2.1, §3.3.3). The destination collects K
// innovative packets, decodes by matrix inversion, and sends a batch ACK
// back along the shortest ETX path — prioritized over data and reliably
// delivered hop by hop; every node that overhears the ACK purges the batch
// (§3.2.2).
//
// The implementation mirrors the practical machinery of §3.2–§3.3:
// innovation-gated buffering via row-echelon code vectors, pre-coding so a
// packet is ready when the medium clears, per-flow state initialized by the
// first overheard packet and expired on inactivity, forwarder pruning, and
// the compressed header format whose on-air size every frame is charged.
package core

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/flow"
	"repro/internal/gf256"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes MORE.
type Config struct {
	// BatchSize is K, the number of native packets coded together
	// (default 32, §4.1.2).
	BatchSize int
	// PayloadSize is the native packet payload in bytes. The frame also
	// carries the MORE header; the paper uses 1500 B packets.
	PayloadSize int
	// Plan configures forwarder selection (metric, pruning, list bound).
	Plan routing.PlanOptions
	// PreCoding enables the §3.2.3(c) optimization (on in MORE; off only
	// for ablation).
	PreCoding bool
	// InnovativeOnly discards non-innovative packets before buffering
	// (§3.2.3(a)); disabling it is the "code everything" ablation, which
	// buffers every reception (bounded) and codes over all of them.
	InnovativeOnly bool
	// CreditOnInnovativeOnly is an ablation of the §3.3.3 crediting rule:
	// when set, only innovative receptions from upstream add TX credit,
	// instead of every upstream reception as Eq. (3.3) assumes. It starves
	// forwarders whose upstream traffic is largely redundant.
	CreditOnInnovativeOnly bool
	// FlowTimeout expires idle per-flow state (§3.3.2 uses 5 minutes).
	FlowTimeout sim.Time
	// AckRedundancy re-queues the batch ACK after this many redundant
	// receptions of an already-decoded batch (the stopping rule's guard
	// against a lost ACK). Zero uses the default of 8.
	AckRedundancy int
	// RepairInterval arms a per-source stall watchdog: a source whose
	// current batch completes no batch for a full interval rebuilds its
	// forwarder plan unconditionally from the current routing state, so a
	// flow planned through a node that has since died replans instead of
	// broadcasting into the void until the deadline. Plan refreshes
	// otherwise happen only at batch boundaries — exactly the event a
	// stalled flow never reaches. Zero disables repair (the default).
	RepairInterval sim.Time
}

// DefaultConfig matches the deployed MORE parameters.
func DefaultConfig() Config {
	return Config{
		BatchSize:      32,
		PayloadSize:    1500,
		Plan:           routing.DefaultPlanOptions(),
		PreCoding:      true,
		InnovativeOnly: true,
		FlowTimeout:    5 * 60 * sim.Second,
		AckRedundancy:  8,
	}
}

// DataMsg is the payload of a MORE data frame: the Fig 3-1 header fields
// plus the coded packet. Frames are charged the encoded header size plus the
// coded payload on the air.
type DataMsg struct {
	Flow flow.ID
	Src  graph.NodeID
	Dst  graph.NodeID
	// Dsts is set for multicast flows: every listed node is a destination.
	Dsts  []graph.NodeID
	Batch uint32
	K     int
	// TotalBatches lets the destination recognize the final batch.
	TotalBatches int
	// Packet is the coded packet (code vector + payload).
	Packet *coding.Packet
	// Forwarders is the ordered candidate list with TX credits, copied
	// from the source's plan into every packet (§3.3.1).
	Forwarders []FwdEntry
}

// FwdEntry is one forwarder-list entry.
type FwdEntry struct {
	Node   graph.NodeID
	Credit float64
}

// wireBytes returns the on-air frame size for the message.
func (m *DataMsg) wireBytes() int {
	h := packet.MOREHeader{
		Type:       packet.TypeData,
		CodeVector: m.Packet.Vector,
		Forwarders: make([]packet.Forwarder, len(m.Forwarders)),
	}
	// Multicast destinations ride as one extra hashed byte each.
	return h.EncodedSize() + len(m.Dsts) + len(m.Packet.Payload)
}

// AckMsg is the payload of a MORE batch ACK, unicast hop by hop along the
// reverse ETX path toward Target (the flow's source).
type AckMsg struct {
	Flow   flow.ID
	Batch  uint32
	Final  bool
	Target graph.NodeID
	// Origin is the destination that generated the ACK (multicast sources
	// count ACKs per destination).
	Origin graph.NodeID
	// Multicast marks ACKs of multicast flows: forwarders must not purge
	// the batch on overhearing them, because other destinations may still
	// need it.
	Multicast bool
}

func (m *AckMsg) wireBytes() int {
	h := packet.MOREHeader{Type: packet.TypeACK}
	a := packet.ACK{}
	return h.EncodedSize() + a.EncodedSize()
}

// Node is the MORE protocol instance on one router.
type Node struct {
	cfg   Config
	node  *sim.Node
	state flow.RoutingState

	sources map[flow.ID]*sourceState
	relays  map[flow.ID]*relayState
	sinks   map[flow.ID]*sinkState

	// ackQueue holds ACKs awaiting transmission; they take priority over
	// data at every node (§3.2.2).
	ackQueue []*AckMsg

	// rr cycles among backlogged flows (§3.3.3 round-robin).
	rr []flow.ID

	// OnDeliver, when set, is called as each batch is decoded at this
	// node (it is the flow destination), with the native payloads in order.
	OnDeliver func(id flow.ID, batch uint32, natives [][]byte)

	// Counters.
	DataSent      int64
	AcksSent      int64
	Innovative    int64
	NonInnovative int64
	CreditDenied  int64
}

// NewNode creates a MORE node; attach it with sim.Attach.
func NewNode(cfg Config, state flow.RoutingState) *Node {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.AckRedundancy <= 0 {
		cfg.AckRedundancy = 8
	}
	return &Node{
		cfg:     cfg,
		state:   state,
		sources: make(map[flow.ID]*sourceState),
		relays:  make(map[flow.ID]*relayState),
		sinks:   make(map[flow.ID]*sinkState),
	}
}

// Init implements sim.Protocol.
func (n *Node) Init(sn *sim.Node) {
	n.node = sn
	if n.cfg.FlowTimeout > 0 {
		n.scheduleSweep()
	}
}

func (n *Node) scheduleSweep() {
	n.node.After(n.cfg.FlowTimeout/2, func() {
		n.sweepStale()
		n.scheduleSweep()
	})
}

func (n *Node) sweepStale() {
	cutoff := n.node.Now() - n.cfg.FlowTimeout
	for id, r := range n.relays {
		if r.lastActivity < cutoff {
			delete(n.relays, id)
		}
	}
	for id, s := range n.sinks {
		if s.lastActivity < cutoff && !s.done {
			delete(n.sinks, id)
		}
	}
}

// --- Source ------------------------------------------------------------------

type sourceState struct {
	id        flow.ID
	dst       graph.NodeID
	batches   [][][]byte // native payloads per batch
	curBatch  int
	src       *coding.Source
	fwd       []FwdEntry
	result    flow.Result
	done      bool
	onDone    func(flow.Result)
	txAtStart int64
	// planVersion is the routing-state generation the forwarder plan was
	// built from; a learned view ticks it as estimates drift, and the
	// source rebuilds the plan at the next batch boundary.
	planVersion uint64
	// repairBatch is curBatch as of the last repair-watchdog check; an
	// unchanged value over a full RepairInterval marks the flow stalled.
	repairBatch int
	// multicast is non-nil for multicast flows.
	multicast *multicastState
}

// StartFlow makes this node the source of a reliable file transfer to dst.
// It computes the forwarding plan (forwarder list, TX credits) from the
// routing state view and starts pumping coded packets. onDone, if non-nil,
// fires when the final batch is acked.
func (n *Node) StartFlow(id flow.ID, dst graph.NodeID, file flow.File, onDone func(flow.Result)) error {
	if _, dup := n.sources[id]; dup {
		return fmt.Errorf("core: duplicate flow %d", id)
	}
	plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), dst, n.cfg.Plan)
	if err != nil {
		return fmt.Errorf("core: flow %d: %w", id, err)
	}
	payloads := padForCoding(file.Payloads())
	batches := splitBatches(payloads, n.cfg.BatchSize)
	if len(batches) == 0 {
		return fmt.Errorf("core: flow %d: empty file", id)
	}
	st := &sourceState{
		id:          id,
		dst:         dst,
		batches:     batches,
		fwd:         fwdEntries(plan),
		onDone:      onDone,
		txAtStart:   n.node.Sim().Counters.Transmissions,
		planVersion: n.state.Version(),
	}
	st.result = flow.Result{
		Src: n.node.ID(), Dst: dst,
		PacketsTotal: len(payloads),
		Start:        n.node.Now(),
	}
	src, err := coding.NewSource(batches[0], n.node.Rand())
	if err != nil {
		return err
	}
	st.src = src
	n.node.Emit(telemetry.Event{Flow: uint32(id), Kind: telemetry.KindBatchStart})
	n.sources[id] = st
	n.rrAdd(id)
	if n.cfg.RepairInterval > 0 {
		st.repairBatch = -1
		n.scheduleRepair(st)
	}
	n.node.Wake()
	return nil
}

// scheduleRepair runs the stall watchdog for one source: if a whole
// RepairInterval passes without a batch completing, the forwarder plan is
// rebuilt from the current routing state regardless of version — the
// oracle ticks its version on invalidation, and a learned view may have
// purged a dead forwarder between batch boundaries, but refreshPlan only
// runs at boundaries a stalled flow never reaches. Multicast sources are
// left alone (their plan spans several destinations).
func (n *Node) scheduleRepair(st *sourceState) {
	n.node.After(n.cfg.RepairInterval, func() {
		if st.done {
			return
		}
		if n.node.Failed() {
			// A dead source repairs nothing; keep watching for recovery.
			st.repairBatch = st.curBatch
			n.scheduleRepair(st)
			return
		}
		if st.curBatch == st.repairBatch && st.multicast == nil {
			n.node.Emit(telemetry.Event{
				Flow: uint32(st.id), Batch: uint32(st.curBatch),
				Aux: telemetry.StallBatch, Kind: telemetry.KindStall,
			})
			st.planVersion = n.state.Version()
			if plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), st.dst, n.cfg.Plan); err == nil {
				st.fwd = fwdEntries(plan)
				n.node.Emit(telemetry.Event{
					Flow: uint32(st.id), Batch: uint32(st.curBatch),
					Aux: telemetry.ReplanStall, Kind: telemetry.KindReplan,
				})
			}
			n.node.Wake()
		}
		st.repairBatch = st.curBatch
		n.scheduleRepair(st)
	})
}

// fwdEntries flattens a plan's forwarder list into packet-header entries.
func fwdEntries(plan *routing.Plan) []FwdEntry {
	fwd := make([]FwdEntry, 0, len(plan.Order))
	for _, fid := range plan.Forwarders() {
		fwd = append(fwd, FwdEntry{Node: fid, Credit: plan.Credit[fid]})
	}
	return fwd
}

// refreshPlan rebuilds the forwarder plan when the routing state has moved
// on since the plan was computed — a no-op under the static oracle (Version
// is constant 0), the periodic-recomputation path under learned link state.
// A failed rebuild (the drifted view momentarily lost the route) keeps the
// old plan rather than stalling the flow.
func (n *Node) refreshPlan(st *sourceState, dst graph.NodeID) {
	v := n.state.Version()
	if v == st.planVersion {
		return
	}
	st.planVersion = v
	if plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), dst, n.cfg.Plan); err == nil {
		st.fwd = fwdEntries(plan)
		n.node.Emit(telemetry.Event{
			Flow: uint32(st.id), Aux: telemetry.ReplanDrift, Kind: telemetry.KindReplan,
		})
	}
}

// advanceBatch moves the source to the next batch after an ACK.
func (n *Node) advanceBatch(st *sourceState, acked uint32) {
	if st.done || int(acked) != st.curBatch {
		return
	}
	st.curBatch++
	if st.curBatch >= len(st.batches) {
		st.done = true
		st.result.Completed = true
		st.result.End = n.node.Now()
		st.result.PacketsDelivered = st.result.PacketsTotal
		st.result.Transmissions = n.node.Sim().Counters.Transmissions - st.txAtStart
		if st.onDone != nil {
			st.onDone(st.result)
		}
		return
	}
	n.refreshPlan(st, st.dst)
	src, err := coding.NewSource(st.batches[st.curBatch], n.node.Rand())
	if err != nil {
		panic(err) // batches are validated at StartFlow
	}
	st.src = src
	n.node.Emit(telemetry.Event{
		Flow: uint32(st.id), Batch: uint32(st.curBatch), Kind: telemetry.KindBatchStart,
	})
	n.node.Wake()
}

// --- Forwarder ---------------------------------------------------------------

type relayState struct {
	id           flow.ID
	src, dst     graph.NodeID
	curBatch     uint32
	ackedThrough int64 // highest batch known acked (-1 none)
	k            int
	buffer       *coding.Buffer
	pre          *coding.PreCoder
	pool         *coding.Pool     // recycles buffered receptions across batches
	raw          []*coding.Packet // only when InnovativeOnly is off
	credit       float64
	myCredit     float64
	fwdList      []FwdEntry
	dsts         []graph.NodeID // multicast destinations, nil for unicast
	totalBatches int
	lastActivity sim.Time
}

// clonePacket copies a received packet into relay-owned storage, drawing
// from the per-flow pool when the shape matches. Received frames are shared
// between all overhearing nodes, so the buffer must never store m.Packet
// itself.
func (r *relayState) clonePacket(p *coding.Packet) *coding.Packet {
	if r.pool != nil && r.pool.Fits(p) {
		q := r.pool.Get()
		q.CopyFrom(p)
		return q
	}
	return p.Clone()
}

func (n *Node) relayFor(m *DataMsg, myCredit float64) *relayState {
	r, ok := n.relays[m.Flow]
	if !ok {
		r = &relayState{
			id:           m.Flow,
			src:          m.Src,
			dst:          m.Dst,
			curBatch:     m.Batch,
			ackedThrough: -1,
			myCredit:     myCredit,
		}
		r.resetBatch(n, m)
		n.relays[m.Flow] = r
		n.rrAdd(m.Flow)
	}
	return r
}

func (r *relayState) resetBatch(n *Node, m *DataMsg) {
	r.curBatch = m.Batch
	r.k = m.K
	size := len(m.Packet.Payload)
	if r.pool == nil || r.pool.K() != m.K || r.pool.PayloadSize() != size {
		r.pool = coding.NewPool(m.K, size)
		r.buffer = nil // shape changed; rebuild below
	}
	if r.buffer != nil {
		// Same shape as the previous batch: flush rows back into the pool
		// and reuse the buffer and pre-coder outright.
		r.buffer.Reset()
		r.pre.Reset()
	} else {
		r.buffer = coding.NewBuffer(m.K, size)
		r.buffer.UsePool(r.pool)
		r.pre = coding.NewPreCoder(r.buffer, n.node.Rand())
	}
	r.raw = nil
	r.credit = 0
}

// --- Destination -------------------------------------------------------------

type sinkState struct {
	id            flow.ID
	multicast     bool
	src           graph.NodeID
	curBatch      uint32
	k             int
	totalBatches  int
	decoder       *coding.Decoder
	pool          *coding.Pool // recycles received packets across batches
	redundant     int
	decodedUpTo   int64 // highest batch decoded (-1 none)
	delivered     int
	done          bool
	lastActivity  sim.Time
	result        flow.Result
	onDone        func(flow.Result)
	verifyAgainst [][]byte
}

// ExpectFlow registers the receive side: optional completion callback and
// byte-exact verification of the delivered file. Registration is not
// required for operation (state initializes from the first packet, §3.3.2);
// it only wires up result reporting.
func (n *Node) ExpectFlow(id flow.ID, file flow.File, onDone func(flow.Result)) {
	s := n.sinkFor(id)
	s.onDone = onDone
	s.verifyAgainst = file.Payloads()
	s.result.PacketsTotal = file.NumPackets()
}

func (n *Node) sinkFor(id flow.ID) *sinkState {
	s, ok := n.sinks[id]
	if !ok {
		s = &sinkState{id: id, decodedUpTo: -1}
		s.result.Dst = n.node.ID()
		s.result.Verified = true
		n.sinks[id] = s
	}
	return s
}

// HasControl reports whether protocol control traffic (batch ACKs) is
// queued — the congestion layer's hint that a pull is worth making even at
// a full data queue (it implements congest.ControlReporter).
func (n *Node) HasControl() bool { return len(n.ackQueue) > 0 }

// TopUpRelayCredit raises this node's forwarder credit for the flow to at
// least c, provided the granter is downstream of this forwarder (its need
// is demand this forwarder's transmissions serve) and the forwarder is
// still working on exactly the given batch (it implements
// congest.CreditTopper). The congestion layer calls it when a downstream
// node grants credit — positive remaining need — so a forwarder chain
// whose Eq. (3.3) reception-driven credits drained can keep serving demand
// the receivers themselves advertised. Topping up to the granted need
// (rather than adding) keeps repeated grants idempotent: a forwarder never
// accumulates more rights than the latest word from downstream justifies.
func (n *Node) TopUpRelayCredit(id flow.ID, batch uint32, granter graph.NodeID, c float64) {
	r, ok := n.relays[id]
	if !ok || r.buffer == nil || r.curBatch != batch || int64(batch) <= r.ackedThrough {
		return
	}
	if r.buffer.Rank() < r.k {
		// Only full-rank forwarders take grant credit: a partially filled
		// forwarder is still being fed reception-driven credit by the same
		// upstream traffic filling its buffer, and topping it up as well
		// would multiply every advertised need across the whole
		// neighborhood. The grant path exists for the frontier case — a
		// forwarder holding the complete batch whose credit drained while
		// downstream still needs packets.
		return
	}
	downstream := granter == r.dst
	if !downstream {
		me := n.node.ID()
		myIdx, granterIdx := -1, -1
		for i, e := range r.fwdList {
			if e.Node == me {
				myIdx = i
			}
			if e.Node == granter {
				granterIdx = i
			}
		}
		// The forwarder list is ordered closest-to-destination first.
		downstream = myIdx >= 0 && granterIdx >= 0 && granterIdx < myIdx
	}
	if !downstream {
		return
	}
	if r.credit < c {
		r.credit = c
	}
	if r.credit > 0 && r.buffer.Rank() > 0 {
		n.node.Wake()
	}
}

// BatchNeeded reports how many more innovative packets this node can
// absorb for the flow's current batch — the receive-side deficit the
// congestion layer's credit policy broadcasts as grants (it implements
// congest.NeedReporter). ok is false when the node holds no receive-side
// state for the flow (e.g. it is the source, or never heard the flow).
func (n *Node) BatchNeeded(id flow.ID) (batch uint32, needed int, ok bool) {
	if s, ok := n.sinks[id]; ok {
		if s.decoder != nil {
			return s.curBatch, s.k - s.decoder.Rank(), true
		}
		if s.decodedUpTo >= 0 {
			return uint32(s.decodedUpTo), 0, true
		}
		return 0, 0, false
	}
	if r, ok := n.relays[id]; ok && r.buffer != nil {
		if int64(r.curBatch) <= r.ackedThrough {
			return r.curBatch, 0, true
		}
		return r.curBatch, r.k - r.buffer.Rank(), true
	}
	return 0, 0, false
}

// Result returns the destination-side result for a flow (zero Result if
// unknown).
func (n *Node) Result(id flow.ID) flow.Result {
	if s, ok := n.sinks[id]; ok {
		return s.result
	}
	if s, ok := n.sources[id]; ok {
		return s.result
	}
	return flow.Result{}
}

// --- sim.Protocol ------------------------------------------------------------

// Receive implements sim.Protocol.
func (n *Node) Receive(f *sim.Frame) {
	switch m := f.Payload.(type) {
	case *DataMsg:
		n.receiveData(f, m)
	case *AckMsg:
		n.receiveAck(f, m)
	}
}

func (n *Node) receiveData(f *sim.Frame, m *DataMsg) {
	me := n.node.ID()
	if m.Dst == me {
		n.sinkReceive(m)
		return
	}
	for _, d := range m.Dsts {
		if d == me {
			n.sinkReceive(m)
			return
		}
	}
	if src, ok := n.sources[m.Flow]; ok && m.Src == me {
		_ = src // our own flow echoed back through the mesh; ignore.
		return
	}
	// Forwarder path: only if listed in the packet's forwarder list.
	myCredit := -1.0
	for _, e := range m.Forwarders {
		if e.Node == me {
			myCredit = e.Credit
			break
		}
	}
	if myCredit < 0 {
		return
	}
	r := n.relayFor(m, myCredit)
	r.lastActivity = n.node.Now()
	r.myCredit = myCredit
	r.fwdList = m.Forwarders
	r.dsts = m.Dsts
	r.totalBatches = m.TotalBatches
	if int64(m.Batch) <= r.ackedThrough {
		return // stale batch already acked
	}
	if m.Batch < r.curBatch {
		return // older than the active batch: ignore (§3.3.3)
	}
	if m.Batch > r.curBatch {
		// Newer batch from the sender: flush buffered packets (§3.2.2).
		r.resetBatch(n, m)
	}
	innovative := r.buffer.Innovative(m.Packet.Vector)
	// Credit for receptions from upstream: the source or a forwarder
	// farther from the destination (listed after us). Eq. (3.3) credits
	// every upstream reception; the ablation credits only innovative ones.
	if n.isUpstream(f.From, me, m) && (!n.cfg.CreditOnInnovativeOnly || innovative) {
		r.credit += r.myCredit
	}
	if innovative {
		r.buffer.Add(r.clonePacket(m.Packet))
		n.Innovative++
		if n.cfg.PreCoding {
			// Fold the fresh arrival into the prepared packet (§3.2.3(c)).
			r.pre.Update(r.buffer.LastAdded())
		}
	} else {
		n.NonInnovative++
		if !n.cfg.InnovativeOnly && len(r.raw) < 4*r.k {
			r.raw = append(r.raw, m.Packet.Clone())
		}
	}
	if r.credit > 0 && r.buffer.Rank() > 0 {
		n.node.Wake()
	}
}

// isUpstream reports whether sender is farther from the destination than
// me within the packet's forwarder ordering (the source is the farthest).
func (n *Node) isUpstream(sender, me graph.NodeID, m *DataMsg) bool {
	if sender == m.Src {
		return true
	}
	if sender == m.Dst {
		return false
	}
	myIdx, senderIdx := -1, -1
	for i, e := range m.Forwarders {
		if e.Node == me {
			myIdx = i
		}
		if e.Node == sender {
			senderIdx = i
		}
	}
	// Forwarder list is ordered by proximity to the destination, closest
	// first; a later index is farther, i.e. upstream of an earlier one.
	return senderIdx > myIdx
}

func (n *Node) sinkReceive(m *DataMsg) {
	s := n.sinkFor(m.Flow)
	s.lastActivity = n.node.Now()
	s.src = m.Src
	s.multicast = len(m.Dsts) > 0
	s.totalBatches = m.TotalBatches
	if s.result.Src != m.Src {
		s.result.Src = m.Src
	}
	if int64(m.Batch) <= s.decodedUpTo {
		// Redundant packet from an already-decoded batch: the ACK must
		// have been lost — re-queue it every few receptions (§3.2.2).
		// This runs even after the flow is done: the source may still be
		// waiting on the final batch's ACK.
		s.redundant++
		if s.redundant%n.cfg.AckRedundancy == 0 {
			n.queueAck(s, uint32(s.decodedUpTo))
		}
		return
	}
	if s.done {
		return
	}
	if s.decoder == nil || m.Batch != s.curBatch {
		if m.Batch < s.curBatch {
			return
		}
		s.curBatch = m.Batch
		s.k = m.K
		size := len(m.Packet.Payload)
		s.decoder = coding.NewDecoder(m.K, size)
		if s.pool == nil || s.pool.K() != m.K || s.pool.PayloadSize() != size {
			s.pool = coding.NewPool(m.K, size)
		}
		s.decoder.UsePool(s.pool)
		if s.result.Start == 0 && s.result.PacketsDelivered == 0 {
			s.result.Start = n.node.Now()
		}
	}
	var pkt *coding.Packet
	if s.pool.Fits(m.Packet) {
		pkt = s.pool.Get()
		pkt.CopyFrom(m.Packet)
	} else {
		pkt = m.Packet.Clone()
	}
	if !s.decoder.Add(pkt) {
		return
	}
	if !s.decoder.Complete() {
		return
	}
	// Kth innovative packet: ACK before decoding (§3.2.2), then decode.
	n.queueAck(s, m.Batch)
	natives, err := s.decoder.Decode()
	if err != nil {
		panic("core: decode of complete batch failed: " + err.Error())
	}
	s.decodedUpTo = int64(m.Batch)
	s.redundant = 0
	base := int(m.Batch) * n.cfg.BatchSize
	for i, p := range natives {
		if s.verifyAgainst != nil {
			idx := base + i
			if idx >= len(s.verifyAgainst) || !flow.VerifyPayload(p, s.verifyAgainst[idx]) {
				s.result.Verified = false
			}
		}
	}
	s.delivered += len(natives)
	s.result.PacketsDelivered = s.delivered
	s.result.End = n.node.Now()
	n.node.Emit(telemetry.Event{
		Flow: uint32(s.id), Batch: m.Batch, Aux: int64(len(natives)),
		Kind: telemetry.KindBatchDecode,
	})
	if n.OnDeliver != nil {
		n.OnDeliver(s.id, m.Batch, natives)
	}
	// Recycle the batch's stored packets before dropping the decoder; the
	// natives just delivered live in separate buffers and stay valid.
	s.decoder.Reset()
	s.decoder = nil
	if m.TotalBatches > 0 && int(m.Batch) == m.TotalBatches-1 {
		s.done = true
		s.result.Completed = true
		if s.onDone != nil {
			s.onDone(s.result)
		}
	}
}

// queueAck enqueues a batch ACK (prioritized over data) for hop-by-hop
// unicast delivery toward the flow source.
func (n *Node) queueAck(s *sinkState, batch uint32) {
	final := s.totalBatches > 0 && int(batch) == s.totalBatches-1
	n.enqueueAck(&AckMsg{
		Flow: s.id, Batch: batch, Final: final, Target: s.src,
		Origin: n.node.ID(), Multicast: s.multicast,
	})
}

func (n *Node) enqueueAck(a *AckMsg) {
	for _, q := range n.ackQueue {
		// Distinct multicast destinations' ACKs for the same batch must
		// both get through: the origin is part of the identity.
		if q.Flow == a.Flow && q.Batch == a.Batch && q.Target == a.Target && q.Origin == a.Origin {
			return // already queued
		}
	}
	n.ackQueue = append(n.ackQueue, a)
	n.node.Wake()
}

func (n *Node) receiveAck(f *sim.Frame, a *AckMsg) {
	// Every node that hears an ACK purges the batch (§3.2.2) — overheard
	// or addressed. Multicast ACKs come from a single destination while
	// others may still need the batch, so forwarders keep their buffers
	// and rely on the newer-batch flush.
	if r, ok := n.relays[a.Flow]; ok && !a.Multicast {
		if int64(a.Batch) > r.ackedThrough {
			r.ackedThrough = int64(a.Batch)
		}
		if a.Batch >= r.curBatch {
			r.buffer.Reset()
			r.pre.Reset()
			r.raw = nil
			r.credit = 0
		}
		if a.Final {
			delete(n.relays, a.Flow)
		}
	}
	if f.To != n.node.ID() {
		return
	}
	if src, ok := n.sources[a.Flow]; ok && a.Target == n.node.ID() {
		if src.multicast != nil {
			n.multicastAck(src, a)
		} else {
			n.advanceBatch(src, a.Batch)
		}
		return
	}
	// Forward the ACK another hop toward the flow source.
	n.enqueueAck(a)
}

// Pull implements sim.Protocol: ACKs first, then round-robin over
// backlogged flows (§3.3.3).
func (n *Node) Pull() *sim.Frame {
	if len(n.ackQueue) > 0 {
		a := n.ackQueue[0]
		next := n.state.NextHop(n.node.ID(), a.Target)
		if next < 0 {
			n.ackQueue = n.ackQueue[1:]
			return n.Pull()
		}
		f := &sim.Frame{
			From:    n.node.ID(),
			To:      next,
			Bytes:   a.wireBytes(),
			Payload: a,
			FlowID:  uint32(a.Flow),
		}
		return f
	}
	for range n.rr {
		id := n.rr[0]
		n.rr = append(n.rr[1:], id)
		if f := n.pullFlow(id); f != nil {
			return f
		}
	}
	return nil
}

func (n *Node) pullFlow(id flow.ID) *sim.Frame {
	if st, ok := n.sources[id]; ok && !st.done {
		pkt := st.src.Next()
		m := &DataMsg{
			Flow:         id,
			Src:          n.node.ID(),
			Dst:          st.dst,
			Batch:        uint32(st.curBatch),
			K:            st.src.K(),
			TotalBatches: len(st.batches),
			Packet:       pkt,
			Forwarders:   st.fwd,
		}
		if st.multicast != nil {
			m.Dsts = st.multicast.dsts
		}
		n.DataSent++
		return &sim.Frame{From: n.node.ID(), To: graph.Broadcast, Bytes: m.wireBytes(), Payload: m, FlowID: uint32(id)}
	}
	if r, ok := n.relays[id]; ok && r.credit > 0 && r.buffer.Rank() > 0 {
		var pkt *coding.Packet
		switch {
		case !n.cfg.InnovativeOnly && len(r.raw) > 0:
			pkt = n.recodeAll(r)
		case n.cfg.PreCoding:
			pkt = r.pre.Take()
		default:
			pkt = r.buffer.Recode(n.node.Rand())
		}
		if pkt == nil {
			return nil
		}
		r.credit--
		m := &DataMsg{
			Flow:         id,
			Src:          r.src,
			Dst:          r.dst,
			Dsts:         r.dsts,
			Batch:        r.curBatch,
			K:            r.k,
			TotalBatches: r.totalBatchesHint(),
			Packet:       pkt,
			Forwarders:   n.fwdListFor(r),
		}
		n.DataSent++
		return &sim.Frame{From: n.node.ID(), To: graph.Broadcast, Bytes: m.wireBytes(), Payload: m, FlowID: uint32(id)}
	}
	if r, ok := n.relays[id]; ok && r.credit <= 0 && r.buffer != nil && r.buffer.Rank() > 0 {
		n.CreditDenied++
	}
	return nil
}

// recodeAll is the InnovativeOnly=false path: code over the innovative rows
// plus every buffered raw packet.
func (n *Node) recodeAll(r *relayState) *coding.Packet {
	pkt := r.buffer.Recode(n.node.Rand())
	if pkt == nil {
		return nil
	}
	for _, raw := range r.raw {
		c := byte(n.node.Rand().Intn(256))
		if c == 0 {
			continue
		}
		gf256.MulAddSlice(pkt.Vector, raw.Vector, c)
		gf256.MulAddSlice(pkt.Payload, raw.Payload, c)
	}
	return pkt
}

// relayState carries the forwarder list it last saw so recoded packets can
// restate it (§3.3.1: fields are copied from received packets).
func (n *Node) fwdListFor(r *relayState) []FwdEntry {
	return r.fwdList
}

func (r *relayState) totalBatchesHint() int { return r.totalBatches }

// Sent implements sim.Protocol.
func (n *Node) Sent(f *sim.Frame, ok bool) {
	switch m := f.Payload.(type) {
	case *AckMsg:
		// Remove from queue on success; keep retrying otherwise (§3.3.4:
		// unless the transmission succeeds the ACK is queued again).
		if ok {
			for i, q := range n.ackQueue {
				if q == m {
					n.ackQueue = append(n.ackQueue[:i], n.ackQueue[i+1:]...)
					break
				}
			}
			n.AcksSent++
		}
		if len(n.ackQueue) > 0 {
			n.node.Wake()
		}
	case *DataMsg:
		// Broadcasts always "succeed"; nothing to do. The stopping rule
		// (ACKs, batch advance) governs whether more traffic exists.
		n.wakeIfBacklogged()
	}
}

func (n *Node) wakeIfBacklogged() {
	if len(n.ackQueue) > 0 {
		n.node.Wake()
		return
	}
	for id, st := range n.sources {
		_ = id
		if !st.done {
			n.node.Wake()
			return
		}
	}
	for _, r := range n.relays {
		if r.credit > 0 && r.buffer != nil && r.buffer.Rank() > 0 {
			n.node.Wake()
			return
		}
	}
}

// rrAdd registers a flow in the round-robin cycle once.
func (n *Node) rrAdd(id flow.ID) {
	for _, v := range n.rr {
		if v == id {
			return
		}
	}
	n.rr = append(n.rr, id)
}
