package core

import (
	"fmt"
	"sort"

	"repro/internal/coding"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Multicast MORE — the extension Chapter 1 motivates: ExOR's structured
// scheduler is "hard to extend to alternate traffic types, particularly
// multicast", while random coding needs no per-receiver coordination. A
// multicast source codes exactly as a unicast one; the forwarder set is the
// union of the per-destination plans; each destination decodes and ACKs
// batches independently; the source advances to the next batch once every
// destination has ACKed the current one. Forwarders do not purge on a
// single destination's ACK (other destinations may still need the batch) —
// they flush on the source's newer batch, as in §3.2.2.

type multicastState struct {
	dsts     []graph.NodeID
	ackedBy  map[graph.NodeID]bool // destinations that ACKed the current batch
	results  map[graph.NodeID]flow.Result
	expected int
}

// StartMulticastFlow makes this node the source of a reliable multicast
// transfer of file to every destination in dsts. onDone fires when the last
// batch has been ACKed by all destinations. Per-destination results are
// reported by each destination's ExpectFlow as usual.
func (n *Node) StartMulticastFlow(id flow.ID, dsts []graph.NodeID, file flow.File, onDone func(flow.Result)) error {
	if len(dsts) == 0 {
		return fmt.Errorf("core: multicast flow %d has no destinations", id)
	}
	if _, dup := n.sources[id]; dup {
		return fmt.Errorf("core: duplicate flow %d", id)
	}
	// Union the per-destination forwarding plans. A node's credit is the
	// maximum it holds in any plan (conservative: it must be able to serve
	// the most demanding destination); ordering is by the smallest
	// distance to any destination, so "upstream" stays well defined.
	type entry struct {
		credit float64
		dist   float64
	}
	union := map[graph.NodeID]entry{}
	for _, dst := range dsts {
		plan, err := routing.BuildPlan(n.state.Graph(), n.node.ID(), dst, n.cfg.Plan)
		if err != nil {
			return fmt.Errorf("core: multicast flow %d: %w", id, err)
		}
		for _, f := range plan.Forwarders() {
			e, ok := union[f]
			if !ok {
				e = entry{credit: plan.Credit[f], dist: plan.Dist[f]}
			} else {
				if plan.Credit[f] > e.credit {
					e.credit = plan.Credit[f]
				}
				if plan.Dist[f] < e.dist {
					e.dist = plan.Dist[f]
				}
			}
			union[f] = e
		}
	}
	// Destinations of the multicast never appear as plain forwarders; they
	// get the data anyway and ACK it.
	for _, d := range dsts {
		delete(union, d)
	}
	fwd := make([]FwdEntry, 0, len(union))
	dists := make(map[graph.NodeID]float64, len(union))
	for idNode, e := range union {
		fwd = append(fwd, FwdEntry{Node: idNode, Credit: e.credit})
		dists[idNode] = e.dist
	}
	sortFwdByDist(fwd, dists)

	payloads := padForCoding(file.Payloads())
	batches := splitBatches(payloads, n.cfg.BatchSize)
	if len(batches) == 0 {
		return fmt.Errorf("core: multicast flow %d: empty file", id)
	}
	st := &sourceState{
		id:        id,
		dst:       dsts[0],
		batches:   batches,
		fwd:       fwd,
		onDone:    onDone,
		txAtStart: n.node.Sim().Counters.Transmissions,
		multicast: &multicastState{
			dsts:     append([]graph.NodeID(nil), dsts...),
			ackedBy:  make(map[graph.NodeID]bool),
			results:  make(map[graph.NodeID]flow.Result),
			expected: len(dsts),
		},
	}
	st.result = flow.Result{
		Src: n.node.ID(), Dst: dsts[0],
		PacketsTotal: len(payloads),
		Start:        n.node.Now(),
	}
	src, err := coding.NewSource(batches[0], n.node.Rand())
	if err != nil {
		return err
	}
	st.src = src
	n.sources[id] = st
	n.rrAdd(id)
	n.node.Wake()
	return nil
}

// sortFwdByDist orders forwarder entries closest-to-any-destination first,
// with node IDs breaking ties for determinism.
func sortFwdByDist(fwd []FwdEntry, dist map[graph.NodeID]float64) {
	sort.Slice(fwd, func(i, j int) bool {
		a, b := dist[fwd[i].Node], dist[fwd[j].Node]
		if a != b {
			return a < b
		}
		return fwd[i].Node < fwd[j].Node
	})
}

// splitBatches chunks payloads into batches of at most k packets.
// padForCoding zero-pads a short final payload back to the common packet
// size: random linear coding needs equal-length symbols, so the wire always
// carries full-size packets. The sink verifies (and the file accounts) only
// the real bytes — flow.VerifyPayload ignores the padding.
func padForCoding(payloads [][]byte) [][]byte {
	if len(payloads) == 0 {
		return payloads
	}
	size := len(payloads[0])
	last := payloads[len(payloads)-1]
	if len(last) < size {
		padded := make([]byte, size)
		copy(padded, last)
		payloads[len(payloads)-1] = padded
	}
	return payloads
}

func splitBatches(payloads [][]byte, k int) [][][]byte {
	var batches [][][]byte
	for i := 0; i < len(payloads); i += k {
		end := i + k
		if end > len(payloads) {
			end = len(payloads)
		}
		batches = append(batches, payloads[i:end])
	}
	return batches
}

// multicastAck processes one destination's batch ACK at the source.
func (n *Node) multicastAck(st *sourceState, a *AckMsg) {
	mc := st.multicast
	if st.done || int(a.Batch) != st.curBatch {
		return
	}
	mc.ackedBy[a.Origin] = true
	if len(mc.ackedBy) < mc.expected {
		return
	}
	// Every destination has the batch: advance.
	mc.ackedBy = make(map[graph.NodeID]bool)
	n.advanceBatch(st, a.Batch)
}
