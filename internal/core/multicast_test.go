package core

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func runMulticast(t *testing.T, topo *graph.Topology, cfg Config, src graph.NodeID,
	dsts []graph.NodeID, file flow.File, deadline sim.Time) (map[graph.NodeID]flow.Result, *sim.Simulator) {
	t.Helper()
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, cfg.Plan.ETX)
	nodes := make([]*Node, topo.N())
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	for _, d := range dsts {
		nodes[d].ExpectFlow(1, file, nil)
	}
	done := false
	if err := nodes[src].StartMulticastFlow(1, dsts, file, func(flow.Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	s.RunWhile(deadline, func() bool { return !done })
	if !done {
		t.Fatalf("multicast did not complete by %v", deadline)
	}
	out := make(map[graph.NodeID]flow.Result, len(dsts))
	for _, d := range dsts {
		out[d] = nodes[d].Result(1)
	}
	return out, s
}

func TestMulticastTwoDestinations(t *testing.T) {
	// Y topology: src -> relay, relay -> two destinations.
	topo := graph.New(4)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.85)
	topo.SetLink(1, 3, 0.85)
	file := flow.NewFile(32*1500, 1500, 3)
	res, _ := runMulticast(t, topo, smallCfg(16), 0, []graph.NodeID{2, 3}, file, 300*sim.Second)
	for d, r := range res {
		if !r.Completed || !r.Verified {
			t.Fatalf("destination %d failed: %v", d, r)
		}
		if r.PacketsDelivered != 32 {
			t.Fatalf("destination %d got %d packets", d, r.PacketsDelivered)
		}
	}
}

func TestMulticastSharesTransmissions(t *testing.T) {
	// Both destinations sit at the end of a shared 3-relay artery:
	// multicast amortizes the artery's transmissions across destinations,
	// so it must cost well under two separate unicasts.
	topo := graph.New(6)
	topo.SetLink(0, 1, 0.9)
	topo.SetLink(1, 2, 0.9)
	topo.SetLink(2, 3, 0.9)
	topo.SetLink(3, 4, 0.85)
	topo.SetLink(3, 5, 0.85)
	file := flow.NewFile(64*1500, 1500, 4)
	cfg := smallCfg(32)

	_, sm := runMulticast(t, topo, cfg, 0, []graph.NodeID{4, 5}, file, 600*sim.Second)
	multicastTx := sm.Counters.Transmissions

	var unicastTx int64
	for _, d := range []graph.NodeID{4, 5} {
		res, s, _ := runMORE(t, topo, cfg, sim.DefaultConfig(), 0, d, file, 600*sim.Second)
		if !res.Completed {
			t.Fatalf("unicast to %d failed", d)
		}
		unicastTx += s.Counters.Transmissions
	}
	if float64(multicastTx) > 0.8*float64(unicastTx) {
		t.Fatalf("multicast used %d tx vs %d for two unicasts; no sharing", multicastTx, unicastTx)
	}
}

func TestMulticastLaggardGatesBatches(t *testing.T) {
	// One destination is adjacent, the other is behind a lossy hop: the
	// source must not advance past the laggard, and both must finish.
	topo := graph.New(4)
	topo.SetLink(0, 1, 0.95) // fast destination is 1
	topo.SetLink(0, 2, 0.9)
	topo.SetLink(2, 3, 0.5) // slow destination 3 behind lossy link
	file := flow.NewFile(48*1500, 1500, 5)
	res, _ := runMulticast(t, topo, smallCfg(16), 0, []graph.NodeID{1, 3}, file, 600*sim.Second)
	for d, r := range res {
		if !r.Completed || !r.Verified {
			t.Fatalf("destination %d failed: %v", d, r)
		}
	}
}

func TestMulticastErrors(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.DefaultETXOptions())
	n := NewNode(DefaultConfig(), oracle)
	s.Attach(0, n)
	file := flow.NewFile(1500, 1500, 1)
	if err := n.StartMulticastFlow(1, nil, file, nil); err == nil {
		t.Error("empty destination set accepted")
	}
	if err := n.StartMulticastFlow(1, []graph.NodeID{2}, file, nil); err == nil {
		t.Error("unreachable destination accepted")
	}
	if err := n.StartMulticastFlow(1, []graph.NodeID{1}, file, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.StartMulticastFlow(1, []graph.NodeID{1}, file, nil); err == nil {
		t.Error("duplicate flow accepted")
	}
}
