package trace

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/srcr"
	"repro/internal/telemetry"
)

func TestRecorderCapturesSimulatorEvents(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95)
	topo.SetLink(1, 2, 0.95)
	s := sim.New(topo, sim.DefaultConfig())
	rec := NewRecorder(0)
	s.Telem = rec

	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	nodes := make([]*srcr.Node, 3)
	for i := range nodes {
		nodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	file := flow.NewFile(20*1500, 1500, 1)
	nodes[2].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 2, file, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(60 * sim.Second)

	if rec.Total() == 0 {
		t.Fatal("no events recorded")
	}
	per := rec.TxPerNode()
	if per[0] == 0 || per[1] == 0 {
		t.Fatalf("per-node tx counts missing: %v", per)
	}
	// Node 2 is the destination: it receives and MAC-acks but relays no
	// data, so the corrected tally must not count it — the old PerNode
	// counted its receptions as "transmissions".
	if per[2] != 0 {
		t.Fatalf("destination counted %d data transmissions, want 0", per[2])
	}
	tail := rec.Tail(5)
	if len(tail) == 0 || len(tail) > 5 {
		t.Fatalf("tail returned %d events", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].At < tail[i-1].At {
			t.Fatal("tail out of order")
		}
	}
	tl := rec.Timeline(0, s.Now(), 40)
	if !strings.Contains(tl, "node 0") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline missing activity:\n%s", tl)
	}
}

func txEvent(node int32, at sim.Time) telemetry.Event {
	return telemetry.Event{
		At: int64(at), Dur: int64(sim.Millisecond), Flow: 1,
		Node: node, Peer: -1, Bytes: 1500, Kind: telemetry.KindTx,
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Emit(txEvent(int32(i), sim.Time(i)*sim.Millisecond))
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d", rec.Total())
	}
	tail := rec.Tail(100)
	if len(tail) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(tail))
	}
	if tail[0].Node != 6 || tail[3].Node != 9 {
		t.Fatalf("ring kept wrong events: %+v", tail)
	}
}

// TestRecorderWraparound drives the ring exactly across its eviction
// boundary and checks Tail and Timeline agree on the surviving window.
func TestRecorderWraparound(t *testing.T) {
	const cap = 8
	rec := NewRecorder(cap)
	// Fill to capacity exactly: no eviction yet.
	for i := 0; i < cap; i++ {
		rec.Emit(txEvent(int32(i), sim.Time(i)*sim.Millisecond))
	}
	tail := rec.Tail(cap)
	if len(tail) != cap || tail[0].Node != 0 || tail[cap-1].Node != cap-1 {
		t.Fatalf("pre-eviction tail wrong: %+v", tail)
	}

	// One more event evicts exactly the oldest.
	rec.Emit(txEvent(int32(cap), sim.Time(cap)*sim.Millisecond))
	tail = rec.Tail(cap)
	if len(tail) != cap || tail[0].Node != 1 || tail[cap-1].Node != cap {
		t.Fatalf("post-eviction tail wrong: %+v", tail)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].At <= tail[i-1].At {
			t.Fatal("tail not strictly ordered across wraparound")
		}
	}

	// A Tail smaller than the ring returns the most recent slice.
	short := rec.Tail(3)
	if len(short) != 3 || short[0].Node != cap-2 || short[2].Node != cap {
		t.Fatalf("short tail wrong: %+v", short)
	}

	// Timeline over the full interval must show only the survivors: node 0
	// was evicted, nodes 1..cap survive.
	tl := rec.Timeline(0, sim.Time(cap+1)*sim.Millisecond, 20)
	if strings.Contains(tl, "node 0 ") {
		t.Fatalf("timeline shows evicted node:\n%s", tl)
	}
	if !strings.Contains(tl, "node 1 ") || !strings.Contains(tl, "node 8 ") {
		t.Fatalf("timeline missing survivors:\n%s", tl)
	}
}

// TestRecorderCountsOnlyDataTx pins the satellite fix: receptions, drops,
// and MAC ACKs must not count as transmissions.
func TestRecorderCountsOnlyDataTx(t *testing.T) {
	rec := NewRecorder(16)
	rec.Emit(txEvent(1, 0))
	ack := txEvent(1, sim.Millisecond)
	ack.Aux = 1 // MAC ACK
	rec.Emit(ack)
	rec.Emit(telemetry.Event{At: int64(2 * sim.Millisecond), Node: 2, Peer: 1, Kind: telemetry.KindRx})
	rec.Emit(telemetry.Event{At: int64(3 * sim.Millisecond), Node: 2, Peer: 1, Aux: telemetry.DropCollision, Kind: telemetry.KindDrop})
	per := rec.TxPerNode()
	if per[1] != 1 {
		t.Fatalf("node 1: %d transmissions, want 1 (MAC ACK must not count)", per[1])
	}
	if per[2] != 0 {
		t.Fatalf("node 2: %d transmissions, want 0 (rx/drop must not count)", per[2])
	}
	if rec.Total() != 4 {
		t.Fatalf("ring recorded %d events, want all 4", rec.Total())
	}
}

func TestParseTimeRoundTrip(t *testing.T) {
	for _, d := range []sim.Time{
		5 * sim.Nanosecond,
		30 * sim.Microsecond,
		2 * sim.Millisecond,
		1500 * sim.Millisecond,
	} {
		got, err := ParseTime(d.String())
		if err != nil {
			t.Fatalf("ParseTime(%q): %v", d.String(), err)
		}
		// String rounds to limited precision; allow 1% slack.
		diff := got - d
		if diff < 0 {
			diff = -diff
		}
		if diff > d/100+1 {
			t.Errorf("ParseTime(%q) = %v, want ≈%v", d.String(), got, d)
		}
	}
	for _, bad := range []string{"garbage", "", "12", "xms", "s", "--3us"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) should error", bad)
		}
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	rec := NewRecorder(8)
	if rec.Timeline(sim.Second, 0, 10) != "" {
		t.Error("inverted interval should render empty")
	}
	if out := rec.Timeline(0, sim.Second, 0); !strings.Contains(out, "timeline") {
		t.Error("zero width should use a default")
	}
}

func TestRenderLine(t *testing.T) {
	ev := txEvent(3, 2*sim.Millisecond)
	line := renderLine(ev)
	for _, want := range []string{"tx", "node=3", "peer=-1", "flow=1", "bytes=1500", "dur=1.000ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}
