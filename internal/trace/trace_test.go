package trace

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/srcr"
)

func TestRecorderCapturesSimulatorEvents(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95)
	topo.SetLink(1, 2, 0.95)
	s := sim.New(topo, sim.DefaultConfig())
	rec := NewRecorder(0)
	s.Trace = rec.Hook()

	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	nodes := make([]*srcr.Node, 3)
	for i := range nodes {
		nodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	file := flow.NewFile(20*1500, 1500, 1)
	nodes[2].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 2, file, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(60 * sim.Second)

	if rec.Total() == 0 {
		t.Fatal("no events recorded")
	}
	per := rec.PerNode()
	if per[0] == 0 || per[1] == 0 {
		t.Fatalf("per-node counts missing: %v", per)
	}
	tail := rec.Tail(5)
	if len(tail) == 0 || len(tail) > 5 {
		t.Fatalf("tail returned %d events", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].At < tail[i-1].At {
			t.Fatal("tail out of order")
		}
	}
	tl := rec.Timeline(0, s.Now(), 40)
	if !strings.Contains(tl, "node 0") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline missing activity:\n%s", tl)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	hook := rec.Hook()
	for i := 0; i < 10; i++ {
		hook("%s tx start node=%d to=-1 bytes=1 rate=1Mbps ack=false", sim.Time(i)*sim.Millisecond, i)
	}
	if rec.Total() != 10 {
		t.Fatalf("total = %d", rec.Total())
	}
	tail := rec.Tail(100)
	if len(tail) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(tail))
	}
	if tail[0].Node != 6 || tail[3].Node != 9 {
		t.Fatalf("ring kept wrong events: %+v", tail)
	}
}

func TestParseTimeRoundTrip(t *testing.T) {
	for _, d := range []sim.Time{
		5 * sim.Nanosecond,
		30 * sim.Microsecond,
		2 * sim.Millisecond,
		1500 * sim.Millisecond,
	} {
		got := parseTime(d.String())
		// String rounds to limited precision; allow 1% slack.
		diff := got - d
		if diff < 0 {
			diff = -diff
		}
		if diff > d/100+1 {
			t.Errorf("parseTime(%q) = %v, want ≈%v", d.String(), got, d)
		}
	}
	if parseTime("garbage") != 0 {
		t.Error("garbage should parse to 0")
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	rec := NewRecorder(8)
	if rec.Timeline(sim.Second, 0, 10) != "" {
		t.Error("inverted interval should render empty")
	}
	if out := rec.Timeline(0, sim.Second, 0); !strings.Contains(out, "timeline") {
		t.Error("zero width should use a default")
	}
}
