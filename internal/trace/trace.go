// Package trace records structured simulation events for inspection: a
// bounded ring of recent medium events plus per-node transmission
// timelines. Attach a Recorder to sim.Simulator.Trace to capture activity,
// then render timelines or dump the tail — the debugging view the paper's
// Click-based implementation (§4.1.1: MORE, ExOR, and Srcr all run as
// user-level Click processes) got from its element logs, and the direct way
// to see the spatial-reuse overlap §4.2.3 credits for MORE's gains.
package trace

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Event is one recorded medium event.
type Event struct {
	At   sim.Time
	Line string
	Node int // transmitting node, -1 if unknown
}

// Recorder captures simulator trace output.
type Recorder struct {
	// Cap bounds the retained ring (0 means DefaultCap).
	Cap int

	events []Event
	next   int
	total  int

	perNode map[int]int // transmissions per node
}

// DefaultCap is the default ring size.
const DefaultCap = 4096

// NewRecorder creates a Recorder with the given capacity (0 = DefaultCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{Cap: capacity, perNode: make(map[int]int)}
}

var nodeRe = regexp.MustCompile(`node=(\d+)`)

// Hook returns the function to assign to sim.Simulator.Trace.
func (r *Recorder) Hook() func(format string, args ...interface{}) {
	return func(format string, args ...interface{}) {
		line := fmt.Sprintf(format, args...)
		ev := Event{Line: line, Node: -1}
		// The simulator prefixes every line with the current time.
		if i := strings.IndexByte(line, ' '); i > 0 {
			ev.At = parseTime(line[:i])
		}
		if m := nodeRe.FindStringSubmatch(line); m != nil {
			if id, err := strconv.Atoi(m[1]); err == nil {
				ev.Node = id
				r.perNode[id]++
			}
		}
		r.push(ev)
	}
}

func (r *Recorder) push(ev Event) {
	if len(r.events) < r.Cap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.next] = ev
		r.next = (r.next + 1) % r.Cap
	}
	r.total++
}

// parseTime reverses sim.Time.String for the common unit suffixes; it
// returns 0 for unparseable input (the trace stays usable either way).
func parseTime(s string) sim.Time {
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		if err != nil {
			return 0
		}
		return sim.Time(v * float64(sim.Millisecond))
	case strings.HasSuffix(s, "us"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "us"), 64)
		if err != nil {
			return 0
		}
		return sim.Time(v * float64(sim.Microsecond))
	case strings.HasSuffix(s, "ns"):
		v, err := strconv.ParseInt(strings.TrimSuffix(s, "ns"), 10, 64)
		if err != nil {
			return 0
		}
		return sim.Time(v)
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			return 0
		}
		return sim.Time(v * float64(sim.Second))
	default:
		return 0
	}
}

// Total returns how many events were recorded over the run (including
// those evicted from the ring).
func (r *Recorder) Total() int { return r.total }

// Tail returns up to n most recent events, oldest first.
func (r *Recorder) Tail(n int) []Event {
	ordered := r.ordered()
	if n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

func (r *Recorder) ordered() []Event {
	if len(r.events) < r.Cap {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, r.Cap)
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// PerNode returns the transmission count per node seen in the trace.
func (r *Recorder) PerNode() map[int]int {
	out := make(map[int]int, len(r.perNode))
	for k, v := range r.perNode {
		out[k] = v
	}
	return out
}

// Timeline renders an ASCII activity strip per node over [from, to): each
// column is one bucket of the interval; a node's row marks buckets in which
// it transmitted. It visualizes medium sharing — concurrent marks in one
// column are spatial reuse (or collisions).
func (r *Recorder) Timeline(from, to sim.Time, width int) string {
	if width <= 0 {
		width = 72
	}
	if to <= from {
		return ""
	}
	bucket := (to - from) / sim.Time(width)
	if bucket <= 0 {
		bucket = 1
	}
	marks := map[int][]bool{}
	for _, ev := range r.ordered() {
		if ev.Node < 0 || ev.At < from || ev.At >= to {
			continue
		}
		row, ok := marks[ev.Node]
		if !ok {
			row = make([]bool, width)
			marks[ev.Node] = row
		}
		idx := int((ev.At - from) / bucket)
		if idx >= width {
			idx = width - 1
		}
		row[idx] = true
	}
	var ids []int
	for id := range marks {
		ids = append(ids, id)
	}
	sortInts(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%v per column)\n", from, to, bucket)
	for _, id := range ids {
		fmt.Fprintf(&b, "node %-3d |", id)
		for _, on := range marks[id] {
			if on {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
