// Package trace records structured simulation events for inspection: a
// bounded ring of recent events plus per-node transmission timelines.
// The Recorder is a telemetry.Sink — install it as sim.Simulator.Telem
// (or fan it off a telemetry.Hub with AddSink) to capture typed activity,
// then render timelines or dump the tail — the debugging view the paper's
// Click-based implementation (§4.1.1: MORE, ExOR, and Srcr all run as
// user-level Click processes) got from its element logs, and the direct way
// to see the spatial-reuse overlap §4.2.3 credits for MORE's gains.
package trace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Event is one recorded simulation event: the typed telemetry event plus
// its rendered line.
type Event struct {
	At   sim.Time
	Line string
	// Node is the node the event happened at (the transmitter for tx
	// events), -1 if unknown.
	Node int
	// Kind is the typed event kind.
	Kind telemetry.Kind
}

// Recorder captures typed simulator events in a bounded ring. It
// implements telemetry.Sink.
type Recorder struct {
	// Cap bounds the retained ring (0 means DefaultCap).
	Cap int

	events []Event
	next   int
	total  int

	txPerNode map[int]int // data transmissions per node
}

// DefaultCap is the default ring size.
const DefaultCap = 4096

// NewRecorder creates a Recorder with the given capacity (0 = DefaultCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{Cap: capacity, txPerNode: make(map[int]int)}
}

// Emit implements telemetry.Sink: the event is rendered to a line and
// pushed into the ring. Only data transmissions (not MAC ACKs, and not
// receptions or drops, which earlier versions of this package conflated
// with them) count toward the per-node transmission tally.
func (r *Recorder) Emit(ev telemetry.Event) {
	if ev.Kind == telemetry.KindTx && ev.Aux == 0 {
		r.txPerNode[int(ev.Node)]++
	}
	r.push(Event{
		At:   sim.Time(ev.At),
		Line: renderLine(ev),
		Node: int(ev.Node),
		Kind: ev.Kind,
	})
}

// renderLine formats a typed event the way the old string hook did, from
// fields instead of fmt verbs.
func renderLine(ev telemetry.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %s node=%d", sim.Time(ev.At), ev.Kind, ev.Node)
	if ev.Peer != 0 || ev.Kind == telemetry.KindTx || ev.Kind == telemetry.KindRx {
		fmt.Fprintf(&b, " peer=%d", ev.Peer)
	}
	if ev.Flow != 0 {
		fmt.Fprintf(&b, " flow=%d", ev.Flow)
	}
	if ev.Batch != 0 {
		fmt.Fprintf(&b, " batch=%d", ev.Batch)
	}
	if ev.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", ev.Bytes)
	}
	if ev.Dur != 0 {
		fmt.Fprintf(&b, " dur=%v", sim.Time(ev.Dur))
	}
	if ev.Aux != 0 {
		fmt.Fprintf(&b, " aux=%d", ev.Aux)
	}
	return b.String()
}

func (r *Recorder) push(ev Event) {
	if len(r.events) < r.Cap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.next] = ev
		r.next = (r.next + 1) % r.Cap
	}
	r.total++
}

// ParseTime reverses sim.Time.String for the common unit suffixes. Unlike
// the unexported predecessor — which silently returned 0 and made
// unparseable prefixes indistinguishable from t=0 — it reports an error.
func ParseTime(s string) (sim.Time, error) {
	switch {
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		if err != nil {
			return 0, fmt.Errorf("trace: bad time %q: %w", s, err)
		}
		return sim.Time(v * float64(sim.Millisecond)), nil
	case strings.HasSuffix(s, "us"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "us"), 64)
		if err != nil {
			return 0, fmt.Errorf("trace: bad time %q: %w", s, err)
		}
		return sim.Time(v * float64(sim.Microsecond)), nil
	case strings.HasSuffix(s, "ns"):
		v, err := strconv.ParseInt(strings.TrimSuffix(s, "ns"), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("trace: bad time %q: %w", s, err)
		}
		return sim.Time(v), nil
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			return 0, fmt.Errorf("trace: bad time %q: %w", s, err)
		}
		return sim.Time(v * float64(sim.Second)), nil
	default:
		return 0, fmt.Errorf("trace: bad time %q: no unit suffix", s)
	}
}

// Total returns how many events were recorded over the run (including
// those evicted from the ring).
func (r *Recorder) Total() int { return r.total }

// Tail returns up to n most recent events, oldest first.
func (r *Recorder) Tail(n int) []Event {
	ordered := r.ordered()
	if n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

func (r *Recorder) ordered() []Event {
	if len(r.events) < r.Cap {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, r.Cap)
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// TxPerNode returns the data-transmission count per node (MAC ACKs,
// receptions, and drops excluded). It replaces the old PerNode, which
// counted every traced event mentioning a node as a "transmission".
func (r *Recorder) TxPerNode() map[int]int {
	out := make(map[int]int, len(r.txPerNode))
	for k, v := range r.txPerNode {
		out[k] = v
	}
	return out
}

// Timeline renders an ASCII activity strip per node over [from, to): each
// column is one bucket of the interval; a node's row marks buckets in which
// it transmitted. It visualizes medium sharing — concurrent marks in one
// column are spatial reuse (or collisions).
func (r *Recorder) Timeline(from, to sim.Time, width int) string {
	if width <= 0 {
		width = 72
	}
	if to <= from {
		return ""
	}
	bucket := (to - from) / sim.Time(width)
	if bucket <= 0 {
		bucket = 1
	}
	marks := map[int][]bool{}
	for _, ev := range r.ordered() {
		if ev.Node < 0 || ev.Kind != telemetry.KindTx || ev.At < from || ev.At >= to {
			continue
		}
		row, ok := marks[ev.Node]
		if !ok {
			row = make([]bool, width)
			marks[ev.Node] = row
		}
		idx := int((ev.At - from) / bucket)
		if idx >= width {
			idx = width - 1
		}
		row[idx] = true
	}
	var ids []int
	for id := range marks {
		ids = append(ids, id)
	}
	sortInts(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%v per column)\n", from, to, bucket)
	for _, id := range ids {
		fmt.Fprintf(&b, "node %-3d |", id)
		for _, on := range marks[id] {
			if on {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
