package srcr

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func pushChain(t *testing.T, n int) (*sim.Simulator, []*Node) {
	t.Helper()
	topo := graph.Line(n, 0.95, 20)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	return s, nodes
}

// TestPushCBRGeneratesAndDelivers runs a constant-rate push flow over a
// short chain with no congestion layer: the source must generate exactly
// its configured packet count on schedule, and the good-link chain must
// deliver nearly all of it to the ordinary Srcr sink.
func TestPushCBRGeneratesAndDelivers(t *testing.T) {
	s, nodes := pushChain(t, 3)
	tr := flow.Traffic{Model: flow.PushCBR, RatePPS: 100, Packets: 50}
	file := flow.NewFile(50*256, 256, 7)
	nodes[2].ExpectFlow(1, file, nil)
	var src flow.Result
	if err := nodes[0].StartPushFlow(1, 2, tr, file, func(r flow.Result) { src = r }); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * sim.Second)

	gen, drops, done := nodes[0].PushStats(1)
	if !done || gen != 50 {
		t.Fatalf("generation: done=%v generated=%d drops=%d", done, gen, drops)
	}
	if !src.Completed {
		t.Error("source result not marked completed after full schedule")
	}
	// The last packet (seq 49) is generated 49 intervals after the start.
	wantEnd := sim.Time(49) * tr.Interval()
	if src.End != wantEnd {
		t.Errorf("generation clock drifted: last packet at %v, want %v", src.End, wantEnd)
	}
	sink := nodes[2].Result(1)
	if sink.PacketsDelivered < 45 {
		t.Errorf("good-link chain delivered only %d/50", sink.PacketsDelivered)
	}
	if !sink.Verified {
		t.Error("delivered payloads failed verification")
	}
}

// TestPushOnOffClock pins the on/off generation pattern exactly: with a
// 100 ms on / 100 ms off cycle at 100 pps, each cycle carries ten packets
// at 10 ms spacing, so packet 49 leaves at 4 full cycles + 90 ms.
func TestPushOnOffClock(t *testing.T) {
	s, nodes := pushChain(t, 2)
	tr := flow.Traffic{
		Model: flow.PushOnOff, RatePPS: 100, Packets: 50,
		On: 100 * sim.Millisecond, Off: 100 * sim.Millisecond,
	}
	file := flow.NewFile(50*256, 256, 7)
	nodes[1].ExpectFlow(1, file, nil)
	var src flow.Result
	if err := nodes[0].StartPushFlow(1, 1, tr, file, func(r flow.Result) { src = r }); err != nil {
		t.Fatal(err)
	}
	s.Run(10 * sim.Second)
	want := 4*(tr.On+tr.Off) + 90*sim.Millisecond
	if src.End != want {
		t.Errorf("on/off schedule: last packet at %v, want %v", src.End, want)
	}
}

// TestPushValidation rejects unusable push parameters.
func TestPushValidation(t *testing.T) {
	_, nodes := pushChain(t, 2)
	file := flow.NewFile(10*256, 256, 7)
	bad := []flow.Traffic{
		{Model: flow.PushCBR, RatePPS: 0, Packets: 10},                  // zero rate
		{Model: flow.PushCBR, RatePPS: 100, Packets: 0},                 // no workload
		{Model: flow.PullFile},                                          // not a push model
		{Model: flow.PushOnOff, RatePPS: 100, Packets: 10},              // missing on/off
		{Model: flow.PushCBR, RatePPS: 100, Packets: 11},                // file/packets mismatch
	}
	for i, tr := range bad {
		if err := nodes[0].StartPushFlow(flow.ID(i+1), 1, tr, file, nil); err == nil {
			t.Errorf("bad traffic %d accepted: %+v", i, tr)
		}
	}
	ok := flow.Traffic{Model: flow.PushCBR, RatePPS: 100, Packets: 10}
	if err := nodes[0].StartPushFlow(99, 1, ok, file, nil); err != nil {
		t.Errorf("valid traffic rejected: %v", err)
	}
	if err := nodes[0].StartPushFlow(99, 1, ok, file, nil); err == nil {
		t.Error("duplicate push flow accepted")
	}
}

// TestPushBareModeBoundedQueue overloads a node with no congestion layer:
// the local drop-tail queue must cap memory and count source drops while
// the flow still finishes its schedule.
func TestPushBareModeBoundedQueue(t *testing.T) {
	s, nodes := pushChain(t, 2)
	// 5000 pps is far beyond what one 802.11b hop drains.
	tr := flow.Traffic{Model: flow.PushCBR, RatePPS: 5000, Packets: 500}
	file := flow.NewFile(500*1500, 1500, 7)
	nodes[1].ExpectFlow(1, file, nil)
	if err := nodes[0].StartPushFlow(1, 1, tr, file, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * sim.Second)
	gen, drops, done := nodes[0].PushStats(1)
	if !done || gen != 500 {
		t.Fatalf("overloaded source did not finish: done=%v generated=%d", done, gen)
	}
	if drops == 0 {
		t.Error("no source drops under 12x overload — queue is unbounded?")
	}
	if got := len(nodes[0].pushQ); got > nodes[0].cfg.QueueSize {
		t.Errorf("push queue %d exceeds bound %d", got, nodes[0].cfg.QueueSize)
	}
}
