package srcr

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Push traffic sources: UDP-like datagram flows over Srcr's source-routed
// forwarding. Where a pull transfer is backlogged — the MAC's transmission
// opportunities pace the source, so queues below backpressure — a push
// source generates packets on its own clock (constant-rate or on/off
// bursts, flow.Traffic) and offers each one downward the moment it exists:
//
//   - under a congestion layer, frames are injected through sim.FrameSink
//     into the layer's bounded queue, which overflows under overload and
//     lets the tail/CHOKe drop policies act as designed;
//   - bare (no layer), frames enter a local drop-tail queue bounded by
//     Config.QueueSize, the §4.1.2 50-packet driver queue.
//
// There is no ARQ and no completion handshake: losses are final, the flow
// "completes" when the source has generated its configured packet count.
// The destination side reuses the ordinary Srcr sink (ExpectFlow), so
// delivery counting, duplicate suppression, and payload verification work
// unchanged.

// pushState is the source-side state of one push flow.
type pushState struct {
	id       flow.ID
	dst      graph.NodeID
	tr       flow.Traffic
	payloads [][]byte
	route    []graph.NodeID
	// planVersion tracks the routing state generation; the route is
	// recomputed when it moves (learned views converging, oracle
	// invalidation after a topology event).
	planVersion uint64

	epoch   sim.Time // flow start: generation clock origin
	nextGen sim.Time // absolute time of the next generation tick
	next    int      // next sequence number to generate

	generated int
	drops     int64 // local-queue overflow drops (bare mode only)
	done      bool
	// halted marks a source killed by its node failing: generation stopped
	// without the schedule being met, unlike a deliberate StopPushFlow.
	halted bool
	result flow.Result
	onDone func(flow.Result)
}

// SetPushSink implements the congestion layer's PushSource hook: generated
// frames are injected into sink instead of the node's local queue.
func (n *Node) SetPushSink(s sim.FrameSink) { n.sink = s }

// StartPushFlow begins a push flow toward dst. file supplies the payload
// contents and must split into exactly tr.Packets packets, so the
// destination's ExpectFlow(file) verification lines up sequence by
// sequence. onDone fires when the source has generated its last packet;
// packets still queued or in flight are delivered (or lost) on their own
// time, as datagrams are.
func (n *Node) StartPushFlow(id flow.ID, dst graph.NodeID, tr flow.Traffic, file flow.File, onDone func(flow.Result)) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	if _, dup := n.pushes[id]; dup {
		return fmt.Errorf("srcr: duplicate push flow %d", id)
	}
	if _, dup := n.sources[id]; dup {
		return fmt.Errorf("srcr: flow %d already started as a pull transfer", id)
	}
	if file.NumPackets() != tr.Packets {
		return fmt.Errorf("srcr: push file splits into %d packets, traffic wants %d", file.NumPackets(), tr.Packets)
	}
	route := n.state.Path(n.node.ID(), dst)
	if route == nil {
		return fmt.Errorf("srcr: no route %d -> %d", n.node.ID(), dst)
	}
	now := n.node.Now()
	st := &pushState{
		id: id, dst: dst, tr: tr,
		payloads:    file.Payloads(),
		route:       route,
		planVersion: n.state.Version(),
		epoch:       now,
		nextGen:     now,
		onDone:      onDone,
		result: flow.Result{
			Src: n.node.ID(), Dst: dst,
			PacketsTotal: tr.Packets,
			Start:        now,
		},
	}
	n.pushes[id] = st
	n.node.After(0, func() { n.pushTick(st) })
	return nil
}

// PushStats reports a push source's accounting: packets generated so far,
// packets dropped at the bare local queue (always 0 under a congestion
// layer, whose Stats hold the drops instead), and whether the source ran
// its schedule to the end (its packet budget, or a deliberate
// StopPushFlow). A source whose node died mid-schedule reports done=false.
func (n *Node) PushStats(id flow.ID) (generated int, sourceDrops int64, done bool) {
	st, ok := n.pushes[id]
	if !ok {
		return 0, 0, false
	}
	return st.generated, st.drops, st.done && !st.halted
}

// SetPushRate retargets a live push source's generation rate (the scenario
// engine's set_rate action). The new rate takes effect from the next
// generation tick; the epoch-anchored on/off pattern keeps its phase. It
// reports whether a live constant-rate flow was found (on/off sources keep
// their configured burst structure and are not retargetable).
func (n *Node) SetPushRate(id flow.ID, pps float64) bool {
	st, ok := n.pushes[id]
	if !ok || st.done || pps <= 0 || st.tr.Model != flow.PushCBR {
		return false
	}
	st.tr.RatePPS = pps
	return true
}

// StopPushFlow halts a push source's generation early (a scheduled flow
// stop). The source result keeps Completed=false — the schedule was cut
// short — but counts as done for run-termination purposes via onDone.
// Packets already queued or in flight drain on their own. It reports
// whether a live flow was stopped.
func (n *Node) StopPushFlow(id flow.ID) bool {
	st, ok := n.pushes[id]
	if !ok || st.done {
		return false
	}
	st.done = true
	st.result.End = n.node.Now()
	if st.onDone != nil {
		st.onDone(st.result)
	}
	return true
}

// pushTick generates one packet and schedules the next tick.
func (n *Node) pushTick(st *pushState) {
	if st.done {
		return
	}
	if n.node.Failed() {
		// The radio died under the source: stop the clock for good. The
		// flow does not count as having run its schedule (see PushStats).
		st.done, st.halted = true, true
		st.result.End = n.node.Now()
		if st.onDone != nil {
			st.onDone(st.result)
		}
		return
	}
	// Refresh the route when the routing state has moved on — a learned
	// view re-converging, or the oracle invalidated after a topology event.
	// An unroutable destination keeps the stale route: the datagrams die at
	// the broken hop, exactly as an unresponsive source's would.
	if v := n.state.Version(); v != st.planVersion {
		st.planVersion = v
		if r := n.state.Path(n.node.ID(), st.dst); r != nil {
			st.route = r
		}
	}
	m := &DataMsg{
		Flow:    st.id,
		Seq:     st.next,
		Route:   st.route,
		Hop:     0,
		Payload: st.payloads[st.next],
	}
	n.node.Emit(telemetry.Event{
		Flow: uint32(st.id), Aux: int64(st.next), Kind: telemetry.KindPktSend,
	})
	st.next++
	st.generated++
	f := n.frameFor(m)
	switch {
	case n.sink != nil:
		n.sink.PushFrame(f)
	case len(n.pushQ) < n.cfg.QueueSize:
		n.pushQ = append(n.pushQ, f)
		n.node.Wake()
	default:
		st.drops++
	}
	if st.next >= len(st.payloads) {
		st.done = true
		st.result.End = n.node.Now()
		st.result.Completed = true // the source ran its full schedule
		if st.onDone != nil {
			st.onDone(st.result)
		}
		return
	}
	st.advanceClock()
	n.node.After(st.nextGen-n.node.Now(), func() { n.pushTick(st) })
}

// advanceClock moves nextGen to the following generation instant: one
// interval later, skipped over the off phase for on/off sources. The
// arithmetic runs on the epoch-anchored clock, so the pattern is exact and
// reproducible regardless of queueing below.
func (st *pushState) advanceClock() {
	st.nextGen += st.tr.Interval()
	if st.tr.Model != flow.PushOnOff {
		return
	}
	cycle := st.tr.On + st.tr.Off
	if off := (st.nextGen - st.epoch) % cycle; off >= st.tr.On {
		st.nextGen += cycle - off // jump to the next on-phase start
	}
}
