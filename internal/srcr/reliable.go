package srcr

import (
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// End-to-end reliability for Srcr file transfers. MORE and ExOR deliver the
// whole file by construction (batch ACKs / batch maps); a fair best-path
// baseline must also complete the transfer, so the source runs a simple
// NACK-based ARQ on top of the hop-by-hop 802.11 unicast: after each pass
// over the outstanding packets it sends a FIN control message; the
// destination answers with the list of missing sequence numbers; the source
// retransmits those and repeats until the file is complete. Control
// messages are small, prioritized, and re-queued until the MAC delivers
// them, like MORE's batch ACKs (§3.2.2).

// FinMsg marks the end of a transmission pass.
type FinMsg struct {
	Flow   flow.ID
	Pass   int
	Target graph.NodeID // the flow destination
	Source graph.NodeID
}

func (m *FinMsg) wireBytes() int {
	h := packet.SrcrHeader{Route: make([]graph.NodeID, 4)}
	return h.EncodedSize() + 6
}

// NackMsg lists the sequence numbers the destination still misses after a
// pass (empty means the transfer is complete).
type NackMsg struct {
	Flow    flow.ID
	Pass    int
	Missing []int
	Target  graph.NodeID // the flow source
}

func (m *NackMsg) wireBytes() int {
	h := packet.SrcrHeader{Route: make([]graph.NodeID, 4)}
	n := len(m.Missing)
	if n > maxNackEntries {
		n = maxNackEntries
	}
	return h.EncodedSize() + 6 + 2*n
}

// maxNackEntries bounds one NACK's payload; a 1500-byte frame fits ~700
// two-byte sequence numbers. Later passes pick up the remainder.
const maxNackEntries = 700

// nackTimeout is how long the source waits for a NACK before re-sending
// its FIN.
const nackTimeout = 500 * sim.Millisecond

// startPassTracking initializes reliable-mode source state.
func (st *sourceState) startPassTracking(n int) {
	st.pending = make([]int, n)
	for i := range st.pending {
		st.pending[i] = i
	}
}

// queueControl enqueues a control message for prioritized hop-by-hop
// forwarding toward target.
func (n *Node) queueControl(payload interface{}, target graph.NodeID) {
	next := n.state.NextHop(n.node.ID(), target)
	if next < 0 {
		return
	}
	var bytes int
	var fid flow.ID
	switch m := payload.(type) {
	case *FinMsg:
		bytes = m.wireBytes()
		fid = m.Flow
	case *NackMsg:
		bytes = m.wireBytes()
		fid = m.Flow
	}
	n.control = append(n.control, &sim.Frame{
		From: n.node.ID(), To: next, Bytes: bytes, Payload: payload, FlowID: uint32(fid),
	})
	n.node.Wake()
}

func (n *Node) receiveFin(fr *sim.Frame, m *FinMsg) {
	if fr.To != n.node.ID() {
		return
	}
	if n.node.ID() != m.Target {
		n.queueControl(m, m.Target)
		return
	}
	s, ok := n.sinks[m.Flow]
	if !ok || s.verify == nil {
		// Unknown flow: report everything missing so the source keeps
		// state consistent (should not happen with ExpectFlow).
		return
	}
	missing := make([]int, 0, 16)
	for seq := range s.verify {
		if !s.haveSeq[seq] {
			missing = append(missing, seq)
			if len(missing) == maxNackEntries {
				break
			}
		}
	}
	n.queueControl(&NackMsg{Flow: m.Flow, Pass: m.Pass, Missing: missing, Target: m.Source}, m.Source)
}

func (n *Node) receiveNack(fr *sim.Frame, m *NackMsg) {
	if fr.To != n.node.ID() {
		return
	}
	if n.node.ID() != m.Target {
		n.queueControl(m, m.Target)
		return
	}
	st, ok := n.sources[m.Flow]
	if !ok || st.done || m.Pass != st.pass {
		return
	}
	if st.finTimer != nil {
		st.finTimer.Cancel()
		st.finTimer = nil
	}
	st.awaitingNack = false
	st.finRetries = 0
	if len(m.Missing) == 0 {
		st.done = true
		st.result.Completed = true
		st.result.PacketsDelivered = st.result.PacketsTotal
		st.result.End = n.node.Now()
		if st.onDone != nil {
			st.onDone(st.result)
		}
		return
	}
	st.pass++
	n.refreshRoute(st)
	st.pending = append(st.pending[:0], m.Missing...)
	n.node.Wake()
}

// refreshRoute re-runs path selection when the routing state has moved on
// since the route was computed — a no-op under the static oracle, the
// re-routing path under learned link state. Losing the route entirely
// (momentary divergence) keeps the old one.
func (n *Node) refreshRoute(st *sourceState) {
	v := n.state.Version()
	if v == st.planVersion {
		return
	}
	st.planVersion = v
	if route := n.state.Path(n.node.ID(), st.route[len(st.route)-1]); route != nil {
		st.route = route
	}
}

// finishPass sends the FIN and arms the NACK timeout.
func (n *Node) finishPass(st *sourceState) {
	st.awaitingNack = true
	fin := &FinMsg{Flow: st.id, Pass: st.pass, Target: st.route[len(st.route)-1], Source: n.node.ID()}
	n.queueControl(fin, fin.Target)
	if st.finTimer != nil {
		st.finTimer.Cancel()
	}
	st.finTimer = n.node.After(nackTimeout, func() {
		if st.done || !st.awaitingNack {
			return
		}
		st.finRetries++
		if n.cfg.RepairInterval > 0 && sim.Time(st.finRetries)*nackTimeout >= n.cfg.RepairInterval {
			n.forceReroute(st)
			st.finRetries = 0
		}
		n.finishPass(st)
	})
}

// forceReroute recomputes the source route regardless of routing-state
// version: the stall that triggers it — FIN passes going unanswered for a
// whole RepairInterval — is itself the evidence the current route is broken
// even if the state version has not ticked (e.g. the oracle was invalidated
// and recomputed before this source noticed). Losing the route entirely
// keeps the old one, like refreshRoute; the next repair tick tries again.
func (n *Node) forceReroute(st *sourceState) {
	n.node.Emit(telemetry.Event{
		Flow: uint32(st.id), Aux: telemetry.StallFin, Kind: telemetry.KindStall,
	})
	st.planVersion = n.state.Version()
	if route := n.state.Path(n.node.ID(), st.route[len(st.route)-1]); route != nil {
		st.route = route
		n.node.Emit(telemetry.Event{
			Flow: uint32(st.id), Aux: telemetry.ReplanStall, Kind: telemetry.KindReplan,
		})
	}
}
