// Package srcr implements the traditional best-path baseline of the
// evaluation: Srcr (Bicket et al.), a source-routed protocol that picks the
// ETX-shortest path with Dijkstra and relays packets hop by hop over
// 802.11 unicast with MAC retransmissions (§4.1.1). Routers keep a 50-packet
// drop-tail queue (§4.1.2). The package also implements an Onoe-style
// credit-based autorate algorithm (§4.4) selecting among the 802.11b rates.
package srcr

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes Srcr.
type Config struct {
	// PayloadSize is the data payload per packet (1500 B in the paper).
	PayloadSize int
	// QueueSize bounds each router's output queue (50 in §4.1.2).
	QueueSize int
	// Autorate enables Onoe-style bit-rate selection per neighbor; when
	// false frames use FixedRate (or the simulator default when zero).
	Autorate bool
	// FixedRate pins the data bit-rate when Autorate is off.
	FixedRate sim.Bitrate
	// Onoe tunes the autorate algorithm.
	Onoe OnoeConfig
	// Reliable runs the end-to-end NACK ARQ (see reliable.go) so the
	// transfer completes like MORE's and ExOR's do. Off, the source sends
	// each packet once and losses are final.
	Reliable bool
	// RepairInterval arms route repair for reliable transfers: a source
	// whose FIN passes go unanswered for this long recomputes its route
	// regardless of routing-state version (the stall is itself the
	// evidence the route is broken), and failed FIN/NACK retransmissions
	// re-resolve their next hop instead of retrying the stale one. Zero
	// disables repair (the default).
	RepairInterval sim.Time
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{
		PayloadSize: 1500,
		QueueSize:   50,
		Onoe:        DefaultOnoeConfig(),
	}
}

// DataMsg is a Srcr data packet: a source-route header plus payload.
type DataMsg struct {
	Flow    flow.ID
	Seq     int
	Route   []graph.NodeID // full path, Route[0] == source
	Hop     int            // index of the current holder in Route
	Payload []byte
}

func (m *DataMsg) wireBytes() int {
	h := packet.SrcrHeader{Route: m.Route}
	return h.EncodedSize() + len(m.Payload)
}

// Node is the Srcr instance on one router.
type Node struct {
	cfg   Config
	node  *sim.Node
	state flow.RoutingState

	queue   []*DataMsg   // forwarding queue, drop tail
	control []*sim.Frame // FIN/NACK control messages (prioritized)
	sources map[flow.ID]*sourceState
	// sourceOrder fixes the service order of concurrent local sources: map
	// iteration order would leak nondeterminism into multi-flow runs.
	sourceOrder []flow.ID
	sinks       map[flow.ID]*sinkState
	pushes      map[flow.ID]*pushState
	onoe        map[graph.NodeID]*Onoe

	// sink, when set (congestion layer present), receives push-generated
	// frames with no backpressure; pushQ is the bare-mode fallback, a local
	// drop-tail queue bounded by Config.QueueSize.
	sink  sim.FrameSink
	pushQ []*sim.Frame

	// Counters.
	QueueDrops int64
	MACDrops   int64
	Forwarded  int64
}

type sourceState struct {
	id       flow.ID
	route    []graph.NodeID
	payloads [][]byte
	nextSeq  int
	inFlight bool
	result   flow.Result
	done     bool
	onDone   func(flow.Result)

	// Reliable-mode state.
	pending      []int // sequence numbers still to (re)send this pass
	pass         int
	awaitingNack bool
	finTimer     *sim.Event
	// finRetries counts consecutive unanswered FIN timeouts; repair fires
	// once they span RepairInterval.
	finRetries int

	// planVersion is the routing-state generation the route was computed
	// from; learned views tick it, and the source re-routes at the next
	// reliability-pass boundary.
	planVersion uint64
}

type sinkState struct {
	id        flow.ID
	delivered int
	result    flow.Result
	verify    [][]byte
	haveSeq   []bool // per-sequence delivery (e2e duplicate suppression)
	onDone    func(flow.Result)
	done      bool
}

// NewNode creates a Srcr node; attach with sim.Attach.
func NewNode(cfg Config, state flow.RoutingState) *Node {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 50
	}
	return &Node{
		cfg:     cfg,
		state:   state,
		sources: make(map[flow.ID]*sourceState),
		sinks:   make(map[flow.ID]*sinkState),
		pushes:  make(map[flow.ID]*pushState),
		onoe:    make(map[graph.NodeID]*Onoe),
	}
}

// Init implements sim.Protocol.
func (n *Node) Init(sn *sim.Node) { n.node = sn }

// StartFlow begins a best-path transfer of file to dst. The source is
// backlogged: it generates the next packet whenever the previous one clears
// the MAC. onDone fires when every packet has been either delivered
// downstream or dropped (Srcr has no end-to-end retransmission).
func (n *Node) StartFlow(id flow.ID, dst graph.NodeID, file flow.File, onDone func(flow.Result)) error {
	if _, dup := n.sources[id]; dup {
		return fmt.Errorf("srcr: duplicate flow %d", id)
	}
	route := n.state.Path(n.node.ID(), dst)
	if route == nil {
		return fmt.Errorf("srcr: no route %d -> %d", n.node.ID(), dst)
	}
	st := &sourceState{
		id:          id,
		route:       route,
		payloads:    file.Payloads(),
		onDone:      onDone,
		planVersion: n.state.Version(),
	}
	if n.cfg.Reliable {
		st.startPassTracking(len(st.payloads))
	}
	st.result = flow.Result{
		Src: n.node.ID(), Dst: dst,
		PacketsTotal: file.NumPackets(),
		Start:        n.node.Now(),
	}
	n.sources[id] = st
	n.sourceOrder = append(n.sourceOrder, id)
	n.node.Wake()
	return nil
}

// ExpectFlow wires up destination-side verification and reporting.
func (n *Node) ExpectFlow(id flow.ID, file flow.File, onDone func(flow.Result)) {
	s := &sinkState{id: id, verify: file.Payloads(), onDone: onDone}
	s.haveSeq = make([]bool, file.NumPackets())
	s.result = flow.Result{Dst: n.node.ID(), PacketsTotal: file.NumPackets(), Verified: true}
	n.sinks[id] = s
}

// Result returns this node's view of a flow's outcome.
func (n *Node) Result(id flow.ID) flow.Result {
	if s, ok := n.sinks[id]; ok {
		return s.result
	}
	if s, ok := n.sources[id]; ok {
		return s.result
	}
	if s, ok := n.pushes[id]; ok {
		return s.result
	}
	return flow.Result{}
}

// SourceFinished reports whether the source has handed every packet to the
// MAC (delivered or dropped along the way).
func (n *Node) SourceFinished(id flow.ID) bool {
	s, ok := n.sources[id]
	return ok && s.done
}

// QueueLen exposes the forwarding queue depth (for tests).
func (n *Node) QueueLen() int { return len(n.queue) }

// Backlog counts every frame this node holds but has not yet offered to
// the MAC: forwarding queue, bare-mode push queue, and queued control.
// The scenario executor's drain phase runs until backlogs empty.
func (n *Node) Backlog() int { return len(n.queue) + len(n.pushQ) + len(n.control) }

// Receive implements sim.Protocol.
func (n *Node) Receive(f *sim.Frame) {
	switch m := f.Payload.(type) {
	case *FinMsg:
		n.receiveFin(f, m)
		return
	case *NackMsg:
		n.receiveNack(f, m)
		return
	}
	m, ok := f.Payload.(*DataMsg)
	if !ok || f.To != n.node.ID() {
		return // Srcr ignores overheard traffic: point-to-point abstraction
	}
	if m.Hop+1 >= len(m.Route) || m.Route[m.Hop+1] != n.node.ID() {
		return
	}
	next := &DataMsg{Flow: m.Flow, Seq: m.Seq, Route: m.Route, Hop: m.Hop + 1, Payload: m.Payload}
	if next.Hop == len(next.Route)-1 {
		n.deliver(next)
		return
	}
	if len(n.queue) >= n.cfg.QueueSize {
		n.QueueDrops++
		return
	}
	n.queue = append(n.queue, next)
	n.node.Wake()
}

func (n *Node) deliver(m *DataMsg) {
	s, ok := n.sinks[m.Flow]
	if !ok {
		s = &sinkState{id: m.Flow}
		s.result = flow.Result{Dst: n.node.ID(), Verified: true}
		n.sinks[m.Flow] = s
	}
	if s.result.Start == 0 && s.delivered == 0 {
		s.result.Start = n.node.Now()
		s.result.Src = m.Route[0]
	}
	if s.haveSeq != nil {
		if m.Seq >= len(s.haveSeq) || s.haveSeq[m.Seq] {
			return // duplicate from a later reliability pass
		}
		s.haveSeq[m.Seq] = true
	}
	s.delivered++
	n.node.Emit(telemetry.Event{
		Flow: uint32(m.Flow), Aux: int64(m.Seq), Kind: telemetry.KindPktDeliver,
	})
	s.result.PacketsDelivered = s.delivered
	s.result.End = n.node.Now()
	if s.verify != nil {
		if m.Seq >= len(s.verify) || !bytesEqual(m.Payload, s.verify[m.Seq]) {
			s.result.Verified = false
		}
	}
	if s.verify != nil && s.delivered == len(s.verify) && !s.done {
		s.done = true
		s.result.Completed = true
		if s.onDone != nil {
			s.onDone(s.result)
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HasControl reports whether FIN/NACK control traffic is queued — the
// congestion layer's full-queue pull hint (it implements
// congest.ControlReporter).
func (n *Node) HasControl() bool { return len(n.control) > 0 }

// Pull implements sim.Protocol: control messages first, then bare-mode
// push frames (timer-generated, time-sensitive), then forwarding, then
// backlogged source traffic.
func (n *Node) Pull() *sim.Frame {
	if len(n.control) > 0 {
		fr := n.control[0]
		n.control = n.control[1:]
		return fr
	}
	if len(n.pushQ) > 0 {
		fr := n.pushQ[0]
		n.pushQ = n.pushQ[1:]
		return fr
	}
	if len(n.queue) > 0 {
		m := n.queue[0]
		n.queue = n.queue[1:]
		return n.frameFor(m)
	}
	for _, id := range n.sourceOrder {
		st := n.sources[id]
		if st.done || st.inFlight {
			continue
		}
		var seq int
		if n.cfg.Reliable {
			if st.awaitingNack || len(st.pending) == 0 {
				continue
			}
			seq = st.pending[0]
			st.pending = st.pending[1:]
		} else {
			if st.nextSeq >= len(st.payloads) {
				continue
			}
			seq = st.nextSeq
			st.nextSeq++
		}
		m := &DataMsg{
			Flow:    st.id,
			Seq:     seq,
			Route:   st.route,
			Hop:     0,
			Payload: st.payloads[seq],
		}
		st.inFlight = true
		n.node.Emit(telemetry.Event{
			Flow: uint32(st.id), Aux: int64(seq), Kind: telemetry.KindPktSend,
		})
		return n.frameFor(m)
	}
	return nil
}

func (n *Node) frameFor(m *DataMsg) *sim.Frame {
	to := m.Route[m.Hop+1]
	f := &sim.Frame{
		From:    n.node.ID(),
		To:      to,
		Bytes:   m.wireBytes(),
		Payload: m,
		FlowID:  uint32(m.Flow),
	}
	if n.cfg.Autorate {
		f.Rate = n.onoeFor(to).Rate()
	} else if n.cfg.FixedRate != 0 {
		f.Rate = n.cfg.FixedRate
	}
	return f
}

func (n *Node) onoeFor(neighbor graph.NodeID) *Onoe {
	o, ok := n.onoe[neighbor]
	if !ok {
		o = NewOnoe(n.cfg.Onoe, n.node)
		n.onoe[neighbor] = o
	}
	return o
}

// Sent implements sim.Protocol.
func (n *Node) Sent(f *sim.Frame, ok bool) {
	switch m := f.Payload.(type) {
	case *FinMsg:
		if !ok {
			// Retry until delivered. With repair on, re-resolve the next hop
			// rather than re-queuing the frame's original one, which may have
			// died since the frame was addressed.
			if n.cfg.RepairInterval > 0 {
				n.queueControl(m, m.Target)
			} else {
				n.control = append(n.control, f)
			}
		}
		n.node.Wake()
		return
	case *NackMsg:
		if !ok {
			if n.cfg.RepairInterval > 0 {
				n.queueControl(m, m.Target)
			} else {
				n.control = append(n.control, f)
			}
		}
		n.node.Wake()
		return
	}
	m, isData := f.Payload.(*DataMsg)
	if !isData {
		return
	}
	if n.cfg.Autorate {
		n.onoeFor(f.To).Report(f.Retries, ok)
	}
	if !ok {
		n.MACDrops++
	} else if m.Hop > 0 {
		n.Forwarded++
	}
	if m.Hop == 0 {
		if st, okf := n.sources[m.Flow]; okf {
			st.inFlight = false
			if n.cfg.Reliable {
				if !st.done && len(st.pending) == 0 && !st.awaitingNack {
					n.finishPass(st)
				}
			} else if st.nextSeq >= len(st.payloads) {
				st.done = true
				st.result.End = n.node.Now()
				if st.onDone != nil {
					st.onDone(st.result)
				}
			}
		}
	}
	if len(n.queue) > 0 || len(n.control) > 0 || len(n.pushQ) > 0 || n.hasPendingSource() {
		n.node.Wake()
	}
}

func (n *Node) hasPendingSource() bool {
	for _, st := range n.sources {
		if st.done || st.inFlight {
			continue
		}
		if n.cfg.Reliable {
			if !st.awaitingNack && len(st.pending) > 0 {
				return true
			}
		} else if st.nextSeq < len(st.payloads) {
			return true
		}
	}
	return false
}
