package srcr

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// onoeHarness builds an Onoe instance on a throwaway simulator so its
// periodic evaluation timer has somewhere to live, and returns a manual
// clock-advance function.
func onoeHarness(t *testing.T, cfg OnoeConfig) (*Onoe, func(sim.Time)) {
	t.Helper()
	s := sim.New(graph.New(1), sim.DefaultConfig())
	p := &probeLike{}
	s.Attach(0, p)
	o := NewOnoe(cfg, s.Node(0))
	advance := func(d sim.Time) { s.Run(s.Now() + d) }
	return o, advance
}

// probeLike is a no-op protocol to host timers.
type probeLike struct{}

func (p *probeLike) Init(*sim.Node)        {}
func (p *probeLike) Receive(*sim.Frame)    {}
func (p *probeLike) Pull() *sim.Frame      { return nil }
func (p *probeLike) Sent(*sim.Frame, bool) {}

func TestOnoeStartsAtTopRate(t *testing.T) {
	o, _ := onoeHarness(t, DefaultOnoeConfig())
	if o.Rate() != sim.Rate11 {
		t.Fatalf("initial rate %v", o.Rate())
	}
}

func TestOnoeDropsOnHeavyRetries(t *testing.T) {
	o, advance := onoeHarness(t, DefaultOnoeConfig())
	for i := 0; i < 20; i++ {
		o.Report(5, false) // constant failures
	}
	advance(sim.Second + sim.Millisecond)
	if o.Rate() != sim.Rate5_5 {
		t.Fatalf("rate after one bad window: %v, want one step down", o.Rate())
	}
	for w := 0; w < 5; w++ {
		for i := 0; i < 20; i++ {
			o.Report(5, false)
		}
		advance(sim.Second)
	}
	if o.Rate() != sim.Rate1 {
		t.Fatalf("rate should bottom out at 1 Mb/s, got %v", o.Rate())
	}
	// It never goes below the lowest rate.
	for i := 0; i < 20; i++ {
		o.Report(5, false)
	}
	advance(sim.Second)
	if o.Rate() != sim.Rate1 {
		t.Fatal("rate fell below 1 Mb/s")
	}
}

func TestOnoeClimbsBackWithCredit(t *testing.T) {
	cfg := DefaultOnoeConfig()
	o, advance := onoeHarness(t, cfg)
	// Crash to the bottom.
	for w := 0; w < 6; w++ {
		for i := 0; i < 10; i++ {
			o.Report(7, false)
		}
		advance(sim.Second)
	}
	if o.Rate() != sim.Rate1 {
		t.Fatalf("setup failed: rate %v", o.Rate())
	}
	// Clean windows accumulate credit; after RaiseCredit windows the rate
	// steps up.
	for w := 0; w < cfg.RaiseCredit; w++ {
		for i := 0; i < 50; i++ {
			o.Report(0, true)
		}
		advance(sim.Second)
	}
	if o.Rate() != sim.Rate2 {
		t.Fatalf("rate after %d clean windows: %v, want 2 Mb/s", cfg.RaiseCredit, o.Rate())
	}
}

func TestOnoeMiddlingWindowErodesCredit(t *testing.T) {
	cfg := DefaultOnoeConfig()
	o, advance := onoeHarness(t, cfg)
	// Drop one step so raises are possible.
	for i := 0; i < 10; i++ {
		o.Report(7, false)
	}
	advance(sim.Second + sim.Millisecond)
	if o.Rate() != sim.Rate5_5 {
		t.Fatalf("setup: %v", o.Rate())
	}
	// Almost enough clean windows to raise...
	for w := 0; w < cfg.RaiseCredit-1; w++ {
		for i := 0; i < 50; i++ {
			o.Report(0, true)
		}
		advance(sim.Second)
	}
	// ...then a middling window (retries between the thresholds) must
	// erode credit rather than raise: 3 of 10 frames needed one retry,
	// retryFrac = 0.3, between 0.1 and 0.5.
	for i := 0; i < 7; i++ {
		o.Report(0, true)
	}
	for i := 0; i < 3; i++ {
		o.Report(1, true)
	}
	advance(sim.Second)
	if o.Rate() != sim.Rate5_5 {
		t.Fatalf("middling window changed the rate to %v", o.Rate())
	}
}

func TestOnoeIdleWindowsAreNeutral(t *testing.T) {
	o, advance := onoeHarness(t, DefaultOnoeConfig())
	advance(10 * sim.Second) // no traffic at all
	if o.Rate() != sim.Rate11 {
		t.Fatalf("idle windows moved the rate to %v", o.Rate())
	}
}
