package srcr

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func runSrcr(t *testing.T, topo *graph.Topology, cfg Config, simCfg sim.Config,
	src, dst graph.NodeID, file flow.File, deadline sim.Time) (flow.Result, *sim.Simulator, []*Node) {
	t.Helper()
	s := sim.New(topo, simCfg)
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	nodes := make([]*Node, topo.N())
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	nodes[dst].ExpectFlow(1, file, nil)
	if err := nodes[src].StartFlow(1, dst, file, nil); err != nil {
		t.Fatal(err)
	}
	s.RunWhile(deadline, func() bool {
		if !nodes[src].SourceFinished(1) {
			return true
		}
		// Stop once the pipeline drains.
		for _, n := range nodes {
			if n.QueueLen() > 0 || n.node.TxQueueActive() {
				return true
			}
		}
		return false
	})
	return nodes[dst].Result(1), s, nodes
}

func TestPerfectLinkDeliversEverything(t *testing.T) {
	topo := graph.Line(2, 1.0, 10)
	file := flow.NewFile(100*1500, 1500, 1)
	res, _, _ := runSrcr(t, topo, DefaultConfig(), sim.DefaultConfig(), 0, 1, file, 300*sim.Second)
	if res.PacketsDelivered != 100 || !res.Verified || !res.Completed {
		t.Fatalf("perfect link: %v", res)
	}
}

func TestPerfectChainHiddenTerminalLoss(t *testing.T) {
	// Even with perfect links, a 3-hop chain suffers hidden-terminal
	// collisions (node 0 and node 2 cannot sense each other), so a few
	// frames exhaust their retries. RTS/CTS is disabled as in §4.1.
	topo := graph.Line(4, 1.0, 10)
	file := flow.NewFile(100*1500, 1500, 1)
	res, s, _ := runSrcr(t, topo, DefaultConfig(), sim.DefaultConfig(), 0, 3, file, 300*sim.Second)
	if res.PacketsDelivered < 85 || !res.Verified {
		t.Fatalf("perfect chain: %v", res)
	}
	if s.Counters.Collisions == 0 {
		t.Fatal("expected hidden-terminal collisions on a 3-hop chain")
	}
}

func TestLossyLinkLosesSomePackets(t *testing.T) {
	// Per hop, the data gets through within 7 attempts with prob
	// 1-0.5^7 ≈ 0.992 (receiver-side dedup means an ACK-loss retry still
	// counts once), so two hops deliver ≈ 98% and the rest is lost —
	// Srcr has no end-to-end retransmission.
	topo := graph.Line(3, 0.5, 10)
	file := flow.NewFile(300*1500, 1500, 2)
	res, _, nodes := runSrcr(t, topo, DefaultConfig(), sim.DefaultConfig(), 0, 2, file, 600*sim.Second)
	if res.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	frac := float64(res.PacketsDelivered) / 300
	if frac < 0.9 || frac > 0.999 {
		t.Fatalf("delivered fraction %.3f, want ≈0.98 for 2 hops of p=0.5", frac)
	}
	drops := nodes[0].MACDrops + nodes[1].MACDrops
	if drops == 0 {
		t.Fatal("no MAC drops recorded on a lossy path")
	}
}

func TestRouteFollowsETX(t *testing.T) {
	// Good 2-hop path must beat a poor direct link.
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.95)
	topo.SetLink(1, 2, 0.95)
	topo.SetLink(0, 2, 0.3)
	file := flow.NewFile(50*1500, 1500, 3)
	res, s, _ := runSrcr(t, topo, DefaultConfig(), sim.DefaultConfig(), 0, 2, file, 300*sim.Second)
	if res.PacketsDelivered < 45 {
		t.Fatalf("delivered %d/50", res.PacketsDelivered)
	}
	if s.Counters.TxByNode[1] < 40 {
		t.Fatalf("relay barely used (%d tx); route not via ETX", s.Counters.TxByNode[1])
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	// Two flows converging on one relay with a tiny queue must overflow.
	topo := graph.New(4)
	topo.SetLink(0, 2, 1)
	topo.SetLink(1, 2, 1)
	topo.SetLink(2, 3, 0.5) // slow egress
	cfg := DefaultConfig()
	cfg.QueueSize = 4
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: 0.15, AckAware: true})
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = NewNode(cfg, oracle)
		s.Attach(graph.NodeID(i), nodes[i])
	}
	file := flow.NewFile(200*1500, 1500, 4)
	nodes[3].ExpectFlow(1, file, nil)
	nodes[3].ExpectFlow(2, file, nil)
	nodes[0].StartFlow(1, 3, file, nil)
	nodes[1].StartFlow(2, 3, file, nil)
	s.Run(300 * sim.Second)
	if nodes[2].QueueDrops == 0 {
		t.Fatal("no queue drops despite converging flows on a tiny queue")
	}
}

func TestNoRouteErrors(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.DefaultETXOptions())
	n := NewNode(DefaultConfig(), oracle)
	s.Attach(0, n)
	if err := n.StartFlow(1, 2, flow.NewFile(1500, 1500, 1), nil); err == nil {
		t.Fatal("StartFlow without route succeeded")
	}
}

func TestAutorateAdaptsDown(t *testing.T) {
	// With rate-dependent delivery, a marginal link is hopeless at 11 Mb/s
	// but fine at 1 Mb/s. Onoe must walk down from the top rate.
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.45) // reference (5.5) marginal; 11 is ~0.22, 1 is ~0.82
	simCfg := sim.DefaultConfig()
	simCfg.RateAdjust = sim.AdaptRateScale(graph.RateScale)
	cfg := DefaultConfig()
	cfg.Autorate = true
	file := flow.NewFile(400*1500, 1500, 6)
	res, s, nodes := runSrcr(t, topo, cfg, simCfg, 0, 1, file, 600*sim.Second)
	if res.PacketsDelivered < 300 {
		t.Fatalf("autorate delivered only %d/400", res.PacketsDelivered)
	}
	o := nodes[0].onoeFor(1)
	if o.Rate() == sim.Rate11 {
		t.Fatalf("Onoe stayed at 11 Mb/s on a marginal link")
	}
	low := s.Counters.TxByRate[sim.Rate1] + s.Counters.TxByRate[sim.Rate2] + s.Counters.TxByRate[sim.Rate5_5]
	if low == 0 {
		t.Fatal("no transmissions at reduced rates")
	}
}

func TestAutorateStaysHighOnGoodLink(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.98)
	simCfg := sim.DefaultConfig()
	simCfg.RateAdjust = sim.AdaptRateScale(graph.RateScale)
	cfg := DefaultConfig()
	cfg.Autorate = true
	file := flow.NewFile(400*1500, 1500, 7)
	res, _, nodes := runSrcr(t, topo, cfg, simCfg, 0, 1, file, 600*sim.Second)
	if !res.Completed && res.PacketsDelivered < 390 {
		t.Fatalf("good link delivered %d/400", res.PacketsDelivered)
	}
	if nodes[0].onoeFor(1).Rate() != sim.Rate11 {
		t.Fatalf("Onoe left the top rate on a clean link: %v", nodes[0].onoeFor(1).Rate())
	}
}

func TestFixedRateOverride(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	cfg := DefaultConfig()
	cfg.FixedRate = sim.Rate11
	file := flow.NewFile(20*1500, 1500, 8)
	_, s, _ := runSrcr(t, topo, cfg, sim.DefaultConfig(), 0, 1, file, 60*sim.Second)
	if s.Counters.TxByRate[sim.Rate11] == 0 {
		t.Fatal("fixed rate ignored")
	}
}

func TestTestbedPairThroughput(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	file := flow.NewFile(100*1500, 1500, 9)
	res, _, _ := runSrcr(t, topo, DefaultConfig(), sim.DefaultConfig(), 3, 17, file, 600*sim.Second)
	if res.PacketsDelivered < 50 {
		t.Fatalf("testbed pair delivered %d/100", res.PacketsDelivered)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput measured")
	}
}
