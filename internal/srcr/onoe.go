package srcr

import "repro/internal/sim"

// OnoeConfig tunes the Onoe-style credit-based bit-rate selection the
// MadWifi driver uses (§4.4). Onoe evaluates a window of transmission
// outcomes once per period: heavy retransmission drops the rate immediately;
// clean windows accumulate credit, and enough credit earns a raise.
type OnoeConfig struct {
	// Period between rate decisions.
	Period sim.Time
	// RaiseCredit is the credit needed to move up one rate.
	RaiseCredit int
	// DownRetryFrac lowers the rate when retries/frame exceeds it.
	DownRetryFrac float64
	// CreditRetryFrac earns credit when retries/frame stays below it.
	CreditRetryFrac float64
}

// DefaultOnoeConfig matches the classic MadWifi parameters (1 s period,
// 10 credits to raise, lower on >50% retry, credit under 10% retry).
func DefaultOnoeConfig() OnoeConfig {
	return OnoeConfig{
		Period:          sim.Second,
		RaiseCredit:     10,
		DownRetryFrac:   0.5,
		CreditRetryFrac: 0.1,
	}
}

// Onoe tracks one neighbor's rate state.
type Onoe struct {
	cfg     OnoeConfig
	rateIdx int
	credit  int

	// Window counters.
	frames   int
	retries  int
	failures int
}

// NewOnoe starts at the highest rate (as MadWifi does) and schedules the
// periodic evaluation on the node's timer wheel.
func NewOnoe(cfg OnoeConfig, node *sim.Node) *Onoe {
	if cfg.Period == 0 {
		cfg = DefaultOnoeConfig()
	}
	o := &Onoe{cfg: cfg, rateIdx: len(sim.Rates) - 1}
	var tick func()
	tick = func() {
		o.evaluate()
		node.After(cfg.Period, tick)
	}
	node.After(cfg.Period, tick)
	return o
}

// Rate returns the current bit-rate for this neighbor.
func (o *Onoe) Rate() sim.Bitrate { return sim.Rates[o.rateIdx] }

// Report feeds one MAC-completed frame into the window.
func (o *Onoe) Report(retries int, ok bool) {
	o.frames++
	o.retries += retries
	if !ok {
		o.failures++
	}
}

// evaluate applies the Onoe decision rules at the end of a window.
func (o *Onoe) evaluate() {
	if o.frames == 0 {
		return
	}
	retryFrac := float64(o.retries) / float64(o.frames)
	switch {
	case o.failures > o.frames/2 || retryFrac > o.cfg.DownRetryFrac:
		if o.rateIdx > 0 {
			o.rateIdx--
		}
		o.credit = 0
	case retryFrac < o.cfg.CreditRetryFrac:
		o.credit++
		if o.credit >= o.cfg.RaiseCredit {
			if o.rateIdx < len(sim.Rates)-1 {
				o.rateIdx++
			}
			o.credit = 0
		}
	default:
		if o.credit > 0 {
			o.credit--
		}
	}
	o.frames, o.retries, o.failures = 0, 0, 0
}
