// Package stats provides the summary statistics and distribution plots the
// evaluation chapter (§4.2–§4.4) reports: CDFs over flow throughputs
// (Figures 4-2, 4-4, 4-6, 4-7), medians and percentiles as §4.2.1 quotes
// them, means with standard deviations (Figure 4-5), and plain-text
// renderings for the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
}

// Summarize computes a Summary over the finite values of the sample. NaN
// and ±Inf inputs are skipped — one poisoned sample (a 0/0 throughput
// ratio, an overflowed latency) must not turn every reported moment into
// NaN, the same hardening JainIndex got. N counts the finite values; an
// empty or all-non-finite sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			sorted = append(sorted, x)
		}
	}
	s := Summary{N: len(sorted)}
	if len(sorted) == 0 {
		return s
	}
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	s.P10 = Percentile(sorted, 10)
	s.P90 = Percentile(sorted, 90)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f±%.1f min=%.1f p10=%.1f median=%.1f p90=%.1f max=%.1f",
		s.N, s.Mean, s.Std, s.Min, s.P10, s.Median, s.P90, s.Max)
}

// Percentile returns the p-th percentile (0..100) of a *sorted* sample
// using linear interpolation. It panics on an empty sample. Non-finite
// values are excluded: sort.Float64s places NaNs first and +Inf last, so
// the finite window is trimmed from both ends before interpolating. A NaN
// p, or a sample with no finite values, returns NaN.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	lo0, hi0 := 0, len(sorted)
	for lo0 < hi0 && (math.IsNaN(sorted[lo0]) || math.IsInf(sorted[lo0], -1)) {
		lo0++
	}
	for hi0 > lo0 && (math.IsNaN(sorted[hi0-1]) || math.IsInf(sorted[hi0-1], 1)) {
		hi0--
	}
	sorted = sorted[lo0:hi0]
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median sorts a copy and returns the 50th percentile.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Percentile(sorted, 50)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// Sorted sample values.
	Values []float64
}

// NewCDF builds a CDF from a sample (copied and sorted).
func NewCDF(xs []float64) *CDF {
	v := append([]float64(nil), xs...)
	sort.Float64s(v)
	return &CDF{Values: v}
}

// At returns F(x): the fraction of the sample ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.Values, x)
	// Advance over equal values so At is right-continuous.
	for i < len(c.Values) && c.Values[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.Values))
}

// Quantile returns the value at cumulative fraction q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	return Percentile(c.Values, q*100)
}

// Points returns (x, F(x)) pairs for every sample point — the series the
// paper's CDF figures plot.
func (c *CDF) Points() [][2]float64 {
	out := make([][2]float64, len(c.Values))
	for i, v := range c.Values {
		out[i] = [2]float64{v, float64(i+1) / float64(len(c.Values))}
	}
	return out
}

// TSV renders the CDF as "value<TAB>fraction" lines.
func (c *CDF) TSV() string {
	var b strings.Builder
	for _, p := range c.Points() {
		fmt.Fprintf(&b, "%.3f\t%.4f\n", p[0], p[1])
	}
	return b.String()
}

// AsciiPlot renders one or more CDFs as a crude fixed-width chart: x axis
// spans [0, xmax], y axis 0..1. Each series is drawn with its rune.
func AsciiPlot(series map[rune]*CDF, xmax float64, width, height int) string {
	if width < 10 {
		width = 60
	}
	if height < 5 {
		height = 20
	}
	gridRows := height + 1
	grid := make([][]rune, gridRows)
	for y := range grid {
		grid[y] = []rune(strings.Repeat(" ", width+1))
	}
	order := make([]rune, 0, len(series))
	for r := range series {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, r := range order {
		c := series[r]
		for xi := 0; xi <= width; xi++ {
			x := xmax * float64(xi) / float64(width)
			f := c.At(x)
			y := int(math.Round(f * float64(height)))
			if y > height {
				y = height
			}
			row := height - y
			grid[row][xi] = r
		}
	}
	var b strings.Builder
	for y, row := range grid {
		frac := 1 - float64(y)/float64(height)
		fmt.Fprintf(&b, "%4.2f |%s\n", frac, string(row))
	}
	b.WriteString("     +" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&b, "      0%*s\n", width, fmt.Sprintf("%.0f", xmax))
	return b.String()
}

// GainVsBaseline returns elementwise ratios a[i]/b[i], skipping pairs where
// the baseline is zero (used for the "MORE over Srcr" gain figures).
func GainVsBaseline(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var out []float64
	for i := 0; i < n; i++ {
		if b[i] > 0 {
			out = append(out, a[i]/b[i])
		}
	}
	return out
}
