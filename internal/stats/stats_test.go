package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
	if Summarize([]float64{7}).Std != 0 {
		t.Fatal("single-element std should be 0")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 100) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(sorted, 50); got != 25 {
		t.Fatalf("median of even sample = %v, want 25", got)
	}
	if got := Percentile(sorted, 25); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMedianUnsorted(t *testing.T) {
	if Median([]float64{9, 1, 5}) != 5 {
		t.Fatal("median wrong")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Quantile(0.5) != 2 {
		t.Fatalf("Quantile(0.5) = %v", c.Quantile(0.5))
	}
	pts := c.Points()
	if len(pts) != 4 || pts[3][1] != 1 {
		t.Fatalf("points %v", pts)
	}
	if !strings.Contains(c.TSV(), "\t") {
		t.Fatal("TSV malformed")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		c := NewCDF(xs)
		prev := -1.0
		for _, p := range c.Points() {
			if p[1] < prev {
				return false
			}
			prev = p[1]
		}
		return c.At(math.Inf(1)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAsciiPlot(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30})
	out := AsciiPlot(map[rune]*CDF{'M': c}, 40, 40, 10)
	if !strings.Contains(out, "M") {
		t.Fatal("plot missing series")
	}
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "0.00") {
		t.Fatal("plot missing axis labels")
	}
}

func TestGainVsBaseline(t *testing.T) {
	g := GainVsBaseline([]float64{10, 20, 30}, []float64{5, 0, 10})
	if len(g) != 2 || g[0] != 2 || g[1] != 3 {
		t.Fatalf("gains %v", g)
	}
}

func TestSummarizeSkipsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	s := Summarize([]float64{1, nan, 2, inf, 3, math.Inf(-1)})
	if s.N != 3 {
		t.Fatalf("N = %d, want 3 finite values", s.N)
	}
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("moments poisoned: %+v", s)
	}
	z := Summarize([]float64{nan, inf})
	if z.N != 0 || z.Mean != 0 {
		t.Fatalf("all-non-finite sample should yield zero Summary, got %+v", z)
	}
}

func TestPercentileNonFinite(t *testing.T) {
	// sort.Float64s puts NaN first and +Inf last; Percentile must trim
	// both and interpolate over the finite window only.
	sorted := []float64{math.NaN(), math.Inf(-1), 1, 2, 3, math.Inf(1)}
	if got := Percentile(sorted, 50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := Percentile(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := Percentile(sorted, 100); got != 3 {
		t.Fatalf("p100 = %v, want 3", got)
	}
	if got := Percentile([]float64{1, 2, 3}, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("NaN p should return NaN, got %v", got)
	}
	if got := Percentile([]float64{math.NaN(), math.Inf(1)}, 50); !math.IsNaN(got) {
		t.Fatalf("all-non-finite sample should return NaN, got %v", got)
	}
}
