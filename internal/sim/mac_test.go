package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	times := []Time{5, 1, 3, 1, 9, 2}
	for i, at := range times {
		heap.Push(&h, &Event{at: at, seq: uint64(i)})
	}
	var out []Time
	var seqs []uint64
	for h.Len() > 0 {
		e := heap.Pop(&h).(*Event)
		out = append(out, e.at)
		seqs = append(seqs, e.seq)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("heap emitted out of order: %v", out)
		}
		if out[i] == out[i-1] && seqs[i] < seqs[i-1] {
			t.Fatalf("ties not broken by insertion order: %v %v", out, seqs)
		}
	}
}

func TestEventHeapQuickOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		var h eventHeap
		for i, v := range raw {
			heap.Push(&h, &Event{at: Time(v), seq: uint64(i)})
		}
		prev := Time(-1)
		for h.Len() > 0 {
			e := heap.Pop(&h).(*Event)
			if e.at < prev {
				return false
			}
			prev = e.at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCanceledEventDoesNotFire(t *testing.T) {
	topo := graph.New(1)
	s := New(topo, DefaultConfig())
	fired := false
	ev := s.After(Millisecond, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // double-cancel is a no-op
	s.Run(Second)
	if fired {
		t.Fatal("canceled event fired")
	}
	var nilEv *Event
	nilEv.Cancel() // nil-safe
}

func TestScheduleInPastClamps(t *testing.T) {
	topo := graph.New(1)
	s := New(topo, DefaultConfig())
	s.After(Millisecond, func() {
		// Scheduling with zero delay from inside an event must fire at the
		// current time, not before it.
		ev := s.After(0, func() {})
		if ev.At() < s.Now() {
			t.Errorf("event scheduled in the past: %v < %v", ev.At(), s.Now())
		}
	})
	s.Run(Second)
}

func TestBackoffFreezeAndResume(t *testing.T) {
	// A node that wants to transmit while another node holds the medium
	// must defer, then transmit after the medium clears — and its frame
	// must not overlap the first.
	topo := graph.New(3)
	topo.SetLink(0, 2, 1)
	topo.SetLink(1, 2, 1)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b, c := &testProto{}, &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Attach(2, c)

	var starts []Time
	var ends []Time
	s.Trace = func(format string, args ...interface{}) {}
	// Track transmissions via counters after the run instead: with both
	// frames delivered and zero collisions, the MAC must have serialized.
	a.enqueue(&Frame{From: 0, To: graph.Broadcast, Bytes: 1400})
	b.enqueue(&Frame{From: 1, To: graph.Broadcast, Bytes: 1400})
	s.Run(Second)
	_ = starts
	_ = ends
	if len(c.received) != 2 {
		t.Fatalf("receiver decoded %d/2 frames", len(c.received))
	}
	if s.Counters.Collisions != 0 {
		t.Fatalf("%d collisions despite carrier sense", s.Counters.Collisions)
	}
}

func TestPullNilPutsMACToSleep(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b := &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	// Wake with an empty queue: the MAC contends once, gets nil, sleeps.
	a.node.Wake()
	s.Run(Second)
	if s.Counters.Transmissions != 0 {
		t.Fatal("MAC transmitted without a frame")
	}
	// A later enqueue+wake works.
	a.enqueue(&Frame{From: 0, To: graph.Broadcast, Bytes: 100})
	s.Run(2 * Second)
	if len(b.received) != 1 {
		t.Fatal("frame after sleep not delivered")
	}
}

func TestDuplicateSuppressionOnOverhearing(t *testing.T) {
	// A retransmitted unicast frame must be delivered once to the
	// addressee and once to each overhearer, even across MAC retries.
	topo := graph.New(3)
	topo.SetDirected(0, 1, 1)   // data always arrives
	topo.SetDirected(1, 0, 0.3) // MAC ACKs usually lost: retries happen
	topo.SetDirected(0, 2, 1)   // overhearer hears everything
	cfg := DefaultConfig()
	cfg.Seed = 5
	s := New(topo, cfg)
	a, b, c := &testProto{}, &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Attach(2, c)
	a.enqueue(&Frame{From: 0, To: 1, Bytes: 500})
	s.Run(5 * Second)
	if s.Counters.Transmissions < 2 {
		t.Skip("no retries happened with this seed")
	}
	if len(b.received) != 1 {
		t.Fatalf("addressee received %d copies", len(b.received))
	}
	if len(c.received) != 1 {
		t.Fatalf("overhearer received %d copies", len(c.received))
	}
}

func TestSenseRangeExtendsCarrierSense(t *testing.T) {
	// Two senders with no radio link but within SenseRange must serialize.
	topo := graph.New(3)
	topo.Pos[0] = graph.Position{X: 0}
	topo.Pos[1] = graph.Position{X: 50}
	topo.Pos[2] = graph.Position{X: 25}
	topo.SetLink(0, 2, 1)
	topo.SetLink(1, 2, 1)
	// no 0<->1 link: hidden by probability...
	cfg := DefaultConfig()
	cfg.SenseRange = 60 // ...but visible by geometry
	s := New(topo, cfg)
	a, b, c := &testProto{}, &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Attach(2, c)
	for i := 0; i < 100; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 1400})
		b.queue = append(b.queue, &Frame{From: 1, To: graph.Broadcast, Bytes: 1400})
	}
	a.node.Wake()
	b.node.Wake()
	s.Run(60 * Second)
	if len(c.received) < 190 {
		t.Fatalf("receiver decoded %d/200; geometric carrier sense not applied (collisions=%d)",
			len(c.received), s.Counters.Collisions)
	}
}

func TestFrameSizeDependentDelivery(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.5)
	cfg := DefaultConfig()
	cfg.RefFrameBytes = 1500
	s := New(topo, cfg)
	a, b := &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	// 150-byte frames (the floor) succeed with 0.5^0.1 ≈ 0.93.
	for i := 0; i < 1000; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 150})
	}
	a.node.Wake()
	s.Run(200 * Second)
	frac := float64(len(b.received)) / 1000
	if frac < 0.88 || frac > 0.98 {
		t.Fatalf("small-frame delivery %.3f, want ≈0.93", frac)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		1500 * Millisecond: "1.500s",
		2 * Millisecond:    "2.000ms",
		30 * Microsecond:   "30.0us",
		5 * Nanosecond:     "5ns",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
	if Rate5_5.String() != "5.5Mbps" || Rate11.String() != "11Mbps" {
		t.Error("bitrate strings wrong")
	}
}

func TestAirTimePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AirTime(100, 0)
}

func TestRandDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) int64 {
		cfg := DefaultConfig()
		cfg.Seed = seed
		s := New(graph.New(1), cfg)
		return s.Rand().Int63()
	}
	if draw(1) != draw(1) {
		t.Fatal("same seed differs")
	}
	if draw(1) == draw(2) {
		t.Fatal("different seeds agree")
	}
	_ = rand.Int // keep math/rand imported for clarity of intent
}

// TestDupWindowBoundsSeenMemory checks that the MAC's duplicate-suppression
// memory stays at the configured window: once more keys than DupWindow have
// been recorded, the oldest are evicted (and so would be re-accepted), and
// the map never exceeds the window.
func TestDupWindowBoundsSeenMemory(t *testing.T) {
	topo := graph.New(2)
	cfg := DefaultConfig()
	cfg.DupWindow = 8
	s := New(topo, cfg)
	m := s.Node(0).mac
	for k := uint64(1); k <= 100; k++ {
		m.recordSeen(k)
		if len(m.seen) > 8 || len(m.seenRing) > 8 {
			t.Fatalf("seen memory exceeded window after %d inserts: map=%d ring=%d",
				k, len(m.seen), len(m.seenRing))
		}
	}
	// The most recent 8 keys are remembered, everything older forgotten.
	for k := uint64(93); k <= 100; k++ {
		if _, ok := m.seen[k]; !ok {
			t.Fatalf("recent key %d evicted early", k)
		}
	}
	if _, ok := m.seen[92]; ok {
		t.Fatal("key outside the window still remembered")
	}
}

// TestDupWindowDefault checks the zero value gets the documented default.
func TestDupWindowDefault(t *testing.T) {
	s := New(graph.New(1), Config{})
	if s.cfg.DupWindow != 4096 {
		t.Fatalf("default DupWindow = %d, want 4096", s.cfg.DupWindow)
	}
}

// TestStackRoutesTraffic checks the protocol stack: both layers see every
// reception, the first layer wins transmission opportunities, and Sent is
// routed to the layer that supplied the frame.
func TestStackRoutesTraffic(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1.0)
	s := New(topo, DefaultConfig())

	hi := &scriptedProto{frames: []*Frame{{To: graph.Broadcast, Bytes: 100, Payload: "hi"}}}
	lo := &scriptedProto{frames: []*Frame{{To: graph.Broadcast, Bytes: 100, Payload: "lo"}}}
	s.Attach(0, NewStack(hi, lo))
	sink := &scriptedProto{}
	s.Attach(1, sink)

	s.Node(0).Wake()
	s.Run(Second)

	if len(hi.sent) != 1 || hi.sent[0].Payload != "hi" {
		t.Fatalf("high layer Sent not routed: %+v", hi.sent)
	}
	if len(lo.sent) != 1 || lo.sent[0].Payload != "lo" {
		t.Fatalf("low layer Sent not routed: %+v", lo.sent)
	}
	// The high layer's frame must have gone out first.
	if len(sink.received) != 2 || sink.received[0].Payload != "hi" || sink.received[1].Payload != "lo" {
		t.Fatalf("stack priority violated at receiver: %+v", sink.received)
	}
	// Receptions fan out to every layer of a stacked receiver.
	s2 := New(topo, DefaultConfig())
	a, b := &scriptedProto{}, &scriptedProto{}
	s2.Attach(1, NewStack(a, b))
	src := &scriptedProto{frames: []*Frame{{To: graph.Broadcast, Bytes: 100, Payload: "x"}}}
	s2.Attach(0, src)
	s2.Node(0).Wake()
	s2.Run(Second)
	if len(a.received) != 1 || len(b.received) != 1 {
		t.Fatalf("stacked receiver did not fan out: a=%d b=%d", len(a.received), len(b.received))
	}
}

// scriptedProto transmits a fixed list of frames and records what happens.
type scriptedProto struct {
	node     *Node
	frames   []*Frame
	sent     []*Frame
	received []*Frame
}

func (p *scriptedProto) Init(n *Node)     { p.node = n }
func (p *scriptedProto) Receive(f *Frame) { p.received = append(p.received, f) }
func (p *scriptedProto) Sent(f *Frame, ok bool) {
	p.sent = append(p.sent, f)
	if len(p.frames) > 0 {
		p.node.Wake()
	}
}
func (p *scriptedProto) Pull() *Frame {
	if len(p.frames) == 0 {
		return nil
	}
	f := p.frames[0]
	p.frames = p.frames[1:]
	return f
}
