package sim

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Protocol is the interface a routing protocol implements per node. The
// simulator mirrors the real system's control flow (§3.3.3): the MAC pulls a
// frame exactly when it wins a transmission opportunity, and pushes up every
// successfully decoded frame — addressed, broadcast, or overheard.
type Protocol interface {
	// Init is called once, before any traffic, with the node handle.
	Init(n *Node)

	// Receive is called for every frame this node successfully decodes,
	// including frames addressed elsewhere (promiscuous listening, which
	// both MORE and ExOR depend on). Duplicate unicast retransmissions
	// are suppressed by the MAC.
	Receive(f *Frame)

	// Pull is called when the MAC is ready to transmit. The protocol
	// returns the frame to send, or nil if it has nothing; returning nil
	// puts the MAC to sleep until Wake is called.
	Pull() *Frame

	// Sent reports the fate of a pulled frame: for unicast, whether the
	// MAC-level ACK arrived within the retry limit; for broadcast, always
	// true once the frame is on the air.
	Sent(f *Frame, ok bool)
}

// FrameSink accepts frames injected by timer-driven (push) traffic
// sources. Pull-based protocols generate a frame only when the MAC asks, so
// the medium backpressures them; a push source instead hands each generated
// frame to a sink the moment its clock fires, no matter how congested the
// path below is. The congestion layer implements FrameSink (pushed frames
// enter its bounded queue and can overflow, exercising the tail/CHOKe drop
// policies as designed); protocols that host push sources accept a sink via
// their own SetPushSink hook.
type FrameSink interface {
	// PushFrame offers a frame for transmission with no backpressure: the
	// sink either queues it or drops it under its own policy.
	PushFrame(f *Frame)
}

// Node is a simulated wireless router.
type Node struct {
	sim    *Simulator
	id     graph.NodeID
	proto  Protocol
	mac    *mac
	failed bool
}

func newNode(s *Simulator, id graph.NodeID) *Node {
	n := &Node{sim: s, id: id}
	n.mac = newMAC(n)
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() graph.NodeID { return n.id }

// Sim returns the owning simulator.
func (n *Node) Sim() *Simulator { return n.sim }

// Now returns the current simulated time.
func (n *Node) Now() Time { return n.sim.now }

// Rand returns the deterministic simulation RNG.
func (n *Node) Rand() *rand.Rand { return n.sim.rng }

// After schedules fn after delay; the returned event can be canceled.
func (n *Node) After(delay Time, fn func()) *Event { return n.sim.After(delay, fn) }

// Wake tells the MAC the protocol has traffic; the MAC will contend for the
// medium and eventually call Pull. Failed nodes ignore wakes.
func (n *Node) Wake() {
	if n.failed {
		return
	}
	n.mac.wake()
}

// Telemetry reports whether a telemetry sink is installed. Layers that
// need per-event bookkeeping before emitting (e.g. queue-wait timestamps)
// gate that bookkeeping on this so the off path stays free.
func (n *Node) Telemetry() bool { return n.sim.Telem != nil }

// Emit stamps a telemetry event with the current time and this node's ID
// and forwards it to the installed sink; without a sink it is a single
// nil check. Protocol layers emit through this.
func (n *Node) Emit(ev telemetry.Event) {
	if s := n.sim.Telem; s != nil {
		ev.At = int64(n.sim.now)
		ev.Node = int32(n.id)
		s.Emit(ev)
	}
}

// Failed reports whether the node has been silenced by Simulator.FailNode.
func (n *Node) Failed() bool { return n.failed }

// Busy reports whether the node's carrier sense currently detects energy.
func (n *Node) Busy() bool { return n.mac.busy > 0 }

// TxQueueActive reports whether the MAC is currently working on a frame
// (contending, transmitting, or awaiting a MAC ACK).
func (n *Node) TxQueueActive() bool { return n.mac.state != macIdle }
