package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Config parameterizes the simulated PHY and MAC.
type Config struct {
	// Seed drives all randomness in the run.
	Seed int64

	// DataRate is the rate for data frames unless a frame overrides it
	// (autorate does). The paper runs most experiments at 5.5 Mb/s (§4.1.2).
	DataRate Bitrate

	// BasicRate is used for MAC ACK frames.
	BasicRate Bitrate

	// SlotTime, SIFS, DIFS are 802.11b MAC timings.
	SlotTime Time
	SIFS     Time
	DIFS     Time

	// CWMin and CWMax bound the contention window (in slots).
	CWMin int
	CWMax int

	// RetryLimit is the maximum number of transmission attempts for a
	// unicast frame before the MAC reports failure.
	RetryLimit int

	// MACAckBytes is the size of a MAC-level ACK frame.
	MACAckBytes int

	// SenseThreshold: node j's carrier sense detects i's transmission when
	// the delivery probability i->j at the reference rate exceeds this.
	SenseThreshold float64

	// SenseRange, when positive, extends carrier sense by geometry: node j
	// also senses i when their positions are within this many meters.
	// 802.11 energy detection reaches well beyond the decodable range, so
	// realistic meshes are mostly carrier-sense connected even where no
	// usable link exists; leaving this zero keeps sensing purely
	// probability-based (useful for synthetic matrix topologies).
	SenseRange float64

	// InterferenceThreshold: a concurrent transmission from k corrupts
	// reception at j when p(k->j) exceeds this (subject to capture).
	InterferenceThreshold float64

	// CaptureEnabled allows the stronger of two overlapping frames to
	// survive at a receiver (§4.2.3 credits the capture effect for much of
	// MORE's gain on short paths).
	CaptureEnabled bool
	// CaptureMargin is the required strength difference in log-odds of the
	// delivery probabilities: frame from i survives interference from k at
	// receiver j when logit(p_ij) - logit(p_kj) >= CaptureMargin. Delivery
	// probability is a steep function of SINR, so log-odds distance is the
	// natural stand-in for the dB margin real capture needs.
	CaptureMargin float64

	// RateAdjust maps the topology's reference-rate delivery probability
	// to the probability at the transmit rate. Nil keeps probabilities
	// rate-independent (fine when every frame uses the reference rate).
	RateAdjust func(pRef float64, rate Bitrate) float64

	// RefFrameBytes, when positive, makes delivery probability depend on
	// frame length: the topology's probabilities are taken as the frame
	// error behaviour of a RefFrameBytes-byte frame, and a b-byte frame
	// succeeds with p^(b/RefFrameBytes) — the independent-bit-error model.
	// Short frames (MAC ACKs, batch ACKs, probes, ExOR gossip) then ride
	// far more reliably than full data frames, as on real hardware. Zero
	// keeps delivery size-independent.
	RefFrameBytes int

	// MinFrameBytes floors the effective size in the RefFrameBytes model:
	// even a tiny frame pays preamble detection and fading bursts, so its
	// delivery never beats that of a MinFrameBytes-byte frame. Zero
	// defaults to RefFrameBytes/10.
	MinFrameBytes int

	// DupWindow bounds each node's MAC duplicate-suppression memory: the
	// most recent DupWindow delivered (sender, sequence) keys are
	// remembered; older ones are forgotten. Retransmitted duplicates
	// always arrive within the retry window, so any value comfortably
	// above the per-neighbor retry depth is behavior-identical while
	// keeping memory bounded on very long runs. Zero defaults to 4096.
	DupWindow int
}

// DefaultConfig returns 802.11b-ish parameters matching the testbed setup.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		DataRate:              Rate5_5,
		BasicRate:             Rate2,
		SlotTime:              20 * Microsecond,
		SIFS:                  10 * Microsecond,
		DIFS:                  50 * Microsecond,
		CWMin:                 31,
		CWMax:                 1023,
		RetryLimit:            7,
		MACAckBytes:           14,
		SenseThreshold:        0.01,
		InterferenceThreshold: 0.01,
		CaptureEnabled:        true,
		CaptureMargin:         2.0,
	}
}

// Frame is a MAC-layer frame.
type Frame struct {
	From graph.NodeID
	// To is the MAC destination; graph.Broadcast means broadcast (no MAC
	// ACK, no retransmission).
	To graph.NodeID
	// Bytes is the on-air frame size including all headers.
	Bytes int
	// Rate overrides the configured data rate when nonzero.
	Rate Bitrate
	// Payload carries the protocol message. The simulator never inspects it.
	Payload interface{}

	// FlowID attributes the frame to an end-to-end flow for per-flow
	// transmission accounting (Counters.TxByFlow) and per-flow queueing in
	// the congestion layer. Zero marks control traffic (probes, LSAs,
	// credit grants) and unattributed frames.
	FlowID uint32

	// Piggyback carries control payloads riding this frame (opportunistic
	// LSA dissemination; see Piggybacker). Receivers scan it in addition
	// to Payload; the simulator never inspects it. Its bytes are already
	// folded into Bytes by the layer that attached them.
	Piggyback []interface{}

	// Retries is filled in by the MAC before the Sent callback: how many
	// retransmissions the frame needed (0 = first attempt succeeded).
	// Autorate algorithms feed on it.
	Retries int

	seq      uint64 // MAC sequence number for duplicate suppression
	isMACAck bool
	ackFor   *transmission
}

// Counters aggregates statistics over a run.
type Counters struct {
	Transmissions    int64 // data frame transmission attempts (incl. retries)
	MACAcks          int64
	Deliveries       int64 // successful frame decodes (any addressee)
	Collisions       int64 // receptions destroyed by interference
	ChannelLosses    int64 // receptions lost to the Bernoulli channel draw
	UnicastSuccesses int64
	UnicastFailures  int64 // unicast frames dropped after retry limit
	AirTime          Time  // total on-air time of all transmissions
	AirTimeByRate    map[Bitrate]Time
	TxByRate         map[Bitrate]int64
	TxByNode         []int64
	// TxByFlow attributes data-frame transmissions (incl. MAC retries) to
	// the flow stamped on each frame; key 0 collects control traffic and
	// unattributed frames. Per-flow sums plus the 0 bucket always equal
	// Transmissions.
	TxByFlow map[uint32]int64
	// QueueHWM[i] is node i's congestion-layer queue-depth high-water
	// mark over the run. Filled by the experiment drivers only when the
	// congest layer's load export is on (congest.Config.LoadExport); nil
	// otherwise, so legacy result documents and digests are unchanged.
	QueueHWM []int64 `json:",omitempty"`
}

// Simulator is the event loop plus medium state.
type Simulator struct {
	cfg   Config
	topo  *graph.Topology
	now   Time
	seq   uint64
	queue eventHeap
	rng   *rand.Rand
	nodes []*Node

	// canceledInQueue counts canceled events still sitting in the heap;
	// when they outnumber live ones the heap is compacted (see event.go).
	canceledInQueue int

	// senseSet[i] lists the nodes (including i itself) whose carrier sense
	// detects a transmission by i, sorted ascending. Precomputed from the
	// topology's neighbor lists plus the geometric sense range, it replaces
	// the whole-population scan on every transmission start/end.
	senseSet [][]graph.NodeID

	// relevant[i] lists the transmitters whose concurrent frames can affect
	// reception of i's frames at any of i's receivers: i's out-neighbors
	// (half-duplex) plus every node audible above the interference
	// threshold at one of them. Overlap tracking records only these pairs;
	// anything else could never change a reception outcome. Built lazily —
	// nodes that never transmit pay nothing.
	relevant [][]graph.NodeID

	active   []*transmission
	Counters Counters

	// Trace, when set, receives a line per interesting medium event.
	Trace func(format string, args ...interface{})

	// Telem, when set, receives a typed telemetry.Event per medium and
	// protocol event (see internal/telemetry). Nil costs one pointer check
	// per emission site and nothing else.
	Telem telemetry.Sink
}

// transmission is a frame in flight.
type transmission struct {
	frame    *Frame
	from     *Node
	start    Time
	end      Time
	rate     Bitrate
	overlaps []*transmission // other transmissions overlapping in time
	done     bool
}

// New creates a simulator over the topology.
func New(topo *graph.Topology, cfg Config) *Simulator {
	if cfg.DataRate == 0 {
		cfg.DataRate = Rate5_5
	}
	if cfg.BasicRate == 0 {
		cfg.BasicRate = Rate2
	}
	if cfg.DupWindow <= 0 {
		cfg.DupWindow = 4096
	}
	s := &Simulator{
		cfg:  cfg,
		topo: topo,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	s.Counters.AirTimeByRate = make(map[Bitrate]Time)
	s.Counters.TxByRate = make(map[Bitrate]int64)
	s.Counters.TxByNode = make([]int64, topo.N())
	s.Counters.TxByFlow = make(map[uint32]int64)
	s.nodes = make([]*Node, topo.N())
	for i := range s.nodes {
		s.nodes[i] = newNode(s, graph.NodeID(i))
	}
	s.buildSenseSets()
	s.relevant = make([][]graph.NodeID, topo.N())
	return s
}

// buildSenseSets precomputes, per transmitter, the sorted set of nodes whose
// carrier sense hears it: the transmitter itself, its out-neighbors above
// the sense threshold, and (when SenseRange is set) everything within range
// by geometry, found through a spatial grid rather than an all-pairs scan.
func (s *Simulator) buildSenseSets() {
	n := s.topo.N()
	s.senseSet = make([][]graph.NodeID, n)
	var spatial *graph.SpatialIndex
	if s.cfg.SenseRange > 0 {
		spatial = graph.NewSpatialIndex(s.topo.Pos, s.cfg.SenseRange)
	}
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		set := []graph.NodeID{id}
		for _, e := range s.topo.OutEdges(id) {
			if e.P > s.cfg.SenseThreshold {
				set = append(set, e.Node)
			}
		}
		if spatial != nil {
			set = append(set, spatial.Near(id, s.cfg.SenseRange)...)
		}
		s.senseSet[i] = sortedUniqueIDs(set)
	}
}

// relevantTo returns (building on first use) the sorted set of transmitters
// whose overlapping frames can influence reception of id's frames.
func (s *Simulator) relevantTo(id graph.NodeID) []graph.NodeID {
	if r := s.relevant[id]; r != nil {
		return r
	}
	// The per-receiver interference check compares the rate-ADJUSTED
	// probability against the threshold; robust rates can adjust a link
	// above its reference probability, so pre-filtering on the reference
	// value is only exact for a rate-independent channel. With RateAdjust
	// installed, admit every audible link and let the per-receiver check
	// decide.
	thresh := s.cfg.InterferenceThreshold
	if s.cfg.RateAdjust != nil {
		thresh = 0
	}
	out := s.topo.OutEdges(id)
	set := make([]graph.NodeID, 0, len(out)*4)
	for _, e := range out {
		set = append(set, e.Node) // half-duplex: a busy receiver misses us
		for _, in := range s.topo.InEdges(e.Node) {
			if in.Node != id && in.P > thresh {
				set = append(set, in.Node)
			}
		}
	}
	r := sortedUniqueIDs(set)
	s.relevant[id] = r
	return r
}

// sortedUniqueIDs sorts ids ascending and removes duplicates in place.
func sortedUniqueIDs(ids []graph.NodeID) []graph.NodeID {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return []graph.NodeID{} // non-nil: marks the set as built
	}
	return out
}

// containsID reports whether the sorted set contains id.
func containsID(set []graph.NodeID, id graph.NodeID) bool {
	k := sort.Search(len(set), func(i int) bool { return set[i] >= id })
	return k < len(set) && set[k] == id
}

// Node returns the node with the given ID.
func (s *Simulator) Node(id graph.NodeID) *Node { return s.nodes[id] }

// Nodes returns all nodes.
func (s *Simulator) Nodes() []*Node { return s.nodes }

// Topology returns the topology the simulator runs over.
func (s *Simulator) Topology() *graph.Topology { return s.topo }

// Config returns the active configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's RNG. Protocols must use this (or a
// derived generator) so runs stay deterministic.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Attach installs a protocol on a node and calls its Init hook.
func (s *Simulator) Attach(id graph.NodeID, p Protocol) {
	n := s.nodes[id]
	n.proto = p
	p.Init(n)
}

// FailNode silences a node permanently, modelling a mid-run crash or power
// loss: the node initiates no further transmissions (pending contention and
// retries are abandoned) and decodes nothing it would have received. A frame
// already on the air completes — a dying radio's last frame still lands —
// but its MAC-level outcome is never reported to the dead node's protocol.
// Callers that want routing to learn the loss should also remove the node's
// links from the topology (the simulator reads delivery probabilities live;
// precomputed carrier-sense sets keep their pre-failure reach, which only
// matters for frames the dead node no longer sends).
func (s *Simulator) FailNode(id graph.NodeID) {
	n := s.nodes[id]
	if n.failed {
		return
	}
	n.failed = true
	n.mac.silence()
	s.tracef("node %d failed", id)
	if s.Telem != nil {
		s.Telem.Emit(telemetry.Event{At: int64(s.now), Node: int32(id), Kind: telemetry.KindNodeFail})
	}
}

// RecoverNode revives a node silenced by FailNode, modelling a reboot: the
// radio comes back with fresh MAC state (contention window at CWMin, empty
// duplicate-suppression memory, monotonic sequence counter preserved) and
// starts decoding and contending again. The protocol object was never
// detached, so its state survives; protocol timers that kept firing while
// the node was dead (probes, LSA advertisements) resume doing useful work
// on their next tick. Callers that removed the node's links on failure
// should pair this with graph.Topology.Restore so the links return with
// the radio. Recovering a live node is a no-op.
func (s *Simulator) RecoverNode(id graph.NodeID) {
	n := s.nodes[id]
	if !n.failed {
		return
	}
	n.failed = false
	n.mac.revive()
	s.tracef("node %d recovered", id)
	if s.Telem != nil {
		s.Telem.Emit(telemetry.Event{At: int64(s.now), Node: int32(id), Kind: telemetry.KindNodeRecover})
	}
	// The protocol may have had traffic queued all along; give it a
	// transmission opportunity now that wakes work again.
	n.Wake()
}

// Run processes events until the queue empties or the deadline passes.
// It returns the time of the last processed event.
func (s *Simulator) Run(until Time) Time {
	return s.RunWhile(until, nil)
}

// RunWhile processes events until the queue empties, the deadline passes,
// or cond (if non-nil) returns false. cond is checked after every event.
func (s *Simulator) RunWhile(until Time, cond func() bool) Time {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.queue)
		if e.canceled {
			s.canceledInQueue--
			continue
		}
		s.now = e.at
		e.fn()
		if cond != nil && !cond() {
			break
		}
	}
	if s.now > until {
		s.now = until
	}
	return s.now
}

// Pending reports how many live (non-canceled) events are queued.
func (s *Simulator) Pending() int { return len(s.queue) - s.canceledInQueue }

func (s *Simulator) tracef(format string, args ...interface{}) {
	if s.Trace != nil {
		s.Trace("%s "+format, append([]interface{}{s.now}, args...)...)
	}
}

// deliveryProb returns the delivery probability from a to b at the frame's
// rate and size.
func (s *Simulator) deliveryProb(a, b graph.NodeID, rate Bitrate, bytes int) float64 {
	return s.adjustProb(s.topo.Prob(a, b), rate, bytes)
}

// adjustProb maps a reference-rate delivery probability to the frame's rate
// and size.
func (s *Simulator) adjustProb(p float64, rate Bitrate, bytes int) float64 {
	if s.cfg.RateAdjust != nil {
		p = s.cfg.RateAdjust(p, rate)
	}
	if s.cfg.RefFrameBytes > 0 && bytes > 0 && p > 0 && p < 1 {
		minB := s.cfg.MinFrameBytes
		if minB <= 0 {
			minB = s.cfg.RefFrameBytes / 10
		}
		if bytes < minB {
			bytes = minB
		}
		p = math.Pow(p, float64(bytes)/float64(s.cfg.RefFrameBytes))
	}
	return p
}

// startTransmission puts a frame on the air from node n.
func (s *Simulator) startTransmission(n *Node, f *Frame) *transmission {
	rate := f.Rate
	if rate == 0 {
		if f.isMACAck {
			rate = s.cfg.BasicRate
		} else {
			rate = s.cfg.DataRate
		}
		f.Rate = rate
	}
	dur := AirTime(f.Bytes, rate)
	tx := &transmission{
		frame: f,
		from:  n,
		start: s.now,
		end:   s.now + dur,
		rate:  rate,
	}
	// Record overlaps with everything already on the air — but only where
	// the overlap could change a reception outcome: other's transmitter
	// must be relevant to us (it interferes at one of our receivers or is
	// one of them), and vice versa. Pairs failing both tests are provably
	// outcome-neutral, so skipping them keeps results byte-identical while
	// bounding overlap lists by the two-hop neighborhood, not N.
	relTx := s.relevantTo(n.id)
	for _, other := range s.active {
		if containsID(relTx, other.from.id) {
			tx.overlaps = append(tx.overlaps, other)
		}
		if containsID(s.relevantTo(other.from.id), n.id) {
			other.overlaps = append(other.overlaps, tx)
		}
	}
	s.active = append(s.active, tx)
	n.mac.onAir++

	if f.isMACAck {
		s.Counters.MACAcks++
	} else {
		s.Counters.Transmissions++
		s.Counters.TxByNode[n.id]++
		s.Counters.TxByFlow[f.FlowID]++
	}
	s.Counters.AirTime += dur
	s.Counters.AirTimeByRate[rate] += dur
	s.Counters.TxByRate[rate]++

	if s.Telem != nil {
		var ack int64
		if f.isMACAck {
			ack = 1
		}
		s.Telem.Emit(telemetry.Event{
			At: int64(s.now), Dur: int64(dur), Aux: ack,
			Flow: f.FlowID, Node: int32(n.id), Peer: int32(f.To),
			Bytes: int32(f.Bytes), Kind: telemetry.KindTx,
		})
	}

	// Raise carrier at every sensing node (including the transmitter).
	for _, id := range s.senseSet[n.id] {
		s.nodes[id].mac.carrierUp()
	}
	s.tracef("tx start node=%d to=%d bytes=%d rate=%v ack=%v", n.id, f.To, f.Bytes, rate, f.isMACAck)

	s.After(dur, func() { s.endTransmission(tx) })
	return tx
}

// endTransmission takes the frame off the air and resolves reception at
// every node.
func (s *Simulator) endTransmission(tx *transmission) {
	tx.done = true
	for i, a := range s.active {
		if a == tx {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	// Drop carrier at every sensing node.
	for _, id := range s.senseSet[tx.from.id] {
		s.nodes[id].mac.carrierDown()
	}

	// Resolve reception at the transmitter's out-neighbors — the only nodes
	// with nonzero delivery probability. Ascending neighbor order keeps the
	// RNG draw sequence identical to the old whole-population scan, which
	// skipped zero-probability receivers before drawing.
	for _, e := range s.topo.OutEdges(tx.from.id) {
		rcv := s.nodes[e.Node]
		if rcv.failed {
			continue // a dead radio decodes nothing (and draws no RNG)
		}
		outcome := s.receptionOutcome(tx, rcv, e.P)
		switch outcome {
		case rxOK:
			s.Counters.Deliveries++
			rcv.mac.deliver(tx)
		case rxCollision:
			s.Counters.Collisions++
		case rxChannelLoss:
			s.Counters.ChannelLosses++
		case rxOutOfRange:
		}
		if s.Telem != nil && outcome != rxOutOfRange {
			ev := telemetry.Event{
				At: int64(s.now), Flow: tx.frame.FlowID,
				Node: int32(rcv.id), Peer: int32(tx.from.id),
				Bytes: int32(tx.frame.Bytes),
			}
			switch outcome {
			case rxOK:
				ev.Kind = telemetry.KindRx
			case rxCollision:
				ev.Kind, ev.Aux = telemetry.KindDrop, telemetry.DropCollision
			case rxChannelLoss:
				ev.Kind, ev.Aux = telemetry.KindDrop, telemetry.DropChannel
			}
			s.Telem.Emit(ev)
		}
	}
	tx.from.mac.onAir--
	tx.from.mac.txFinished(tx)
}

// logit maps a probability to log-odds, clamped for the extremes.
func logit(p float64) float64 {
	if p <= 1e-6 {
		return -14
	}
	if p >= 1-1e-6 {
		return 14
	}
	return math.Log(p / (1 - p))
}

type rxOutcome int

const (
	rxOK rxOutcome = iota
	rxOutOfRange
	rxChannelLoss
	rxCollision
)

// receptionOutcome decides whether receiver rcv decodes transmission tx.
// pRef is the reference-rate delivery probability of the tx.from -> rcv
// link, supplied by the caller's neighbor iteration.
func (s *Simulator) receptionOutcome(tx *transmission, rcv *Node, pRef float64) rxOutcome {
	p := s.adjustProb(pRef, tx.rate, tx.frame.Bytes)
	if p <= 0 {
		return rxOutOfRange
	}
	// A half-duplex radio cannot receive while transmitting.
	for _, other := range tx.overlaps {
		if other.from.id == rcv.id {
			return rxCollision
		}
	}
	// Interference from overlapping transmissions audible at rcv.
	for _, other := range tx.overlaps {
		// Interference strength uses the raw (reference) probability: a
		// loud neighbor corrupts regardless of its own frame's length.
		pi := s.deliveryProb(other.from.id, rcv.id, other.rate, 0)
		if pi <= s.cfg.InterferenceThreshold {
			continue
		}
		if s.cfg.CaptureEnabled && logit(p)-logit(pi) >= s.cfg.CaptureMargin {
			continue // captured: our frame is much stronger at rcv
		}
		return rxCollision
	}
	if s.rng.Float64() >= p {
		return rxChannelLoss
	}
	return rxOK
}

// Utilization returns the medium utilization over an elapsed interval:
// total on-air transmission time divided by wall time. Values above 1 mean
// transmissions overlapped — the direct signature of spatial reuse (§4.2.3):
// a strictly scheduled protocol like ExOR cannot exceed 1 for a single
// flow, while MORE can.
func (c *Counters) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.AirTime) / float64(elapsed)
}
