// Package sim is a deterministic discrete-event simulator of a lossy
// 802.11b wireless mesh. It supplies the substrate the thesis' testbed
// provided: a broadcast medium with independent per-receiver losses
// (§5.3.1), CSMA/CA medium access with binary exponential backoff, MAC-level
// ACKs and retransmissions for unicast frames, interference with an optional
// capture effect, and carrier sense that permits spatial reuse — the
// property MORE exploits and ExOR's scheduler forfeits (§4.2.3).
//
// Protocols plug in per node through the Protocol interface, which mirrors
// the control flow of the real implementation (§3.3.3): the MAC asks the
// protocol for a frame exactly when it wins a transmission opportunity, and
// hands up every successfully decoded frame, addressed or overheard.
//
// The simulator is single-threaded and deterministic: the same seed and
// workload produce bit-identical runs.
package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t with a sensible unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.1fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Bitrate is an 802.11b modulation rate in megabits per second.
type Bitrate float64

// 802.11b rates.
const (
	Rate1   Bitrate = 1
	Rate2   Bitrate = 2
	Rate5_5 Bitrate = 5.5
	Rate11  Bitrate = 11
)

// Rates lists the 802.11b rate set in ascending order (used by autorate).
var Rates = []Bitrate{Rate1, Rate2, Rate5_5, Rate11}

// String renders the rate.
func (r Bitrate) String() string {
	if r == Rate5_5 {
		return "5.5Mbps"
	}
	return fmt.Sprintf("%gMbps", float64(r))
}

// MarshalText renders the rate name, letting Bitrate-keyed maps (e.g.
// Counters.AirTimeByRate) marshal to readable JSON.
func (r Bitrate) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText parses the MarshalText form back, so JSON result documents
// (scenario golden files, -json output) round-trip. Parsing is strict —
// the whole token must be <number>Mbps — so corrupted documents fail
// schema validation instead of decoding to a near-miss rate.
func (r *Bitrate) UnmarshalText(text []byte) error {
	s := string(text)
	num, ok := strings.CutSuffix(s, "Mbps")
	if !ok {
		return fmt.Errorf("sim: bad bitrate %q", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 {
		return fmt.Errorf("sim: bad bitrate %q", s)
	}
	*r = Bitrate(v)
	return nil
}

// PLCPOverhead is the 802.11b long-preamble PLCP preamble + header time,
// paid by every frame regardless of rate.
const PLCPOverhead = 192 * Microsecond

// AirTime returns the on-air duration of a frame of the given size.
func AirTime(bytes int, rate Bitrate) Time {
	if rate <= 0 {
		panic("sim: nonpositive bitrate")
	}
	bits := float64(bytes * 8)
	us := bits / float64(rate) // Mb/s == bits/µs
	return PLCPOverhead + Time(us*float64(Microsecond))
}

// AdaptRateScale wraps a (pRef, rateMbps) probability-scaling function —
// e.g. graph.RateScale — into the Config.RateAdjust signature.
func AdaptRateScale(f func(pRef, rateMbps float64) float64) func(float64, Bitrate) float64 {
	return func(p float64, r Bitrate) float64 { return f(p, float64(r)) }
}
