package sim

import (
	"testing"

	"repro/internal/graph"
)

// testProto is a scriptable protocol for exercising the MAC.
type testProto struct {
	node     *Node
	queue    []*Frame
	received []*Frame
	sent     []*Frame
	sentOK   []bool
	onRecv   func(f *Frame)
}

func (p *testProto) Init(n *Node) { p.node = n }
func (p *testProto) Receive(f *Frame) {
	p.received = append(p.received, f)
	if p.onRecv != nil {
		p.onRecv(f)
	}
}
func (p *testProto) Pull() *Frame {
	if len(p.queue) == 0 {
		return nil
	}
	f := p.queue[0]
	p.queue = p.queue[1:]
	return f
}
func (p *testProto) Sent(f *Frame, ok bool) {
	p.sent = append(p.sent, f)
	p.sentOK = append(p.sentOK, ok)
}

func (p *testProto) enqueue(f *Frame) {
	p.queue = append(p.queue, f)
	p.node.Wake()
}

// pair builds a 2-node simulator with the given delivery probability.
func pair(t *testing.T, p01 float64, cfg Config) (*Simulator, *testProto, *testProto) {
	t.Helper()
	topo := graph.New(2)
	topo.SetLink(0, 1, p01)
	s := New(topo, cfg)
	a, b := &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	return s, a, b
}

func TestAirTime(t *testing.T) {
	// 1500 bytes at 5.5 Mb/s: 192us PLCP + 12000 bits / 5.5 ≈ 2181.8us.
	got := AirTime(1500, Rate5_5)
	us := float64(1500*8) / 5.5
	want := PLCPOverhead + Time(us*float64(Microsecond))
	if got != want {
		t.Fatalf("AirTime = %v, want %v", got, want)
	}
	if AirTime(100, Rate11) >= AirTime(100, Rate1) {
		t.Fatal("higher rate should be faster")
	}
}

func TestBroadcastDelivery(t *testing.T) {
	s, a, b := pair(t, 1.0, DefaultConfig())
	a.enqueue(&Frame{From: 0, To: graph.Broadcast, Bytes: 1000})
	s.Run(Second)
	if len(b.received) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(b.received))
	}
	if len(a.sent) != 1 || !a.sentOK[0] {
		t.Fatalf("sender Sent callback: %v %v", a.sent, a.sentOK)
	}
	if s.Counters.Transmissions != 1 {
		t.Fatalf("transmissions = %d", s.Counters.Transmissions)
	}
	if s.Counters.MACAcks != 0 {
		t.Fatal("broadcast must not be MAC-acked")
	}
}

func TestBroadcastIsUnreliable(t *testing.T) {
	s, a, b := pair(t, 0.5, DefaultConfig())
	for i := 0; i < 2000; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 100})
	}
	a.node.Wake()
	s.Run(100 * Second)
	got := float64(len(b.received)) / 2000
	if got < 0.45 || got > 0.55 {
		t.Fatalf("broadcast delivery ratio %.3f, want ≈0.5", got)
	}
	if len(a.sent) != 2000 {
		t.Fatalf("sender completed %d sends", len(a.sent))
	}
}

func TestUnicastRetransmitsUntilDelivered(t *testing.T) {
	s, a, b := pair(t, 0.5, DefaultConfig())
	for i := 0; i < 500; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: 1, Bytes: 200})
	}
	a.node.Wake()
	s.Run(200 * Second)
	delivered := len(b.received)
	okCount := 0
	for _, ok := range a.sentOK {
		if ok {
			okCount++
		}
	}
	// Data delivery per attempt is 0.5, so within 7 attempts the data gets
	// through with prob ≈ 1-0.5^7 ≈ 0.992.
	if delivered < 475 {
		t.Fatalf("only %d/500 unicast frames delivered", delivered)
	}
	// MAC success needs data AND ACK: per-attempt 0.25, within 7 attempts
	// ≈ 1-0.75^7 ≈ 0.867.
	if okCount < 400 || okCount > 470 {
		t.Fatalf("%d/500 sends reported ok, want ≈433 (ACK losses count)", okCount)
	}
	// Expected attempts per frame = (1-0.75^7)/0.25 ≈ 3.5 — the ETX=4 of a
	// p=0.5 bidirectional link, truncated by the retry limit.
	ratio := float64(s.Counters.Transmissions) / 500
	if ratio < 3.0 || ratio > 4.0 {
		t.Fatalf("tx/frame ratio %.2f, want ≈3.5 for bidirectional p=0.5", ratio)
	}
	if delivered != okCount {
		// ok can exceed deliveries only via duplicate delivery suppression
		// (data got through, ACK lost, retry delivered again). The receiver
		// dedups, so deliveries ≤ okCount is wrong — but ok==false frames
		// can still have been delivered (ACK losses), so allow a margin.
		if delivered < okCount {
			t.Fatalf("deliveries %d < ok %d: dedup broken?", delivered, okCount)
		}
	}
}

func TestUnicastFailureAfterRetryLimit(t *testing.T) {
	s, a, b := pair(t, 0.02, DefaultConfig())
	a.enqueue(&Frame{From: 0, To: 1, Bytes: 200})
	s.Run(10 * Second)
	if len(a.sent) != 1 {
		t.Fatalf("Sent callbacks: %d", len(a.sent))
	}
	if a.sentOK[0] && len(b.received) == 0 {
		t.Fatal("reported ok without delivery")
	}
	if !a.sentOK[0] && s.Counters.UnicastFailures != 1 {
		t.Fatalf("failures = %d", s.Counters.UnicastFailures)
	}
	if s.Counters.Transmissions > int64(DefaultConfig().RetryLimit) {
		t.Fatalf("transmissions %d exceed retry limit", s.Counters.Transmissions)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int) {
		cfg := DefaultConfig()
		cfg.Seed = 7
		s, a, b := pair(t, 0.6, cfg)
		for i := 0; i < 200; i++ {
			a.queue = append(a.queue, &Frame{From: 0, To: 1, Bytes: 300})
		}
		a.node.Wake()
		end := s.Run(100 * Second)
		_ = end
		return s.Counters.Transmissions, len(b.received)
	}
	tx1, rx1 := run()
	tx2, rx2 := run()
	if tx1 != tx2 || rx1 != rx2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", tx1, rx1, tx2, rx2)
	}
}

func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	// Two senders in range of each other and of a common receiver: carrier
	// sense should avoid almost all collisions.
	topo := graph.New(3)
	topo.SetLink(0, 2, 1)
	topo.SetLink(1, 2, 1)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b, c := &testProto{}, &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Attach(2, c)
	for i := 0; i < 300; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 500})
		b.queue = append(b.queue, &Frame{From: 1, To: graph.Broadcast, Bytes: 500})
	}
	a.node.Wake()
	b.node.Wake()
	s.Run(100 * Second)
	if len(c.received) < 570 {
		t.Fatalf("receiver decoded %d/600; carrier sense failing (collisions=%d)",
			len(c.received), s.Counters.Collisions)
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	// Senders 0 and 1 cannot hear each other but both reach receiver 2:
	// without carrier sense protection their frames collide at 2.
	topo := graph.New(3)
	topo.SetLink(0, 2, 1)
	topo.SetLink(1, 2, 1)
	// no 0<->1 link
	cfg := DefaultConfig()
	cfg.CaptureEnabled = false
	s := New(topo, cfg)
	a, b, c := &testProto{}, &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Attach(2, c)
	for i := 0; i < 300; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 1400})
		b.queue = append(b.queue, &Frame{From: 1, To: graph.Broadcast, Bytes: 1400})
	}
	a.node.Wake()
	b.node.Wake()
	s.Run(100 * Second)
	if s.Counters.Collisions < 100 {
		t.Fatalf("hidden terminals produced only %d collisions", s.Counters.Collisions)
	}
	if len(c.received) > 500 {
		t.Fatalf("receiver decoded %d/600 despite hidden-terminal collisions", len(c.received))
	}
}

func TestSpatialReuseConcurrentTransmissions(t *testing.T) {
	// 4-hop chain 0-1-2-3-4 where hop 0->1 and hop 3->4 are out of carrier
	// sense range: both senders should be able to push at full rate
	// concurrently, so total goodput ≈ 2x a single link.
	topo := graph.New(5)
	topo.SetLink(0, 1, 1)
	topo.SetLink(1, 2, 1)
	topo.SetLink(2, 3, 1)
	topo.SetLink(3, 4, 1)
	s := New(topo, DefaultConfig())
	protos := make([]*testProto, 5)
	for i := range protos {
		protos[i] = &testProto{}
		s.Attach(graph.NodeID(i), protos[i])
	}
	const n = 400
	for i := 0; i < n; i++ {
		protos[0].queue = append(protos[0].queue, &Frame{From: 0, To: 1, Bytes: 1500})
		protos[3].queue = append(protos[3].queue, &Frame{From: 3, To: 4, Bytes: 1500})
	}
	protos[0].node.Wake()
	protos[3].node.Wake()
	// Time for n serialized frames on one link:
	perFrame := AirTime(1500, Rate5_5) + DefaultConfig().SIFS + AirTime(14, Rate2) + DefaultConfig().DIFS + 16*DefaultConfig().SlotTime
	serial := Time(n) * perFrame
	s.Run(serial + serial/10)
	// Both transfers must be nearly complete in the time one alone needs.
	if len(protos[1].received) < n*9/10 || len(protos[4].received) < n*9/10 {
		t.Fatalf("spatial reuse failed: deliveries %d and %d of %d each",
			len(protos[1].received), len(protos[4].received), n)
	}
}

func TestNoSpatialReuseWhenInRange(t *testing.T) {
	// Same workload, but the two links are within carrier sense range:
	// finishing both transfers must take nearly twice as long.
	topo := graph.New(4)
	topo.SetLink(0, 1, 1)
	topo.SetLink(2, 3, 1)
	topo.SetLink(0, 2, 0.3) // in sense range of each other
	s := New(topo, DefaultConfig())
	protos := make([]*testProto, 4)
	for i := range protos {
		protos[i] = &testProto{}
		s.Attach(graph.NodeID(i), protos[i])
	}
	const n = 200
	for i := 0; i < n; i++ {
		protos[0].queue = append(protos[0].queue, &Frame{From: 0, To: 1, Bytes: 1500})
		protos[2].queue = append(protos[2].queue, &Frame{From: 2, To: 3, Bytes: 1500})
	}
	protos[0].node.Wake()
	protos[2].node.Wake()
	perFrame := AirTime(1500, Rate5_5) + DefaultConfig().SIFS + AirTime(14, Rate2) + DefaultConfig().DIFS + 16*DefaultConfig().SlotTime
	serial := Time(n) * perFrame
	s.Run(serial + serial/10) // enough for one transfer, not two
	total := len(protos[1].received) + len(protos[3].received)
	if total > n+n/2 {
		t.Fatalf("carrier-sensed links overlapped too much: %d deliveries in serial time", total)
	}
}

func TestCaptureEffect(t *testing.T) {
	// Receiver 2 is very close to sender 0 (p=0.95) and far from
	// interferer 1 (p=0.1). With capture on, 0's frames survive overlap.
	topo := graph.New(3)
	topo.SetLink(0, 2, 0.95)
	topo.SetLink(1, 2, 0.1)
	// 0 and 1 are hidden from each other.
	deliveries := func(capture bool) int {
		cfg := DefaultConfig()
		cfg.CaptureEnabled = capture
		s := New(topo, cfg)
		a, b, c := &testProto{}, &testProto{}, &testProto{}
		s.Attach(0, a)
		s.Attach(1, b)
		s.Attach(2, c)
		for i := 0; i < 300; i++ {
			a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 1400})
			b.queue = append(b.queue, &Frame{From: 1, To: graph.Broadcast, Bytes: 1400})
		}
		a.node.Wake()
		b.node.Wake()
		s.Run(100 * Second)
		count := 0
		for _, f := range c.received {
			if f.From == 0 {
				count++
			}
		}
		return count
	}
	with := deliveries(true)
	without := deliveries(false)
	if with <= without {
		t.Fatalf("capture should increase strong-sender deliveries: with=%d without=%d", with, without)
	}
	if with < 250 {
		t.Fatalf("capture-on deliveries %d too low", with)
	}
}

func TestTimersAndCancel(t *testing.T) {
	topo := graph.New(1)
	s := New(topo, DefaultConfig())
	p := &testProto{}
	s.Attach(0, p)
	fired := 0
	ev1 := s.Node(0).After(Millisecond, func() { fired++ })
	ev2 := s.Node(0).After(2*Millisecond, func() { fired += 10 })
	ev2.Cancel()
	if !ev2.Canceled() || ev1.Canceled() {
		t.Fatal("cancel state wrong")
	}
	s.Run(Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if ev1.At() != Millisecond {
		t.Fatalf("event time %v", ev1.At())
	}
}

func TestRunWhileStops(t *testing.T) {
	topo := graph.New(1)
	s := New(topo, DefaultConfig())
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(Time(i)*Millisecond, func() { count++ })
	}
	s.RunWhile(Second, func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("RunWhile processed %d events, want 3", count)
	}
}

func TestHalfDuplex(t *testing.T) {
	// A node transmitting cannot receive: two nodes blasting broadcasts at
	// each other simultaneously when hidden... they are in range, so CSMA
	// serializes them; instead test that a node's own tx overlapping an
	// incoming frame kills the reception. Construct: 0 -> 1 while 1 -> 0.
	// Force overlap by disabling carrier sense via threshold above link prob.
	cfg := DefaultConfig()
	cfg.SenseThreshold = 0.99 // nobody senses anybody
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.9)
	s := New(topo, cfg)
	a, b := &testProto{}, &testProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	for i := 0; i < 100; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 1400})
		b.queue = append(b.queue, &Frame{From: 1, To: graph.Broadcast, Bytes: 1400})
	}
	a.node.Wake()
	b.node.Wake()
	s.Run(10 * Second)
	// Both pump continuously and overlap nearly always; almost nothing
	// should get through.
	if len(a.received)+len(b.received) > 40 {
		t.Fatalf("half-duplex violated: %d receptions during mutual transmission",
			len(a.received)+len(b.received))
	}
}

func TestAirtimeAccounting(t *testing.T) {
	s, a, _ := pair(t, 1.0, DefaultConfig())
	a.enqueue(&Frame{From: 0, To: graph.Broadcast, Bytes: 1000})
	s.Run(Second)
	want := AirTime(1000, Rate5_5)
	if s.Counters.AirTime != want {
		t.Fatalf("air time %v, want %v", s.Counters.AirTime, want)
	}
	if s.Counters.TxByRate[Rate5_5] != 1 {
		t.Fatalf("TxByRate = %v", s.Counters.TxByRate)
	}
	if s.Counters.TxByNode[0] != 1 {
		t.Fatalf("TxByNode = %v", s.Counters.TxByNode)
	}
}

func TestFrameRateOverride(t *testing.T) {
	s, a, b := pair(t, 1.0, DefaultConfig())
	a.enqueue(&Frame{From: 0, To: graph.Broadcast, Bytes: 1000, Rate: Rate11})
	s.Run(Second)
	if len(b.received) != 1 {
		t.Fatal("frame not delivered")
	}
	if s.Counters.TxByRate[Rate11] != 1 {
		t.Fatalf("rate override ignored: %v", s.Counters.TxByRate)
	}
}

func TestRateAdjustAppliesToChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RateAdjust = func(p float64, r Bitrate) float64 {
		if r == Rate11 {
			return 0 // 11 Mb/s never delivers in this test
		}
		return p
	}
	s, a, b := pair(t, 1.0, cfg)
	for i := 0; i < 10; i++ {
		a.queue = append(a.queue, &Frame{From: 0, To: graph.Broadcast, Bytes: 100, Rate: Rate11})
	}
	a.node.Wake()
	s.Run(Second)
	if len(b.received) != 0 {
		t.Fatalf("RateAdjust ignored: %d deliveries", len(b.received))
	}
}
