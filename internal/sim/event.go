package sim

import "container/heap"

// Event is a scheduled callback. Events may be canceled before they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
	owner    *Simulator
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Canceled events are removed lazily;
// the owning simulator compacts its heap once they outnumber live ones, so
// timer-heavy workloads (one canceled timer per delivered frame, for hours
// of simulated time) cannot grow the queue without bound.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.owner != nil && e.index >= 0 {
		e.owner.noteCanceled()
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At returns the event's scheduled time.
func (e *Event) At() Time { return e.at }

// eventHeap is a min-heap ordered by (time, insertion sequence) so
// simultaneous events fire in schedule order — deterministic ties.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// schedule inserts an event at absolute time at.
func (s *Simulator) schedule(at Time, fn func()) *Event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn, owner: s}
	heap.Push(&s.queue, e)
	return e
}

// compactionFloor is the minimum number of canceled events before the heap
// is compacted; below it lazy removal is cheaper than rebuilding.
const compactionFloor = 64

// noteCanceled records one more canceled-but-queued event and compacts the
// heap once dead entries outnumber live ones.
func (s *Simulator) noteCanceled() {
	s.canceledInQueue++
	if s.canceledInQueue >= compactionFloor && s.canceledInQueue*2 > len(s.queue) {
		s.compactQueue()
	}
}

// compactQueue drops canceled events and re-heapifies. The heap order is a
// strict total order on (time, sequence), so the surviving events pop in
// exactly the order they would have with lazy deletion — determinism holds.
func (s *Simulator) compactQueue() {
	live := s.queue[:0]
	for _, e := range s.queue {
		if e.canceled {
			e.index = -1
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	heap.Init(&s.queue)
	s.canceledInQueue = 0
}

// After schedules fn to run delay after the current time and returns a
// cancelable handle.
func (s *Simulator) After(delay Time, fn func()) *Event {
	return s.schedule(s.now+delay, fn)
}
