package sim

import (
	"testing"

	"repro/internal/graph"
)

// TestRecoverNodeRevives crashes one of two chattering neighbors and brings
// it back: after recovery the reborn node must transmit and decode again,
// and the survivor must accept its frames — the revived MAC keeps its
// sequence counter monotonic, so the survivor's duplicate suppression
// cannot swallow the node's second life.
func TestRecoverNodeRevives(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b := &chatterProto{}, &chatterProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Run(100 * Millisecond)
	s.FailNode(1)
	s.Run(200 * Millisecond)

	bSent, bRecv, aRecv := b.sent, b.received, a.received
	s.RecoverNode(1)
	if s.Node(1).Failed() {
		t.Fatal("Failed() still true after RecoverNode")
	}
	s.Run(400 * Millisecond)
	if b.sent == bSent {
		t.Error("recovered node never transmitted")
	}
	if b.received == bRecv {
		t.Error("recovered node never decoded")
	}
	if a.received == aRecv {
		t.Error("survivor never heard the recovered node (stale dup suppression?)")
	}
}

// TestRecoverNodeIdempotent: recovering a live node (or recovering twice)
// is a no-op, not a state reset.
func TestRecoverNodeIdempotent(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b := &chatterProto{}, &chatterProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Run(50 * Millisecond)
	s.RecoverNode(1) // never failed: no-op
	s.Run(100 * Millisecond)
	if b.sent == 0 || b.received == 0 {
		t.Fatalf("recover of a live node disturbed it: %+v", b)
	}
	s.FailNode(1)
	s.RecoverNode(1)
	s.RecoverNode(1) // second recover: no-op
	sent := b.sent
	s.Run(200 * Millisecond)
	if b.sent == sent {
		t.Error("node did not come back")
	}
}

// TestRecoverAfterFailCycleRepeats survives several fail/recover cycles —
// the churn schedule's core loop — with traffic resuming after each one.
func TestRecoverAfterFailCycleRepeats(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b := &chatterProto{}, &chatterProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	clock := Time(0)
	advance := func(d Time) { clock += d; s.Run(clock) }
	for cycle := 0; cycle < 3; cycle++ {
		advance(50 * Millisecond)
		s.FailNode(1)
		sent := b.sent
		advance(50 * Millisecond)
		if b.sent != sent {
			t.Fatalf("cycle %d: failed node kept transmitting", cycle)
		}
		s.RecoverNode(1)
		advance(50 * Millisecond)
		if b.sent == sent {
			t.Fatalf("cycle %d: node did not resume after recovery", cycle)
		}
	}
	if a.received == 0 {
		t.Error("survivor heard nothing across the churn cycles")
	}
}
