package sim

// Stack composes several protocols on one node behind the single Protocol
// slot the MAC drives — the mechanism that lets the measurement plane
// (probes + link-state floods, §3.2.1(b)) run *inside* the simulation,
// contending for the same medium as the data traffic it serves, instead of
// in a separate pre-measurement pass.
//
// Layers are ordered: when the MAC wins a transmission opportunity, Pull
// walks the layers front to back and sends the first frame offered, so the
// first layer has strict priority (the control plane's small periodic
// frames preempt bulk data, like a real driver's priority queue). Every
// decoded frame is delivered to every layer — each protocol already ignores
// payload types it does not own — and the Sent callback is routed to the
// layer that supplied the frame.
type Stack struct {
	layers []Protocol
	// puller is the layer that supplied the frame currently in the MAC.
	// The MAC handles exactly one pulled frame at a time (Sent always
	// fires before the next Pull), so one slot suffices.
	puller Protocol
}

// Piggybacker is a stack layer that can attach control payloads to a frame
// another layer is about to transmit (Frame.Piggyback): when Pull selects a
// frame, every *other* layer implementing this interface is offered it
// before the MAC takes over. The implementor appends payloads and grows
// Frame.Bytes accordingly; the attached payloads ride the same broadcast and
// reach every decoding neighbor for zero extra frames.
type Piggybacker interface {
	Piggyback(f *Frame)
}

// NewStack composes the given protocols, first layer highest priority.
func NewStack(layers ...Protocol) *Stack {
	return &Stack{layers: layers}
}

// Init implements Protocol.
func (s *Stack) Init(n *Node) {
	for _, l := range s.layers {
		l.Init(n)
	}
}

// Receive implements Protocol: every layer sees every decoded frame.
func (s *Stack) Receive(f *Frame) {
	for _, l := range s.layers {
		l.Receive(f)
	}
}

// Pull implements Protocol: the first layer with traffic wins the
// transmission opportunity, then every other Piggybacker layer may attach
// pending control payloads to the winning frame.
func (s *Stack) Pull() *Frame {
	for i, l := range s.layers {
		f := l.Pull()
		if f == nil {
			continue
		}
		s.puller = l
		for j, o := range s.layers {
			if j == i {
				continue
			}
			if pb, ok := o.(Piggybacker); ok {
				pb.Piggyback(f)
			}
		}
		return f
	}
	s.puller = nil
	return nil
}

// Sent implements Protocol, routing the outcome to the pulling layer.
func (s *Stack) Sent(f *Frame, ok bool) {
	if p := s.puller; p != nil {
		s.puller = nil
		p.Sent(f, ok)
	}
}
