package sim

import "testing"

// TestBitrateTextRoundTrip pins the strict text form: every rate
// round-trips, and corrupted tokens are rejected rather than decoded to a
// near-miss value (scenariocheck's schema validation depends on it).
func TestBitrateTextRoundTrip(t *testing.T) {
	for _, r := range Rates {
		text, err := r.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Bitrate
		if err := back.UnmarshalText(text); err != nil || back != r {
			t.Errorf("round trip %v: got %v, %v", r, back, err)
		}
	}
	for _, bad := range []string{"", "Mbps", "2Mbpsgarbage", "fastMbps", "2", "-1Mbps", "0Mbps"} {
		var r Bitrate
		if err := r.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("bad bitrate %q accepted as %v", bad, r)
		}
	}
}
