package sim

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// floodOnce makes every node broadcast `frames` frames over the topology and
// returns a digest of everything observable: counters, per-node reception
// and send logs. Used to prove dense and sparse topology storage drive the
// simulator through byte-identical executions.
func floodOnce(t *testing.T, topo *graph.Topology, cfg Config, frames int) string {
	t.Helper()
	s := New(topo, cfg)
	protos := make([]*testProto, topo.N())
	for i := range protos {
		protos[i] = &testProto{}
		s.Attach(graph.NodeID(i), protos[i])
	}
	for i, p := range protos {
		for k := 0; k < frames; k++ {
			p.enqueue(&Frame{To: graph.Broadcast, Bytes: 400 + 10*i + k})
		}
	}
	end := s.Run(20 * Second)
	digest := fmt.Sprintf("end=%v tx=%d acks=%d deliv=%d coll=%d loss=%d air=%v\n",
		end, s.Counters.Transmissions, s.Counters.MACAcks, s.Counters.Deliveries,
		s.Counters.Collisions, s.Counters.ChannelLosses, s.Counters.AirTime)
	for i, p := range protos {
		digest += fmt.Sprintf("node %d: tx=%d rx=[", i, s.Counters.TxByNode[i])
		for _, f := range p.received {
			digest += fmt.Sprintf("(%d,%d)", f.From, f.Bytes)
		}
		digest += "]\n"
	}
	return digest
}

// TestSparseTopologyByteIdentical locks in the tentpole regression: the
// neighbor-indexed simulator must produce byte-identical outcomes whether
// the topology is stored densely (N×N matrix) or sparsely (neighbor lists),
// over the paper topologies and with every sense/interference feature on.
func TestSparseTopologyByteIdentical(t *testing.T) {
	testbed, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	topos := map[string]*graph.Topology{
		"diamond": graph.Diamond(),
		"chain":   graph.LossyChain(6, 15, 30),
		"testbed": testbed,
	}
	cfg := DefaultConfig()
	cfg.SenseRange = 84
	cfg.RefFrameBytes = 1500
	for name, topo := range topos {
		dense := floodOnce(t, topo, cfg, 3)
		sparse := floodOnce(t, topo.Sparsify(), cfg, 3)
		if dense != sparse {
			t.Errorf("%s: dense and sparse runs diverge:\n--- dense ---\n%s--- sparse ---\n%s",
				name, dense, sparse)
		}
	}
}

// TestGeometricTopologyRuns sanity-checks the simulator over a sparse
// generator output: traffic flows, and the run is seed-deterministic.
func TestGeometricTopologyRuns(t *testing.T) {
	topo, _ := graph.ConnectedGeometric(graph.DefaultGeometric(60), 3)
	if !topo.Sparse() {
		t.Fatal("geometric topology should be sparse")
	}
	cfg := DefaultConfig()
	cfg.SenseRange = 84
	a := floodOnce(t, topo, cfg, 2)
	b := floodOnce(t, topo, cfg, 2)
	if a != b {
		t.Fatal("same seed produced different runs")
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	s := New(graph.New(1), DefaultConfig())
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, s.After(Time(i+1)*Millisecond, func() {}))
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for _, e := range evs[:4] {
		e.Cancel()
	}
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", got)
	}
	// Double-cancel must not double-count.
	evs[0].Cancel()
	if got := s.Pending(); got != 6 {
		t.Fatalf("Pending after re-cancel = %d, want 6", got)
	}
	s.Run(Second)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after run = %d, want 0", got)
	}
}

// TestHeapCompaction schedules far more doomed timers than live ones — the
// pattern of long multi-flow runs, where every delivered frame leaves a
// canceled retransmit timer behind — and checks the heap shrinks instead of
// growing without bound, while survivors still fire in schedule order.
func TestHeapCompaction(t *testing.T) {
	s := New(graph.New(1), DefaultConfig())
	const total = 16 * compactionFloor
	fired := make([]bool, total)
	var order []int
	liveCount := 0
	for i := 0; i < total; i++ {
		i := i
		// Deliberately non-monotone times so compaction has real heap
		// structure to preserve: time (i%7) ms, tie-broken by insertion.
		e := s.After(Time(i%7)*Millisecond, func() { fired[i] = true; order = append(order, i) })
		if i%8 != 0 {
			e.Cancel()
		} else {
			liveCount++
		}
	}
	// Compaction must have kicked in: dead entries never outnumber live
	// ones by more than the compaction floor's worth of slack.
	if len(s.queue) > 2*(liveCount+compactionFloor) {
		t.Fatalf("queue holds %d entries for %d live events — not compacted",
			len(s.queue), liveCount)
	}
	if got := s.Pending(); got != liveCount {
		t.Fatalf("Pending = %d, want %d", got, liveCount)
	}
	s.Run(Second)
	for i := range fired {
		if want := i%8 == 0; fired[i] != want {
			t.Fatalf("event %d fired=%v, want %v", i, fired[i], want)
		}
	}
	// Survivors fire in (time, insertion) order — exactly the order lazy
	// deletion would have produced.
	for k := 1; k < len(order); k++ {
		ta, tb := order[k-1]%7, order[k]%7
		if ta > tb || (ta == tb && order[k-1] > order[k]) {
			t.Fatalf("compaction perturbed order: %d before %d", order[k-1], order[k])
		}
	}
	if len(order) != liveCount {
		t.Fatalf("fired %d events, want %d", len(order), liveCount)
	}
}

// TestRelevantSetRateAdjusted locks in the overlap-tracking filter rule:
// with a rate-dependent channel, links below the interference threshold at
// the reference rate can rise above it at robust rates, so they must stay
// in the relevance set (the per-receiver check decides). Without
// RateAdjust the reference-rate pre-filter is exact.
func TestRelevantSetRateAdjusted(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.9)       // 0's receiver
	topo.SetDirected(2, 1, 0.008) // weak interferer at 1, below threshold 0.01
	cfg := DefaultConfig()

	plain := New(topo, cfg)
	if containsID(plain.relevantTo(0), 2) {
		t.Fatal("rate-independent channel: sub-threshold interferer should be pre-filtered")
	}

	cfg.RateAdjust = AdaptRateScale(graph.RateScale) // Rate2: 0.008^0.5 ≈ 0.089 > 0.01
	adjusted := New(topo, cfg)
	if !containsID(adjusted.relevantTo(0), 2) {
		t.Fatal("rate-dependent channel: weak interferer must stay relevant")
	}
}
