package sim

import "repro/internal/graph"

// macState is the CSMA/CA state machine state.
type macState int

const (
	macIdle macState = iota
	macContending
	macTransmitting
	macWaitAck
)

// mac implements per-node 802.11 CSMA/CA: DIFS + binary-exponential backoff
// with freeze-on-busy for channel access, SIFS-spaced MAC ACKs plus
// retransmission for unicast frames, and fire-and-forget broadcast.
type mac struct {
	node  *Node
	state macState

	busy       int  // carrier-sense count of audible transmissions
	backlogged bool // protocol asked for a transmission opportunity

	// Contention state.
	cw           int // current contention window (slots)
	backoffSlots int // remaining backoff slots
	backoffArmed bool
	difsTimer    *Event
	backoffTimer *Event
	backoffStart Time

	// Frame in progress.
	cur      *Frame
	retries  int
	ackTimer *Event
	onAir    int // own transmissions currently in flight

	// MAC sequence numbers and duplicate suppression. seen is bounded by
	// the configured DupWindow: seenRing remembers insertion order and the
	// oldest key is evicted once the window fills, so memory stays O(window)
	// on arbitrarily long runs. Real 802.11 duplicate detection keeps one
	// recent (address, sequence) cache per peer for the same reason — a
	// retransmitted duplicate always arrives within a few frames of the
	// original, never a million frames later.
	nextSeq  uint64
	seen     map[uint64]struct{} // (from<<40 | seq) of delivered unicasts
	seenRing []uint64            // insertion order of seen keys
	seenNext int                 // ring slot holding the oldest key
}

func newMAC(n *Node) *mac {
	return &mac{
		node: n,
		cw:   n.sim.cfg.CWMin,
		seen: make(map[uint64]struct{}),
	}
}

// recordSeen marks key as delivered, evicting the oldest remembered key
// once the duplicate-suppression window is full.
func (m *mac) recordSeen(key uint64) {
	w := m.node.sim.cfg.DupWindow
	if len(m.seenRing) < w {
		m.seenRing = append(m.seenRing, key)
	} else {
		delete(m.seen, m.seenRing[m.seenNext])
		m.seenRing[m.seenNext] = key
		m.seenNext = (m.seenNext + 1) % w
	}
	m.seen[key] = struct{}{}
}

// wake is called by the protocol when it has traffic.
func (m *mac) wake() {
	if m.node.failed {
		return
	}
	m.backlogged = true
	if m.state == macIdle {
		m.startContention()
	}
}

// silence abandons all MAC activity permanently (Simulator.FailNode): timers
// are canceled, the pending frame is forgotten without a Sent callback (the
// dead node's protocol state no longer matters), and the state machine
// parks idle. Carrier-sense bookkeeping keeps running so the busy count
// stays balanced with neighbors' transmissions.
func (m *mac) silence() {
	if m.difsTimer != nil {
		m.difsTimer.Cancel()
		m.difsTimer = nil
	}
	if m.backoffTimer != nil {
		m.backoffTimer.Cancel()
		m.backoffTimer = nil
	}
	if m.ackTimer != nil {
		m.ackTimer.Cancel()
		m.ackTimer = nil
	}
	m.cur = nil
	m.backlogged = false
	m.backoffArmed = false
	m.state = macIdle
}

// revive resets a silenced MAC for a recovered node (Simulator.RecoverNode):
// fresh contention state and an empty duplicate-suppression memory, as a
// rebooted radio would have. The MAC sequence counter is NOT reset —
// neighbors still remember the pre-crash (sender, sequence) keys, and
// reusing them would make their duplicate suppression swallow the reborn
// node's first frames. The carrier-sense count is left alone too: it tracks
// neighbors' in-flight transmissions, which silence kept counting, and
// zeroing it would unbalance the pending carrierDown events.
func (m *mac) revive() {
	m.state = macIdle
	m.backlogged = false
	m.cur = nil
	m.retries = 0
	m.cw = m.node.sim.cfg.CWMin
	m.backoffSlots = 0
	m.backoffArmed = false
	m.seen = make(map[uint64]struct{})
	m.seenRing = nil
	m.seenNext = 0
}

func (m *mac) startContention() {
	m.state = macContending
	if !m.backoffArmed {
		m.backoffSlots = m.node.sim.rng.Intn(m.cw + 1)
		m.backoffArmed = true
	}
	if m.busy == 0 {
		m.armDIFS()
	}
	// Otherwise carrierDown will arm DIFS when the medium clears.
}

func (m *mac) armDIFS() {
	if m.difsTimer != nil {
		m.difsTimer.Cancel()
	}
	m.difsTimer = m.node.sim.After(m.node.sim.cfg.DIFS, m.difsDone)
}

func (m *mac) difsDone() {
	m.difsTimer = nil
	if m.state != macContending || m.busy > 0 {
		return
	}
	if m.backoffSlots == 0 {
		m.transmitNow()
		return
	}
	m.backoffStart = m.node.sim.now
	dur := Time(m.backoffSlots) * m.node.sim.cfg.SlotTime
	m.backoffTimer = m.node.sim.After(dur, m.backoffDone)
}

func (m *mac) backoffDone() {
	m.backoffTimer = nil
	if m.state != macContending {
		return
	}
	m.backoffSlots = 0
	m.transmitNow()
}

// carrierUp is called when a transmission this node can sense begins
// (including its own).
func (m *mac) carrierUp() {
	m.busy++
	if m.busy != 1 {
		return
	}
	if m.difsTimer != nil {
		m.difsTimer.Cancel()
		m.difsTimer = nil
	}
	if m.backoffTimer != nil {
		// Freeze: credit fully elapsed slots.
		elapsed := int((m.node.sim.now - m.backoffStart) / m.node.sim.cfg.SlotTime)
		if elapsed > m.backoffSlots {
			elapsed = m.backoffSlots
		}
		m.backoffSlots -= elapsed
		m.backoffTimer.Cancel()
		m.backoffTimer = nil
	}
}

// carrierDown is called when a sensed transmission ends.
func (m *mac) carrierDown() {
	m.busy--
	if m.busy != 0 {
		return
	}
	if m.state == macContending {
		m.armDIFS()
	}
}

// transmitNow fetches a frame if needed and puts it on the air.
func (m *mac) transmitNow() {
	if m.cur == nil {
		m.cur = m.node.proto.Pull()
		if m.cur == nil {
			m.backlogged = false
			m.state = macIdle
			return
		}
		m.cur.From = m.node.id
		m.nextSeq++
		m.cur.seq = m.nextSeq
		m.retries = 0
	}
	m.state = macTransmitting
	m.node.sim.startTransmission(m.node, m.cur)
}

// txFinished is called when this node's own transmission leaves the air.
func (m *mac) txFinished(tx *transmission) {
	if m.node.failed {
		return // silenced mid-flight: no callbacks, no new contention
	}
	f := tx.frame
	if f.isMACAck {
		// ACK transmissions are side-band; resume whatever we were doing.
		// Contention resumes via carrierDown of our own ACK.
		return
	}
	if f.To == graph.Broadcast {
		cur := m.cur
		m.cur = nil
		m.postTxReset(true)
		m.node.proto.Sent(cur, true)
		return
	}
	// Unicast: await the MAC ACK.
	m.state = macWaitAck
	cfg := m.node.sim.cfg
	timeout := cfg.SIFS + AirTime(cfg.MACAckBytes, cfg.BasicRate) + 2*cfg.SlotTime
	m.ackTimer = m.node.sim.After(timeout, m.ackTimeout)
}

func (m *mac) ackTimeout() {
	m.ackTimer = nil
	if m.state != macWaitAck {
		return
	}
	m.retries++
	if m.retries >= m.node.sim.cfg.RetryLimit {
		cur := m.cur
		cur.Retries = m.retries
		m.cur = nil
		m.node.sim.Counters.UnicastFailures++
		m.postTxReset(true)
		m.node.proto.Sent(cur, false)
		return
	}
	// Exponential backoff and retry.
	m.cw = min(2*(m.cw+1)-1, m.node.sim.cfg.CWMax)
	m.backoffSlots = m.node.sim.rng.Intn(m.cw + 1)
	m.backoffArmed = true
	m.state = macContending
	if m.busy == 0 {
		m.armDIFS()
	}
}

// postTxReset resets contention state after a frame completes (delivered,
// dropped, or broadcast) and keeps contending if more traffic waits.
// newBackoff forces a fresh post-transmission backoff draw.
func (m *mac) postTxReset(newBackoff bool) {
	m.cw = m.node.sim.cfg.CWMin
	m.retries = 0
	if newBackoff {
		m.backoffSlots = m.node.sim.rng.Intn(m.cw + 1)
		m.backoffArmed = true
	}
	if m.backlogged || m.cur != nil {
		m.state = macContending
		if m.busy == 0 {
			m.armDIFS()
		}
	} else {
		m.state = macIdle
	}
}

// deliver hands a successfully decoded transmission to this node.
func (m *mac) deliver(tx *transmission) {
	f := tx.frame
	if f.isMACAck {
		if m.state == macWaitAck && f.To == m.node.id && f.ackFor.frame == m.cur {
			if m.ackTimer != nil {
				m.ackTimer.Cancel()
				m.ackTimer = nil
			}
			cur := m.cur
			cur.Retries = m.retries
			m.cur = nil
			m.node.sim.Counters.UnicastSuccesses++
			m.postTxReset(true)
			m.node.proto.Sent(cur, true)
		}
		return
	}
	if f.To == m.node.id {
		// Acknowledge even duplicates (the sender missed our ACK).
		m.scheduleMACAck(tx)
		key := uint64(f.From)<<40 | f.seq
		if _, dup := m.seen[key]; dup {
			return
		}
		m.recordSeen(key)
		m.node.proto.Receive(f)
		return
	}
	// Broadcast or overheard unicast.
	if f.To != graph.Broadcast {
		key := uint64(f.From)<<40 | f.seq
		if _, dup := m.seen[key]; dup {
			return
		}
		m.recordSeen(key)
	}
	m.node.proto.Receive(f)
}

// scheduleMACAck sends the 802.11 ACK one SIFS after the data frame.
func (m *mac) scheduleMACAck(dataTx *transmission) {
	n := m.node
	n.sim.After(n.sim.cfg.SIFS, func() {
		if m.onAir > 0 || n.failed {
			return // radio busy (or dead); sender will time out and retry
		}
		ack := &Frame{
			From:     n.id,
			To:       dataTx.from.id,
			Bytes:    n.sim.cfg.MACAckBytes,
			isMACAck: true,
			ackFor:   dataTx,
		}
		n.sim.startTransmission(n, ack)
	})
}
