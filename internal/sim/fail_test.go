package sim

import (
	"testing"

	"repro/internal/graph"
)

// chatterProto transmits broadcast frames forever and counts receptions.
type chatterProto struct {
	node     *Node
	received int
	sent     int
}

func (p *chatterProto) Init(n *Node) { p.node = n; n.Wake() }
func (p *chatterProto) Receive(f *Frame) {
	p.received++
}
func (p *chatterProto) Pull() *Frame {
	return &Frame{To: graph.Broadcast, Bytes: 100}
}
func (p *chatterProto) Sent(f *Frame, ok bool) {
	p.sent++
	p.node.Wake()
}

// TestFailNodeSilencesAndDeafens kills one of two chattering neighbors
// mid-run: after the failure the dead node must stop transmitting and stop
// receiving, while the survivor keeps going.
func TestFailNodeSilencesAndDeafens(t *testing.T) {
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := New(topo, DefaultConfig())
	a, b := &chatterProto{}, &chatterProto{}
	s.Attach(0, a)
	s.Attach(1, b)
	s.Run(100 * Millisecond)
	if a.sent == 0 || b.sent == 0 || a.received == 0 || b.received == 0 {
		t.Fatalf("no traffic before failure: %+v %+v", a, b)
	}
	s.FailNode(1)
	if !s.Node(1).Failed() {
		t.Fatal("Failed() false after FailNode")
	}
	bSent, bRecv := b.sent, b.received
	s.Run(200 * Millisecond)
	if b.sent != bSent {
		t.Errorf("failed node kept transmitting: %d -> %d", bSent, b.sent)
	}
	if b.received != bRecv {
		t.Errorf("failed node kept decoding: %d -> %d", bRecv, b.received)
	}
	if a.sent == 0 {
		t.Error("survivor stopped transmitting")
	}
	// Waking a failed node must be a no-op, not a resurrection.
	s.Node(1).Wake()
	s.Run(250 * Millisecond)
	if b.sent != bSent {
		t.Error("Wake resurrected a failed node")
	}
	// Failing twice is idempotent.
	s.FailNode(1)
}
