//go:build race

package experiments

// raceEnabled reports that the race detector is instrumenting this build;
// wall-clock performance assertions are meaningless under its ~10× slowdown
// and skip themselves.
const raceEnabled = true
