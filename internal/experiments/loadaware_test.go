package experiments

import (
	"testing"

	"repro/internal/congest"
)

// TestLoadPenaltyEndToEnd runs the full load-aware pipeline under both
// knowledge models: LoadPenalty > 0 must force load export on, surface
// per-node queue high-water marks, and still complete every transfer.
func TestLoadPenaltyEndToEnd(t *testing.T) {
	topo := TestbedTopology()
	for _, state := range []StateMode{StateOracle, StateLearned} {
		opts := DefaultOptions()
		opts.FileBytes = 16 << 10
		opts.State = state
		opts.CC = congest.DefaultConfig(congest.Cubic)
		opts.LoadPenalty = 2
		pairs := RandomPairs(topo, 2, opts.Seed)
		info := RunDetailed(topo, MORE, pairs, opts)
		for i, r := range info.Results {
			if !r.Completed {
				t.Errorf("%v: flow %d incomplete under load-aware cubic", state, i)
			}
		}
		if info.Counters.QueueHWM == nil {
			t.Fatalf("%v: LoadPenalty did not surface queue high-water marks", state)
		}
		if len(info.Counters.QueueHWM) != topo.N() {
			t.Fatalf("%v: QueueHWM covers %d of %d nodes", state, len(info.Counters.QueueHWM), topo.N())
		}
		var any bool
		for _, h := range info.Counters.QueueHWM {
			if h > 0 {
				any = true
			}
		}
		if !any {
			t.Errorf("%v: every node reports a zero high-water mark", state)
		}
	}
}

// TestLegacyRunsCarryNoHWM: with load export off, the counters must not
// grow the new field — sealed legacy result documents stay byte-identical.
func TestLegacyRunsCarryNoHWM(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 8 << 10
	opts.CC = congest.DefaultConfig(congest.Credit)
	info := RunDetailed(topo, MORE, RandomPairs(topo, 1, opts.Seed), opts)
	if info.Counters.QueueHWM != nil {
		t.Fatalf("legacy run grew QueueHWM: %v", info.Counters.QueueHWM)
	}
}
