package experiments

import (
	"math"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

// The multi-flow fairness plane: with flow IDs stamped through the MAC
// (sim.Frame.FlowID / Counters.TxByFlow) every run can report each flow's
// own throughput and transmission bill, and summarize how evenly the
// medium was shared with Jain's fairness index — the metrics the
// congestion-policy comparison is judged on.

// JainIndex returns Jain's fairness index over the values:
// (Σx)² / (n·Σx²), ranging from 1/n (one value takes everything) to 1
// (perfectly even). Values must be non-negative; an empty or all-zero set
// reports 0. Non-finite values (the throughput of a flow whose measured
// interval collapsed to zero, a stalled flow's NaN ratio) count as zero
// shares instead of poisoning the whole index with NaN.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// finiteOrZero clamps a per-flow ratio to a reportable value: a stalled or
// zero-duration flow yields NaN/Inf arithmetic, which would otherwise leak
// into JSON output (and break digest-sealed result documents, which cannot
// encode NaN at all).
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// FlowSummary is one flow's share of a multi-flow run.
type FlowSummary struct {
	Flow     flow.ID
	Src, Dst graph.NodeID
	// Throughput is the flow's delivered packets/second.
	Throughput float64
	// Transmissions is the flow's own data-frame transmission count
	// (stamped flow IDs, including protocol-level ACKs and MAC retries).
	Transmissions int64
	// TxPerPacket is Transmissions over the flow's delivered packets.
	TxPerPacket float64
	Completed   bool
}

// FairnessReport summarizes how a multi-flow run shared the medium.
type FairnessReport struct {
	Flows []FlowSummary
	// JainThroughput is Jain's index over per-flow throughput (1 = every
	// flow got the same rate).
	JainThroughput float64
	// JainTx is Jain's index over per-flow transmission counts (how evenly
	// the airtime bill spread).
	JainTx float64
	// ControlTx counts transmissions attributable to no flow (probes,
	// LSAs, credit grants).
	ControlTx int64
}

// BuildFairness assembles the per-flow fairness report from the results
// and the run's per-flow transmission counters. Flow IDs follow the driver
// convention: flow i (0-based result index) is flow.ID(i+1).
func BuildFairness(results []flow.Result, counters sim.Counters) FairnessReport {
	rep := FairnessReport{ControlTx: counters.TxByFlow[0]}
	tputs := make([]float64, 0, len(results))
	txs := make([]float64, 0, len(results))
	for i, r := range results {
		fs := FlowSummary{
			Flow: flow.ID(i + 1), Src: r.Src, Dst: r.Dst,
			Throughput:    finiteOrZero(r.Throughput()),
			Transmissions: counters.TxByFlow[uint32(i+1)],
			Completed:     r.Completed,
		}
		if r.PacketsDelivered > 0 {
			fs.TxPerPacket = finiteOrZero(float64(fs.Transmissions) / float64(r.PacketsDelivered))
		}
		rep.Flows = append(rep.Flows, fs)
		tputs = append(tputs, fs.Throughput)
		txs = append(txs, float64(fs.Transmissions))
	}
	rep.JainThroughput = JainIndex(tputs)
	rep.JainTx = JainIndex(txs)
	return rep
}
