package experiments

import (
	"testing"

	"repro/internal/linkstate"
	"repro/internal/sim"
)

// TestGapChurnRunMeasuresReconvergence injects one crash/recover cycle into
// a testbed gap run with the liveness and aging knobs armed: both sides
// must still complete, and the learned side must report both reconvergence
// times — crash-to-purge bounded by the liveness horizon plus an aging
// period, and recovery-to-relearn within the advertisement cadence.
func TestGapChurnRunMeasuresReconvergence(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 4 << 20
	opts.Repair = 2 * sim.Second
	opts.LinkState = linkstate.DefaultConfig()
	opts.LinkState.MaxAge = 10 * sim.Second
	opts.LinkState.Probe.DeadInterval = 3 * sim.Second
	rep := GapChurnRun(TestbedTopology(), MORE, []Pair{{Src: 3, Dst: 17}}, opts, ChurnSpec{
		Node:      7,
		FailAt:    2 * sim.Second,
		RecoverAt: 25 * sim.Second,
	})
	if rep.Learned.Completed != 1 || rep.Oracle.Completed != 1 {
		t.Fatalf("churned transfer incomplete: oracle=%v learned=%v",
			rep.Oracle.Completed, rep.Learned.Completed)
	}
	if rep.FailPurge <= 0 {
		t.Errorf("dead origin never purged (FailPurge=%v)", rep.FailPurge)
	}
	if rep.RecoverRelearn <= 0 {
		t.Errorf("reborn origin never re-learned (RecoverRelearn=%v)", rep.RecoverRelearn)
	}
	// The purge cannot beat the machinery's own horizons: the probe plane
	// needs DeadInterval of silence and the database MaxAge of staleness.
	if rep.FailPurge < opts.LinkState.Probe.DeadInterval {
		t.Errorf("purge at %v is faster than the %v liveness horizon",
			rep.FailPurge, opts.LinkState.Probe.DeadInterval)
	}
}

// TestGapChurnRunWithoutAgingNeverPurges is the knobs-off control: with
// MaxAge and DeadInterval zero, the dead origin's LSA must live forever, so
// FailPurge reports -1 while the transfer still completes on stale state.
func TestGapChurnRunWithoutAgingNeverPurges(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	rep := GapChurnRun(TestbedTopology(), MORE, []Pair{{Src: 3, Dst: 17}}, opts, ChurnSpec{
		Node:   7,
		FailAt: 2 * sim.Second,
	})
	if rep.Learned.Completed != 1 {
		t.Fatalf("transfer incomplete without aging: %+v", rep.Learned)
	}
	if rep.FailPurge != -1 {
		t.Errorf("FailPurge=%v with aging disabled; stale LSAs must be immortal by default", rep.FailPurge)
	}
	if rep.RecoverRelearn != -1 {
		t.Errorf("RecoverRelearn=%v though the node never recovers", rep.RecoverRelearn)
	}
}
