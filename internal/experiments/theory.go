package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/stats"
)

// --- Figure 4-7: batch size -----------------------------------------------------

// Fig47Result holds per-batch-size throughput samples for MORE and ExOR.
type Fig47Result struct {
	BatchSizes []int
	MORE       map[int][]float64
	ExOR       map[int][]float64
}

// Fig47BatchSize sweeps K over batchSizes for both MORE and ExOR across
// nPairs random pairs (the paper sweeps {8,16,32,64,128} over 40 pairs).
// The K × pair × protocol grid fans out over opts.Parallel workers.
func Fig47BatchSize(topo *graph.Topology, batchSizes []int, nPairs int, opts Options) *Fig47Result {
	res := &Fig47Result{
		BatchSizes: batchSizes,
		MORE:       map[int][]float64{},
		ExOR:       map[int][]float64{},
	}
	pairs := RandomPairs(topo, nPairs, opts.Seed)
	protos := []Protocol{MORE, ExOR}
	np, nv := len(pairs), len(protos)
	samples := make([]float64, len(batchSizes)*np*nv)
	forEach(len(samples), opts.workers(), func(it int) {
		ki := it / (np * nv)
		i := it / nv % np
		pi := it % nv
		o := opts
		o.BatchSize = batchSizes[ki]
		o.Seed = opts.Seed + int64(1000*i)
		samples[it] = Run(topo, protos[pi], pairs[i], o).Throughput()
	})
	for ki, k := range batchSizes {
		for i := range pairs {
			base := (ki*np + i) * nv
			res.MORE[k] = append(res.MORE[k], samples[base])
			res.ExOR[k] = append(res.ExOR[k], samples[base+1])
		}
	}
	return res
}

// Sensitivity returns max-over-K median / min-over-K median for a protocol:
// 1.0 means batch size does not matter at all.
func (r *Fig47Result) Sensitivity(series map[int][]float64) float64 {
	lo, hi := -1.0, -1.0
	for _, k := range r.BatchSizes {
		m := stats.Median(series[k])
		if lo < 0 || m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if lo <= 0 {
		return 0
	}
	return hi / lo
}

// Table renders per-K medians.
func (r *Fig47Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "K", "MORE median", "ExOR median")
	for _, k := range r.BatchSizes {
		fmt.Fprintf(&b, "%-6d %12.1f %12.1f\n",
			k, stats.Median(r.MORE[k]), stats.Median(r.ExOR[k]))
	}
	fmt.Fprintf(&b, "sensitivity (max/min median): MORE %.2fx, ExOR %.2fx\n",
		r.Sensitivity(r.MORE), r.Sensitivity(r.ExOR))
	return b.String()
}

// --- Table 4.1: computational cost of packet operations -------------------------

// Table41Result reports measured per-operation costs.
type Table41Result struct {
	K           int
	PayloadSize int
	// Durations per operation (averages over many iterations).
	IndependenceCheck time.Duration
	SourceCoding      time.Duration
	Decoding          time.Duration
}

// Table41CodingCost measures the three §4.6 micro-operations on this
// machine with the paper's parameters (K=32, 1500 B): the innovativeness
// check on a received packet, coding one packet at the source (K
// multiplications per byte), and per-packet decoding work. It exercises the
// pooled, steady-state pipeline — the same configuration the Table 4.1
// benchmarks in bench_test.go lock at 0 allocs/op.
func Table41CodingCost(k, payload, iters int) Table41Result {
	rng := rand.New(rand.NewSource(1))
	natives := make([][]byte, k)
	for i := range natives {
		natives[i] = make([]byte, payload)
		rng.Read(natives[i])
	}
	src, err := coding.NewSource(natives, rng)
	if err != nil {
		panic(err)
	}
	pool := coding.NewPool(k, payload)
	src.UsePool(pool)

	// Source coding cost, packets recycled as a steady-state source would.
	start := time.Now()
	for i := 0; i < iters; i++ {
		pool.Put(src.Next())
	}
	srcCost := time.Since(start) / time.Duration(iters)

	// Independence check cost: against a full buffer (worst case: K rows).
	buf := coding.NewBuffer(k, payload)
	buf.UsePool(pool)
	for !buf.Full() {
		buf.Add(src.Next())
	}
	vectors := make([][]byte, iters)
	vecBuf := make([]byte, iters*k)
	for i := range vectors {
		vectors[i] = vecBuf[i*k : (i+1)*k]
		p := src.Next()
		copy(vectors[i], p.Vector)
		pool.Put(p)
	}
	start = time.Now()
	sink := false
	for i := 0; i < iters; i++ {
		sink = sink != buf.Innovative(vectors[i])
	}
	checkCost := time.Since(start) / time.Duration(iters)
	_ = sink

	// Decoding: K innovative packets plus the matrix inversion and batched
	// native recovery, amortized per packet. One decoder and one pool serve
	// every batch, as at a real destination.
	pkts := make([]*coding.Packet, k+8)
	for i := range pkts {
		pkts[i] = src.Next()
	}
	dec := coding.NewDecoder(k, payload)
	dec.UsePool(pool)
	start = time.Now()
	decoded := 0
	for decoded < iters {
		dec.Reset()
		for i := 0; !dec.Complete() && i < len(pkts); i++ {
			q := pool.Get()
			q.CopyFrom(pkts[i])
			dec.Add(q)
		}
		if dec.Complete() {
			if _, err := dec.Decode(); err != nil {
				panic(err)
			}
		}
		decoded += k
	}
	decCost := time.Duration(0)
	if decoded > 0 {
		decCost = time.Since(start) / time.Duration(decoded)
	}

	return Table41Result{
		K: k, PayloadSize: payload,
		IndependenceCheck: checkCost,
		SourceCoding:      srcCost,
		Decoding:          decCost,
	}
}

// SustainableMbps estimates the throughput the coding path supports: one
// source-coding operation per transmitted packet (§4.6(a)'s 44 Mb/s bound
// on the Celeron).
func (r Table41Result) SustainableMbps() float64 {
	if r.SourceCoding <= 0 {
		return 0
	}
	pktsPerSec := float64(time.Second) / float64(r.SourceCoding)
	return pktsPerSec * float64(r.PayloadSize) * 8 / 1e6
}

// Table renders Table 4.1.
func (r Table41Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "operation              avg time\n")
	fmt.Fprintf(&b, "independence check     %8v\n", r.IndependenceCheck)
	fmt.Fprintf(&b, "coding at the source   %8v\n", r.SourceCoding)
	fmt.Fprintf(&b, "decoding (per packet)  %8v\n", r.Decoding)
	fmt.Fprintf(&b, "sustainable throughput %.0f Mb/s\n", r.SustainableMbps())
	return b.String()
}

// --- §4.6: header overhead -------------------------------------------------------

// HeaderOverheadResult reports the on-air MORE header cost.
type HeaderOverheadResult struct {
	HeaderBytes int
	PktBytes    int
	Fraction    float64
}

// HeaderOverhead computes the §4.6(c) numbers: header size with K-byte code
// vector and the 10-forwarder bound, as a fraction of a 1500 B packet.
func HeaderOverhead(k, pktBytes int) HeaderOverheadResult {
	h := packet.MOREHeader{
		Type:       packet.TypeData,
		CodeVector: make([]byte, k),
		Forwarders: make([]packet.Forwarder, packet.MaxForwarders),
	}
	size := h.EncodedSize()
	return HeaderOverheadResult{
		HeaderBytes: size,
		PktBytes:    pktBytes,
		Fraction:    float64(size) / float64(pktBytes),
	}
}

// --- Figure 5-1 / Prop. 6: unbounded cost gap -------------------------------------

// GapPoint is one (p, gap) sample of the Fig 5-1 curve for a fixed k.
type GapPoint struct {
	P   float64
	Gap float64
}

// Fig51CostGap evaluates the ETX-order/EOTX-order cost ratio on the gap
// topology for each delivery probability in ps.
func Fig51CostGap(k int, ps []float64) []GapPoint {
	etxOpt := routing.ETXOptions{Threshold: 0, AckAware: false}
	out := make([]GapPoint, 0, len(ps))
	for _, p := range ps {
		topo := graph.GapTopology(k, p)
		gap, err := routing.CostGap(topo, 0, graph.NodeID(3+k), etxOpt, routing.DefaultEOTXOptions())
		if err != nil {
			continue
		}
		out = append(out, GapPoint{P: p, Gap: gap})
	}
	return out
}

// --- §5.7: ETX vs EOTX on the testbed ----------------------------------------------

// Sec57Result summarizes the order-choice impact across all pairs.
type Sec57Result struct {
	Pairs                int
	Unaffected           int
	MedianAffectedGapPct float64
	MaxGap               float64
}

// Sec57EOTXvsETX computes the §5.7 statistics over every source-destination
// pair of the topology: the fraction of flows whose total transmission cost
// is unchanged by EOTX ordering, and the median gap among affected flows
// (the thesis finds >40% unaffected and a 0.2% median gap). The per-pair
// cost-gap computations fan out over `parallel` workers; aggregation runs
// serially in pair order so the statistics are worker-count independent.
func Sec57EOTXvsETX(topo *graph.Topology, parallel int) Sec57Result {
	etxOpt := routing.ETXOptions{Threshold: 0, AckAware: false}
	n := topo.N()
	gaps := make([]float64, n*n) // NaN = unreachable or self
	forEach(n*n, parallel, func(it int) {
		src, dst := it/n, it%n
		if src == dst {
			gaps[it] = math.NaN()
			return
		}
		gap, err := routing.CostGap(topo, graph.NodeID(src), graph.NodeID(dst),
			etxOpt, routing.DefaultEOTXOptions())
		if err != nil {
			gaps[it] = math.NaN()
			return
		}
		gaps[it] = gap
	})
	var res Sec57Result
	var affectedGaps []float64
	for _, gap := range gaps {
		if math.IsNaN(gap) {
			continue
		}
		res.Pairs++
		if gap <= 1+1e-9 {
			res.Unaffected++
		} else {
			affectedGaps = append(affectedGaps, 100*(gap-1))
		}
		if gap > res.MaxGap {
			res.MaxGap = gap
		}
	}
	res.MedianAffectedGapPct = stats.Median(affectedGaps)
	return res
}

// Table renders the §5.7 summary.
func (r Sec57Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pairs: %d\n", r.Pairs)
	fmt.Fprintf(&b, "unaffected by EOTX order: %d (%.0f%%)\n",
		r.Unaffected, 100*float64(r.Unaffected)/float64(r.Pairs))
	fmt.Fprintf(&b, "median gap among affected: %.2f%%\n", r.MedianAffectedGapPct)
	fmt.Fprintf(&b, "max gap: %.3fx\n", r.MaxGap)
	return b.String()
}
