package experiments

import (
	"repro/internal/congest"
)

// The congestion-mitigation sweep: re-run the PR 2 blow-up curve (tx-per-
// packet exploding with node count under multi-flow load) once per
// congestion policy, over identical topologies, flows, and seeds, so the
// only difference between rows is the mitigation. This is the driver
// behind the PERFORMANCE.md mitigation tables and the `moresim -scale
// ... -cc-sweep` mode.

// CCSweepConfig parameterizes the mitigation sweep.
type CCSweepConfig struct {
	// Scaling is the underlying sweep (node counts, flows, generator,
	// protocol, options). Its Opts.CC is overridden per policy.
	Scaling ScalingConfig
	// Policies lists the congestion policies to compare; empty sweeps all
	// of them (none, tail, choke, credit, aimd). Each policy runs with
	// DefaultConfig knobs except QueueLen, which Scaling.Opts.CC.QueueLen
	// overrides when set.
	Policies []congest.Policy
}

// AllPolicies lists every congestion policy in comparison order.
func AllPolicies() []congest.Policy {
	return []congest.Policy{congest.None, congest.Tail, congest.Choke, congest.Credit, congest.AIMD}
}

// CCSweep runs the scaling sweep once per policy and returns the grid in
// policy-major order (all node counts for the first policy, then the
// next); each point's CC field names its policy. Every cell is
// deterministic in the seed; policies share topologies and flow pairs, so
// rows are directly comparable.
func CCSweep(cfg CCSweepConfig) []ScalingPoint {
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = AllPolicies()
	}
	queueLen := cfg.Scaling.Opts.CC.QueueLen
	type cell struct {
		policy congest.Policy
		idx    int
	}
	var cells []cell
	for _, p := range policies {
		for i := range cfg.Scaling.NodeCounts {
			cells = append(cells, cell{p, i})
		}
	}
	points := make([]ScalingPoint, len(cells))
	forEach(len(cells), cfg.Scaling.Opts.workers(), func(i int) {
		sc := cfg.Scaling
		sc.Opts.CC = congest.DefaultConfig(cells[i].policy)
		sc.Opts.CC.QueueLen = queueLen
		points[i] = runScalingPoint(sc, cells[i].idx)
	})
	return points
}
