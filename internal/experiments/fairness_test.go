package experiments

import (
	"math"
	"testing"

	"repro/internal/congest"
	"repro/internal/flow"
	"repro/internal/sim"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"single", []float64{5}, 1},
		{"equal", []float64{3, 3, 3, 3}, 1},
		{"one-hot", []float64{10, 0, 0, 0}, 0.25},
		{"two-to-one", []float64{2, 1}, 0.9},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// Invariance under scaling.
	if math.Abs(JainIndex([]float64{1, 2, 3})-JainIndex([]float64{10, 20, 30})) > 1e-12 {
		t.Error("Jain's index is not scale-invariant")
	}
}

// TestJainIndexNonFinite: a stalled flow's NaN/Inf share must count as
// zero, not poison the whole index.
func TestJainIndexNonFinite(t *testing.T) {
	if got := JainIndex([]float64{math.NaN(), math.Inf(1), math.Inf(-1)}); got != 0 {
		t.Errorf("all-non-finite index = %v, want 0", got)
	}
	// One pathological member: the finite members' index, over the full n.
	got := JainIndex([]float64{3, 3, math.NaN(), 3})
	want := (9.0 * 9) / (4 * 27)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("index with NaN member = %v, want %v", got, want)
	}
	if math.IsNaN(JainIndex([]float64{1, math.Inf(1)})) {
		t.Error("Inf member produced a NaN index")
	}
}

// TestBuildFairnessStalledFlow: a flow result whose measured interval
// collapsed (Start == End, zero delivery) must produce finite, zero-valued
// report entries — the sealed result documents cannot encode NaN.
func TestBuildFairnessStalledFlow(t *testing.T) {
	if v := finiteOrZero(math.NaN()); v != 0 {
		t.Errorf("finiteOrZero(NaN) = %v", v)
	}
	if v := finiteOrZero(math.Inf(1)); v != 0 {
		t.Errorf("finiteOrZero(+Inf) = %v", v)
	}
	if v := finiteOrZero(2.5); v != 2.5 {
		t.Errorf("finiteOrZero mangled a finite value: %v", v)
	}

	// End-to-end through the report builder: one healthy flow, one that
	// never moved a packet. Every reported number must be finite.
	results := []flow.Result{
		{Src: 0, Dst: 5, PacketsDelivered: 40, Start: 0, End: 10 * sim.Second, Completed: true},
		{Src: 1, Dst: 6, PacketsDelivered: 0, Start: 0, End: 0},
	}
	counters := sim.Counters{TxByFlow: map[uint32]int64{0: 3, 1: 80, 2: 12}}
	rep := BuildFairness(results, counters)
	for i, f := range rep.Flows {
		for name, v := range map[string]float64{"Throughput": f.Throughput, "TxPerPacket": f.TxPerPacket} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("flow %d: non-finite %s %v in report", i, name, v)
			}
		}
	}
	if math.IsNaN(rep.JainThroughput) || math.IsNaN(rep.JainTx) {
		t.Errorf("stalled flow poisoned Jain indexes: %v / %v", rep.JainThroughput, rep.JainTx)
	}
	if rep.JainThroughput != 0.5 {
		// One flow with all the throughput, one with none: (x²)/(2·x²).
		t.Errorf("JainThroughput = %v, want 0.5", rep.JainThroughput)
	}
}

// TestPerFlowCountersSumToRunTotals is the fairness-accounting invariant:
// with flow IDs stamped through the MAC, the per-flow transmission
// counters plus the control bucket must account for every transmission
// the medium saw — under no congestion control and under each policy.
func TestPerFlowCountersSumToRunTotals(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 24 << 10
	pairs := RandomPairs(topo, 3, opts.Seed)
	for _, policy := range AllPolicies() {
		opts.CC = congest.DefaultConfig(policy)
		for _, proto := range []Protocol{MORE, ExOR, Srcr} {
			info := RunDetailed(topo, proto, pairs, opts)
			var sum int64
			for fid, n := range info.Counters.TxByFlow {
				if n < 0 {
					t.Errorf("%v/%v: negative TxByFlow[%d] = %d", policy, proto, fid, n)
				}
				sum += n
			}
			if sum != info.Counters.Transmissions {
				t.Errorf("%v/%v: TxByFlow sums to %d, Transmissions = %d",
					policy, proto, sum, info.Counters.Transmissions)
			}
			// Per-flow attribution feeds the results and the report.
			for i, r := range info.Results {
				if r.Transmissions != info.Counters.TxByFlow[uint32(i+1)] {
					t.Errorf("%v/%v flow %d: Result.Transmissions %d != TxByFlow %d",
						policy, proto, i, r.Transmissions, info.Counters.TxByFlow[uint32(i+1)])
				}
				if info.Fairness.Flows[i].Transmissions != r.Transmissions {
					t.Errorf("%v/%v flow %d: fairness report disagrees with result", policy, proto, i)
				}
			}
			if info.Fairness.ControlTx != info.Counters.TxByFlow[0] {
				t.Errorf("%v/%v: ControlTx %d != TxByFlow[0] %d",
					policy, proto, info.Fairness.ControlTx, info.Counters.TxByFlow[0])
			}
			if j := info.Fairness.JainThroughput; j < 0 || j > 1+1e-12 {
				t.Errorf("%v/%v: Jain throughput %v out of range", policy, proto, j)
			}
		}
	}
}

// TestLearnedStateControlAttribution checks that measurement-plane frames
// (probes, LSAs) land in the control bucket, never on a flow.
func TestLearnedStateControlAttribution(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 16 << 10
	opts.State = StateLearned
	info := RunDetailed(topo, MORE, []Pair{{Src: 3, Dst: 17}}, opts)
	if info.Counters.TxByFlow[0] < info.ProbeTx+info.FloodTx {
		t.Errorf("control bucket %d smaller than probes+floods %d",
			info.Counters.TxByFlow[0], info.ProbeTx+info.FloodTx)
	}
	var sum int64
	for _, n := range info.Counters.TxByFlow {
		sum += n
	}
	if sum != info.Counters.Transmissions {
		t.Errorf("TxByFlow sums to %d, Transmissions = %d", sum, info.Counters.Transmissions)
	}
}

// TestCreditPolicyBeatsBaselineOnTestbed pins the headline mitigation
// result at small scale: on the paper testbed under multi-flow load, the
// credit policy must deliver the same bytes with measurably fewer
// transmissions than the uncontrolled baseline — grants included.
func TestCreditPolicyBeatsBaselineOnTestbed(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	pairs := RandomPairs(topo, 3, opts.Seed)

	base := RunDetailed(topo, MORE, pairs, opts)
	opts.CC = congest.DefaultConfig(congest.Credit)
	credit := RunDetailed(topo, MORE, pairs, opts)

	for i, r := range credit.Results {
		if !r.Completed {
			t.Fatalf("credit flow %d incomplete", i)
		}
	}
	for i, r := range base.Results {
		if !r.Completed {
			t.Fatalf("baseline flow %d incomplete", i)
		}
	}
	if credit.Counters.Transmissions >= base.Counters.Transmissions {
		t.Errorf("credit policy did not reduce transmissions: %d vs %d",
			credit.Counters.Transmissions, base.Counters.Transmissions)
	}
	if credit.CCStats.GrantTx == 0 {
		t.Error("credit run sent no grants")
	}
}
