package experiments

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestDenseVsSparseProtocolRuns is the end-to-end half of the tentpole
// regression: full protocol stacks (MORE, ExOR, Srcr — MAC ACKs,
// interference, capture, carrier sense) must produce byte-identical results
// over the existing dense topologies and their sparse-storage twins.
func TestDenseVsSparseProtocolRuns(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 48 << 10
	cases := []struct {
		name     string
		topo     *graph.Topology
		src, dst graph.NodeID
	}{
		{"diamond", graph.Diamond(), 0, 2},
		{"testbed", TestbedTopology(), 3, 17},
	}
	for _, tc := range cases {
		for _, proto := range []Protocol{MORE, ExOR, Srcr} {
			pair := Pair{Src: tc.src, Dst: tc.dst}
			r1, c1 := RunWithCounters(tc.topo, proto, []Pair{pair}, opts)
			r2, c2 := RunWithCounters(tc.topo.Sparsify(), proto, []Pair{pair}, opts)
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("%s/%v: results diverge:\ndense:  %+v\nsparse: %+v",
					tc.name, proto, r1, r2)
			}
			if !reflect.DeepEqual(c1, c2) {
				t.Errorf("%s/%v: counters diverge:\ndense:  %+v\nsparse: %+v",
					tc.name, proto, c1, c2)
			}
			if !r1[0].Completed {
				t.Errorf("%s/%v: transfer incomplete", tc.name, proto)
			}
		}
	}
}

// TestScalingPointSmoke runs one moderate geometric point end to end.
func TestScalingPointSmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 48 << 10
	pt := RunAtScale(150, 2, 0.1, graph.GeometricConfig{}, MORE, opts)
	if pt.Nodes != 150 {
		t.Fatalf("nodes = %d", pt.Nodes)
	}
	if pt.Completed != 2 {
		t.Fatalf("completed %d/2 flows: %+v", pt.Completed, pt)
	}
	if pt.Throughput <= 0 || pt.TxPerPacket <= 0 || math.IsNaN(pt.TxPerPacket) {
		t.Fatalf("degenerate metrics: %+v", pt)
	}
	if pt.UsableLinks <= 0 || pt.MeanDegree <= 0 {
		t.Fatalf("topology stats missing: %+v", pt)
	}
}

// TestScalingSweepDeterministicAcrossWorkers locks in the scaling driver's
// parallel determinism: any worker count produces identical points (modulo
// wall-clock, which is zeroed before comparison).
func TestScalingSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultScalingConfig()
	cfg.NodeCounts = []int{60, 90}
	cfg.Flows = 1
	cfg.Opts.FileBytes = 24 << 10
	cfg.Opts.Seed = 3

	run := func(workers int) []ScalingPoint {
		c := cfg
		c.Opts.Parallel = workers
		pts := ScalingSweep(c)
		for i := range pts {
			pts[i].WallClock = 0
		}
		return pts
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep depends on worker count:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for _, pt := range serial {
		if pt.Completed != 1 {
			t.Fatalf("point did not complete: %+v", pt)
		}
	}
}

// TestThousandNodeFlow is the acceptance bar: a 1000-node geometric
// topology runs a MORE flow end to end, deterministically.
func TestThousandNodeFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node run skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.FileBytes = 48 << 10 // one K=32 batch
	opts.Seed = 7
	run := func() ScalingPoint {
		pt := RunAtScale(1000, 1, 0, graph.GeometricConfig{}, MORE, opts)
		pt.WallClock = 0
		return pt
	}
	a := run()
	if a.Completed != 1 {
		t.Fatalf("1000-node flow did not complete: %+v", a)
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("1000-node run not deterministic:\n%+v\n%+v", a, b)
	}
}
