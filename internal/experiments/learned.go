package experiments

import (
	"repro/internal/graph"
	"repro/internal/linkstate"
	"repro/internal/sim"
)

// The oracle-vs-learned gap experiment: the paper hands every protocol a
// globally measured ETX table (§4.1.2); a deployable system learns that
// state over the air (§3.2.1(b)) and pays for it twice — probe/LSA frames
// share the medium with data, and routes computed from noisy windowed
// estimates are not quite the oracle's. GapRun quantifies both costs for
// one configuration; GapSweep maps them against the two knobs that control
// the measurement plane's fidelity/overhead trade-off, the probe window and
// the LSA advertise interval.

// GapSummary aggregates one run side (oracle or learned) of a gap
// comparison.
type GapSummary struct {
	// Throughput is the aggregate delivered packets/second across flows.
	Throughput float64
	// TxPerPacket is run-wide transmissions (data + any control sharing
	// the medium, including the warmup's probes and floods) per delivered
	// packet — the total airtime bill of the run.
	TxPerPacket float64
	// DataTxPerPacket excludes the measurement plane's transmissions
	// (probes + LSA floods): the data plane's cost alone, the number to
	// compare against the oracle's TxPerPacket to isolate route
	// suboptimality from control overhead.
	DataTxPerPacket float64
	// Completed counts flows that finished within the deadline.
	Completed int
	// Transmissions is the run-wide transmission count.
	Transmissions int64
}

// summarize folds a RunInfo into a GapSummary.
func summarize(info RunInfo) GapSummary {
	g := GapSummary{Transmissions: info.Counters.Transmissions}
	delivered := 0
	for _, r := range info.Results {
		if r.Completed {
			g.Completed++
		}
		delivered += r.PacketsDelivered
		g.Throughput += r.Throughput()
	}
	// A run that delivered nothing reports 0 tx/pkt, not NaN: the gap
	// report is emitted as JSON, which cannot encode NaN (a silent
	// marshal failure would swallow the whole document).
	if delivered > 0 {
		g.TxPerPacket = float64(info.Counters.Transmissions) / float64(delivered)
		g.DataTxPerPacket = float64(info.Counters.Transmissions-info.ProbeTx-info.FloodTx) / float64(delivered)
	}
	return g
}

// GapReport compares one protocol's oracle and learned runs over the same
// topology, flows, and seed.
type GapReport struct {
	Protocol Protocol
	Flows    int

	Oracle  GapSummary
	Learned GapSummary

	// ThroughputRatio is learned/oracle aggregate throughput: 1.0 means
	// the measurement plane cost nothing, lower is the gap.
	ThroughputRatio float64
	// TxPerPacketRatio is learned/oracle transmissions per delivered
	// packet: above 1.0 is the control-plane + route-suboptimality cost.
	TxPerPacketRatio float64
	// DataTxPerPacketRatio is the same ratio with the learned side's
	// measurement-plane transmissions excluded: the pure route-quality gap.
	DataTxPerPacketRatio float64

	// Convergence is when every node first held every origin's LSA
	// (-1: the warmup ended before full coverage).
	Convergence sim.Time
	// ProbeTx and FloodTx are the measurement plane's transmissions during
	// the learned run (warmup + transfer).
	ProbeTx, FloodTx int64
}

// GapRun runs the same flows twice — once from the oracle, once from
// learned state — and reports the gap. Everything but Options.State (and
// the learned-side measurement knobs) is held identical.
func GapRun(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options) GapReport {
	oOpts := opts
	oOpts.State = StateOracle
	lOpts := opts
	lOpts.State = StateLearned

	oracle := RunDetailed(topo, proto, pairs, oOpts)
	learned := RunDetailed(topo, proto, pairs, lOpts)

	rep := GapReport{
		Protocol:    proto,
		Flows:       len(pairs),
		Oracle:      summarize(oracle),
		Learned:     summarize(learned),
		Convergence: learned.Convergence,
		ProbeTx:     learned.ProbeTx,
		FloodTx:     learned.FloodTx,
	}
	if rep.Oracle.Throughput > 0 {
		rep.ThroughputRatio = rep.Learned.Throughput / rep.Oracle.Throughput
	}
	if rep.Oracle.TxPerPacket > 0 {
		rep.TxPerPacketRatio = rep.Learned.TxPerPacket / rep.Oracle.TxPerPacket
		rep.DataTxPerPacketRatio = rep.Learned.DataTxPerPacket / rep.Oracle.TxPerPacket
	}
	return rep
}

// ChurnSpec injects one crash/recover cycle into both sides of a churn gap
// run. Times are measured from flow start (after any learned warmup).
type ChurnSpec struct {
	// Node crashes at FailAt and — when RecoverAt > FailAt — comes back at
	// RecoverAt. It should relay, not source or sink, the measured flows.
	Node      graph.NodeID
	FailAt    sim.Time
	RecoverAt sim.Time // <= FailAt: the node never comes back
	// Poll is the reconvergence sampling period (default 100 ms).
	Poll sim.Time
}

// ChurnReport extends GapReport with the learned control plane's
// post-event reconvergence times — how long the liveness and aging
// machinery (probe.Config.DeadInterval, linkstate.Config.MaxAge) takes to
// react to each half of the churn cycle.
type ChurnReport struct {
	GapReport
	// FailPurge is crash -> every live agent has dropped the dead origin's
	// LSA from its database (-1: not within the run, or liveness/aging are
	// disabled and the stale LSA lives forever).
	FailPurge sim.Time
	// RecoverRelearn is recovery -> every agent holds the reborn origin's
	// LSA again (-1: not within the run, or the node never recovers).
	RecoverRelearn sim.Time
}

// GapChurnRun is GapRun with a crash/recover cycle injected into both
// sides: the ground truth flips underneath the protocols (topology
// mutation + node silencing + oracle invalidation), and the learned side
// additionally measures how long the measurement plane takes to purge the
// dead origin and to re-learn it after recovery. Each side runs on its own
// topology clone, so churn in one cannot leak into the other.
func GapChurnRun(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options, churn ChurnSpec) ChurnReport {
	poll := churn.Poll
	if poll <= 0 {
		poll = 100 * sim.Millisecond
	}
	rep := ChurnReport{FailPurge: -1, RecoverRelearn: -1}

	schedule := func(t *graph.Topology, measure bool) func(*sim.Simulator, *ControlPlane, sim.Time) {
		return func(s *sim.Simulator, cp *ControlPlane, start sim.Time) {
			s.After(churn.FailAt, func() {
				t.Isolate(churn.Node)
				s.FailNode(churn.Node)
				if o := cp.Oracle(); o != nil {
					o.Invalidate()
				}
				if !measure {
					return
				}
				failedAt := s.Now()
				var watch func()
				watch = func() {
					if purgedFromAll(cp, churn.Node) {
						rep.FailPurge = s.Now() - failedAt
						return
					}
					s.After(poll, watch)
				}
				s.After(poll, watch)
			})
			if churn.RecoverAt <= churn.FailAt {
				return
			}
			s.After(churn.RecoverAt, func() {
				t.Restore(churn.Node)
				s.RecoverNode(churn.Node)
				if o := cp.Oracle(); o != nil {
					o.Invalidate()
				}
				if !measure {
					return
				}
				recoveredAt := s.Now()
				var watch func()
				watch = func() {
					if knownToAll(cp, churn.Node) {
						rep.RecoverRelearn = s.Now() - recoveredAt
						return
					}
					s.After(poll, watch)
				}
				s.After(poll, watch)
			})
		}
	}

	oTopo, lTopo := topo.Clone(), topo.Clone()
	oOpts := opts
	oOpts.State = StateOracle
	oOpts.Schedule = schedule(oTopo, false)
	lOpts := opts
	lOpts.State = StateLearned
	lOpts.Schedule = schedule(lTopo, true)

	oracle := RunDetailed(oTopo, proto, pairs, oOpts)
	learned := RunDetailed(lTopo, proto, pairs, lOpts)

	rep.GapReport = GapReport{
		Protocol:    proto,
		Flows:       len(pairs),
		Oracle:      summarize(oracle),
		Learned:     summarize(learned),
		Convergence: learned.Convergence,
		ProbeTx:     learned.ProbeTx,
		FloodTx:     learned.FloodTx,
	}
	if rep.Oracle.Throughput > 0 {
		rep.ThroughputRatio = rep.Learned.Throughput / rep.Oracle.Throughput
	}
	if rep.Oracle.TxPerPacket > 0 {
		rep.TxPerPacketRatio = rep.Learned.TxPerPacket / rep.Oracle.TxPerPacket
		rep.DataTxPerPacketRatio = rep.Learned.DataTxPerPacket / rep.Oracle.TxPerPacket
	}
	return rep
}

// purgedFromAll reports whether every agent other than the dead origin's
// own has dropped origin's LSA.
func purgedFromAll(cp *ControlPlane, origin graph.NodeID) bool {
	for i, a := range cp.agents {
		if graph.NodeID(i) == origin {
			continue // a node's own entry never expires
		}
		if a.Knows(origin) {
			return false
		}
	}
	return true
}

// knownToAll reports whether every agent holds origin's LSA.
func knownToAll(cp *ControlPlane, origin graph.NodeID) bool {
	for _, a := range cp.agents {
		if !a.Knows(origin) {
			return false
		}
	}
	return true
}

// GapSweepConfig parameterizes the gap sweep over measurement-plane knobs.
type GapSweepConfig struct {
	// Windows lists probe window sizes (probes averaged per estimate);
	// larger windows smooth estimates but slow adaptation.
	Windows []int
	// AdvertiseIntervals lists LSA flood periods; shorter floods converge
	// faster but burn more airtime.
	AdvertiseIntervals []sim.Time
	// Damping lists LSA flood-damping trigger deltas (linkstate.Config.
	// TriggerDelta; 0 = undamped) — the third knob of the grid, added so
	// the sweep quantifies the frame savings of triggered updates +
	// hold-down against the fidelity they cost. Empty sweeps only 0.
	Damping []float64
	// Protocol under test.
	Protocol Protocol
	// Flows is the number of concurrent random flows (≥1).
	Flows int
	// Opts carries topology-independent options (file size, seed,
	// deadline, parallelism, warmup).
	Opts Options

	// Nodes, when positive, replaces the paper testbed with a connected
	// random-geometric mesh of that size (graph.DefaultGeometric density),
	// so the sweep can ask the 512–1024-node questions the 20-node testbed
	// cannot — where does the measurement plane saturate the medium, and
	// what does scoping buy. Flows are drawn with RandomPairs.
	Nodes int
	// ScopeRings, SummaryInterval, and Piggyback apply fisheye scoping and
	// data-frame piggybacking to every grid point (linkstate.Config); zero
	// values keep every flood network-wide, the classic behavior.
	ScopeRings      []int
	SummaryInterval sim.Time
	Piggyback       bool
}

// DefaultGapSweepConfig sweeps MORE over the paper testbed with a small
// probe-window × advertise-interval grid.
func DefaultGapSweepConfig() GapSweepConfig {
	opts := DefaultOptions()
	opts.FileBytes = 64 << 10
	return GapSweepConfig{
		Windows:            []int{5, 10, 20},
		AdvertiseIntervals: []sim.Time{2 * sim.Second, 5 * sim.Second, 10 * sim.Second},
		Protocol:           MORE,
		Flows:              1,
		Opts:               opts,
	}
}

// StateGapPoint is one row of the sweep: the measurement-plane knobs plus the
// resulting gap.
type StateGapPoint struct {
	Window    int
	Advertise sim.Time
	Damping   float64
	// Nodes is the topology size the point ran on (the testbed's 20 unless
	// GapSweepConfig.Nodes overrode it); FloodTx/Nodes is the per-node
	// flood bill scoping is judged on.
	Nodes int
	GapReport
}

// GapSweep runs GapRun at every (window, advertise-interval) grid point
// over the testbed topology, fanned over cfg.Opts.Parallel workers. Results
// are deterministic in cfg.Opts.Seed for any worker count (each point is a
// hermetic pair of simulations).
func GapSweep(cfg GapSweepConfig) []StateGapPoint {
	if cfg.Flows < 1 {
		cfg.Flows = 1
	}
	damping := cfg.Damping
	if len(damping) == 0 {
		damping = []float64{0}
	}
	type knob struct {
		window    int
		advertise sim.Time
		damping   float64
	}
	var grid []knob
	for _, w := range cfg.Windows {
		for _, adv := range cfg.AdvertiseIntervals {
			for _, d := range damping {
				grid = append(grid, knob{w, adv, d})
			}
		}
	}
	points := make([]StateGapPoint, len(grid))
	forEach(len(grid), cfg.Opts.workers(), func(i int) {
		var topo *graph.Topology
		var pairs []Pair
		if cfg.Nodes > 0 {
			gcfg := graph.DefaultGeometric(cfg.Nodes)
			topo, _ = graph.ConnectedGeometric(gcfg, cfg.Opts.Seed)
			pairs = RandomPairs(topo, cfg.Flows, cfg.Opts.Seed)
		} else {
			topo = TestbedTopology()
			pairs = []Pair{{Src: 3, Dst: 17}}
			if cfg.Flows > 1 {
				pairs = RandomPairs(topo, cfg.Flows, cfg.Opts.Seed)
			}
		}
		opts := cfg.Opts
		lcfg := linkstate.DefaultConfig()
		lcfg.Probe.Window = grid[i].window
		lcfg.AdvertiseInterval = grid[i].advertise
		lcfg.TriggerDelta = grid[i].damping
		lcfg.ScopeRings = cfg.ScopeRings
		lcfg.SummaryInterval = cfg.SummaryInterval
		lcfg.Piggyback = cfg.Piggyback
		opts.LinkState = lcfg
		points[i] = StateGapPoint{
			Window:    grid[i].window,
			Advertise: grid[i].advertise,
			Damping:   grid[i].damping,
			Nodes:     topo.N(),
			GapReport: GapRun(topo, cfg.Protocol, pairs, opts),
		}
	})
	return points
}
