package experiments

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/linkstate"
	"repro/internal/sim"
)

// The congestion-control layer is strictly opt-in: with Options.CC left at
// its zero value (policy "none") every simulation must stay byte-identical
// to the pre-congestion code. These goldens pin medium-level counters and
// per-flow outcomes captured before internal/congest existed; any drift in
// RNG draw order, MAC scheduling, generator output, or the (damping-off)
// link-state plane shows up here as an exact-value mismatch.

type goldenCounters struct {
	tx, macAcks, deliveries, collisions, chLosses int64
	airTime                                       sim.Time
}

type goldenFlow struct {
	pkts       int
	completed  bool
	start, end sim.Time
}

func checkGolden(t *testing.T, name string, info RunInfo, wantC goldenCounters, wantF []goldenFlow) {
	t.Helper()
	c := info.Counters
	got := goldenCounters{c.Transmissions, c.MACAcks, c.Deliveries, c.Collisions, c.ChannelLosses, c.AirTime}
	if got != wantC {
		t.Errorf("%s counters: got %+v want %+v", name, got, wantC)
	}
	if len(info.Results) != len(wantF) {
		t.Fatalf("%s: %d flows, want %d", name, len(info.Results), len(wantF))
	}
	for i, r := range info.Results {
		g := goldenFlow{r.PacketsDelivered, r.Completed, r.Start, r.End}
		if g != wantF[i] {
			t.Errorf("%s flow %d: got %+v want %+v", name, i, g, wantF[i])
		}
	}
}

func TestGoldenMORETestbedSingle(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 64 << 10
	info := RunDetailed(TestbedTopology(), MORE, []Pair{{Src: 3, Dst: 17}}, opts)
	checkGolden(t, "more-testbed-single", info,
		goldenCounters{213, 5, 1093, 0, 1153, 508064608},
		[]goldenFlow{{44, true, 11317816, 545248427}})
}

func TestGoldenMORETestbedMultiFlow(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	topo := TestbedTopology()
	pairs := RandomPairs(topo, 3, opts.Seed)
	want := []Pair{{1, 7}, {7, 19}, {1, 18}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pair %d drifted: got %v want %v", i, pairs[i], want[i])
		}
	}
	info := RunDetailed(topo, MORE, pairs, opts)
	checkGolden(t, "more-testbed-3flows", info,
		goldenCounters{936, 12, 3573, 1, 3105, 2248347328},
		[]goldenFlow{
			{22, true, 132964527, 1511411629},
			{22, true, 34833269, 483469925},
			{22, true, 612488272, 1786332308},
		})
}

func TestGoldenMOREGeometricMultiFlow(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	topo, seed := graph.ConnectedGeometric(graph.DefaultGeometric(200), opts.Seed)
	if seed != 1 || topo.Edges() != 4272 {
		t.Fatalf("geometric draw drifted: seed=%d edges=%d", seed, topo.Edges())
	}
	pairs := RandomPairs(topo, 2, opts.Seed)
	info := RunDetailed(topo, MORE, pairs, opts)
	checkGolden(t, "more-geo200-2flows", info,
		goldenCounters{1389, 52, 15897, 783, 20880, 4083021638},
		[]goldenFlow{
			{22, true, 22020904, 1943111229},
			{22, true, 163136329, 1434652428},
		})
}

func TestGoldenExORAndSrcrTestbed(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	topo := TestbedTopology()
	info := RunDetailed(topo, ExOR, []Pair{{Src: 3, Dst: 17}}, opts)
	checkGolden(t, "exor-testbed-single", info,
		goldenCounters{140, 0, 941, 0, 533, 235112674},
		[]goldenFlow{{22, true, 72234168, 354639911}})
	info = RunDetailed(topo, Srcr, []Pair{{Src: 3, Dst: 17}}, opts)
	checkGolden(t, "srcr-testbed-single", info,
		goldenCounters{174, 123, 2164, 0, 859, 391641445},
		[]goldenFlow{{22, true, 36212000, 437249628}})
}

// TestGoldenLearnedState pins the measurement plane with flood damping left
// at its default (off): probes, LSA floods, convergence time, and the
// resulting transfer must all match the pre-damping code exactly.
func TestGoldenLearnedState(t *testing.T) {
	if testing.Short() {
		t.Skip("30 s simulated warmup")
	}
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	opts.State = StateLearned
	opts.LinkState = linkstate.DefaultConfig()
	info := RunDetailed(TestbedTopology(), MORE, []Pair{{Src: 3, Dst: 17}}, opts)
	checkGolden(t, "more-testbed-learned", info,
		goldenCounters{2752, 2, 17703, 0, 4778, 2243291961},
		[]goldenFlow{{22, true, 29995626492, 30386604849}})
	if info.ProbeTx != 598 || info.FloodTx != 2005 || info.Convergence != 5373783732 {
		t.Errorf("measurement plane drifted: probes=%d floods=%d conv=%d",
			info.ProbeTx, info.FloodTx, info.Convergence)
	}
}

// TestGoldenGeneratorTopologies pins the generator output (link statistics
// and spot-checked probabilities) so the sparse-storage port of the
// Testbed/Grid/Corridor generators provably preserves every draw.
func TestGoldenGeneratorTopologies(t *testing.T) {
	tb := graph.Testbed(graph.DefaultTestbed(), 1)
	s := tb.LinkStats(graph.RouteThreshold)
	if s.Links != 40 || s.MeanDegree != 4.0 {
		t.Errorf("testbed stats drifted: links=%d meandeg=%v", s.Links, s.MeanDegree)
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: got %.12f want %.12f", name, got, want)
		}
	}
	approx("testbed p(3,17)", tb.Prob(3, 17), 0)
	approx("testbed p(0,5)", tb.Prob(0, 5), 0.977233753)
	approx("testbed p(12,7)", tb.Prob(12, 7), 0.771455052)

	co := graph.Corridor(12, 12*26, 15, 28, 7)
	sc := co.LinkStats(graph.RouteThreshold)
	if sc.Links != 9 || co.Edges() != 22 {
		t.Errorf("corridor stats drifted: links=%d edges=%d", sc.Links, co.Edges())
	}
	approx("corridor p(0,1)", co.Prob(0, 1), 0.338070600)
	approx("corridor p(3,5)", co.Prob(3, 5), 0)

	gr := graph.Grid(4, 5, 14, 30)
	sg := gr.LinkStats(graph.RouteThreshold)
	if sg.Links != 111 || gr.Edges() != 376 {
		t.Errorf("grid stats drifted: links=%d edges=%d", sg.Links, gr.Edges())
	}
	approx("grid p(0,1)", gr.Prob(0, 1), 0.918657328)
	approx("grid p(0,19)", gr.Prob(0, 19), 0)
}

// TestGoldenFloodRun pins the standalone link-state flood (20 simulated
// seconds over the default testbed, damping off).
func TestGoldenFloodRun(t *testing.T) {
	tb := graph.Testbed(graph.DefaultTestbed(), 1)
	agents := linkstate.Run(tb, linkstate.DefaultConfig(), sim.DefaultConfig(), 20*sim.Second)
	var flood int64
	known := 0
	for _, a := range agents {
		flood += a.FloodTx
		known += a.KnownOrigins()
	}
	if flood != 620 || known != 312 {
		t.Errorf("flood drifted: floodtx=%d known=%d (want 620, 312)", flood, known)
	}
}
