package experiments

import (
	"testing"

	"repro/internal/sim"
)

// TestOracleStateByteIdentical locks the -state oracle path to the exact
// pre-measurement-plane behavior: the control-plane refactor (per-node
// RoutingState providers, protocol stacking, plan refresh hooks) must not
// move a single RNG draw when the oracle is selected. The golden numbers
// were captured from the seed implementation before RoutingState existed;
// any drift here is a regression, not a re-baseline.
func TestOracleStateByteIdentical(t *testing.T) {
	golden := []struct {
		proto         Protocol
		tx, acks      int64
		deliveries    int64
		channelLosses int64
		airTime       sim.Time
		end           sim.Time
	}{
		{MORE, 213, 5, 1093, 1153, 508064608, 545248427},
		{ExOR, 267, 10, 1853, 1068, 455434051, 674038382},
		{Srcr, 390, 275, 4732, 2051, 943021803, 1015042349},
	}
	for _, g := range golden {
		opts := DefaultOptions()
		opts.FileBytes = 64 << 10
		info := RunDetailed(TestbedTopology(), g.proto, []Pair{{Src: 3, Dst: 17}}, opts)
		c := info.Counters
		r := info.Results[0]
		if c.Transmissions != g.tx || c.MACAcks != g.acks || c.Deliveries != g.deliveries ||
			c.ChannelLosses != g.channelLosses || c.AirTime != g.airTime || r.End != g.end {
			t.Errorf("%v oracle run drifted from seed behavior:\n got tx=%d acks=%d deliveries=%d chloss=%d airtime=%d end=%d\nwant tx=%d acks=%d deliveries=%d chloss=%d airtime=%d end=%d",
				g.proto, c.Transmissions, c.MACAcks, c.Deliveries, c.ChannelLosses, int64(c.AirTime), int64(r.End),
				g.tx, g.acks, g.deliveries, g.channelLosses, int64(g.airTime), int64(g.end))
		}
		if !r.Completed || !r.Verified {
			t.Errorf("%v oracle run: completed=%v verified=%v", g.proto, r.Completed, r.Verified)
		}
		if info.Convergence != 0 || info.ProbeTx != 0 || info.FloodTx != 0 {
			t.Errorf("%v oracle run leaked measurement-plane state: conv=%v probes=%d floods=%d",
				g.proto, info.Convergence, info.ProbeTx, info.FloodTx)
		}
	}
}

// TestLearnedStateEndToEnd runs each protocol over the paper testbed with
// routing state built solely from in-simulation probes and LSA floods, and
// asserts the transfer completes with verified payloads and the learned
// side stays within a sane gap of the oracle.
func TestLearnedStateEndToEnd(t *testing.T) {
	for _, proto := range []Protocol{MORE, ExOR, Srcr} {
		opts := DefaultOptions()
		opts.FileBytes = 64 << 10
		rep := GapRun(TestbedTopology(), proto, []Pair{{Src: 3, Dst: 17}}, opts)
		if rep.Learned.Completed != 1 {
			t.Fatalf("%v: learned-state transfer did not complete", proto)
		}
		if rep.Convergence <= 0 {
			t.Errorf("%v: measurement plane never converged (conv=%v)", proto, rep.Convergence)
		}
		if rep.ProbeTx == 0 || rep.FloodTx == 0 {
			t.Errorf("%v: no measurement traffic recorded (probes=%d floods=%d)", proto, rep.ProbeTx, rep.FloodTx)
		}
		// Learned routes should be usable, not an order of magnitude off:
		// throughput within 3x of the oracle, data-plane cost within 3x.
		if rep.ThroughputRatio < 1.0/3 {
			t.Errorf("%v: learned throughput ratio %.2f below 1/3 of oracle", proto, rep.ThroughputRatio)
		}
		if rep.DataTxPerPacketRatio > 3 {
			t.Errorf("%v: learned data tx/pkt ratio %.2f above 3x oracle", proto, rep.DataTxPerPacketRatio)
		}
	}
}

// TestLearnedRunDeterministic locks the learned path's determinism: two
// identical runs must agree bit for bit (the measurement plane shares the
// simulator RNG, so this guards the whole stack's determinism).
func TestLearnedRunDeterministic(t *testing.T) {
	run := func() RunInfo {
		opts := DefaultOptions()
		opts.FileBytes = 32 << 10
		opts.State = StateLearned
		return RunDetailed(TestbedTopology(), MORE, []Pair{{Src: 3, Dst: 17}}, opts)
	}
	a, b := run(), run()
	if a.Counters.Transmissions != b.Counters.Transmissions ||
		a.Counters.AirTime != b.Counters.AirTime ||
		a.Convergence != b.Convergence ||
		a.ProbeTx != b.ProbeTx || a.FloodTx != b.FloodTx ||
		a.Results[0].End != b.Results[0].End {
		t.Fatalf("learned runs diverged: %+v vs %+v", a.Counters, b.Counters)
	}
}

// TestLearnedColdStart disables the warmup: flows must still launch (the
// runner retries until the learned view can route), the measurement plane
// must converge under load, and the transfer must complete.
func TestLearnedColdStart(t *testing.T) {
	opts := DefaultOptions()
	opts.FileBytes = 32 << 10
	opts.State = StateLearned
	opts.Warmup = -1
	info := RunDetailed(TestbedTopology(), MORE, []Pair{{Src: 3, Dst: 17}}, opts)
	r := info.Results[0]
	if !r.Completed || !r.Verified {
		t.Fatalf("cold-start transfer failed: completed=%v verified=%v", r.Completed, r.Verified)
	}
	if info.Convergence <= 0 {
		t.Errorf("convergence under load not recorded: %v", info.Convergence)
	}
}

// TestGapSweepShape checks the sweep produces one point per grid cell with
// the knobs echoed back.
func TestGapSweepShape(t *testing.T) {
	cfg := DefaultGapSweepConfig()
	cfg.Windows = []int{10}
	cfg.AdvertiseIntervals = []sim.Time{2 * sim.Second}
	cfg.Opts.FileBytes = 32 << 10
	pts := GapSweep(cfg)
	if len(pts) != 1 {
		t.Fatalf("want 1 point, got %d", len(pts))
	}
	if pts[0].Window != 10 || pts[0].Advertise != 2*sim.Second {
		t.Fatalf("knobs not echoed: %+v", pts[0])
	}
	if pts[0].Learned.Completed != pts[0].Flows {
		t.Fatalf("sweep point did not complete: %+v", pts[0])
	}
}

func TestParseStateMode(t *testing.T) {
	if m, err := ParseStateMode("oracle"); err != nil || m != StateOracle {
		t.Fatalf("oracle: %v %v", m, err)
	}
	if m, err := ParseStateMode("learned"); err != nil || m != StateLearned {
		t.Fatalf("learned: %v %v", m, err)
	}
	if _, err := ParseStateMode("psychic"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
