package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestGF256BenchAndBaselineCompare(t *testing.T) {
	res := GF256Bench([]string{"portable", "reference"}, 8, []int{64, 256}, 5*time.Millisecond)
	if len(res.Points) != 8 { // 2 kernels x 2 ops x 2 sizes
		t.Fatalf("got %d points, want 8", len(res.Points))
	}
	for _, p := range res.Points {
		if p.GBps <= 0 {
			t.Fatalf("cell %s/%s/%d measured %.3f GB/s", p.Kernel, p.Op, p.Size, p.GBps)
		}
	}
	if !strings.Contains(res.Table(), "portable") {
		t.Fatal("table missing kernel row")
	}
	// Unknown kernels are skipped, not fatal.
	if n := len(GF256Bench([]string{"no-such-arm"}, 8, []int{64}, time.Millisecond).Points); n != 0 {
		t.Fatalf("unknown kernel produced %d points", n)
	}

	// A 30% drop on a gated kernel is flagged; ungated kernels are not.
	cur := &GF256BenchResult{K: 8}
	for _, p := range res.Points {
		q := p
		q.GBps *= 0.7
		cur.Points = append(cur.Points, q)
	}
	bad := CompareGF256Baselines(res, cur, 0.20, []string{"portable"})
	if len(bad) != 4 {
		t.Fatalf("got %d regressions, want 4 (portable cells only): %v", len(bad), bad)
	}
	if len(CompareGF256Baselines(res, res, 0.20, []string{"portable", "reference"})) != 0 {
		t.Fatal("identical results flagged as regression")
	}
}

func TestCodingScaling(t *testing.T) {
	res := CodingScaling([]int{1, 2}, 8, 128, 10*time.Millisecond)
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if res.Points[0].Cores != 1 || res.Points[1].Cores != 2 {
		t.Fatalf("core counts wrong: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.GBps <= 0 || p.Batches <= 0 {
			t.Fatalf("empty measurement: %+v", p)
		}
	}
	if res.Points[0].Speedup != 1 {
		t.Fatalf("1-core speedup = %.2f, want 1", res.Points[0].Speedup)
	}
	if !strings.Contains(res.Table(), "cores") {
		t.Fatal("table missing header")
	}
}
