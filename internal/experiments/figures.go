package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestbedTopology returns the canonical simulated testbed every figure
// runs over: the first fully-connected 20-node draw (§4.1).
func TestbedTopology() *graph.Topology {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	return topo
}

// --- Figure 4-2 / 4-3: unicast throughput ------------------------------------

// ThroughputResult holds per-pair throughputs for the compared protocols.
type ThroughputResult struct {
	Pairs      []Pair
	Throughput map[Protocol][]float64 // pkt/s, aligned with Pairs
}

// Fig42UnicastThroughput runs MORE, ExOR, and Srcr between nPairs random
// pairs and returns per-pair throughputs (the paper uses 200 pairs over a
// 5 MB file; scale with opts). The proto×pair runs are independent and fan
// out over opts.Parallel workers.
func Fig42UnicastThroughput(topo *graph.Topology, nPairs int, opts Options) *ThroughputResult {
	pairs := RandomPairs(topo, nPairs, opts.Seed)
	protos := []Protocol{MORE, ExOR, Srcr}
	samples := make([][]float64, len(protos))
	for pi := range samples {
		samples[pi] = make([]float64, len(pairs))
	}
	forEach(len(protos)*len(pairs), opts.workers(), func(it int) {
		pi, i := it/len(pairs), it%len(pairs)
		o := opts
		o.Seed = opts.Seed + int64(1000*i)
		samples[pi][i] = Run(topo, protos[pi], pairs[i], o).Throughput()
	})
	res := &ThroughputResult{
		Pairs:      pairs,
		Throughput: map[Protocol][]float64{},
	}
	for pi, proto := range protos {
		res.Throughput[proto] = samples[pi]
	}
	return res
}

// MedianGain returns median(a)/median(b) - 1 as a percentage.
func (r *ThroughputResult) MedianGain(a, b Protocol) float64 {
	ma := stats.Median(r.Throughput[a])
	mb := stats.Median(r.Throughput[b])
	if mb == 0 {
		return math.Inf(1)
	}
	return 100 * (ma/mb - 1)
}

// MaxGain returns the maximum per-pair ratio a/b.
func (r *ThroughputResult) MaxGain(a, b Protocol) float64 {
	gains := stats.GainVsBaseline(r.Throughput[a], r.Throughput[b])
	max := 0.0
	for _, g := range gains {
		if g > max {
			max = g
		}
	}
	return max
}

// Table renders the figure's summary rows.
func (r *ThroughputResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s\n", "proto", "p10", "median", "p90", "mean")
	for _, proto := range []Protocol{Srcr, ExOR, MORE} {
		if _, ok := r.Throughput[proto]; !ok {
			continue
		}
		s := stats.Summarize(r.Throughput[proto])
		fmt.Fprintf(&b, "%-8s %8.1f %8.1f %8.1f %8.1f\n", proto, s.P10, s.Median, s.P90, s.Mean)
	}
	fmt.Fprintf(&b, "MORE vs ExOR median gain: %+.0f%%\n", r.MedianGain(MORE, ExOR))
	fmt.Fprintf(&b, "MORE vs Srcr median gain: %+.0f%%  (max %.1fx)\n",
		r.MedianGain(MORE, Srcr), r.MaxGain(MORE, Srcr))
	return b.String()
}

// CDFs returns the plotted series of Fig 4-2.
func (r *ThroughputResult) CDFs() map[Protocol]*stats.CDF {
	out := map[Protocol]*stats.CDF{}
	for proto, xs := range r.Throughput {
		out[proto] = stats.NewCDF(xs)
	}
	return out
}

// ScatterTSV renders Fig 4-3's scatter series: per pair, baseline
// throughput vs opportunistic throughput.
func (r *ThroughputResult) ScatterTSV(x, y Protocol) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\t%s\n", x, y)
	for i := range r.Pairs {
		fmt.Fprintf(&b, "%.2f\t%.2f\n", r.Throughput[x][i], r.Throughput[y][i])
	}
	return b.String()
}

// ChallengedGain quantifies Fig 4-3's observation: the median gain of
// opportunistic routing over Srcr among the bottom half of Srcr flows
// (challenged) vs the top half.
func (r *ThroughputResult) ChallengedGain(proto Protocol) (bottom, top float64) {
	type pair struct{ base, op float64 }
	var ps []pair
	for i := range r.Pairs {
		ps = append(ps, pair{r.Throughput[Srcr][i], r.Throughput[proto][i]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].base < ps[j].base })
	half := len(ps) / 2
	gain := func(sl []pair) float64 {
		var gs []float64
		for _, p := range sl {
			if p.base > 0 {
				gs = append(gs, p.op/p.base)
			}
		}
		return stats.Median(gs)
	}
	return gain(ps[:half]), gain(ps[half:])
}

// --- Figure 4-4: spatial reuse ------------------------------------------------

// Fig44Result reports the spatial-reuse comparison.
type Fig44Result struct {
	Pairs      []Pair
	Throughput map[Protocol][]float64
}

// Fig44SpatialReuse runs the three protocols over pairs whose best path is
// ≥ minHops hops with a concurrency opportunity between first and last hop.
// Such pairs are scarce on a 20-node testbed (under 7% of flows have ≥4-hop
// paths, §4.2.3), so the experiment runs over corridor topologies where they
// arise naturally, collecting up to nPairs.
func Fig44SpatialReuse(nPairs int, opts Options) *Fig44Result {
	res := &Fig44Result{Throughput: map[Protocol][]float64{}}
	type located struct {
		topo *graph.Topology
		pair Pair
	}
	var found []located
	for seed := int64(1); len(found) < nPairs && seed < 200; seed++ {
		topo := graph.Corridor(14, 360, 15, 28, seed)
		for _, p := range SpatialReusePairs(topo, 4, 0.01, opts.SenseRange) {
			found = append(found, located{topo, p})
			if len(found) >= nPairs {
				break
			}
		}
	}
	protos := []Protocol{MORE, ExOR, Srcr}
	samples := make([][]float64, len(protos))
	for pi := range samples {
		samples[pi] = make([]float64, len(found))
	}
	forEach(len(protos)*len(found), opts.workers(), func(it int) {
		pi, i := it/len(found), it%len(found)
		o := opts
		o.Seed = opts.Seed + int64(1000*i)
		samples[pi][i] = Run(found[i].topo, protos[pi], found[i].pair, o).Throughput()
	})
	for _, lp := range found {
		res.Pairs = append(res.Pairs, lp.pair)
	}
	for pi, proto := range protos {
		res.Throughput[proto] = samples[pi]
	}
	return res
}

// MedianGain mirrors ThroughputResult.MedianGain.
func (r *Fig44Result) MedianGain(a, b Protocol) float64 {
	mb := stats.Median(r.Throughput[b])
	if mb == 0 {
		return math.Inf(1)
	}
	return 100 * (stats.Median(r.Throughput[a])/mb - 1)
}

// Table renders the summary.
func (r *Fig44Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spatial-reuse flows (>=4 hops, first/last hop concurrent): %d\n", len(r.Pairs))
	fmt.Fprintf(&b, "%-8s %8s %8s\n", "proto", "median", "mean")
	for _, proto := range []Protocol{Srcr, ExOR, MORE} {
		s := stats.Summarize(r.Throughput[proto])
		fmt.Fprintf(&b, "%-8s %8.1f %8.1f\n", proto, s.Median, s.Mean)
	}
	fmt.Fprintf(&b, "MORE vs ExOR median gain: %+.0f%%\n", r.MedianGain(MORE, ExOR))
	return b.String()
}

// --- Figure 4-5: multiple flows ------------------------------------------------

// Fig45Result holds per-flow-count average throughput (mean ± std over
// repeated random runs).
type Fig45Result struct {
	FlowCounts []int
	Avg        map[Protocol][]float64
	Std        map[Protocol][]float64
}

// Fig45MultiFlow measures average per-flow throughput with 1..maxFlows
// concurrent flows, averaging over runs random draws each (the paper runs
// 40). The flow-count × draw × protocol grid fans out over opts.Parallel
// workers; pair drawing stays serial so the sampled workloads are
// independent of the worker count.
func Fig45MultiFlow(topo *graph.Topology, maxFlows, runs int, opts Options) *Fig45Result {
	protos := []Protocol{MORE, ExOR, Srcr}
	type cell struct {
		pairs []Pair
		seed  int64
	}
	cells := make([]cell, 0, maxFlows*runs)
	for nf := 1; nf <= maxFlows; nf++ {
		for run := 0; run < runs; run++ {
			pairSeed := opts.Seed + int64(run*7919+nf)
			pairs := RandomPairs(topo, nf, pairSeed)
			if len(pairs) < nf {
				pairs = nil // undrawable; keep the grid shape
			}
			cells = append(cells, cell{pairs: pairs, seed: pairSeed})
		}
	}
	// flat[cell*len(protos)+proto] holds that cell's per-flow average.
	flat := make([]float64, len(cells)*len(protos))
	forEach(len(cells)*len(protos), opts.workers(), func(it int) {
		ci, pi := it/len(protos), it%len(protos)
		if cells[ci].pairs == nil {
			return
		}
		o := opts
		o.Seed = cells[ci].seed
		rs := RunFlows(topo, protos[pi], cells[ci].pairs, o)
		var sum float64
		for _, r := range rs {
			sum += r.Throughput()
		}
		flat[it] = sum / float64(len(rs))
	})
	res := &Fig45Result{
		Avg: map[Protocol][]float64{},
		Std: map[Protocol][]float64{},
	}
	for nf := 1; nf <= maxFlows; nf++ {
		res.FlowCounts = append(res.FlowCounts, nf)
		for pi, proto := range protos {
			var samples []float64
			for run := 0; run < runs; run++ {
				ci := (nf-1)*runs + run
				if cells[ci].pairs == nil {
					continue
				}
				samples = append(samples, flat[ci*len(protos)+pi])
			}
			s := stats.Summarize(samples)
			res.Avg[proto] = append(res.Avg[proto], s.Mean)
			res.Std[proto] = append(res.Std[proto], s.Std)
		}
	}
	return res
}

// Table renders Fig 4-5's bars.
func (r *Fig45Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "flows")
	for _, proto := range []Protocol{Srcr, ExOR, MORE} {
		fmt.Fprintf(&b, " %16s", proto)
	}
	b.WriteString("\n")
	for i, nf := range r.FlowCounts {
		fmt.Fprintf(&b, "%-8d", nf)
		for _, proto := range []Protocol{Srcr, ExOR, MORE} {
			fmt.Fprintf(&b, " %9.1f ± %4.1f", r.Avg[proto][i], r.Std[proto][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Figure 4-6: autorate -------------------------------------------------------

// Fig46Result compares Srcr (fixed and autorate) with opportunistic routing
// at a fixed 11 Mb/s over a rate-dependent channel.
type Fig46Result struct {
	Pairs      []Pair
	Throughput map[string][]float64
	// LowRateTxFrac is the fraction of autorate transmissions at 1 Mb/s;
	// LowRateAirFrac is the share of air time they consume (§4.4 reports
	// 23% and ~70%).
	LowRateTxFrac  float64
	LowRateAirFrac float64
}

// Fig46Autorate reproduces §4.4: the channel is rate-dependent; MORE and
// ExOR run at a fixed 11 Mb/s; Srcr runs both at the 5.5 Mb/s reference rate
// and with Onoe autorate.
func Fig46Autorate(topo *graph.Topology, nPairs int, opts Options) *Fig46Result {
	opts.RateDependentChannel = true
	pairs := RandomPairs(topo, nPairs, opts.Seed)
	res := &Fig46Result{Pairs: pairs, Throughput: map[string][]float64{}}

	variants := []struct {
		name  string
		proto Protocol
		rate  sim.Bitrate
	}{
		{"MORE@11", MORE, sim.Rate11},
		{"ExOR@11", ExOR, sim.Rate11},
		{"Srcr@5.5", Srcr, sim.Rate5_5},
		{"Srcr-auto", SrcrAutorate, 0},
	}
	nv := len(variants)
	samples := make([]float64, len(pairs)*nv)
	counters := make([]sim.Counters, len(pairs)) // autorate runs only
	forEach(len(pairs)*nv, opts.workers(), func(it int) {
		i, vi := it/nv, it%nv
		v := variants[vi]
		o := opts
		o.Seed = opts.Seed + int64(1000*i)
		if v.rate != 0 {
			o.DataRate = v.rate
		}
		rs, cs := RunWithCounters(topo, v.proto, []Pair{pairs[i]}, o)
		samples[it] = rs[0].Throughput()
		if v.proto == SrcrAutorate {
			counters[i] = cs
		}
	})
	for vi, v := range variants {
		xs := make([]float64, len(pairs))
		for i := range pairs {
			xs[i] = samples[i*nv+vi]
		}
		res.Throughput[v.name] = xs
	}
	var lowTx, allTx int64
	var lowAir, allAir float64
	for i := range pairs {
		for r, c := range counters[i].TxByRate {
			allTx += c
			if r == sim.Rate1 {
				lowTx += c
			}
		}
		for r, t := range counters[i].AirTimeByRate {
			allAir += t.Seconds()
			if r == sim.Rate1 {
				lowAir += t.Seconds()
			}
		}
	}
	if allTx > 0 {
		res.LowRateTxFrac = float64(lowTx) / float64(allTx)
	}
	if allAir > 0 {
		res.LowRateAirFrac = lowAir / allAir
	}
	return res
}

// Table renders the Fig 4-6 summary.
func (r *Fig46Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s\n", "proto", "median", "mean")
	for _, name := range []string{"Srcr@5.5", "Srcr-auto", "ExOR@11", "MORE@11"} {
		s := stats.Summarize(r.Throughput[name])
		fmt.Fprintf(&b, "%-10s %8.1f %8.1f\n", name, s.Median, s.Mean)
	}
	fmt.Fprintf(&b, "autorate 1Mb/s: %.0f%% of transmissions, %.0f%% of air time\n",
		100*r.LowRateTxFrac, 100*r.LowRateAirFrac)
	return b.String()
}

// RobustnessResult summarizes the headline gains across independently
// generated testbed topologies — a check the paper could not run (it had
// one building) but a simulator can: the Fig 4-2 conclusions should not
// hinge on one random topology draw.
type RobustnessResult struct {
	Seeds      []int64
	GainVsExOR []float64 // median MORE/ExOR gain (%) per topology
	GainVsSrcr []float64
}

// Fig42AcrossSeeds reruns the Fig 4-2 comparison over several generated
// testbeds.
func Fig42AcrossSeeds(topologies int, pairsPer int, opts Options) *RobustnessResult {
	res := &RobustnessResult{}
	seed := int64(1)
	for len(res.Seeds) < topologies {
		topo, used := graph.ConnectedTestbed(graph.DefaultTestbed(), seed)
		seed = used + 1
		o := opts
		o.Seed = used
		r := Fig42UnicastThroughput(topo, pairsPer, o)
		res.Seeds = append(res.Seeds, used)
		res.GainVsExOR = append(res.GainVsExOR, r.MedianGain(MORE, ExOR))
		res.GainVsSrcr = append(res.GainVsSrcr, r.MedianGain(MORE, Srcr))
	}
	return res
}

// Table renders the per-topology gains.
func (r *RobustnessResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s\n", "seed", "vs ExOR", "vs Srcr")
	for i, s := range r.Seeds {
		fmt.Fprintf(&b, "%-8d %+13.0f%% %+13.0f%%\n", s, r.GainVsExOR[i], r.GainVsSrcr[i])
	}
	fmt.Fprintf(&b, "%-8s %+13.0f%% %+13.0f%%\n", "median",
		stats.Median(r.GainVsExOR), stats.Median(r.GainVsSrcr))
	return b.String()
}
