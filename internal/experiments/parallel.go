package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The figure drivers fan independent simulation runs out over a bounded
// worker pool. Every work item is hermetic — it builds its own simulator
// from a seed derived deterministically from the experiment seed and the
// item index, and writes only to its own slot of a pre-sized result slice —
// so the assembled figures are byte-identical for any worker count,
// including 1. The determinism test in experiments_test.go locks that in.

// Workers normalizes an Options.Parallel value: 0 or negative means serial
// (1), and anything else is capped at the item count by forEach.
func Workers(parallel int) int {
	if parallel <= 0 {
		return 1
	}
	return parallel
}

// AutoParallel returns a sensible default worker count for callers that
// want "use the machine": GOMAXPROCS.
func AutoParallel() int { return runtime.GOMAXPROCS(0) }

// ForEachItem exposes the bounded worker pool to commands that fan their
// own independent runs out (cmd/moresim -proto all). fn must confine its
// writes to per-index state.
func ForEachItem(n, workers int, fn func(i int)) { forEach(n, workers, fn) }

// forEach runs fn(0..n-1) on up to `workers` goroutines. fn must confine
// its writes to per-index state. With workers <= 1 the loop runs inline on
// the caller's goroutine.
func forEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
