package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestTelemetryObservationOnly pins the overhead contract's behavioral
// half: installing a full Hub must not change a single counter or result —
// telemetry observes the simulation, it never participates in it.
func TestTelemetryObservationOnly(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 64 << 10
	pairs := []Pair{{Src: 0, Dst: 19}}

	plain := RunDetailed(topo, MORE, pairs, opts)

	hub := telemetry.NewHub(telemetry.Config{ChromeTrace: true})
	opts.Telemetry = hub
	instr := RunDetailed(topo, MORE, pairs, opts)

	if !reflect.DeepEqual(plain.Results, instr.Results) {
		t.Fatalf("results diverged under telemetry:\n  off: %+v\n  on:  %+v", plain.Results, instr.Results)
	}
	if !reflect.DeepEqual(plain.Counters, instr.Counters) {
		t.Fatalf("counters diverged under telemetry:\n  off: %+v\n  on:  %+v", plain.Counters, instr.Counters)
	}
	if plain.Telemetry != nil {
		t.Fatal("uninstrumented run exported a telemetry report")
	}
	if instr.Telemetry == nil {
		t.Fatal("instrumented run exported no telemetry report")
	}
	if hub.Events() == 0 {
		t.Fatal("hub saw no events")
	}
}

// TestTelemetryLatencyMetrics checks the metrics registry produces the
// streaming numbers the ISSUE demands: per-packet delivery percentiles and
// a per-flow deadline-miss rate.
func TestTelemetryLatencyMetrics(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 64 << 10
	pairs := []Pair{{Src: 0, Dst: 19}}

	hub := telemetry.NewHub(telemetry.Config{})
	opts.Telemetry = hub
	info := RunDetailed(topo, MORE, pairs, opts)
	if !info.Results[0].Completed {
		t.Fatal("transfer incomplete")
	}

	fm := info.Telemetry.FlowMetrics(1)
	if fm.Delivered != int64(info.Results[0].PacketsDelivered) {
		t.Fatalf("telemetry delivered %d, result says %d", fm.Delivered, info.Results[0].PacketsDelivered)
	}
	d := fm.Delivery
	if d.Count == 0 {
		t.Fatal("no per-packet delivery latency samples")
	}
	if d.P50Ms <= 0 || d.P95Ms < d.P50Ms || d.P99Ms < d.P95Ms || d.MaxMs < d.P99Ms {
		t.Fatalf("latency percentiles not ordered: %+v", d)
	}
	if fm.Decode.Count == 0 {
		t.Fatal("no batch decode latency samples")
	}
	if fm.DeadlineMissRate != 0 {
		t.Fatalf("no deadline configured but miss rate %v", fm.DeadlineMissRate)
	}

	// Re-run with an unmeetable 1 ns deadline: every latency-sampled
	// delivery must miss.
	hub = telemetry.NewHub(telemetry.Config{DeadlineNS: 1})
	opts.Telemetry = hub
	info = RunDetailed(topo, MORE, pairs, opts)
	fm = info.Telemetry.FlowMetrics(1)
	if fm.Delivery.Count == 0 || fm.DeadlineMissRate != 1 {
		t.Fatalf("1 ns deadline should miss every packet: %+v", fm)
	}

	// Per-node side: the source transmits and its queue-free counters add
	// up; every node that appears was touched.
	if len(info.Telemetry.Nodes) == 0 {
		t.Fatal("no node metrics")
	}
	var srcTx int64
	for _, n := range info.Telemetry.Nodes {
		if n.Node == 0 {
			srcTx = n.Tx
		}
	}
	if srcTx == 0 {
		t.Fatal("source shows no transmissions")
	}
}

// TestTelemetryStallDump forces a batch stall (the destination dies
// mid-transfer with repair armed) and checks the core watchdog's KindStall
// produces a structured flight-recorder post-mortem.
func TestTelemetryStallDump(t *testing.T) {
	topo := TestbedTopology()
	opts := DefaultOptions()
	opts.FileBytes = 256 << 10
	opts.Repair = 2 * sim.Second
	opts.Deadline = 12 * sim.Second
	pairs := []Pair{{Src: 0, Dst: 19}}

	var cbDumps int
	hub := telemetry.NewHub(telemetry.Config{OnStall: func(d telemetry.StallDump) { cbDumps++ }})
	opts.Telemetry = hub
	opts.Schedule = func(s *sim.Simulator, cp *ControlPlane, flowsStart sim.Time) {
		s.After(sim.Second, func() { s.FailNode(19) })
	}
	info := RunDetailed(topo, MORE, pairs, opts)
	if info.Results[0].Completed {
		t.Fatal("transfer completed despite dead destination")
	}

	dumps := hub.Stalls()
	if len(dumps) == 0 {
		t.Fatal("stalled flow produced no flight-recorder dump")
	}
	if cbDumps != int(info.Telemetry.Stalls) {
		t.Fatalf("OnStall fired %d times, report counts %d stalls", cbDumps, info.Telemetry.Stalls)
	}
	d := dumps[0]
	if d.Node != 0 || d.Flow != 1 || d.Reason != "batch-stall" {
		t.Fatalf("dump identity wrong: %+v", d)
	}
	if len(d.Recent) == 0 {
		t.Fatal("dump carries no recent events")
	}
	// The ring is the source's own: every recent event happened at node 0,
	// ordered by time, ending with the stall itself.
	last := d.Recent[len(d.Recent)-1]
	if last.Kind != telemetry.KindStall {
		t.Fatalf("dump should end with the stall event, got %v", last.Kind)
	}
	for i, ev := range d.Recent {
		if ev.Node != 0 {
			t.Fatalf("event %d in node 0's ring belongs to node %d", i, ev.Node)
		}
		if i > 0 && ev.At < d.Recent[i-1].At {
			t.Fatal("ring events out of order")
		}
	}
}

// TestTelemetryBenchGate sanity-checks the overhead comparator without
// timing anything real.
func TestTelemetryBenchGate(t *testing.T) {
	base := &TelemetryBenchResult{OffNsPerRun: 100, OnNsPerRun: 105, OverheadPct: 5}
	cur := &TelemetryBenchResult{OffNsPerRun: 102, OnNsPerRun: 106, OverheadPct: 3.9}
	if bad := CompareTelemetryBaselines(base, cur, 0.20); len(bad) != 0 {
		t.Fatalf("healthy pair flagged: %v", bad)
	}
	slow := &TelemetryBenchResult{OffNsPerRun: 150, OnNsPerRun: 155, OverheadPct: 3.3}
	if bad := CompareTelemetryBaselines(base, slow, 0.20); len(bad) != 1 {
		t.Fatalf("off-path regression not flagged: %v", bad)
	}
	heavy := &TelemetryBenchResult{OffNsPerRun: 100, OnNsPerRun: 120, OverheadPct: 20}
	if bad := CompareTelemetryBaselines(base, heavy, 0.20); len(bad) != 1 {
		t.Fatalf("overhead violation not flagged: %v", bad)
	}
}
