package experiments_test

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// ExampleRunDetailed transfers a small file over the paper's 20-node
// testbed with routing state learned in-simulation: the measurement plane
// (probes + LSA floods) warms up, flows start from locally converged state,
// and the RunInfo reports the control plane's convergence and overhead.
func ExampleRunDetailed() {
	opts := experiments.DefaultOptions()
	opts.FileBytes = 16 << 10
	opts.State = experiments.StateLearned
	opts.Warmup = 10 * sim.Second

	info := experiments.RunDetailed(experiments.TestbedTopology(), experiments.MORE,
		[]experiments.Pair{{Src: 3, Dst: 17}}, opts)

	r := info.Results[0]
	fmt.Printf("completed=%v verified=%v\n", r.Completed, r.Verified)
	fmt.Printf("converged=%v control traffic=%v\n",
		info.Convergence > 0, info.ProbeTx+info.FloodTx > 0)
	// Output:
	// completed=true verified=true
	// converged=true control traffic=true
}
