// Package experiments reproduces the thesis' evaluation (Chapter 4) and
// theory measurements (Chapter 5): one driver per table and figure, all
// running the three protocols over the simulated testbed. DESIGN.md carries
// the experiment index; EXPERIMENTS.md records paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exor"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/srcr"
)

// Protocol selects the routing protocol under test.
type Protocol int

// The compared protocols (§4.1.1), plus Srcr with Onoe autorate (§4.4).
const (
	MORE Protocol = iota
	ExOR
	Srcr
	SrcrAutorate
)

// MarshalText renders the protocol name, letting Protocol-keyed maps
// marshal to readable JSON (cmd/morebench -json).
func (p Protocol) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

func (p Protocol) String() string {
	switch p {
	case MORE:
		return "MORE"
	case ExOR:
		return "ExOR"
	case Srcr:
		return "Srcr"
	case SrcrAutorate:
		return "Srcr-autorate"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Options parameterizes a transfer run.
type Options struct {
	// FileBytes per transfer (paper: 5 MB; scaled down by default so the
	// full suite runs in minutes).
	FileBytes int
	// PktSize is the packet payload size (1500 B).
	PktSize int
	// BatchSize is K for MORE and ExOR (32).
	BatchSize int
	// DataRate fixes the 802.11b data rate (5.5 Mb/s in most experiments).
	DataRate sim.Bitrate
	// RateDependentChannel scales delivery probabilities with the transmit
	// rate (graph.RateScale); required for the autorate experiment.
	RateDependentChannel bool
	// CaptureMargin overrides the capture log-odds margin when nonzero.
	CaptureMargin float64
	// SenseRange extends carrier sense by geometry (meters); see
	// sim.Config.SenseRange. The testbed default is 3x the channel's
	// 50%-delivery distance, so a flow's source and forwarders mostly
	// share the medium, as on the paper's 20-node indoor testbed.
	SenseRange float64
	// Seed drives the simulator and workload.
	Seed int64
	// Parallel bounds the worker pool the figure drivers fan their
	// independent runs out over; 0 or 1 runs serially. Per-run seeds are
	// derived from Seed and the item index, never from worker identity, so
	// every figure is byte-identical for any Parallel value. When Trace is
	// set the drivers force serial execution: the trace callback is a
	// single shared sink and concurrent sims would interleave into it.
	Parallel int
	// Deadline bounds each run's simulated time.
	Deadline sim.Time
	// Trace, when set, receives the simulator's medium trace (see
	// internal/trace for a structured recorder).
	Trace func(format string, args ...interface{})
	// Metric selects forwarder ordering for MORE/ExOR (default ETX).
	Metric routing.OrderMetric
	// MORE ablation switches.
	PreCoding              bool
	InnovativeOnly         bool
	CreditOnInnovativeOnly bool
	PruneFraction          float64
}

// DefaultOptions returns the paper's setup at a simulation-friendly file
// size (512 KB instead of 5 MB; the throughput *ratios* are file-size
// independent once transfers span many batches).
func DefaultOptions() Options {
	return Options{
		FileBytes:      512 << 10,
		PktSize:        1500,
		BatchSize:      32,
		DataRate:       sim.Rate5_5,
		SenseRange:     3 * graph.DefaultTestbed().MidRange,
		Seed:           1,
		Deadline:       3600 * sim.Second,
		Metric:         routing.OrderETX,
		PreCoding:      true,
		InnovativeOnly: true,
		PruneFraction:  0.1,
	}
}

func (o Options) file(seed int64) flow.File {
	return flow.NewFile(o.FileBytes, o.PktSize, seed)
}

func (o Options) simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.DataRate = o.DataRate
	cfg.SenseRange = o.SenseRange
	cfg.RefFrameBytes = o.PktSize
	if o.CaptureMargin != 0 {
		cfg.CaptureMargin = o.CaptureMargin
	}
	if o.RateDependentChannel {
		cfg.RateAdjust = sim.AdaptRateScale(graph.RateScale)
	}
	return cfg
}

func (o Options) etxOptions() routing.ETXOptions {
	return routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
}

func (o Options) planOptions() routing.PlanOptions {
	p := routing.DefaultPlanOptions()
	p.Metric = o.Metric
	p.ETX = o.etxOptions()
	p.PruneFraction = o.PruneFraction
	return p
}

// workers returns the driver worker count: Parallel, forced serial when a
// Trace hook is installed (one shared callback must not be invoked from
// concurrent simulations).
func (o Options) workers() int {
	if o.Trace != nil {
		return 1
	}
	return o.Parallel
}

// Pair is a source-destination pair.
type Pair struct {
	Src, Dst graph.NodeID
}

// RandomPairs draws n distinct reachable pairs over the topology.
func RandomPairs(topo *graph.Topology, n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	opt := routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
	seen := map[Pair]bool{}
	var out []Pair
	guard := 0
	for len(out) < n {
		guard++
		if guard > 100*n+1000 {
			break
		}
		p := Pair{
			Src: graph.NodeID(rng.Intn(topo.N())),
			Dst: graph.NodeID(rng.Intn(topo.N())),
		}
		if p.Src == p.Dst || seen[p] {
			continue
		}
		tab := routing.ETXToDestination(topo, p.Dst, opt)
		if math.IsInf(tab.Dist[p.Src], 1) {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Run transfers one file between a single source-destination pair with the
// given protocol and returns the destination-side result.
func Run(topo *graph.Topology, proto Protocol, p Pair, opts Options) flow.Result {
	results := RunFlows(topo, proto, []Pair{p}, opts)
	return results[0]
}

// RunFlows runs len(pairs) concurrent flows of the same protocol and
// returns the per-flow destination-side results (the multi-flow experiment
// of §4.3 uses several pairs; single-flow experiments pass one).
func RunFlows(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options) []flow.Result {
	rs, _ := RunWithCounters(topo, proto, pairs, opts)
	return rs
}

// RunWithCounters is RunFlows plus the run's medium-level counters (used by
// the autorate analysis, §4.4).
func RunWithCounters(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options) ([]flow.Result, sim.Counters) {
	s := sim.New(topo, opts.simConfig())
	if opts.Trace != nil {
		s.Trace = opts.Trace
	}
	oracle := flow.NewOracle(topo, opts.etxOptions())
	remaining := len(pairs)
	results := make([]flow.Result, len(pairs))
	markDone := func(i int) func(flow.Result) {
		return func(r flow.Result) {
			remaining--
		}
	}

	switch proto {
	case MORE:
		cfg := core.DefaultConfig()
		cfg.BatchSize = opts.BatchSize
		cfg.PayloadSize = opts.PktSize
		cfg.Plan = opts.planOptions()
		cfg.PreCoding = opts.PreCoding
		cfg.InnovativeOnly = opts.InnovativeOnly
		cfg.CreditOnInnovativeOnly = opts.CreditOnInnovativeOnly
		nodes := make([]*core.Node, topo.N())
		for i := range nodes {
			nodes[i] = core.NewNode(cfg, oracle)
			s.Attach(graph.NodeID(i), nodes[i])
		}
		for i, p := range pairs {
			f := opts.file(opts.Seed + int64(i))
			nodes[p.Dst].ExpectFlow(flow.ID(i+1), f, nil)
			if err := nodes[p.Src].StartFlow(flow.ID(i+1), p.Dst, f, markDone(i)); err != nil {
				remaining--
			}
		}
		s.RunWhile(opts.Deadline, func() bool { return remaining > 0 })
		for i, p := range pairs {
			results[i] = nodes[p.Dst].Result(flow.ID(i + 1))
		}
	case ExOR:
		cfg := exor.DefaultConfig()
		cfg.BatchSize = opts.BatchSize
		cfg.PayloadSize = opts.PktSize
		cfg.Plan = opts.planOptions()
		nodes := make([]*exor.Node, topo.N())
		for i := range nodes {
			nodes[i] = exor.NewNode(cfg, oracle)
			s.Attach(graph.NodeID(i), nodes[i])
		}
		for i, p := range pairs {
			f := opts.file(opts.Seed + int64(i))
			nodes[p.Dst].ExpectFlow(flow.ID(i+1), f, markDone(i))
			if err := nodes[p.Src].StartFlow(flow.ID(i+1), p.Dst, f, nil); err != nil {
				remaining--
			}
		}
		s.RunWhile(opts.Deadline, func() bool { return remaining > 0 })
		for i, p := range pairs {
			results[i] = nodes[p.Dst].Result(flow.ID(i + 1))
		}
	case Srcr, SrcrAutorate:
		cfg := srcr.DefaultConfig()
		cfg.PayloadSize = opts.PktSize
		cfg.Autorate = proto == SrcrAutorate
		cfg.Reliable = true // fair baseline: complete the file like MORE/ExOR
		nodes := make([]*srcr.Node, topo.N())
		for i := range nodes {
			nodes[i] = srcr.NewNode(cfg, oracle)
			s.Attach(graph.NodeID(i), nodes[i])
		}
		for i, p := range pairs {
			f := opts.file(opts.Seed + int64(i))
			nodes[p.Dst].ExpectFlow(flow.ID(i+1), f, nil)
			if err := nodes[p.Src].StartFlow(flow.ID(i+1), p.Dst, f, markDone(i)); err != nil {
				remaining--
			}
		}
		s.RunWhile(opts.Deadline, func() bool { return remaining > 0 })
		for i, p := range pairs {
			results[i] = nodes[p.Dst].Result(flow.ID(i + 1))
		}
	default:
		panic("experiments: unknown protocol")
	}

	// Normalize: incomplete transfers end at the deadline.
	for i := range results {
		if results[i].End == 0 {
			results[i].End = s.Now()
		}
		if !results[i].Completed && results[i].End < s.Now() {
			// Throughput of an unfinished flow is measured over the whole
			// run, as a stalled flow occupies its slot the whole time.
			results[i].End = s.Now()
		}
		results[i].Src = pairs[i].Src
		results[i].Dst = pairs[i].Dst
	}
	return results, s.Counters
}

// SpatialReusePairs finds source-destination pairs whose best ETX path has
// at least minHops hops and whose first-hop transmitter is outside carrier
// sense range of the last-hop transmitter — Fig 4-4's selection rule ("the
// last hop can transmit concurrently with the first hop"). senseThreshold
// and senseRange must match the simulator configuration.
func SpatialReusePairs(topo *graph.Topology, minHops int, senseThreshold, senseRange float64) []Pair {
	opt := routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
	senses := func(a, b graph.NodeID) bool {
		if topo.Prob(a, b) > senseThreshold {
			return true
		}
		return senseRange > 0 && topo.Pos[a].Distance(topo.Pos[b]) <= senseRange
	}
	var out []Pair
	for dst := 0; dst < topo.N(); dst++ {
		tab := routing.ETXToDestination(topo, graph.NodeID(dst), opt)
		for src := 0; src < topo.N(); src++ {
			if src == dst {
				continue
			}
			path := tab.Path(graph.NodeID(src))
			if path == nil || len(path)-1 < minHops {
				continue
			}
			firstTx := path[0]
			lastTx := path[len(path)-2]
			if !senses(firstTx, lastTx) && !senses(lastTx, firstTx) {
				out = append(out, Pair{Src: graph.NodeID(src), Dst: graph.NodeID(dst)})
			}
		}
	}
	return out
}

// routingOrderEOTX re-exports the EOTX ordering constant for callers that
// do not import routing directly.
func routingOrderEOTX() routing.OrderMetric { return routing.OrderEOTX }
