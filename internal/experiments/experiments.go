// Package experiments reproduces the thesis' evaluation (Chapter 4) and
// theory measurements (Chapter 5): one driver per table and figure, all
// running the three protocols over the simulated testbed with the §4.1.2
// setup (20 nodes, 5.5 Mb/s, 1500 B packets, K = 32). Beyond the paper it
// adds the large-topology scaling sweep (random-geometric meshes the
// 20-node testbed could not ask about) and the oracle-vs-learned gap
// experiments of learned.go, which run the §3.2.1(b) measurement plane
// inside the simulation and price the paper's free global ETX oracle.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/exor"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/linkstate"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/srcr"
	"repro/internal/telemetry"
)

// Protocol selects the routing protocol under test.
type Protocol int

// The compared protocols (§4.1.1), plus Srcr with Onoe autorate (§4.4).
const (
	MORE Protocol = iota
	ExOR
	Srcr
	SrcrAutorate
)

// MarshalText renders the protocol name, letting Protocol-keyed maps
// marshal to readable JSON (cmd/morebench -json).
func (p Protocol) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

func (p Protocol) String() string {
	switch p {
	case MORE:
		return "MORE"
	case ExOR:
		return "ExOR"
	case Srcr:
		return "Srcr"
	case SrcrAutorate:
		return "Srcr-autorate"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// StateMode selects the routing-state provider for a run.
type StateMode int

// The two control planes: the global oracle of §4.1.2's pre-measurement
// step, and the over-the-air learned state of §3.2.1(b).
const (
	StateOracle StateMode = iota
	StateLearned
)

func (m StateMode) String() string {
	switch m {
	case StateOracle:
		return "oracle"
	case StateLearned:
		return "learned"
	default:
		return fmt.Sprintf("StateMode(%d)", int(m))
	}
}

// MarshalText lets StateMode fields render readably in -json output.
func (m StateMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses the MarshalText form back (JSON round trips).
func (m *StateMode) UnmarshalText(text []byte) error {
	v, err := ParseStateMode(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseStateMode parses a -state flag value.
func ParseStateMode(s string) (StateMode, error) {
	switch s {
	case "oracle":
		return StateOracle, nil
	case "learned":
		return StateLearned, nil
	default:
		return 0, fmt.Errorf("experiments: unknown state mode %q (want oracle or learned)", s)
	}
}

// Options parameterizes a transfer run.
type Options struct {
	// FileBytes per transfer (paper: 5 MB; scaled down by default so the
	// full suite runs in minutes).
	FileBytes int
	// PktSize is the packet payload size (1500 B).
	PktSize int
	// BatchSize is K for MORE and ExOR (32).
	BatchSize int
	// DataRate fixes the 802.11b data rate (5.5 Mb/s in most experiments).
	DataRate sim.Bitrate
	// RateDependentChannel scales delivery probabilities with the transmit
	// rate (graph.RateScale); required for the autorate experiment.
	RateDependentChannel bool
	// CaptureMargin overrides the capture log-odds margin when nonzero.
	CaptureMargin float64
	// SenseRange extends carrier sense by geometry (meters); see
	// sim.Config.SenseRange. The testbed default is 3x the channel's
	// 50%-delivery distance, so a flow's source and forwarders mostly
	// share the medium, as on the paper's 20-node indoor testbed.
	SenseRange float64
	// Seed drives the simulator and workload.
	Seed int64
	// Parallel bounds the worker pool the figure drivers fan their
	// independent runs out over; 0 or 1 runs serially. Per-run seeds are
	// derived from Seed and the item index, never from worker identity, so
	// every figure is byte-identical for any Parallel value. When Trace is
	// set the drivers force serial execution: the trace callback is a
	// single shared sink and concurrent sims would interleave into it.
	Parallel int
	// Deadline bounds each run's simulated transfer time, measured from
	// when flows start (after any learned-state warmup).
	Deadline sim.Time
	// Trace, when set, receives the simulator's medium trace (debug
	// strings; see Telemetry for the typed plane).
	Trace func(format string, args ...interface{})
	// Telemetry, when set, receives every typed simulation event
	// (sim.Simulator.Telem). Pass a *telemetry.Hub for metrics and the
	// flight recorder, or a bare trace.Recorder for just a ring. Like
	// Trace, a shared sink forces the figure drivers serial.
	Telemetry telemetry.Sink
	// Metric selects forwarder ordering for MORE/ExOR (default ETX).
	Metric routing.OrderMetric
	// State selects where routing state comes from: StateOracle (default)
	// hands every node the global ground-truth ETX table, as the paper's
	// pre-measurement step does; StateLearned runs the §3.2.1(b)
	// measurement plane inside the simulation — every node probes, floods
	// LSAs, and routes from its own locally converged loss-annotated graph.
	State StateMode
	// LinkState configures the measurement plane for learned-state runs.
	// The zero value uses linkstate.DefaultConfig().
	LinkState linkstate.Config
	// Warmup is how long the measurement plane runs before flows start in
	// learned-state runs. Zero uses the 30 s default; negative disables
	// the warmup entirely (flows start cold, measuring convergence under
	// load). The transfer deadline starts after the warmup, so oracle and
	// learned flows get the same simulated transfer time.
	Warmup sim.Time
	// Recompute rate-limits each node's learned-view rebuilds (default 1 s
	// of simulated time between topology/table recomputations).
	Recompute sim.Time
	// CC configures the congestion-control layer between every node's
	// protocol and MAC. The zero value (policy "none") installs no layer:
	// runs are byte-identical to the pre-congestion code.
	CC congest.Config
	// LoadPenalty arms the load-aware cost plane: the ETX penalty, in
	// expected-transmission units, of routing through a fully saturated
	// forwarder (routing.CostModel). The congest layer's per-node load
	// scores — queue-depth EWMA, drop rate, grant starvation — feed the
	// model: sampled globally under oracle state, carried on LSAs under
	// learned state. Nonzero values force CC.LoadExport on. Zero (the
	// default) installs no model anywhere; runs are byte-identical to
	// loss-only routing.
	LoadPenalty float64
	// Repair arms the protocols' route-repair watchdogs (core/exor
	// Config.RepairInterval, srcr's FIN-stall reroute): a source stalled
	// for this long replans from current routing state instead of spinning
	// on a dead route. Zero (the default) disables repair; runs are
	// byte-identical to the pre-repair code.
	Repair sim.Time
	// Schedule, when set, is invoked by RunDetailed after the learned
	// warmup and just before flows start — the injection point for
	// topology events (node crashes, link flaps) and reconvergence
	// instrumentation in churn experiments. Ordinary runs leave it nil.
	Schedule func(s *sim.Simulator, cp *ControlPlane, flowsStart sim.Time)
	// MORE ablation switches.
	PreCoding              bool
	InnovativeOnly         bool
	CreditOnInnovativeOnly bool
	PruneFraction          float64
}

// DefaultOptions returns the paper's setup at a simulation-friendly file
// size (512 KB instead of 5 MB; the throughput *ratios* are file-size
// independent once transfers span many batches).
func DefaultOptions() Options {
	return Options{
		FileBytes:      512 << 10,
		PktSize:        1500,
		BatchSize:      32,
		DataRate:       sim.Rate5_5,
		SenseRange:     3 * graph.DefaultTestbed().MidRange,
		Seed:           1,
		Deadline:       3600 * sim.Second,
		Metric:         routing.OrderETX,
		PreCoding:      true,
		InnovativeOnly: true,
		PruneFraction:  0.1,
	}
}

func (o Options) file(seed int64) flow.File {
	return flow.NewFile(o.FileBytes, o.PktSize, seed)
}

// SimConfig derives the simulator configuration for a run (exported so the
// scenario executor compiles specs onto the same substrate the figure
// drivers use).
func (o Options) SimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.DataRate = o.DataRate
	cfg.SenseRange = o.SenseRange
	cfg.RefFrameBytes = o.PktSize
	if o.CaptureMargin != 0 {
		cfg.CaptureMargin = o.CaptureMargin
	}
	if o.RateDependentChannel {
		cfg.RateAdjust = sim.AdaptRateScale(graph.RateScale)
	}
	return cfg
}

// ETXOpts returns the ETX computation options every run routes with.
func (o Options) ETXOpts() routing.ETXOptions {
	return routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
}

// PlanOpts returns the forwarder-plan options for MORE/ExOR sources.
func (o Options) PlanOpts() routing.PlanOptions {
	p := routing.DefaultPlanOptions()
	p.Metric = o.Metric
	p.ETX = o.ETXOpts()
	p.PruneFraction = o.PruneFraction
	return p
}

// CoreConfig, ExorConfig, and SrcrConfig assemble the per-protocol node
// configurations for a run. RunDetailed and the scenario executor both
// build nodes from these, so a new Options knob wired in here reaches
// every runner — flag-driven and declarative — at once.

// CoreConfig returns the MORE node configuration.
func (o Options) CoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.BatchSize = o.BatchSize
	cfg.PayloadSize = o.PktSize
	cfg.Plan = o.PlanOpts()
	cfg.PreCoding = o.PreCoding
	cfg.InnovativeOnly = o.InnovativeOnly
	cfg.CreditOnInnovativeOnly = o.CreditOnInnovativeOnly
	cfg.RepairInterval = o.Repair
	return cfg
}

// ExorConfig returns the ExOR node configuration.
func (o Options) ExorConfig() exor.Config {
	cfg := exor.DefaultConfig()
	cfg.BatchSize = o.BatchSize
	cfg.PayloadSize = o.PktSize
	cfg.Plan = o.PlanOpts()
	cfg.RepairInterval = o.Repair
	return cfg
}

// SrcrConfig returns the Srcr node configuration. Reliable is on: the
// best-path baseline completes its file like MORE and ExOR do (push
// sources bypass the ARQ regardless).
func (o Options) SrcrConfig(autorate bool) srcr.Config {
	cfg := srcr.DefaultConfig()
	cfg.PayloadSize = o.PktSize
	cfg.Autorate = autorate
	cfg.Reliable = true
	cfg.RepairInterval = o.Repair
	return cfg
}

// workers returns the driver worker count: Parallel, forced serial when a
// Trace hook or telemetry sink is installed (one shared callback must not
// be invoked from concurrent simulations).
func (o Options) workers() int {
	if o.Trace != nil || o.Telemetry != nil {
		return 1
	}
	return o.Parallel
}

// Pair is a source-destination pair.
type Pair struct {
	Src, Dst graph.NodeID
}

// RandomPairs draws n distinct reachable pairs over the topology.
func RandomPairs(topo *graph.Topology, n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	opt := routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
	seen := map[Pair]bool{}
	var out []Pair
	guard := 0
	for len(out) < n {
		guard++
		if guard > 100*n+1000 {
			break
		}
		p := Pair{
			Src: graph.NodeID(rng.Intn(topo.N())),
			Dst: graph.NodeID(rng.Intn(topo.N())),
		}
		if p.Src == p.Dst || seen[p] {
			continue
		}
		tab := routing.ETXToDestination(topo, p.Dst, opt)
		if math.IsInf(tab.Dist[p.Src], 1) {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Run transfers one file between a single source-destination pair with the
// given protocol and returns the destination-side result.
func Run(topo *graph.Topology, proto Protocol, p Pair, opts Options) flow.Result {
	results := RunFlows(topo, proto, []Pair{p}, opts)
	return results[0]
}

// RunFlows runs len(pairs) concurrent flows of the same protocol and
// returns the per-flow destination-side results (the multi-flow experiment
// of §4.3 uses several pairs; single-flow experiments pass one).
func RunFlows(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options) []flow.Result {
	rs, _ := RunWithCounters(topo, proto, pairs, opts)
	return rs
}

// RunWithCounters is RunFlows plus the run's medium-level counters (used by
// the autorate analysis, §4.4).
func RunWithCounters(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options) ([]flow.Result, sim.Counters) {
	info := RunDetailed(topo, proto, pairs, opts)
	return info.Results, info.Counters
}

// RunInfo is the full outcome of a run: per-flow results, medium counters,
// and — for learned-state runs — the measurement plane's convergence and
// overhead accounting.
type RunInfo struct {
	Results  []flow.Result
	Counters sim.Counters

	// State echoes the routing-state mode the run used.
	State StateMode
	// Convergence is the simulated time at which every node's LSA database
	// first covered every origin (full topology knowledge). 0 for oracle
	// runs; -1 if the warmup ended before full coverage.
	Convergence sim.Time
	// ProbeTx and FloodTx count the measurement plane's transmissions
	// (probe broadcasts; own + rebroadcast LSAs) across all nodes. They are
	// included in Counters.Transmissions — control traffic shares the
	// medium with data, which is exactly the cost under study.
	ProbeTx, FloodTx int64

	// CC echoes the congestion policy the run used, and CCStats aggregates
	// every node's congestion-layer accounting (zero when the policy is
	// "none").
	CC      congest.Policy
	CCStats congest.Stats
	// Fairness summarizes the per-flow outcome (per-flow throughput and
	// transmissions, Jain's fairness index).
	Fairness FairnessReport

	// Telemetry is the metrics snapshot when Options.Telemetry was a
	// *telemetry.Hub; nil otherwise, and omitted from JSON so legacy
	// output is unchanged.
	Telemetry *telemetry.Report `json:",omitempty"`
}

// ControlPlane carries the per-run control-plane wiring: one routing-state
// provider per node (the same oracle for every node, or a per-node learned
// view), the link-state agents behind learned views, and the congestion
// layers wrapped around the data protocols. It is the machinery RunDetailed
// always used, exported so the scenario executor (internal/scenario) can
// compile declarative specs onto exactly the same stack.
type ControlPlane struct {
	n         int
	providers []flow.RoutingState
	agents    []*linkstate.Agent
	oracle    *flow.Oracle
	cc        congest.Config
	layers    []*congest.Layer
	// layerByID indexes the congestion layers by node for the cost plane
	// and the queue high-water export (layers holds attach order).
	layerByID []*congest.Layer

	// costs[i] is node i's routing.CostModel (nil when LoadPenalty is 0):
	// the shared global sampler under oracle state, a per-node
	// linkstate.LoadCost under learned state.
	costs []routing.CostModel
	// loadOracle is the oracle-mode snapshot model (nil otherwise).
	loadOracle *oracleLoad
}

// loadRefresh is the oracle-mode load sampling cadence: the global
// knowledge fiction refreshes every node's load score this often and
// invalidates the oracle when anything moved, mirroring the granularity a
// learned run gets from LSA floods.
const loadRefresh = 2 * sim.Second

// oracleLoad is the oracle-state routing.CostModel: a periodically
// refreshed snapshot of every node's quantized load score. It prices load
// from the same congest.Layer.LoadByte quantization LSAs carry, so
// perfect and learned knowledge sit on one scale; snapshotting (rather
// than reading layers live) keeps the oracle's cached tables coherent
// between refreshes.
type oracleLoad struct {
	weight  float64
	scores  []uint8
	started bool
}

// NodePenalty implements routing.CostModel.
func (m *oracleLoad) NodePenalty(id graph.NodeID) float64 {
	return m.weight * float64(m.scores[id]) / 255
}

// NewControlPlane builds the control plane for a run over topo.
func NewControlPlane(topo *graph.Topology, opts Options) *ControlPlane {
	n := topo.N()
	cp := &ControlPlane{n: n, providers: make([]flow.RoutingState, n), cc: opts.CC}
	if opts.LoadPenalty > 0 {
		// The cost plane needs the layers' load signals on the wire/in the
		// counters regardless of what the spec said about export.
		cp.cc.LoadExport = true
		cp.costs = make([]routing.CostModel, n)
	}
	cp.layerByID = make([]*congest.Layer, n)
	if opts.State == StateLearned {
		recompute := opts.Recompute
		if recompute == 0 {
			recompute = sim.Second
		}
		cp.agents = make([]*linkstate.Agent, n)
		for i := range cp.agents {
			cp.agents[i] = linkstate.NewAgent(opts.LinkState, n)
			etx := opts.ETXOpts()
			if cp.costs != nil {
				cp.costs[i] = &linkstate.LoadCost{Agent: cp.agents[i], Weight: opts.LoadPenalty}
				etx.Cost = cp.costs[i]
			}
			cp.providers[i] = linkstate.NewView(cp.agents[i], etx, recompute)
		}
		return cp
	}
	etx := opts.ETXOpts()
	if cp.costs != nil {
		cp.loadOracle = &oracleLoad{weight: opts.LoadPenalty, scores: make([]uint8, n)}
		for i := range cp.costs {
			cp.costs[i] = cp.loadOracle
		}
		etx.Cost = cp.loadOracle
	}
	cp.oracle = flow.NewOracle(topo, etx)
	for i := range cp.providers {
		cp.providers[i] = cp.oracle
	}
	return cp
}

// CostModel returns node id's routing.CostModel for forwarder-plan
// construction, or nil when the load-aware cost plane is off.
func (cp *ControlPlane) CostModel(id graph.NodeID) routing.CostModel {
	if cp.costs == nil {
		return nil
	}
	return cp.costs[id]
}

// Provider returns the routing-state provider node id routes from.
func (cp *ControlPlane) Provider(id graph.NodeID) flow.RoutingState {
	return cp.providers[id]
}

// Oracle returns the shared ground-truth oracle, or nil for learned-state
// runs. Scenario schedules invalidate it after mutating the topology.
func (cp *ControlPlane) Oracle() *flow.Oracle { return cp.oracle }

// Learned reports whether routing state is learned over the air.
func (cp *ControlPlane) Learned() bool { return cp.agents != nil }

// Attach installs the node's data protocol, wrapping it in a congestion
// layer when one is configured and stacking the link-state agent above it
// (higher priority: control frames are small and periodic) when the run
// learns its state over the air.
func (cp *ControlPlane) Attach(s *sim.Simulator, id graph.NodeID, p sim.Protocol) {
	if cp.cc.Policy != congest.None {
		l := congest.New(cp.cc, p)
		cp.layers = append(cp.layers, l)
		cp.layerByID[id] = l
		if cp.cc.LoadExport && cp.agents != nil {
			// Learned state: the node's congestion score rides its LSAs.
			cp.agents[id].SetLoadFunc(l.LoadByte)
		}
		p = l
	}
	if cp.agents != nil {
		s.Attach(id, sim.NewStack(cp.agents[id], p))
		return
	}
	s.Attach(id, p)
}

// WithNodeCost injects node id's cost model into a forwarder-plan options
// value (both metrics); a no-op when the load-aware cost plane is off, so
// legacy plans stay bit-identical.
func (cp *ControlPlane) WithNodeCost(id graph.NodeID, p routing.PlanOptions) routing.PlanOptions {
	if m := cp.CostModel(id); m != nil {
		p.ETX.Cost = m
		p.EOTX.Cost = m
	}
	return p
}

// loadOracleDelta is the quantized-load swing a node must show before the
// oracle reprices it (same hysteresis as the LSA path's trigger delta):
// repricing invalidates every cached plan, and replanning mid-batch on
// 1/255-step EWMA wiggle churns forwarder sets faster than the traffic
// can amortize them — the cure becomes the congestion.
const loadOracleDelta = 16

// startLoadSampler begins the oracle-mode load refresh loop: every
// loadRefresh it snapshots each layer's quantized load score and, when
// any node's score swung by loadOracleDelta or more, invalidates the
// oracle so routes and plans rebuild on the new prices. Never scheduled
// when the cost plane is off, keeping the legacy event stream untouched.
func (cp *ControlPlane) startLoadSampler(s *sim.Simulator) {
	lo := cp.loadOracle
	if lo == nil || lo.started {
		return
	}
	lo.started = true
	var tick func()
	tick = func() {
		changed := false
		for id, l := range cp.layerByID {
			var b uint8
			if l != nil {
				b = l.LoadByte()
			}
			d := int(b) - int(lo.scores[id])
			if d < 0 {
				d = -d
			}
			if d >= loadOracleDelta {
				lo.scores[id] = b
				changed = true
			}
		}
		if changed && cp.oracle != nil {
			cp.oracle.Invalidate()
		}
		s.After(loadRefresh, tick)
	}
	s.After(loadRefresh, tick)
}

// QueueHighWater returns the per-node congestion-queue high-water marks
// for sim.Counters.QueueHWM, or nil when load export is off (legacy
// result documents stay byte-identical).
func (cp *ControlPlane) QueueHighWater() []int64 {
	if !cp.cc.LoadExport || len(cp.layers) == 0 {
		return nil
	}
	out := make([]int64, cp.n)
	for id, l := range cp.layerByID {
		if l != nil {
			out[id] = l.QueueHWM()
		}
	}
	return out
}

// converged reports whether every agent's LSA database covers every origin.
func (cp *ControlPlane) converged(n int) bool {
	for _, a := range cp.agents {
		if a.KnownOrigins() < n {
			return false
		}
	}
	return true
}

// Warmup lets the measurement plane flood before flows start and returns
// the convergence time (see RunInfo.Convergence).
func (cp *ControlPlane) Warmup(s *sim.Simulator, topo *graph.Topology, opts Options) sim.Time {
	cp.startLoadSampler(s)
	if cp.agents == nil {
		return 0
	}
	warmup := opts.Warmup
	if warmup == 0 {
		warmup = 30 * sim.Second
	}
	if warmup < 0 {
		return -1 // cold start: flows begin before any flood completes
	}
	conv := sim.Time(-1)
	n := topo.N()
	s.RunWhile(warmup, func() bool {
		if conv < 0 && cp.converged(n) {
			conv = s.Now()
		}
		return true
	})
	if conv < 0 && cp.converged(n) {
		conv = s.Now()
	}
	return conv
}

// StartFlow launches one flow. Under the oracle a start failure is final
// (the ground truth says the destination is unreachable, as before). Under
// learned state the view may simply not have converged yet — a cold start
// with Warmup < 0, or a short warmup — so the start is retried each second
// of simulated time until it succeeds or the deadline passes.
func (cp *ControlPlane) StartFlow(s *sim.Simulator, deadline sim.Time, try func() error, onFail func()) {
	if cp.agents == nil {
		if try() != nil {
			onFail()
		}
		return
	}
	var attempt func()
	attempt = func() {
		if try() == nil {
			return
		}
		if s.Now()+sim.Second >= deadline {
			onFail()
			return
		}
		s.After(sim.Second, attempt)
	}
	attempt()
}

// TransferCond wraps a transfer's completion condition with convergence
// tracking: a cold-started learned run converges under load, after flows
// have begun, so the warmup-phase check alone would report -1.
func (cp *ControlPlane) TransferCond(s *sim.Simulator, n int, conv *sim.Time, done func() bool) func() bool {
	if cp.agents == nil {
		return done
	}
	return func() bool {
		if *conv < 0 && cp.converged(n) {
			*conv = s.Now()
		}
		return done()
	}
}

// ControlTx sums the measurement plane's transmissions (probe broadcasts,
// own + rebroadcast LSAs) across all nodes.
func (cp *ControlPlane) ControlTx() (probeTx, floodTx int64) {
	for _, a := range cp.agents {
		probeTx += a.ProbeTx()
		floodTx += a.FloodTx
	}
	return probeTx, floodTx
}

// CCStats aggregates every congestion layer's accounting.
func (cp *ControlPlane) CCStats() congest.Stats {
	var st congest.Stats
	for _, l := range cp.layers {
		st.Add(l.Stats)
	}
	return st
}

// QueuedData counts frames currently held in congestion-layer queues —
// traffic pulled from the protocols but not yet on the air. The scenario
// executor's drain phase runs until this (and the MACs) empties, so
// datagrams already committed to a queue get their chance to fly after
// every flow has met its schedule. Queues stranded on failed nodes are
// excluded: they will never drain.
func (cp *ControlPlane) QueuedData() int {
	total := 0
	for _, l := range cp.layers {
		if n := l.Node(); n != nil && n.Failed() {
			continue
		}
		total += l.QueueLen()
	}
	return total
}

// RunDetailed is the full-fidelity runner behind RunWithCounters: it wires
// the selected control plane (oracle or learned), runs the measurement
// warmup when learning, transfers every flow, and reports convergence and
// control-plane overhead alongside the results.
func RunDetailed(topo *graph.Topology, proto Protocol, pairs []Pair, opts Options) RunInfo {
	s := sim.New(topo, opts.SimConfig())
	if opts.Trace != nil {
		s.Trace = opts.Trace
	}
	if opts.Telemetry != nil {
		s.Telem = opts.Telemetry
	}
	cp := NewControlPlane(topo, opts)
	remaining := len(pairs)
	results := make([]flow.Result, len(pairs))
	markDone := func(i int) func(flow.Result) {
		return func(r flow.Result) {
			remaining--
		}
	}

	switch proto {
	case MORE:
		cfg := opts.CoreConfig()
		nodes := make([]*core.Node, topo.N())
		for i := range nodes {
			ncfg := cfg
			ncfg.Plan = cp.WithNodeCost(graph.NodeID(i), cfg.Plan)
			nodes[i] = core.NewNode(ncfg, cp.Provider(graph.NodeID(i)))
			cp.Attach(s, graph.NodeID(i), nodes[i])
		}
		conv := cp.Warmup(s, topo, opts)
		deadline := s.Now() + opts.Deadline
		if opts.Schedule != nil {
			opts.Schedule(s, cp, s.Now())
		}
		for i, p := range pairs {
			i, p := i, p
			f := opts.file(opts.Seed + int64(i))
			nodes[p.Dst].ExpectFlow(flow.ID(i+1), f, nil)
			cp.StartFlow(s, deadline, func() error {
				return nodes[p.Src].StartFlow(flow.ID(i+1), p.Dst, f, markDone(i))
			}, func() { remaining-- })
		}
		s.RunWhile(deadline, cp.TransferCond(s, topo.N(), &conv, func() bool { return remaining > 0 }))
		for i, p := range pairs {
			results[i] = nodes[p.Dst].Result(flow.ID(i + 1))
		}
		return finishRun(s, cp, pairs, results, opts, conv)
	case ExOR:
		cfg := opts.ExorConfig()
		nodes := make([]*exor.Node, topo.N())
		for i := range nodes {
			ncfg := cfg
			ncfg.Plan = cp.WithNodeCost(graph.NodeID(i), cfg.Plan)
			nodes[i] = exor.NewNode(ncfg, cp.Provider(graph.NodeID(i)))
			cp.Attach(s, graph.NodeID(i), nodes[i])
		}
		conv := cp.Warmup(s, topo, opts)
		deadline := s.Now() + opts.Deadline
		if opts.Schedule != nil {
			opts.Schedule(s, cp, s.Now())
		}
		for i, p := range pairs {
			i, p := i, p
			f := opts.file(opts.Seed + int64(i))
			nodes[p.Dst].ExpectFlow(flow.ID(i+1), f, markDone(i))
			cp.StartFlow(s, deadline, func() error {
				return nodes[p.Src].StartFlow(flow.ID(i+1), p.Dst, f, nil)
			}, func() { remaining-- })
		}
		s.RunWhile(deadline, cp.TransferCond(s, topo.N(), &conv, func() bool { return remaining > 0 }))
		for i, p := range pairs {
			results[i] = nodes[p.Dst].Result(flow.ID(i + 1))
		}
		return finishRun(s, cp, pairs, results, opts, conv)
	case Srcr, SrcrAutorate:
		cfg := opts.SrcrConfig(proto == SrcrAutorate)
		nodes := make([]*srcr.Node, topo.N())
		for i := range nodes {
			nodes[i] = srcr.NewNode(cfg, cp.Provider(graph.NodeID(i)))
			cp.Attach(s, graph.NodeID(i), nodes[i])
		}
		conv := cp.Warmup(s, topo, opts)
		deadline := s.Now() + opts.Deadline
		if opts.Schedule != nil {
			opts.Schedule(s, cp, s.Now())
		}
		for i, p := range pairs {
			i, p := i, p
			f := opts.file(opts.Seed + int64(i))
			nodes[p.Dst].ExpectFlow(flow.ID(i+1), f, nil)
			cp.StartFlow(s, deadline, func() error {
				return nodes[p.Src].StartFlow(flow.ID(i+1), p.Dst, f, markDone(i))
			}, func() { remaining-- })
		}
		s.RunWhile(deadline, cp.TransferCond(s, topo.N(), &conv, func() bool { return remaining > 0 }))
		for i, p := range pairs {
			results[i] = nodes[p.Dst].Result(flow.ID(i + 1))
		}
		return finishRun(s, cp, pairs, results, opts, conv)
	default:
		panic("experiments: unknown protocol")
	}
}

// finishRun normalizes results (incomplete transfers end at the deadline)
// and assembles the RunInfo.
func finishRun(s *sim.Simulator, cp *ControlPlane, pairs []Pair, results []flow.Result, opts Options, conv sim.Time) RunInfo {
	for i := range results {
		if results[i].End == 0 {
			results[i].End = s.Now()
		}
		if !results[i].Completed && results[i].End < s.Now() {
			// Throughput of an unfinished flow is measured over the whole
			// run, as a stalled flow occupies its slot the whole time.
			results[i].End = s.Now()
		}
		results[i].Src = pairs[i].Src
		results[i].Dst = pairs[i].Dst
		// Per-flow transmission attribution: every data frame (and
		// protocol-level ACK/NACK) carries its flow ID through the MAC, so
		// multi-flow runs report each flow's own cost instead of the
		// run-wide counter the MORE source used to record.
		results[i].Transmissions = s.Counters.TxByFlow[uint32(i+1)]
	}
	s.Counters.QueueHWM = cp.QueueHighWater()
	info := RunInfo{
		Results:     results,
		Counters:    s.Counters,
		State:       opts.State,
		Convergence: conv,
		CC:          opts.CC.Policy,
	}
	info.ProbeTx, info.FloodTx = cp.ControlTx()
	info.CCStats = cp.CCStats()
	info.Fairness = BuildFairness(results, s.Counters)
	if h, ok := opts.Telemetry.(*telemetry.Hub); ok {
		info.Telemetry = h.Report()
	}
	return info
}

// SpatialReusePairs finds source-destination pairs whose best ETX path has
// at least minHops hops and whose first-hop transmitter is outside carrier
// sense range of the last-hop transmitter — Fig 4-4's selection rule ("the
// last hop can transmit concurrently with the first hop"). senseThreshold
// and senseRange must match the simulator configuration.
func SpatialReusePairs(topo *graph.Topology, minHops int, senseThreshold, senseRange float64) []Pair {
	opt := routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true}
	senses := func(a, b graph.NodeID) bool {
		if topo.Prob(a, b) > senseThreshold {
			return true
		}
		return senseRange > 0 && topo.Pos[a].Distance(topo.Pos[b]) <= senseRange
	}
	var out []Pair
	for dst := 0; dst < topo.N(); dst++ {
		tab := routing.ETXToDestination(topo, graph.NodeID(dst), opt)
		for src := 0; src < topo.N(); src++ {
			if src == dst {
				continue
			}
			path := tab.Path(graph.NodeID(src))
			if path == nil || len(path)-1 < minHops {
				continue
			}
			firstTx := path[0]
			lastTx := path[len(path)-2]
			if !senses(firstTx, lastTx) && !senses(lastTx, firstTx) {
				out = append(out, Pair{Src: graph.NodeID(src), Dst: graph.NodeID(dst)})
			}
		}
	}
	return out
}

// routingOrderEOTX re-exports the EOTX ordering constant for callers that
// do not import routing directly.
func routingOrderEOTX() routing.OrderMetric { return routing.OrderEOTX }
