package experiments

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Telemetry overhead guard (`morebench -telemetry-baseline`): times the
// same deterministic MORE transfer with telemetry off and with a full Hub
// installed, and gates both against BENCH_telemetry.json — the off path
// must stay within noise of the pre-telemetry baseline (the nil check is
// the whole cost), the on path within a bounded overhead of off.

// TelemetryBenchResult is the measured pair (BENCH_telemetry.json).
type TelemetryBenchResult struct {
	// Workload names the timed scenario.
	Workload string `json:"workload"`
	// Runs is how many repetitions each timing took the minimum over.
	Runs int `json:"runs"`
	// OffNsPerRun / OnNsPerRun are the best (minimum) wall-clock times of
	// one full simulation run with telemetry off / with a Hub installed.
	OffNsPerRun float64 `json:"off_ns_per_run"`
	OnNsPerRun  float64 `json:"on_ns_per_run"`
	// OverheadPct is 100*(On-Off)/Off.
	OverheadPct float64 `json:"overhead_pct"`
	// Events is the event count one instrumented run emits.
	Events int64 `json:"events"`
}

// telemetryWorkload builds the timed scenario: a 128 KB MORE transfer
// across the paper's 20-node testbed — enough traffic to emit tens of
// thousands of events, small enough to repeat many times.
func telemetryWorkload() (*graph.Topology, Pair, Options) {
	topo := graph.Testbed(graph.DefaultTestbed(), 7)
	opts := DefaultOptions()
	opts.FileBytes = 128 << 10
	opts.Seed = 7
	return topo, Pair{Src: 0, Dst: 19}, opts
}

// TelemetryBench runs the workload `runs` times per mode and keeps the
// minimum — the standard way to strip scheduler noise from a
// deterministic, allocation-stable benchmark.
func TelemetryBench(runs int) *TelemetryBenchResult {
	if runs <= 0 {
		runs = 5
	}
	topo, pair, opts := telemetryWorkload()
	res := &TelemetryBenchResult{Workload: "more-testbed-128k", Runs: runs}

	timeRuns := func(instrument bool) float64 {
		best := time.Duration(0)
		for i := 0; i < runs; i++ {
			o := opts
			var hub *telemetry.Hub
			if instrument {
				hub = telemetry.NewHub(telemetry.Config{})
				o.Telemetry = hub
			}
			start := time.Now()
			RunDetailed(topo, MORE, []Pair{pair}, o)
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
			if hub != nil && res.Events == 0 {
				res.Events = hub.Events()
			}
		}
		return float64(best.Nanoseconds())
	}

	res.OffNsPerRun = timeRuns(false)
	res.OnNsPerRun = timeRuns(true)
	if res.OffNsPerRun > 0 {
		res.OverheadPct = 100 * (res.OnNsPerRun - res.OffNsPerRun) / res.OffNsPerRun
	}
	return res
}

// Table renders the result.
func (r *TelemetryBenchResult) Table() string {
	return fmt.Sprintf(
		"telemetry overhead (%s, min of %d runs):\n  off %8.2f ms/run\n  on  %8.2f ms/run  (+%.1f%%, %d events)\n",
		r.Workload, r.Runs, r.OffNsPerRun/1e6, r.OnNsPerRun/1e6, r.OverheadPct, r.Events)
}

// TelemetryOverheadLimitPct is the acceptance bound on enabled-telemetry
// overhead (ISSUE 9: "enabled within 10%").
const TelemetryOverheadLimitPct = 10.0

// CompareTelemetryBaselines gates cur against base: the telemetry-off
// time must be within offTol (fractional, e.g. 0.20) of the baseline's
// off time — proving the nil-check path didn't slow the simulator — and
// cur's measured overhead must not exceed TelemetryOverheadLimitPct.
// Returns one message per violation.
func CompareTelemetryBaselines(base, cur *TelemetryBenchResult, offTol float64) []string {
	var bad []string
	if base != nil && base.OffNsPerRun > 0 && cur.OffNsPerRun > base.OffNsPerRun*(1+offTol) {
		bad = append(bad, fmt.Sprintf(
			"telemetry-off run time regressed: %.2f ms vs baseline %.2f ms (+%.0f%%, tolerance %.0f%%)",
			cur.OffNsPerRun/1e6, base.OffNsPerRun/1e6,
			100*(cur.OffNsPerRun/base.OffNsPerRun-1), 100*offTol))
	}
	if cur.OverheadPct > TelemetryOverheadLimitPct {
		bad = append(bad, fmt.Sprintf(
			"telemetry-on overhead %.1f%% exceeds the %.0f%% bound",
			cur.OverheadPct, TelemetryOverheadLimitPct))
	}
	return bad
}
