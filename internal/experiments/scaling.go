package experiments

import (
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sim"
)

// ScalingConfig parameterizes the large-topology scaling sweep: for each
// node count a connected random-geometric mesh is generated (sparse
// storage, so memory scales with edges), F concurrent MORE flows run over
// it, and throughput / transmission-cost / wall-clock are recorded. It is
// the "what happens at scale" driver the paper's 20-node testbed could not
// ask.
type ScalingConfig struct {
	// NodeCounts lists the topology sizes to sweep.
	NodeCounts []int
	// Flows is the number of concurrent flows per run (≥1).
	Flows int
	// Drop layers a uniform extra drop rate over every link (0..1).
	Drop float64
	// Geometric is the generator template; Nodes is overwritten per point.
	// A zero value uses DefaultGeometric.
	Geometric graph.GeometricConfig
	// Protocol under test (default MORE — the only one built for scale;
	// Srcr/ExOR work at moderate sizes).
	Protocol Protocol
	// Opts carries file size, batch size, seed, deadline, parallelism.
	Opts Options
}

// DefaultScalingConfig sweeps a doubling ladder to 1000 nodes with one flow
// and a simulation-friendly file size.
func DefaultScalingConfig() ScalingConfig {
	opts := DefaultOptions()
	opts.FileBytes = 96 << 10
	return ScalingConfig{
		NodeCounts: []int{125, 250, 500, 1000},
		Flows:      1,
		Protocol:   MORE,
		Opts:       opts,
	}
}

// ScalingPoint is one row of the sweep.
type ScalingPoint struct {
	Nodes       int
	Seed        int64 // the connected draw's seed
	Flows       int
	UsableLinks int
	MeanDegree  float64
	// Completed counts flows that finished within the deadline.
	Completed int
	// Throughput is the aggregate delivered packets/second across flows.
	Throughput float64
	// TxPerPacket is run-wide data transmissions per delivered packet.
	TxPerPacket float64
	// SimTime is the simulated time the run spanned.
	SimTime sim.Time
	// WallClock is the host time the run took (not deterministic; every
	// other field is).
	WallClock time.Duration

	// CC echoes the congestion policy the point ran under, CCStats the
	// aggregated congestion-layer accounting, and Fairness the per-flow
	// breakdown (throughput, transmissions, Jain's index) the multi-flow
	// comparison is judged on.
	CC       congest.Policy
	CCStats  congest.Stats
	Fairness FairnessReport

	// ProbeTx and FloodTx count the measurement plane's transmissions when
	// the point ran from learned state (both zero under the oracle) —
	// FloodTx/Nodes is the flood cost per node the scoped-dissemination
	// work is judged on. Convergence is when every node first held every
	// origin's LSA (-1: never within the warmup; 0 under the oracle).
	ProbeTx, FloodTx int64
	Convergence      sim.Time
}

// ScalingSweep runs one point per node count, fanned over cfg.Opts.Parallel
// workers. All simulation outputs are deterministic in cfg.Opts.Seed; only
// WallClock varies run to run.
func ScalingSweep(cfg ScalingConfig) []ScalingPoint {
	if cfg.Flows < 1 {
		cfg.Flows = 1
	}
	points := make([]ScalingPoint, len(cfg.NodeCounts))
	forEach(len(cfg.NodeCounts), cfg.Opts.workers(), func(i int) {
		points[i] = runScalingPoint(cfg, i)
	})
	return points
}

// RunScalingPoint builds the i-th point's topology and runs it — exposed so
// single-shot callers (cmd/moresim) share the exact sweep semantics.
func runScalingPoint(cfg ScalingConfig, i int) ScalingPoint {
	gcfg := cfg.Geometric
	if gcfg.MidRange == 0 && gcfg.TargetDegree == 0 {
		gcfg = graph.DefaultGeometric(cfg.NodeCounts[i])
	}
	gcfg.Nodes = cfg.NodeCounts[i]
	// Per-point seeds derive from the experiment seed and the point index,
	// never from worker identity, so any Parallel value gives identical
	// results.
	baseSeed := cfg.Opts.Seed + int64(i)*1_000_003
	topo, seed := graph.ConnectedGeometric(gcfg, baseSeed)
	if cfg.Drop > 0 {
		topo.Degrade(cfg.Drop)
	}
	opts := cfg.Opts
	opts.Seed = baseSeed
	return measureScalingPoint(topo, seed, cfg.Protocol, cfg.Flows, opts)
}

// measureScalingPoint runs the flows over a prepared topology and collects
// the point's metrics.
func measureScalingPoint(topo *graph.Topology, seed int64, proto Protocol, flows int, opts Options) ScalingPoint {
	pt := ScalingPoint{Nodes: topo.N(), Seed: seed, Flows: flows, CC: opts.CC.Policy}
	ls := topo.LinkStats(graph.RouteThreshold)
	pt.UsableLinks = ls.Links
	pt.MeanDegree = ls.MeanDegree
	pairs := RandomPairs(topo, flows, opts.Seed)
	if len(pairs) == 0 {
		return pt
	}
	start := time.Now()
	info := RunDetailed(topo, proto, pairs, opts)
	results, counters := info.Results, info.Counters
	pt.WallClock = time.Since(start)
	pt.CCStats = info.CCStats
	pt.Fairness = info.Fairness
	pt.ProbeTx = info.ProbeTx
	pt.FloodTx = info.FloodTx
	pt.Convergence = info.Convergence
	delivered := 0
	var endMax sim.Time
	for _, r := range results {
		if r.Completed {
			pt.Completed++
		}
		delivered += r.PacketsDelivered
		pt.Throughput += r.Throughput()
		if r.End > endMax {
			endMax = r.End
		}
	}
	pt.SimTime = endMax
	// 0, not NaN, when nothing was delivered: the sweep is emitted as
	// JSON, which cannot encode NaN (Completed disambiguates).
	if delivered > 0 {
		pt.TxPerPacket = float64(counters.Transmissions) / float64(delivered)
	}
	return pt
}

// RunAtScale is the single-point convenience used by cmd/moresim: a
// connected geometric topology of n nodes, F flows, uniform extra drop.
func RunAtScale(n, flows int, drop float64, gcfg graph.GeometricConfig, proto Protocol, opts Options) ScalingPoint {
	cfg := ScalingConfig{
		NodeCounts: []int{n},
		Flows:      flows,
		Drop:       drop,
		Geometric:  gcfg,
		Protocol:   proto,
		Opts:       opts,
	}
	return runScalingPoint(cfg, 0)
}
