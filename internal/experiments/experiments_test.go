package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
)

// quickOpts returns a reduced-scale configuration so the experiment suite
// exercises every driver in seconds. The paper-scale numbers live in
// cmd/morebench and EXPERIMENTS.md.
func quickOpts() Options {
	o := DefaultOptions()
	o.FileBytes = 96 * 1500 // 3 batches at K=32
	return o
}

func TestFig42Shape(t *testing.T) {
	topo := TestbedTopology()
	res := Fig42UnicastThroughput(topo, 12, quickOpts())
	if len(res.Pairs) != 12 {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
	for _, proto := range []Protocol{MORE, ExOR, Srcr} {
		if len(res.Throughput[proto]) != 12 {
			t.Fatalf("%v has %d samples", proto, len(res.Throughput[proto]))
		}
		for _, x := range res.Throughput[proto] {
			if x <= 0 || math.IsNaN(x) {
				t.Fatalf("%v produced throughput %v", proto, x)
			}
		}
	}
	// The headline orderings of Fig 4-2.
	gainExor := res.MedianGain(MORE, ExOR)
	gainSrcr := res.MedianGain(MORE, Srcr)
	if gainExor < 0 {
		t.Errorf("MORE median below ExOR: %+.0f%% (paper: +22%%)", gainExor)
	}
	if gainSrcr < 40 {
		t.Errorf("MORE vs Srcr gain %+.0f%% too small (paper: +95%%)", gainSrcr)
	}
	if res.MaxGain(MORE, Srcr) < 2 {
		t.Errorf("max MORE/Srcr gain %.1fx lacks a challenged tail", res.MaxGain(MORE, Srcr))
	}
	if !strings.Contains(res.Table(), "MORE") {
		t.Error("table rendering broken")
	}
	if !strings.Contains(res.ScatterTSV(Srcr, MORE), "\t") {
		t.Error("scatter TSV broken")
	}
}

func TestFig43ChallengedFlowsGainMost(t *testing.T) {
	topo := TestbedTopology()
	res := Fig42UnicastThroughput(topo, 12, quickOpts())
	bottom, top := res.ChallengedGain(MORE)
	if bottom <= top {
		t.Errorf("challenged flows gain %.2fx <= good flows %.2fx; Fig 4-3 shape lost", bottom, top)
	}
	if bottom < 1.2 {
		t.Errorf("challenged gain %.2fx too small", bottom)
	}
}

func TestFig44SpatialReuseShape(t *testing.T) {
	opts := quickOpts()
	// Eight pairs rather than the bare minimum: the median gain over a
	// 5-pair sample swings with the rng realization, while 8+ pairs hold
	// the Fig 4-4 shape stably.
	res := Fig44SpatialReuse(8, opts)
	if len(res.Pairs) < 6 {
		t.Fatalf("found only %d spatial-reuse pairs", len(res.Pairs))
	}
	gain := res.MedianGain(MORE, ExOR)
	// Paper: +50% visible on these flows, clearly above the testbed-wide
	// (+22%) figure. Accept anything solidly positive at test scale.
	if gain < 15 {
		t.Errorf("spatial-reuse MORE vs ExOR gain %+.0f%% too small (paper: +50%%)", gain)
	}
	if !strings.Contains(res.Table(), "spatial-reuse") {
		t.Error("table rendering broken")
	}
}

func TestFig45MultiFlowShape(t *testing.T) {
	topo := TestbedTopology()
	opts := quickOpts()
	opts.FileBytes = 64 * 1500
	res := Fig45MultiFlow(topo, 3, 3, opts)
	if len(res.FlowCounts) != 3 {
		t.Fatalf("flow counts %v", res.FlowCounts)
	}
	for _, proto := range []Protocol{MORE, ExOR, Srcr} {
		if len(res.Avg[proto]) != 3 {
			t.Fatalf("%v has %d points", proto, len(res.Avg[proto]))
		}
		// Per-flow average throughput should fall as flows are added.
		if res.Avg[proto][2] >= res.Avg[proto][0] {
			t.Errorf("%v: per-flow throughput did not fall with congestion: %v", proto, res.Avg[proto])
		}
	}
	// Opportunistic routing keeps its lead under light load and degrades
	// gracefully toward traditional routing under congestion (§4.3: "it
	// smoothly degenerates to the behavior of traditional routing").
	if res.Avg[MORE][0] < res.Avg[Srcr][0] {
		t.Errorf("MORE below Srcr for a single flow: %.1f vs %.1f",
			res.Avg[MORE][0], res.Avg[Srcr][0])
	}
	for i := range res.FlowCounts {
		if res.Avg[MORE][i] < 0.8*res.Avg[Srcr][i] {
			t.Errorf("MORE collapsed below Srcr at %d flows: %.1f vs %.1f",
				res.FlowCounts[i], res.Avg[MORE][i], res.Avg[Srcr][i])
		}
	}
	if !strings.Contains(res.Table(), "flows") {
		t.Error("table rendering broken")
	}
}

func TestFig46AutorateShape(t *testing.T) {
	topo := TestbedTopology()
	opts := quickOpts()
	res := Fig46Autorate(topo, 8, opts)
	medMORE := stats.Median(res.Throughput["MORE@11"])
	medAuto := stats.Median(res.Throughput["Srcr-auto"])
	if medMORE <= medAuto {
		t.Errorf("MORE@11 (%.1f) did not preserve its gain over Srcr autorate (%.1f)", medMORE, medAuto)
	}
	// §4.4: a noticeable share of autorate transmissions happen at 1 Mb/s
	// and consume a disproportionate share of air time.
	if res.LowRateTxFrac > 0 && res.LowRateAirFrac <= res.LowRateTxFrac {
		t.Errorf("1 Mb/s air-time share %.2f should exceed its tx share %.2f",
			res.LowRateAirFrac, res.LowRateTxFrac)
	}
	if !strings.Contains(res.Table(), "autorate") {
		t.Error("table rendering broken")
	}
}

func TestFig47BatchSizeShape(t *testing.T) {
	topo := TestbedTopology()
	opts := quickOpts()
	opts.FileBytes = 128 * 1500
	res := Fig47BatchSize(topo, []int{8, 32}, 6, opts)
	// §4.5: ExOR suffers at K=8; MORE is much less sensitive.
	moreSens := res.Sensitivity(res.MORE)
	exorSens := res.Sensitivity(res.ExOR)
	if exorSens < moreSens {
		t.Errorf("ExOR batch sensitivity %.2fx below MORE's %.2fx; Fig 4-7 shape lost", exorSens, moreSens)
	}
	if !strings.Contains(res.Table(), "K") {
		t.Error("table rendering broken")
	}
}

func TestTable41Microbench(t *testing.T) {
	r := Table41CodingCost(32, 1500, 200)
	// Shape, not absolute times: the independence check must be far
	// cheaper than full coding/decoding (paper: 10 µs vs 270/260 µs), and
	// coding and decoding should be within a small factor of each other.
	if r.IndependenceCheck*5 > r.SourceCoding {
		t.Errorf("independence check (%v) not ≪ source coding (%v)", r.IndependenceCheck, r.SourceCoding)
	}
	// Coding and decoding are the same O(K·S) work; allow a wide band
	// because this test shares the machine with parallel packages and the
	// paper's own numbers (270 vs 260 µs) only establish same order of
	// magnitude.
	ratio := float64(r.SourceCoding) / float64(r.Decoding)
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("coding (%v) and decoding (%v) should be comparable", r.SourceCoding, r.Decoding)
	}
	// Modern hardware must far exceed the Celeron's 44 Mb/s. Wall-clock
	// throughput is meaningless under the race detector's slowdown.
	if got := r.SustainableMbps(); got < 44 && !raceEnabled {
		t.Errorf("sustainable throughput %.0f Mb/s below the paper's low-end bound", got)
	}
	if !strings.Contains(r.Table(), "independence") {
		t.Error("table rendering broken")
	}
}

func TestHeaderOverheadNumbers(t *testing.T) {
	r := HeaderOverhead(32, 1500)
	if r.HeaderBytes > 70 {
		t.Errorf("header %d B exceeds the 70 B bound", r.HeaderBytes)
	}
	if r.Fraction > 0.05 {
		t.Errorf("header overhead %.1f%% exceeds 5%%", 100*r.Fraction)
	}
}

func TestFig51GapCurve(t *testing.T) {
	pts := Fig51CostGap(8, []float64{0.3, 0.1, 0.03, 0.01})
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Gap < pts[i-1].Gap-1e-9 {
			t.Errorf("gap not growing as p shrinks: %+v", pts)
		}
	}
	if pts[len(pts)-1].Gap < 4 {
		t.Errorf("gap %.2f at p=0.01 too small for k=8", pts[len(pts)-1].Gap)
	}
}

func TestSec57Statistics(t *testing.T) {
	r := Sec57EOTXvsETX(TestbedTopology(), 1)
	if r.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	fracUnaffected := float64(r.Unaffected) / float64(r.Pairs)
	// §5.7: more than 40% of flows unaffected; among affected the median
	// gap is tiny (0.2%).
	if fracUnaffected < 0.2 {
		t.Errorf("only %.0f%% of flows unaffected by EOTX order", 100*fracUnaffected)
	}
	if r.MedianAffectedGapPct > 10 {
		t.Errorf("median affected gap %.1f%% implausibly large", r.MedianAffectedGapPct)
	}
	if !strings.Contains(r.Table(), "unaffected") {
		t.Error("table rendering broken")
	}
}

func TestRandomPairsProperties(t *testing.T) {
	topo := TestbedTopology()
	pairs := RandomPairs(topo, 30, 7)
	if len(pairs) != 30 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatal("self pair drawn")
		}
		if seen[p] {
			t.Fatal("duplicate pair drawn")
		}
		seen[p] = true
	}
	again := RandomPairs(topo, 30, 7)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("pair drawing not deterministic")
		}
	}
}

func TestSpatialReusePairSelection(t *testing.T) {
	// A long corridor must contain qualifying pairs; a compact testbed
	// with blanket carrier sense must not.
	corridor := graph.Corridor(14, 360, 15, 28, 1)
	if len(SpatialReusePairs(corridor, 4, 0.01, 84)) == 0 {
		t.Error("no spatial-reuse pairs found in a 400 m corridor")
	}
	testbed := TestbedTopology()
	if n := len(SpatialReusePairs(testbed, 4, 0.01, 1000)); n != 0 {
		t.Errorf("found %d spatial-reuse pairs despite kilometer carrier sense", n)
	}
}

func TestRunDeterministic(t *testing.T) {
	topo := TestbedTopology()
	opts := quickOpts()
	p := RandomPairs(topo, 1, 3)[0]
	a := Run(topo, MORE, p, opts)
	b := Run(topo, MORE, p, opts)
	if a.Throughput() != b.Throughput() || a.End != b.End {
		t.Fatalf("nondeterministic run: %v vs %v", a, b)
	}
}

func TestParallelFiguresDeterministic(t *testing.T) {
	// The tentpole guarantee of the parallel harness: every figure driver
	// produces byte-identical numbers for any worker count, because per-run
	// seeds derive from the item index, never from scheduling. Run the
	// cheaper drivers serially and at 4 workers and require exact equality.
	topo := TestbedTopology()
	opts := quickOpts()
	opts.FileBytes = 32 * 1500

	serial := opts
	serial.Parallel = 1
	par := opts
	par.Parallel = 4

	a := Fig42UnicastThroughput(topo, 6, serial)
	b := Fig42UnicastThroughput(topo, 6, par)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig42 differs between serial and 4 workers:\n%v\nvs\n%v", a.Throughput, b.Throughput)
	}

	fa := Fig45MultiFlow(topo, 2, 2, serial)
	fb := Fig45MultiFlow(topo, 2, 2, par)
	if !reflect.DeepEqual(fa, fb) {
		t.Errorf("Fig45 differs between serial and 4 workers:\n%v\nvs\n%v", fa.Avg, fb.Avg)
	}

	ga := Fig46Autorate(topo, 3, serial)
	gb := Fig46Autorate(topo, 3, par)
	if !reflect.DeepEqual(ga, gb) {
		t.Errorf("Fig46 differs between serial and 4 workers")
	}

	ha := Fig47BatchSize(topo, []int{8, 16}, 3, serial)
	hb := Fig47BatchSize(topo, []int{8, 16}, 3, par)
	if !reflect.DeepEqual(ha, hb) {
		t.Errorf("Fig47 differs between serial and 4 workers")
	}

	sa := Sec57EOTXvsETX(topo, 1)
	sb := Sec57EOTXvsETX(topo, 4)
	if sa != sb {
		t.Errorf("Sec57 differs between serial and 4 workers: %+v vs %+v", sa, sb)
	}
}

func TestParallelFig44Deterministic(t *testing.T) {
	opts := quickOpts()
	opts.FileBytes = 32 * 1500
	serial := opts
	serial.Parallel = 1
	par := opts
	par.Parallel = 4
	a := Fig44SpatialReuse(3, serial)
	b := Fig44SpatialReuse(3, par)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Fig44 differs between serial and 4 workers")
	}
}

func TestProtocolString(t *testing.T) {
	if MORE.String() != "MORE" || ExOR.String() != "ExOR" ||
		Srcr.String() != "Srcr" || SrcrAutorate.String() != "Srcr-autorate" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(99).String() == "" {
		t.Fatal("unknown protocol should render")
	}
}

func TestEOTXOrderingOption(t *testing.T) {
	// The §5.7 option: running MORE with EOTX forwarder ordering must work
	// and stay within a sane band of the ETX-ordered run.
	topo := TestbedTopology()
	opts := quickOpts()
	p := RandomPairs(topo, 1, 5)[0]
	etx := Run(topo, MORE, p, opts)
	opts.Metric = routingOrderEOTX()
	eotx := Run(topo, MORE, p, opts)
	if !etx.Completed || !eotx.Completed {
		t.Fatalf("runs incomplete: %v / %v", etx, eotx)
	}
	ratio := eotx.Throughput() / etx.Throughput()
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("EOTX/ETX throughput ratio %.2f out of band", ratio)
	}
}

func TestDeadlineRespected(t *testing.T) {
	topo := TestbedTopology()
	opts := quickOpts()
	opts.Deadline = 50 * sim.Millisecond // far too short to finish
	p := RandomPairs(topo, 1, 3)[0]
	r := Run(topo, MORE, p, opts)
	if r.Completed {
		t.Fatal("transfer claimed completion within an impossible deadline")
	}
	if r.End > opts.Deadline {
		t.Fatalf("result end %v beyond deadline", r.End)
	}
}

func TestFig42AcrossSeedsRobust(t *testing.T) {
	// The headline orderings must hold across independently generated
	// topologies, not just the canonical seed.
	opts := quickOpts()
	res := Fig42AcrossSeeds(2, 8, opts)
	if len(res.Seeds) != 2 {
		t.Fatalf("ran %d topologies", len(res.Seeds))
	}
	for i, s := range res.Seeds {
		if res.GainVsSrcr[i] < 20 {
			t.Errorf("topology seed %d: MORE vs Srcr gain %+.0f%% too small", s, res.GainVsSrcr[i])
		}
		if res.GainVsExOR[i] < -15 {
			t.Errorf("topology seed %d: MORE collapsed vs ExOR: %+.0f%%", s, res.GainVsExOR[i])
		}
	}
	if !strings.Contains(res.Table(), "median") {
		t.Error("table rendering broken")
	}
}

func TestTraceHookPlumbed(t *testing.T) {
	topo := TestbedTopology()
	opts := quickOpts()
	opts.FileBytes = 32 * 1500
	lines := 0
	opts.Trace = func(format string, args ...interface{}) { lines++ }
	p := RandomPairs(topo, 1, 3)[0]
	Run(topo, MORE, p, opts)
	if lines == 0 {
		t.Fatal("trace hook never fired")
	}
}

func TestSpatialReuseUtilization(t *testing.T) {
	// On a corridor flow with concurrent first/last hops, MORE's medium
	// utilization (air time / wall time) should exceed ExOR's — the direct
	// signature of §4.2.3's spatial reuse.
	opts := quickOpts()
	var topo *graph.Topology
	var pair Pair
	for seed := int64(1); seed < 60; seed++ {
		tp := graph.Corridor(14, 360, 15, 28, seed)
		if prs := SpatialReusePairs(tp, 4, 0.01, opts.SenseRange); len(prs) > 0 {
			topo, pair = tp, prs[0]
			break
		}
	}
	if topo == nil {
		t.Fatal("no spatial-reuse pair found")
	}
	utilization := func(p Protocol) float64 {
		rs, counters := RunWithCounters(topo, p, []Pair{pair}, opts)
		if !rs[0].Completed {
			t.Fatalf("%v transfer failed", p)
		}
		return counters.Utilization(rs[0].End)
	}
	um := utilization(MORE)
	ue := utilization(ExOR)
	if um <= ue {
		t.Errorf("MORE utilization %.2f should exceed ExOR's %.2f on a reuse path", um, ue)
	}
	if ue > 1.15 {
		t.Errorf("ExOR utilization %.2f implausibly high for a scheduled single flow", ue)
	}
}
