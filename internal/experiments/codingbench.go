package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/coding"
	"repro/internal/gf256"
)

// Coding-plane benchmarks: per-kernel GF(256) combine throughput across
// payload size classes (the `morebench -baseline` regression baseline) and
// the sharded-pipeline core-scaling sweep (`morebench -cores`).

// GF256Point is one measured cell: a kernel arm, combine flavor, and
// payload size, with throughput in processed source gigabytes per second
// (K*size bytes per combine).
type GF256Point struct {
	Kernel string  `json:"kernel"`
	Op     string  `json:"op"`
	Size   int     `json:"size"`
	GBps   float64 `json:"gbps"`
}

// GF256BenchResult is the full grid plus the context needed to interpret
// it later (BENCH_gf256.json).
type GF256BenchResult struct {
	K      int          `json:"k"`
	Points []GF256Point `json:"points"`
}

// GF256SizeClasses are the benchmarked payload sizes: a sub-vector runt, a
// single-cache-line class, the paper's 1500 B MTU, and a jumbo class.
var GF256SizeClasses = []int{60, 256, 1500, 8192}

// GF256Bench measures Combine and CombineInto throughput for every named
// kernel over the size classes, spending roughly dur per cell. K rows of
// each size are combined per op; throughput counts the K*size source bytes
// each combine reads, matching the gf256 package benchmarks.
func GF256Bench(kernels []string, k int, sizes []int, dur time.Duration) *GF256BenchResult {
	res := &GF256BenchResult{K: k}
	rng := rand.New(rand.NewSource(99))
	for _, name := range kernels {
		kn, err := gf256.NewKernelNamed(name)
		if err != nil {
			continue // arm not available on this host
		}
		for _, size := range sizes {
			rows := make([][]byte, k)
			for i := range rows {
				rows[i] = make([]byte, size)
				rng.Read(rows[i])
			}
			kn.SetRows(rows)
			coeffs := make([]byte, k)
			rng.Read(coeffs)
			dst := make([]byte, size)

			measure := func(op func()) float64 {
				// Calibrate a batch count so the timed section dominates
				// clock overhead, then run until dur elapses.
				const batch = 64
				var ops int
				start := time.Now()
				for time.Since(start) < dur {
					for i := 0; i < batch; i++ {
						op()
					}
					ops += batch
				}
				elapsed := time.Since(start).Seconds()
				return float64(ops) * float64(k*size) / elapsed / 1e9
			}

			res.Points = append(res.Points, GF256Point{
				Kernel: name, Op: "combine", Size: size,
				GBps: measure(func() { kn.Combine(dst, coeffs) }),
			})
			res.Points = append(res.Points, GF256Point{
				Kernel: name, Op: "combineinto", Size: size,
				GBps: measure(func() { kn.CombineInto(dst, rows, coeffs) }),
			})
		}
	}
	return res
}

// Table renders the grid with kernels as rows grouped by op.
func (r *GF256BenchResult) Table() string {
	var b strings.Builder
	sizes := map[int]bool{}
	for _, p := range r.Points {
		sizes[p.Size] = true
	}
	var cols []int
	for s := range sizes {
		cols = append(cols, s)
	}
	sort.Ints(cols)
	for _, op := range []string{"combine", "combineinto"} {
		fmt.Fprintf(&b, "%s (GB/s, K=%d):\n", op, r.K)
		fmt.Fprintf(&b, "  %-10s", "kernel")
		for _, s := range cols {
			fmt.Fprintf(&b, "%10dB", s)
		}
		b.WriteString("\n")
		var kernels []string
		seen := map[string]bool{}
		for _, p := range r.Points {
			if p.Op == op && !seen[p.Kernel] {
				seen[p.Kernel] = true
				kernels = append(kernels, p.Kernel)
			}
		}
		for _, kn := range kernels {
			fmt.Fprintf(&b, "  %-10s", kn)
			for _, s := range cols {
				for _, p := range r.Points {
					if p.Op == op && p.Kernel == kn && p.Size == s {
						fmt.Fprintf(&b, "%11.2f", p.GBps)
					}
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Cell returns the throughput for one (kernel, op, size) or 0 if absent.
func (r *GF256BenchResult) Cell(kernel, op string, size int) float64 {
	for _, p := range r.Points {
		if p.Kernel == kernel && p.Op == op && p.Size == size {
			return p.GBps
		}
	}
	return 0
}

// CompareGF256Baselines returns one message per cell of cur that regressed
// more than frac (e.g. 0.20) below base. Cells present in only one result
// are ignored (kernel availability differs across hosts); the caller
// decides which kernels gate CI.
func CompareGF256Baselines(base, cur *GF256BenchResult, frac float64, kernels []string) []string {
	gate := map[string]bool{}
	for _, k := range kernels {
		gate[k] = true
	}
	var bad []string
	for _, bp := range base.Points {
		if !gate[bp.Kernel] {
			continue
		}
		got := cur.Cell(bp.Kernel, bp.Op, bp.Size)
		if got == 0 {
			continue
		}
		if got < bp.GBps*(1-frac) {
			bad = append(bad, fmt.Sprintf("%s/%s/%dB: %.2f GB/s vs baseline %.2f (-%.0f%%)",
				bp.Kernel, bp.Op, bp.Size, got, bp.GBps, 100*(1-got/bp.GBps)))
		}
	}
	return bad
}

// CodingScalingPoint is one row of the -cores table.
type CodingScalingPoint struct {
	Cores   int     `json:"cores"`
	GBps    float64 `json:"gbps"`    // aggregate coded source bytes per second
	Batches int     `json:"batches"` // batches fully coded+decoded
	Speedup float64 `json:"speedup"` // vs the 1-core row
}

// CodingScalingResult is the -cores sweep output.
type CodingScalingResult struct {
	K      int                  `json:"k"`
	Size   int                  `json:"size"`
	Kernel string               `json:"kernel"`
	Points []CodingScalingPoint `json:"points"`
}

// CodingScaling measures aggregate coding throughput of the sharded
// pipeline at each worker count. The unit of work is one full batch
// round-trip on the owning worker — source-code K+2 packets, buffer them,
// decode the batch — drawn from per-worker arena pools; batches are
// submitted round-robin until dur elapses. Bytes counted are the source
// bytes each combine reads (K*size per coded packet), the same currency as
// GF256Bench, so the two tables compose.
//
// Scaling beyond the machine's actual core count cannot help (the workers
// time-slice one core); the table reports what the hardware gives.
func CodingScaling(coreCounts []int, k, size int, dur time.Duration) *CodingScalingResult {
	res := &CodingScalingResult{K: k, Size: size, Kernel: gf256.ActiveKernel()}
	for _, n := range coreCounts {
		pt := codingScalingPoint(n, k, size, dur)
		if len(res.Points) > 0 && res.Points[0].GBps > 0 {
			pt.Speedup = pt.GBps / res.Points[0].GBps
		} else {
			pt.Speedup = 1
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

func codingScalingPoint(n, k, size int, dur time.Duration) CodingScalingPoint {
	p := coding.NewPipeline(n)
	defer p.Close()
	var done int64
	results := make([]int64, n) // per-worker packet counts; no sharing
	start := time.Now()
	deadline := start.Add(dur)
	var batch uint64
	for time.Now().Before(deadline) {
		// Keep every worker's ring primed without overrunning it.
		for i := 0; i < 4*n; i++ {
			b := batch
			batch++
			p.Submit(b, func(w *coding.Worker) {
				rng := rand.New(rand.NewSource(int64(b)))
				native := make([][]byte, k)
				for j := range native {
					native[j] = make([]byte, size)
					rng.Read(native[j])
				}
				src, err := coding.NewSource(native, rng)
				if err != nil {
					panic(err)
				}
				pool := w.Pool(k, size)
				src.UsePool(pool)
				dec := coding.NewDecoder(k, size)
				dec.UsePool(pool)
				sent := int64(0)
				for !dec.Complete() {
					dec.Add(src.Next())
					sent++
				}
				if _, err := dec.Decode(); err != nil {
					panic(err)
				}
				dec.Reset()
				results[w.ID()] += sent
			})
		}
		p.Flush()
		done += int64(4 * n)
	}
	elapsed := time.Since(start).Seconds()
	var packets int64
	for _, c := range results {
		packets += c
	}
	return CodingScalingPoint{
		Cores:   n,
		GBps:    float64(packets) * float64(k*size) / elapsed / 1e9,
		Batches: int(done),
	}
}

// Table renders the scaling sweep.
func (r *CodingScalingResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded coding pipeline, kernel=%s K=%d payload=%dB (batch round-trip: code+decode):\n",
		r.Kernel, r.K, r.Size)
	fmt.Fprintf(&b, "  %6s %12s %10s %9s\n", "cores", "agg GB/s", "batches", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %6d %12.2f %10d %8.2fx\n", p.Cores, p.GBps, p.Batches, p.Speedup)
	}
	return b.String()
}
