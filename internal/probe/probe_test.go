package probe

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

func TestMeasureRecoversLinkQuality(t *testing.T) {
	topo := graph.New(3)
	topo.SetLink(0, 1, 0.8)
	topo.SetLink(1, 2, 0.4)
	cfg := DefaultConfig()
	cfg.Window = 40
	est := Measure(topo, cfg, sim.DefaultConfig(), 90*sim.Second)
	if d := est.Prob(0, 1); d < 0.6 || d > 0.95 {
		t.Fatalf("estimated p(0->1) = %v, want ≈0.8", d)
	}
	if d := est.Prob(1, 2); d < 0.2 || d > 0.6 {
		t.Fatalf("estimated p(1->2) = %v, want ≈0.4", d)
	}
	if est.Prob(0, 2) != 0 {
		t.Fatalf("estimated phantom link p(0->2) = %v", est.Prob(0, 2))
	}
	meanErr, maxErr := MatrixError(topo, est, 0.05)
	if meanErr > 0.15 {
		t.Fatalf("mean estimation error %.3f too high", meanErr)
	}
	if maxErr > 0.4 {
		t.Fatalf("max estimation error %.3f too high", maxErr)
	}
}

func TestProbeSizeMismatch(t *testing.T) {
	// With size-dependent delivery, minimal probes overestimate the
	// delivery of full-size data frames; padded probes measure it right.
	topo := graph.New(2)
	topo.SetLink(0, 1, 0.5)
	simCfg := sim.DefaultConfig()
	simCfg.RefFrameBytes = 1500

	small := DefaultConfig()
	small.PadToBytes = 0
	small.Window = 60
	estSmall := Measure(topo, small, simCfg, 120*sim.Second)

	padded := DefaultConfig()
	padded.PadToBytes = 1500
	padded.Window = 60
	estPadded := Measure(topo, padded, simCfg, 120*sim.Second)

	if estSmall.Prob(0, 1) <= estPadded.Prob(0, 1) {
		t.Fatalf("small probes (%.2f) should overestimate vs padded (%.2f)",
			estSmall.Prob(0, 1), estPadded.Prob(0, 1))
	}
	if d := estPadded.Prob(0, 1); d < 0.35 || d > 0.65 {
		t.Fatalf("padded estimate %.2f, want ≈0.5", d)
	}
}

func TestProbersShareMediumOnTestbed(t *testing.T) {
	topo, _ := graph.ConnectedTestbed(graph.DefaultTestbed(), 1)
	cfg := DefaultConfig()
	cfg.Window = 20
	simCfg := sim.DefaultConfig()
	simCfg.SenseRange = 84
	est := Measure(topo, cfg, simCfg, 40*sim.Second)
	meanErr, _ := MatrixError(topo, est, graph.RouteThreshold)
	// Contention between probers adds noise but the estimates must stay
	// usable for route selection.
	if meanErr > 0.2 {
		t.Fatalf("mean estimation error %.3f too high on testbed", meanErr)
	}
}

func TestDeliveryFromUnknownOrigin(t *testing.T) {
	p := NewProber(DefaultConfig())
	if p.DeliveryFrom(5) != 0 {
		t.Fatal("unknown origin should estimate 0")
	}
}
