package probe

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/sim"
)

// hear drives Receive standalone with a probe frame from origin.
func hear(p *Prober, origin graph.NodeID, seq uint32) {
	p.Receive(&sim.Frame{
		From:    origin,
		To:      graph.Broadcast,
		Payload: &packet.Probe{Origin: origin, Seq: seq, Window: uint16(p.cfg.Window)},
	})
}

func TestDuplicateProbeDoesNotInflateDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 10
	p := NewProber(cfg)
	// All 10 window slots heard, one of them replayed: a duplicate-counting
	// estimator reports 11/10 here.
	for seq := uint32(1); seq <= 10; seq++ {
		hear(p, 3, seq)
	}
	hear(p, 3, 7)
	if d := p.DeliveryFrom(3); d != 1.0 {
		t.Fatalf("delivery with replayed probe = %v, want exactly 1.0", d)
	}
	// A lossier window with a replay inside it must count the seq once.
	q := NewProber(cfg)
	for _, seq := range []uint32{1, 2, 5, 5, 9} {
		hear(q, 3, seq)
	}
	hear(q, 3, 10)
	if d := q.DeliveryFrom(3); d != 0.5 {
		t.Fatalf("delivery with duplicated seq = %v, want 0.5 (5 distinct of 10)", d)
	}
}

func TestDeliveryNeverExceedsOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 5
	p := NewProber(cfg)
	for seq := uint32(1); seq <= 8; seq++ {
		hear(p, 1, seq)
		hear(p, 1, seq) // every probe replayed
	}
	if d := p.DeliveryFrom(1); d > 1.0 {
		t.Fatalf("delivery = %v, must never exceed 1.0", d)
	}
}

func TestReorderedProbeDoesNotRegressTrimHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 10
	p := NewProber(cfg)
	for seq := uint32(11); seq <= 30; seq++ {
		hear(p, 2, seq)
	}
	// A late, reordered probe arrives. Trimming against the arriving seq
	// (horizon 15-10=5) instead of lastSeq (30-10=20) would re-admit it and
	// keep every stale entry alive.
	hear(p, 2, 15)
	horizon := p.lastSeq[2] - uint32(cfg.Window)
	for _, s := range p.received[2] {
		if s <= horizon {
			t.Fatalf("stale seq %d survived the trim (horizon %d)", s, horizon)
		}
	}
	if n := len(p.received[2]); n > cfg.Window {
		t.Fatalf("window holds %d entries, cap is %d", n, cfg.Window)
	}
	if d := p.DeliveryFrom(2); d != 1.0 {
		t.Fatalf("delivery after reordered arrival = %v, want 1.0", d)
	}
}

func TestDeliveryFromStandaloneWithDeadInterval(t *testing.T) {
	// A prober driven without Init has no node and therefore no clock; with
	// DeadInterval set this used to dereference nil in DeliveryFrom.
	cfg := DefaultConfig()
	cfg.Window = 10
	cfg.DeadInterval = 5 * sim.Second
	p := NewProber(cfg)
	for seq := uint32(1); seq <= 10; seq++ {
		hear(p, 4, seq)
	}
	if d := p.DeliveryFrom(4); d != 1.0 {
		t.Fatalf("standalone delivery with DeadInterval = %v, want 1.0", d)
	}
	if d := p.DeliveryFrom(9); d != 0 {
		t.Fatalf("unknown origin = %v, want 0", d)
	}
}
