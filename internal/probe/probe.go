// Package probe implements the ETX measurement machinery the paper runs
// before each experiment (§4.1.2): every node periodically broadcasts small
// probe packets; receivers count them over a sliding window to estimate
// per-link delivery probabilities, which are then disseminated link-state
// style and fed to all three protocols.
//
// The estimator reproduces De Couto et al.'s method: the forward delivery
// ratio of link a->b is the fraction of a's probes b received during the
// last window. Probes are broadcast (no MAC ACK), so the measurement sees
// exactly the loss process data broadcasts see. Because probes are small,
// topologies measured with small probes overestimate data delivery — the
// classic probe-size mismatch — unless probes are padded to data size, which
// the prober supports (the Roofnet deployment padded its probes).
package probe

import (
	"math"

	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config parameterizes the prober.
type Config struct {
	// Interval between probe broadcasts per node (Roofnet used ~1 s with
	// jitter).
	Interval sim.Time
	// Jitter randomizes each interval by ±Jitter to avoid synchronization.
	Jitter sim.Time
	// Window is the number of most recent probe slots the estimator
	// averages over (ETX uses a 10-probe window by default here).
	Window int
	// PadToBytes pads probes to this on-air size so the measured loss
	// matches data-frame loss (0 sends minimal probes).
	PadToBytes int
	// DeadInterval, when positive, declares a neighbor dead after this much
	// probe silence: DeliveryFrom reports 0 for an origin not heard from in
	// DeadInterval, so a crashed neighbor's stale window contents cannot
	// keep its link alive in the learned view. A reborn neighbor's first
	// probe revives the estimate. Zero keeps the estimator purely
	// window-based (the original De Couto behavior, and the default).
	DeadInterval sim.Time
}

// DefaultConfig matches a Roofnet-like prober.
func DefaultConfig() Config {
	return Config{
		Interval:   sim.Second,
		Jitter:     100 * sim.Millisecond,
		Window:     10,
		PadToBytes: 1500,
	}
}

// Prober is the per-node probing protocol. It can run standalone (for
// measurement-only simulations) and exposes the estimated delivery matrix.
type Prober struct {
	cfg     Config
	node    *sim.Node
	seq     uint32
	pending int // probes due but not yet transmitted

	// received[origin] holds the sequence numbers heard from origin within
	// the window horizon.
	received map[graph.NodeID][]uint32
	// lastSeq[origin] is the highest sequence seen from origin.
	lastSeq map[graph.NodeID]uint32
	// lastHeard[origin] is when origin's latest probe arrived (liveness
	// input for DeadInterval).
	lastHeard map[graph.NodeID]sim.Time

	// ProbeTx counts probe broadcasts sent (measurement-plane overhead
	// accounting for the learned-vs-oracle gap experiments).
	ProbeTx int64
}

// NewProber creates a prober; attach with sim.Attach.
func NewProber(cfg Config) *Prober {
	if cfg.Interval == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = 10
	}
	return &Prober{
		cfg:       cfg,
		received:  make(map[graph.NodeID][]uint32),
		lastSeq:   make(map[graph.NodeID]uint32),
		lastHeard: make(map[graph.NodeID]sim.Time),
	}
}

// Init implements sim.Protocol.
func (p *Prober) Init(n *sim.Node) {
	p.node = n
	p.scheduleNext()
}

func (p *Prober) scheduleNext() {
	d := p.cfg.Interval
	if p.cfg.Jitter > 0 {
		d += sim.Time(p.node.Rand().Int63n(int64(2*p.cfg.Jitter))) - p.cfg.Jitter
	}
	p.node.After(d, func() {
		// A failed radio generates no probes (its clock keeps running, so a
		// recovered node resumes on the next tick without a backlog burst).
		if !p.node.Failed() {
			p.pending++
			p.node.Wake()
		}
		p.scheduleNext()
	})
}

// Receive implements sim.Protocol.
func (p *Prober) Receive(f *sim.Frame) {
	m, ok := f.Payload.(*packet.Probe)
	if !ok {
		return
	}
	if p.node != nil { // tests drive Receive without a simulated node
		p.lastHeard[m.Origin] = p.node.Now()
	}
	if m.Seq > p.lastSeq[m.Origin] {
		p.lastSeq[m.Origin] = m.Seq
	}
	// A replayed probe must count once: a window holding the same seq twice
	// would make DeliveryFrom report more arrivals than the origin sent.
	seqs := p.received[m.Origin]
	dup := false
	for _, s := range seqs {
		if s == m.Seq {
			dup = true
			break
		}
	}
	if !dup {
		seqs = append(seqs, m.Seq)
	}
	// Trim against the highest seq heard, not the arriving one: a late
	// reordered probe must not drag the horizon backward and re-admit (or
	// fail to evict) entries the window had already aged out.
	horizon := int64(p.lastSeq[m.Origin]) - int64(p.cfg.Window)
	keep := seqs[:0]
	for _, s := range seqs {
		if int64(s) > horizon {
			keep = append(keep, s)
		}
	}
	p.received[m.Origin] = keep
}

// Pull implements sim.Protocol.
func (p *Prober) Pull() *sim.Frame {
	if p.pending == 0 {
		return nil
	}
	p.pending--
	p.seq++
	p.ProbeTx++
	m := &packet.Probe{Origin: p.node.ID(), Seq: p.seq, Window: uint16(p.cfg.Window)}
	bytes := m.EncodedSize()
	if p.cfg.PadToBytes > bytes {
		bytes = p.cfg.PadToBytes
	}
	return &sim.Frame{
		From:    p.node.ID(),
		To:      graph.Broadcast,
		Bytes:   bytes,
		Payload: m,
	}
}

// Sent implements sim.Protocol.
func (p *Prober) Sent(f *sim.Frame, ok bool) {}

// DeliveryFrom estimates the delivery probability of link origin -> this
// node: the fraction of the last Window probes that arrived. It returns
// 0 if nothing was heard from origin.
func (p *Prober) DeliveryFrom(origin graph.NodeID) float64 {
	last, ok := p.lastSeq[origin]
	if !ok || last == 0 {
		return 0
	}
	if p.cfg.DeadInterval > 0 && p.node != nil { // standalone probers have no clock
		if t, heard := p.lastHeard[origin]; !heard || p.node.Now()-t >= p.cfg.DeadInterval {
			return 0 // silent past the liveness horizon: the link is down
		}
	}
	window := uint32(p.cfg.Window)
	if last < window {
		window = last
	}
	count := 0
	for _, s := range p.received[origin] {
		if s > last-window {
			count++
		}
	}
	if count > int(window) {
		count = int(window) // a ratio above 1.0 would poison ETX downstream
	}
	return float64(count) / float64(window)
}

// Measure runs a probing campaign over the topology for the given duration
// and returns the estimated delivery matrix. It is the simulated analogue
// of the paper's "we run the ETX measurement module for 10 minutes" step.
func Measure(topo *graph.Topology, cfg Config, simCfg sim.Config, duration sim.Time) *graph.Topology {
	s := sim.New(topo, simCfg)
	probers := make([]*Prober, topo.N())
	for i := range probers {
		probers[i] = NewProber(cfg)
		s.Attach(graph.NodeID(i), probers[i])
	}
	s.Run(duration)
	est := graph.New(topo.N())
	copy(est.Pos, topo.Pos)
	for i := 0; i < topo.N(); i++ {
		for j := 0; j < topo.N(); j++ {
			if i == j {
				continue
			}
			est.SetDirected(graph.NodeID(i), graph.NodeID(j),
				probers[j].DeliveryFrom(graph.NodeID(i)))
		}
	}
	return est
}

// MatrixError summarizes how far an estimated delivery matrix strays from
// the ground truth over links whose true delivery exceeds threshold.
func MatrixError(truth, est *graph.Topology, threshold float64) (meanAbs, maxAbs float64) {
	n := truth.N()
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || truth.Prob(graph.NodeID(i), graph.NodeID(j)) <= threshold {
				continue
			}
			d := math.Abs(truth.Prob(graph.NodeID(i), graph.NodeID(j)) - est.Prob(graph.NodeID(i), graph.NodeID(j)))
			meanAbs += d
			if d > maxAbs {
				maxAbs = d
			}
			count++
		}
	}
	if count > 0 {
		meanAbs /= float64(count)
	}
	return meanAbs, maxAbs
}
