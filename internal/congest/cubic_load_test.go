package congest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/srcr"
)

// TestCubicEndToEnd runs a full MORE transfer over a lossy chain under the
// cubic policy: the credit machinery must still gate relays (grants flow,
// giving the source its RTT samples) while the cubic window paces the
// source, and the transfer must complete.
func TestCubicEndToEnd(t *testing.T) {
	topo := graph.LossyChain(5, 20, 30)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	cfg := core.DefaultConfig()
	cfg.BatchSize = 8
	cfg.PayloadSize = 256
	nodes := make([]*core.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range nodes {
		nodes[i] = core.NewNode(cfg, oracle)
		layers[i] = New(Config{Policy: Cubic, CreditMinK: -1}, nodes[i])
		s.Attach(graph.NodeID(i), layers[i])
	}
	file := flow.NewFile(4096, 256, 1)
	var result flow.Result
	nodes[4].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 4, file, func(r flow.Result) { result = r }); err != nil {
		t.Fatal(err)
	}
	s.Run(120 * sim.Second)
	if !result.Completed {
		t.Fatalf("transfer did not complete under cubic policy: %+v", result)
	}
	var grants int64
	for _, l := range layers {
		grants += l.Stats.GrantTx
	}
	if grants == 0 {
		t.Error("cubic policy suppressed the credit plane's grants")
	}
	// The source held cubic per-flow state and took RTT samples from the
	// grant/ACK round trips (SRTT departs from its cold-start seed).
	cf := layers[0].cubic[1]
	if cf == nil {
		t.Fatal("source never created cubic flow state")
	}
	if cf.srtt == cubicDefaultRTT {
		t.Error("no RTT sample ever updated the source's SRTT")
	}
	// Relays never source frames, so they never grow cubic state.
	for i := 1; i < len(layers); i++ {
		if len(layers[i].cubic) != 0 {
			t.Errorf("relay %d holds cubic state for %d flows", i, len(layers[i].cubic))
		}
	}
}

// TestCubicPacesSourceNotRelay: the window's token bucket must gate a
// backlogged source immediately, then drain it at the paced rate as
// simulated time passes — and never touch relay traffic.
func TestCubicPacesSourceNotRelay(t *testing.T) {
	p := &fakeProto{}
	for i := 0; i < 200; i++ {
		p.frames = append(p.frames, moreFrame(1, 0, 0, 0))
	}
	l, s := newTestLayer(t, Config{Policy: Cubic, BucketDepth: 4, CubicInitWindow: 8, CreditMinK: -1}, p)
	sent := 0
	for i := 0; i < 20; i++ {
		if l.Pull() != nil {
			sent++
		}
	}
	if sent > 5 {
		t.Errorf("cubic token bucket did not gate: %d sends with depth 4", sent)
	}
	// The layer's wake events drive the node autonomously: over simulated
	// time the backlog must drain at the paced rate — neither stalled (the
	// bucket never refilling) nor unbounded (the window not gating).
	before := len(p.frames)
	s.After(sim.Second, func() {})
	s.Run(2 * sim.Second)
	drained := before - len(p.frames)
	if drained == 0 {
		t.Error("paced source never drained: bucket did not refill with time")
	}
	if drained > 190 {
		t.Errorf("source drained %d frames in 2s: window pacing not applied", drained)
	}

	// Relay traffic (sourced elsewhere) bypasses the window entirely: a
	// fresh layer offered only relay frames sends them all, without ever
	// allocating per-flow cubic state.
	rp := &fakeProto{}
	for i := 0; i < 20; i++ {
		rp.frames = append(rp.frames, moreFrame(2, 0, 5, 0))
	}
	rl, _ := newTestLayer(t, Config{Policy: Cubic, BucketDepth: 4, CreditMinK: -1}, rp)
	relayed := 0
	for i := 0; i < 20; i++ {
		if rl.Pull() != nil {
			relayed++
		}
	}
	if relayed != 20 {
		t.Errorf("relay frames gated by cubic source pacing: %d of 20 sent", relayed)
	}
	if len(rl.cubic) != 0 {
		t.Errorf("relay traffic allocated cubic state for %d flows", len(rl.cubic))
	}
}

// TestCubicStagnationShrinksWindow drives a source against a wall (no
// receiver progress) and checks the stagnation rule registers congestion
// events: w_max collapses toward the floor and decreases are counted.
func TestCubicStagnationShrinksWindow(t *testing.T) {
	p := &fakeProto{}
	for i := 0; i < 400; i++ {
		p.frames = append(p.frames, moreFrame(1, 0, 0, 0))
	}
	l, s := newTestLayer(t, Config{Policy: Cubic, StagnationFactor: 1, BucketDepth: 64, CubicInitWindow: 64, CreditMinK: -1}, p)
	for i := 0; i < 40; i++ {
		l.Pull()
		s.Run(s.Now() + sim.Second/10)
	}
	if l.Stats.RateDecreases == 0 {
		t.Error("stagnating batch never triggered a cubic congestion event")
	}
	cf := l.cubic[1]
	if cf == nil {
		t.Fatal("no cubic state")
	}
	if cf.wmax >= 64 {
		t.Errorf("w_max did not shrink under stagnation: %v", cf.wmax)
	}
}

// TestCombineCreditCubicStacking runs the mixed-protocol composition the
// scenario engine builds — srcr and MORE members under one cubic layer —
// and checks the stacking holds: the layer's credit plane still grants and
// completes the MORE transfer while srcr datagram traffic shares the node.
func TestCombineCreditCubicStacking(t *testing.T) {
	topo := graph.Line(4, 0.9, 20)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	cfg := core.DefaultConfig()
	cfg.BatchSize = 8
	cfg.PayloadSize = 256
	srcrNodes := make([]*srcr.Node, topo.N())
	coreNodes := make([]*core.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range srcrNodes {
		srcrNodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		coreNodes[i] = core.NewNode(cfg, oracle)
		layers[i] = New(Config{Policy: Cubic, CreditMinK: -1}, Combine(srcrNodes[i], coreNodes[i]))
		s.Attach(graph.NodeID(i), layers[i])
	}
	moreFile := flow.NewFile(4096, 256, 1)
	pushFile := flow.NewFile(200*256, 256, 2)
	tr := flow.Traffic{Model: flow.PushCBR, RatePPS: 100, Packets: 200}
	var moreRes flow.Result
	coreNodes[3].ExpectFlow(1, moreFile, nil)
	srcrNodes[3].ExpectFlow(2, pushFile, nil)
	if err := coreNodes[0].StartFlow(1, 3, moreFile, func(r flow.Result) { moreRes = r }); err != nil {
		t.Fatal(err)
	}
	if err := srcrNodes[0].StartPushFlow(2, 3, tr, pushFile, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(120 * sim.Second)
	if !moreRes.Completed {
		t.Fatalf("MORE transfer failed under cubic in a mixed stack: %+v", moreRes)
	}
	var st Stats
	for _, l := range layers {
		st.Add(l.Stats)
	}
	if st.GrantTx == 0 {
		t.Error("no grants in the cubic mixed stack")
	}
	if srcrNodes[3].Result(2).PacketsDelivered == 0 {
		t.Error("push traffic starved under the cubic layer")
	}
}

// TestChokeLoadExportStacking: the other scenario composition — a choked
// push overload with load export on. The layer must surface nonzero load
// signals and a queue high-water mark without perturbing the choke policy
// itself (load tracking is pure observation).
func TestChokeLoadExportStacking(t *testing.T) {
	topo := graph.Line(3, 0.95, 20)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	nodes := make([]*srcr.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range nodes {
		nodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		layers[i] = New(Config{Policy: Choke, LoadExport: true}, Combine(nodes[i]))
		s.Attach(graph.NodeID(i), layers[i])
	}
	tr := flow.Traffic{Model: flow.PushCBR, RatePPS: 2000, Packets: 1000}
	file := flow.NewFile(1000*1500, 1500, 3)
	nodes[2].ExpectFlow(1, file, nil)
	if err := nodes[0].StartPushFlow(1, 2, tr, file, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * sim.Second)

	src := layers[0]
	if src.QueueHWM() == 0 {
		t.Error("overloaded source recorded no queue high-water mark")
	}
	if src.LoadByte() == 0 {
		t.Error("overloaded source exports a zero load byte")
	}
	ld := src.LoadSignals()
	if ld.Queue == 0 && ld.Drop == 0 {
		t.Errorf("no load signal moved under 5x overload: %+v", ld)
	}
	// An idle bystander prices as unloaded.
	if layers[2].LoadByte() != 0 {
		// The sink still receives and forwards nothing onward; its queue
		// stays shallow, so its load score rounds to zero.
		t.Errorf("idle sink exports load %d", layers[2].LoadByte())
	}
	// Same overload, load export off: signals still tracked internally but
	// the policy outcome is unchanged — choke drops fire either way.
	if src.Stats.ChokeDrops == 0 && src.Stats.TailDrops == 0 {
		t.Error("overload produced no drops at the source")
	}
}

// TestLoadScoreClamp pins the score weighting and its clamp.
func TestLoadScoreClamp(t *testing.T) {
	ld := Load{Queue: 1, Drop: 1, Starve: 1}
	if got := ld.Score(); got != 1 {
		t.Errorf("saturated score = %v, want clamp at 1", got)
	}
	if got := (Load{}).Score(); got != 0 {
		t.Errorf("idle score = %v", got)
	}
	half := Load{Queue: 0.5}
	if got := half.Score(); got <= 0 || got >= 1 {
		t.Errorf("partial score out of range: %v", got)
	}
}
