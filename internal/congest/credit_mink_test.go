package congest

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

// runChainMORE transfers one small file over a lossy chain with the given
// batch size and congestion config on every node, returning the result,
// the medium counters, and the aggregated layer stats.
func runChainMORE(t *testing.T, batch int, cfg Config) (flow.Result, sim.Counters, Stats) {
	t.Helper()
	topo := graph.LossyChain(5, 20, 30)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	ccfg := core.DefaultConfig()
	ccfg.BatchSize = batch
	ccfg.PayloadSize = 256
	nodes := make([]*core.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range nodes {
		nodes[i] = core.NewNode(ccfg, oracle)
		layers[i] = New(cfg, nodes[i])
		s.Attach(graph.NodeID(i), layers[i])
	}
	file := flow.NewFile(batch*256, 256, 1) // exactly one batch of rank K
	var result flow.Result
	nodes[4].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 4, file, func(r flow.Result) { result = r }); err != nil {
		t.Fatal(err)
	}
	s.Run(120 * sim.Second)
	var st Stats
	for _, l := range layers {
		st.Add(l.Stats)
	}
	return result, s.Counters, st
}

// TestCreditBypassesSubFloorBatches is the sub-batch workload fix: a
// single-batch transfer at K = 11 (below the CreditMinK floor of 16) must
// not engage the grant/probe machinery at all — the run is byte-identical
// to the plain bounded queue (Tail policy), because in a batch that small
// the whole transfer is endgame and the machinery's own frames invert
// credit's large-scale win.
func TestCreditBypassesSubFloorBatches(t *testing.T) {
	const k = 11
	creditRes, creditCtr, creditStats := runChainMORE(t, k, Config{Policy: Credit})
	tailRes, tailCtr, tailStats := runChainMORE(t, k, Config{Policy: Tail})

	if creditStats.GrantTx != 0 || creditStats.ProbeSends != 0 || creditStats.GateSkips != 0 {
		t.Errorf("credit machinery engaged below the K floor: grants=%d probes=%d gateSkips=%d",
			creditStats.GrantTx, creditStats.ProbeSends, creditStats.GateSkips)
	}
	if !creditRes.Completed {
		t.Fatalf("K=%d credit transfer incomplete: %+v", k, creditRes)
	}
	if !reflect.DeepEqual(creditCtr, tailCtr) {
		t.Errorf("sub-floor credit run diverged from tail:\ncredit: %+v\ntail:   %+v", creditCtr, tailCtr)
	}
	if creditRes != tailRes {
		t.Errorf("sub-floor credit result diverged from tail:\ncredit: %+v\ntail:   %+v", creditRes, tailRes)
	}
	if creditStats.Enqueued != tailStats.Enqueued {
		t.Errorf("queue behavior diverged: credit enqueued %d, tail %d", creditStats.Enqueued, tailStats.Enqueued)
	}
}

// TestCreditEngagesAtAndAboveFloor pins the other side of the floor: at
// K = 32 (and at the floor itself) grants still flow.
func TestCreditEngagesAtAndAboveFloor(t *testing.T) {
	for _, k := range []int{16, 32} {
		res, _, st := runChainMORE(t, k, Config{Policy: Credit})
		if !res.Completed {
			t.Fatalf("K=%d credit transfer incomplete: %+v", k, res)
		}
		if st.GrantTx == 0 {
			t.Errorf("K=%d: no grants above the CreditMinK floor", k)
		}
	}
}

// TestNeedAdvertiseMaxScalesWithK checks the endgame-countdown threshold
// shrinks proportionally with the batch rank.
func TestNeedAdvertiseMaxScalesWithK(t *testing.T) {
	l := New(Config{Policy: Credit}, &fakeProto{})
	for _, c := range []struct{ k, want int }{
		{32, 8}, // the K=32 tuning point: unchanged
		{24, 6},
		{16, 4},
		{4, 1},  // floor: never below one
		{0, 8},  // unknown rank: config value
		{64, 8}, // large K: capped at the config value
	} {
		if got := l.needAdvertiseMax(c.k); got != c.want {
			t.Errorf("needAdvertiseMax(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}
