package congest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{None, Tail, Choke, Credit, AIMD, Cubic} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if p, err := ParsePolicy(""); err != nil || p != None {
		t.Errorf("empty policy: got %v, %v", p, err)
	}
}

func TestNewPanicsOnNone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(None) did not panic")
		}
	}()
	New(Config{Policy: None}, &fakeProto{})
}

// fakeProto is a scripted protocol: Pull returns the queued frames in
// order; Sent outcomes are recorded.
type fakeProto struct {
	frames  []*sim.Frame
	control []*sim.Frame
	sent    []bool
	dropped []*sim.Frame
}

func (p *fakeProto) Init(*sim.Node)     {}
func (p *fakeProto) Receive(*sim.Frame) {}
func (p *fakeProto) HasControl() bool   { return len(p.control) > 0 }
func (p *fakeProto) Sent(f *sim.Frame, ok bool) {
	p.sent = append(p.sent, ok)
	if !ok {
		p.dropped = append(p.dropped, f)
	}
}
func (p *fakeProto) Pull() *sim.Frame {
	if len(p.control) > 0 {
		f := p.control[0]
		p.control = p.control[1:]
		return f
	}
	if len(p.frames) == 0 {
		return nil
	}
	f := p.frames[0]
	p.frames = p.frames[1:]
	return f
}

// ctrlMsg is an unknown payload type: the layer must treat it as control.
type ctrlMsg struct{}

func moreFrame(fid flow.ID, batch uint32, src, from graph.NodeID) *sim.Frame {
	m := &core.DataMsg{Flow: fid, Src: src, Dst: 9, Batch: batch, K: 4}
	return &sim.Frame{From: from, To: graph.Broadcast, Bytes: 100, Payload: m, FlowID: uint32(fid)}
}

// newTestLayer builds a layer over a 2-node simulator so node handles,
// RNG, and timers exist.
func newTestLayer(t *testing.T, cfg Config, proto sim.Protocol) (*Layer, *sim.Simulator) {
	t.Helper()
	topo := graph.New(2)
	topo.SetLink(0, 1, 1)
	s := sim.New(topo, sim.DefaultConfig())
	l := New(cfg, proto)
	s.Attach(0, l)
	s.Attach(1, &fakeProto{}) // sink for whatever node 0 puts on the air
	return l, s
}

func TestQueueBoundsAndTailDrop(t *testing.T) {
	p := &fakeProto{}
	for i := 0; i < 10; i++ {
		p.frames = append(p.frames, moreFrame(1, 0, 0, 0))
	}
	l, _ := newTestLayer(t, Config{Policy: Tail, QueueLen: 3}, p)
	// First pull: refills up to the bound and returns the head.
	f := l.Pull()
	if f == nil {
		t.Fatal("no frame")
	}
	if got := l.QueueLen(); got > 3 {
		t.Errorf("queue %d exceeds bound 3", got)
	}
	// The layer backpressures instead of dropping: pull-based protocols
	// only overflow via the full-queue control probe.
	if l.Stats.TailDrops != 0 {
		t.Errorf("unexpected tail drops: %d", l.Stats.TailDrops)
	}
}

func TestControlBypassesQueue(t *testing.T) {
	p := &fakeProto{}
	p.frames = append(p.frames, moreFrame(1, 0, 0, 0), moreFrame(1, 0, 0, 0))
	ctrl := &sim.Frame{From: 0, To: 1, Bytes: 10, Payload: &ctrlMsg{}}
	p.control = append(p.control, ctrl)
	l, _ := newTestLayer(t, Config{Policy: Tail, QueueLen: 2}, p)
	if f := l.Pull(); f != ctrl {
		t.Fatalf("control frame did not surface first: %v", f.Payload)
	}
}

func TestFullQueueControlProbeUsesHasControl(t *testing.T) {
	// A credit-gated flow keeps the queue blocked, which is the only state
	// in which the full-queue control probe matters.
	p := &fakeProto{}
	for i := 0; i < 20; i++ {
		p.frames = append(p.frames, moreFrameWithFwd(1, 0, 0, 0, []graph.NodeID{1}))
	}
	l, _ := newTestLayer(t, Config{Policy: Credit, QueueLen: 1, CreditMinK: -1}, p)
	// Gate the flow, then fill the queue with gated frames.
	l.Receive(&sim.Frame{From: 1, To: graph.Broadcast, Payload: &CreditMsg{Flow: 1, Batch: 0, Needed: 0}})
	for i := 0; i < 6; i++ {
		l.Pull()
	}
	if l.QueueLen() == 0 {
		t.Fatal("queue did not retain gated frames")
	}
	before := len(p.frames)
	// Queue blocked, no control: HasControl()==false must suppress the
	// probe pull entirely.
	if f := l.Pull(); f != nil {
		t.Fatalf("gated flow transmitted: %T", f.Payload)
	}
	if len(p.frames) != before {
		t.Fatalf("probe pull ran despite HasControl()==false: %d -> %d", before, len(p.frames))
	}
	// With control queued, the probe pull must surface it immediately.
	ctrl := &sim.Frame{From: 0, To: 1, Bytes: 10, Payload: &ctrlMsg{}}
	p.control = append(p.control, ctrl)
	if f := l.Pull(); f != ctrl {
		var typ interface{}
		if f != nil {
			typ = f.Payload
		}
		t.Fatalf("control frame stuck behind blocked queue: got %T", typ)
	}
}

func TestChokeDropsSameFlowPairAtOverflow(t *testing.T) {
	// Overflow cannot happen through normal refill (the layer
	// backpressures pull-based protocols), so drive enqueue directly: a
	// hard-capped queue receiving one more frame of the dominant flow.
	p := &fakeProto{}
	l, _ := newTestLayer(t, Config{Policy: Choke, QueueLen: 1}, p)
	for i := 0; i < 4; i++ { // hard cap is 4×QueueLen
		f := moreFrame(7, 0, 0, 0)
		info, _ := l.dataInfo(f)
		l.enqueue(f, info)
	}
	if got := l.QueueLen(); got != 4 {
		t.Fatalf("queue at hard cap: %d", got)
	}
	f := moreFrame(7, 0, 0, 0)
	info, _ := l.dataInfo(f)
	l.enqueue(f, info)
	if l.Stats.ChokeDrops != 2 {
		t.Errorf("CHOKe drops = %d, want 2 (arrival + same-flow victim)", l.Stats.ChokeDrops)
	}
	if got := l.QueueLen(); got != 3 {
		t.Errorf("queue after pair drop: %d, want 3", got)
	}
	// A different flow's arrival at the (refilled) full queue tail-drops
	// instead: the victim comparison misses.
	for l.QueueLen() < 4 {
		f := moreFrame(7, 0, 0, 0)
		info, _ := l.dataInfo(f)
		l.enqueue(f, info)
	}
	g := moreFrame(8, 0, 0, 0)
	ginfo, _ := l.dataInfo(g)
	l.enqueue(g, ginfo)
	if l.Stats.TailDrops != 1 {
		t.Errorf("cross-flow overflow: tail drops = %d, want 1", l.Stats.TailDrops)
	}
	for _, ok := range p.sent {
		if ok {
			t.Error("dropped frame reported as sent ok")
		}
	}
}

func TestPurgeStaleOnNewerBatch(t *testing.T) {
	p := &fakeProto{}
	p.frames = append(p.frames,
		moreFrame(1, 0, 0, 0), moreFrame(1, 0, 0, 0), moreFrame(1, 0, 0, 0),
		moreFrame(1, 1, 0, 0))
	l, _ := newTestLayer(t, Config{Policy: Tail, QueueLen: 3}, p)
	l.Pull() // sends one batch-0 frame, queues two more
	l.Pull() // sends another; refill pulls the batch-1 frame, purging batch 0
	if l.Stats.StaleDrops == 0 {
		t.Error("no stale drops after newer batch arrived")
	}
	for _, q := range l.queue {
		if qi, _ := l.dataInfo(q); qi.batch != 1 {
			t.Errorf("stale batch %d frame survived purge", qi.batch)
		}
	}
}

// TestCreditEndToEnd runs a full MORE transfer over a lossy chain with the
// credit policy on every node and checks it completes with grants flowing.
func TestCreditEndToEnd(t *testing.T) {
	topo := graph.LossyChain(5, 20, 30)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	cfg := core.DefaultConfig()
	cfg.BatchSize = 8
	cfg.PayloadSize = 256
	nodes := make([]*core.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range nodes {
		nodes[i] = core.NewNode(cfg, oracle)
		layers[i] = New(Config{Policy: Credit, CreditMinK: -1}, nodes[i])
		s.Attach(graph.NodeID(i), layers[i])
	}
	file := flow.NewFile(4096, 256, 1)
	var result flow.Result
	doneAt := sim.Time(0)
	nodes[4].ExpectFlow(1, file, nil)
	if err := nodes[0].StartFlow(1, 4, file, func(r flow.Result) { result = r; doneAt = s.Now() }); err != nil {
		t.Fatal(err)
	}
	s.Run(120 * sim.Second)
	if !result.Completed || doneAt == 0 {
		t.Fatalf("transfer did not complete under credit policy: %+v", result)
	}
	var grants int64
	for _, l := range layers {
		grants += l.Stats.GrantTx
	}
	if grants == 0 {
		t.Error("no credit grants were transmitted")
	}
}

// TestCreditSuppressesSaturatedNeighborhood checks the gate itself: a
// sender that heard only zero-need grants for the current batch is
// silenced, then released by a positive grant.
func TestCreditGate(t *testing.T) {
	p := &fakeProto{}
	for i := 0; i < 6; i++ {
		p.frames = append(p.frames, moreFrameWithFwd(1, 0, 0, 0, []graph.NodeID{1}))
	}
	l, _ := newTestLayer(t, Config{Policy: Credit, CreditMinK: -1}, p)

	// Cold start: no grants, traffic flows.
	if l.Pull() == nil {
		t.Fatal("cold start gated")
	}
	// A zero-need grant from the only downstream forwarder gates the flow.
	l.Receive(&sim.Frame{From: 1, To: graph.Broadcast, Payload: &CreditMsg{Flow: 1, Batch: 0, Needed: 0}})
	if f := l.Pull(); f != nil {
		t.Fatalf("gated flow transmitted: %v", f.Payload)
	}
	if l.Stats.GateSkips == 0 {
		t.Error("gate skip not recorded")
	}
	// A positive grant reopens it.
	l.Receive(&sim.Frame{From: 1, To: graph.Broadcast, Payload: &CreditMsg{Flow: 1, Batch: 0, Needed: 3}})
	if l.Pull() == nil {
		t.Fatal("positive grant did not reopen the gate")
	}
}

func moreFrameWithFwd(fid flow.ID, batch uint32, src, from graph.NodeID, fwd []graph.NodeID) *sim.Frame {
	m := &core.DataMsg{Flow: fid, Src: src, Dst: 9, Batch: batch, K: 4}
	for _, id := range fwd {
		m.Forwarders = append(m.Forwarders, core.FwdEntry{Node: id, Credit: 1})
	}
	return &sim.Frame{From: from, To: graph.Broadcast, Bytes: 100, Payload: m, FlowID: uint32(fid)}
}

func TestAIMDGatesSourceAndAdapts(t *testing.T) {
	p := &fakeProto{}
	// A long backlog of source frames for one batch: the token bucket must
	// gate once BucketDepth is spent, and the stagnation rule must
	// eventually halve the rate.
	for i := 0; i < 200; i++ {
		p.frames = append(p.frames, moreFrame(1, 0, 0, 0))
	}
	l, s := newTestLayer(t, Config{Policy: AIMD, BucketDepth: 4, StagnationFactor: 1, RateInit: 100}, p)
	sent := 0
	for i := 0; i < 20; i++ {
		if l.Pull() != nil {
			sent++
		}
	}
	if sent > 5 {
		t.Errorf("token bucket did not gate: %d sends with depth 4", sent)
	}
	if l.Stats.RateDecreases != 0 {
		// 4 sends of a 4-packet batch at factor 1 is exactly the
		// threshold; tolerate either side but record it.
		t.Logf("early decreases: %d", l.Stats.RateDecreases)
	}
	// Advance simulated time so the bucket refills.
	s.After(sim.Second, func() {})
	s.Run(2 * sim.Second)
	if l.Pull() == nil {
		t.Error("bucket did not refill after simulated time passed")
	}
	// Relay frames (not sourced here) are never gated: offered next by the
	// protocol (a real protocol round-robins its flows), one surfaces
	// within a few opportunities even while the source flow is paced.
	p.frames = append([]*sim.Frame{moreFrame(2, 0, 5, 0)}, p.frames...)
	var relay *sim.Frame
	for i := 0; i < 10 && relay == nil; i++ {
		if f := l.Pull(); f != nil {
			if fi, _ := l.dataInfo(f); fi.flow == 2 {
				relay = f
			}
		}
	}
	if relay == nil {
		t.Error("relay frame was gated by source pacing")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Pushed: 9, Enqueued: 1, TailDrops: 2, ChokeDrops: 3, StaleDrops: 4, GrantTx: 5, GateSkips: 6, ProbeSends: 7, RateDecreases: 8}
	b := a
	a.Add(b)
	want := Stats{18, 2, 4, 6, 8, 10, 12, 14, 16}
	if a != want {
		t.Errorf("Add: got %+v want %+v", a, want)
	}
}
