package congest

import (
	"math"

	"repro/internal/sim"
)

// The Cubic policy replaces AIMD's fixed token bucket with a measured,
// per-flow adaptive window: each source maintains an RTT estimator fed by
// the feedback the network already sends it — credit grants from its
// downstream neighborhood (the Cubic policy keeps the Credit machinery's
// grants and gating in force) and the protocol's own end-to-end signals
// (MORE batch ACKs, ExOR batch completions, Srcr FIN/NACK round trips) —
// and paces its injection at W(t)/sRTT packets per second, where W(t) is
// the CUBIC window
//
//	W(t) = C·(t − K)³ + W_max,   K = ∛(W_max·(1 − β)/C)
//
// grown as a function of time since the last congestion event (Ha, Rhee &
// Xu, CUBIC). Congestion events are the same signals AIMD reacts to — a
// batch stagnating (many sends, no advance) or a batch-less unicast
// source's MAC failure — but the response is CUBIC's: remember W_max,
// shrink to β·W_max, then grow back along the cubic curve, plateauing near
// the old operating point instead of sawtoothing through it. Everything is
// driven by simulated time and per-flow state, so runs stay deterministic.

// cubicDefaultRTT seeds the pacing rate before the first RTT sample.
const cubicDefaultRTT = 100 * sim.Millisecond

// cubicSampleCap bounds a single RTT sample: feedback that arrives long
// after the source's last transmission (a probe crawling through a gated
// neighborhood) measures the gate, not the path.
const cubicSampleCap = sim.Time(sim.Second)

// cubicMinWindow floors the window so a flow can always probe.
const cubicMinWindow = 2.0

type cubicFlow struct {
	tokens float64
	last   sim.Time

	wmax  float64  // window at the last congestion event
	epoch sim.Time // start of the current cubic growth epoch

	srtt   sim.Time // smoothed RTT (RFC 6298 shape), 0 before first sample
	rttvar sim.Time

	lastSend sim.Time // most recent committed source send (RTT anchor)

	// Stagnation bookkeeping, shared shape with aimdFlow.
	batch  uint32
	seen   bool
	sends  int
	nextMD int
	initTh int
}

func (l *Layer) cubicFlowFor(fid uint32, now sim.Time) *cubicFlow {
	cf, ok := l.cubic[fid]
	if !ok {
		cf = &cubicFlow{tokens: l.cfg.BucketDepth, last: now, wmax: l.cfg.CubicInitWindow, epoch: now}
		l.cubic[fid] = cf
	}
	return cf
}

// window evaluates the CUBIC curve at simulated time now.
func (cf *cubicFlow) window(now sim.Time, cfg *Config) float64 {
	t := (now - cf.epoch).Seconds()
	k := math.Cbrt(cf.wmax * (1 - cfg.CubicBeta) / cfg.CubicC)
	w := cfg.CubicC*math.Pow(t-k, 3) + cf.wmax
	if w < cubicMinWindow {
		w = cubicMinWindow
	}
	return w
}

// rate converts the window into a pacing rate via the RTT estimate.
func (l *Layer) cubicRate(cf *cubicFlow, now sim.Time) float64 {
	srtt := cf.srtt
	if srtt <= 0 {
		srtt = cubicDefaultRTT
	}
	r := cf.window(now, &l.cfg) / srtt.Seconds()
	if r < l.cfg.RateMin {
		r = l.cfg.RateMin
	}
	if r > l.cfg.RateMax {
		r = l.cfg.RateMax
	}
	return r
}

// cubicOnCongestion registers a congestion event: remember the operating
// point, shrink multiplicatively, restart the cubic clock.
func (l *Layer) cubicOnCongestion(cf *cubicFlow) {
	cf.wmax = cf.window(l.node.Now(), &l.cfg)
	cf.epoch = l.node.Now()
	// The curve restarts at β·W_max by construction: W(0) = W_max − C·K³ =
	// β·W_max for K as defined above.
	l.Stats.RateDecreases++
}

// cubicRTTSample folds one feedback round trip into the estimator
// (standard SRTT/RTTVAR smoothing).
func (cf *cubicFlow) cubicRTTSample(s sim.Time) {
	if s <= 0 {
		return
	}
	if s > cubicSampleCap {
		s = cubicSampleCap
	}
	if cf.srtt == 0 {
		cf.srtt = s
		cf.rttvar = s / 2
		return
	}
	d := cf.srtt - s
	if d < 0 {
		d = -d
	}
	cf.rttvar += (d - cf.rttvar) / 4
	cf.srtt += (s - cf.srtt) / 8
}

// cubicFeedback is called when network feedback for a flow arrives at this
// node — a credit grant from the downstream neighborhood, a batch ACK or
// batch completion, a Srcr NACK. Only sources hold cubic state (relay
// traffic is never window-paced), so feedback passing through relays is
// ignored here, and the round trip measured is "source's most recent
// transmission → feedback heard".
func (l *Layer) cubicFeedback(fid uint32) {
	if l.cubic == nil {
		return
	}
	cf, ok := l.cubic[fid]
	if !ok || cf.lastSend == 0 {
		return
	}
	cf.cubicRTTSample(l.node.Now() - cf.lastSend)
}

// cubicCanSend gates source-injected data frames on a token bucket whose
// rate tracks the CUBIC window over the measured RTT; relay frames pass
// untouched (the Credit side of the policy handles them).
func (l *Layer) cubicCanSend(info frameInfo) bool {
	if !info.isSource {
		return true
	}
	now := l.node.Now()
	cf := l.cubicFlowFor(info.flow, now)
	rate := l.cubicRate(cf, now)
	if now > cf.last {
		cf.tokens += rate * (now - cf.last).Seconds()
		if cf.tokens > l.cfg.BucketDepth {
			cf.tokens = l.cfg.BucketDepth
		}
		cf.last = now
	}
	if cf.tokens < 1 {
		wait := sim.Time((1 - cf.tokens) / rate * float64(sim.Second))
		l.ensureWake(now + wait + 1)
		return false
	}
	return true
}

// cubicCommit charges the bucket for an approved source send, anchors the
// RTT sampler, and runs the stagnation detector (the congestion signal the
// window reacts to on batch transports).
func (l *Layer) cubicCommit(info frameInfo) {
	if !info.isSource {
		return
	}
	now := l.node.Now()
	cf := l.cubicFlowFor(info.flow, now)
	if info.hasBatch {
		if !cf.seen || info.batch > cf.batch {
			cf.seen = true
			cf.batch = info.batch
			cf.sends = 0
			cf.nextMD = cf.initTh
		}
	}
	cf.tokens--
	cf.sends++
	cf.lastSend = now
	if info.hasBatch {
		if cf.initTh == 0 {
			cf.initTh = int(l.cfg.StagnationFactor * float64(maxInt(1, batchK(info))))
			cf.nextMD = cf.initTh
		}
		if cf.nextMD > 0 && cf.sends >= cf.nextMD {
			l.cubicOnCongestion(cf)
			cf.nextMD *= 2
		}
	}
}
