package congest

// Load is a node's congestion signal set, exported by the layer for the
// load-aware cost plane (routing.CostModel): queue-depth EWMA, drop-rate
// EWMA, and credit-grant starvation EWMA, each normalized to [0, 1]. The
// layer updates the EWMAs as a side effect of its own queue decisions —
// pure observation, so tracking never perturbs traffic — and Score folds
// them into the scalar that routing penalties and LSA load bytes carry.
type Load struct {
	// Queue is the EWMA of the data-queue depth at enqueue decisions,
	// normalized by the hard cap (4×QueueLen): ~1 under sustained
	// overflow pressure, ~0 on an idle node.
	Queue float64
	// Drop is the EWMA of the drop indicator at enqueue decisions (tail
	// and CHOKe drops count; accepted frames decay it).
	Drop float64
	// Starve is the EWMA of the gate-starvation indicator at dequeue:
	// 1 when a backlogged queue released nothing (every frame pacing-
	// gated), 0 when a frame went to air.
	Starve float64
}

// loadAlpha is the EWMA gain. 1/16 remembers roughly the last few dozen
// queue decisions — long enough to ride out one batch endgame, short
// enough that a hotspot shows up within a couple of LSA intervals.
const loadAlpha = 1.0 / 16.0

// Score folds the signals into one scalar in [0, 1]. Drops dominate: a
// dropping node is shedding traffic it already accepted, the sharpest
// evidence of saturation. Standing queues get a small weight only — a
// busy MORE relay is backlogged *by design*, and pricing backlog heavily
// makes a bulk flow demote its own best forwarders (self-penalization,
// which oscillates: best path heats, gets priced out, cools, flips back).
// Starvation (credit gating) marks a neighborhood already throttled by
// receiver pacing.
func (ld Load) Score() float64 {
	s := 0.15*ld.Queue + 0.6*ld.Drop + 0.25*ld.Starve
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// loadState is the layer's always-on load tracking.
type loadState struct {
	load Load
	hwm  int64 // queue-depth high-water mark
}

// observeQueue folds one enqueue decision (post-decision depth, whether
// the frame was dropped) into the EWMAs and the high-water mark.
func (l *Layer) observeQueue(dropped bool) {
	depth := len(l.queue)
	if int64(depth) > l.loadst.hwm {
		l.loadst.hwm = int64(depth)
	}
	norm := float64(depth) / float64(4*l.cfg.QueueLen)
	if norm > 1 {
		norm = 1
	}
	ld := &l.loadst.load
	ld.Queue += loadAlpha * (norm - ld.Queue)
	ind := 0.0
	if dropped {
		ind = 1
	}
	ld.Drop += loadAlpha * (ind - ld.Drop)
}

// observeGate folds one dequeue outcome on a backlogged queue into the
// starvation EWMA: released == false means every queued frame was
// pacing-gated this opportunity.
func (l *Layer) observeGate(released bool) {
	ind := 1.0
	if released {
		ind = 0
	}
	l.loadst.load.Starve += loadAlpha * (ind - l.loadst.load.Starve)
}

// LoadSignals returns the current raw signal set.
func (l *Layer) LoadSignals() Load { return l.loadst.load }

// LoadScore returns the current scalar load in [0, 1].
func (l *Layer) LoadScore() float64 { return l.loadst.load.Score() }

// LoadByte quantizes the score to the byte LSAs carry (0 = unloaded,
// 255 = saturated). Both the oracle cost model and the learned plane
// quantize through this same function, so perfect and learned knowledge
// price load on the same scale.
func (l *Layer) LoadByte() uint8 {
	v := int(l.loadst.load.Score()*255 + 0.5)
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// QueueHWM returns the queue-depth high-water mark over the run.
func (l *Layer) QueueHWM() int64 { return l.loadst.hwm }
