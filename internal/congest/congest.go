// Package congest is the congestion-control subsystem MORE deliberately
// ships without (the paper notes the lack; the PR 2 scaling sweep shows the
// cost: transmissions-per-packet exploding past ~500 nodes under multi-flow
// load as hidden-terminal collisions compound). It layers a pluggable
// congestion layer between each node's routing protocol and its MAC:
//
//   - a bounded per-node transmit queue with a selectable drop policy —
//     plain tail drop, or a CHOKe-style fair AQM that, on overflow, compares
//     the arriving frame against a randomly chosen queued frame and drops
//     both when they belong to the same flow (Pan, Prabhakar & Psounis,
//     INFOCOM'00), penalizing whichever flow dominates the queue;
//   - credit-based forwarder pacing for MORE: every node that holds batch
//     state broadcasts small credit grants advertising how many more
//     innovative packets it can still use (K minus its current rank);
//     upstream nodes stop transmitting a batch once every downstream
//     listener they can hear reports zero need, and a positive grant tops
//     a full-rank forwarder's Eq. (3.3) credit back up so suppression
//     upstream cannot starve the frontier — receiver-driven flow control
//     that throttles the innovation-less retransmission storms the
//     open-loop credits cannot see;
//   - per-source AIMD rate adaptation: a token bucket paces each source's
//     packet injection, additively speeding up on batch progress and
//     multiplicatively backing off when a batch stagnates (many sends, no
//     advance) or unicast sends fail — end-to-end control in the spirit of
//     utility-based on-line congestion control;
//   - CUBIC pacing (Policy Cubic): the Credit machinery's grants and gating
//     plus a per-flow RTT estimator at each source — grant and FIN/ACK
//     round trips are the samples — driving a CUBIC-style window whose
//     W(t)/sRTT rate replaces AIMD's fixed token bucket (cubic.go).
//
// The layer also tracks per-node load signals (queue-depth EWMA, drop
// rate, credit-grant starvation — load.go) that, when Config.LoadExport is
// set, feed the routing.CostModel cost plane: saturated forwarders are
// demoted in MORE forwarder sets, ExOR priority lists, and Srcr paths,
// closing the loop from queues back to routing.
//
// The layer implements sim.Protocol and wraps the data protocol, so control
// traffic the protocol prioritizes internally (batch ACKs, NACKs, LSAs in a
// sibling stack layer) bypasses the data queue, and everything the layer
// emits contends for the real medium. With Policy None no layer is
// installed at all — runs are byte-identical to the pre-congestion code
// (pinned by the experiments golden tests).
package congest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exor"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/srcr"
	"repro/internal/telemetry"
)

// Policy selects the congestion-control mechanism.
type Policy int

const (
	// None installs no congestion layer (byte-identical baseline).
	None Policy = iota
	// Tail bounds the transmit queue with plain tail drop.
	Tail
	// Choke is Tail plus CHOKe-style fair dropping at overflow: the
	// arriving frame is compared against a random queued frame and both are
	// dropped when they share a flow.
	Choke
	// Credit adds receiver-driven pacing on top of the bounded queue:
	// downstream nodes grant credits (their remaining rank deficit) and
	// upstream nodes stop transmitting a batch its listeners cannot use.
	Credit
	// AIMD paces each source's injection rate with a token bucket,
	// additively increasing on batch progress and multiplicatively backing
	// off on stagnation or unicast failure.
	AIMD
	// Cubic keeps the Credit machinery's grants and gating and replaces
	// the source-side token bucket with a per-flow RTT estimator driving a
	// CUBIC-style window: grant and FIN/ACK round trips are the RTT sample
	// source, and the pacing rate is W(t)/sRTT (see cubic.go).
	Cubic
)

// String renders the -cc flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case Tail:
		return "tail"
	case Choke:
		return "choke"
	case Credit:
		return "credit"
	case AIMD:
		return "aimd"
	case Cubic:
		return "cubic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MarshalText lets Policy fields render readably in -json output.
func (p Policy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses the MarshalText form back (JSON round trips).
func (p *Policy) UnmarshalText(text []byte) error {
	v, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParsePolicy parses a -cc flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "none":
		return None, nil
	case "tail":
		return Tail, nil
	case "choke":
		return Choke, nil
	case "credit":
		return Credit, nil
	case "aimd":
		return AIMD, nil
	case "cubic":
		return Cubic, nil
	default:
		return 0, fmt.Errorf("congest: unknown policy %q (want none, tail, choke, credit, aimd, or cubic)", s)
	}
}

// Config parameterizes the congestion layer.
type Config struct {
	// Policy selects the mechanism; None disables the layer entirely.
	Policy Policy
	// QueueLen bounds the per-node data transmit queue (default 2). The
	// default is deliberately shallow: frames are generated at pull time,
	// so a deep queue sends coded packets whose recombination predates the
	// node's latest receptions — measurably redundant downstream. Two
	// slots give the AQM policies a queue to manage without replicating
	// the §4.1.2 50-packet driver queue's staleness at MORE's expense
	// (the -cc-queue sweep in PERFORMANCE.md quantifies the cost of
	// deeper queues).
	QueueLen int

	// GateTimeout is the base interval at which a credit-gated flow still
	// releases a single probe transmission (default 60 ms; the interval
	// doubles while nothing changes, up to 32×) — the liveness escape
	// hatch when grants or batch ACKs are lost.
	GateTimeout sim.Time
	// NeedAdvertiseMax bounds the per-change positive grants: a granter
	// re-advertises every change of its remaining need only once the need
	// is at most this (default 8). Larger needs are announced once per
	// batch; the endgame countdown — the part that decides gating — stays
	// fresh without a grant per innovative reception.
	NeedAdvertiseMax int
	// GrantRefresh re-advertises a zero need at most this often while
	// traffic for the completed batch keeps arriving (default 150 ms) —
	// the retransmission path for a lost stop signal, self-limiting
	// because it is driven by the very traffic it suppresses.
	GrantRefresh sim.Time
	// GrantMinInterval floors the spacing between a granter's successive
	// grants for one flow (default 50 ms). Only the gating transitions —
	// need hitting zero or reappearing — bypass it: every broadcast
	// reception is a grant opportunity at every listener, so without a
	// floor the endgame countdown multiplies across the neighborhood into
	// a grant storm that feeds the very congestion it should damp.
	GrantMinInterval sim.Time
	// GrantTTL expires a grant's word (default 500 ms): a zero-need grant
	// older than this no longer gates the sender. A suppressed flow's own
	// residual traffic refreshes live zeros every GrantRefresh, so the
	// gate holds exactly as long as the granter keeps restating it — and
	// a silence deep enough to stop the refreshes releases the flow
	// instead of stranding it on probe backoff.
	GrantTTL sim.Time
	// CreditMinK floors the batch rank the Credit machinery engages at
	// (default 16): MORE batches with K below the floor bypass grants and
	// gating entirely and run over the plain bounded queue. In a batch
	// this small the whole transfer is "endgame" — the grant/probe
	// machinery's own frames and probe backoffs outweigh any suppression
	// savings, inverting the result credit wins at K = 32 (the sub-batch
	// workload regression the scaling sweeps flagged). Negative disables
	// the floor. For K at or above the floor the endgame-countdown
	// threshold (NeedAdvertiseMax) additionally scales as K/4 so the grant
	// count per batch stays a constant fraction of the batch.
	CreditMinK int

	// RateInit is the AIMD starting injection rate in packets/second
	// (default 300). RateMin/RateMax clamp it (defaults 64 and 2000).
	RateInit, RateMin, RateMax float64
	// RateStep is the additive increase per batch advance (default 30).
	RateStep float64
	// RateBeta is the multiplicative decrease factor (default 0.5).
	RateBeta float64
	// StagnationFactor triggers a decrease after StagnationFactor×K sends
	// within one batch without an advance (default 10; the threshold
	// doubles after each decrease within the same batch).
	StagnationFactor float64
	// BucketDepth caps accumulated tokens (default 8 packets).
	BucketDepth float64

	// CubicC is the CUBIC growth constant C in windows/second³
	// (default 0.4, the RFC 8312 value).
	CubicC float64
	// CubicBeta is the CUBIC multiplicative-decrease factor β
	// (default 0.7): after a congestion event the window restarts at
	// β·W_max and grows back along the cubic curve.
	CubicBeta float64
	// CubicInitWindow seeds W_max for a new flow (default 32 packets):
	// with the default 100 ms RTT seed the starting pacing rate lands
	// near AIMD's RateInit.
	CubicInitWindow float64

	// LoadExport turns on export of the layer's load signals (queue-depth
	// EWMA, drop rate, credit-grant starvation — see Load) to the cost
	// plane: the per-node scores feed routing.CostModel penalties and
	// ride on LSAs under learned state, and queue high-water marks are
	// surfaced in sim.Counters. The layer tracks the signals regardless
	// (observation only); this knob controls whether anything consumes
	// them, so default-off runs stay byte-identical.
	LoadExport bool
}

// DefaultConfig returns the given policy with default knobs.
func DefaultConfig(p Policy) Config {
	return Config{Policy: p}
}

func (c *Config) fillDefaults() {
	if c.QueueLen <= 0 {
		c.QueueLen = 2
	}
	if c.GateTimeout <= 0 {
		c.GateTimeout = 60 * sim.Millisecond
	}
	if c.NeedAdvertiseMax <= 0 {
		c.NeedAdvertiseMax = 8
	}
	if c.GrantRefresh <= 0 {
		c.GrantRefresh = 150 * sim.Millisecond
	}
	if c.GrantMinInterval <= 0 {
		c.GrantMinInterval = 50 * sim.Millisecond
	}
	if c.GrantTTL <= 0 {
		c.GrantTTL = 500 * sim.Millisecond
	}
	if c.CreditMinK == 0 {
		c.CreditMinK = 16
	}
	if c.RateInit <= 0 {
		c.RateInit = 300
	}
	if c.RateMin <= 0 {
		c.RateMin = 64
	}
	if c.RateMax <= 0 {
		c.RateMax = 2000
	}
	if c.RateStep <= 0 {
		c.RateStep = 30
	}
	if c.RateBeta <= 0 || c.RateBeta >= 1 {
		c.RateBeta = 0.5
	}
	if c.StagnationFactor <= 0 {
		c.StagnationFactor = 10
	}
	if c.BucketDepth <= 0 {
		c.BucketDepth = 8
	}
	if c.CubicC <= 0 {
		c.CubicC = 0.4
	}
	if c.CubicBeta <= 0 || c.CubicBeta >= 1 {
		c.CubicBeta = 0.7
	}
	if c.CubicInitWindow <= 0 {
		c.CubicInitWindow = 32
	}
}

// Stats counts what the layer did to the traffic passing through it.
type Stats struct {
	// Pushed counts frames injected by push sources (sim.FrameSink), before
	// the drop policy ruled on them.
	Pushed int64
	// Enqueued counts data frames accepted into the queue.
	Enqueued int64
	// TailDrops counts frames dropped because the queue was full.
	TailDrops int64
	// ChokeDrops counts frames dropped by the CHOKe same-flow comparison
	// (both members of each dropped pair are counted).
	ChokeDrops int64
	// StaleDrops counts queued frames dropped because their flow moved to
	// a newer batch before they reached the air.
	StaleDrops int64
	// GrantTx counts credit-grant broadcasts sent.
	GrantTx int64
	// GateSkips counts transmission opportunities a gated frame declined.
	GateSkips int64
	// ProbeSends counts gated transmissions released by the GateTimeout
	// liveness escape.
	ProbeSends int64
	// RateDecreases counts AIMD multiplicative-decrease events.
	RateDecreases int64
}

// Add accumulates s2 into s (aggregating per-node layers into a run total).
func (s *Stats) Add(s2 Stats) {
	s.Pushed += s2.Pushed
	s.Enqueued += s2.Enqueued
	s.TailDrops += s2.TailDrops
	s.ChokeDrops += s2.ChokeDrops
	s.StaleDrops += s2.StaleDrops
	s.GrantTx += s2.GrantTx
	s.GateSkips += s2.GateSkips
	s.ProbeSends += s2.ProbeSends
	s.RateDecreases += s2.RateDecreases
}

// NeedReporter is implemented by protocols that can report how many more
// innovative packets they can use for a flow's current batch — the signal
// the Credit policy turns into grants. core.Node implements it.
type NeedReporter interface {
	// BatchNeeded returns the flow's current batch at this node and how
	// many more innovative packets this node can absorb for it (0 when the
	// batch is complete or already acknowledged). ok is false when the
	// node holds no receive-side state for the flow.
	BatchNeeded(id flow.ID) (batch uint32, needed int, ok bool)
}

// CreditTopper is implemented by protocols whose forwarder transmission
// rights the Credit policy can replenish from downstream grants: a
// positive grant tops the forwarder's credit for that batch up to the
// granted need, so a chain whose reception-driven credits drained keeps
// serving advertised demand. core.Node implements it.
type CreditTopper interface {
	TopUpRelayCredit(id flow.ID, batch uint32, granter graph.NodeID, credit float64)
}

// ControlReporter is implemented by protocols that can say whether they
// hold queued control traffic (batch ACKs, NACKs). The layer uses it to
// decide whether a pull is worth making at a full queue: without the hint
// it must pull speculatively (generating a data frame it may immediately
// drop) so queued control can never starve behind a full data queue.
type ControlReporter interface {
	HasControl() bool
}

// PushSource is implemented by protocols hosting push (timer-driven)
// traffic sources. At Init the layer hands such a protocol itself as the
// frame sink: generated frames then enter the layer's bounded queue the
// moment the source's clock fires, with no backpressure — the pressure that
// lets the tail/CHOKe drop policies actually overflow, which pull-based
// transfers never provide (they backpressure through the MAC instead).
type PushSource interface {
	SetPushSink(s sim.FrameSink)
}

// Layer is the per-node congestion layer. It implements sim.Protocol,
// wrapping the data protocol: Pull drains a bounded queue refilled from the
// protocol (applying the drop policy), Receive snoops passing traffic for
// the pacing policies, and protocol-internal control frames (batch ACKs,
// NACKs, route control) bypass the queue entirely.
type Layer struct {
	cfg   Config
	proto sim.Protocol
	node  *sim.Node
	need  NeedReporter    // proto's NeedReporter side, nil if unsupported
	ctrl  ControlReporter // proto's ControlReporter side, nil if unsupported
	top   CreditTopper    // proto's CreditTopper side, nil if unsupported

	queue []*sim.Frame

	credit *creditState
	aimd   map[uint32]*aimdFlow
	cubic  map[uint32]*cubicFlow

	// loadst is the always-on load tracking (see load.go); cfg.LoadExport
	// controls whether anyone reads it.
	loadst loadState

	// pendingGrants holds at most one un-transmitted grant per flow.
	pendingGrants []*CreditMsg

	// enqAt timestamps queued frames for the queue-wait metric. Allocated
	// lazily and only while a telemetry sink is installed, so the normal
	// path never touches it.
	enqAt map[*sim.Frame]int64

	// wakeEv is the scheduled self-wake releasing gated traffic.
	wakeEv *sim.Event
	wakeAt sim.Time

	// Stats is the layer's accounting; read it after the run.
	Stats Stats
}

// New wraps the data protocol in a congestion layer. It panics on Policy
// None: the byte-identical baseline is "no layer", not a pass-through one.
func New(cfg Config, proto sim.Protocol) *Layer {
	if cfg.Policy == None {
		panic("congest: Policy None means no layer; attach the protocol directly")
	}
	cfg.fillDefaults()
	l := &Layer{cfg: cfg, proto: proto}
	if cfg.Policy == Credit || cfg.Policy == Cubic {
		l.credit = newCreditState()
	}
	if cfg.Policy == AIMD {
		l.aimd = make(map[uint32]*aimdFlow)
	}
	if cfg.Policy == Cubic {
		l.cubic = make(map[uint32]*cubicFlow)
	}
	return l
}

// Config returns the layer's effective (default-filled) configuration.
func (l *Layer) Config() Config { return l.cfg }

// QueueLen reports the current data-queue depth (for tests).
func (l *Layer) QueueLen() int { return len(l.queue) }

// Node returns the node the layer is installed on (nil before Init).
func (l *Layer) Node() *sim.Node { return l.node }

// Init implements sim.Protocol.
func (l *Layer) Init(n *sim.Node) {
	l.node = n
	l.proto.Init(n)
	l.need, _ = l.proto.(NeedReporter)
	l.ctrl, _ = l.proto.(ControlReporter)
	l.top, _ = l.proto.(CreditTopper)
	if ps, ok := l.proto.(PushSource); ok {
		ps.SetPushSink(l)
	}
}

// PushFrame implements sim.FrameSink: push sources inject generated frames
// here, where the bounded queue's drop policy rules on them immediately —
// overload overflows the queue (tail or CHOKe drops) instead of
// backpressuring the source, exactly the unresponsive-flow pressure AQM is
// designed for.
func (l *Layer) PushFrame(f *sim.Frame) {
	l.Stats.Pushed++
	info, ok := l.dataInfo(f)
	if !ok {
		info = frameInfo{flow: f.FlowID}
	}
	l.enqueue(f, info)
	l.node.Wake()
}

// frameInfo is the congestion-relevant reading of a data frame.
type frameInfo struct {
	flow     uint32
	batch    uint32 // zero for batch-less protocols (Srcr)
	hasBatch bool
	isSource bool          // the frame injects new data at this node
	more     *core.DataMsg // non-nil for MORE data (credit pacing)
}

// dataInfo classifies a frame: (info, true) for data frames the queue and
// pacing policies manage, false for control frames that bypass the layer.
func (l *Layer) dataInfo(f *sim.Frame) (frameInfo, bool) {
	switch m := f.Payload.(type) {
	case *core.DataMsg:
		return frameInfo{
			flow: uint32(m.Flow), batch: m.Batch, hasBatch: true,
			isSource: m.Src == l.node.ID(), more: m,
		}, true
	case *exor.DataMsg:
		return frameInfo{
			flow: uint32(m.Flow), batch: uint32(m.Batch), hasBatch: true,
			isSource: m.Src == l.node.ID(),
		}, true
	case *srcr.DataMsg:
		return frameInfo{flow: uint32(m.Flow), isSource: m.Hop == 0}, true
	}
	return frameInfo{}, false
}

// Receive implements sim.Protocol: grants are consumed here, everything
// else flows to the protocol first (so its state is current) and is then
// snooped — data receptions trigger grant generation, and overheard batch
// acknowledgments purge queued frames the receiving side would now ignore.
func (l *Layer) Receive(f *sim.Frame) {
	if g, ok := f.Payload.(*CreditMsg); ok {
		if l.credit != nil {
			l.acceptGrant(f, g)
		}
		// A grant from the downstream neighborhood doubles as an RTT
		// sample for the CUBIC estimator at the flow's source.
		l.cubicFeedback(uint32(g.Flow))
		return
	}
	l.proto.Receive(f)
	switch m := f.Payload.(type) {
	case *core.AckMsg:
		// The batch is done: every queued frame for it (or older) is dead
		// weight the protocol itself would no longer generate. Multicast
		// ACKs leave the queue alone, exactly as forwarders keep their
		// buffers (other destinations may still need the batch).
		if !m.Multicast {
			l.purgeAcked(uint32(m.Flow), m.Batch)
		}
		l.cubicFeedback(uint32(m.Flow))
	case *exor.DoneMsg:
		l.purgeAcked(uint32(m.Flow), uint32(m.Batch))
		l.cubicFeedback(uint32(m.Flow))
	case *srcr.NackMsg:
		// The FIN→NACK exchange is Srcr's end-to-end round trip.
		l.cubicFeedback(uint32(m.Flow))
	}
	if l.credit != nil {
		if info, ok := l.dataInfo(f); ok && info.more != nil {
			l.maybeGrant(f, info.more)
		}
	}
}

// purgeAcked drops queued data frames of the flow whose batch the
// destination just acknowledged (or older).
func (l *Layer) purgeAcked(fid uint32, batch uint32) {
	keep := l.queue[:0]
	for _, q := range l.queue {
		if qi, ok := l.dataInfo(q); ok && qi.flow == fid && qi.hasBatch && qi.batch <= batch {
			l.Stats.StaleDrops++
			l.drop(q, telemetry.QDropStale)
			continue
		}
		keep = append(keep, q)
	}
	l.queue = keep
}

// Pull implements sim.Protocol. Priority order: pending credit grants,
// protocol control frames surfaced while refilling, then the data queue
// subject to the pacing gate.
func (l *Layer) Pull() *sim.Frame {
	if len(l.pendingGrants) > 0 {
		g := l.pendingGrants[0]
		l.pendingGrants = l.pendingGrants[1:]
		l.Stats.GrantTx++
		l.node.Emit(telemetry.Event{
			Flow: uint32(g.Flow), Batch: g.Batch,
			Aux: int64(g.Needed), Kind: telemetry.KindGrant,
		})
		return g.frame(l.node.ID())
	}
	// Refill from the protocol. Control frames surface immediately; data
	// frames enter the queue under the drop policy. The QueueLen bound
	// counts only sendable frames: pacing-gated frames must not block the
	// node from pulling and forwarding other flows' traffic (head-of-line
	// blocking), but the total still has a hard cap so gated flows cannot
	// accumulate stale frames without bound. The pull count is bounded so
	// a dropping policy cannot spin against a backlogged protocol. At a
	// full queue one probe pull still runs when the protocol reports (or
	// cannot deny) queued control traffic, so batch ACKs can never starve
	// behind a full data queue.
	pulls := 0
	hardCap := 4 * l.cfg.QueueLen
	for pulls <= hardCap {
		if l.sendable() >= l.cfg.QueueLen || len(l.queue) >= hardCap {
			if pulls > 0 || (l.ctrl != nil && !l.ctrl.HasControl()) {
				break
			}
		}
		f := l.proto.Pull()
		if f == nil {
			break
		}
		pulls++
		info, ok := l.dataInfo(f)
		if !ok {
			return f // protocol control: bypasses the queue
		}
		l.enqueue(f, info)
	}
	return l.dequeue()
}

// sendable counts queued frames the pacing gate would release right now.
func (l *Layer) sendable() int {
	n := 0
	for _, f := range l.queue {
		info, _ := l.dataInfo(f)
		if l.canSend(info) {
			n++
		}
	}
	return n
}

// enqueue admits a data frame under the drop policy.
func (l *Layer) enqueue(f *sim.Frame, info frameInfo) {
	l.purgeStale(info)
	if len(l.queue) >= 4*l.cfg.QueueLen {
		if l.cfg.Policy == Choke {
			// CHOKe at overflow: draw a random victim; a same-flow match
			// drops both (the dominant flow penalizes itself), otherwise
			// the arrival tail-drops.
			v := l.node.Rand().Intn(len(l.queue))
			if l.queue[v].FlowID == f.FlowID {
				victim := l.queue[v]
				l.queue = append(l.queue[:v], l.queue[v+1:]...)
				l.Stats.ChokeDrops += 2
				l.drop(victim, telemetry.QDropChoke)
				l.drop(f, telemetry.QDropChoke)
				l.observeQueue(true)
				return
			}
		}
		l.Stats.TailDrops++
		l.drop(f, telemetry.QDropTail)
		l.observeQueue(true)
		return
	}
	l.Stats.Enqueued++
	l.queue = append(l.queue, f)
	if l.node != nil && l.node.Telemetry() {
		if l.enqAt == nil {
			l.enqAt = make(map[*sim.Frame]int64)
		}
		l.enqAt[f] = int64(l.node.Now())
		l.node.Emit(telemetry.Event{
			Flow: f.FlowID, Aux: int64(len(l.queue)), Kind: telemetry.KindEnqueue,
		})
	}
	l.observeQueue(false)
}

// purgeStale drops queued frames of the same flow that belong to an older
// batch than the arriving frame: the receiving side would discard them, so
// transmitting them only burns air.
func (l *Layer) purgeStale(info frameInfo) {
	if !info.hasBatch {
		return
	}
	keep := l.queue[:0]
	for _, q := range l.queue {
		if qi, ok := l.dataInfo(q); ok && qi.flow == info.flow && qi.hasBatch && qi.batch < info.batch {
			l.Stats.StaleDrops++
			l.drop(q, telemetry.QDropStale)
			continue
		}
		keep = append(keep, q)
	}
	l.queue = keep
}

// drop reports a never-transmitted frame back to the protocol as failed;
// reason is the telemetry QDrop* code.
func (l *Layer) drop(f *sim.Frame, reason int64) {
	if l.enqAt != nil {
		delete(l.enqAt, f)
	}
	if l.node != nil {
		l.node.Emit(telemetry.Event{Flow: f.FlowID, Aux: reason, Kind: telemetry.KindQueueDrop})
	}
	l.proto.Sent(f, false)
}

// dequeue returns the first queued frame the pacing gate allows, FIFO
// otherwise. When everything is gated it schedules a self-wake for the
// earliest release and returns nil.
func (l *Layer) dequeue() *sim.Frame {
	backlogged := len(l.queue) > 0
	for i, f := range l.queue {
		info, _ := l.dataInfo(f)
		if l.canSend(info) {
			l.commitSend(info)
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			if l.enqAt != nil {
				if at, ok := l.enqAt[f]; ok {
					delete(l.enqAt, f)
					l.node.Emit(telemetry.Event{
						Flow: f.FlowID, Dur: int64(l.node.Now()) - at,
						Kind: telemetry.KindDequeue,
					})
				}
			}
			l.observeGate(true)
			return f
		}
		l.Stats.GateSkips++
	}
	if backlogged {
		l.observeGate(false)
	}
	return nil
}

// canSend asks the active pacing policy whether the frame could transmit
// now, without committing to it (no token or probe consumption).
func (l *Layer) canSend(info frameInfo) bool {
	switch l.cfg.Policy {
	case Credit:
		return l.creditCanSend(info)
	case AIMD:
		return l.aimdCanSend(info)
	case Cubic:
		// Receiver-driven gating and source-side window pacing compose:
		// a frame needs both verdicts to reach the air.
		return l.creditCanSend(info) && l.cubicCanSend(info)
	}
	return true
}

// commitSend charges the pacing policy for a frame canSend just approved.
func (l *Layer) commitSend(info frameInfo) {
	switch l.cfg.Policy {
	case Credit:
		l.creditCommit(info)
	case AIMD:
		l.aimdCommit(info)
	case Cubic:
		l.creditCommit(info)
		l.cubicCommit(info)
	}
}

// Sent implements sim.Protocol, routing outcomes back to the protocol.
// Grants are layer-owned and need no completion handling (broadcast).
func (l *Layer) Sent(f *sim.Frame, ok bool) {
	if _, isGrant := f.Payload.(*CreditMsg); isGrant {
		if len(l.pendingGrants) > 0 || len(l.queue) > 0 {
			l.node.Wake()
		}
		return
	}
	l.proto.Sent(f, ok)
	if (l.cfg.Policy == AIMD || l.cfg.Policy == Cubic) && !ok {
		if info, isData := l.dataInfo(f); isData && info.isSource && !info.hasBatch {
			// Batch-less unicast source (Srcr): a MAC-level failure is the
			// congestion signal batch stagnation provides elsewhere.
			if l.cfg.Policy == AIMD {
				l.aimdDecrease(l.aimdFlowFor(info.flow, l.node.Now()))
			} else {
				l.cubicOnCongestion(l.cubicFlowFor(info.flow, l.node.Now()))
			}
		}
	}
	if len(l.queue) > 0 || len(l.pendingGrants) > 0 {
		l.node.Wake()
	}
}

// ensureWake guarantees the node re-pulls no later than at, so gated
// traffic cannot sleep forever.
func (l *Layer) ensureWake(at sim.Time) {
	if l.wakeEv != nil && l.wakeAt <= at && l.wakeAt > l.node.Now() {
		return
	}
	if l.wakeEv != nil {
		l.wakeEv.Cancel()
	}
	delay := at - l.node.Now()
	if delay < 0 {
		delay = 0
	}
	l.wakeAt = at
	l.wakeEv = l.node.After(delay, func() {
		l.wakeEv = nil
		l.node.Wake()
	})
}
