package congest

import (
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

// The Credit policy is receiver-driven suppression for MORE. Eq. (3.3)
// credits are open loop: a forwarder earns transmission rights from
// *receptions*, so once every downstream listener holds a full-rank batch,
// upstream nodes keep burning airtime on packets nobody can use until the
// batch ACK crawls back to the source — the innovation-less retransmission
// storm that dominates the large-topology multi-flow sweeps. Here every
// node with batch state broadcasts a small grant whenever its remaining
// need (K − rank) changes; a node transmitting the batch listens to the
// grants of its own downstream (per the packet's forwarder ordering) and
// gates the flow once every downstream listener it has heard from reports
// zero need for the current batch. Because grants fire only on gating
// transitions (first word on a batch, need hitting zero, need
// reappearing), a granter says only a few things per batch; and because
// the gate is pure suppression layered over unchanged MORE crediting, a run
// can only lose transmissions that provably could not have been
// innovative downstream. A gated flow still releases one probe per
// GateTimeout — with the interval doubling while nothing changes, up to
// 32× — so a lost ACK or a starved forwarder chain cannot stall a flow,
// and a stalled flow cannot storm the medium.

// CreditMsg is a credit grant: the granter's current batch for the flow
// and how many more innovative packets it can use. Broadcast, tiny, and
// unacknowledged, like a probe.
type CreditMsg struct {
	Flow   flow.ID
	Batch  uint32
	Needed int
}

// grantWireBytes is the on-air size of a grant: type + flow + batch +
// need + MAC framing.
const grantWireBytes = 16

func (g *CreditMsg) frame(from graph.NodeID) *sim.Frame {
	return &sim.Frame{From: from, To: graph.Broadcast, Bytes: grantWireBytes, Payload: g}
}

// grantKey identifies a granter's latest word on a flow.
type grantKey struct {
	flow    uint32
	granter graph.NodeID
}

// grantInfo is the latest grant received from one granter.
type grantInfo struct {
	batch  uint32
	needed int
	at     sim.Time
}

// creditFlow is the sender-side gate state for one flow.
type creditFlow struct {
	batch     uint32
	lastProbe sim.Time // last GateTimeout liveness release
	backoff   int      // consecutive probes without news (caps the interval)
	// fwdSig fingerprints the forwarder set the gate's grants were collected
	// against; route repair rewriting the set mid-batch resets the probe
	// backoff (see creditFlowFor).
	fwdSig uint64
}

// advertised is the granter-side memory of the last grant sent per flow.
type advertised struct {
	batch  uint32
	needed int
	at     sim.Time
	valid  bool
}

type creditState struct {
	grants map[grantKey]*grantInfo
	flows  map[uint32]*creditFlow
	adv    map[uint32]*advertised
}

func newCreditState() *creditState {
	return &creditState{
		grants: make(map[grantKey]*grantInfo),
		flows:  make(map[uint32]*creditFlow),
		adv:    make(map[uint32]*advertised),
	}
}

// acceptGrant records a downstream node's latest need and releases any
// traffic it ungates.
func (l *Layer) acceptGrant(f *sim.Frame, g *CreditMsg) {
	c := l.credit
	key := grantKey{uint32(g.Flow), f.From}
	gi, ok := c.grants[key]
	if !ok {
		gi = &grantInfo{}
		c.grants[key] = gi
	}
	gi.batch, gi.needed, gi.at = g.Batch, g.Needed, l.node.Now()
	if g.Needed > 0 {
		// Fresh demand: reset the probe backoff so a re-opened gate reacts
		// quickly, and grant the advertised credit upstream — if this node
		// forwards the flow and its reception-driven credit drained, the
		// receiver's word is its new transmission budget.
		if cf, ok := c.flows[uint32(g.Flow)]; ok {
			cf.backoff = 0
		}
		if l.top != nil {
			// A trickle, not a budget: the granted need is demand on the
			// whole upstream neighborhood, not on this node alone — every
			// audible forwarder hears the same grant, so handing each the
			// full need would multiply it by the neighborhood size. Two
			// sends per grant event is enough to keep a full-buffer,
			// drained-credit forwarder serving advertised demand (grants
			// refresh while the need persists).
			c := float64(g.Needed)
			if c > 2 {
				c = 2
			}
			l.top.TopUpRelayCredit(g.Flow, g.Batch, f.From, c)
		}
	}
	if len(l.queue) > 0 {
		l.node.Wake()
	}
}

// maybeGrant advertises this node's need for the flow's current batch.
// Grants answer an active upstream sender, so only receptions from
// upstream trigger them; what gets said balances freshness against frame
// count:
//
//   - a new batch (or need reappearing after a purge) is announced once;
//   - the endgame countdown — need at or below NeedAdvertiseMax — is
//     re-advertised on every change, keeping the upstream gate's positive
//     signal alive through grant losses (each innovative reception is
//     another chance to be heard);
//   - a zero need is announced on the transition and then refreshed at
//     most every GrantRefresh while traffic for the dead batch keeps
//     arriving — the lost-stop-signal retransmission path, self-limiting
//     because the suppressed traffic is what drives it.
func (l *Layer) maybeGrant(f *sim.Frame, m *core.DataMsg) {
	if l.need == nil {
		return
	}
	if l.creditBypass(m.K) {
		return // sub-floor batch: the grant machinery costs more than it saves
	}
	if !l.senderUpstream(f.From, m) {
		return // overheard downstream traffic; our state is no news to them
	}
	batch, needed, ok := l.need.BatchNeeded(m.Flow)
	if !ok {
		return
	}
	fid := uint32(m.Flow)
	c := l.credit
	a, have := c.adv[fid]
	if !have {
		a = &advertised{}
		c.adv[fid] = a
	}
	now := l.node.Now()
	advMax := l.needAdvertiseMax(m.K)
	if a.valid && a.batch == batch {
		if (needed > 0) == (a.needed > 0) && now-a.at < l.cfg.GrantMinInterval {
			// Not a stop/start transition: respect the spacing floor.
			// Every broadcast reception offers every listener a grant
			// opportunity, so un-floored chatter scales with the
			// neighborhood size and feeds the congestion it should damp.
			return
		}
		switch {
		case needed == a.needed:
			// Unchanged word, but upstream is still transmitting at us.
			// The endgame states — zero (a lost stop signal keeps the
			// storm alive) and a small positive (the top-up path that
			// keeps the frontier serving) — are worth restating
			// occasionally; an unchanged mid-batch need is not.
			if needed > advMax || now-a.at < l.cfg.GrantRefresh {
				return
			}
		case needed > 0 && a.needed > 0 && needed > advMax:
			// Mid-batch countdown: a frame per innovative reception would
			// drown the medium in grants, but total silence would leave a
			// gated upstream probing blind. Announce halving-level
			// crossings only (…32→16, 16→9: the 8-and-below endgame then
			// re-advertises every change).
			if bitLen(needed) == bitLen(a.needed) {
				return
			}
		}
	}
	a.batch, a.needed, a.at, a.valid = batch, needed, now, true
	l.queueGrant(&CreditMsg{Flow: m.Flow, Batch: batch, Needed: needed})
}

// queueGrant replaces any pending grant for the same flow and wakes the MAC.
func (l *Layer) queueGrant(g *CreditMsg) {
	for i, p := range l.pendingGrants {
		if p.Flow == g.Flow {
			l.pendingGrants[i] = g
			l.node.Wake()
			return
		}
	}
	l.pendingGrants = append(l.pendingGrants, g)
	l.node.Wake()
}

// creditFlowFor returns (creating and batch-syncing) the sender-side gate
// state for the frame's flow.
func (l *Layer) creditFlowFor(info frameInfo) *creditFlow {
	c := l.credit
	cf, ok := c.flows[info.flow]
	if !ok {
		cf = &creditFlow{batch: info.batch}
		if info.more != nil {
			cf.fwdSig = fwdSignature(info.more)
		}
		c.flows[info.flow] = cf
	}
	if cf.batch != info.batch {
		cf.batch = info.batch
		cf.backoff = 0
	}
	if info.more != nil {
		// Route repair can rewrite a flow's forwarder set mid-batch; the
		// probe backoff accumulated against the old set says nothing about
		// the new one, so drop it and re-probe within one GateTimeout.
		// Without repair a set change implies a batch change, whose reset
		// above makes this a no-op — legacy runs are byte-identical.
		if sig := fwdSignature(info.more); sig != cf.fwdSig {
			cf.fwdSig = sig
			cf.backoff = 0
		}
	}
	return cf
}

// fwdSignature fingerprints a packet's forwarder ordering (FNV-1a over the
// node IDs, order-sensitive — the ordering is what grants are judged
// against).
func fwdSignature(m *core.DataMsg) uint64 {
	h := uint64(14695981039346656037)
	for _, e := range m.Forwarders {
		h ^= uint64(e.Node)
		h *= 1099511628211
	}
	return h
}

// creditSuppressed reports the downstream verdict: true when at least one
// downstream granter has spoken for this batch within GrantTTL and none
// of them still needs packets. No live grants (cold start, new batch, or
// a neighborhood gone quiet) means transmit: a zero that is no longer
// being restated by the traffic it suppresses has expired, and releasing
// the flow beats stranding it on probe backoff.
func (l *Layer) creditSuppressed(info frameInfo) bool {
	m := info.more
	horizon := l.node.Now() - l.cfg.GrantTTL
	heard := false
	for key, gi := range l.credit.grants {
		if key.flow != info.flow || gi.batch != info.batch {
			continue
		}
		if !l.granterDownstream(key.granter, m) {
			continue
		}
		if gi.needed > 0 {
			return false
		}
		if gi.at >= horizon {
			heard = true
		}
	}
	return heard
}

// creditBypass reports whether the credit machinery stands down for a
// batch of rank k: below the CreditMinK floor the whole batch is endgame
// and grants/gating cost more air than they save, so the flow runs over
// the plain bounded queue (behavior-identical to the Tail policy).
func (l *Layer) creditBypass(k int) bool {
	return l.cfg.CreditMinK > 0 && k > 0 && k < l.cfg.CreditMinK
}

// needAdvertiseMax scales the endgame-countdown threshold with the batch
// rank: NeedAdvertiseMax (default 8) is tuned for K = 32, where the
// every-change countdown covers the last quarter of the batch. A smaller
// batch keeps the same fraction (K/4) so the grant bill per batch shrinks
// with the batch instead of staying fixed.
func (l *Layer) needAdvertiseMax(k int) int {
	max := l.cfg.NeedAdvertiseMax
	if k > 0 && k/4 < max {
		max = k / 4
	}
	if max < 1 {
		max = 1
	}
	return max
}

// creditCanSend gates a data frame when every downstream listener heard
// from reports zero need for the frame's batch, except for one probe per
// (exponentially backed-off) GateTimeout. Non-MORE frames pass untouched,
// as do sub-floor batches (see creditBypass).
func (l *Layer) creditCanSend(info frameInfo) bool {
	if info.more == nil || l.creditBypass(info.more.K) {
		return true
	}
	cf := l.creditFlowFor(info)
	if !l.creditSuppressed(info) {
		return true
	}
	now := l.node.Now()
	interval := l.cfg.GateTimeout << uint(minInt(cf.backoff, 5))
	if now-cf.lastProbe >= interval {
		return true // probe due: a send would be the liveness probe
	}
	l.ensureWake(cf.lastProbe + interval)
	return false
}

// creditCommit charges the gate state for an approved send: a send under
// suppression consumes the due probe and backs its successor off — a lost
// grant, a lost batch ACK, or a credit-starved forwarder chain cannot
// stall the flow (probe receptions still add Eq. (3.3) credit
// downstream), and a stalled flow cannot storm the medium.
func (l *Layer) creditCommit(info frameInfo) {
	if info.more == nil || l.creditBypass(info.more.K) {
		return
	}
	cf := l.creditFlowFor(info)
	if !l.creditSuppressed(info) {
		return
	}
	cf.lastProbe = l.node.Now()
	cf.backoff++
	l.Stats.ProbeSends++
}

// senderUpstream reports whether the frame's sender sits above this node
// in the packet's forwarder ordering (farther from the destination) — the
// senders whose behavior this node's grants steer.
func (l *Layer) senderUpstream(sender graph.NodeID, m *core.DataMsg) bool {
	if sender == m.Src {
		return true
	}
	me := l.node.ID()
	myIdx, senderIdx := -1, -1
	for i, e := range m.Forwarders {
		if e.Node == me {
			myIdx = i
		}
		if e.Node == sender {
			senderIdx = i
		}
	}
	if myIdx < 0 {
		// We are the destination (or a multicast destination): everyone in
		// the list is upstream of us.
		return senderIdx >= 0
	}
	return senderIdx > myIdx
}

// granterDownstream reports whether the granter sits below this node in
// the packet's forwarder ordering (closer to the destination), i.e. whether
// its need is the demand this node's transmissions serve.
func (l *Layer) granterDownstream(granter graph.NodeID, m *core.DataMsg) bool {
	if granter == m.Dst {
		return true
	}
	for _, d := range m.Dsts {
		if d == granter {
			return true
		}
	}
	me := l.node.ID()
	if m.Src == me {
		// Every forwarder is downstream of the source.
		for _, e := range m.Forwarders {
			if e.Node == granter {
				return true
			}
		}
		return false
	}
	myIdx, granterIdx := -1, -1
	for i, e := range m.Forwarders {
		if e.Node == me {
			myIdx = i
		}
		if e.Node == granter {
			granterIdx = i
		}
	}
	// The forwarder list is ordered closest-to-destination first.
	return granterIdx >= 0 && myIdx >= 0 && granterIdx < myIdx
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// bitLen is the halving-level of a need: needs with the same bit length
// are within 2× of each other.
func bitLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
