package congest

import "repro/internal/sim"

// The AIMD policy paces each source's injection with a per-flow token
// bucket, in the spirit of on-line end-to-end congestion control: the rate
// climbs additively while the transfer makes progress and halves when the
// network pushes back. Progress and pushback are both read from signals
// the source already has — a batch advancing (the protocol only moves on
// once the destination acknowledged) versus a batch stagnating (many sends
// with no advance: downstream is saturated or colliding), and, for
// batch-less unicast sources, MAC send failures. Forwarder traffic is
// never gated: relaying what was already injected cannot overcommit the
// network further, and throttling it would only strand in-flight data.

type aimdFlow struct {
	rate   float64 // packets/second
	tokens float64
	last   sim.Time
	batch  uint32
	seen   bool // batch field initialized
	sends  int  // sends within the current batch
	nextMD int  // stagnation threshold for the next decrease
	initTh int  // base stagnation threshold (StagnationFactor × K)
}

func (l *Layer) aimdFlowFor(fid uint32, now sim.Time) *aimdFlow {
	af, ok := l.aimd[fid]
	if !ok {
		af = &aimdFlow{rate: l.cfg.RateInit, tokens: l.cfg.BucketDepth, last: now}
		l.aimd[fid] = af
	}
	return af
}

func (l *Layer) aimdDecrease(af *aimdFlow) {
	af.rate *= l.cfg.RateBeta
	if af.rate < l.cfg.RateMin {
		af.rate = l.cfg.RateMin
	}
	l.Stats.RateDecreases++
}

// aimdCanSend gates source-injected data frames on the token bucket;
// relay frames and non-source traffic pass untouched. It refills the
// bucket (idempotent in simulated time) but consumes nothing.
func (l *Layer) aimdCanSend(info frameInfo) bool {
	if !info.isSource {
		return true
	}
	now := l.node.Now()
	af := l.aimdFlowFor(info.flow, now)

	// Refill.
	if now > af.last {
		af.tokens += af.rate * (now - af.last).Seconds()
		if af.tokens > l.cfg.BucketDepth {
			af.tokens = l.cfg.BucketDepth
		}
		af.last = now
	}

	if af.tokens < 1 {
		// Gated: wake when the bucket refills to one packet.
		wait := sim.Time((1 - af.tokens) / af.rate * float64(sim.Second))
		l.ensureWake(now + wait + 1)
		return false
	}
	return true
}

// aimdCommit charges the token bucket for an approved source send and
// runs the AIMD bookkeeping: a batch advance is progress (additive
// increase); too many sends without one is stagnation (multiplicative
// decrease, with the threshold doubling so one stuck batch halves the
// rate geometrically rather than per send).
func (l *Layer) aimdCommit(info frameInfo) {
	if !info.isSource {
		return
	}
	af := l.aimdFlowFor(info.flow, l.node.Now())
	if info.hasBatch {
		if !af.seen || info.batch > af.batch {
			if af.seen {
				af.rate += l.cfg.RateStep
				if af.rate > l.cfg.RateMax {
					af.rate = l.cfg.RateMax
				}
			}
			af.seen = true
			af.batch = info.batch
			af.sends = 0
			af.nextMD = af.initTh
		}
	}
	af.tokens--
	af.sends++
	if info.hasBatch {
		if af.initTh == 0 {
			af.initTh = int(l.cfg.StagnationFactor * float64(maxInt(1, batchK(info))))
			af.nextMD = af.initTh
		}
		if af.nextMD > 0 && af.sends >= af.nextMD {
			l.aimdDecrease(af)
			af.nextMD *= 2
		}
	}
}

// batchK extracts the batch size from a data frame, defaulting to 32.
func batchK(info frameInfo) int {
	if info.more != nil {
		return info.more.K
	}
	return 32
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
