package congest

import (
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Multi composes several data protocols into the single protocol slot a
// congestion layer wraps. Scenario runs mix protocols on one medium — a
// MORE bulk transfer beside an unresponsive push flow is the fairness
// experiment AQM exists for — and each node then runs one instance of every
// protocol in play. The composition follows sim.Stack's semantics (every
// member sees every decoded frame; the first member with traffic wins the
// transmission opportunity) with one crucial difference: Sent outcomes are
// routed by frame ownership, not by who answered the most recent Pull.
// sim.Stack's single-puller slot is correct directly under the MAC, which
// finishes one frame before pulling the next; under a congestion layer the
// queue decouples the two — the layer may pull member A's frame, hold it,
// pull member B's, and only later see A's frame transmitted or dropped —
// so Multi remembers which member supplied each in-flight frame.
//
// Multi also forwards the congestion layer's optional capability
// interfaces (NeedReporter, CreditTopper, ControlReporter, PushSource) to
// whichever members implement them: the layer discovers capabilities by
// type assertion on the one protocol it wraps, so the composite must
// answer for its members.
//
// Member order is transmission priority. Put timer-driven push protocols
// first: they only offer traffic their clocks have generated, while a
// backlogged batch protocol always has something to send and would
// otherwise starve them at every pull.
type Multi struct {
	members []sim.Protocol

	// owner maps each pulled, not-yet-resolved frame to the member that
	// supplied it. Entries live from Pull to Sent; the population is
	// bounded by the congestion layer's queue plus the MAC's single slot.
	owner map[*sim.Frame]sim.Protocol

	needs []NeedReporter
	tops  []CreditTopper
	ctrls []ControlReporter
	srcs  []PushSource
	// opaque marks members that cannot report control state: the composite
	// must then behave as if it had no ControlReporter hint (conservative
	// speculative pulls) rather than denying control traffic exists.
	opaque bool
}

// Combine composes the given protocols, first member highest priority. A
// single protocol is returned unwrapped.
func Combine(protos ...sim.Protocol) sim.Protocol {
	if len(protos) == 1 {
		return protos[0]
	}
	m := &Multi{members: protos, owner: make(map[*sim.Frame]sim.Protocol)}
	for _, p := range protos {
		if x, ok := p.(NeedReporter); ok {
			m.needs = append(m.needs, x)
		}
		if x, ok := p.(CreditTopper); ok {
			m.tops = append(m.tops, x)
		}
		if x, ok := p.(ControlReporter); ok {
			m.ctrls = append(m.ctrls, x)
		} else {
			m.opaque = true
		}
		if x, ok := p.(PushSource); ok {
			m.srcs = append(m.srcs, x)
		}
	}
	return m
}

// Init implements sim.Protocol.
func (m *Multi) Init(n *sim.Node) {
	for _, p := range m.members {
		p.Init(n)
	}
}

// Receive implements sim.Protocol: every member sees every decoded frame
// (each protocol already ignores payload types it does not own).
func (m *Multi) Receive(f *sim.Frame) {
	for _, p := range m.members {
		p.Receive(f)
	}
}

// Pull implements sim.Protocol: the first member with traffic wins, and
// the frame is recorded against it for Sent routing.
func (m *Multi) Pull() *sim.Frame {
	for _, p := range m.members {
		if f := p.Pull(); f != nil {
			m.owner[f] = p
			return f
		}
	}
	return nil
}

// Sent implements sim.Protocol, routing the outcome to the member that
// supplied the frame — however long ago that was. Frames with no recorded
// owner entered sideways (push sources inject through the congestion
// layer's FrameSink, bypassing Pull); those fan out to every member under
// the same contract as Receive — each protocol ignores payload types it
// does not own — so a push frame's fate still reaches its srcr instance
// (MAC-drop accounting, autorate feedback) exactly as it would bare.
func (m *Multi) Sent(f *sim.Frame, ok bool) {
	if p, found := m.owner[f]; found {
		delete(m.owner, f)
		p.Sent(f, ok)
		return
	}
	for _, p := range m.members {
		p.Sent(f, ok)
	}
}

// BatchNeeded implements NeedReporter: the first member holding state for
// the flow answers (flow IDs are globally unique, so at most one does).
func (m *Multi) BatchNeeded(id flow.ID) (batch uint32, needed int, ok bool) {
	for _, nr := range m.needs {
		if b, n, ok := nr.BatchNeeded(id); ok {
			return b, n, ok
		}
	}
	return 0, 0, false
}

// TopUpRelayCredit implements CreditTopper: every capable member is
// offered the grant; members without state for the flow ignore it.
func (m *Multi) TopUpRelayCredit(id flow.ID, batch uint32, granter graph.NodeID, credit float64) {
	for _, t := range m.tops {
		t.TopUpRelayCredit(id, batch, granter, credit)
	}
}

// HasControl implements ControlReporter: control exists when any member
// reports it — or might, for members that cannot say.
func (m *Multi) HasControl() bool {
	if m.opaque {
		return true
	}
	for _, c := range m.ctrls {
		if c.HasControl() {
			return true
		}
	}
	return false
}

// SetPushSink implements PushSource, fanning the sink out to every member
// hosting push sources.
func (m *Multi) SetPushSink(s sim.FrameSink) {
	for _, src := range m.srcs {
		src.SetPushSink(s)
	}
}
