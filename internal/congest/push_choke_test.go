package congest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/srcr"
)

// TestPushOverloadTriggersChoke closes the "CHOKe never fires" gap: with
// pull-based transfers the bounded queue backpressures through the MAC and
// never overflows, so the same-flow drop of the Choke policy was dead code
// outside gated queues. A push source injects frames through the layer's
// FrameSink the moment its clock fires, so a source running far above the
// drain rate overflows the queue — and because its own frames dominate the
// queue, the CHOKe victim comparison matches and the same-flow pair drop
// actually executes.
func TestPushOverloadTriggersChoke(t *testing.T) {
	topo := graph.Line(3, 0.95, 20)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	nodes := make([]*srcr.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range nodes {
		nodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		layers[i] = New(Config{Policy: Choke}, nodes[i])
		s.Attach(graph.NodeID(i), layers[i])
	}
	// ~2000 pps of 1500 B frames is several times one 802.11b hop's drain.
	tr := flow.Traffic{Model: flow.PushCBR, RatePPS: 2000, Packets: 1000}
	file := flow.NewFile(1000*1500, 1500, 3)
	nodes[2].ExpectFlow(1, file, nil)
	if err := nodes[0].StartPushFlow(1, 2, tr, file, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * sim.Second)

	var st Stats
	for _, l := range layers {
		st.Add(l.Stats)
	}
	if st.Pushed == 0 {
		t.Fatal("push source never reached the congestion layer's FrameSink")
	}
	if st.ChokeDrops == 0 {
		t.Errorf("CHOKe same-flow drop never fired under 5x push overload: %+v", st)
	}
	gen, srcDrops, done := nodes[0].PushStats(1)
	if !done || gen != 1000 {
		t.Fatalf("push schedule incomplete: done=%v generated=%d", done, gen)
	}
	if srcDrops != 0 {
		t.Errorf("source used its bare local queue (%d drops) despite the layer's sink", srcDrops)
	}
	if got := nodes[2].Result(1); got.PacketsDelivered == 0 {
		t.Error("nothing delivered through the choked queue")
	}
}

// TestPushSentReachesSrcrThroughMulti pins Sent routing for push-injected
// frames in a mixed-protocol stack: they enter the layer through the
// FrameSink, bypassing Multi.Pull, so Multi has no recorded owner and must
// fan the outcome out to its members — srcr's MAC-drop accounting must see
// its datagrams' fates exactly as it would without the composite.
func TestPushSentReachesSrcrThroughMulti(t *testing.T) {
	topo := graph.Line(3, 0.95, 20)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	srcrNodes := make([]*srcr.Node, topo.N())
	coreNodes := make([]*core.Node, topo.N())
	for i := range srcrNodes {
		srcrNodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		coreNodes[i] = core.NewNode(core.DefaultConfig(), oracle)
		s.Attach(graph.NodeID(i), New(Config{Policy: Choke}, Combine(srcrNodes[i], coreNodes[i])))
	}
	tr := flow.Traffic{Model: flow.PushCBR, RatePPS: 2000, Packets: 1000}
	file := flow.NewFile(1000*1500, 1500, 3)
	srcrNodes[2].ExpectFlow(1, file, nil)
	if err := srcrNodes[0].StartPushFlow(1, 2, tr, file, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * sim.Second)
	var drops int64
	for _, n := range srcrNodes {
		drops += n.MACDrops
	}
	if drops == 0 {
		t.Error("push frame outcomes never reached srcr through the mixed stack (Multi dropped unowned Sent callbacks)")
	}
}

// TestPushCompetingFlowsChokeFairness runs a responsive-rate push flow
// beside an aggressive one through a shared forwarder: CHOKe's design
// property is that the dominant flow penalizes itself, so the blaster must
// absorb more drops than the polite flow.
func TestPushCompetingFlowsChokeFairness(t *testing.T) {
	// A 4-node star: 0 and 1 both route through 2 to reach 3.
	topo := graph.New(4)
	topo.SetLink(0, 2, 0.95)
	topo.SetLink(1, 2, 0.95)
	topo.SetLink(2, 3, 0.95)
	s := sim.New(topo, sim.DefaultConfig())
	oracle := flow.NewOracle(topo, routing.ETXOptions{Threshold: graph.RouteThreshold, AckAware: true})
	nodes := make([]*srcr.Node, topo.N())
	layers := make([]*Layer, topo.N())
	for i := range nodes {
		nodes[i] = srcr.NewNode(srcr.DefaultConfig(), oracle)
		layers[i] = New(Config{Policy: Choke}, nodes[i])
		s.Attach(graph.NodeID(i), layers[i])
	}
	polite := flow.Traffic{Model: flow.PushCBR, RatePPS: 50, Packets: 300}
	blast := flow.Traffic{Model: flow.PushCBR, RatePPS: 1500, Packets: 9000}
	politeFile := flow.NewFile(300*1500, 1500, 1)
	blastFile := flow.NewFile(9000*1500, 1500, 2)
	nodes[3].ExpectFlow(1, politeFile, nil)
	nodes[3].ExpectFlow(2, blastFile, nil)
	if err := nodes[0].StartPushFlow(1, 3, polite, politeFile, nil); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].StartPushFlow(2, 3, blast, blastFile, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(30 * sim.Second)

	var st Stats
	for _, l := range layers {
		st.Add(l.Stats)
	}
	if st.ChokeDrops == 0 {
		t.Fatal("no CHOKe drops at the shared forwarder")
	}
	pol := nodes[3].Result(1)
	bl := nodes[3].Result(2)
	if pol.PacketsDelivered == 0 {
		t.Fatal("polite flow starved entirely")
	}
	politeLoss := 1 - float64(pol.PacketsDelivered)/300
	blastLoss := 1 - float64(bl.PacketsDelivered)/9000
	if blastLoss <= politeLoss {
		t.Errorf("CHOKe did not penalize the dominant flow: polite loss %.2f, blast loss %.2f",
			politeLoss, blastLoss)
	}
}
