// Package graph models the wireless mesh topology: node positions, per-link
// delivery probabilities, the carrier-sense relation, and generators for the
// topologies the thesis evaluates on (the 20-node testbed of §4.1, the
// motivating diamond of Fig 1-1, and the unbounded-gap topology of Fig 5-1).
//
// The network model follows §5.3.1: a broadcast transmission from node i is
// received by node j independently with marginal probability p_ij. The
// topology carries those marginals; the simulator layers interference and
// carrier sense on top.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node within a topology. IDs are dense, 0..N-1.
type NodeID int

// Broadcast is the pseudo-destination of broadcast frames.
const Broadcast NodeID = -1

// Position is a point in 3-D space (meters). The testbed spans three floors,
// so Z matters.
type Position struct {
	X, Y, Z float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Topology is a wireless mesh: node positions plus the matrix of marginal
// delivery probabilities at the reference bit-rate. It is the ground truth
// the channel simulator draws from and (when estimation noise is disabled)
// the loss matrix fed to all routing computations, mirroring how the paper
// feeds the same ETX measurements to Srcr, MORE and ExOR (§4.1.2).
type Topology struct {
	Pos []Position
	// P[i][j] is the probability a transmission by i is delivered to j at
	// the reference rate, with no interference. P[i][i] is ignored.
	P [][]float64
}

// New creates an empty topology with n nodes at the origin and zero
// connectivity.
func New(n int) *Topology {
	t := &Topology{
		Pos: make([]Position, n),
		P:   make([][]float64, n),
	}
	for i := range t.P {
		t.P[i] = make([]float64, n)
	}
	return t
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Pos) }

// SetLink sets the delivery probability in both directions.
func (t *Topology) SetLink(a, b NodeID, p float64) {
	t.P[a][b] = p
	t.P[b][a] = p
}

// SetDirected sets the delivery probability a -> b only.
func (t *Topology) SetDirected(a, b NodeID, p float64) {
	t.P[a][b] = p
}

// Prob returns the delivery probability from a to b.
func (t *Topology) Prob(a, b NodeID) float64 {
	if a == b {
		return 1
	}
	return t.P[a][b]
}

// Loss returns the loss probability ε_ab = 1 - p_ab used throughout
// Chapter 3's credit calculations.
func (t *Topology) Loss(a, b NodeID) float64 { return 1 - t.Prob(a, b) }

// Neighbors returns the nodes j with P[i][j] above the threshold.
func (t *Topology) Neighbors(i NodeID, threshold float64) []NodeID {
	var out []NodeID
	for j := 0; j < t.N(); j++ {
		if NodeID(j) != i && t.P[i][j] > threshold {
			out = append(out, NodeID(j))
		}
	}
	return out
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	c := New(t.N())
	copy(c.Pos, t.Pos)
	for i := range t.P {
		copy(c.P[i], t.P[i])
	}
	return c
}

// Validate checks the probability matrix is well formed.
func (t *Topology) Validate() error {
	if len(t.P) != t.N() {
		return fmt.Errorf("graph: P has %d rows for %d nodes", len(t.P), t.N())
	}
	for i := range t.P {
		if len(t.P[i]) != t.N() {
			return fmt.Errorf("graph: P row %d has %d cols", i, len(t.P[i]))
		}
		for j, p := range t.P[i] {
			if p < 0 || p > 1 {
				return fmt.Errorf("graph: P[%d][%d] = %v out of range", i, j, p)
			}
		}
	}
	return nil
}

// Stats summarizes link quality over links with nonzero delivery.
type Stats struct {
	Links       int
	MeanLoss    float64
	MinLoss     float64
	MaxLoss     float64
	MeanDegree  float64
	Isolated    int
	Asymmetric  int // links where |p_ij - p_ji| > 0.2
	ZeroInbound int // nodes no other node can reach
}

// LinkStats computes summary statistics over links with delivery above the
// threshold (both directions counted once).
func (t *Topology) LinkStats(threshold float64) Stats {
	s := Stats{MinLoss: 1}
	n := t.N()
	deg := make([]int, n)
	inbound := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := t.P[i][j]
			if p <= threshold {
				continue
			}
			inbound[j]++
			if j > i {
				s.Links++
				loss := 1 - p
				s.MeanLoss += loss
				if loss < s.MinLoss {
					s.MinLoss = loss
				}
				if loss > s.MaxLoss {
					s.MaxLoss = loss
				}
				deg[i]++
				deg[j]++
				if math.Abs(t.P[i][j]-t.P[j][i]) > 0.2 {
					s.Asymmetric++
				}
			}
		}
	}
	if s.Links > 0 {
		s.MeanLoss /= float64(s.Links)
	} else {
		s.MinLoss = 0
	}
	for i := 0; i < n; i++ {
		s.MeanDegree += float64(deg[i])
		if deg[i] == 0 {
			s.Isolated++
		}
		if inbound[i] == 0 {
			s.ZeroInbound++
		}
	}
	if n > 0 {
		s.MeanDegree /= float64(n)
	}
	return s
}

// HopCount returns the minimum number of hops from src to dst using only
// links with delivery above threshold, or -1 if unreachable.
func (t *Topology) HopCount(src, dst NodeID, threshold float64) int {
	if src == dst {
		return 0
	}
	n := t.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if t.P[u][v] > threshold && dist[v] < 0 {
				dist[v] = dist[u] + 1
				if NodeID(v) == dst {
					return dist[v]
				}
				queue = append(queue, NodeID(v))
			}
		}
	}
	return dist[dst]
}

// --- Reference channel model -------------------------------------------------

// DeliveryFromDistance maps distance to delivery probability at the
// reference 802.11b rate (5.5 Mb/s). It is a smooth logistic fall-off: near
// certain within ~10 m, roughly 50 % at midRange, and negligible past
// ~2×midRange. Real indoor propagation is messier; the testbed generator
// adds per-link log-normal shadowing noise on top.
func DeliveryFromDistance(d, midRange float64) float64 {
	if midRange <= 0 {
		return 0
	}
	// Logistic in distance with slope tuned so that the 10%..90% band spans
	// roughly half of midRange, giving a realistic "gray zone".
	x := (d - midRange) / (0.22 * midRange)
	p := 1 / (1 + math.Exp(x))
	if p < 0.005 {
		return 0
	}
	return p
}

// RateScale scales a delivery probability measured at the 5.5 Mb/s reference
// rate to another 802.11b rate. Lower rates use more robust modulation and
// travel farther; 11 Mb/s (CCK-11) is the most fragile. The scaling keeps
// good links good and mostly affects marginal ones, matching the §4.4
// observation that poor links remain poor at every bit-rate.
func RateScale(pRef float64, rateMbps float64) float64 {
	if pRef <= 0 {
		return 0
	}
	// Express as an effective per-bit success and re-exponentiate with a
	// rate-dependent exponent: robust rates shrink the exponent (<1),
	// fragile rates grow it (>1).
	var exp float64
	switch {
	case rateMbps <= 1:
		exp = 0.25
	case rateMbps <= 2:
		exp = 0.5
	case rateMbps <= 5.5:
		exp = 1.0
	default: // 11 Mb/s
		exp = 1.9
	}
	p := math.Pow(pRef, exp)
	if p < 0.005 {
		return 0
	}
	return p
}
