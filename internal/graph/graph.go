// Package graph models the wireless mesh topology: node positions, per-link
// delivery probabilities, the carrier-sense relation, and generators for the
// topologies the thesis evaluates on (the 20-node testbed of §4.1, the
// motivating diamond of Fig 1-1, and the unbounded-gap topology of Fig 5-1),
// plus large random-geometric meshes for scaling studies.
//
// The network model follows §5.3.1: a broadcast transmission from node i is
// received by node j independently with marginal probability p_ij. The
// topology carries those marginals; the simulator layers interference and
// carrier sense on top.
//
// Topologies come in two storage flavours sharing one API. New builds the
// dense N×N matrix the small paper topologies use; NewSparse stores per-node
// neighbor lists only, so thousand-node meshes never materialize N² state —
// the scaling extension past the §4.1 testbed's 20 nodes. OutEdges/InEdges
// expose the neighbor view for both; for dense topologies the adjacency
// index is derived on first use and rebuilt after mutation. The seeded
// random-geometric generator (geometric.go) draws positions uniformly and
// maps distance to delivery probability with the same distance-band shape
// the testbed exhibits (§4.1.1's loss-rate spread), optionally degraded
// uniformly (Degrade) to mimic §4.2.2's lossier conditions.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// NodeID identifies a node within a topology. IDs are dense, 0..N-1.
type NodeID int

// Broadcast is the pseudo-destination of broadcast frames.
const Broadcast NodeID = -1

// Position is a point in 3-D space (meters). The testbed spans three floors,
// so Z matters.
type Position struct {
	X, Y, Z float64
}

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Edge is one directed link in a neighbor list: delivery probability P along
// the direction the list implies (outgoing for OutEdges, incoming for
// InEdges). P is always > 0; absent links simply have no edge.
type Edge struct {
	Node NodeID
	P    float64
}

// adjacency is the derived neighbor index: out[i] lists i's out-edges and
// in[j] the edges into j, both sorted ascending by peer ID. For sparse
// topologies out is nil (Topology.out is authoritative).
type adjacency struct {
	out [][]Edge
	in  [][]Edge
}

// Topology is a wireless mesh: node positions plus the marginal delivery
// probabilities at the reference bit-rate. It is the ground truth the
// channel simulator draws from and (when estimation noise is disabled) the
// loss matrix fed to all routing computations, mirroring how the paper feeds
// the same ETX measurements to Srcr, MORE and ExOR (§4.1.2).
type Topology struct {
	Pos []Position
	// P[i][j] is the probability a transmission by i is delivered to j at
	// the reference rate, with no interference. P[i][i] is ignored. P is
	// nil for sparse-storage topologies (NewSparse); use Prob/OutEdges,
	// which work for both flavours.
	P [][]float64

	// out is the authoritative sparse adjacency (sorted by Node) when P is
	// nil.
	out [][]Edge

	// idx caches the derived adjacency. Concurrent readers may race to
	// build it; every build yields identical contents, so whichever lands
	// is correct. Mutators clear it.
	idx atomic.Pointer[adjacency]

	// severed remembers the delivery probability of each directed link
	// removed by FailLink/Isolate so RestoreLink/Restore can put it back.
	// down marks nodes currently isolated, so restoring one endpoint of a
	// link never resurrects a link into a still-dead node.
	severed map[linkKey]float64
	down    map[NodeID]bool
}

// linkKey identifies one directed link a -> b in the severed-link record.
type linkKey struct{ a, b NodeID }

// New creates an empty dense topology with n nodes at the origin and zero
// connectivity.
func New(n int) *Topology {
	t := &Topology{
		Pos: make([]Position, n),
		P:   make([][]float64, n),
	}
	for i := range t.P {
		t.P[i] = make([]float64, n)
	}
	return t
}

// NewSparse creates an empty sparse topology with n nodes. Memory scales
// with edges, not n², so it is the flavour large generators build.
func NewSparse(n int) *Topology {
	return &Topology{
		Pos: make([]Position, n),
		out: make([][]Edge, n),
	}
}

// Sparse reports whether the topology uses sparse storage.
func (t *Topology) Sparse() bool { return t.P == nil }

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Pos) }

// SetLink sets the delivery probability in both directions.
func (t *Topology) SetLink(a, b NodeID, p float64) {
	t.SetDirected(a, b, p)
	t.SetDirected(b, a, p)
}

// SetDirected sets the delivery probability a -> b only.
func (t *Topology) SetDirected(a, b NodeID, p float64) {
	if t.P != nil {
		t.P[a][b] = p
		t.idx.Store(nil)
		return
	}
	if a == b {
		return
	}
	row := t.out[a]
	k := sort.Search(len(row), func(i int) bool { return row[i].Node >= b })
	switch {
	case k < len(row) && row[k].Node == b:
		if p > 0 {
			row[k].P = p
		} else {
			t.out[a] = append(row[:k], row[k+1:]...)
		}
	case p > 0:
		row = append(row, Edge{})
		copy(row[k+1:], row[k:])
		row[k] = Edge{Node: b, P: p}
		t.out[a] = row
	}
	t.idx.Store(nil)
}

// Prob returns the delivery probability from a to b.
func (t *Topology) Prob(a, b NodeID) float64 {
	if a == b {
		return 1
	}
	if t.P != nil {
		return t.P[a][b]
	}
	row := t.out[a]
	k := sort.Search(len(row), func(i int) bool { return row[i].Node >= b })
	if k < len(row) && row[k].Node == b {
		return row[k].P
	}
	return 0
}

// Loss returns the loss probability ε_ab = 1 - p_ab used throughout
// Chapter 3's credit calculations.
func (t *Topology) Loss(a, b NodeID) float64 { return 1 - t.Prob(a, b) }

// adj returns the derived adjacency index, building it on first use.
func (t *Topology) adj() *adjacency {
	if a := t.idx.Load(); a != nil {
		return a
	}
	n := t.N()
	a := &adjacency{in: make([][]Edge, n)}
	if t.P != nil {
		a.out = make([][]Edge, n)
		for i := 0; i < n; i++ {
			for j, p := range t.P[i] {
				if p > 0 && j != i {
					a.out[i] = append(a.out[i], Edge{Node: NodeID(j), P: p})
				}
			}
		}
	}
	out := a.out
	if out == nil {
		out = t.out
	}
	// In-edges, visited in ascending source order so each in-list comes out
	// sorted by Edge.Node.
	for i := 0; i < n; i++ {
		for _, e := range out[i] {
			a.in[e.Node] = append(a.in[e.Node], Edge{Node: NodeID(i), P: e.P})
		}
	}
	t.idx.CompareAndSwap(nil, a)
	return t.idx.Load()
}

// OutEdges returns node i's outgoing links (delivery > 0), sorted ascending
// by neighbor ID. The returned slice is shared — callers must not mutate it.
func (t *Topology) OutEdges(i NodeID) []Edge {
	if t.P == nil {
		return t.out[i]
	}
	return t.adj().out[i]
}

// InEdges returns the links into node j — Edge.Node is the transmitter,
// Edge.P the delivery probability toward j — sorted ascending by
// transmitter ID. The returned slice is shared — callers must not mutate it.
func (t *Topology) InEdges(j NodeID) []Edge {
	return t.adj().in[j]
}

// BuildIndex forces construction of the derived adjacency index. Callers
// that will query OutEdges/InEdges from multiple goroutines can invoke it
// once up front; lazy builds are also safe, just redundant under races.
func (t *Topology) BuildIndex() { t.adj() }

// Edges returns the total number of directed links with delivery > 0.
func (t *Topology) Edges() int {
	total := 0
	for i := 0; i < t.N(); i++ {
		total += len(t.OutEdges(NodeID(i)))
	}
	return total
}

// Neighbors returns the nodes j with delivery i -> j above the threshold.
func (t *Topology) Neighbors(i NodeID, threshold float64) []NodeID {
	var out []NodeID
	for _, e := range t.OutEdges(i) {
		if e.P > threshold {
			out = append(out, e.Node)
		}
	}
	return out
}

// Degrade scales every link's delivery probability by (1 - drop), modelling
// a uniform extra drop rate layered over the channel (the knob large-scale
// emulation rigs expose). drop outside [0,1) is clamped.
func (t *Topology) Degrade(drop float64) {
	if drop <= 0 {
		return
	}
	if drop > 1 {
		drop = 1
	}
	keep := 1 - drop
	if t.P != nil {
		for i := range t.P {
			for j := range t.P[i] {
				t.P[i][j] *= keep
			}
		}
	} else {
		for i := range t.out {
			if keep == 0 {
				t.out[i] = nil
				continue
			}
			for k := range t.out[i] {
				t.out[i][k].P *= keep
			}
		}
	}
	t.idx.Store(nil)
}

// sever zeroes the directed link a -> b, remembering its prior delivery
// probability. The first removal wins: severing an already-severed link
// must not overwrite the saved value with zero.
func (t *Topology) sever(a, b NodeID) {
	p := t.Prob(a, b)
	if p <= 0 {
		return
	}
	if t.severed == nil {
		t.severed = make(map[linkKey]float64)
	}
	if _, dup := t.severed[linkKey{a, b}]; !dup {
		t.severed[linkKey{a, b}] = p
	}
	t.SetDirected(a, b, 0)
}

// unsever restores a previously severed a -> b link at its saved delivery
// probability, unless either endpoint is still isolated (the link comes
// back when the last dead endpoint does).
func (t *Topology) unsever(a, b NodeID) {
	p, ok := t.severed[linkKey{a, b}]
	if !ok || t.down[a] || t.down[b] {
		return
	}
	delete(t.severed, linkKey{a, b})
	t.SetDirected(a, b, p)
}

// FailLink removes the link between a and b in both directions, remembering
// the delivery probabilities so RestoreLink can undo it. Failing an absent
// or already-failed link is a no-op.
func (t *Topology) FailLink(a, b NodeID) {
	t.sever(a, b)
	t.sever(b, a)
}

// RestoreLink undoes FailLink: the link between a and b comes back at its
// pre-failure delivery probabilities (any Degrade applied while the link
// was down does not retroactively apply to it). Restoring a link that was
// never failed is a no-op.
func (t *Topology) RestoreLink(a, b NodeID) {
	t.unsever(a, b)
	t.unsever(b, a)
}

// Isolate removes every link into and out of node id, modelling a node
// failure: the ground truth after a crash is that the radio is gone.
// Callers running a live simulation should pair this with
// sim.Simulator.FailNode, which silences the node itself (the simulator
// reads link probabilities live, so deliveries stop with the links).
// Restore undoes it.
func (t *Topology) Isolate(id NodeID) {
	// Collect both edge sets before mutating: OutEdges/InEdges may read the
	// derived index the severing invalidates.
	var out, in []NodeID
	for _, e := range t.OutEdges(id) {
		out = append(out, e.Node)
	}
	for _, e := range t.InEdges(id) {
		in = append(in, e.Node)
	}
	for _, j := range out {
		t.sever(id, j)
	}
	for _, j := range in {
		t.sever(j, id)
	}
	if t.down == nil {
		t.down = make(map[NodeID]bool)
	}
	t.down[id] = true
}

// Restore undoes Isolate: node id's links come back at their pre-failure
// delivery probabilities. Links whose other endpoint is itself still
// isolated stay down until that endpoint is restored too. Callers running
// a live simulation should pair this with sim.Simulator.RecoverNode, which
// revives the silenced radio. Restoring a node that was never isolated is
// a no-op.
func (t *Topology) Restore(id NodeID) {
	if !t.down[id] {
		return
	}
	delete(t.down, id)
	for k := range t.severed {
		if k.a == id || k.b == id {
			t.unsever(k.a, k.b)
		}
	}
}

// Clone returns a deep copy (same storage flavour), including any pending
// failure state (severed links, down nodes), so a clone of a mid-churn
// topology restores exactly like the original would.
func (t *Topology) Clone() *Topology {
	var c *Topology
	if t.P != nil {
		c = New(t.N())
		copy(c.Pos, t.Pos)
		for i := range t.P {
			copy(c.P[i], t.P[i])
		}
	} else {
		c = NewSparse(t.N())
		copy(c.Pos, t.Pos)
		for i := range t.out {
			c.out[i] = append([]Edge(nil), t.out[i]...)
		}
	}
	if t.severed != nil {
		c.severed = make(map[linkKey]float64, len(t.severed))
		for k, v := range t.severed {
			c.severed[k] = v
		}
	}
	if t.down != nil {
		c.down = make(map[NodeID]bool, len(t.down))
		for k, v := range t.down {
			c.down[k] = v
		}
	}
	return c
}

// Sparsify returns a sparse-storage copy of the topology: identical
// positions and link probabilities, neighbor-list representation. It is the
// bridge from the dense paper topologies to the large-scale code paths (and
// the regression hook proving both give byte-identical simulations).
func (t *Topology) Sparsify() *Topology {
	c := NewSparse(t.N())
	copy(c.Pos, t.Pos)
	for i := 0; i < t.N(); i++ {
		c.out[i] = append([]Edge(nil), t.OutEdges(NodeID(i))...)
	}
	return c
}

// Validate checks the link representation is well formed.
func (t *Topology) Validate() error {
	n := t.N()
	if t.P != nil {
		if len(t.P) != n {
			return fmt.Errorf("graph: P has %d rows for %d nodes", len(t.P), n)
		}
		for i := range t.P {
			if len(t.P[i]) != n {
				return fmt.Errorf("graph: P row %d has %d cols", i, len(t.P[i]))
			}
			for j, p := range t.P[i] {
				if p < 0 || p > 1 {
					return fmt.Errorf("graph: P[%d][%d] = %v out of range", i, j, p)
				}
			}
		}
		return nil
	}
	if len(t.out) != n {
		return fmt.Errorf("graph: %d neighbor lists for %d nodes", len(t.out), n)
	}
	for i, row := range t.out {
		last := NodeID(-1)
		for _, e := range row {
			if e.Node < 0 || int(e.Node) >= n || e.Node == NodeID(i) {
				return fmt.Errorf("graph: edge %d->%d out of range", i, e.Node)
			}
			if e.Node <= last {
				return fmt.Errorf("graph: node %d neighbor list unsorted at %d", i, e.Node)
			}
			if e.P <= 0 || e.P > 1 {
				return fmt.Errorf("graph: edge %d->%d prob %v out of range", i, e.Node, e.P)
			}
			last = e.Node
		}
	}
	return nil
}

// Stats summarizes link quality over links with nonzero delivery.
type Stats struct {
	Links       int
	MeanLoss    float64
	MinLoss     float64
	MaxLoss     float64
	MeanDegree  float64
	Isolated    int
	Asymmetric  int // links where |p_ij - p_ji| > 0.2
	ZeroInbound int // nodes no other node can reach
}

// LinkStats computes summary statistics over links with delivery above the
// threshold (both directions counted once).
func (t *Topology) LinkStats(threshold float64) Stats {
	s := Stats{MinLoss: 1}
	n := t.N()
	deg := make([]int, n)
	inbound := make([]int, n)
	for i := 0; i < n; i++ {
		for _, e := range t.OutEdges(NodeID(i)) {
			j := int(e.Node)
			p := e.P
			if p <= threshold {
				continue
			}
			inbound[j]++
			if j > i {
				s.Links++
				loss := 1 - p
				s.MeanLoss += loss
				if loss < s.MinLoss {
					s.MinLoss = loss
				}
				if loss > s.MaxLoss {
					s.MaxLoss = loss
				}
				deg[i]++
				deg[j]++
				if math.Abs(p-t.Prob(e.Node, NodeID(i))) > 0.2 {
					s.Asymmetric++
				}
			}
		}
	}
	if s.Links > 0 {
		s.MeanLoss /= float64(s.Links)
	} else {
		s.MinLoss = 0
	}
	for i := 0; i < n; i++ {
		s.MeanDegree += float64(deg[i])
		if deg[i] == 0 {
			s.Isolated++
		}
		if inbound[i] == 0 {
			s.ZeroInbound++
		}
	}
	if n > 0 {
		s.MeanDegree /= float64(n)
	}
	return s
}

// HopCount returns the minimum number of hops from src to dst using only
// links with delivery above threshold, or -1 if unreachable.
func (t *Topology) HopCount(src, dst NodeID, threshold float64) int {
	if src == dst {
		return 0
	}
	n := t.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range t.OutEdges(u) {
			if e.P > threshold && dist[e.Node] < 0 {
				dist[e.Node] = dist[u] + 1
				if e.Node == dst {
					return dist[e.Node]
				}
				queue = append(queue, e.Node)
			}
		}
	}
	return dist[dst]
}

// --- Reference channel model -------------------------------------------------

// DeliveryFromDistance maps distance to delivery probability at the
// reference 802.11b rate (5.5 Mb/s). It is a smooth logistic fall-off: near
// certain within ~10 m, roughly 50 % at midRange, and negligible past
// ~2×midRange. Real indoor propagation is messier; the testbed generator
// adds per-link log-normal shadowing noise on top.
func DeliveryFromDistance(d, midRange float64) float64 {
	if midRange <= 0 {
		return 0
	}
	// Logistic in distance with slope tuned so that the 10%..90% band spans
	// roughly half of midRange, giving a realistic "gray zone".
	x := (d - midRange) / (0.22 * midRange)
	p := 1 / (1 + math.Exp(x))
	if p < 0.005 {
		return 0
	}
	return p
}

// DeliveryCutoff returns the distance beyond which DeliveryFromDistance is
// exactly zero for the given midRange — the radius spatial candidate search
// can safely stop at. (The logistic floors at p < 0.005, reached at
// x = ln(1/0.005 - 1) ≈ 5.29 slope units.)
func DeliveryCutoff(midRange float64) float64 {
	return midRange * (1 + 0.22*math.Log(1/0.005-1))
}

// RateScale scales a delivery probability measured at the 5.5 Mb/s reference
// rate to another 802.11b rate. Lower rates use more robust modulation and
// travel farther; 11 Mb/s (CCK-11) is the most fragile. The scaling keeps
// good links good and mostly affects marginal ones, matching the §4.4
// observation that poor links remain poor at every bit-rate.
func RateScale(pRef float64, rateMbps float64) float64 {
	if pRef <= 0 {
		return 0
	}
	// Express as an effective per-bit success and re-exponentiate with a
	// rate-dependent exponent: robust rates shrink the exponent (<1),
	// fragile rates grow it (>1).
	var exp float64
	switch {
	case rateMbps <= 1:
		exp = 0.25
	case rateMbps <= 2:
		exp = 0.5
	case rateMbps <= 5.5:
		exp = 1.0
	default: // 11 Mb/s
		exp = 1.9
	}
	p := math.Pow(pRef, exp)
	if p < 0.005 {
		return 0
	}
	return p
}
