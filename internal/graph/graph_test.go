package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiamond(t *testing.T) {
	d := Diamond()
	if d.N() != 3 {
		t.Fatalf("diamond has %d nodes", d.N())
	}
	if d.Prob(0, 2) != 0.49 {
		t.Fatalf("direct link prob %v", d.Prob(0, 2))
	}
	// ETX(src->R->dst) = 1/0.7 + 1/0.8 ≈ 2.68... wait, the paper states the
	// 2-hop ETX is 2 with perfect relay links; our diamond uses lossy relay
	// links so that opportunism matters in simulation. Sanity: the relay
	// path exists and the direct path is worse than either hop.
	if d.Prob(0, 1) <= d.Prob(0, 2) || d.Prob(1, 2) <= d.Prob(0, 2) {
		t.Fatal("relay links should beat the direct link")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLine(t *testing.T) {
	l := Line(5, 0.8, 10)
	if l.HopCount(0, 4, 0.1) != 4 {
		t.Fatalf("line hop count = %d", l.HopCount(0, 4, 0.1))
	}
	if l.Prob(0, 2) != 0 {
		t.Fatal("line should have no skip links")
	}
	if math.Abs(l.Loss(0, 1)-0.2) > 1e-12 {
		t.Fatalf("loss = %v", l.Loss(0, 1))
	}
}

func TestLossyChainSkipLinks(t *testing.T) {
	c := LossyChain(5, 15, 30)
	// Adjacent links strong, two-hop skip weak but present, far links absent.
	if c.Prob(0, 1) < 0.5 {
		t.Fatalf("adjacent link too weak: %v", c.Prob(0, 1))
	}
	if c.Prob(0, 2) <= 0 || c.Prob(0, 2) >= c.Prob(0, 1) {
		t.Fatalf("skip link should be present but weaker: p01=%v p02=%v", c.Prob(0, 1), c.Prob(0, 2))
	}
	if c.Prob(0, 4) > c.Prob(0, 2) {
		t.Fatal("delivery should fall with distance")
	}
}

func TestGapTopology(t *testing.T) {
	k, p := 4, 0.2
	g := GapTopology(k, p)
	if g.N() != 3+k+1 {
		t.Fatalf("gap topology has %d nodes", g.N())
	}
	src, a, b, dst := NodeID(0), NodeID(1), NodeID(2), NodeID(3+k)
	if g.Prob(src, a) != 1 || g.Prob(src, b) != 1 {
		t.Fatal("src links must be perfect")
	}
	if g.Prob(a, dst) != p {
		t.Fatalf("A->dst prob %v", g.Prob(a, dst))
	}
	for i := 0; i < k; i++ {
		c := NodeID(3 + i)
		if g.Prob(b, c) != p || g.Prob(c, dst) != 1 {
			t.Fatalf("C_%d links wrong", i)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTestbedShape(t *testing.T) {
	cfg := DefaultTestbed()
	topo, seed := ConnectedTestbed(cfg, 1)
	if topo.N() != 20 {
		t.Fatalf("testbed has %d nodes", topo.N())
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	s := topo.LinkStats(RouteThreshold)
	if s.Isolated != 0 {
		t.Fatalf("connected testbed has %d isolated nodes (seed %d)", s.Isolated, seed)
	}
	// §4.1: loss rates on usable links average to roughly 27%. Accept a
	// generous band; the experiments calibrate the exact seed.
	if s.MeanLoss < 0.15 || s.MeanLoss > 0.45 {
		t.Fatalf("mean link loss %.2f outside plausible testbed band", s.MeanLoss)
	}
	// Paths between nodes should span 1-5 hops (allow a bit of slack).
	maxHops := 0
	for i := 0; i < topo.N(); i++ {
		for j := i + 1; j < topo.N(); j++ {
			h := topo.HopCount(NodeID(i), NodeID(j), RouteThreshold)
			if h < 0 {
				t.Fatalf("pair %d-%d unreachable", i, j)
			}
			if h > maxHops {
				maxHops = h
			}
		}
	}
	if maxHops < 3 {
		t.Fatalf("testbed is nearly a clique (max hops %d); want multi-hop", maxHops)
	}
	if maxHops > 7 {
		t.Fatalf("testbed too stretched (max hops %d)", maxHops)
	}
}

func TestTestbedDeterministic(t *testing.T) {
	a := Testbed(DefaultTestbed(), 42)
	b := Testbed(DefaultTestbed(), 42)
	n := a.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.Prob(NodeID(i), NodeID(j)) != b.Prob(NodeID(i), NodeID(j)) {
				t.Fatal("same seed produced different topologies")
			}
		}
	}
	c := Testbed(DefaultTestbed(), 43)
	same := true
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.Prob(NodeID(i), NodeID(j)) != c.Prob(NodeID(i), NodeID(j)) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestDeliveryFromDistanceMonotone(t *testing.T) {
	prev := 1.1
	for d := 0.0; d < 100; d += 1 {
		p := DeliveryFromDistance(d, 30)
		if p > prev+1e-12 {
			t.Fatalf("delivery not monotone at d=%v", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("delivery out of range at d=%v: %v", d, p)
		}
		prev = p
	}
	if DeliveryFromDistance(1, 30) < 0.9 {
		t.Fatal("short links should be near-perfect")
	}
	if DeliveryFromDistance(100, 30) != 0 {
		t.Fatal("far links should be cut to zero")
	}
	if DeliveryFromDistance(5, 0) != 0 {
		t.Fatal("zero midRange must yield zero")
	}
}

func TestRateScale(t *testing.T) {
	// Lower rates improve delivery, higher rates degrade it.
	p := 0.6
	if RateScale(p, 1) <= RateScale(p, 2) {
		t.Fatal("1 Mb/s should beat 2 Mb/s")
	}
	if RateScale(p, 2) <= RateScale(p, 5.5) {
		t.Fatal("2 Mb/s should beat 5.5")
	}
	if RateScale(p, 5.5) != p {
		t.Fatal("5.5 Mb/s is the reference rate")
	}
	if RateScale(p, 11) >= p {
		t.Fatal("11 Mb/s should be more fragile")
	}
	if RateScale(0, 1) != 0 {
		t.Fatal("zero stays zero at any rate")
	}
	f := func(praw uint16, r uint8) bool {
		p := float64(praw) / 65535
		rates := []float64{1, 2, 5.5, 11}
		v := RateScale(p, rates[int(r)%4])
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopCountUnreachable(t *testing.T) {
	topo := New(3)
	topo.SetLink(0, 1, 0.9)
	if topo.HopCount(0, 2, 0.1) != -1 {
		t.Fatal("unreachable pair should report -1")
	}
	if topo.HopCount(1, 1, 0.1) != 0 {
		t.Fatal("self hop count should be 0")
	}
}

func TestValidateCatchesBadProb(t *testing.T) {
	topo := New(2)
	topo.P[0][1] = 1.5
	if topo.Validate() == nil {
		t.Fatal("Validate accepted probability > 1")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Diamond()
	b := a.Clone()
	b.SetLink(0, 1, 0.1)
	if a.Prob(0, 1) == 0.1 {
		t.Fatal("Clone aliases original")
	}
}

func TestLinkStats(t *testing.T) {
	topo := New(4)
	topo.SetLink(0, 1, 0.9) // loss 0.1
	topo.SetLink(1, 2, 0.5) // loss 0.5
	s := topo.LinkStats(0.05)
	if s.Links != 2 {
		t.Fatalf("links = %d", s.Links)
	}
	if math.Abs(s.MeanLoss-0.3) > 1e-9 {
		t.Fatalf("mean loss = %v", s.MeanLoss)
	}
	if s.Isolated != 1 { // node 3
		t.Fatalf("isolated = %d", s.Isolated)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4, 12, 30)
	if g.N() != 12 {
		t.Fatalf("grid size %d", g.N())
	}
	if g.Prob(0, 1) <= g.Prob(0, 3) {
		t.Fatal("adjacent grid nodes should have better links than distant ones")
	}
}

func TestPositionDistance(t *testing.T) {
	a := Position{0, 0, 0}
	b := Position{3, 4, 0}
	if a.Distance(b) != 5 {
		t.Fatalf("distance = %v", a.Distance(b))
	}
	c := Position{0, 0, 2}
	if a.Distance(c) != 2 {
		t.Fatalf("vertical distance = %v", a.Distance(c))
	}
}
