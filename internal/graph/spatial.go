package graph

import "sort"

// SpatialIndex is a uniform grid over node positions: 3-D buckets of cell
// width `cell`, answering "which nodes lie within radius r of here" in time
// proportional to the local population instead of N. The simulator uses it
// for carrier-sense neighborhoods, the generators for candidate-link search.
type SpatialIndex struct {
	pos     []Position
	cell    float64
	buckets map[cellKey][]NodeID
}

type cellKey struct{ x, y, z int32 }

// NewSpatialIndex buckets the positions into cells of the given width. A
// non-positive cell width falls back to 1.
func NewSpatialIndex(pos []Position, cell float64) *SpatialIndex {
	if cell <= 0 {
		cell = 1
	}
	x := &SpatialIndex{
		pos:     pos,
		cell:    cell,
		buckets: make(map[cellKey][]NodeID, len(pos)),
	}
	for i, p := range pos {
		k := x.key(p)
		x.buckets[k] = append(x.buckets[k], NodeID(i))
	}
	return x
}

func (x *SpatialIndex) key(p Position) cellKey {
	return cellKey{
		x: int32(floorDiv(p.X, x.cell)),
		y: int32(floorDiv(p.Y, x.cell)),
		z: int32(floorDiv(p.Z, x.cell)),
	}
}

func floorDiv(v, cell float64) int {
	q := v / cell
	i := int(q)
	if q < 0 && float64(i) != q {
		i--
	}
	return i
}

// Within returns the IDs of all nodes within distance r of p (inclusive),
// sorted ascending. The result is freshly allocated; callers may keep it.
func (x *SpatialIndex) Within(p Position, r float64) []NodeID {
	if r < 0 {
		return nil
	}
	var out []NodeID
	c := x.key(p)
	span := int32(floorDiv(r, x.cell)) + 1
	for dz := -span; dz <= span; dz++ {
		for dy := -span; dy <= span; dy++ {
			for dx := -span; dx <= span; dx++ {
				ids := x.buckets[cellKey{c.x + dx, c.y + dy, c.z + dz}]
				for _, id := range ids {
					if x.pos[id].Distance(p) <= r {
						out = append(out, id)
					}
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Near returns the IDs of all nodes within distance r of node i, excluding
// i itself, sorted ascending.
func (x *SpatialIndex) Near(i NodeID, r float64) []NodeID {
	all := x.Within(x.pos[i], r)
	out := all[:0]
	for _, id := range all {
		if id != i {
			out = append(out, id)
		}
	}
	return out
}
