package graph

import "testing"

// The Grid/Corridor/Testbed generators are sparse-native: neighbor lists
// plus a spatial candidate index, so memory and time scale with links, not
// nodes². These tests pin the storage flavour and exercise sizes whose
// dense matrices (10⁸+ float64 cells) would be prohibitive.

func TestGeneratorsAreSparse(t *testing.T) {
	for name, topo := range map[string]*Topology{
		"testbed":  Testbed(DefaultTestbed(), 1),
		"grid":     Grid(4, 5, 14, 30),
		"corridor": Corridor(12, 12*26, 15, 28, 7),
	} {
		if !topo.Sparse() {
			t.Errorf("%s: not sparse storage", name)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLargeGridFeasible(t *testing.T) {
	// 120×120 = 14400 nodes: the dense matrix would be 14400² ≈ 2·10⁸
	// cells (1.6 GB); sparse neighbor lists hold only real links.
	topo := Grid(120, 120, 14, 30)
	if !topo.Sparse() {
		t.Fatal("large grid not sparse")
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	edges := topo.Edges()
	if edges == 0 {
		t.Fatal("no edges")
	}
	// Bounded degree: each node links only within the channel cutoff (a
	// ~65 m disc at this spacing holds ≈66 grid points), independent of
	// the grid's total size.
	if perNode := float64(edges) / float64(topo.N()); perNode > 80 {
		t.Errorf("mean out-degree %v too high for a cutoff-bounded grid", perNode)
	}
	// Corner-to-corner connectivity over usable links.
	if h := topo.HopCount(0, NodeID(topo.N()-1), RouteThreshold); h <= 0 {
		t.Errorf("corner-to-corner hop count %d", h)
	}
}

func TestLargeCorridorFeasible(t *testing.T) {
	topo := Corridor(5000, 5000*26, 15, 28, 1)
	if !topo.Sparse() {
		t.Fatal("large corridor not sparse")
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if perNode := float64(topo.Edges()) / float64(topo.N()); perNode > 64 {
		t.Errorf("mean out-degree %v too high for a cutoff-bounded corridor", perNode)
	}
}

func TestLargeTestbedFeasible(t *testing.T) {
	cfg := DefaultTestbed()
	cfg.Nodes = 5000
	cfg.FloorW = 2000
	cfg.FloorH = 1500
	topo := Testbed(cfg, 1)
	if !topo.Sparse() {
		t.Fatal("large testbed not sparse")
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}
