package graph

import (
	"math"
	"math/rand"
)

// GeometricConfig parameterizes the random-geometric generator: n nodes
// placed uniformly over a (possibly multi-floor) area, linked by the
// distance→delivery channel model plus log-normal shadowing. It is the
// scaling workhorse — built sparsely, it never materializes N×N state, so
// thousand-node meshes cost memory proportional to their edges.
type GeometricConfig struct {
	Nodes int
	// Width and Height bound the placement area in meters. When zero they
	// are derived from TargetDegree: the square whose node density gives
	// each node about TargetDegree neighbors within MidRange.
	Width, Height float64
	// TargetDegree is the desired mean number of neighbors within MidRange
	// when Width/Height are derived (default 10).
	TargetDegree float64
	// MidRange is the distance at which delivery ≈ 50% (default 28, the
	// testbed's).
	MidRange float64
	// Floors stacks the area into identical floors, FloorSep meters apart,
	// with the same per-floor-crossing penalty as the testbed generator.
	// Zero or one keeps the layout flat.
	Floors   int
	FloorSep float64
	// Shadowing is the std-dev of per-link log-odds noise (default 1.1).
	// Negative disables shadowing entirely (exact distance model).
	Shadowing float64
	// MinProb cuts links weaker than this to zero (default 0.05).
	MinProb float64
}

// DefaultGeometric returns a geometric config producing testbed-like link
// statistics at any node count.
func DefaultGeometric(nodes int) GeometricConfig {
	return GeometricConfig{
		Nodes:        nodes,
		TargetDegree: 10,
		MidRange:     28,
		Floors:       1,
		FloorSep:     4,
		Shadowing:    1.1,
		MinProb:      0.05,
	}
}

func (cfg *GeometricConfig) fillDefaults() {
	if cfg.TargetDegree <= 0 {
		cfg.TargetDegree = 10
	}
	if cfg.MidRange <= 0 {
		cfg.MidRange = 28
	}
	if cfg.Floors < 1 {
		cfg.Floors = 1
	}
	if cfg.FloorSep <= 0 {
		cfg.FloorSep = 4
	}
	if cfg.Shadowing == 0 {
		cfg.Shadowing = 1.1
	}
	if cfg.MinProb <= 0 {
		cfg.MinProb = 0.05
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		// Choose the square where a MidRange disc holds ~TargetDegree
		// nodes: side² = n·π·mid² / degree.
		side := cfg.MidRange * math.Sqrt(float64(cfg.Nodes)*math.Pi/cfg.TargetDegree)
		if cfg.Width <= 0 {
			cfg.Width = side
		}
		if cfg.Height <= 0 {
			cfg.Height = side
		}
	}
}

// Geometric generates a sparse random-geometric topology. The same seed
// always produces the same topology, independent of the spatial index's
// internals: positions are drawn in node order and link noise in ascending
// (i, j) pair order over the candidate pairs within the channel cutoff.
func Geometric(cfg GeometricConfig, seed int64) *Topology {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(seed))
	t := NewSparse(cfg.Nodes)
	perFloor := (cfg.Nodes + cfg.Floors - 1) / cfg.Floors
	for i := 0; i < cfg.Nodes; i++ {
		floor := i / perFloor
		t.Pos[i] = Position{
			X: rng.Float64() * cfg.Width,
			Y: rng.Float64() * cfg.Height,
			Z: float64(floor) * cfg.FloorSep,
		}
	}
	// Candidate links only within the channel cutoff: beyond it the base
	// delivery is exactly zero (and the floor penalty only shrinks it), so
	// the spatial search is exhaustive, not approximate.
	cutoff := DeliveryCutoff(cfg.MidRange)
	idx := NewSpatialIndex(t.Pos, cutoff)
	for i := 0; i < cfg.Nodes; i++ {
		iid := NodeID(i)
		for _, j := range idx.Near(iid, cutoff) {
			if j <= iid {
				continue
			}
			d := t.Pos[i].Distance(t.Pos[j])
			floors := math.Abs(t.Pos[i].Z-t.Pos[j].Z) / cfg.FloorSep
			p := DeliveryFromDistance(d+8*floors, cfg.MidRange)
			if p <= 0 {
				continue
			}
			pij, pji := p, p
			if cfg.Shadowing > 0 {
				sym := rng.NormFloat64() * cfg.Shadowing
				asym := rng.NormFloat64() * cfg.Shadowing * 0.25
				pij = logistic(logit(p) + sym + asym)
				pji = logistic(logit(p) + sym - asym)
			}
			if pij >= cfg.MinProb {
				t.SetDirected(iid, j, pij)
			}
			if pji >= cfg.MinProb {
				t.SetDirected(j, iid, pji)
			}
		}
	}
	return t
}

// ConnectedGeometric keeps drawing geometric topologies (bumping the seed)
// until every node can reach every other over usable links (delivery >
// RouteThreshold in both directions). It returns the topology and the seed
// that produced it, and gives up (returning the last draw) after 64
// attempts — at sensible densities the first draw almost always connects.
func ConnectedGeometric(cfg GeometricConfig, seed int64) (*Topology, int64) {
	var t *Topology
	s := seed
	for attempt := 0; attempt < 64; attempt++ {
		t = Geometric(cfg, s)
		if t.fullyConnected(RouteThreshold) {
			return t, s
		}
		s++
	}
	return t, s - 1
}
