package graph

import (
	"math"
	"math/rand"
)

// Diamond returns the Fig 1-1 motivating topology:
//
//	src --0.70--> R --0.80--> dst, with a lossy direct src->dst link of 0.49.
//
// Node order: 0 = src, 1 = R, 2 = dst. The direct-link probability of 0.49
// is the paper's: the ETX of src->R->dst is 2, smaller than the direct
// path's 1/0.49 ≈ 2.04.
func Diamond() *Topology {
	t := New(3)
	t.Pos[0] = Position{0, 0, 0}
	t.Pos[1] = Position{25, 0, 0}
	t.Pos[2] = Position{50, 0, 0}
	t.SetLink(0, 1, 0.70)
	t.SetLink(1, 2, 0.80)
	t.SetLink(0, 2, 0.49)
	return t
}

// Line returns an n-node chain with the given per-hop delivery probability
// and zero probability elsewhere (no skipping). Nodes sit spacing meters
// apart on the X axis.
func Line(n int, hopProb, spacing float64) *Topology {
	t := New(n)
	for i := 0; i < n; i++ {
		t.Pos[i] = Position{float64(i) * spacing, 0, 0}
	}
	for i := 0; i+1 < n; i++ {
		t.SetLink(NodeID(i), NodeID(i+1), hopProb)
	}
	return t
}

// LossyChain returns an n-node chain where every pair of nodes has delivery
// probability derived from their distance, so transmissions can
// opportunistically skip hops (Fig 2-1(a)). spacing controls hop distance;
// midRange the channel model's 50% distance.
func LossyChain(n int, spacing, midRange float64) *Topology {
	t := New(n)
	for i := 0; i < n; i++ {
		t.Pos[i] = Position{float64(i) * spacing, 0, 0}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := t.Pos[i].Distance(t.Pos[j])
			t.SetLink(NodeID(i), NodeID(j), DeliveryFromDistance(d, midRange))
		}
	}
	return t
}

// GapTopology returns the Fig 5-1 topology that exhibits an unbounded
// ETX-order vs EOTX-order cost gap.
//
// Layout (returned IDs):
//
//	0 = src, 1 = A, 2 = B, 3..3+k-1 = C_1..C_k, 3+k = dst.
//
// Links (delivery probabilities, independent losses):
//
//	src -> A : 1.0       A -> dst : p
//	src -> B : 1.0       B -> C_i : p (for each i)
//	C_i -> dst : 1.0
//
// ETX(A) = 1/p, ETX(B) = 1 + 1/p (via any C_i), ETX(C_i) = 1. In ETX order
// B is farther than the source (ETX(src) = 1 + 1/p via A), so B is
// discarded as a forwarder; the ETX-order cost is 1 + 1/p. With EOTX order,
// routing through B costs 1 + 1/(1-(1-p)^k) + 1, which stays bounded as
// p -> 0, so the ratio approaches k.
func GapTopology(k int, p float64) *Topology {
	n := 3 + k + 1
	t := New(n)
	src, a, b := NodeID(0), NodeID(1), NodeID(2)
	dst := NodeID(3 + k)
	t.SetDirected(src, a, 1)
	t.SetDirected(a, src, 1)
	t.SetDirected(src, b, 1)
	t.SetDirected(b, src, 1)
	t.SetDirected(a, dst, p)
	t.SetDirected(dst, a, p)
	for i := 0; i < k; i++ {
		c := NodeID(3 + i)
		t.SetDirected(b, c, p)
		t.SetDirected(c, b, p)
		t.SetDirected(c, dst, 1)
		t.SetDirected(dst, c, 1)
	}
	// Rough positions for visualization only.
	t.Pos[src] = Position{0, 0, 0}
	t.Pos[a] = Position{20, 20, 0}
	t.Pos[b] = Position{20, -20, 0}
	for i := 0; i < k; i++ {
		t.Pos[3+i] = Position{40, -10 - 3*float64(i), 0}
	}
	t.Pos[dst] = Position{60, 0, 0}
	return t
}

// TestbedConfig parameterizes the random testbed-like generator.
type TestbedConfig struct {
	Nodes     int     // number of nodes (paper: 20)
	Floors    int     // building floors (paper: 3)
	FloorW    float64 // floor width, meters
	FloorH    float64 // floor depth, meters
	FloorSep  float64 // vertical separation between floors, meters
	MidRange  float64 // distance at which delivery ≈ 50%
	Shadowing float64 // std-dev of per-link log-odds noise
	MinProb   float64 // links below this delivery prob are cut to 0
}

// RouteThreshold is the delivery probability above which a link is
// considered usable for route and forwarder selection. Weaker links still
// deliver packets in the channel simulation — that residual connectivity is
// precisely the opportunistic-reception fodder MORE and ExOR exploit — but
// protocols do not plan on them.
const RouteThreshold = 0.2

// DefaultTestbed matches the shape of §4.1's testbed: 20 nodes over 3
// floors; link loss rates on usable links (delivery > RouteThreshold) range
// from ≈ 0 to ≈ 80 % and average ≈ 0.3, and shortest usable paths span 1–5
// hops.
func DefaultTestbed() TestbedConfig {
	return TestbedConfig{
		Nodes:     20,
		Floors:    3,
		FloorW:    120,
		FloorH:    80,
		FloorSep:  4,
		MidRange:  28,
		Shadowing: 1.1,
		MinProb:   0.05,
	}
}

// Testbed generates a random indoor-testbed-like topology. The same seed
// always produces the same topology. Per-link shadowing noise is applied in
// log-odds space and symmetrically correlated (the same obstruction affects
// both directions), with a small asymmetric component, matching the mildly
// asymmetric links observed on real meshes.
//
// Storage is sparse (neighbor lists, like the geometric generator), so the
// same code serves arbitrarily large testbed-style layouts; candidate pairs
// come from a spatial index over the channel cutoff, visited in ascending
// (i, j) order so every noise draw matches the historical dense all-pairs
// scan exactly — a pair beyond the cutoff never drew noise there either
// (its base delivery was exactly zero).
func Testbed(cfg TestbedConfig, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	t := NewSparse(cfg.Nodes)
	perFloor := cfg.Nodes / cfg.Floors
	for i := 0; i < cfg.Nodes; i++ {
		floor := i / perFloor
		if floor >= cfg.Floors {
			floor = cfg.Floors - 1
		}
		t.Pos[i] = Position{
			X: rng.Float64() * cfg.FloorW,
			Y: rng.Float64() * cfg.FloorH,
			Z: float64(floor) * cfg.FloorSep,
		}
	}
	cutoff := DeliveryCutoff(cfg.MidRange)
	idx := NewSpatialIndex(t.Pos, cutoff)
	for i := 0; i < cfg.Nodes; i++ {
		iid := NodeID(i)
		for _, j := range idx.Near(iid, cutoff) {
			if j <= iid {
				continue
			}
			d := t.Pos[i].Distance(t.Pos[j])
			// Crossing floors is harder than the straight-line distance
			// suggests: add an effective distance penalty per floor crossed.
			floors := math.Abs(t.Pos[i].Z-t.Pos[j].Z) / cfg.FloorSep
			eff := d + 8*floors
			p := DeliveryFromDistance(eff, cfg.MidRange)
			if p <= 0 {
				continue
			}
			// Symmetric shadowing plus small asymmetry, in log-odds space.
			sym := rng.NormFloat64() * cfg.Shadowing
			asym := rng.NormFloat64() * cfg.Shadowing * 0.25
			pij := logistic(logit(p) + sym + asym)
			pji := logistic(logit(p) + sym - asym)
			if pij >= cfg.MinProb {
				t.SetDirected(iid, j, pij)
			}
			if pji >= cfg.MinProb {
				t.SetDirected(j, iid, pji)
			}
		}
	}
	return t
}

func logit(p float64) float64 {
	if p <= 0 {
		return -12
	}
	if p >= 1 {
		return 12
	}
	return math.Log(p / (1 - p))
}

func logistic(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// ConnectedTestbed keeps drawing testbed topologies (bumping the seed) until
// every node can reach every other over usable links (delivery >
// RouteThreshold in both directions), so best-path routing always has a
// route. It returns the topology and the seed that produced it.
func ConnectedTestbed(cfg TestbedConfig, seed int64) (*Topology, int64) {
	for s := seed; ; s++ {
		t := Testbed(cfg, s)
		if t.fullyConnected(RouteThreshold) {
			return t, s
		}
	}
}

func (t *Topology) fullyConnected(threshold float64) bool {
	n := t.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.OutEdges(u) {
			if !seen[e.Node] && e.P > threshold && t.Prob(e.Node, u) > threshold {
				seen[e.Node] = true
				count++
				stack = append(stack, e.Node)
			}
		}
	}
	return count == n
}

// Grid returns an r x c grid with the given spacing and distance-derived
// delivery probabilities. Storage is sparse and candidate links come from a
// spatial index over the channel cutoff, so arbitrarily large grids cost
// memory and time proportional to their links, not rows²·cols².
func Grid(rows, cols int, spacing, midRange float64) *Topology {
	t := NewSparse(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.Pos[r*cols+c] = Position{float64(c) * spacing, float64(r) * spacing, 0}
		}
	}
	cutoff := DeliveryCutoff(midRange)
	idx := NewSpatialIndex(t.Pos, cutoff)
	for i := 0; i < t.N(); i++ {
		iid := NodeID(i)
		for _, j := range idx.Near(iid, cutoff) {
			if j <= iid {
				continue
			}
			d := t.Pos[i].Distance(t.Pos[j])
			if p := DeliveryFromDistance(d, midRange); p > 0 {
				t.SetLink(iid, j, p)
			}
		}
	}
	return t
}

// Corridor generates a long, thin topology (nodes scattered along a
// corridor), which yields the 4+-hop paths with first-hop/last-hop
// concurrency that the spatial-reuse experiment (Fig 4-4) selects for.
// Sparse-native like Testbed — candidate pairs within the channel cutoff,
// ascending order, draw-for-draw identical to the historical dense scan —
// so corridors of any length stay O(links).
func Corridor(n int, length, width, midRange float64, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	t := NewSparse(n)
	for i := 0; i < n; i++ {
		// Spread nodes roughly evenly along the corridor with jitter so
		// hop structure is stable but not degenerate.
		base := length * float64(i) / float64(n-1)
		t.Pos[i] = Position{
			X: base + rng.NormFloat64()*length/float64(4*n),
			Y: rng.Float64() * width,
			Z: 0,
		}
	}
	cutoff := DeliveryCutoff(midRange)
	idx := NewSpatialIndex(t.Pos, cutoff)
	for i := 0; i < n; i++ {
		iid := NodeID(i)
		for _, j := range idx.Near(iid, cutoff) {
			if j <= iid {
				continue
			}
			d := t.Pos[i].Distance(t.Pos[j])
			p := DeliveryFromDistance(d, midRange)
			if p <= 0 {
				continue
			}
			sym := rng.NormFloat64() * 0.5
			pij := logistic(logit(p) + sym)
			pji := logistic(logit(p) + sym)
			if pij >= 0.05 {
				t.SetDirected(iid, j, pij)
				t.SetDirected(j, iid, pji)
			}
		}
	}
	return t
}
