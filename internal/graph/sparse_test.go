package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestSparseDenseEquivalence drives identical mutation sequences into a
// dense and a sparse topology and checks every query agrees.
func TestSparseDenseEquivalence(t *testing.T) {
	const n = 24
	dense := New(n)
	sparse := NewSparse(n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		pos := Position{rng.Float64() * 100, rng.Float64() * 80, 0}
		dense.Pos[i], sparse.Pos[i] = pos, pos
	}
	for k := 0; k < 600; k++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		p := rng.Float64()
		if p < 0.2 {
			p = 0 // exercise edge deletion
		}
		dense.SetDirected(a, b, p)
		sparse.SetDirected(a, b, p)
	}
	if err := dense.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sparse.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dp, sp := dense.Prob(NodeID(i), NodeID(j)), sparse.Prob(NodeID(i), NodeID(j)); dp != sp {
				t.Fatalf("Prob(%d,%d): dense %v sparse %v", i, j, dp, sp)
			}
		}
		if do, so := dense.OutEdges(NodeID(i)), sparse.OutEdges(NodeID(i)); !edgesEqual(do, so) {
			t.Fatalf("OutEdges(%d): dense %v sparse %v", i, do, so)
		}
		if di, si := dense.InEdges(NodeID(i)), sparse.InEdges(NodeID(i)); !edgesEqual(di, si) {
			t.Fatalf("InEdges(%d): dense %v sparse %v", i, di, si)
		}
		if dn, sn := dense.Neighbors(NodeID(i), 0.3), sparse.Neighbors(NodeID(i), 0.3); !reflect.DeepEqual(dn, sn) {
			t.Fatalf("Neighbors(%d): dense %v sparse %v", i, dn, sn)
		}
	}
	if ds, ss := dense.LinkStats(0.1), sparse.LinkStats(0.1); ds != ss {
		t.Fatalf("LinkStats: dense %+v sparse %+v", ds, ss)
	}
	if dh, sh := dense.HopCount(0, NodeID(n-1), 0.1), sparse.HopCount(0, NodeID(n-1), 0.1); dh != sh {
		t.Fatalf("HopCount: dense %v sparse %v", dh, sh)
	}
	if de, se := dense.Edges(), sparse.Edges(); de != se {
		t.Fatalf("Edges: dense %v sparse %v", de, se)
	}
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSparsifyPreservesLinks(t *testing.T) {
	// LossyChain still builds the dense matrix (a small paper topology);
	// the generators that scale — Testbed, Grid, Corridor, Geometric —
	// are sparse-native, so the dense flavour needs a dense source here.
	topo := LossyChain(12, 15, 30)
	sp := topo.Sparsify()
	if !sp.Sparse() || topo.Sparse() {
		t.Fatal("storage flavours wrong")
	}
	n := topo.N()
	for i := 0; i < n; i++ {
		if topo.Pos[i] != sp.Pos[i] {
			t.Fatalf("position %d differs", i)
		}
		for j := 0; j < n; j++ {
			if topo.Prob(NodeID(i), NodeID(j)) != sp.Prob(NodeID(i), NodeID(j)) {
				t.Fatalf("Prob(%d,%d) differs", i, j)
			}
		}
	}
	// Mutating the copy must not leak back.
	sp.SetDirected(0, 1, 0.123)
	if topo.Prob(0, 1) == 0.123 {
		t.Fatal("Sparsify shares storage with the original")
	}
}

func TestIndexInvalidatedOnMutation(t *testing.T) {
	topo := New(4)
	topo.SetLink(0, 1, 0.5)
	if got := len(topo.OutEdges(0)); got != 1 {
		t.Fatalf("OutEdges(0) = %d edges, want 1", got)
	}
	topo.SetLink(0, 2, 0.6) // must invalidate the derived index
	if got := len(topo.OutEdges(0)); got != 2 {
		t.Fatalf("OutEdges(0) after mutation = %d edges, want 2", got)
	}
	if got := len(topo.InEdges(0)); got != 2 {
		t.Fatalf("InEdges(0) = %d edges, want 2", got)
	}
	topo.SetDirected(2, 0, 0) // delete one direction
	if got := len(topo.InEdges(0)); got != 1 {
		t.Fatalf("InEdges(0) after delete = %d edges, want 1", got)
	}
}

func TestSpatialIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pos := make([]Position, 300)
	for i := range pos {
		pos[i] = Position{rng.Float64()*400 - 200, rng.Float64()*400 - 200, rng.Float64() * 12}
	}
	for _, cell := range []float64{7, 30, 95} {
		idx := NewSpatialIndex(pos, cell)
		for trial := 0; trial < 20; trial++ {
			center := pos[rng.Intn(len(pos))]
			r := rng.Float64() * 120
			got := idx.Within(center, r)
			var want []NodeID
			for i, p := range pos {
				if p.Distance(center) <= r {
					want = append(want, NodeID(i))
				}
			}
			if !reflect.DeepEqual(got, append([]NodeID{}, want...)) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("cell %v r %v: got %v want %v", cell, r, got, want)
			}
		}
	}
	idx := NewSpatialIndex(pos, 30)
	near := idx.Near(0, 50)
	for _, id := range near {
		if id == 0 {
			t.Fatal("Near includes the node itself")
		}
	}
}

func TestGeometricDeterministicAndSane(t *testing.T) {
	cfg := DefaultGeometric(300)
	a := Geometric(cfg, 9)
	b := Geometric(cfg, 9)
	if !a.Sparse() {
		t.Fatal("geometric topologies must be sparse")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Pos, b.Pos) {
		t.Fatal("same seed, different positions")
	}
	for i := 0; i < a.N(); i++ {
		if !edgesEqual(a.OutEdges(NodeID(i)), b.OutEdges(NodeID(i))) {
			t.Fatalf("same seed, different edges at node %d", i)
		}
	}
	c := Geometric(cfg, 10)
	if reflect.DeepEqual(a.Pos, c.Pos) {
		t.Fatal("different seeds, identical positions")
	}
	// Link statistics should be testbed-like: a usable mesh, not a clique
	// and not dust.
	s := a.LinkStats(RouteThreshold)
	if s.Links < a.N() {
		t.Fatalf("only %d usable links for %d nodes", s.Links, a.N())
	}
	if s.MeanDegree < 2 || s.MeanDegree > 40 {
		t.Fatalf("mean usable degree %.1f out of sane range", s.MeanDegree)
	}
	// Edges stay local: memory is O(E), far below N².
	if e := a.Edges(); e >= a.N()*a.N()/4 {
		t.Fatalf("edge count %d is not sparse for n=%d", e, a.N())
	}
}

func TestGeometricMultiFloor(t *testing.T) {
	cfg := DefaultGeometric(120)
	cfg.Floors = 3
	topo := Geometric(cfg, 2)
	floors := map[float64]int{}
	for _, p := range topo.Pos {
		floors[p.Z]++
	}
	if len(floors) != 3 {
		t.Fatalf("expected 3 distinct floor heights, got %v", floors)
	}
}

func TestConnectedGeometric(t *testing.T) {
	topo, seed := ConnectedGeometric(DefaultGeometric(80), 1)
	if !topo.fullyConnected(RouteThreshold) {
		t.Fatalf("seed %d topology not connected", seed)
	}
}

func TestDegrade(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		topo := Diamond()
		if sparse {
			topo = topo.Sparsify()
		}
		before := topo.Prob(0, 1)
		topo.Degrade(0.5)
		if got := topo.Prob(0, 1); math.Abs(got-before/2) > 1e-12 {
			t.Fatalf("sparse=%v: Degrade(0.5): %v -> %v", sparse, before, got)
		}
		if err := topo.Validate(); err != nil {
			t.Fatal(err)
		}
		topo.Degrade(1)
		if topo.Edges() != 0 && !sparse {
			// dense keeps zero entries; edges derived from P must be zero
			t.Fatalf("Degrade(1) left %d edges", topo.Edges())
		}
		if sparse && topo.Edges() != 0 {
			t.Fatalf("Degrade(1) left %d sparse edges", topo.Edges())
		}
	}
}

func TestDeliveryCutoff(t *testing.T) {
	mid := 28.0
	cut := DeliveryCutoff(mid)
	if DeliveryFromDistance(cut+1e-9, mid) != 0 {
		t.Fatal("delivery nonzero beyond cutoff")
	}
	if DeliveryFromDistance(cut*0.95, mid) <= 0 {
		t.Fatal("delivery zero just inside cutoff")
	}
}
